// "Other Results" reproduction: linear-program solve times. The paper ran
// ILOG CPLEX 8.1 on a desktop; we measure our from-scratch bounded-variable
// simplex on the same program families the planners emit, across problem
// sizes (google-benchmark microbenchmark).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/proof_planner.h"
#include "src/data/gaussian_field.h"
#include "src/lp/simplex.h"
#include "src/net/topology.h"
#include "src/util/rng.h"

namespace prospector {
namespace {

// Random dense-ish LP: max c'x, Ax <= b, 0 <= x <= 1.
static void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int m = n / 2;
  Rng rng(7);
  lp::Model model;
  model.SetSense(lp::Sense::kMaximize);
  for (int i = 0; i < n; ++i) model.AddBinaryRelaxed(rng.Uniform(0.0, 1.0));
  for (int r = 0; r < m; ++r) {
    std::vector<lp::Term> terms;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) terms.push_back({i, rng.Uniform(0.1, 1.0)});
    }
    if (!terms.empty()) {
      model.AddRow(lp::RowType::kLessEqual, rng.Uniform(1.0, 8.0), terms);
    }
  }
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto sol = solver.Solve(model);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(50)->Arg(100)->Arg(200)->Arg(400);

struct PlannerFixture {
  net::Topology topo;
  data::GaussianField field;
  sampling::SampleSet samples;
  core::PlannerContext ctx;

  PlannerFixture(int n, int k, int S) : samples(sampling::SampleSet::ForTopK(n, k)) {
    Rng rng(11);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = n;
    geo.radio_range = n >= 100 ? 22.0 : 28.0;
    topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
    field = data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
    for (int s = 0; s < S; ++s) samples.Add(field.Sample(&rng));
    ctx.topology = &topo;
  }
};

static void BM_PlanLpNoFilter(benchmark::State& state) {
  PlannerFixture f(static_cast<int>(state.range(0)), 10, 25);
  core::LpNoFilterPlanner planner;
  core::PlanRequest req{10, 12.0};
  for (auto _ : state) {
    auto plan = planner.Plan(f.ctx, f.samples, req);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanLpNoFilter)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

static void BM_PlanLpFilter(benchmark::State& state) {
  PlannerFixture f(static_cast<int>(state.range(0)), 10, 25);
  core::LpFilterPlanner planner;
  core::PlanRequest req{10, 12.0};
  for (auto _ : state) {
    auto plan = planner.Plan(f.ctx, f.samples, req);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanLpFilter)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

static void BM_PlanProof(benchmark::State& state) {
  PlannerFixture f(static_cast<int>(state.range(0)), 10, 8);
  core::ProofPlanner planner;
  core::PlanRequest req;
  req.k = 10;
  req.energy_budget_mj = core::ProofPlanner::MinimumCost(f.ctx) * 1.2;
  for (auto _ : state) {
    auto plan = planner.Plan(f.ctx, f.samples, req);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanProof)->Arg(25)->Arg(40)->Unit(benchmark::kMillisecond);

static void BM_PlanGreedyBaseline(benchmark::State& state) {
  PlannerFixture f(static_cast<int>(state.range(0)), 10, 25);
  core::GreedyPlanner planner;
  core::PlanRequest req{10, 12.0};
  for (auto _ : state) {
    auto plan = planner.Plan(f.ctx, f.samples, req);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanGreedyBaseline)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prospector

// BENCHMARK_MAIN with one addition: unless the caller passed their own
// --benchmark_out, default to the repo-wide machine-readable artifact
// convention (BENCH_<name>.json, google-benchmark's JSON schema).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out = "--benchmark_out=BENCH_lp_solver.json";
  std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
