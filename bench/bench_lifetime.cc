// Extension bench: network lifetime — the resource all this planning
// protects ("the lifetime of the network is tied to the rate at which it
// consumes energy", Section 1). Under a fixed battery budget per mote,
// how many queries does each algorithm sustain before the first death /
// before coverage is lost?

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lifetime.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/naive.h"
#include "src/core/oracle.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace {

constexpr int kNodes = 100;
constexpr int kTop = 10;
constexpr double kBatteryMj = 2.0e5;  // ~2 AA-hours of radio at MICA2 rates

void Report(bench::BenchJson* json, const char* name,
            const core::QueryPlan& plan, const net::NetworkSimulator& sim,
            const core::BatteryModel& batteries) {
  const auto load = core::ExpectedPerNodeEnergy(plan, sim);
  double max_load = 0.0, sum = 0.0;
  int loaded = 0;
  for (size_t i = 1; i < load.size(); ++i) {
    max_load = std::max(max_load, load[i]);
    sum += load[i];
    loaded += load[i] > 0 ? 1 : 0;
  }
  const auto est = core::EstimateLifetime(sim.topology(), batteries, load);
  std::printf("%12s %10.2f %10.4f %12.0f %14.0f %10d\n", name, sum, max_load,
              est.queries_until_first_death, est.queries_until_partition,
              loaded);
  json->Section(name, {"sum_mJ_per_q", "max_mJ_per_q", "first_death",
                       "partition", "nodes_used"});
  json->Row({sum, max_load, est.queries_until_first_death,
             est.queries_until_partition, double(loaded)});
}

void Run() {
  Rng rng(171);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 22.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));
  core::PlannerContext ctx;
  ctx.topology = &topo;
  net::NetworkSimulator sim(&topo, ctx.energy);
  const core::BatteryModel batteries =
      core::BatteryModel::Uniform(kNodes, kBatteryMj);

  std::printf("Network lifetime under %.0f mJ per mote (n=%d, k=%d)\n\n",
              kBatteryMj, kNodes, kTop);
  std::printf("%12s %10s %10s %12s %14s %10s\n", "plan", "sum_mJ/q",
              "max_mJ/q", "first_death", "partition", "nodes_used");

  bench::BenchJson json("lifetime");
  json.Meta("nodes", kNodes).Meta("k", kTop).Meta("battery_mj", kBatteryMj);
  Report(&json, "naive-k", core::MakeNaiveKPlan(topo, kTop), sim, batteries);

  core::LpFilterPlanner planner;
  for (double b : {8.0, 16.0}) {
    auto plan = planner.Plan(ctx, samples, core::PlanRequest{kTop, b});
    if (plan.ok()) {
      char name[32];
      std::snprintf(name, sizeof(name), "lp+lf@%.0fmJ", b);
      Report(&json, name, *plan, sim, batteries);
    }
  }
  const std::vector<double> truth = field.Sample(&rng);
  Report(&json, "oracle", core::MakeOraclePlan(topo, truth, kTop), sim,
         batteries);
  json.Write();

  std::printf("\n(partition = first death that silences live demand below "
              "it; re-planning on the rebuilt tree — net/rebuild.h — would "
              "extend it.)\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
