// Figure 8 reproduction: PROSPECTOR Exact vs the exact baselines.
//
// Exact algorithms must visit every node, so the achievable savings are
// bounded between NAIVE-k (no model knowledge) and ORACLE PROOF (perfect
// knowledge, still proof-carrying). PROSPECTOR Exact plans a
// proof-carrying phase 1 under a budget and mops up the unproven values in
// phase 2; the trial instances sweep the phase-1 budget. Expected shape:
// phase-2 cost falls as the phase-1 budget grows; total cost is U-shaped
// with its optimum recovering a sizable fraction of the NAIVE-k ->
// ORACLE-PROOF gap.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/exact.h"
#include "src/core/naive.h"
#include "src/core/oracle.h"
#include "src/core/proof_executor.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"

namespace prospector {
namespace {

constexpr int kNodes = 50;
constexpr int kTop = 10;
constexpr int kSamples = 10;

void Run() {
  const int query_epochs = bench::QueryEpochs(25);
  Rng rng(81);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();

  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 16.0, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < kSamples; ++s) samples.Add(field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;

  // ---- Baselines (fixed horizontal lines in the figure). ----
  Rng qrng(82);
  RunningStats naive_cost, oracle_proof_cost;
  for (int q = 0; q < query_epochs; ++q) {
    const std::vector<double> truth = field.Sample(&qrng);
    {
      net::NetworkSimulator sim(&topo, ctx.energy);
      core::QueryPlan plan = core::MakeNaiveKPlan(topo, kTop);
      auto r = core::CollectionExecutor::Execute(plan, truth, &sim);
      naive_cost.Add(r.total_energy_mj());
    }
    {
      net::NetworkSimulator sim(&topo, ctx.energy);
      core::QueryPlan plan = core::MakeOracleProofPlan(topo, truth, kTop);
      core::ProofExecutor exec(&plan, &sim);
      auto r = exec.ExecutePhase1(truth);
      oracle_proof_cost.Add(r.total_energy_mj());
    }
  }

  std::printf("Figure 8: PROSPECTOR Exact (n=%d, k=%d, S=%d, %d query "
              "epochs)\n",
              kNodes, kTop, kSamples, query_epochs);
  std::printf("Naive-k cost:      %8.3f mJ (horizontal line)\n",
              naive_cost.mean());
  std::printf("OracleProof cost:  %8.3f mJ (horizontal line)\n",
              oracle_proof_cost.mean());

  const double floor = core::ProofPlanner::MinimumCost(ctx);
  std::printf("proof-plan floor:  %8.3f mJ\n", floor);

  bench::BenchJson json("fig8_exact");
  json.Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("query_epochs", query_epochs)
      .Meta("naive_k_mj", naive_cost.mean())
      .Meta("oracle_proof_mj", oracle_proof_cost.mean())
      .Meta("proof_floor_mj", floor);
  bench::TableHeader(&json, "PROSPECTOR Exact phase breakdown",
                     {"trial", "p1_budget_mJ", "phase1_mJ", "phase2_mJ",
                      "total_mJ", "p1_proven"});

  const std::vector<double> multipliers{1.001, 1.03, 1.07, 1.12, 1.2, 1.35, 1.6};
  int trial = 1;
  for (double mult : multipliers) {
    const double p1_budget = floor * mult;
    core::ProofPlanner planner;
    core::PlanRequest req;
    req.k = kTop;
    req.energy_budget_mj = p1_budget;
    auto plan = planner.Plan(ctx, samples, req);
    if (!plan.ok()) {
      std::fprintf(stderr, "# trial %d: %s\n", trial,
                   plan.status().ToString().c_str());
      ++trial;
      continue;
    }
    Rng erng(83);
    RunningStats p1, p2, proven;
    for (int q = 0; q < query_epochs; ++q) {
      const std::vector<double> truth = field.Sample(&erng);
      net::NetworkSimulator sim(&topo, ctx.energy);
      core::ProofExecutor exec(&plan.value(), &sim);
      auto r1 = exec.ExecutePhase1(truth);
      p1.Add(r1.total_energy_mj());
      proven.Add(r1.proven_count);
      if (r1.proven_count < kTop) {
        auto r2 = exec.ExecuteMopUp();
        p2.Add(r2.total_energy_mj());
        // Sanity: exactness is unconditional.
        if (r2.answer != core::TrueTopK(truth, kTop)) {
          std::fprintf(stderr, "!! inexact answer at trial %d\n", trial);
        }
      } else {
        p2.Add(0.0);
      }
    }
    bench::TableRow(&json, {double(trial), p1_budget, p1.mean(), p2.mean(),
                            p1.mean() + p2.mean(), proven.mean()});
    ++trial;
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
