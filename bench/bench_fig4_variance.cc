// Figure 4 reproduction: effect of reading variance on LP+LF vs LP-LF.
// Means are drawn from a small range; a shared variance sweeps from "top-k
// fully predictable" to "all nodes interchangeable". The energy budget is
// fixed at a level where LP+LF achieves near-perfect accuracy at
// negligible variance.
//
// Expected shape: both degrade as variance grows, LP-LF degrades faster
// (it must commit to a fixed node set), and both level out once means are
// fully diluted.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"

namespace prospector {
namespace {

constexpr int kNodes = 80;
constexpr int kTop = 10;
constexpr int kSamples = 25;
constexpr double kBudgetMj = 10.0;

void Run() {
  const int query_epochs = bench::QueryEpochs(40);
  Rng rng(41);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  core::PlannerContext ctx;
  ctx.topology = &topo;

  std::printf("Figure 4: effect of variance (n=%d, k=%d, budget=%.1f mJ)\n",
              kNodes, kTop, kBudgetMj);
  bench::BenchJson json("fig4_variance");
  json.Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("budget_mj", kBudgetMj)
      .Meta("query_epochs", query_epochs);
  bench::TableHeader(&json, "accuracy vs variance",
                     {"variance", "LP+LF_pct", "LP-LF_pct"});

  const std::vector<double> variances{0.05, 0.5, 1, 2, 4, 6, 8, 10, 12, 14,
                                      20, 40, 80};
  for (double var : variances) {
    Rng vrng(1000 + static_cast<uint64_t>(var * 100));
    data::GaussianField field = data::GaussianField::RandomWithVariance(
        kNodes, 48.0, 52.0, var, &vrng);
    sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
    for (int s = 0; s < kSamples; ++s) samples.Add(field.Sample(&vrng));
    bench::TruthFn truth_fn = [&field](Rng* r) { return field.Sample(r); };

    core::LpFilterPlanner with;
    core::LpNoFilterPlanner without;
    bench::EvalResult rw, ro;
    const bool ok1 = bench::PlanAndEvaluate(&with, ctx, samples, kTop,
                                            kBudgetMj, truth_fn, query_epochs,
                                            42, &rw);
    const bool ok2 = bench::PlanAndEvaluate(&without, ctx, samples, kTop,
                                            kBudgetMj, truth_fn, query_epochs,
                                            42, &ro);
    if (ok1 && ok2) {
      bench::TableRow(
          &json, {var, 100.0 * rw.avg_accuracy, 100.0 * ro.avg_accuracy});
    }
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
