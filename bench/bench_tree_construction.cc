// Ablation: the routing-tree construction the plans run over. The paper
// builds min-hop (BFS) trees for its experiments and cites GHS [5] for
// distributed construction/maintenance; this bench compares the two tree
// shapes on identical placements: construction cost, depth, link weight,
// and what each does to NAIVE-k cost and LP+LF accuracy.
//
// Expected: BFS is shallow (cheaper value paths, better plans); the MST
// minimizes link lengths but grows deep chains that inflate per-value
// transport. A BFS beacon flood is also far cheaper to build than the
// fragment-merging MST protocol.

#include <cstdio>
#include <deque>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/naive.h"
#include "src/data/gaussian_field.h"
#include "src/net/mst.h"

namespace prospector {
namespace {

constexpr int kTop = 10;
constexpr double kBudgetMj = 12.0;

net::Topology BfsTree(const std::vector<net::Point>& pos, double range) {
  const int n = static_cast<int>(pos.size());
  std::vector<int> parents(n, net::Topology::kNoParent);
  std::vector<int> depth(n, -1);
  depth[0] = 0;
  std::deque<int> queue{0};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v = 1; v < n; ++v) {
      if (depth[v] >= 0) continue;
      if (net::Distance(pos[u], pos[v]) <= range) {
        depth[v] = depth[u] + 1;
        parents[v] = u;
        queue.push_back(v);
      }
    }
  }
  auto t = net::Topology::FromParents(std::move(parents)).value();
  t.set_positions(pos);
  return t;
}

void Evaluate(bench::BenchJson* json, const char* name,
              const net::Topology& topo, const data::GaussianField& field,
              int64_t build_messages) {
  Rng rng(161);
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
  for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));
  core::PlannerContext ctx;
  ctx.topology = &topo;

  net::NetworkSimulator sim(&topo, ctx.energy);
  const double naive_cost =
      core::ExpectedCollectionCost(core::MakeNaiveKPlan(topo, kTop), sim);

  core::LpFilterPlanner planner;
  bench::TruthFn truth_fn = [&field](Rng* r) { return field.Sample(r); };
  bench::EvalResult lp;
  const bool ok = bench::PlanAndEvaluate(&planner, ctx, samples, kTop,
                                         kBudgetMj, truth_fn,
                                         bench::QueryEpochs(40), 162, &lp);
  double weight = 0.0;
  for (int v = 1; v < topo.num_nodes(); ++v) {
    weight += net::Distance(topo.positions()[v],
                            topo.positions()[topo.parent(v)]);
  }
  std::printf("%10s %8d %8d %10.1f %12lld %12.2f %14.1f\n", name,
              topo.height(), topo.num_nodes(), weight,
              static_cast<long long>(build_messages), naive_cost,
              ok ? 100.0 * lp.avg_accuracy : -1.0);
  json->Section(name, {"height", "nodes", "weight_m", "build_msgs",
                       "naivek_mJ", "lp_lf_acc_pct"});
  json->Row({double(topo.height()), double(topo.num_nodes()), weight,
             double(build_messages), naive_cost,
             ok ? 100.0 * lp.avg_accuracy : -1.0});
}

void Run() {
  Rng rng(160);
  const int n = 100;
  const double range = 24.0;
  std::vector<net::Point> pos(n);
  pos[0] = {50.0, 50.0};
  for (int i = 1; i < n; ++i) {
    pos[i] = {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)};
  }
  auto mst = net::BuildDistributedMst(pos, range);
  if (!mst.ok()) {
    std::fprintf(stderr, "%s\n", mst.status().ToString().c_str());
    return;
  }
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);

  std::printf("Routing-tree construction ablation (n=%d, k=%d, LP+LF at "
              "%.0f mJ)\n\n",
              n, kTop, kBudgetMj);
  std::printf("%10s %8s %8s %10s %12s %12s %14s\n", "tree", "height", "nodes",
              "weight_m", "build_msgs", "naivek_mJ", "lp_lf_acc_pct");
  bench::BenchJson json("tree_construction");
  json.Meta("nodes", n).Meta("k", kTop).Meta("budget_mj", kBudgetMj);
  // A BFS beacon flood costs one broadcast per node.
  Evaluate(&json, "bfs", BfsTree(pos, range), field, n);
  Evaluate(&json, "ghs-mst", mst->topology, field, mst->messages);
  json.Write();
  std::printf("\n(MST rounds: %d; the shallow BFS tree keeps per-value "
              "paths short, which the planners prefer.)\n",
              mst->rounds);
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
