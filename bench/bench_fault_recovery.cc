// Fault-recovery timeline (DESIGN.md, "Failure semantics"): a standing
// top-k session loses an interior node mid-run. The recall series shows
// the three acts — steady state, the dark window while the watchdog
// accumulates evidence, and recovery once the session rebuilds the tree
// without the dead subtree and replans on the survivors. A second run
// layers lossy transport on top to show graceful degradation instead of
// protocol collapse.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/session.h"
#include "src/data/gaussian_field.h"
#include "src/obs/trace.h"

namespace prospector {
namespace {

constexpr int kNodes = 60;
constexpr int kTop = 5;
constexpr int kKillEpoch = 24;
constexpr int kDeadAfter = 3;
constexpr int kBootstrap = 8;
constexpr double kRange = 24.0;

double Recall(const std::vector<core::Reading>& answer,
              const std::vector<double>& truth,
              const std::vector<int>& eligible, int k) {
  std::vector<core::Reading> pool;
  for (int id : eligible) pool.push_back({id, truth[id]});
  core::SortReadings(&pool);
  if (static_cast<int>(pool.size()) > k) pool.resize(k);
  std::vector<char> in_ans(truth.size(), 0);
  for (const core::Reading& r : answer) in_ans[r.node] = 1;
  int hit = 0;
  for (const core::Reading& r : pool) hit += in_ans[r.node];
  return static_cast<double>(hit) / static_cast<double>(k);
}

void RunTimeline(const char* title, net::LossyTransport lossy,
                 net::FailureModel failures, bench::BenchJson* json,
                 double scenario_id, int epochs) {
  Rng rng(211);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = kRange;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 9, &rng);

  // The scripted casualty: an interior node with children, so its death
  // darkens a whole subtree rather than one leaf.
  int victim = -1;
  for (int u = 0; u < kNodes && victim < 0; ++u) {
    if (u != topo.root() && topo.children(u).size() >= 2) victim = u;
  }
  // Put two of the top readings inside the doomed subtree so the dark
  // window visibly costs recall — exactly the adversarial placement the
  // watchdog exists for.
  field.set_node(topo.children(victim)[0], 90.0, 1.0);
  field.set_node(topo.children(victim)[1], 85.0, 1.0);

  core::SessionOptions opt;
  opt.k = kTop;
  opt.energy_budget_mj = 60.0;
  opt.sample_window = 20;
  opt.bootstrap_sweeps = kBootstrap;
  opt.manager.base_explore_probability = 0.05;
  opt.dead_after_epochs = kDeadAfter;
  opt.rebuild_radio_range = kRange;
  opt.lossy = lossy;
  opt.faults.KillNode(kKillEpoch, victim);

  core::TopKQuerySession session(&topo, net::EnergyModel{}, failures, opt,
                                 /*seed=*/17);
  std::vector<int> all(kNodes);
  for (int i = 0; i < kNodes; ++i) all[i] = i;

  std::printf("\n-- %s (victim=%d killed at epoch %d) --\n", title, victim,
              kKillEpoch);
  bench::PrintHeader(title, {"epoch", "recall_full", "recall_surv", "mJ",
                             "lost", "degraded", "rebuilt"});
  Rng truth_rng(212);
  int rebuild_epoch = -1;
  RunningStats pre, dark, post;
  for (int e = 0; e < epochs; ++e) {
    const std::vector<double> truth = field.Sample(&truth_rng);
    auto tick = session.Tick(truth);
    if (!tick.ok()) {
      std::fprintf(stderr, "tick %d: %s\n", e, tick.status().ToString().c_str());
      return;
    }
    if (tick->rebuilt && rebuild_epoch < 0) rebuild_epoch = e;
    const bool answered = tick->kind != core::TopKQuerySession::TickResult::
                                            Kind::kBootstrap &&
                          tick->kind !=
                              core::TopKQuerySession::TickResult::Kind::kExplore;
    const double rf = answered ? Recall(tick->answer, truth, all, kTop) : -1.0;
    const double rs =
        answered ? Recall(tick->answer, truth, session.original_ids(), kTop)
                 : -1.0;
    if (answered) {
      if (e < kKillEpoch) {
        pre.Add(rf);
      } else if (rebuild_epoch < 0 || e <= rebuild_epoch) {
        dark.Add(rf);
      } else {
        post.Add(rs);
      }
    }
    bench::PrintRow({static_cast<double>(e), rf, rs, tick->energy_mj,
                     static_cast<double>(tick->values_lost),
                     tick->degraded ? 1.0 : 0.0, tick->rebuilt ? 1.0 : 0.0});
    json->Row({scenario_id, static_cast<double>(e), rf, rs, tick->energy_mj,
               static_cast<double>(tick->values_lost),
               tick->degraded ? 1.0 : 0.0, tick->rebuilt ? 1.0 : 0.0});
  }
  std::printf(
      "\nsteady recall %.3f -> dark-window recall %.3f -> post-rebuild "
      "recall (vs survivors) %.3f; rebuild at epoch %d (%d rebuild%s)\n",
      pre.mean(), dark.mean(), post.mean(), rebuild_epoch,
      session.rebuilds(), session.rebuilds() == 1 ? "" : "s");
}

void Run() {
  const int epochs = bench::QueryEpochs(60);
  std::printf("Fault recovery timeline (n=%d, k=%d, kill@%d, watchdog=%d)\n",
              kNodes, kTop, kKillEpoch, kDeadAfter);
  // Every span the sessions open below lands in TRACE_fault_recovery.json,
  // loadable in chrome://tracing (or ui.perfetto.dev).
  obs::Tracer::Global().Enable();
  bench::BenchJson json("fault_recovery");
  json.Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("epochs", epochs)
      .Meta("kill_epoch", kKillEpoch)
      .Meta("dead_after_epochs", kDeadAfter)
      .Columns({"scenario", "epoch", "recall_full", "recall_survivors",
                "energy_mj", "values_lost", "degraded", "rebuilt"});

  // Scenario 0: clean transport; the only fault is the scripted death.
  RunTimeline("clean transport + node death", net::LossyTransport{},
              net::FailureModel{}, &json, 0.0, epochs);

  // Scenario 1: the same death under lossy transport (p=0.3, 2 retries) —
  // answers degrade gracefully instead of the protocol collapsing.
  net::LossyTransport lossy;
  lossy.enabled = true;
  lossy.max_retries = 2;
  lossy.backoff_cost_growth = 1.5;
  RunTimeline("lossy transport (p=0.3) + node death", lossy,
              net::FailureModel::Uniform(0.3), &json, 1.0, epochs);

  json.Write();
  obs::Tracer::Global().Disable();
  if (obs::Tracer::Global().WriteChromeTrace("TRACE_fault_recovery.json")) {
    std::printf("wrote TRACE_fault_recovery.json\n");
  }
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
