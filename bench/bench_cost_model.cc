// Section 2 cost-table reproduction: the MICA2-derived communication
// constants the whole evaluation runs on, plus derived quantities that
// frame the approximate-vs-exact trade-off.

#include <cstdio>
#include <initializer_list>

#include "bench/bench_util.h"
#include "src/net/energy_model.h"

namespace prospector {
namespace {

void Run() {
  net::EnergyModel e;
  std::printf("Section 2: communication energy model (MICA2-derived)\n\n");
  std::printf("%-34s %10.4f mJ\n", "per-message cost (c_m)", e.per_message_mj);
  std::printf("%-34s %10.4f mJ/byte\n", "per-byte cost (c_b)", e.per_byte_mj);
  std::printf("%-34s %10d bytes\n", "bytes per transported value",
              e.bytes_per_value);
  std::printf("%-34s %10.4f mJ\n", "per-value cost (c_v)", e.PerValueCost());
  std::printf("%-34s %10.4f mJ\n", "empty trigger broadcast",
              e.BroadcastCost());
  bench::BenchJson json("cost_model");
  json.Meta("per_message_mj", e.per_message_mj)
      .Meta("per_byte_mj", e.per_byte_mj)
      .Meta("bytes_per_value", e.bytes_per_value)
      .Meta("per_value_mj", e.PerValueCost())
      .Meta("broadcast_mj", e.BroadcastCost());
  json.Columns({"values", "cost_mJ"});
  std::printf("\nmessage cost by payload:\n");
  std::printf("%12s %12s\n", "values", "cost_mJ");
  for (int v : {0, 1, 2, 5, 10, 20, 50}) {
    std::printf("%12d %12.4f\n", v, e.MessageCost(v));
    json.Row({double(v), e.MessageCost(v)});
  }
  json.Write();
  std::printf("\nc_m / c_v ratio: %.1f — contacting a node dominates small "
              "messages,\nwhich is what makes approximate node-subset plans "
              "pay off;\nvalue transport stays non-negligible, which is what "
              "makes local\nfiltering pay off.\n",
              e.per_message_mj / e.PerValueCost());
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
