// Figure 7 reproduction: varying the number of contention zones at a fixed
// budget chosen to show a large LP+LF / LP-LF gap. With z zones of k nodes
// each, a zone node exceeds the background with probability 1/z, so the
// expected number of zone nodes above background stays k while each zone's
// share of the top-k shrinks.
//
// Expected shape: both algorithms degrade as zones multiply (a plan must
// reach more zones for the same k values), with LP+LF staying ahead.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/data/contention.h"

namespace prospector {
namespace {

constexpr int kTop = 10;
constexpr int kSamples = 25;
constexpr double kBudgetMj = 10.0;

void Run() {
  const int query_epochs = bench::QueryEpochs(40);
  std::printf("Figure 7: varying number of contention zones "
              "(k=%d, budget=%.1f mJ)\n",
              kTop, kBudgetMj);
  bench::BenchJson json("fig7_zones");
  json.Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("budget_mj", kBudgetMj)
      .Meta("query_epochs", query_epochs);
  bench::TableHeader(&json, "accuracy vs #zones",
                     {"zones", "LP+LF_pct", "LP-LF_pct"});

  for (int zones = 1; zones <= 6; ++zones) {
    data::ContentionZoneOptions opts;
    opts.num_zones = zones;
    opts.nodes_per_zone = kTop;
    opts.num_background = 40;
    opts.radio_range = 24.0;
    // P(zone node > m) = 1/z, capped below 1/2 so zone means stay under
    // the background mean (z <= 2 would otherwise need mean >= m).
    opts.exceed_probability = std::min(1.0 / zones, 0.45);
    Rng rng(70 + zones);
    auto built = data::BuildContentionScenario(opts, &rng);
    if (!built.ok()) {
      std::fprintf(stderr, "# zones=%d: %s\n", zones,
                   built.status().ToString().c_str());
      continue;
    }
    const data::ContentionScenario& scenario = built.value();
    const net::Topology& topo = scenario.topology;

    sampling::SampleSet samples =
        sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
    for (int s = 0; s < kSamples; ++s) {
      samples.Add(scenario.field.Sample(&rng));
    }
    bench::TruthFn truth_fn = [&scenario](Rng* r) {
      return scenario.field.Sample(r);
    };
    core::PlannerContext ctx;
    ctx.topology = &topo;

    core::LpFilterPlanner with;
    core::LpNoFilterPlanner without;
    bench::EvalResult rw, ro;
    const bool ok1 =
        bench::PlanAndEvaluate(&with, ctx, samples, kTop, kBudgetMj, truth_fn,
                               query_epochs, 71, &rw);
    const bool ok2 =
        bench::PlanAndEvaluate(&without, ctx, samples, kTop, kBudgetMj,
                               truth_fn, query_epochs, 71, &ro);
    if (ok1 && ok2) {
      bench::TableRow(&json, {double(zones), 100.0 * rw.avg_accuracy,
                              100.0 * ro.avg_accuracy});
    }
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
