// Ablation (Section 4.4): failure-aware planning. Transient edge failures
// force the reliable protocol to re-route, doubling a message's cost.
// Folding the expected inflation into the planner's edge costs keeps the
// realized energy within budget; a failure-blind planner overshoots it.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace {

constexpr int kNodes = 80;
constexpr int kTop = 10;
constexpr double kBudgetMj = 12.0;

void Run() {
  const int query_epochs = bench::QueryEpochs(200);
  Rng rng(111);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < 25; ++s) samples.Add(field.Sample(&rng));

  std::printf("Failure ablation (n=%d, k=%d, budget=%.1f mJ, %d epochs)\n",
              kNodes, kTop, kBudgetMj, query_epochs);
  bench::PrintHeader("failure-aware vs failure-blind planning",
                     {"fail_prob", "aware_mJ", "aware_pct", "blind_mJ",
                      "blind_pct"});
  bench::BenchJson json("failures");
  json.Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("budget_mj", kBudgetMj)
      .Meta("epochs", query_epochs)
      .Columns({"fail_prob", "aware_energy_mj", "aware_recall",
                "blind_energy_mj", "blind_recall"});

  for (double p : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    net::FailureModel failures;
    failures.edge_failure_prob.assign(kNodes, p);
    failures.reroute_cost_factor = 2.0;

    bench::TruthFn truth_fn = [&field](Rng* r) { return field.Sample(r); };

    // Aware: plans with inflated edge costs; blind: plans as if reliable.
    core::PlannerContext aware_ctx;
    aware_ctx.topology = &topo;
    aware_ctx.failures = failures;
    core::PlannerContext blind_ctx;
    blind_ctx.topology = &topo;

    core::LpFilterPlanner aware_planner, blind_planner;
    core::PlanRequest req{kTop, kBudgetMj};
    auto aware_plan = aware_planner.Plan(aware_ctx, samples, req);
    auto blind_plan = blind_planner.Plan(blind_ctx, samples, req);
    if (!aware_plan.ok() || !blind_plan.ok()) continue;

    // Both execute in the same failing world.
    bench::EvalResult aware = bench::EvaluatePlan(
        *aware_plan, topo, aware_ctx.energy, truth_fn, query_epochs, 112,
        failures);
    bench::EvalResult blind = bench::EvaluatePlan(
        *blind_plan, topo, blind_ctx.energy, truth_fn, query_epochs, 112,
        failures);
    bench::PrintRow({p, aware.avg_energy_mj, 100.0 * aware.avg_accuracy,
                     blind.avg_energy_mj, 100.0 * blind.avg_accuracy});
    json.Row({p, aware.avg_energy_mj, aware.avg_accuracy,
              blind.avg_energy_mj, blind.avg_accuracy});
  }
  std::printf("\n(The blind plan's realized energy overshoots the budget as "
              "failures rise;\nthe aware plan trades a little accuracy to "
              "stay within it.)\n");
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
