// Incremental replanning: per-epoch planning cost with and without a
// shared core::PlanningWorkspace on the Figure-3 deployment (n=100,
// k=10, geometric network). Each query epoch slides the sample window by
// one fresh reading and replans; the cold mode rebuilds every LP from
// scratch (the seed behavior), the workspace modes delta-patch the cached
// model and hot-start the simplex from the retained tableau.
//
// Three modes per planner:
//   * cold     — no workspace; every epoch pays the full build + solve.
//   * checked  — workspace with the default cross-check: warm solves are
//     verified against a cold re-solve and the cold solution is returned,
//     so plans are bit-identical to the cold mode (the process aborts if
//     any epoch's plan differs). This mode still skips model rebuilds.
//   * trust    — cross-check off: the steady-state fast path. Objectives
//     match cold; a degenerate LP may round to an equally good twin plan.
//
// Expected shape: steady-state (epochs after the first) replan cost in
// the workspace modes sits below the cold per-epoch cost, with trust <
// checked < cold for the LP planners.
//
// Emits BENCH_incremental_replan.json in the current working directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/proof_planner.h"
#include "src/core/workspace.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/util/rng.h"

namespace prospector {
namespace {

constexpr int kNodes = 100;
// The proof LP grows as #samples x #nodes x tree height and is
// dense-tableau bound, so — like the Figure-8 bench — the proof planner
// runs on a smaller deployment.
constexpr int kProofNodes = 50;
constexpr int kTop = 10;
constexpr int kWindow = 16;        // sliding sample window
constexpr int kAddsPerEpoch = 1;   // fresh readings per query epoch
constexpr double kBudgetMj = 12.0;

std::unique_ptr<core::Planner> MakePlanner(int which) {
  core::LpPlannerOptions lp_opts;
  switch (which) {
    case 0:
      return std::make_unique<core::GreedyPlanner>();
    case 1:
      return std::make_unique<core::LpNoFilterPlanner>(lp_opts);
    case 2:
      return std::make_unique<core::LpFilterPlanner>(lp_opts);
    default:
      return std::make_unique<core::ProofPlanner>(lp_opts);
  }
}

bool SamePlan(const core::QueryPlan& a, const core::QueryPlan& b) {
  return a.kind == b.kind && a.k == b.k && a.bandwidth == b.bandwidth &&
         a.chosen == b.chosen;
}

/// The reading sequence every mode replays, so all modes plan against an
/// identical sample history.
struct Stream {
  std::vector<std::vector<double>> initial;             // fills the window
  std::vector<std::vector<std::vector<double>>> epochs; // per-epoch adds
};

struct ModeResult {
  std::vector<core::QueryPlan> plans;  // one per epoch
  double first_ms = 0.0;   // epoch 0: the cold build even with a workspace
  double steady_ms = 0.0;  // median over the remaining epochs
  core::WorkspaceCounters counters;
};

ModeResult RunMode(int which, const Stream& stream, const net::Topology& topo,
                   double budget, core::PlanningWorkspace* workspace) {
  core::PlannerContext ctx;
  ctx.topology = &topo;
  ctx.workspace = workspace;

  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop, kWindow);
  for (const auto& r : stream.initial) samples.Add(r);

  core::PlanRequest req;
  req.k = kTop;
  req.energy_budget_mj = budget;

  std::unique_ptr<core::Planner> planner = MakePlanner(which);
  ModeResult out;
  std::vector<double> steady;
  for (size_t e = 0; e < stream.epochs.size(); ++e) {
    for (const auto& r : stream.epochs[e]) samples.Add(r);
    const auto t0 = std::chrono::steady_clock::now();
    auto plan = planner->Plan(ctx, samples, req);
    const auto t1 = std::chrono::steady_clock::now();
    if (!plan.ok()) {
      std::fprintf(stderr, "%s failed at epoch %zu: %s\n",
                   planner->name().c_str(), e,
                   plan.status().ToString().c_str());
      std::abort();
    }
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (e == 0) {
      out.first_ms = ms;
    } else {
      steady.push_back(ms);
    }
    out.plans.push_back(std::move(*plan));
  }
  // Median, not mean: a single-core box under sporadic scheduler steal
  // produces multi-x outliers that would swamp the cold/hot comparison.
  if (steady.empty()) {
    out.steady_ms = out.first_ms;
  } else {
    std::sort(steady.begin(), steady.end());
    out.steady_ms = steady[steady.size() / 2];
  }
  if (workspace != nullptr) out.counters = workspace->counters();
  return out;
}

struct Deployment {
  net::Topology topology;
  Stream stream;
};

Deployment MakeDeployment(int num_nodes, double radio_range, int epochs,
                          Rng* rng) {
  net::GeometricNetworkOptions geo;
  geo.num_nodes = num_nodes;
  geo.radio_range = radio_range;
  Deployment d{net::BuildConnectedGeometricNetwork(geo, rng).value(), {}};
  data::GaussianField field =
      data::GaussianField::Random(num_nodes, 40.0, 60.0, 1.0, 16.0, rng);
  for (int s = 0; s < kWindow; ++s) d.stream.initial.push_back(field.Sample(rng));
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::vector<double>> adds;
    for (int a = 0; a < kAddsPerEpoch; ++a) adds.push_back(field.Sample(rng));
    d.stream.epochs.push_back(std::move(adds));
  }
  return d;
}

void Run() {
  const int epochs = bench::QueryEpochs(30);
  Rng rng(20060403);
  const Deployment fig3 = MakeDeployment(kNodes, 22.0, epochs, &rng);
  const Deployment proof_net = MakeDeployment(kProofNodes, 24.0, epochs, &rng);

  // The proof planner needs its mandatory per-edge floor covered.
  core::PlannerContext floor_ctx;
  floor_ctx.topology = &proof_net.topology;
  const double proof_budget = core::ProofPlanner::MinimumCost(floor_ctx) * 1.6;

  std::printf("Incremental replanning (n=%d, k=%d, window=%d, +%d/epoch, "
              "%d epochs)\n",
              kNodes, kTop, kWindow, kAddsPerEpoch, epochs);
  std::printf(
      "steady-state ms = median plan time over epochs after the first\n");

  bench::BenchJson json("incremental_replan");
  json.Meta("nodes", kNodes)
      .Meta("proof_nodes", kProofNodes)
      .Meta("k", kTop)
      .Meta("window", kWindow)
      .Meta("adds_per_epoch", kAddsPerEpoch)
      .Meta("epochs", epochs)
      .Meta("budget_mj", kBudgetMj)
      .Meta("proof_budget_mj", proof_budget)
      .Meta("bit_identical_checked", 1);

  bench::TableHeader(&json, "steady-state replan cost (ms per plan)",
                     {"planner", "cold_first_ms", "cold_steady_ms",
                      "checked_steady_ms", "trust_steady_ms", "trust_speedup"});

  struct CounterRow {
    int which;
    core::WorkspaceCounters c;
  };
  std::vector<CounterRow> counter_rows;

  for (int which = 0; which < 4; ++which) {
    const Deployment& dep = which == 3 ? proof_net : fig3;
    const net::Topology& topo = dep.topology;
    const Stream& stream = dep.stream;
    const double budget = which == 3 ? proof_budget : kBudgetMj;
    const ModeResult cold = RunMode(which, stream, topo, budget, nullptr);

    core::WorkspaceOptions checked_opts;  // cross_check defaults to true
    core::PlanningWorkspace checked_ws(checked_opts);
    const ModeResult checked = RunMode(which, stream, topo, budget, &checked_ws);

    core::WorkspaceOptions trust_opts;
    trust_opts.cross_check = false;
    core::PlanningWorkspace trust_ws(trust_opts);
    const ModeResult trust = RunMode(which, stream, topo, budget, &trust_ws);

    // The checked mode's contract: bit-identical plans, every epoch.
    for (size_t e = 0; e < cold.plans.size(); ++e) {
      if (!SamePlan(cold.plans[e], checked.plans[e])) {
        std::fprintf(stderr,
                     "FATAL: planner %d epoch %zu: checked workspace plan "
                     "differs from cold plan\n",
                     which, e);
        std::abort();
      }
    }

    std::printf("  [%d] %s\n", which, MakePlanner(which)->name().c_str());
    bench::TableRow(&json,
                    {double(which), cold.first_ms, cold.steady_ms,
                     checked.steady_ms, trust.steady_ms,
                     trust.steady_ms > 0.0 ? cold.steady_ms / trust.steady_ms
                                           : 0.0});
    counter_rows.push_back({which, trust.counters});
  }

  bench::TableHeader(&json, "workspace counters (trust mode)",
                     {"planner", "lp_hits", "lp_misses", "lp_patches",
                      "warm_attempts", "warm_successes", "topo_hits",
                      "topo_misses"});
  for (const CounterRow& r : counter_rows) {
    bench::TableRow(&json, {double(r.which), double(r.c.lp_hits),
                            double(r.c.lp_misses), double(r.c.lp_patches),
                            double(r.c.warm_attempts),
                            double(r.c.warm_successes), double(r.c.topo_hits),
                            double(r.c.topo_misses)});
  }

  json.Write();
  std::printf("(checked-workspace plans bit-identical to cold plans)\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
