// Parallel planning engine scaling: wall-clock time of a 400-node /
// 200-sample planning workload at 1/2/4/8 threads. The workload is one
// LP+LF plan (on a 24-sample subset — its per-sample constraint matrix is
// dense-tableau bound), an 8-point budget sweep of LP-LF plans against the
// full 200 samples, and SampleHits evaluation of every plan over all 200
// samples.
//
// Two guarantees are exercised here, not just measured:
//   * every thread count produces bit-identical plans and hit counts to
//     the single-threaded run (the process aborts otherwise), and
//   * the speedup column in BENCH_parallel_scaling.json records how much
//     wall time the pool actually buys on this machine.
//
// Emits BENCH_parallel_scaling.json in the current working directory.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_eval.h"
#include "src/core/plan_manager.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace {

constexpr int kNodes = 400;
constexpr int kTop = 20;
constexpr int kSamples = 200;
// LP+LF builds one constraint row per (sample, candidate) pair and solves a
// dense tableau, so it runs on a subset; everything else uses all samples.
constexpr int kFilterSamples = 24;
constexpr int kRepeats = 3;  // best-of to damp scheduler noise

struct WorkloadResult {
  core::QueryPlan filter_plan;
  std::vector<core::QueryPlan> sweep_plans;
  std::vector<int> hits;
};

struct Instance {
  net::Topology topology;
  sampling::SampleSet samples;
  sampling::SampleSet filter_samples;
  core::PlannerContext ctx;
};

Instance MakeInstance() {
  Rng rng(20060606);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.width = 200.0;
  geo.height = 200.0;
  geo.radio_range = 25.0;
  Instance inst{net::BuildConnectedGeometricNetwork(geo, &rng).value(),
                sampling::SampleSet::ForTopK(kNodes, kTop),
                sampling::SampleSet::ForTopK(kNodes, kTop),
                core::PlannerContext{}};
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 16.0, &rng);
  for (int s = 0; s < kSamples; ++s) {
    const std::vector<double> reading = field.Sample(&rng);
    inst.samples.Add(reading);
    if (s < kFilterSamples) inst.filter_samples.Add(reading);
  }
  inst.ctx.topology = &inst.topology;
  return inst;
}

// The timed unit of work: one LP+LF solve, one 8-budget LP-LF sweep, and a
// SampleHits evaluation of the filter plan — the planning-side hot path.
WorkloadResult RunWorkload(const Instance& inst, util::ThreadPool* pool,
                           int threads) {
  WorkloadResult out;

  core::LpPlannerOptions opts;
  opts.threads = threads;
  core::LpFilterPlanner filter(opts);
  core::PlanRequest req;
  req.k = kTop;
  req.energy_budget_mj = 40.0;
  auto plan = filter.Plan(inst.ctx, inst.filter_samples, req);
  if (!plan.ok()) {
    std::fprintf(stderr, "LP+LF failed: %s\n", plan.status().ToString().c_str());
    std::abort();
  }
  out.filter_plan = *plan;

  std::vector<core::PlanRequest> requests;
  for (double b : {8.0, 12.0, 16.0, 20.0, 24.0, 32.0, 40.0, 48.0}) {
    core::PlanRequest r;
    r.k = kTop;
    r.energy_budget_mj = b;
    requests.push_back(r);
  }
  core::PlannerFactory factory = [&opts] {
    return std::make_unique<core::LpNoFilterPlanner>(opts);
  };
  for (auto& r :
       core::PlanSweep(factory, inst.ctx, inst.samples, requests, pool)) {
    if (!r.ok()) {
      std::fprintf(stderr, "sweep failed: %s\n", r.status().ToString().c_str());
      std::abort();
    }
    out.sweep_plans.push_back(std::move(*r));
  }

  out.hits.push_back(
      core::SampleHits(out.filter_plan, inst.topology, inst.samples, pool));
  for (const core::QueryPlan& p : out.sweep_plans) {
    out.hits.push_back(core::SampleHits(p, inst.topology, inst.samples, pool));
  }
  return out;
}

bool SamePlan(const core::QueryPlan& a, const core::QueryPlan& b) {
  return a.kind == b.kind && a.k == b.k && a.bandwidth == b.bandwidth &&
         a.chosen == b.chosen;
}

void CheckIdentical(const WorkloadResult& base, const WorkloadResult& got,
                    int threads) {
  bool ok = SamePlan(base.filter_plan, got.filter_plan) &&
            base.hits == got.hits &&
            base.sweep_plans.size() == got.sweep_plans.size();
  for (size_t i = 0; ok && i < base.sweep_plans.size(); ++i) {
    ok = SamePlan(base.sweep_plans[i], got.sweep_plans[i]);
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: %d-thread result differs from single-threaded\n",
                 threads);
    std::abort();
  }
}

void Run() {
  const Instance inst = MakeInstance();
  std::printf("Parallel scaling: n=%d, k=%d, S=%d (hardware threads: %d)\n",
              kNodes, kTop, kSamples, util::ThreadPool::HardwareThreads());
  std::printf("%10s%14s%12s%12s\n", "threads", "best_ms", "speedup", "eff_pct");

  struct Row {
    int threads;
    double best_ms;
    double speedup;
  };
  std::vector<Row> rows;
  WorkloadResult baseline;

  for (int threads : {1, 2, 4, 8}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
    double best_ms = 0.0;
    WorkloadResult result;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      result = RunWorkload(inst, pool.get(), threads);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    if (threads == 1) {
      baseline = result;
    } else {
      CheckIdentical(baseline, result, threads);
    }
    const double speedup = rows.empty() ? 1.0 : rows[0].best_ms / best_ms;
    rows.push_back({threads, best_ms, speedup});
    std::printf("%10d%14.1f%12.2f%12.1f\n", threads, best_ms, speedup,
                100.0 * speedup / threads);
  }

  // On a single-core host every extra thread is pure oversubscription:
  // speedup < 1 is the expected shape, not a regression. Say so out loud
  // and stamp the artifact, so a bench_diff against a multi-core run (or a
  // human reading the table) doesn't misread the column.
  const int hardware = util::ThreadPool::HardwareThreads();
  const bool single_core = hardware <= 1;
  if (single_core) {
    std::printf(
        "NOTE: host has 1 hardware thread; speedup < 1 above reflects "
        "oversubscription overhead, not a planner regression\n");
  }

  bench::BenchJson json("parallel_scaling");
  json.Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("repeats", kRepeats)
      .Meta("bit_identical", 1)
      .HostFact("hardware_concurrency", hardware)
      .HostFact("speedup_below_one_expected", single_core ? 1 : 0)
      .Columns({"threads", "best_ms", "speedup"});
  for (const Row& r : rows) {
    json.Row({double(r.threads), r.best_ms, r.speedup});
  }
  json.Write();
  std::printf("(all thread counts bit-identical to serial)\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
