// Figure 9 reproduction: the Intel Berkeley Research Lab experiment, run
// on our synthetic lab trace (see DESIGN.md for the substitution): 54
// motes, shortened radio range forcing a hierarchical tree, temperature
// readings with persistently warm spots, ~3% missing readings imputed by
// prior/next-epoch averaging. The first 50 epochs serve as samples; the
// queries run on the following epochs with k=5.
//
// Expected shape: LP-LF beats Greedy until both saturate near 100%;
// LP+LF is nearly identical to LP-LF (top-k locations are predictable, so
// local filtering adds nothing); NAIVE-k needs several times more energy.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/naive.h"
#include "src/data/lab_trace.h"

namespace prospector {
namespace {

constexpr int kTop = 5;
constexpr int kSampleEpochs = 50;

void Run() {
  const int query_epochs = bench::QueryEpochs(100);
  data::LabTraceOptions opts;
  opts.num_epochs = kSampleEpochs + query_epochs;
  Rng rng(91);
  auto built = data::BuildLabScenario(opts, &rng);
  if (!built.ok()) {
    std::fprintf(stderr, "lab scenario: %s\n", built.status().ToString().c_str());
    return;
  }
  data::LabScenario& lab = built.value();
  lab.trace.ImputeMissing();
  const net::Topology& topo = lab.topology;
  const int n = topo.num_nodes();

  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, kTop);
  samples.AddTrace(lab.trace.Slice(0, kSampleEpochs));

  core::PlannerContext ctx;
  ctx.topology = &topo;

  std::printf("Figure 9: Intel-Lab-style trace (54 motes, tree height %d, "
              "k=%d, %d sample epochs)\n",
              topo.height(), kTop, kSampleEpochs);
  bench::BenchJson json("fig9_intel_lab");
  json.Meta("nodes", n)
      .Meta("k", kTop)
      .Meta("sample_epochs", kSampleEpochs)
      .Meta("query_epochs", query_epochs);

  // Queries replay the trace after the sample window.
  auto evaluate = [&](const core::QueryPlan& plan) {
    net::NetworkSimulator sim(&topo, ctx.energy);
    RunningStats acc, joule;
    for (int t = kSampleEpochs; t < lab.trace.num_epochs(); ++t) {
      const std::vector<double>& truth = lab.trace.epoch(t);
      auto r = core::CollectionExecutor::Execute(plan, truth, &sim);
      acc.Add(core::TopKRecall(r, truth, kTop));
      joule.Add(r.total_energy_mj());
      sim.ResetStats();
    }
    return std::pair<double, double>(joule.mean(), acc.mean());
  };

  core::GreedyPlanner greedy;
  core::LpNoFilterPlanner lp_no_lf;
  core::LpFilterPlanner lp_lf;
  core::Planner* planners[] = {&greedy, &lp_no_lf, &lp_lf};
  for (core::Planner* p : planners) {
    bench::TableHeader(&json, p->name(),
                       {"budget_mJ", "energy_mJ", "accuracy_pct"});
    for (double b : {1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 7.0, 9.0}) {
      core::PlanRequest req;
      req.k = kTop;
      req.energy_budget_mj = b;
      auto plan = p->Plan(ctx, samples, req);
      if (!plan.ok()) {
        std::fprintf(stderr, "# %s @ %.1f: %s\n", p->name().c_str(), b,
                     plan.status().ToString().c_str());
        continue;
      }
      auto [joule, acc] = evaluate(*plan);
      bench::TableRow(&json, {b, joule, 100.0 * acc});
    }
  }

  // NAIVE-k reference cost at full accuracy.
  auto [nk_joule, nk_acc] = evaluate(core::MakeNaiveKPlan(topo, kTop));
  json.Meta("naive_k_mj", nk_joule).Meta("naive_k_accuracy", nk_acc);
  json.Write();
  std::printf("\nNaive-k: %.3f mJ at %.1f%% accuracy (the approximate plans "
              "above should reach ~100%% for roughly a third of that)\n",
              nk_joule, 100.0 * nk_acc);
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
