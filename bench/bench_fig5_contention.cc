// Figure 5 reproduction: contention zones. Six zones of k nodes each sit
// on the field's perimeter with the root at the center; zone nodes have
// lower means but variance tuned so each exceeds the background mean with
// probability 1/6 (expected k zone nodes above background). Accuracy vs
// energy for LP+LF and LP-LF.
//
// Expected shape: LP+LF greatly outperforms LP-LF, with the gap widening
// as the budget grows — LP-LF wastes budget acquiring whole zones, LP+LF
// taps every zone and locally filters.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/data/contention.h"

namespace prospector {
namespace {

constexpr int kTop = 10;
constexpr int kSamples = 25;

void Run() {
  const int query_epochs = bench::QueryEpochs(40);
  data::ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = kTop;
  opts.num_background = 40;
  Rng rng(51);
  auto scenario = data::BuildContentionScenario(opts, &rng).value();
  const net::Topology& topo = scenario.topology;

  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
  for (int s = 0; s < kSamples; ++s) samples.Add(scenario.field.Sample(&rng));
  bench::TruthFn truth_fn = [&scenario](Rng* r) {
    return scenario.field.Sample(r);
  };

  core::PlannerContext ctx;
  ctx.topology = &topo;

  std::printf("Figure 5: contention zones (%d zones x %d nodes + %d "
              "background, k=%d)\n",
              opts.num_zones, opts.nodes_per_zone, opts.num_background, kTop);
  bench::BenchJson json("fig5_contention");
  json.Meta("zones", opts.num_zones)
      .Meta("nodes_per_zone", opts.nodes_per_zone)
      .Meta("background", opts.num_background)
      .Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("query_epochs", query_epochs);
  bench::TableHeader(&json, "accuracy vs energy",
                     {"budget_mJ", "LP+LF_mJ", "LP+LF_pct", "LP-LF_mJ",
                      "LP-LF_pct"});

  for (double b : {4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 26.0, 32.0}) {
    core::LpFilterPlanner with;
    core::LpNoFilterPlanner without;
    bench::EvalResult rw, ro;
    const bool ok1 = bench::PlanAndEvaluate(&with, ctx, samples, kTop, b,
                                            truth_fn, query_epochs, 52, &rw);
    const bool ok2 = bench::PlanAndEvaluate(&without, ctx, samples, kTop, b,
                                            truth_fn, query_epochs, 52, &ro);
    if (ok1 && ok2) {
      bench::TableRow(&json,
                      {b, rw.avg_energy_mj, 100.0 * rw.avg_accuracy,
                       ro.avg_energy_mj, 100.0 * ro.avg_accuracy});
    }
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
