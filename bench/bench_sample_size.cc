// "Other Results" reproduction (Section 5): the effect of the sample-set
// size on plan accuracy. Expected shape: a single sample performs poorly;
// accuracy rises sharply by 3-5 samples, then levels out by ~25-30 with
// only marginal further gains — which is what makes the sampling-based
// approach cheap enough to maintain in-network.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/contention.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace {

constexpr int kTop = 10;
constexpr double kBudgetMj = 12.0;

void Run() {
  const int query_epochs = bench::QueryEpochs(60);
  std::printf("Sample-size study (LP+LF, k=%d, budget=%.1f mJ)\n", kTop,
              kBudgetMj);

  // Two workloads: independent Gaussians (Figure 3's setup) and the
  // contention scenario, which needs enough samples to reveal the
  // per-zone contribution pattern.
  Rng grng(61);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 80;
  geo.radio_range = 24.0;
  auto gauss_topo = net::BuildConnectedGeometricNetwork(geo, &grng).value();
  data::GaussianField gauss_field =
      data::GaussianField::Random(80, 40.0, 60.0, 1.0, 16.0, &grng);

  data::ContentionZoneOptions copts;
  copts.num_zones = 6;
  copts.nodes_per_zone = kTop;
  copts.num_background = 40;
  Rng crng(62);
  auto contention = data::BuildContentionScenario(copts, &crng).value();

  struct Workload {
    const char* name;
    const net::Topology* topo;
    const data::GaussianField* field;
  } workloads[] = {
      {"independent-gaussians", &gauss_topo, &gauss_field},
      {"contention-zones", &contention.topology, &contention.field},
  };

  bench::BenchJson json("sample_size");
  json.Meta("k", kTop)
      .Meta("budget_mj", kBudgetMj)
      .Meta("query_epochs", query_epochs);
  for (const Workload& w : workloads) {
    bench::TableHeader(&json, w.name, {"num_samples", "accuracy_pct"});
    for (int S : {1, 2, 3, 5, 8, 12, 18, 25, 35, 50}) {
      Rng srng(63);
      sampling::SampleSet samples =
          sampling::SampleSet::ForTopK(w.topo->num_nodes(), kTop);
      for (int s = 0; s < S; ++s) samples.Add(w.field->Sample(&srng));

      core::PlannerContext ctx;
      ctx.topology = w.topo;
      core::LpFilterPlanner planner;
      bench::TruthFn truth_fn = [&w](Rng* r) { return w.field->Sample(r); };
      bench::EvalResult r;
      if (bench::PlanAndEvaluate(&planner, ctx, samples, kTop, kBudgetMj,
                                 truth_fn, query_epochs, 64, &r)) {
        bench::TableRow(&json, {double(S), 100.0 * r.avg_accuracy});
      }
    }
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
