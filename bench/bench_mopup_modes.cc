// Ablation: the mop-up request refinement the paper sketches but omits
// ("sending to children requests with different bounds and numbers of
// desired values"). Broadcast mode asks every child below an unresolved
// node; per-child mode tailors each child's range using that child's
// phase-1 proven prefix and skips children that provably have nothing to
// add. The paper predicts "only marginal benefits" for its test problems;
// this bench quantifies that.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/proof_executor.h"
#include "src/core/proof_planner.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"

namespace prospector {
namespace {

constexpr int kNodes = 50;
constexpr int kTop = 10;

void Run() {
  const int query_epochs = bench::QueryEpochs(30);
  Rng rng(131);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < 8; ++s) samples.Add(field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;
  const double floor = core::ProofPlanner::MinimumCost(ctx);

  std::printf("Mop-up request modes (n=%d, k=%d)\n", kNodes, kTop);
  bench::BenchJson json("mopup_modes");
  json.Meta("nodes", kNodes).Meta("k", kTop).Meta("query_epochs", query_epochs);
  bench::TableHeader(&json, "phase-2 energy by request mode",
                     {"p1_budget_mJ", "broadcast_mJ", "perchild_mJ",
                      "bcast_msgs", "pc_msgs"});

  for (double mult : {1.001, 1.05, 1.15, 1.3}) {
    core::ProofPlanner planner;
    core::PlanRequest req;
    req.k = kTop;
    req.energy_budget_mj = floor * mult;
    auto plan = planner.Plan(ctx, samples, req);
    if (!plan.ok()) continue;

    double e_bcast = 0, e_pc = 0;
    int m_bcast = 0, m_pc = 0;
    Rng erng(132);
    for (int q = 0; q < query_epochs; ++q) {
      const std::vector<double> truth = field.Sample(&erng);
      {
        net::NetworkSimulator sim(&topo, ctx.energy);
        core::ProofExecutor exec(&plan.value(), &sim,
                                 core::MopUpMode::kBroadcast);
        exec.ExecutePhase1(truth);
        const auto before = sim.stats();
        exec.ExecuteMopUp();
        e_bcast += sim.stats().total_energy_mj - before.total_energy_mj;
        m_bcast += (sim.stats().unicast_messages - before.unicast_messages) +
                   (sim.stats().broadcast_messages - before.broadcast_messages);
      }
      {
        net::NetworkSimulator sim(&topo, ctx.energy);
        core::ProofExecutor exec(&plan.value(), &sim,
                                 core::MopUpMode::kPerChild);
        exec.ExecutePhase1(truth);
        const auto before = sim.stats();
        exec.ExecuteMopUp();
        e_pc += sim.stats().total_energy_mj - before.total_energy_mj;
        m_pc += (sim.stats().unicast_messages - before.unicast_messages) +
                (sim.stats().broadcast_messages - before.broadcast_messages);
      }
    }
    bench::TableRow(&json, {req.energy_budget_mj, e_bcast / query_epochs,
                            e_pc / query_epochs,
                            double(m_bcast) / query_epochs,
                            double(m_pc) / query_epochs});
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
