// "Other Results" reproduction: the cost of installing a query plan in the
// initial distribution phase is on the order of one collection phase, and
// amortizes away under the install-once / run-many-times usage the paper
// assumes; subsequent trigger broadcasts are far cheaper than either.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace {

constexpr int kNodes = 100;
constexpr int kTop = 10;

void Run() {
  Rng rng(101);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 22.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < 25; ++s) samples.Add(field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;

  std::printf("Distribution-phase costs (n=%d, k=%d)\n", kNodes, kTop);
  bench::BenchJson json("distribution_cost");
  json.Meta("nodes", kNodes).Meta("k", kTop);
  bench::TableHeader(&json, "install vs trigger vs collection",
                     {"budget_mJ", "install_mJ", "trigger_mJ",
                      "collection_mJ", "amortized_10x", "amortized_100x"});

  for (double b : {6.0, 12.0, 24.0}) {
    core::LpFilterPlanner planner;
    core::PlanRequest req{kTop, b};
    auto plan = planner.Plan(ctx, samples, req);
    if (!plan.ok()) continue;
    net::NetworkSimulator sim(&topo, ctx.energy);
    const double install = core::ChargeInstallCost(*plan, &sim);
    const double trigger = core::ExpectedTriggerCost(*plan, sim);
    const double collect = core::ExpectedCollectionCost(*plan, sim);
    const double per_query10 = (install + 10 * (trigger + collect)) / 10;
    const double per_query100 = (install + 100 * (trigger + collect)) / 100;
    bench::TableRow(&json,
                    {b, install, trigger, collect, per_query10, per_query100});
  }
  json.Write();

  std::printf("\nFull-sweep sampling cost (exploration step): one sample "
              "costs as much as a NAIVE-n collection;\nwith 25 samples "
              "re-collected every few hundred queries the overhead per "
              "query is small.\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
