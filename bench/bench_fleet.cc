// Fleet serving-layer bench: one service::FleetService carrying 128
// deployments and 1024 standing queries across 8 tenants. Headline
// numbers are admission throughput (queries admitted per second through
// the request/response API, from concurrent callers) and scheduler
// throughput (fleet epochs per second with the deployment ticks batched
// over the worker pool).
//
// Hard gates:
//   * every well-formed admission lands; quota-capped tenants bounce with
//     the exact typed rejection counts;
//   * the parallel scheduler's output — every buffered answer and every
//     energy ledger — is bit-identical to ticking the same fleet
//     sequentially at the same seeds.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/trace.h"
#include "src/service/fleet.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace {

constexpr int kDeployments = 128;
constexpr int kNodes = 16;
constexpr int kQueriesPerDeployment = 8;  // 1024 standing queries
constexpr int kTenants = 8;
constexpr uint64_t kSeed = 20060403;

struct FleetWorld {
  std::vector<net::Topology> topologies;
  std::vector<data::GaussianField> fields;
};

FleetWorld BuildWorld() {
  FleetWorld world;
  Rng rng(kSeed);
  world.topologies.reserve(kDeployments);
  world.fields.reserve(kDeployments);
  for (int d = 0; d < kDeployments; ++d) {
    net::GeometricNetworkOptions geo;
    geo.num_nodes = kNodes;
    geo.radio_range = 50.0;
    world.topologies.push_back(
        net::BuildConnectedGeometricNetwork(geo, &rng).value());
    world.fields.push_back(
        data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 9.0, &rng));
  }
  return world;
}

std::unique_ptr<service::FleetService> MakeFleet(FleetWorld* world,
                                                 int threads,
                                                 size_t ring_capacity) {
  service::FleetOptions options;
  options.scheduler_threads = threads;
  options.answer_ring_capacity = ring_capacity;
  options.max_pending_requests = 0;  // unbounded: the bench ingests in bulk
  auto fleet = std::make_unique<service::FleetService>(options);
  for (int d = 0; d < kDeployments; ++d) {
    core::QueryEngineOptions engine_options;
    engine_options.bootstrap_sweeps = 3;
    const data::GaussianField& field = world->fields[static_cast<size_t>(d)];
    fleet->AddDeployment(
        &world->topologies[static_cast<size_t>(d)], {}, {}, engine_options,
        [&field](Rng* rng) { return field.Sample(rng); },
        kSeed + static_cast<uint64_t>(d));
  }
  return fleet;
}

service::AdmitQueryRequest RequestFor(int i) {
  service::AdmitQueryRequest req;
  req.deployment_id = i % kDeployments;
  req.tenant_id = i % kTenants;
  req.spec.k = 2 + i % 3;
  req.spec.energy_budget_mj = 6.0;
  req.spec.planner = core::PlannerChoice::kGreedy;
  return req;
}

int Run() {
  // The first bootstrap_sweeps epochs emit no query answers, so anything
  // below 5 (CI smoke sets PROSPECTOR_BENCH_EPOCHS=1) would leave the
  // answer rings empty and trip the bit-identity gate vacuously.
  const int epochs = std::max(bench::QueryEpochs(12), 5);
  const int hw = util::ThreadPool::HardwareThreads();
  const int total_queries = kDeployments * kQueriesPerDeployment;
  std::printf("Fleet serving layer: %d deployments x %d nodes, %d queries, "
              "%d tenants, %d epochs, %d scheduler threads\n",
              kDeployments, kNodes, total_queries, kTenants, epochs, hw);
  FleetWorld world = BuildWorld();

  // ---- Arm 1: admission throughput from concurrent callers. ----
  auto ingest = MakeFleet(&world, hw, /*ring_capacity=*/4);
  util::ThreadPool callers(hw);
  std::vector<int> admitted(static_cast<size_t>(total_queries), 0);
  const int64_t admit_start_us = obs::MonotonicNowUs();
  callers.ParallelFor(total_queries, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      admitted[static_cast<size_t>(i)] =
          ingest->Admit(RequestFor(i)).admitted ? 1 : 0;
    }
  });
  const double admit_secs =
      static_cast<double>(obs::MonotonicNowUs() - admit_start_us) / 1e6;
  int admit_ok = 0;
  for (int a : admitted) admit_ok += a;
  const double admits_per_sec =
      admit_secs > 0 ? static_cast<double>(admit_ok) / admit_secs : 0.0;

  // Quota-capped tenants: attempts past the cap must bounce, typed.
  service::TenantQuota count_quota;
  count_quota.max_standing_queries = 4;
  ingest->SetTenantQuota(99, count_quota);
  service::TenantQuota energy_quota;
  energy_quota.max_energy_mj_per_epoch = 20.0;  // fits 3 x 6 mJ
  ingest->SetTenantQuota(98, energy_quota);
  int count_rejects = 0;
  int energy_rejects = 0;
  for (int i = 0; i < 12; ++i) {
    service::AdmitQueryRequest req = RequestFor(i);
    req.tenant_id = 99;
    if (ingest->Admit(req).reject == service::AdmitReject::kTenantQueryQuota) {
      ++count_rejects;
    }
    if (i < 6) {
      req.tenant_id = 98;
      if (ingest->Admit(req).reject ==
          service::AdmitReject::kTenantEnergyQuota) {
        ++energy_rejects;
      }
    }
  }
  if (auto r = ingest->RunEpoch(); !r.ok()) {
    std::fprintf(stderr, "ingest epoch failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const service::FleetStatus ingest_status = ingest->Snapshot();

  // ---- Arm 2: scheduler throughput + bit-identity vs sequential. ----
  auto parallel = MakeFleet(&world, hw, static_cast<size_t>(epochs) + 4);
  auto serial = MakeFleet(&world, 1, static_cast<size_t>(epochs) + 4);
  std::vector<int> ids;
  ids.reserve(static_cast<size_t>(total_queries));
  for (int i = 0; i < total_queries; ++i) {
    const auto a = parallel->Admit(RequestFor(i));
    const auto b = serial->Admit(RequestFor(i));
    if (!a.admitted || !b.admitted || a.query_id != b.query_id) {
      std::fprintf(stderr, "FAIL: admission diverged at request %d\n", i);
      return 1;
    }
    ids.push_back(a.query_id);
  }
  const int64_t epoch_start_us = obs::MonotonicNowUs();
  if (auto r = parallel->RunEpochs(epochs); !r.ok()) {
    std::fprintf(stderr, "parallel fleet failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }
  const double epoch_secs =
      static_cast<double>(obs::MonotonicNowUs() - epoch_start_us) / 1e6;
  const double epochs_per_sec =
      epoch_secs > 0 ? static_cast<double>(epochs) / epoch_secs : 0.0;
  if (auto r = serial->RunEpochs(epochs); !r.ok()) {
    std::fprintf(stderr, "serial fleet failed: %s\n",
                 r.status().ToString().c_str());
    return 1;
  }

  // Bit-identity: fleet totals, every deployment ledger, every answer.
  const service::FleetStatus ps = parallel->Snapshot();
  const service::FleetStatus ss = serial->Snapshot();
  bool identical = ps.total_energy_mj == ss.total_energy_mj;
  for (int d = 0; d < kDeployments && identical; ++d) {
    identical = ps.per_deployment[static_cast<size_t>(d)].total_energy_mj ==
                ss.per_deployment[static_cast<size_t>(d)].total_energy_mj;
  }
  long long answers_compared = 0;
  for (const int id : ids) {
    if (!identical) break;
    service::PollAnswersResponse a = parallel->Poll({id, 0});
    service::PollAnswersResponse b = serial->Poll({id, 0});
    if (a.answers.size() != b.answers.size()) {
      identical = false;
      break;
    }
    for (size_t i = 0; i < a.answers.size() && identical; ++i) {
      const service::AnswerRecord& x = a.answers[i];
      const service::AnswerRecord& y = b.answers[i];
      identical = x.epoch == y.epoch && x.kind == y.kind &&
                  x.recall == y.recall && x.energy_mj == y.energy_mj &&
                  x.answer.size() == y.answer.size();
      for (size_t j = 0; j < x.answer.size() && identical; ++j) {
        identical = x.answer[j].node == y.answer[j].node &&
                    x.answer[j].value == y.answer[j].value;
      }
      ++answers_compared;
    }
  }

  bench::BenchJson json("fleet");
  json.Seed(kSeed)
      .Meta("deployments", kDeployments)
      .Meta("nodes_per_deployment", kNodes)
      .Meta("queries", total_queries)
      .Meta("tenants", kTenants)
      .Meta("epochs", epochs)
      .Meta("scheduler_threads", hw)
      .Meta("admits_per_sec", admits_per_sec)
      .Meta("epochs_per_sec", epochs_per_sec)
      .Meta("query_epochs_per_sec",
            epochs_per_sec * static_cast<double>(total_queries))
      .Meta("bit_identical", identical ? 1.0 : 0.0)
      .Meta("quota_count_rejects", count_rejects)
      .Meta("quota_energy_rejects", energy_rejects);

  bench::TableHeader(&json, "Throughput",
                     {"queries", "admit_s", "admits_per_s", "epoch_s",
                      "epochs_per_s"});
  bench::TableRow(&json, {static_cast<double>(total_queries), admit_secs,
                          admits_per_sec, epoch_secs, epochs_per_sec});
  bench::TableHeader(&json, "BitIdentity",
                     {"identical", "answers_compared", "parallel_mJ",
                      "serial_mJ"});
  bench::TableRow(&json, {identical ? 1.0 : 0.0,
                          static_cast<double>(answers_compared),
                          ps.total_energy_mj, ss.total_energy_mj});
  bench::TableHeader(&json, "Rejections",
                     {"tenant_query_quota", "tenant_energy_quota", "total"});
  bench::TableRow(&json, {static_cast<double>(count_rejects),
                          static_cast<double>(energy_rejects),
                          static_cast<double>(ingest_status.rejects)});

  std::printf("\nadmitted %d/%d queries in %.3f s (%.0f/s); %d epochs in "
              "%.3f s (%.2f/s, %.0f query-epochs/s)\n",
              admit_ok, total_queries, admit_secs, admits_per_sec, epochs,
              epoch_secs, epochs_per_sec,
              epochs_per_sec * static_cast<double>(total_queries));
  std::printf("bit-identity: %s (%lld answers compared); quota rejects: "
              "%d by count, %d by energy\n",
              identical ? "parallel == serial" : "DIVERGED", answers_compared,
              count_rejects, energy_rejects);

  if (!json.Write()) return 1;

  // ---- Hard acceptance gates. ----
  if (admit_ok != total_queries) {
    std::fprintf(stderr, "FAIL: only %d/%d admissions landed\n", admit_ok,
                 total_queries);
    return 1;
  }
  if (ingest_status.standing_queries !=
      total_queries + count_quota.max_standing_queries + 3) {
    std::fprintf(stderr, "FAIL: ingest fleet stands %d queries, expected %d\n",
                 ingest_status.standing_queries,
                 total_queries + count_quota.max_standing_queries + 3);
    return 1;
  }
  if (count_rejects != 12 - count_quota.max_standing_queries ||
      energy_rejects != 3) {
    std::fprintf(stderr,
                 "FAIL: quota rejections off (count %d, energy %d)\n",
                 count_rejects, energy_rejects);
    return 1;
  }
  const auto kind = [&](service::AdmitReject r) {
    return ingest_status.rejects_by_kind[static_cast<size_t>(r)];
  };
  if (kind(service::AdmitReject::kTenantQueryQuota) != count_rejects ||
      kind(service::AdmitReject::kTenantEnergyQuota) != energy_rejects) {
    std::fprintf(stderr, "FAIL: typed rejection counters disagree\n");
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel scheduler diverged from sequential ticking\n");
    return 1;
  }
  if (answers_compared == 0) {
    std::fprintf(stderr, "FAIL: no answers reached the poll rings\n");
    return 1;
  }
  std::printf("all fleet gates passed\n");
  return 0;
}

}  // namespace
}  // namespace prospector

int main() { return prospector::Run(); }
