#ifndef PROSPECTOR_BENCH_BENCH_UTIL_H_
#define PROSPECTOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace prospector {
namespace bench {

/// Draws one epoch of ground-truth readings.
using TruthFn = std::function<std::vector<double>(Rng*)>;

/// Averaged execution metrics of one plan over repeated query epochs.
struct EvalResult {
  double avg_energy_mj = 0.0;    ///< trigger + collection per query
  double avg_accuracy = 0.0;     ///< top-k recall
  double install_energy_mj = 0.0;
};

/// Executes `plan` against `epochs` freshly drawn truths, averaging energy
/// (trigger + collection, per the paper's reporting) and top-k recall.
inline EvalResult EvaluatePlan(const core::QueryPlan& plan,
                               const net::Topology& topo,
                               const net::EnergyModel& energy,
                               const TruthFn& truth_fn, int epochs,
                               uint64_t seed,
                               const net::FailureModel& failures = {}) {
  Rng rng(seed);
  net::NetworkSimulator sim(&topo, energy, failures, seed ^ 0xbeef);
  EvalResult out;
  out.install_energy_mj = core::ChargeInstallCost(plan, &sim);
  sim.ResetStats();
  RunningStats acc, joule;
  for (int q = 0; q < epochs; ++q) {
    const std::vector<double> truth = truth_fn(&rng);
    core::ExecutionResult r =
        core::CollectionExecutor::Execute(plan, truth, &sim);
    acc.Add(core::TopKRecall(r, truth, plan.k));
    joule.Add(r.total_energy_mj());
    sim.ResetStats();
  }
  out.avg_energy_mj = joule.mean();
  out.avg_accuracy = acc.mean();
  return out;
}

/// Plans with `planner` under `budget`, then evaluates. Returns false and
/// prints a note when planning fails (e.g. infeasible proof budgets).
inline bool PlanAndEvaluate(core::Planner* planner,
                            const core::PlannerContext& ctx,
                            const sampling::SampleSet& samples, int k,
                            double budget_mj, const TruthFn& truth_fn,
                            int epochs, uint64_t seed, EvalResult* out) {
  core::PlanRequest req;
  req.k = k;
  req.energy_budget_mj = budget_mj;
  auto plan = planner->Plan(ctx, samples, req);
  if (!plan.ok()) {
    std::fprintf(stderr, "# %s @ %.1f mJ: %s\n", planner->name().c_str(),
                 budget_mj, plan.status().ToString().c_str());
    return false;
  }
  *out = EvaluatePlan(*plan, *ctx.topology, ctx.energy, truth_fn, epochs, seed,
                      ctx.failures);
  return true;
}

/// Machine-readable companion to the stdout tables: collects a flat meta
/// object plus uniform numeric rows and writes BENCH_<name>.json in the
/// working directory, mirroring bench_parallel_scaling's artifact so CI
/// and plotting scripts can diff runs without scraping text.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& Meta(const std::string& key, double value) {
    meta_.emplace_back(key, value);
    return *this;
  }
  BenchJson& Columns(std::vector<std::string> columns) {
    columns_ = std::move(columns);
    return *this;
  }
  BenchJson& Row(std::vector<double> values) {
    rows_.push_back(std::move(values));
    return *this;
  }

  /// Returns false (with a note on stderr) when the file cannot be written.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"meta\": {");
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                   meta_[i].first.c_str(), meta_[i].second);
    }
    std::fprintf(f, "},\n  \"columns\": [");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", columns_[i].c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    [");
      for (size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s%.6g", i == 0 ? "" : ", ", rows_[r][i]);
      }
      std::fprintf(f, "]%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// Fixed-width table printing helpers shared by the figure benches.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void PrintRow(const std::vector<double>& values) {
  for (double v : values) std::printf("%16.3f", v);
  std::printf("\n");
}

}  // namespace bench
}  // namespace prospector

#endif  // PROSPECTOR_BENCH_BENCH_UTIL_H_
