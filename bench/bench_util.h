#ifndef PROSPECTOR_BENCH_BENCH_UTIL_H_
#define PROSPECTOR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/planner.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace prospector {
namespace bench {

/// Draws one epoch of ground-truth readings.
using TruthFn = std::function<std::vector<double>(Rng*)>;

/// Averaged execution metrics of one plan over repeated query epochs.
struct EvalResult {
  double avg_energy_mj = 0.0;    ///< trigger + collection per query
  double avg_accuracy = 0.0;     ///< top-k recall
  double install_energy_mj = 0.0;
};

/// Executes `plan` against `epochs` freshly drawn truths, averaging energy
/// (trigger + collection, per the paper's reporting) and top-k recall.
inline EvalResult EvaluatePlan(const core::QueryPlan& plan,
                               const net::Topology& topo,
                               const net::EnergyModel& energy,
                               const TruthFn& truth_fn, int epochs,
                               uint64_t seed,
                               const net::FailureModel& failures = {}) {
  Rng rng(seed);
  net::NetworkSimulator sim(&topo, energy, failures, seed ^ 0xbeef);
  EvalResult out;
  out.install_energy_mj = core::ChargeInstallCost(plan, &sim);
  sim.ResetStats();
  RunningStats acc, joule;
  for (int q = 0; q < epochs; ++q) {
    const std::vector<double> truth = truth_fn(&rng);
    core::ExecutionResult r =
        core::CollectionExecutor::Execute(plan, truth, &sim);
    acc.Add(core::TopKRecall(r, truth, plan.k));
    joule.Add(r.total_energy_mj());
    sim.ResetStats();
  }
  out.avg_energy_mj = joule.mean();
  out.avg_accuracy = acc.mean();
  return out;
}

/// Plans with `planner` under `budget`, then evaluates. Returns false and
/// prints a note when planning fails (e.g. infeasible proof budgets).
inline bool PlanAndEvaluate(core::Planner* planner,
                            const core::PlannerContext& ctx,
                            const sampling::SampleSet& samples, int k,
                            double budget_mj, const TruthFn& truth_fn,
                            int epochs, uint64_t seed, EvalResult* out) {
  core::PlanRequest req;
  req.k = k;
  req.energy_budget_mj = budget_mj;
  auto plan = planner->Plan(ctx, samples, req);
  if (!plan.ok()) {
    std::fprintf(stderr, "# %s @ %.1f mJ: %s\n", planner->name().c_str(),
                 budget_mj, plan.status().ToString().c_str());
    return false;
  }
  *out = EvaluatePlan(*plan, *ctx.topology, ctx.energy, truth_fn, epochs, seed,
                      ctx.failures);
  return true;
}

/// Number of evaluation epochs a bench should run: `default_epochs` unless
/// the PROSPECTOR_BENCH_EPOCHS environment variable overrides it (CI's
/// bench smoke job sets it to 1 so every bench finishes in seconds while
/// still exercising its full code path and JSON artifact).
inline int QueryEpochs(int default_epochs) {
  const char* env = std::getenv("PROSPECTOR_BENCH_EPOCHS");
  if (env == nullptr) return default_epochs;
  const int v = std::atoi(env);
  return v > 0 ? v : default_epochs;
}

/// Machine-readable companion to the stdout tables: collects a flat meta
/// object plus one or more titled tables of uniform numeric rows and
/// writes BENCH_<name>.json in the working directory so CI and plotting
/// scripts can diff runs without scraping text.
///
/// Single-table benches call Columns() then Row(); the file carries
/// top-level "columns"/"rows" (the original artifact shape). Multi-table
/// benches call Section() before each table's rows; those tables land in
/// a "tables" array of {"title", "columns", "rows"} objects.
///
/// Every artifact carries provenance for `tools/bench_diff.py`:
///   "schema_version"      bumped when the artifact layout changes;
///   "seed"                the bench's RNG seed (0 when not seeded);
///   "config_fingerprint"  16-hex FNV-1a over name + meta + table shape
///                         (seed and row data excluded), so the differ
///                         can refuse apples-to-oranges comparisons.
class BenchJson {
 public:
  /// Bump when the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 2;

  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& Meta(const std::string& key, double value) {
    meta_.emplace_back(key, value);
    return *this;
  }
  /// Records a fact about the machine the bench ran on (core counts and
  /// the like). Host facts land in a separate "host" object and are
  /// deliberately excluded from the fingerprint — like the seed, they are
  /// provenance, not configuration: artifacts from differently-sized
  /// hosts stay comparable, and the differ can still surface why e.g. a
  /// parallel speedup moved.
  BenchJson& HostFact(const std::string& key, double value) {
    host_.emplace_back(key, value);
    return *this;
  }
  /// Records the bench's RNG seed in the artifact (provenance only; the
  /// fingerprint deliberately excludes it so seed sweeps stay comparable).
  BenchJson& Seed(uint64_t seed) {
    seed_ = seed;
    return *this;
  }
  BenchJson& Columns(std::vector<std::string> columns) {
    columns_ = std::move(columns);
    return *this;
  }
  /// Starts a titled table; subsequent Row() calls append to it.
  BenchJson& Section(std::string title, std::vector<std::string> columns) {
    tables_.push_back(Table{std::move(title), std::move(columns), {}});
    return *this;
  }
  BenchJson& Row(std::vector<double> values) {
    if (!tables_.empty()) {
      tables_.back().rows.push_back(std::move(values));
    } else {
      rows_.push_back(std::move(values));
    }
    return *this;
  }

  /// Returns false (with a note on stderr) when the file cannot be written.
  bool Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema_version\": %d,\n", kSchemaVersion);
    std::fprintf(f, "  \"seed\": %llu,\n",
                 static_cast<unsigned long long>(seed_));
    std::fprintf(f, "  \"config_fingerprint\": \"%016llx\",\n",
                 static_cast<unsigned long long>(Fingerprint()));
    std::fprintf(f, "  \"meta\": {");
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                   meta_[i].first.c_str(), meta_[i].second);
    }
    std::fprintf(f, "}");
    if (!host_.empty()) {
      std::fprintf(f, ",\n  \"host\": {");
      for (size_t i = 0; i < host_.size(); ++i) {
        std::fprintf(f, "%s\"%s\": %.6g", i == 0 ? "" : ", ",
                     host_[i].first.c_str(), host_[i].second);
      }
      std::fprintf(f, "}");
    }
    size_t total_rows = rows_.size();
    if (tables_.empty()) {
      std::fprintf(f, ",\n  \"columns\": [");
      WriteStrings(f, columns_);
      std::fprintf(f, "],\n  \"rows\": [\n");
      WriteRows(f, rows_, "    ");
      std::fprintf(f, "  ]");
    } else {
      std::fprintf(f, ",\n  \"tables\": [\n");
      for (size_t t = 0; t < tables_.size(); ++t) {
        const Table& table = tables_[t];
        total_rows += table.rows.size();
        std::fprintf(f, "    {\"title\": \"%s\", \"columns\": [",
                     table.title.c_str());
        WriteStrings(f, table.columns);
        std::fprintf(f, "], \"rows\": [\n");
        WriteRows(f, table.rows, "      ");
        std::fprintf(f, "    ]}%s\n", t + 1 < tables_.size() ? "," : "");
      }
      std::fprintf(f, "  ]");
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu rows)\n", path.c_str(), total_rows);
    return true;
  }

 private:
  struct Table {
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<double>> rows;
  };

  /// FNV-1a over everything that defines what the bench measured (name,
  /// meta knobs, table shape) but not what it observed (rows), which
  /// stream it drew (seed), or where it ran (host facts). Two artifacts
  /// with equal fingerprints are run-to-run comparable.
  uint64_t Fingerprint() const {
    uint64_t h = 0xcbf29ce484222325ULL;
    const auto mix = [&h](const std::string& s) {
      for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
      }
      h ^= 0xffu;  // field separator: {"ab","c"} != {"a","bc"}
      h *= 0x100000001b3ULL;
    };
    mix(name_);
    char buf[32];
    for (const auto& [key, value] : meta_) {
      mix(key);
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      mix(buf);
    }
    for (const std::string& c : columns_) mix(c);
    for (const Table& t : tables_) {
      mix(t.title);
      for (const std::string& c : t.columns) mix(c);
    }
    return h;
  }

  static void WriteStrings(std::FILE* f, const std::vector<std::string>& v) {
    for (size_t i = 0; i < v.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ", v[i].c_str());
    }
  }
  static void WriteRows(std::FILE* f,
                        const std::vector<std::vector<double>>& rows,
                        const char* indent) {
    for (size_t r = 0; r < rows.size(); ++r) {
      std::fprintf(f, "%s[", indent);
      for (size_t i = 0; i < rows[r].size(); ++i) {
        std::fprintf(f, "%s%.6g", i == 0 ? "" : ", ", rows[r][i]);
      }
      std::fprintf(f, "]%s\n", r + 1 < rows.size() ? "," : "");
    }
  }

  std::string name_;
  uint64_t seed_ = 0;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<std::pair<std::string, double>> host_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
  std::vector<Table> tables_;
};

/// Fixed-width table printing helpers shared by the figure benches.
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void PrintRow(const std::vector<double>& values) {
  for (double v : values) std::printf("%16.3f", v);
  std::printf("\n");
}

/// Prints a table header and opens the matching JSON section, so stdout
/// and BENCH_<name>.json stay in lockstep by construction.
inline void TableHeader(BenchJson* json, const std::string& title,
                        const std::vector<std::string>& columns) {
  PrintHeader(title, columns);
  if (json != nullptr) json->Section(title, columns);
}

/// Prints a table row and records it in the open JSON section.
inline void TableRow(BenchJson* json, const std::vector<double>& values) {
  PrintRow(values);
  if (json != nullptr) json->Row(values);
}

}  // namespace bench
}  // namespace prospector

#endif  // PROSPECTOR_BENCH_BENCH_UTIL_H_
