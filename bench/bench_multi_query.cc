// Multi-query engine bench: four co-resident top-k queries on one
// core::QueryEngine (merged superplan, one trigger wave, one sweep feeding
// every sample window) versus the same four queries as independent
// TopKQuerySessions, on the Figure-3 deployment with identical truth
// sequences.
//
// Expected shape: the shared engine's total energy lands well below the
// independent sum (the bench fails unless the saving is >= 25%), while
// each query's recall matches its standalone run — the merged execution
// is demultiplexed bit-identically, which the bench asserts directly on
// the final superplan.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/plan_merge.h"
#include "src/core/query_engine.h"
#include "src/core/session.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/audit.h"

namespace prospector {
namespace {

constexpr int kNodes = 100;
constexpr uint64_t kSeed = 5;
constexpr int kBootstrap = 8;

struct QueryConfig {
  int k;
  double budget_mj;
  core::PlannerChoice planner;
};

core::QuerySpec SpecFor(const QueryConfig& cfg) {
  core::QuerySpec spec;
  spec.k = cfg.k;
  spec.energy_budget_mj = cfg.budget_mj;
  spec.planner = cfg.planner;
  return spec;
}

core::SessionOptions SessionOptionsFor(const QueryConfig& cfg) {
  core::SessionOptions opts;
  opts.k = cfg.k;
  opts.energy_budget_mj = cfg.budget_mj;
  opts.planner = cfg.planner;
  opts.bootstrap_sweeps = kBootstrap;
  return opts;
}

struct RecallStats {
  RunningStats recall;
};

// Demux fidelity: executing the engine's final superplan must be
// bit-identical, query by query, to executing each constituent plan alone
// (loss-free), and the per-query attribution must reconcile against the
// audited total.
bool CheckSuperplanFidelity(const core::Superplan& sp,
                            const net::Topology& topo,
                            const std::vector<double>& truth) {
  net::NetworkSimulator merged_sim(&topo, {}, {}, 99);
  const core::SuperplanResult merged =
      core::SuperplanExecutor::Execute(sp, truth, &merged_sim);
  double attributed = 0.0;
  for (double a : merged.attributed_mj) attributed += a;
  if (!obs::CheckEnergyLedger(attributed, merged.total_energy_mj()).ok) {
    std::fprintf(stderr,
                 "FAIL: attribution %.9f mJ != superplan total %.9f mJ\n",
                 attributed, merged.total_energy_mj());
    return false;
  }
  for (int q = 0; q < sp.num_queries(); ++q) {
    net::NetworkSimulator solo_sim(&topo, {}, {}, 99);
    const core::ExecutionResult alone =
        core::CollectionExecutor::Execute(sp.plans[q], truth, &solo_sim);
    if (merged.per_query[q].answer != alone.answer ||
        merged.per_query[q].arrived != alone.arrived) {
      std::fprintf(stderr, "FAIL: demux of query %d not bit-identical\n",
                   sp.query_ids[q]);
      return false;
    }
  }
  return true;
}

int Run() {
  const int query_epochs = bench::QueryEpochs(60);
  Rng rng(20060403);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 22.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 16.0, &rng);

  const std::vector<QueryConfig> configs = {
      {10, 12.0, core::PlannerChoice::kLpFilter},
      {5, 8.0, core::PlannerChoice::kLpNoFilter},
      {20, 16.0, core::PlannerChoice::kLpFilter},
      {4, 6.0, core::PlannerChoice::kGreedy},
  };
  const int num_queries = static_cast<int>(configs.size());

  std::printf("Multi-query engine: %d co-resident queries vs independent "
              "sessions (n=%d, %d query epochs)\n",
              num_queries, kNodes, query_epochs);

  // ---- Shared arm: one engine, one radio, four queries. ----
  core::QueryEngineOptions eopts;
  eopts.bootstrap_sweeps = kBootstrap;
  core::QueryEngine engine(&topo, {}, {}, eopts, kSeed);
  std::vector<int> ids;
  for (const QueryConfig& cfg : configs) {
    ids.push_back(engine.AddQuery(SpecFor(cfg)));
  }

  // The truth sequence is generated once and replayed for both arms.
  std::vector<std::vector<double>> truths;
  Rng truth_rng(777);
  std::vector<RecallStats> shared(num_queries);
  int shared_query_epochs = 0;
  const int max_ticks = kBootstrap + query_epochs + 50;
  while (static_cast<int>(truths.size()) < max_ticks &&
         shared_query_epochs < query_epochs) {
    truths.push_back(field.Sample(&truth_rng));
    auto r = engine.Tick(truths.back());
    if (!r.ok()) {
      std::fprintf(stderr, "engine tick failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (r->kind == core::QueryEngine::EpochKind::kQuery) {
      ++shared_query_epochs;
      for (int q = 0; q < num_queries; ++q) {
        if (r->per_query[q].recall >= 0) {
          shared[q].recall.Add(r->per_query[q].recall);
        }
      }
    }
  }
  if (shared_query_epochs == 0) {
    std::fprintf(stderr, "FAIL: shared arm never reached a query epoch\n");
    return 1;
  }

  // ---- Independent arm: four sessions, four radios, same truths. ----
  std::vector<RecallStats> solo(num_queries);
  double independent_total_mj = 0.0;
  std::vector<double> solo_total_mj(num_queries, 0.0);
  for (int q = 0; q < num_queries; ++q) {
    core::TopKQuerySession session(&topo, {}, {}, SessionOptionsFor(configs[q]),
                                   kSeed);
    for (const std::vector<double>& truth : truths) {
      auto r = session.Tick(truth);
      if (!r.ok()) {
        std::fprintf(stderr, "session tick failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (r->recall >= 0) solo[q].recall.Add(r->recall);
    }
    solo_total_mj[q] = session.total_energy_mj();
    independent_total_mj += session.total_energy_mj();
  }

  const double shared_total_mj = engine.total_energy_mj();
  const double savings =
      1.0 - shared_total_mj / independent_total_mj;

  bench::BenchJson json("multi_query");
  json.Seed(20060403).Meta("nodes", kNodes)
      .Meta("queries", num_queries)
      .Meta("query_epochs", shared_query_epochs)
      .Meta("ticks", static_cast<double>(truths.size()))
      .Meta("shared_total_mj", shared_total_mj)
      .Meta("independent_total_mj", independent_total_mj)
      .Meta("savings_pct", 100.0 * savings);

  bench::TableHeader(&json, "Arms",
                     {"shared", "total_mJ", "sampling_mJ", "query_mJ"});
  bench::TableRow(&json, {1.0, shared_total_mj, engine.sampling_energy_mj(),
                          engine.query_energy_mj()});
  bench::TableRow(&json, {0.0, independent_total_mj, -1.0, -1.0});

  bench::TableHeader(&json, "PerQuery",
                     {"query", "k", "budget_mJ", "recall_shared",
                      "recall_solo", "shared_attr_mJ", "solo_total_mJ"});
  for (int q = 0; q < num_queries; ++q) {
    bench::TableRow(&json, {static_cast<double>(ids[q]),
                            static_cast<double>(configs[q].k),
                            configs[q].budget_mj, shared[q].recall.mean(),
                            solo[q].recall.mean(),
                            engine.total_energy_mj(ids[q]),
                            solo_total_mj[q]});
  }

  std::printf("\nshared %.2f mJ vs independent %.2f mJ (savings %.1f%%)\n",
              shared_total_mj, independent_total_mj, 100.0 * savings);

  if (!json.Write()) return 1;

  // ---- Hard acceptance gates. ----
  if (savings < 0.25) {
    std::fprintf(stderr,
                 "FAIL: shared engine saved only %.1f%% (< 25%%) vs "
                 "independent sessions\n",
                 100.0 * savings);
    return 1;
  }
  const core::Superplan& sp = engine.superplan();
  if (sp.num_queries() != num_queries) {
    std::fprintf(stderr, "FAIL: engine never merged all %d queries\n",
                 num_queries);
    return 1;
  }
  if (!CheckSuperplanFidelity(sp, engine.topology(), truths.back())) {
    return 1;
  }
  // Loss-free demux means recall per epoch equals what the very same plan
  // would score standalone; across arms the plans can differ only through
  // the exploration schedule, so mean recall must stay comparable.
  for (int q = 0; q < num_queries; ++q) {
    if (shared[q].recall.mean() + 0.15 < solo[q].recall.mean()) {
      std::fprintf(stderr,
                   "FAIL: query %d recall dropped under sharing "
                   "(%.3f vs %.3f standalone)\n",
                   ids[q], shared[q].recall.mean(), solo[q].recall.mean());
      return 1;
    }
  }
  std::printf("all multi-query gates passed\n");
  return 0;
}

}  // namespace
}  // namespace prospector

int main() { return prospector::Run(); }
