// Figure 3 reproduction: energy cost vs accuracy for ORACLE, LP+LF, LP-LF,
// GREEDY and NAIVE-k (NAIVE-1 reported textually, as in the paper) on
// synthetic data where each sensor reading is an independent normal with
// random mean and variance from small ranges.
//
// Expected shape: Oracle > LP+LF > LP-LF > Greedy at equal energy;
// NAIVE-k needs several times more energy for 100% accuracy; NAIVE-1 is
// far worse still.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench/bench_util.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/naive.h"
#include "src/core/oracle.h"
#include "src/core/plan_manager.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace {

constexpr int kNodes = 100;
constexpr int kTop = 10;
constexpr int kSamples = 25;

void Run(int threads) {
  const int query_epochs = bench::QueryEpochs(40);
  Rng rng(20060403);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 22.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();

  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 16.0, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < kSamples; ++s) samples.Add(field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;
  bench::TruthFn truth_fn = [&field](Rng* r) { return field.Sample(r); };

  std::printf("Figure 3: comparison of algorithms (n=%d, k=%d, S=%d, %d query "
              "epochs)\n",
              kNodes, kTop, kSamples, query_epochs);
  bench::BenchJson json("fig3_comparison");
  json.Seed(20060403).Meta("nodes", kNodes)
      .Meta("k", kTop)
      .Meta("samples", kSamples)
      .Meta("query_epochs", query_epochs)
      .Meta("threads", threads);

  // ---- Approximate planners over an energy-budget sweep. ----
  // The budget points are independent LP/greedy solves, so they all go
  // through PlanSweep; with threads > 1 they run concurrently and — by the
  // determinism contract — produce the same plans as the serial sweep.
  const std::vector<double> budgets{2, 4, 6, 8, 12, 16, 24, 32};
  std::vector<core::PlanRequest> requests;
  for (double b : budgets) {
    core::PlanRequest req;
    req.k = kTop;
    req.energy_budget_mj = b;
    requests.push_back(req);
  }
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);

  struct Algo {
    std::string name;
    core::PlannerFactory factory;
  };
  const Algo algos[] = {
      {"ProspectorGreedy",
       [] { return std::make_unique<core::GreedyPlanner>(); }},
      {"ProspectorLP-LF",
       [] { return std::make_unique<core::LpNoFilterPlanner>(); }},
      {"ProspectorLP+LF",
       [] { return std::make_unique<core::LpFilterPlanner>(); }},
  };
  for (const Algo& algo : algos) {
    bench::TableHeader(&json, algo.name,
                       {"budget_mJ", "energy_mJ", "accuracy_pct"});
    const auto plans =
        core::PlanSweep(algo.factory, ctx, samples, requests, pool.get());
    for (size_t i = 0; i < plans.size(); ++i) {
      if (!plans[i].ok()) {
        std::fprintf(stderr, "# %s @ %.1f mJ: %s\n", algo.name.c_str(),
                     budgets[i], plans[i].status().ToString().c_str());
        continue;
      }
      bench::EvalResult r = bench::EvaluatePlan(
          *plans[i], topo, ctx.energy, truth_fn, query_epochs, 555);
      bench::TableRow(&json,
                      {budgets[i], r.avg_energy_mj, 100.0 * r.avg_accuracy});
    }
  }

  // ---- ORACLE: replans per epoch with known top-k' locations; accuracy is
  // varied through k' as the paper does for exact algorithms. ----
  bench::TableHeader(&json, "Oracle",
                     {"k_prime", "energy_mJ", "accuracy_pct"});
  for (int kp = 1; kp <= kTop; ++kp) {
    Rng qrng(777);
    RunningStats joule;
    for (int q = 0; q < query_epochs; ++q) {
      const std::vector<double> truth = field.Sample(&qrng);
      core::QueryPlan plan = core::MakeOraclePlan(topo, truth, kp);
      net::NetworkSimulator sim(&topo, ctx.energy);
      core::ExecutionResult r =
          core::CollectionExecutor::Execute(plan, truth, &sim);
      joule.Add(r.total_energy_mj());
    }
    bench::TableRow(&json, {double(kp), joule.mean(), 100.0 * kp / kTop});
  }

  // ---- NAIVE-k with varying k'. ----
  bench::TableHeader(&json, "Naive-k",
                     {"k_prime", "energy_mJ", "accuracy_pct"});
  for (int kp = 1; kp <= kTop; ++kp) {
    core::QueryPlan plan = core::MakeNaiveKPlan(topo, kp);
    bench::EvalResult r = bench::EvaluatePlan(plan, topo, ctx.energy, truth_fn,
                                              query_epochs, 888);
    bench::TableRow(&json, {double(kp), r.avg_energy_mj, 100.0 * kp / kTop});
  }

  // ---- NAIVE-1, reported textually as in the paper. ----
  bench::TableHeader(&json, "Naive-1",
                     {"k_prime", "energy_mJ", "accuracy_pct"});
  for (int kp = 1; kp <= kTop; ++kp) {
    Rng qrng(999);
    RunningStats joule;
    for (int q = 0; q < query_epochs; ++q) {
      const std::vector<double> truth = field.Sample(&qrng);
      net::NetworkSimulator sim(&topo, ctx.energy);
      core::Naive1Result r = core::Naive1Executor::Execute(truth, kp, &sim);
      joule.Add(r.energy_mj);
    }
    bench::TableRow(&json, {double(kp), joule.mean(), 100.0 * kp / kTop});
  }
  json.Write();
  std::printf("\n(Naive-1's cost at k'=1 should already rival Naive-k at "
              "k'=%d, growing linearly with k'.)\n",
              kTop);
}

}  // namespace
}  // namespace prospector

int main(int argc, char** argv) {
  // Optional argv[1]: planner threads for the budget sweep (default 1,
  // which reproduces the seed's serial behavior exactly).
  const int threads = argc > 1 ? std::atoi(argv[1]) : 1;
  prospector::Run(threads > 0 ? threads : 1);
  return 0;
}
