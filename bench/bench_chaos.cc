// Chaos-soak summary (DESIGN.md, "Failure semantics"): batches of seeded
// random fault schedules — all nine scripted kinds plus rate-based lossy
// and adversarial transport — run through the multi-query engine in two
// arms. The fenced arm must hold every soak invariant; the deliberately
// naive arm shows what the fence is for: stale and duplicate traffic
// folding into answers, and the recall it costs. The table also times a
// run, since the soak's CI budget depends on it.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/trace.h"
#include "src/testvec/chaos.h"

namespace prospector {
namespace {

constexpr uint64_t kSeeds = 24;

testvec::ChaosConfig ConfigFor(uint64_t seed, bool naive) {
  testvec::ChaosConfig c;
  c.seed = seed;
  c.num_nodes = 16 + static_cast<int>(seed % 9);
  c.epochs = 40;
  c.num_queries = 1 + static_cast<int>(seed % 3);
  c.naive = naive;
  return c;
}

void Run() {
  bench::BenchJson json("chaos");
  json.Seed(1).Meta("seeds", static_cast<double>(kSeeds));
  json.Section("protocol_arms",
               {"naive", "violations", "mean_recall", "duplicates_dropped",
                "stale_fenced", "corrupt_rejected", "deferred",
                "stale_folded", "duplicates_folded", "rebuilds",
                "ms_per_run"});
  bench::PrintHeader(
      "chaos soak (fenced vs naive protocol)",
      {"naive", "violations", "recall", "dup_drop", "stale_fence",
       "corrupt_rej", "deferred", "stale_fold", "dup_fold", "rebuilds",
       "ms/run"});
  for (int naive = 0; naive <= 1; ++naive) {
    int violations = 0;
    double recall_sum = 0.0;
    int recall_runs = 0;
    int rebuilds = 0;
    core::TransportGuard::Counters total;
    const int64_t t0 = obs::MonotonicNowUs();
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const testvec::ChaosReport report =
          RunChaos(ConfigFor(seed, naive != 0));
      violations += static_cast<int>(report.violations.size());
      if (report.recall_count > 0) {
        recall_sum += report.mean_recall();
        ++recall_runs;
      }
      rebuilds += report.rebuilds;
      total.duplicates_dropped += report.guard.duplicates_dropped;
      total.stale_fenced += report.guard.stale_fenced;
      total.corrupt_rejected += report.guard.corrupt_rejected;
      total.deferred += report.guard.deferred;
      total.stale_folded += report.guard.stale_folded;
      total.duplicates_folded += report.guard.duplicates_folded;
    }
    const double ms_per_run =
        static_cast<double>(obs::MonotonicNowUs() - t0) / 1000.0 /
        static_cast<double>(kSeeds);
    const double mean_recall =
        recall_runs > 0 ? recall_sum / recall_runs : -1.0;
    const std::vector<double> row = {
        static_cast<double>(naive),
        static_cast<double>(violations),
        mean_recall,
        static_cast<double>(total.duplicates_dropped),
        static_cast<double>(total.stale_fenced),
        static_cast<double>(total.corrupt_rejected),
        static_cast<double>(total.deferred),
        static_cast<double>(total.stale_folded),
        static_cast<double>(total.duplicates_folded),
        static_cast<double>(rebuilds),
        ms_per_run};
    bench::PrintRow(row);
    json.Row(row);
  }
  std::printf(
      "\nfenced arm must report 0 violations; the naive arm's non-zero\n"
      "stale/duplicate folds are the tamper signal the soak test asserts.\n");
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
