// Ablation for Section 4.1's rounding step: the paper solves linear
// relaxations and rounds at 1/2, noting the integral problem is
// KNAPSACK-hard and that "in practice the linear relaxation performs much
// better than what the theoretical bound guarantees". Using the in-tree
// branch-and-bound solver we compute true integer optima of the LP-LF
// program on small networks and measure how much the relax-and-round plan
// actually gives up.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_eval.h"
#include "src/data/gaussian_field.h"
#include "src/lp/branch_and_bound.h"

namespace prospector {
namespace {

constexpr int kNodes = 25;
constexpr int kTop = 5;
constexpr int kSamples = 12;

// A miniature copy of the LP-LF program builder (kept local so the bench
// exercises exactly the published formulation).
struct Program {
  lp::Model model;
  std::vector<int> x, z;  // per node
};

Program BuildLpMinusLf(const core::PlannerContext& ctx,
                       const sampling::SampleSet& samples, double budget) {
  const net::Topology& topo = *ctx.topology;
  Program p;
  p.model.SetSense(lp::Sense::kMaximize);
  p.x.assign(kNodes, -1);
  p.z.assign(kNodes, -1);
  for (int i = 1; i < kNodes; ++i) {
    p.x[i] = p.model.AddBinaryRelaxed(samples.column_sums()[i]);
    p.z[i] = p.model.AddBinaryRelaxed(0.0);
  }
  std::vector<lp::Term> cost;
  for (int i = 1; i < kNodes; ++i) {
    double path_cv = 0.0;
    for (int e : topo.PathEdges(i)) {
      p.model.AddRow(lp::RowType::kLessEqual, 0.0,
                     {{p.x[i], 1.0}, {p.z[e], -1.0}});
      path_cv += ctx.EdgePerValueCost(e);
    }
    cost.push_back({p.x[i], path_cv});
    cost.push_back({p.z[i], ctx.EdgeFixedCost(i)});
  }
  p.model.AddRow(lp::RowType::kLessEqual, budget, cost);
  return p;
}

void Run() {
  Rng rng(141);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 32.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  for (int s = 0; s < kSamples; ++s) samples.Add(field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;

  std::printf("LP rounding vs exact ILP on the LP-LF program "
              "(n=%d, k=%d, S=%d)\n",
              kNodes, kTop, kSamples);
  bench::BenchJson json("ilp_gap");
  json.Meta("nodes", kNodes).Meta("k", kTop).Meta("samples", kSamples);
  bench::TableHeader(&json, "sample hits by method",
                     {"budget_mJ", "lp_relax_ub", "rounded_hits", "ilp_hits",
                      "bnb_nodes"});

  for (double b : {1.5, 2.5, 4.0, 6.0, 9.0}) {
    core::LpNoFilterPlanner planner;
    auto plan = planner.Plan(ctx, samples, core::PlanRequest{kTop, b});
    if (!plan.ok()) continue;
    const int rounded_hits = core::SampleHits(*plan, topo, samples);

    Program prog = BuildLpMinusLf(ctx, samples, b);
    std::vector<int> ints;
    for (int i = 1; i < kNodes; ++i) {
      ints.push_back(prog.x[i]);
      ints.push_back(prog.z[i]);
    }
    lp::BranchAndBound bnb;
    auto ilp = bnb.Solve(prog.model, ints);
    if (!ilp.ok() || ilp->status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "# ILP did not finish at budget %.1f\n", b);
      continue;
    }
    // Add the root's free contribution so all columns share one scale.
    int root_ones = 0;
    for (int j = 0; j < samples.num_samples(); ++j) {
      root_ones += samples.Contributes(j, topo.root());
    }
    bench::TableRow(&json, {b, planner.last_lp_objective() + root_ones,
                            double(rounded_hits), ilp->objective + root_ones,
                            double(ilp->nodes_explored)});
  }
  json.Write();
  std::printf("\n(rounded_hits should sit close to ilp_hits, both below the "
              "fractional upper bound.)\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
