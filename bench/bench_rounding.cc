// Ablation (Section 4.1): what the LP rounding post-processing buys. The
// paper's threshold rounding alone can cost up to 2x the budget and strand
// fractional mass; budget repair restores feasibility and the fill stage
// spends leftover budget. We compare raw threshold rounding against
// repair-only and repair+fill on both planners.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/data/contention.h"

namespace prospector {
namespace {

constexpr int kTop = 10;

void Run() {
  const int query_epochs = bench::QueryEpochs(80);
  data::ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = kTop;
  opts.num_background = 40;
  Rng rng(121);
  auto scenario = data::BuildContentionScenario(opts, &rng).value();
  const net::Topology& topo = scenario.topology;
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
  for (int s = 0; s < 25; ++s) samples.Add(scenario.field.Sample(&rng));
  bench::TruthFn truth_fn = [&scenario](Rng* r) {
    return scenario.field.Sample(r);
  };

  core::PlannerContext ctx;
  ctx.topology = &topo;

  struct Mode {
    const char* name;
    bool repair;
    bool fill;
  } modes[] = {
      {"threshold-only", false, false},
      {"repair", true, false},
      {"repair+fill", true, true},
  };

  std::printf("Rounding ablation on the contention workload (k=%d)\n", kTop);
  bench::BenchJson json("rounding");
  json.Meta("k", kTop).Meta("query_epochs", query_epochs);
  for (bool with_filtering : {false, true}) {
    // mode_idx: 0 = threshold-only, 1 = repair, 2 = repair+fill.
    bench::TableHeader(&json, with_filtering ? "LP+LF" : "LP-LF",
                       {"budget_mJ", "mode_idx", "energy_mJ", "accuracy_pct"});
    for (double b : {8.0, 16.0, 24.0}) {
      for (const Mode& m : modes) {
        core::LpPlannerOptions lpo;
        lpo.repair_budget = m.repair;
        lpo.fill_budget = m.fill;
        core::PlanRequest req{kTop, b};
        Result<core::QueryPlan> plan =
            with_filtering
                ? core::LpFilterPlanner(lpo).Plan(ctx, samples, req)
                : core::LpNoFilterPlanner(lpo).Plan(ctx, samples, req);
        if (!plan.ok()) continue;
        bench::EvalResult r = bench::EvaluatePlan(
            *plan, topo, ctx.energy, truth_fn, query_epochs, 122);
        std::printf("%16.1f%16s%16.3f%16.3f\n", b, m.name, r.avg_energy_mj,
                    100.0 * r.avg_accuracy);
        json.Row({b, double(&m - modes), r.avg_energy_mj,
                  100.0 * r.avg_accuracy});
      }
    }
  }
  json.Write();
  std::printf("\n(threshold-only may exceed its budget column; repair pulls "
              "it back; fill recovers stranded budget.)\n");
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
