// Ablation (Section 4.4, "Modeling Other Costs"): folding sensor
// acquisition energy into the optimization. As measuring gets more
// expensive relative to communicating, the acquisition-aware planner
// visits fewer nodes under the same budget — and local filtering's
// visit-many-forward-few strategy loses some of its edge.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/contention.h"

namespace prospector {
namespace {

constexpr int kTop = 10;
constexpr double kBudgetMj = 14.0;

void Run() {
  const int query_epochs = bench::QueryEpochs(60);
  data::ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = kTop;
  opts.num_background = 40;
  Rng rng(181);
  auto scenario = data::BuildContentionScenario(opts, &rng).value();
  const net::Topology& topo = scenario.topology;
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
  for (int s = 0; s < 20; ++s) samples.Add(scenario.field.Sample(&rng));
  bench::TruthFn truth_fn = [&scenario](Rng* r) {
    return scenario.field.Sample(r);
  };

  std::printf("Acquisition-cost ablation (contention workload, k=%d, "
              "budget=%.0f mJ)\n",
              kTop, kBudgetMj);
  bench::BenchJson json("acquisition");
  json.Meta("k", kTop)
      .Meta("budget_mj", kBudgetMj)
      .Meta("query_epochs", query_epochs);
  bench::TableHeader(&json, "LP+LF under rising sensing cost",
                     {"acq_mJ", "visited", "energy_mJ", "accuracy_pct"});

  for (double acq : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    core::PlannerContext ctx;
    ctx.topology = &topo;
    ctx.energy.acquisition_mj = acq;
    core::LpFilterPlanner planner;
    auto plan = planner.Plan(ctx, samples, core::PlanRequest{kTop, kBudgetMj});
    if (!plan.ok()) continue;
    bench::EvalResult r = bench::EvaluatePlan(*plan, topo, ctx.energy,
                                              truth_fn, query_epochs, 182);
    bench::TableRow(&json, {acq, double(plan->CountVisitedNodes(topo)),
                            r.avg_energy_mj, 100.0 * r.avg_accuracy});
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
