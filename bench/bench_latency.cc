// Extension bench (latency is not evaluated in the paper): wall-clock
// duration of one collection phase under the generic-MAC timing model,
// comparing NAIVE-k against budgeted LP+LF plans and the in-network
// cluster aggregation. Approximate plans also win on latency: fewer and
// smaller messages serialize on fewer shared radios.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/cluster_query.h"
#include "src/core/latency.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/naive.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace {

constexpr int kTop = 10;

void Run() {
  std::printf("Collection-phase latency (generic MAC timing; extension "
              "beyond the paper)\n");
  bench::BenchJson json("latency");
  json.Meta("k", kTop);
  bench::TableHeader(&json, "latency by plan",
                     {"nodes", "naivek_s", "lp_lf_tight_s", "lp_lf_rich_s",
                      "cluster_agg_s"});

  core::RadioTiming timing;
  for (int n : {40, 80, 160}) {
    Rng rng(150 + n);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = n;
    geo.radio_range = n >= 160 ? 18.0 : 24.0;
    auto topo_or = net::BuildConnectedGeometricNetwork(geo, &rng);
    if (!topo_or.ok()) continue;
    const net::Topology& topo = topo_or.value();
    data::GaussianField field =
        data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
    sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, kTop);
    for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));
    core::PlannerContext ctx;
    ctx.topology = &topo;

    const core::QueryPlan naive = core::MakeNaiveKPlan(topo, kTop);
    core::LpFilterPlanner planner;
    auto tight = planner.Plan(ctx, samples, core::PlanRequest{kTop, 6.0});
    auto rich = planner.Plan(ctx, samples, core::PlanRequest{kTop, 20.0});
    if (!tight.ok() || !rich.ok()) continue;

    // Cluster aggregation: derive bandwidths = #partials per edge (its
    // latency model input), for a 3x3 grid clustering.
    core::Clustering clusters = core::ClusterByGrid(topo, 3, 3);
    std::vector<int> agg_bw(n, 0);
    {
      std::vector<std::vector<char>> present(n,
                                             std::vector<char>(
                                                 clusters.num_clusters, 0));
      for (int u : topo.PostOrder()) {
        if (clusters.cluster_of_node[u] >= 0) {
          present[u][clusters.cluster_of_node[u]] = 1;
        }
        for (int c : topo.children(u)) {
          for (int cl = 0; cl < clusters.num_clusters; ++cl) {
            present[u][cl] |= present[c][cl];
          }
        }
        if (u != topo.root()) {
          for (int cl = 0; cl < clusters.num_clusters; ++cl) {
            agg_bw[u] += present[u][cl];
          }
        }
      }
    }
    core::QueryPlan agg = core::QueryPlan::Bandwidth(kTop, agg_bw);

    bench::TableRow(
        &json,
        {double(n),
         core::EstimateCollectionLatency(naive, topo, ctx.energy, timing),
         core::EstimateCollectionLatency(*tight, topo, ctx.energy, timing),
         core::EstimateCollectionLatency(*rich, topo, ctx.energy, timing),
         core::EstimateCollectionLatency(agg, topo, ctx.energy, timing)});
  }
  json.Write();
}

}  // namespace
}  // namespace prospector

int main() {
  prospector::Run();
  return 0;
}
