# Empty compiler generated dependencies file for bench_fig8_exact.
# This may be replaced when dependencies are built.
