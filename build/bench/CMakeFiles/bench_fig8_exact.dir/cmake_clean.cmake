file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_exact.dir/bench_fig8_exact.cc.o"
  "CMakeFiles/bench_fig8_exact.dir/bench_fig8_exact.cc.o.d"
  "bench_fig8_exact"
  "bench_fig8_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
