# Empty dependencies file for bench_fig4_variance.
# This may be replaced when dependencies are built.
