file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_variance.dir/bench_fig4_variance.cc.o"
  "CMakeFiles/bench_fig4_variance.dir/bench_fig4_variance.cc.o.d"
  "bench_fig4_variance"
  "bench_fig4_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
