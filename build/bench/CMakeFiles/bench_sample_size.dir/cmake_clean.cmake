file(REMOVE_RECURSE
  "CMakeFiles/bench_sample_size.dir/bench_sample_size.cc.o"
  "CMakeFiles/bench_sample_size.dir/bench_sample_size.cc.o.d"
  "bench_sample_size"
  "bench_sample_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sample_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
