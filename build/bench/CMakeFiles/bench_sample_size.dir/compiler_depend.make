# Empty compiler generated dependencies file for bench_sample_size.
# This may be replaced when dependencies are built.
