file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_gap.dir/bench_ilp_gap.cc.o"
  "CMakeFiles/bench_ilp_gap.dir/bench_ilp_gap.cc.o.d"
  "bench_ilp_gap"
  "bench_ilp_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
