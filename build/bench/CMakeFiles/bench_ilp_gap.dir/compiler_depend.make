# Empty compiler generated dependencies file for bench_ilp_gap.
# This may be replaced when dependencies are built.
