# Empty dependencies file for bench_distribution_cost.
# This may be replaced when dependencies are built.
