file(REMOVE_RECURSE
  "CMakeFiles/bench_distribution_cost.dir/bench_distribution_cost.cc.o"
  "CMakeFiles/bench_distribution_cost.dir/bench_distribution_cost.cc.o.d"
  "bench_distribution_cost"
  "bench_distribution_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distribution_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
