# Empty dependencies file for bench_rounding.
# This may be replaced when dependencies are built.
