file(REMOVE_RECURSE
  "CMakeFiles/bench_rounding.dir/bench_rounding.cc.o"
  "CMakeFiles/bench_rounding.dir/bench_rounding.cc.o.d"
  "bench_rounding"
  "bench_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
