# Empty dependencies file for bench_fig5_contention.
# This may be replaced when dependencies are built.
