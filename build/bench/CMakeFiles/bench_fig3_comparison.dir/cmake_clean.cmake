file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_comparison.dir/bench_fig3_comparison.cc.o"
  "CMakeFiles/bench_fig3_comparison.dir/bench_fig3_comparison.cc.o.d"
  "bench_fig3_comparison"
  "bench_fig3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
