# Empty dependencies file for bench_lifetime.
# This may be replaced when dependencies are built.
