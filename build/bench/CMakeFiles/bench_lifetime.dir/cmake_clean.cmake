file(REMOVE_RECURSE
  "CMakeFiles/bench_lifetime.dir/bench_lifetime.cc.o"
  "CMakeFiles/bench_lifetime.dir/bench_lifetime.cc.o.d"
  "bench_lifetime"
  "bench_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
