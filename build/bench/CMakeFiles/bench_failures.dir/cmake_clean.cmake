file(REMOVE_RECURSE
  "CMakeFiles/bench_failures.dir/bench_failures.cc.o"
  "CMakeFiles/bench_failures.dir/bench_failures.cc.o.d"
  "bench_failures"
  "bench_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
