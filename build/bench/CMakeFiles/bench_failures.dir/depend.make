# Empty dependencies file for bench_failures.
# This may be replaced when dependencies are built.
