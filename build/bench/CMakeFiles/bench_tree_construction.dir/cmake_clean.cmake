file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_construction.dir/bench_tree_construction.cc.o"
  "CMakeFiles/bench_tree_construction.dir/bench_tree_construction.cc.o.d"
  "bench_tree_construction"
  "bench_tree_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
