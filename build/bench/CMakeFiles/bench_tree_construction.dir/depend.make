# Empty dependencies file for bench_tree_construction.
# This may be replaced when dependencies are built.
