# Empty dependencies file for bench_acquisition.
# This may be replaced when dependencies are built.
