file(REMOVE_RECURSE
  "CMakeFiles/bench_acquisition.dir/bench_acquisition.cc.o"
  "CMakeFiles/bench_acquisition.dir/bench_acquisition.cc.o.d"
  "bench_acquisition"
  "bench_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
