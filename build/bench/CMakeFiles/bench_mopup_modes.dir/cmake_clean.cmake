file(REMOVE_RECURSE
  "CMakeFiles/bench_mopup_modes.dir/bench_mopup_modes.cc.o"
  "CMakeFiles/bench_mopup_modes.dir/bench_mopup_modes.cc.o.d"
  "bench_mopup_modes"
  "bench_mopup_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mopup_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
