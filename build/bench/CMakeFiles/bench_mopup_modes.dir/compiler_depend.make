# Empty compiler generated dependencies file for bench_mopup_modes.
# This may be replaced when dependencies are built.
