# Empty dependencies file for bench_fig7_zones.
# This may be replaced when dependencies are built.
