file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_zones.dir/bench_fig7_zones.cc.o"
  "CMakeFiles/bench_fig7_zones.dir/bench_fig7_zones.cc.o.d"
  "bench_fig7_zones"
  "bench_fig7_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
