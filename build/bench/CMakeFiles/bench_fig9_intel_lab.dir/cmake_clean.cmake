file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_intel_lab.dir/bench_fig9_intel_lab.cc.o"
  "CMakeFiles/bench_fig9_intel_lab.dir/bench_fig9_intel_lab.cc.o.d"
  "bench_fig9_intel_lab"
  "bench_fig9_intel_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_intel_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
