# Empty compiler generated dependencies file for bench_fig9_intel_lab.
# This may be replaced when dependencies are built.
