file(REMOVE_RECURSE
  "CMakeFiles/threshold_alarm.dir/threshold_alarm.cpp.o"
  "CMakeFiles/threshold_alarm.dir/threshold_alarm.cpp.o.d"
  "threshold_alarm"
  "threshold_alarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_alarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
