# Empty dependencies file for threshold_alarm.
# This may be replaced when dependencies are built.
