# Empty compiler generated dependencies file for bird_feeders.
# This may be replaced when dependencies are built.
