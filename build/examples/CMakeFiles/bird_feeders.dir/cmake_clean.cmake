file(REMOVE_RECURSE
  "CMakeFiles/bird_feeders.dir/bird_feeders.cpp.o"
  "CMakeFiles/bird_feeders.dir/bird_feeders.cpp.o.d"
  "bird_feeders"
  "bird_feeders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bird_feeders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
