file(REMOVE_RECURSE
  "CMakeFiles/lab_monitoring.dir/lab_monitoring.cpp.o"
  "CMakeFiles/lab_monitoring.dir/lab_monitoring.cpp.o.d"
  "lab_monitoring"
  "lab_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
