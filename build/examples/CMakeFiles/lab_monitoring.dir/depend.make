# Empty dependencies file for lab_monitoring.
# This may be replaced when dependencies are built.
