file(REMOVE_RECURSE
  "CMakeFiles/standing_query.dir/standing_query.cpp.o"
  "CMakeFiles/standing_query.dir/standing_query.cpp.o.d"
  "standing_query"
  "standing_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standing_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
