# Empty compiler generated dependencies file for standing_query.
# This may be replaced when dependencies are built.
