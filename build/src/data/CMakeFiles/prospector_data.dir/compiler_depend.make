# Empty compiler generated dependencies file for prospector_data.
# This may be replaced when dependencies are built.
