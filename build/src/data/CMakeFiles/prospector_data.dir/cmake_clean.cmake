file(REMOVE_RECURSE
  "CMakeFiles/prospector_data.dir/contention.cc.o"
  "CMakeFiles/prospector_data.dir/contention.cc.o.d"
  "CMakeFiles/prospector_data.dir/gaussian_field.cc.o"
  "CMakeFiles/prospector_data.dir/gaussian_field.cc.o.d"
  "CMakeFiles/prospector_data.dir/lab_trace.cc.o"
  "CMakeFiles/prospector_data.dir/lab_trace.cc.o.d"
  "CMakeFiles/prospector_data.dir/trace.cc.o"
  "CMakeFiles/prospector_data.dir/trace.cc.o.d"
  "libprospector_data.a"
  "libprospector_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prospector_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
