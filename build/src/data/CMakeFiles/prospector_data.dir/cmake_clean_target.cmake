file(REMOVE_RECURSE
  "libprospector_data.a"
)
