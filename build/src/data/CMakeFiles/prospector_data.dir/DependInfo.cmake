
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/contention.cc" "src/data/CMakeFiles/prospector_data.dir/contention.cc.o" "gcc" "src/data/CMakeFiles/prospector_data.dir/contention.cc.o.d"
  "/root/repo/src/data/gaussian_field.cc" "src/data/CMakeFiles/prospector_data.dir/gaussian_field.cc.o" "gcc" "src/data/CMakeFiles/prospector_data.dir/gaussian_field.cc.o.d"
  "/root/repo/src/data/lab_trace.cc" "src/data/CMakeFiles/prospector_data.dir/lab_trace.cc.o" "gcc" "src/data/CMakeFiles/prospector_data.dir/lab_trace.cc.o.d"
  "/root/repo/src/data/trace.cc" "src/data/CMakeFiles/prospector_data.dir/trace.cc.o" "gcc" "src/data/CMakeFiles/prospector_data.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/prospector_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
