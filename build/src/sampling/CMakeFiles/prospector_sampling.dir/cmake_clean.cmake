file(REMOVE_RECURSE
  "CMakeFiles/prospector_sampling.dir/sample_set.cc.o"
  "CMakeFiles/prospector_sampling.dir/sample_set.cc.o.d"
  "libprospector_sampling.a"
  "libprospector_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prospector_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
