file(REMOVE_RECURSE
  "libprospector_sampling.a"
)
