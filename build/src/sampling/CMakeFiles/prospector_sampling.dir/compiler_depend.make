# Empty compiler generated dependencies file for prospector_sampling.
# This may be replaced when dependencies are built.
