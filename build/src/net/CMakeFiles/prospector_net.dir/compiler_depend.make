# Empty compiler generated dependencies file for prospector_net.
# This may be replaced when dependencies are built.
