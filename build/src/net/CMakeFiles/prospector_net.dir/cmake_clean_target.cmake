file(REMOVE_RECURSE
  "libprospector_net.a"
)
