
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/describe.cc" "src/net/CMakeFiles/prospector_net.dir/describe.cc.o" "gcc" "src/net/CMakeFiles/prospector_net.dir/describe.cc.o.d"
  "/root/repo/src/net/mst.cc" "src/net/CMakeFiles/prospector_net.dir/mst.cc.o" "gcc" "src/net/CMakeFiles/prospector_net.dir/mst.cc.o.d"
  "/root/repo/src/net/rebuild.cc" "src/net/CMakeFiles/prospector_net.dir/rebuild.cc.o" "gcc" "src/net/CMakeFiles/prospector_net.dir/rebuild.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/prospector_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/prospector_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
