file(REMOVE_RECURSE
  "CMakeFiles/prospector_net.dir/describe.cc.o"
  "CMakeFiles/prospector_net.dir/describe.cc.o.d"
  "CMakeFiles/prospector_net.dir/mst.cc.o"
  "CMakeFiles/prospector_net.dir/mst.cc.o.d"
  "CMakeFiles/prospector_net.dir/rebuild.cc.o"
  "CMakeFiles/prospector_net.dir/rebuild.cc.o.d"
  "CMakeFiles/prospector_net.dir/topology.cc.o"
  "CMakeFiles/prospector_net.dir/topology.cc.o.d"
  "libprospector_net.a"
  "libprospector_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prospector_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
