file(REMOVE_RECURSE
  "libprospector_core.a"
)
