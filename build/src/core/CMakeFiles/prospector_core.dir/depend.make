# Empty dependencies file for prospector_core.
# This may be replaced when dependencies are built.
