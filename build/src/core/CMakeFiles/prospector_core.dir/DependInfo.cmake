
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_query.cc" "src/core/CMakeFiles/prospector_core.dir/cluster_query.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/cluster_query.cc.o.d"
  "/root/repo/src/core/event_sim.cc" "src/core/CMakeFiles/prospector_core.dir/event_sim.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/event_sim.cc.o.d"
  "/root/repo/src/core/exact.cc" "src/core/CMakeFiles/prospector_core.dir/exact.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/exact.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/prospector_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/executor.cc.o.d"
  "/root/repo/src/core/greedy_planner.cc" "src/core/CMakeFiles/prospector_core.dir/greedy_planner.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/greedy_planner.cc.o.d"
  "/root/repo/src/core/latency.cc" "src/core/CMakeFiles/prospector_core.dir/latency.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/latency.cc.o.d"
  "/root/repo/src/core/lifetime.cc" "src/core/CMakeFiles/prospector_core.dir/lifetime.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/lifetime.cc.o.d"
  "/root/repo/src/core/lp_filter_planner.cc" "src/core/CMakeFiles/prospector_core.dir/lp_filter_planner.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/lp_filter_planner.cc.o.d"
  "/root/repo/src/core/lp_no_filter_planner.cc" "src/core/CMakeFiles/prospector_core.dir/lp_no_filter_planner.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/lp_no_filter_planner.cc.o.d"
  "/root/repo/src/core/naive.cc" "src/core/CMakeFiles/prospector_core.dir/naive.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/naive.cc.o.d"
  "/root/repo/src/core/oracle.cc" "src/core/CMakeFiles/prospector_core.dir/oracle.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/oracle.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/prospector_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/plan.cc.o.d"
  "/root/repo/src/core/plan_eval.cc" "src/core/CMakeFiles/prospector_core.dir/plan_eval.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/plan_eval.cc.o.d"
  "/root/repo/src/core/plan_wire.cc" "src/core/CMakeFiles/prospector_core.dir/plan_wire.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/plan_wire.cc.o.d"
  "/root/repo/src/core/proof_executor.cc" "src/core/CMakeFiles/prospector_core.dir/proof_executor.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/proof_executor.cc.o.d"
  "/root/repo/src/core/proof_planner.cc" "src/core/CMakeFiles/prospector_core.dir/proof_planner.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/proof_planner.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/prospector_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/prospector_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/prospector_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prospector_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/prospector_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/prospector_sampling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
