
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/branch_and_bound.cc" "src/lp/CMakeFiles/prospector_lp.dir/branch_and_bound.cc.o" "gcc" "src/lp/CMakeFiles/prospector_lp.dir/branch_and_bound.cc.o.d"
  "/root/repo/src/lp/kkt.cc" "src/lp/CMakeFiles/prospector_lp.dir/kkt.cc.o" "gcc" "src/lp/CMakeFiles/prospector_lp.dir/kkt.cc.o.d"
  "/root/repo/src/lp/lp_writer.cc" "src/lp/CMakeFiles/prospector_lp.dir/lp_writer.cc.o" "gcc" "src/lp/CMakeFiles/prospector_lp.dir/lp_writer.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/lp/CMakeFiles/prospector_lp.dir/simplex.cc.o" "gcc" "src/lp/CMakeFiles/prospector_lp.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
