# Empty compiler generated dependencies file for prospector_lp.
# This may be replaced when dependencies are built.
