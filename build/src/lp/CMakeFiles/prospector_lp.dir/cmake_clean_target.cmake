file(REMOVE_RECURSE
  "libprospector_lp.a"
)
