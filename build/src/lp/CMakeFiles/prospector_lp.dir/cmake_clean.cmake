file(REMOVE_RECURSE
  "CMakeFiles/prospector_lp.dir/branch_and_bound.cc.o"
  "CMakeFiles/prospector_lp.dir/branch_and_bound.cc.o.d"
  "CMakeFiles/prospector_lp.dir/kkt.cc.o"
  "CMakeFiles/prospector_lp.dir/kkt.cc.o.d"
  "CMakeFiles/prospector_lp.dir/lp_writer.cc.o"
  "CMakeFiles/prospector_lp.dir/lp_writer.cc.o.d"
  "CMakeFiles/prospector_lp.dir/simplex.cc.o"
  "CMakeFiles/prospector_lp.dir/simplex.cc.o.d"
  "libprospector_lp.a"
  "libprospector_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prospector_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
