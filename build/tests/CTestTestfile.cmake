# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lp_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/lp_extras_test[1]_include.cmake")
include("/root/repo/build/tests/lp_bnb_test[1]_include.cmake")
include("/root/repo/build/tests/net_topology_test[1]_include.cmake")
include("/root/repo/build/tests/net_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/net_rebuild_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/core_plan_test[1]_include.cmake")
include("/root/repo/build/tests/core_executor_test[1]_include.cmake")
include("/root/repo/build/tests/core_proof_test[1]_include.cmake")
include("/root/repo/build/tests/core_planner_test[1]_include.cmake")
include("/root/repo/build/tests/core_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/core_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/core_latency_test[1]_include.cmake")
include("/root/repo/build/tests/core_event_sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_plan_wire_test[1]_include.cmake")
include("/root/repo/build/tests/lp_kkt_test[1]_include.cmake")
include("/root/repo/build/tests/net_mst_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/core_lifetime_test[1]_include.cmake")
include("/root/repo/build/tests/core_session_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lp_limits_test[1]_include.cmake")
include("/root/repo/build/tests/core_acquisition_test[1]_include.cmake")
