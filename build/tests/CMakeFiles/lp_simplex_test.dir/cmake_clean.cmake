file(REMOVE_RECURSE
  "CMakeFiles/lp_simplex_test.dir/lp_simplex_test.cc.o"
  "CMakeFiles/lp_simplex_test.dir/lp_simplex_test.cc.o.d"
  "lp_simplex_test"
  "lp_simplex_test.pdb"
  "lp_simplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_simplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
