# Empty compiler generated dependencies file for lp_simplex_test.
# This may be replaced when dependencies are built.
