# Empty compiler generated dependencies file for core_event_sim_test.
# This may be replaced when dependencies are built.
