file(REMOVE_RECURSE
  "CMakeFiles/core_proof_test.dir/core_proof_test.cc.o"
  "CMakeFiles/core_proof_test.dir/core_proof_test.cc.o.d"
  "core_proof_test"
  "core_proof_test.pdb"
  "core_proof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_proof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
