file(REMOVE_RECURSE
  "CMakeFiles/lp_limits_test.dir/lp_limits_test.cc.o"
  "CMakeFiles/lp_limits_test.dir/lp_limits_test.cc.o.d"
  "lp_limits_test"
  "lp_limits_test.pdb"
  "lp_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
