# Empty dependencies file for lp_limits_test.
# This may be replaced when dependencies are built.
