# Empty compiler generated dependencies file for net_simulator_test.
# This may be replaced when dependencies are built.
