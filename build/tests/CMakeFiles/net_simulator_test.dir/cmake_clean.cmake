file(REMOVE_RECURSE
  "CMakeFiles/net_simulator_test.dir/net_simulator_test.cc.o"
  "CMakeFiles/net_simulator_test.dir/net_simulator_test.cc.o.d"
  "net_simulator_test"
  "net_simulator_test.pdb"
  "net_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
