# Empty dependencies file for core_lifetime_test.
# This may be replaced when dependencies are built.
