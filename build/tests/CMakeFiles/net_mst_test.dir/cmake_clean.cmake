file(REMOVE_RECURSE
  "CMakeFiles/net_mst_test.dir/net_mst_test.cc.o"
  "CMakeFiles/net_mst_test.dir/net_mst_test.cc.o.d"
  "net_mst_test"
  "net_mst_test.pdb"
  "net_mst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_mst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
