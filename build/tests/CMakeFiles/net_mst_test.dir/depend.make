# Empty dependencies file for net_mst_test.
# This may be replaced when dependencies are built.
