# Empty dependencies file for core_cluster_test.
# This may be replaced when dependencies are built.
