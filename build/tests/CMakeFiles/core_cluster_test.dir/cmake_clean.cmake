file(REMOVE_RECURSE
  "CMakeFiles/core_cluster_test.dir/core_cluster_test.cc.o"
  "CMakeFiles/core_cluster_test.dir/core_cluster_test.cc.o.d"
  "core_cluster_test"
  "core_cluster_test.pdb"
  "core_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
