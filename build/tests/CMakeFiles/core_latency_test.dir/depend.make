# Empty dependencies file for core_latency_test.
# This may be replaced when dependencies are built.
