file(REMOVE_RECURSE
  "CMakeFiles/core_latency_test.dir/core_latency_test.cc.o"
  "CMakeFiles/core_latency_test.dir/core_latency_test.cc.o.d"
  "core_latency_test"
  "core_latency_test.pdb"
  "core_latency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
