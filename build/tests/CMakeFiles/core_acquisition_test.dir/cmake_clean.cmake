file(REMOVE_RECURSE
  "CMakeFiles/core_acquisition_test.dir/core_acquisition_test.cc.o"
  "CMakeFiles/core_acquisition_test.dir/core_acquisition_test.cc.o.d"
  "core_acquisition_test"
  "core_acquisition_test.pdb"
  "core_acquisition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_acquisition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
