# Empty dependencies file for core_extensions_test.
# This may be replaced when dependencies are built.
