# Empty compiler generated dependencies file for core_planner_test.
# This may be replaced when dependencies are built.
