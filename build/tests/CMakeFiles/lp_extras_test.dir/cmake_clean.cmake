file(REMOVE_RECURSE
  "CMakeFiles/lp_extras_test.dir/lp_extras_test.cc.o"
  "CMakeFiles/lp_extras_test.dir/lp_extras_test.cc.o.d"
  "lp_extras_test"
  "lp_extras_test.pdb"
  "lp_extras_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
