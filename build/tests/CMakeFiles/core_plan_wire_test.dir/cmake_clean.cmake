file(REMOVE_RECURSE
  "CMakeFiles/core_plan_wire_test.dir/core_plan_wire_test.cc.o"
  "CMakeFiles/core_plan_wire_test.dir/core_plan_wire_test.cc.o.d"
  "core_plan_wire_test"
  "core_plan_wire_test.pdb"
  "core_plan_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_plan_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
