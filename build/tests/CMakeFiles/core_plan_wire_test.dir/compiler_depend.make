# Empty compiler generated dependencies file for core_plan_wire_test.
# This may be replaced when dependencies are built.
