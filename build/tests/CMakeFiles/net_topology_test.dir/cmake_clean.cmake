file(REMOVE_RECURSE
  "CMakeFiles/net_topology_test.dir/net_topology_test.cc.o"
  "CMakeFiles/net_topology_test.dir/net_topology_test.cc.o.d"
  "net_topology_test"
  "net_topology_test.pdb"
  "net_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
