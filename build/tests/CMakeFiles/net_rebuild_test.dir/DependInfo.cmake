
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_rebuild_test.cc" "tests/CMakeFiles/net_rebuild_test.dir/net_rebuild_test.cc.o" "gcc" "tests/CMakeFiles/net_rebuild_test.dir/net_rebuild_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/prospector_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/prospector_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/prospector_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/prospector_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/prospector_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
