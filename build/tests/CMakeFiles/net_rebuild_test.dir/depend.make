# Empty dependencies file for net_rebuild_test.
# This may be replaced when dependencies are built.
