file(REMOVE_RECURSE
  "CMakeFiles/net_rebuild_test.dir/net_rebuild_test.cc.o"
  "CMakeFiles/net_rebuild_test.dir/net_rebuild_test.cc.o.d"
  "net_rebuild_test"
  "net_rebuild_test.pdb"
  "net_rebuild_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_rebuild_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
