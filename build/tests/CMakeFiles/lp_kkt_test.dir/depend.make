# Empty dependencies file for lp_kkt_test.
# This may be replaced when dependencies are built.
