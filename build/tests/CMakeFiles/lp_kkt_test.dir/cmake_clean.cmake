file(REMOVE_RECURSE
  "CMakeFiles/lp_kkt_test.dir/lp_kkt_test.cc.o"
  "CMakeFiles/lp_kkt_test.dir/lp_kkt_test.cc.o.d"
  "lp_kkt_test"
  "lp_kkt_test.pdb"
  "lp_kkt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_kkt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
