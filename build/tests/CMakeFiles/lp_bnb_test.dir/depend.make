# Empty dependencies file for lp_bnb_test.
# This may be replaced when dependencies are built.
