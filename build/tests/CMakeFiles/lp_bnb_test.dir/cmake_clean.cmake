file(REMOVE_RECURSE
  "CMakeFiles/lp_bnb_test.dir/lp_bnb_test.cc.o"
  "CMakeFiles/lp_bnb_test.dir/lp_bnb_test.cc.o.d"
  "lp_bnb_test"
  "lp_bnb_test.pdb"
  "lp_bnb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
