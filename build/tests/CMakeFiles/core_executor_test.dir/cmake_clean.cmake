file(REMOVE_RECURSE
  "CMakeFiles/core_executor_test.dir/core_executor_test.cc.o"
  "CMakeFiles/core_executor_test.dir/core_executor_test.cc.o.d"
  "core_executor_test"
  "core_executor_test.pdb"
  "core_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
