# Empty dependencies file for core_executor_test.
# This may be replaced when dependencies are built.
