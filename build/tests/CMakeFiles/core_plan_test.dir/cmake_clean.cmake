file(REMOVE_RECURSE
  "CMakeFiles/core_plan_test.dir/core_plan_test.cc.o"
  "CMakeFiles/core_plan_test.dir/core_plan_test.cc.o.d"
  "core_plan_test"
  "core_plan_test.pdb"
  "core_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
