# Empty dependencies file for core_plan_test.
# This may be replaced when dependencies are built.
