file(REMOVE_RECURSE
  "CMakeFiles/sampling_adaptive_test.dir/sampling_adaptive_test.cc.o"
  "CMakeFiles/sampling_adaptive_test.dir/sampling_adaptive_test.cc.o.d"
  "sampling_adaptive_test"
  "sampling_adaptive_test.pdb"
  "sampling_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
