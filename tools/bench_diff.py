#!/usr/bin/env python3
"""Compare two trees (or files) of BENCH_<name>.json artifacts.

Usage:
    tools/bench_diff.py OLD NEW [--tol REL] [--seed-strict]

OLD and NEW are directories holding BENCH_*.json files (e.g. two CI
bench-smoke artifact downloads) or two individual artifact files.

For every artifact name present in both trees the script checks
provenance first — schema_version must match, and config_fingerprint
must match (different fingerprints mean the benches measured different
configurations, so comparing their rows would be apples to oranges) —
and then reports per-cell relative deltas exceeding --tol (default 5%).
Artifacts present on only one side are listed. Exit status: 0 when
every common artifact is comparable and within tolerance, 1 otherwise.

Seeds are provenance, not configuration: a seed difference is reported
but only fails the diff under --seed-strict.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import os
import sys


def load_tree(path, errors):
    """Maps artifact name -> parsed JSON for a directory or single file.

    Unreadable or malformed artifacts never raise: each one appends a
    per-file message to `errors` and is left out of the returned map.
    """
    out = {}
    if os.path.isfile(path):
        paths = [path]
    elif os.path.isdir(path):
        paths = [
            os.path.join(path, f)
            for f in sorted(os.listdir(path))
            if f.startswith("BENCH_") and f.endswith(".json")
        ]
        if not paths:
            errors.append(f"{path}: no BENCH_*.json artifacts found")
            return out
    else:
        errors.append(f"{path}: no such file or directory")
        return out
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except OSError as e:
            errors.append(f"{p}: unreadable ({e.strerror or e})")
            continue
        except json.JSONDecodeError as e:
            errors.append(f"{p}: malformed JSON (line {e.lineno} "
                          f"column {e.colno}: {e.msg})")
            continue
        if not isinstance(doc, dict):
            errors.append(f"{p}: expected a JSON object, got "
                          f"{type(doc).__name__}")
            continue
        out[os.path.basename(p)] = doc
    return out


def tables_of(doc):
    """Normalizes both artifact shapes to a list of (title, columns, rows)."""
    if "tables" in doc:
        return [(t.get("title", ""), t.get("columns", []), t.get("rows", []))
                for t in doc["tables"]]
    return [("", doc.get("columns", []), doc.get("rows", []))]


def rel_delta(a, b):
    """Relative delta for numeric cells; None when not comparable."""
    if a == b:
        return 0.0
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)) \
            or isinstance(a, bool) or isinstance(b, bool):
        return None
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale > 0 else 0.0


def diff_artifact(name, old, new, tol, seed_strict, out):
    """Appends human-readable findings to `out`; returns True when clean."""
    ok = True
    sv_old = old.get("schema_version", 1)
    sv_new = new.get("schema_version", 1)
    if sv_old != sv_new:
        out.append(f"{name}: schema_version {sv_old} != {sv_new}; "
                   "not comparable")
        return False
    fp_old = old.get("config_fingerprint")
    fp_new = new.get("config_fingerprint")
    if fp_old != fp_new:
        out.append(f"{name}: config_fingerprint {fp_old} != {fp_new}; "
                   "the benches measured different configurations")
        return False
    seed_old = old.get("seed", 0)
    seed_new = new.get("seed", 0)
    if seed_old != seed_new:
        out.append(f"{name}: seed {seed_old} != {seed_new}"
                   + (" (failing: --seed-strict)" if seed_strict
                      else " (note: different RNG streams)"))
        if seed_strict:
            ok = False
    # Host facts are provenance, not configuration: differing values never
    # fail the diff, but they explain otherwise-alarming deltas (e.g. a
    # parallel speedup < 1 on a 1-core runner), so surface them.
    host_old = old.get("host", {})
    host_new = new.get("host", {})
    for key in sorted(set(host_old) | set(host_new)):
        a, b = host_old.get(key), host_new.get(key)
        if a != b:
            out.append(f"{name}: host {key} {a} != {b} (note: different "
                       "machines; machine-dependent columns may move)")

    old_tables = tables_of(old)
    new_tables = tables_of(new)
    if len(old_tables) != len(new_tables):
        out.append(f"{name}: table count {len(old_tables)} != "
                   f"{len(new_tables)}")
        return False
    for (title, cols_o, rows_o), (_, cols_n, rows_n) in zip(
            old_tables, new_tables):
        label = f"{name}" + (f"[{title}]" if title else "")
        if cols_o != cols_n:
            out.append(f"{label}: column sets differ")
            ok = False
            continue
        if len(rows_o) != len(rows_n):
            out.append(f"{label}: row count {len(rows_o)} != {len(rows_n)}")
            ok = False
            continue
        for r, (row_o, row_n) in enumerate(zip(rows_o, rows_n)):
            for c, (a, b) in enumerate(zip(row_o, row_n)):
                col = cols_o[c] if c < len(cols_o) else f"col{c}"
                d = rel_delta(a, b)
                if d is None:
                    out.append(f"{label}: row {r} {col}: non-numeric "
                               f"cells {a!r} != {b!r}")
                    ok = False
                elif d > tol:
                    out.append(f"{label}: row {r} {col}: "
                               f"{a:.6g} -> {b:.6g} ({d * 100.0:.1f}%)")
                    ok = False
    return ok


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline tree or artifact file")
    ap.add_argument("new", help="candidate tree or artifact file")
    ap.add_argument("--tol", type=float, default=0.05,
                    help="relative per-cell tolerance (default 0.05)")
    ap.add_argument("--seed-strict", action="store_true",
                    help="fail when seeds differ")
    args = ap.parse_args(argv)

    findings = []
    old_tree = load_tree(args.old, findings)
    new_tree = load_tree(args.new, findings)
    clean = not findings
    for name in sorted(set(old_tree) - set(new_tree)):
        findings.append(f"{name}: only in {args.old}")
        clean = False
    for name in sorted(set(new_tree) - set(old_tree)):
        findings.append(f"{name}: only in {args.new}")
        clean = False
    common = sorted(set(old_tree) & set(new_tree))
    for name in common:
        try:
            comparable = diff_artifact(name, old_tree[name], new_tree[name],
                                       args.tol, args.seed_strict, findings)
        except (AttributeError, KeyError, TypeError, ValueError) as e:
            findings.append(f"{name}: unexpected artifact shape "
                            f"({type(e).__name__}: {e})")
            comparable = False
        if not comparable:
            clean = False
    for line in findings:
        print(line)
    print(f"compared {len(common)} artifact(s): "
          + ("OK" if clean else "DIFFERENCES"))
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
