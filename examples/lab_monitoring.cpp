// Long-running building monitoring, modeled on the Intel Lab deployment:
// 54 motes report temperature; the operator keeps a standing "5 hottest
// spots" query alive for days. This example exercises the full life cycle:
//   * bootstrap samples from the trace (with missing-value imputation),
//   * adaptive re-planning via PlanManager when conditions drift,
//   * periodic PROSPECTOR Proof runs that measure true accuracy without
//     trusting the model (Section 4.4's re-sampling policy),
//   * PROSPECTOR Exact when the operator demands a guaranteed answer.
//
// Build & run:  ./build/examples/lab_monitoring

#include <cstdio>

#include "src/core/exact.h"
#include "src/core/executor.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_manager.h"
#include "src/data/lab_trace.h"
#include "src/net/simulator.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"

using namespace prospector;

int main() {
  constexpr int kTop = 5;
  constexpr int kBootstrapEpochs = 40;
  constexpr int kRunEpochs = 160;

  data::LabTraceOptions lab_opts;
  lab_opts.num_epochs = kBootstrapEpochs + kRunEpochs;
  lab_opts.radio_range = 7.0;  // this placement seed needs a little margin
  Rng rng(12);
  auto lab_or = data::BuildLabScenario(lab_opts, &rng);
  if (!lab_or.ok()) {
    std::fprintf(stderr, "%s\n", lab_or.status().ToString().c_str());
    return 1;
  }
  data::LabScenario& lab = lab_or.value();
  const int missing = lab.trace.CountMissing();
  lab.trace.ImputeMissing();
  const net::Topology& topo = lab.topology;
  std::printf("lab: %d motes, tree height %d, %d missing readings imputed\n",
              topo.num_nodes(), topo.height(), missing);

  core::PlannerContext ctx;
  ctx.topology = &topo;
  net::NetworkSimulator sim(&topo, ctx.energy);

  // Bootstrap the sample window from the first epochs.
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop, /*window=*/40);
  samples.AddTrace(lab.trace.Slice(0, kBootstrapEpochs));

  core::LpNoFilterPlanner planner;  // lab top-k is predictable: LP-LF suffices
  core::PlanManager manager(&planner, core::PlanRequest{kTop, 4.5});
  sampling::SampleCollector collector;

  double query_energy = 0.0, sampling_energy = 0.0, recall_sum = 0.0;
  int queries = 0;
  Rng policy_rng(13);
  for (int t = kBootstrapEpochs; t < lab.trace.num_epochs(); ++t) {
    const std::vector<double>& truth = lab.trace.epoch(t);

    // Exploration step? (rate adapts to observed accuracy)
    if (collector.ShouldExplore(&policy_rng) ||
        policy_rng.Bernoulli(manager.explore_probability())) {
      sampling_energy += collector.CollectSample(truth, &sim, &samples);
      sim.ResetStats();
      auto changed = manager.MaybeReplan(ctx, samples, &sim);
      if (changed.ok() && *changed) {
        std::printf("epoch %3d: new plan disseminated (visits %d motes)\n", t,
                    manager.plan().CountVisitedNodes(topo));
      }
      sim.ResetStats();
      continue;
    }
    if (!manager.has_plan()) {
      (void)*manager.MaybeReplan(ctx, samples, &sim);
      sim.ResetStats();
    }

    auto r = core::CollectionExecutor::Execute(manager.plan(), truth, &sim);
    recall_sum += core::TopKRecall(r, truth, kTop);
    query_energy += r.total_energy_mj();
    ++queries;
    sim.ResetStats();

    // Every 50 epochs, audit accuracy with a proof-backed exact query.
    if (t % 50 == 0) {
      auto exact = core::RunProspectorExact(
          ctx, samples, kTop,
          core::ProofPlanner::MinimumCost(ctx) * 1.15, truth, &sim);
      if (exact.ok()) {
        const double observed =
            static_cast<double>(exact->phase1_proven) / kTop;
        manager.ObserveAccuracy(observed);
        std::printf("epoch %3d: audit proved %d/%d up front "
                    "(%.1f + %.1f mJ); explore rate now %.2f\n",
                    t, exact->phase1_proven, kTop, exact->phase1_energy_mj,
                    exact->phase2_energy_mj, manager.explore_probability());
      }
      sim.ResetStats();
    }
  }

  std::printf("\n%d standing queries: %.1f%% avg recall, %.2f mJ/query;\n"
              "sampling overhead %.1f mJ total, %d dissemination(s)\n",
              queries, 100.0 * recall_sum / queries, query_energy / queries,
              sampling_energy, manager.disseminations());
  return 0;
}
