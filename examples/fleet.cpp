// Fleet quick-start: several independent sensor deployments served by one
// service::FleetService. Tenants admit standing top-k queries through a
// request/response API (with per-tenant quotas and typed rejections), the
// service ticks every deployment each epoch — batched across a worker
// pool, bit-identical to ticking them one by one — and answers are polled
// back per query.
//
// Compare with examples/multi_query.cpp, which drives a single
// core::QueryEngine directly.
//
// Build & run:  ./build/examples/fleet

#include <cstdio>
#include <vector>

#include "src/core/health.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/service/fleet.h"

using namespace prospector;

int main() {
  constexpr int kDeployments = 3;
  constexpr int kNodes = 30;

  // One topology + value field per site (say, three greenhouses).
  Rng rng(2026);
  std::vector<net::Topology> topologies;
  std::vector<data::GaussianField> fields;
  topologies.reserve(kDeployments);
  fields.reserve(kDeployments);
  for (int d = 0; d < kDeployments; ++d) {
    net::GeometricNetworkOptions geo;
    geo.num_nodes = kNodes;
    geo.radio_range = 35.0;
    auto topo = net::BuildConnectedGeometricNetwork(geo, &rng);
    if (!topo.ok()) {
      std::fprintf(stderr, "%s\n", topo.status().ToString().c_str());
      return 1;
    }
    topologies.push_back(std::move(topo.value()));
    fields.push_back(
        data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 12.0, &rng));
  }

  service::FleetOptions options;
  options.scheduler_threads = 4;  // results identical to 1; just faster
  service::FleetService fleet(options);
  // Tenant 1 (a free-tier dashboard, say) may keep at most two standing
  // queries across the whole fleet.
  service::TenantQuota free_tier;
  free_tier.max_standing_queries = 2;
  fleet.SetTenantQuota(1, free_tier);

  for (int d = 0; d < kDeployments; ++d) {
    const data::GaussianField& field = fields[d];
    core::QueryEngineOptions engine_options;
    engine_options.bootstrap_sweeps = 5;
    fleet.AddDeployment(
        &topologies[d], net::EnergyModel{}, net::FailureModel{},
        engine_options, [&field](Rng* r) { return field.Sample(r); },
        /*seed=*/42 + static_cast<uint64_t>(d));
  }

  // Tenant 0 watches the five hottest sensors on every site; tenant 1
  // tries to put a cheap top-3 alarm on each site and hits its quota.
  std::vector<int> watch_ids;
  for (int d = 0; d < kDeployments; ++d) {
    service::AdmitQueryRequest watch;
    watch.deployment_id = d;
    watch.tenant_id = 0;
    watch.spec.k = 5;
    watch.spec.energy_budget_mj = 12.0;
    const auto resp = fleet.Admit(watch);
    if (resp.admitted) watch_ids.push_back(resp.query_id);

    service::AdmitQueryRequest alarm;
    alarm.deployment_id = d;
    alarm.tenant_id = 1;
    alarm.spec.k = 3;
    alarm.spec.energy_budget_mj = 5.0;
    alarm.spec.planner = core::PlannerChoice::kGreedy;
    const auto alarm_resp = fleet.Admit(alarm);
    if (!alarm_resp.admitted) {
      std::printf("site %d alarm rejected (%s): %s\n", d,
                  service::AdmitRejectName(alarm_resp.reject),
                  alarm_resp.message.c_str());
    }
  }

  if (auto run = fleet.RunEpochs(40); !run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }

  // Poll each watch query: latest answer + what it cost.
  for (const int id : watch_ids) {
    service::PollAnswersRequest poll;
    poll.query_id = id;
    const auto resp = fleet.Poll(poll);
    if (resp.answers.empty()) continue;
    const service::AnswerRecord& last = resp.answers.back();
    std::printf(
        "query %d: %zu answers buffered; epoch %lld hottest node %d at "
        "%.1f (recall %.0f%%, %.2f mJ)\n",
        id, resp.answers.size(), last.epoch,
        last.answer.empty() ? -1 : last.answer[0].node,
        last.answer.empty() ? 0.0 : last.answer[0].value, 100.0 * last.recall,
        last.energy_mj);
  }

  const service::FleetStatus status = fleet.Snapshot();
  std::printf(
      "\nfleet: %d deployments, %d standing queries, %lld epochs, "
      "%.1f mJ total; %lld admission(s) rejected\n",
      status.deployments, status.standing_queries, status.epoch,
      status.total_energy_mj, status.rejects);
  for (const service::TenantStatus& t : status.per_tenant) {
    std::printf("  tenant %d: %d standing, %.1f mJ/epoch budget, "
                "%.1f mJ attributed\n",
                t.tenant_id, t.standing_queries, t.admitted_budget_mj,
                t.attributed_energy_mj);
  }
  return 0;
}
