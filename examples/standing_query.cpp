// The adoption-layer API: TopKQuerySession runs a standing top-k query
// end-to-end — bootstrap sweeps, budgeted planning, windowed samples,
// adaptive re-planning, and periodic proof-backed audits — behind a single
// Tick() call per epoch. Compare with examples/lab_monitoring.cpp, which
// wires the same machinery by hand.
//
// Build & run:  ./build/examples/standing_query

#include <cstdio>

#include "src/core/executor.h"
#include "src/core/session.h"
#include "src/data/gaussian_field.h"
#include "src/net/describe.h"
#include "src/net/topology.h"

using namespace prospector;

int main() {
  Rng rng(2026);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 80;
  geo.radio_range = 24.0;
  auto topo_or = net::BuildConnectedGeometricNetwork(geo, &rng);
  if (!topo_or.ok()) {
    std::fprintf(stderr, "%s\n", topo_or.status().ToString().c_str());
    return 1;
  }
  const net::Topology& topo = topo_or.value();
  std::printf("network: %s\n", net::SummarizeTopology(topo).c_str());

  data::GaussianField field =
      data::GaussianField::Random(80, 40.0, 60.0, 1.0, 16.0, &rng);

  core::SessionOptions opts;
  opts.k = 8;
  opts.energy_budget_mj = 12.0;
  opts.bootstrap_sweeps = 6;
  opts.audit_every = 25;  // a proof-backed exact query every 25 queries
  core::TopKQuerySession session(&topo, net::EnergyModel{}, net::FailureModel{},
                                 opts, /*seed=*/42);

  double recall = 0.0;
  int queries = 0;
  for (int epoch = 0; epoch < 120; ++epoch) {
    const std::vector<double> truth = field.Sample(&rng);
    auto tick = session.Tick(truth);
    if (!tick.ok()) {
      std::fprintf(stderr, "epoch %d: %s\n", epoch,
                   tick.status().ToString().c_str());
      return 1;
    }
    using Kind = core::TopKQuerySession::TickResult::Kind;
    switch (tick->kind) {
      case Kind::kBootstrap:
        break;
      case Kind::kExplore:
        std::printf("epoch %3d: exploration sweep (%.1f mJ)%s\n", epoch,
                    tick->energy_mj, tick->replanned ? ", plan updated" : "");
        break;
      case Kind::kAudit:
        std::printf("epoch %3d: audit — exact top-%d retrieved, %d/%d proven "
                    "up front (%.1f mJ)\n",
                    epoch, opts.k, tick->proven, opts.k, tick->energy_mj);
        break;
      case Kind::kQuery: {
        ++queries;
        std::vector<char> hit(80, 0);
        for (const core::Reading& r : tick->answer) hit[r.node] = 1;
        int found = 0;
        for (const core::Reading& r : core::TrueTopK(truth, opts.k)) {
          found += hit[r.node];
        }
        recall += static_cast<double>(found) / opts.k;
        break;
      }
    }
  }

  std::printf("\n%d queries: %.1f%% average recall\n", queries,
              100.0 * recall / queries);
  std::printf("energy: %.1f mJ queries, %.1f mJ sampling, %.1f mJ audits, "
              "%.1f mJ installs (%.2f mJ per answered query all-in)\n",
              session.query_energy_mj(), session.sampling_energy_mj(),
              session.audit_energy_mj(), session.install_energy_mj(),
              session.total_energy_mj() / queries);
  return 0;
}
