// The paper's motivating scenario (Section 1): ornithologists place
// sensor-equipped bird feeders across a forest and periodically ask for
// the k busiest feeders. Territorial birds create "contention zones":
// within a food-rich area, a few arbitrary feeders are heavily used while
// the rest sit idle — strong negative correlation. This example shows why
// local filtering (LP+LF) is the right plan shape for such workloads, and
// what a topology-aware plan without filtering (LP-LF) does instead.
//
// Build & run:  ./build/examples/bird_feeders

#include <cstdio>

#include "src/core/executor.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/data/contention.h"
#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"

using namespace prospector;

int main() {
  constexpr int kTop = 8;
  constexpr double kBudgetMj = 14.0;

  // Six food-rich areas at the forest's edge, the field station (root) in
  // the middle. Each area holds 8 feeders; any one feeder there beats the
  // background traffic with probability 1/6, so each area is expected to
  // contribute ~1/6 of the top k.
  data::ContentionZoneOptions forest;
  forest.num_zones = 6;
  forest.nodes_per_zone = kTop;
  forest.num_background = 36;
  Rng rng(7);
  auto scenario_or = data::BuildContentionScenario(forest, &rng);
  if (!scenario_or.ok()) {
    std::fprintf(stderr, "%s\n", scenario_or.status().ToString().c_str());
    return 1;
  }
  const data::ContentionScenario& forest_net = scenario_or.value();
  const net::Topology& topo = forest_net.topology;
  std::printf("forest: %d feeders (%d in territorial areas), tree height %d\n",
              topo.num_nodes() - 1, forest.num_zones * forest.nodes_per_zone,
              topo.height());

  // A season of observations as samples.
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), kTop);
  for (int s = 0; s < 25; ++s) samples.Add(forest_net.field.Sample(&rng));

  core::PlannerContext ctx;
  ctx.topology = &topo;
  core::PlanRequest req;
  req.k = kTop;
  req.energy_budget_mj = kBudgetMj;

  core::LpFilterPlanner with_filtering;
  core::LpNoFilterPlanner without_filtering;
  auto filter_plan = with_filtering.Plan(ctx, samples, req);
  auto select_plan = without_filtering.Plan(ctx, samples, req);
  if (!filter_plan.ok() || !select_plan.ok()) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }

  // How the two plans spread over the territorial areas.
  auto zone_coverage = [&](const core::QueryPlan& plan) {
    std::vector<int> covered(forest.num_zones, 0);
    for (int i = 1; i < topo.num_nodes(); ++i) {
      const int z = forest_net.zone_of_node[i];
      if (z < 0) continue;
      const bool visited = plan.kind == core::PlanKind::kNodeSelection
                               ? plan.chosen[i] != 0
                               : plan.bandwidth[i] > 0;
      if (visited) ++covered[z];
    }
    return covered;
  };
  std::printf("\narea coverage (feeders visited per area, of %d each):\n",
              forest.nodes_per_zone);
  std::printf("  %-28s", "LP+LF (local filtering):");
  for (int c : zone_coverage(*filter_plan)) std::printf(" %2d", c);
  std::printf("\n  %-28s", "LP-LF (ship-to-root):");
  for (int c : zone_coverage(*select_plan)) std::printf(" %2d", c);
  std::printf("\n");

  // A month of daily top-k queries.
  auto run = [&](const core::QueryPlan& plan) {
    net::NetworkSimulator sim(&topo, ctx.energy);
    double recall = 0.0, energy = 0.0;
    Rng qrng(99);
    for (int day = 0; day < 30; ++day) {
      const std::vector<double> truth = forest_net.field.Sample(&qrng);
      auto r = core::CollectionExecutor::Execute(plan, truth, &sim);
      recall += core::TopKRecall(r, truth, kTop);
      energy += r.total_energy_mj();
      sim.ResetStats();
    }
    return std::pair<double, double>(recall / 30.0, energy / 30.0);
  };
  auto [f_recall, f_energy] = run(*filter_plan);
  auto [s_recall, s_energy] = run(*select_plan);
  std::printf("\n30 days of queries at %.0f mJ budget:\n", kBudgetMj);
  std::printf("  LP+LF: %5.1f%% of the top %d found, %.1f mJ/day\n",
              100 * f_recall, kTop, f_energy);
  std::printf("  LP-LF: %5.1f%% of the top %d found, %.1f mJ/day\n",
              100 * s_recall, kTop, s_energy);
  std::printf("\nLocal filtering taps every area and forwards only each "
              "area's best readings;\nthe ship-to-root plan spends the same "
              "budget dragging whole areas inward.\n");
  return 0;
}
