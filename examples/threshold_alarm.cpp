// Selection queries through the generalized contribution matrix
// (Section 3): a vineyard frost-alarm network. Instead of the k highest
// readings, the operator wants every sensor whose temperature crossed an
// alarm threshold — a subset query whose answer size varies per epoch.
// The same PROSPECTOR machinery plans it: only the contributor function
// changes.
//
// Build & run:  ./build/examples/threshold_alarm

#include <cstdio>

#include "src/core/executor.h"
#include "src/core/generalized.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/sampling/sample_set.h"

using namespace prospector;

int main() {
  constexpr int kNodes = 70;
  constexpr double kAlarmC = 2.0;  // readings BELOW this trigger frost alarms

  Rng rng(77);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 24.0;
  auto topo_or = net::BuildConnectedGeometricNetwork(geo, &rng);
  if (!topo_or.ok()) {
    std::fprintf(stderr, "%s\n", topo_or.status().ToString().c_str());
    return 1;
  }
  const net::Topology& topo = topo_or.value();

  // Night temperatures: low-lying rows (a third of the vineyard) run
  // colder and occasionally dip below the alarm threshold.
  std::vector<double> means(kNodes), sds(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    const bool low_lying = i % 3 == 0 && i != 0;
    means[i] = low_lying ? 3.5 : 6.0;
    sds[i] = low_lying ? 1.2 : 0.8;
  }
  data::GaussianField field(means, sds);

  // The alarm is "value < threshold"; the library's contributor interface
  // is generic, so we negate readings and use a selection above -threshold.
  auto alarm_contributor = [](const std::vector<double>& values) {
    std::vector<int> out;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] < kAlarmC) out.push_back(static_cast<int>(i));
    }
    return out;
  };
  sampling::SampleSet samples(kNodes, alarm_contributor);
  for (int s = 0; s < 30; ++s) samples.Add(field.Sample(&rng));
  std::printf("vineyard: %d sensors; across %d sample nights the alarm set "
              "averaged %.1f sensors (max %d)\n",
              kNodes, samples.num_samples(),
              static_cast<double>(samples.total_ones()) /
                  samples.num_samples(),
              core::SubsetBandwidthCap(samples, 0));

  core::PlannerContext ctx;
  ctx.topology = &topo;
  core::LpFilterPlanner planner;
  auto plan_or = core::PlanSubsetQuery(&planner, ctx, samples,
                                       /*energy_budget_mj=*/10.0,
                                       /*headroom=*/2);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "%s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  const core::QueryPlan& plan = plan_or.value();
  std::printf("plan: visits %d/%d sensors within 10 mJ\n",
              plan.CountVisitedNodes(topo), kNodes);

  // NOTE: local filtering keeps the HIGHEST values, so alarm queries over
  // minima run on negated readings.
  net::NetworkSimulator sim(&topo, ctx.energy);
  double recall = 0.0, energy = 0.0;
  int nights_with_alarms = 0;
  Rng qrng(78);
  for (int night = 0; night < 40; ++night) {
    std::vector<double> truth = field.Sample(&qrng);
    const std::vector<int> alarms = alarm_contributor(truth);
    // Negate so that "top" = coldest.
    std::vector<double> negated(truth.size());
    for (size_t i = 0; i < truth.size(); ++i) negated[i] = -truth[i];
    auto r = core::CollectionExecutor::Execute(plan, negated, &sim);
    if (!alarms.empty()) {
      recall += core::SubsetRecall(r, alarms, kNodes);
      ++nights_with_alarms;
    }
    energy += r.total_energy_mj();
    sim.ResetStats();
  }
  std::printf("40 nights: caught %.1f%% of frost alarms on alarm nights "
              "(%d/40), %.2f mJ/night\n",
              nights_with_alarms ? 100.0 * recall / nights_with_alarms : 100.0,
              nights_with_alarms, energy / 40.0);
  core::QueryPlan full =
      core::QueryPlan::Bandwidth(kNodes, std::vector<int>(kNodes, kNodes));
  full.Normalize(topo);
  std::printf("(a NAIVE full collection would cost ~%.1f mJ/night)\n",
              core::ExpectedCollectionCost(full, sim));
  return 0;
}
