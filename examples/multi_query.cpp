// Multi-query quick-start: register several standing top-k queries on one
// core::QueryEngine and let them share the radio. Each epoch the engine
// merges every query's plan into a single superplan (one trigger wave, one
// set of messages carrying the union of the requested values), executes
// it, and demultiplexes the root arrivals back into per-query answers —
// bit-identical to running each plan alone, but far cheaper: sweeps,
// triggers, and shared edges are paid once instead of once per query.
//
// Compare with examples/standing_query.cpp, the single-query facade
// (TopKQuerySession is now a thin adapter over this engine).
//
// Build & run:  ./build/examples/multi_query

#include <cstdio>

#include "src/core/query_engine.h"
#include "src/data/gaussian_field.h"
#include "src/net/describe.h"
#include "src/net/topology.h"

using namespace prospector;

int main() {
  Rng rng(2026);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 80;
  geo.radio_range = 24.0;
  auto topo_or = net::BuildConnectedGeometricNetwork(geo, &rng);
  if (!topo_or.ok()) {
    std::fprintf(stderr, "%s\n", topo_or.status().ToString().c_str());
    return 1;
  }
  const net::Topology& topo = topo_or.value();
  std::printf("network: %s\n", net::SummarizeTopology(topo).c_str());

  data::GaussianField field =
      data::GaussianField::Random(80, 40.0, 60.0, 1.0, 16.0, &rng);

  core::QueryEngineOptions opts;
  opts.bootstrap_sweeps = 6;
  core::QueryEngine engine(&topo, net::EnergyModel{}, net::FailureModel{},
                           opts, /*seed=*/42);

  // A dashboard wants the ten hottest sensors on a generous budget...
  core::QuerySpec dashboard;
  dashboard.k = 10;
  dashboard.energy_budget_mj = 14.0;
  const int dash_id = engine.AddQuery(dashboard);

  // ...while an alerting rule only needs the top three, cheaply, and is
  // happy with the fast greedy planner.
  core::QuerySpec alarm;
  alarm.k = 3;
  alarm.energy_budget_mj = 5.0;
  alarm.planner = core::PlannerChoice::kGreedy;
  const int alarm_id = engine.AddQuery(alarm);

  for (int epoch = 0; epoch < 60; ++epoch) {
    const std::vector<double> truth = field.Sample(&rng);
    auto tick = engine.Tick(truth);
    if (!tick.ok()) {
      std::fprintf(stderr, "epoch %d: %s\n", epoch,
                   tick.status().ToString().c_str());
      return 1;
    }
    if (tick->kind != core::QueryEngine::EpochKind::kQuery) continue;
    for (const auto& qr : tick->per_query) {
      if (qr.answer.empty()) continue;
      std::printf("epoch %3d, query %d: hottest node %d at %.1f "
                  "(%.2f mJ attributed, recall %.0f%%)\n",
                  epoch, qr.query_id, qr.answer[0].node, qr.answer[0].value,
                  qr.energy_mj, 100.0 * qr.recall);
    }
    if (tick->shared_values > 0) {
      std::printf("          superplan shared %lld values across queries\n",
                  tick->shared_values);
    }
  }

  std::printf(
      "\nper-query ledgers: dashboard %.1f mJ, alarm %.1f mJ "
      "(engine total %.1f mJ)\n",
      engine.total_energy_mj(dash_id), engine.total_energy_mj(alarm_id),
      engine.total_energy_mj());
  return 0;
}
