// Quickstart: plan and run an energy-budgeted approximate top-k query.
//
//   1. build a sensor network (random geometric placement, min-hop tree)
//   2. collect a few full-network samples (exploration sweeps)
//   3. ask PROSPECTOR LP+LF for the best plan within an energy budget
//   4. execute the plan and compare its answer against the ground truth
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/executor.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"

using namespace prospector;

int main() {
  constexpr int kNodes = 60;
  constexpr int kTop = 5;
  constexpr double kBudgetMj = 8.0;

  // 1. The network: 60 motes in a 100x100 m field, root at the center.
  Rng rng(2024);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = 25.0;
  auto topo_or = net::BuildConnectedGeometricNetwork(geo, &rng);
  if (!topo_or.ok()) {
    std::fprintf(stderr, "network: %s\n", topo_or.status().ToString().c_str());
    return 1;
  }
  const net::Topology& topo = topo_or.value();
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  std::printf("network: %d nodes, tree height %d\n", topo.num_nodes(),
              topo.height());

  // The environment: independent per-node Gaussians (unknown to us).
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 40.0, 60.0, 1.0, 16.0, &rng);

  // 2. Sampling: a handful of full sweeps paid at full price.
  sampling::SampleCollector collector;
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(kNodes, kTop);
  double sampling_cost = 0.0;
  for (int s = 0; s < 10; ++s) {
    sampling_cost += collector.CollectSample(field.Sample(&rng), &sim, &samples);
  }
  std::printf("sampling: 10 sweeps cost %.1f mJ\n", sampling_cost);
  sim.ResetStats();

  // 3. Planning: best expected accuracy within the budget.
  core::PlannerContext ctx;
  ctx.topology = &topo;
  core::LpFilterPlanner planner;
  core::PlanRequest request;
  request.k = kTop;
  request.energy_budget_mj = kBudgetMj;
  auto plan_or = planner.Plan(ctx, samples, request);
  if (!plan_or.ok()) {
    std::fprintf(stderr, "planning: %s\n", plan_or.status().ToString().c_str());
    return 1;
  }
  const core::QueryPlan& plan = plan_or.value();
  std::printf("plan: visits %d/%d nodes, expected collection cost %.2f mJ "
              "(budget %.2f)\n",
              plan.CountVisitedNodes(topo), kNodes,
              core::ExpectedCollectionCost(plan, sim), kBudgetMj);
  core::ChargeInstallCost(plan, &sim);
  std::printf("install: %.2f mJ (one-time)\n", sim.stats().total_energy_mj);
  sim.ResetStats();

  // 4. Execute ten query epochs and score them.
  double total_recall = 0.0, total_energy = 0.0;
  for (int q = 0; q < 10; ++q) {
    const std::vector<double> truth = field.Sample(&rng);
    core::ExecutionResult result =
        core::CollectionExecutor::Execute(plan, truth, &sim);
    total_recall += core::TopKRecall(result, truth, kTop);
    total_energy += result.total_energy_mj();
    if (q == 0) {
      std::printf("\nepoch 0 answer (top %d):\n", kTop);
      for (const core::Reading& r : result.answer) {
        std::printf("  node %2d  value %.2f\n", r.node, r.value);
      }
    }
    sim.ResetStats();
  }
  std::printf("\nover 10 epochs: avg recall %.0f%%, avg energy %.2f mJ/query\n",
              10.0 * total_recall, total_energy / 10.0);
  return 0;
}
