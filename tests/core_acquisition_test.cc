// Section 4.4 "Modeling Other Costs": sensor acquisition energy folded
// into planning and execution.

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/core/executor.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/naive.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

net::EnergyModel WithAcquisition(double mj) {
  net::EnergyModel e;
  e.acquisition_mj = mj;
  return e;
}

TEST(AcquisitionTest, ExecutorChargesOnePerParticipant) {
  net::Topology topo = net::BuildChain(4);
  net::NetworkSimulator sim(&topo, WithAcquisition(0.5));
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 2, 2, 1});
  const std::vector<double> truth{1, 2, 3, 4};
  auto r = CollectionExecutor::Execute(p, truth, &sim,
                                       /*include_trigger=*/false);
  EXPECT_EQ(sim.stats().acquisitions, 3);  // nodes 1..3; the root is free
  // The expected-cost model agrees with the charged ledger.
  net::NetworkSimulator fresh(&topo, WithAcquisition(0.5));
  EXPECT_NEAR(ExpectedCollectionCost(p, fresh),
              r.collection_energy_mj, 1e-9);
}

TEST(AcquisitionTest, NodeSelectionChargesOnlyChosen) {
  net::Topology topo = net::BuildStar(5);
  net::NetworkSimulator sim(&topo, WithAcquisition(0.5));
  QueryPlan p = QueryPlan::NodeSelection(2, {0, 1, 0, 1, 0}, topo);
  const std::vector<double> truth{1, 2, 3, 4, 5};
  CollectionExecutor::Execute(p, truth, &sim, /*include_trigger=*/false);
  EXPECT_EQ(sim.stats().acquisitions, 2);
}

TEST(AcquisitionTest, ZeroCostLeavesLedgerUntouched) {
  net::Topology topo = net::BuildChain(3);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = MakeNaiveKPlan(topo, 2);
  CollectionExecutor::Execute(p, {1, 2, 3}, &sim);
  EXPECT_EQ(sim.stats().acquisitions, 0);
}

TEST(AcquisitionTest, PlannersRespectBudgetIncludingAcquisition) {
  Rng rng(19);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 50;
  geo.radio_range = 26.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(50, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(50, 8);
  for (int s = 0; s < 12; ++s) samples.Add(field.Sample(&rng));

  PlannerContext cheap_ctx;
  cheap_ctx.topology = &topo;
  PlannerContext dear_ctx = cheap_ctx;
  dear_ctx.energy.acquisition_mj = 0.4;  // measuring costs 2 messages

  const PlanRequest req{8, 10.0};
  LpFilterPlanner lp_lf;
  LpNoFilterPlanner lp_no_lf;
  GreedyPlanner greedy;
  for (Planner* p : std::initializer_list<Planner*>{&lp_lf, &lp_no_lf,
                                                    &greedy}) {
    auto cheap = p->Plan(cheap_ctx, samples, req);
    auto dear = p->Plan(dear_ctx, samples, req);
    ASSERT_TRUE(cheap.ok());
    ASSERT_TRUE(dear.ok());
    // Costly sensing buys fewer nodes under the same budget.
    EXPECT_LE(dear->CountVisitedNodes(topo), cheap->CountVisitedNodes(topo))
        << p->name();
    // And the budget holds under the acquisition-aware cost model.
    net::NetworkSimulator dear_sim(&topo, dear_ctx.energy);
    EXPECT_LE(ExpectedCollectionCost(*dear, dear_sim),
              req.energy_budget_mj + 1e-6)
        << p->name();
  }
}

TEST(AcquisitionTest, ExactPipelineStillExact) {
  Rng rng(23);
  net::Topology topo = net::BuildRandomTree(20, 3, &rng);
  PlannerContext ctx;
  ctx.topology = &topo;
  ctx.energy.acquisition_mj = 0.3;
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(20, 4);
  std::vector<double> truth(20);
  for (int s = 0; s < 6; ++s) {
    for (double& v : truth) v = rng.Uniform(0.0, 100.0);
    samples.Add(truth);
  }
  for (double& v : truth) v = rng.Uniform(0.0, 100.0);
  net::NetworkSimulator sim(&topo, ctx.energy);
  auto exact = RunProspectorExact(ctx, samples, 4,
                                  ProofPlanner::MinimumCost(ctx) * 1.2,
                                  truth, &sim);
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ(exact->answer, TrueTopK(truth, 4));
  EXPECT_EQ(sim.stats().acquisitions, 19);  // every sensing node, once
}

}  // namespace
}  // namespace core
}  // namespace prospector
