#include "src/testvec/chaos.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/testvec/replay.h"
#include "src/testvec/testvec.h"
#include "src/util/status.h"

namespace prospector {
namespace testvec {
namespace {

// CI shards the soak through these knobs (see .github/workflows/ci.yml,
// chaos-smoke): PROSPECTOR_CHAOS_SEEDS caps the corpus size (the TSan arm
// runs a reduced sweep) and PROSPECTOR_CHAOS_SEED_BASE offsets the range
// so matrix entries cover disjoint schedules.
int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

// Topology size, epoch count, and query mix all rotate with the seed so
// the corpus crosses planner kinds, rebuild pressure, and mid-flight
// admission (the same arm shape bench_chaos reports on).
ChaosConfig SoakConfig(uint64_t seed) {
  ChaosConfig config;
  config.seed = seed;
  config.num_nodes = 16 + static_cast<int>(seed % 9);
  config.epochs = 40;
  config.num_queries = 1 + static_cast<int>(seed % 3);
  return config;
}

// --- The soak: hundreds of seeded schedules, zero violations ------------

TEST(ChaosSoak, SeededSchedulesHoldEveryInvariant) {
  const int seeds = EnvInt("PROSPECTOR_CHAOS_SEEDS", 200);
  const int base = EnvInt("PROSPECTOR_CHAOS_SEED_BASE", 1);
  int64_t duplicates_dropped = 0;
  int64_t stale_fenced = 0;
  int64_t corrupt_rejected = 0;
  int64_t deferred = 0;
  int64_t rebuilds = 0;
  int64_t recall_count = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = static_cast<uint64_t>(base + i);
    const ChaosReport report = RunChaos(SoakConfig(seed));
    if (!report.ok()) {
      // Persist a replayable repro before failing: CI uploads these, and
      // `testvec_replay <artifact>` reproduces the violation locally.
      // The artifact embeds the flight timeline; the standalone dump is
      // the same data for `prospector_obsdump` / eyeballs.
      const std::string artifact =
          "chaos_violation_seed" + std::to_string(seed) + ".json";
      WriteChaosArtifact(artifact, report);
      const std::string flight_dump =
          "chaos_flight_seed" + std::to_string(seed) + ".json";
      WriteFile(flight_dump, FlightEventsToJson(report.flight).Dump(2) + "\n");
      for (const std::string& v : report.violations) {
        ADD_FAILURE() << "seed " << seed << ": " << v
                      << " (replay artifact: " << artifact
                      << ", flight dump: " << flight_dump << ")";
      }
    }
    // I1 asserted structurally on top of RunChaos's own checks: a fenced
    // run must never fold stale or duplicate traffic into an answer.
    EXPECT_EQ(report.guard.stale_folded, 0) << "seed " << seed;
    EXPECT_EQ(report.guard.duplicates_folded, 0) << "seed " << seed;
    duplicates_dropped += report.guard.duplicates_dropped;
    stale_fenced += report.guard.stale_fenced;
    corrupt_rejected += report.guard.corrupt_rejected;
    deferred += report.guard.deferred;
    rebuilds += report.rebuilds;
    recall_count += report.recall_count;
  }
  // Non-vacuousness: across the corpus every adversarial behavior has to
  // actually fire, engines must rebuild, and answers must be graded —
  // otherwise a regression that silently disabled the adversary (or the
  // grader) would sail through the invariants above.
  EXPECT_GT(duplicates_dropped, 0);
  EXPECT_GT(stale_fenced, 0);
  EXPECT_GT(corrupt_rejected, 0);
  EXPECT_GT(deferred, 0);
  EXPECT_GT(rebuilds, 0);
  EXPECT_GT(recall_count, 0);
}

// --- I5 + I6: the harness can tell a broken protocol from a sound one --

TEST(ChaosSoak, NaiveProtocolIsTamperEvidentAndRecallNoBetter) {
  const int seeds = EnvInt("PROSPECTOR_CHAOS_ARM_SEEDS", 24);
  int64_t naive_folds = 0;
  double fenced_recall = 0.0;
  double naive_recall = 0.0;
  int64_t fenced_graded = 0;
  int64_t naive_graded = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    ChaosConfig fenced_config = SoakConfig(static_cast<uint64_t>(seed));
    ChaosConfig naive_config = fenced_config;
    naive_config.naive = true;
    const ChaosReport fenced = RunChaos(fenced_config);
    const ChaosReport naive = RunChaos(naive_config);
    EXPECT_TRUE(fenced.ok()) << "seed " << seed << ": "
                             << (fenced.violations.empty()
                                     ? ""
                                     : fenced.violations.front());
    EXPECT_TRUE(naive.ok()) << "seed " << seed << ": "
                            << (naive.violations.empty()
                                    ? ""
                                    : naive.violations.front());
    naive_folds += naive.guard.stale_folded + naive.guard.duplicates_folded;
    fenced_recall += fenced.recall_sum;
    fenced_graded += fenced.recall_count;
    naive_recall += naive.recall_sum;
    naive_graded += naive.recall_count;
  }
  // I6: if breaking the fence were invisible, the soak would prove
  // nothing — the naive arm must show stale/duplicate folds.
  EXPECT_GT(naive_folds, 0)
      << "the deliberately-broken protocol left no trace; the soak's "
         "tamper-detection signal is gone";
  // I5: fencing must not cost answer quality relative to the broken
  // protocol on the same schedules.
  ASSERT_GT(fenced_graded, 0);
  ASSERT_GT(naive_graded, 0);
  EXPECT_GE(fenced_recall / static_cast<double>(fenced_graded),
            naive_recall / static_cast<double>(naive_graded));
}

TEST(ChaosSoak, BrokenFencingFailsTheStructuralInvariant) {
  // The acceptance check for the harness itself: running the soak's I1
  // assertion against the deliberately-broken protocol must fail. A
  // single seed suffices — the naive arm folds on every schedule dense
  // enough to duplicate or delay at least one guarded message.
  ChaosConfig config = SoakConfig(2);
  config.naive = true;
  const ChaosReport report = RunChaos(config);
  EXPECT_GT(report.guard.stale_folded + report.guard.duplicates_folded, 0)
      << "I1 would pass under the broken protocol";
}

// --- I7: duplication is answer-invariant under fencing ------------------

TEST(ChaosSoak, DuplicationIsAnswerInvariantUnderFencing) {
  const int seeds = EnvInt("PROSPECTOR_CHAOS_DUP_SEEDS", 12);
  for (int seed = 1; seed <= seeds; ++seed) {
    ChaosConfig with_dup = SoakConfig(static_cast<uint64_t>(seed));
    ChaosConfig no_dup = with_dup;
    no_dup.strip_duplicates = true;
    const ChaosReport a = RunChaos(with_dup);
    const ChaosReport b = RunChaos(no_dup);
    EXPECT_TRUE(b.ok()) << "seed " << seed;
    ASSERT_EQ(a.ticks, b.ticks) << "seed " << seed;
    ASSERT_EQ(a.answers.size(), b.answers.size()) << "seed " << seed;
    // The adversary's RNG draws stay aligned when duplication rates are
    // zeroed (the simulator consumes all three draws regardless), so a
    // fenced engine must answer bit-identically with and without
    // duplicate copies on the air.
    for (size_t t = 0; t < a.answers.size(); ++t) {
      EXPECT_TRUE(a.answers[t] == b.answers[t])
          << "seed " << seed << ": answers diverge at tick " << t
          << " once duplication is stripped — a duplicate leaked into "
             "a fold";
    }
  }
}

// --- Violating runs persist as replayable artifacts ---------------------

TEST(ChaosArtifactTest, ArtifactRoundTripsThroughTheReplayHarness) {
  const ChaosReport report = RunChaos(SoakConfig(3));
  ASSERT_TRUE(report.ok());
  const std::string path = ::testing::TempDir() + "chaos_artifact.json";
  ASSERT_TRUE(WriteChaosArtifact(path, report).ok());
  ReplayStats stats;
  const Status st = ReplayVectorFile(path, &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.cases, 1);
}

#ifndef PROSPECTOR_OBS_DISABLED
TEST(ChaosArtifactTest, FlightTimelineIsReplayDeterministic) {
  // The acceptance contract for flight dumps: the same config replayed in
  // the same process yields a byte-identical merged timeline (serial
  // recording, seq counters reset by RunChaos, no wall-clock payloads).
  const ChaosConfig config = SoakConfig(5);
  const ChaosReport first = RunChaos(config);
  const ChaosReport second = RunChaos(config);
  ASSERT_FALSE(first.flight.empty());
  EXPECT_EQ(FlightEventsToJson(first.flight).Dump(-1),
            FlightEventsToJson(second.flight).Dump(-1));
}

TEST(ChaosArtifactTest, TamperedFlightTimelineFailsReplay) {
  const ChaosReport report = RunChaos(SoakConfig(6));
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.flight.empty());
  const std::string path = ::testing::TempDir() + "chaos_flight_tampered.json";
  ASSERT_TRUE(WriteChaosArtifact(path, report).ok());
  auto doc = LoadVectorFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // Drop the last flight event: the recorded timeline no longer matches
  // what the replay regenerates, so the artifact must be rejected.
  Json& cases = *doc->Find("cases");
  Json* flight = cases[0].Find("flight_recorder");
  ASSERT_NE(flight, nullptr);
  Json truncated = Json::Array();
  const Json& events = flight->at("events");
  ASSERT_GT(events.size(), 1u);
  for (size_t i = 0; i + 1 < events.size(); ++i) {
    truncated.Append(events[i]);
  }
  flight->Set("events", std::move(truncated));
  ASSERT_TRUE(WriteFile(path, doc->Dump(2) + "\n").ok());
  const Status st = ReplayVectorFile(path, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("flight"), std::string::npos) << st.ToString();
}
#endif  // PROSPECTOR_OBS_DISABLED

TEST(ChaosArtifactTest, TamperedScheduleFailsReplay) {
  const ChaosReport report = RunChaos(SoakConfig(4));
  ASSERT_TRUE(report.ok());
  const std::string path = ::testing::TempDir() + "chaos_tampered.json";
  ASSERT_TRUE(WriteChaosArtifact(path, report).ok());
  auto doc = LoadVectorFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // Shift the first scripted event one epoch later: the stored schedule
  // no longer matches what the config regenerates, so the artifact no
  // longer reproduces the run it claims to describe.
  Json& cases = *doc->Find("cases");
  Json& schedule = *cases[0].Find("schedule");
  ASSERT_TRUE(schedule.is_array());
  ASSERT_GT(schedule.size(), 0u);
  Json& event = schedule[0];
  event.Set("epoch", event.at("epoch").AsInt() + 1);
  ASSERT_TRUE(WriteFile(path, doc->Dump(2) + "\n").ok());
  const Status st = ReplayVectorFile(path, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("drifted"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace testvec
}  // namespace prospector
