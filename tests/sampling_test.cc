#include <gtest/gtest.h>

#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace sampling {
namespace {

TEST(SampleSetTest, TopKOnesAndColumnSums) {
  SampleSet s = SampleSet::ForTopK(5, 2);
  s.Add({1, 9, 3, 7, 5});
  s.Add({1, 9, 8, 2, 0});
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{1, 3}));
  EXPECT_EQ(s.ones(1), (std::vector<int>{1, 2}));
  EXPECT_TRUE(s.Contributes(0, 3));
  EXPECT_FALSE(s.Contributes(1, 3));
  EXPECT_EQ(s.column_sums(), (std::vector<int>{0, 2, 1, 1, 0}));
  EXPECT_EQ(s.total_ones(), 4);
}

TEST(SampleSetTest, TopKTieBreaksTowardLowerId) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({5.0, 5.0, 1.0});
  EXPECT_EQ(s.ones(0), (std::vector<int>{0}));
}

TEST(SampleSetTest, WindowEvictsOldestAndFixesSums) {
  SampleSet s = SampleSet::ForTopK(3, 1, /*window=*/2);
  s.Add({9, 1, 1});  // top: node 0
  s.Add({1, 9, 1});  // top: node 1
  s.Add({1, 1, 9});  // top: node 2; evicts the first
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.column_sums(), (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(s.total_ones(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{1}));  // oldest kept is the 2nd add
}

TEST(SampleSetTest, SelectionContributor) {
  SampleSet s = SampleSet::ForSelection(4, 5.0);
  s.Add({6, 2, 5.5, 4});
  EXPECT_EQ(s.ones(0), (std::vector<int>{0, 2}));
}

TEST(SampleSetTest, QuantileContributor) {
  SampleSet s = SampleSet::ForQuantile(5, 0.5);
  s.Add({10, 30, 20, 50, 40});
  // Median of {10,20,30,40,50} is 30 -> node 1.
  EXPECT_EQ(s.ones(0), (std::vector<int>{1}));
}

TEST(SampleSetTest, OutOfRangeQuantileClampsToEndpoints) {
  // A negative q used to wrap through size_t and pick the maximum.
  SampleSet lo = SampleSet::ForQuantile(5, -0.5);
  lo.Add({10, 30, 20, 50, 40});
  EXPECT_EQ(lo.ones(0), (std::vector<int>{0}));  // minimum -> node 0
  SampleSet hi = SampleSet::ForQuantile(5, 1.75);
  hi.Add({10, 30, 20, 50, 40});
  EXPECT_EQ(hi.ones(0), (std::vector<int>{3}));  // maximum -> node 3
}

TEST(SampleSetTest, IsSmallerUsesSampleValues) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({5, 3, 8});
  EXPECT_TRUE(s.IsSmaller(0, 1, 0));
  EXPECT_FALSE(s.IsSmaller(0, 2, 0));
}

TEST(SampleSetTest, AddTraceLoadsEveryEpoch) {
  data::Trace t(3);
  ASSERT_TRUE(t.AddEpoch({1, 2, 3}).ok());
  ASSERT_TRUE(t.AddEpoch({3, 2, 1}).ok());
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.AddTrace(t);
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{2}));
  EXPECT_EQ(s.ones(1), (std::vector<int>{0}));
}

TEST(SampleSetTest, RecentKeepsOnlyTheTail) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({9, 1, 1});
  s.Add({1, 9, 1});
  s.Add({1, 1, 9});
  SampleSet tail = s.Recent(2);
  EXPECT_EQ(tail.num_samples(), 2);
  EXPECT_EQ(tail.ones(0), (std::vector<int>{1}));
  EXPECT_EQ(tail.ones(1), (std::vector<int>{2}));
  EXPECT_EQ(tail.column_sums(), (std::vector<int>{0, 1, 1}));
  // Asking for more than exists returns everything.
  EXPECT_EQ(s.Recent(10).num_samples(), 3);
}

TEST(SampleSetTest, RemappedDropsRemovedNodesAndRecomputesOnes) {
  SampleSet s = SampleSet::ForTopK(4, 1);
  s.Add({1, 9, 5, 2});  // top: node 1
  // Remove node 1; nodes 0,2,3 -> new ids 0,1,2.
  SampleSet r = s.Remapped({0, -1, 1, 2}, 3);
  ASSERT_EQ(r.num_samples(), 1);
  EXPECT_EQ(r.ones(0), (std::vector<int>{1}));  // old node 2 is now the top
  EXPECT_DOUBLE_EQ(r.value(0, 2), 2.0);
}

TEST(SampleSetTest, VersionBumpsOnEveryAddAndStampsStayStable) {
  SampleSet s = SampleSet::ForTopK(4, 2, /*window=*/3);
  const uint64_t v0 = s.version();
  EXPECT_EQ(s.id(), v0);  // a fresh set's lineage is its creation stamp

  s.Add({1, 2, 3, 4});
  const uint64_t v1 = s.version();
  EXPECT_GT(v1, v0);
  s.Add({4, 3, 2, 1});
  EXPECT_GT(s.version(), v1);

  // Stamps identify samples across window slides: indices shift, stamps
  // follow their row.
  const uint64_t stamp_second = s.sample_stamp(1);
  s.Add({5, 6, 7, 8});
  s.Add({8, 7, 6, 5});  // evicts the first row
  EXPECT_EQ(s.num_samples(), 3);
  EXPECT_EQ(s.sample_stamp(0), stamp_second);
}

TEST(SampleSetTest, DeltaSinceReportsPureAppendsAsValid) {
  SampleSet s = SampleSet::ForTopK(4, 2, /*window=*/10);
  s.Add({1, 2, 3, 4});
  const uint64_t v = s.version();
  s.Add({2, 3, 4, 5});
  s.Add({3, 4, 5, 6});

  const SampleSetDelta d = s.DeltaSince(v);
  EXPECT_TRUE(d.valid);
  EXPECT_EQ(d.added, 2);
  EXPECT_EQ(d.evicted, 0);

  // The current version is an empty — still valid — delta.
  const SampleSetDelta none = s.DeltaSince(s.version());
  EXPECT_TRUE(none.valid);
  EXPECT_EQ(none.added, 0);
}

TEST(SampleSetTest, DeltaSinceInvalidAfterEvictionOrRemap) {
  SampleSet s = SampleSet::ForTopK(3, 1, /*window=*/2);
  s.Add({1, 2, 3});
  const uint64_t v = s.version();
  s.Add({2, 3, 1});
  s.Add({3, 1, 2});  // evicts the row v stamped
  const SampleSetDelta d = s.DeltaSince(v);
  EXPECT_FALSE(d.valid);
  EXPECT_EQ(d.evicted, 1);

  // A remap rewrites every row: the new lineage rejects old versions.
  SampleSet remapped = s.Remapped({0, 1, -1}, 2);
  EXPECT_NE(remapped.id(), s.id());
  EXPECT_FALSE(remapped.DeltaSince(v).valid);
  EXPECT_FALSE(remapped.DeltaSince(s.version()).valid);
}

TEST(SampleSetTest, RemappedQuantileRecomputesContributorsAfterEviction) {
  // Median contributor over 5 nodes, window of 2: eviction and remap must
  // compose — contribution rows are recomputed on the surviving nodes.
  SampleSet s = SampleSet::ForQuantile(5, 0.5, /*window=*/2);
  s.Add({10, 20, 30, 40, 50});  // median: node 2
  s.Add({50, 40, 30, 20, 10});  // median: node 2
  s.Add({1, 2, 3, 4, 5});       // median: node 2; evicts the first row
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{2}));
  EXPECT_EQ(s.ones(1), (std::vector<int>{2}));

  // Drop node 2 (the median holder). The remapped window re-runs the
  // contributor on 4-node rows, where the median shifts to a survivor.
  SampleSet r = s.Remapped({0, 1, -1, 2, 3}, 4);
  EXPECT_EQ(r.num_samples(), 2);
  EXPECT_EQ(r.num_nodes(), 4);
  // Nearest-rank: round(0.5 * 3) = rank 2, the third-smallest of four.
  // Row 0 is now {50,40,20,10}: third-smallest is 40, new node 1 (old
  // node 1). Row 1 is {1,2,4,5}: third-smallest is 4, new node 2 (old
  // node 3).
  EXPECT_EQ(r.ones(0), (std::vector<int>{1}));
  EXPECT_EQ(r.ones(1), (std::vector<int>{2}));
  const std::vector<int> expected_sums{0, 1, 1, 0};
  EXPECT_EQ(r.column_sums(), expected_sums);

  // Window behavior survives the remap: one more Add still evicts.
  r.Add({9, 9, 9, 9});
  EXPECT_EQ(r.num_samples(), 2);
}

TEST(SampleCollectorTest, SweepCostMatchesChargedCost) {
  Rng rng(4);
  net::Topology topo = net::BuildRandomTree(20, 3, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  SampleCollector collector(0.1);
  SampleSet samples = SampleSet::ForTopK(20, 5);

  const double predicted = collector.SweepCost(sim);
  std::vector<double> truth(20, 1.0);
  const double charged = collector.CollectSample(truth, &sim, &samples);
  EXPECT_NEAR(predicted, charged, 1e-9);
  EXPECT_EQ(samples.num_samples(), 1);
  // Every edge carried its subtree: total values = sum of subtree sizes.
  int64_t expect_values = 0;
  for (int u = 1; u < 20; ++u) expect_values += topo.subtree_size(u);
  EXPECT_EQ(sim.stats().values_transmitted, expect_values);
}

TEST(SampleCollectorTest, ExplorationProbabilityRoughlyHolds) {
  SampleCollector collector(0.25);
  Rng rng(11);
  int explored = 0;
  for (int i = 0; i < 20000; ++i) {
    if (collector.ShouldExplore(&rng)) ++explored;
  }
  EXPECT_NEAR(explored / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace sampling
}  // namespace prospector
