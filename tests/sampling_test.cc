#include <gtest/gtest.h>

#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/sampling/collector.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace sampling {
namespace {

TEST(SampleSetTest, TopKOnesAndColumnSums) {
  SampleSet s = SampleSet::ForTopK(5, 2);
  s.Add({1, 9, 3, 7, 5});
  s.Add({1, 9, 8, 2, 0});
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{1, 3}));
  EXPECT_EQ(s.ones(1), (std::vector<int>{1, 2}));
  EXPECT_TRUE(s.Contributes(0, 3));
  EXPECT_FALSE(s.Contributes(1, 3));
  EXPECT_EQ(s.column_sums(), (std::vector<int>{0, 2, 1, 1, 0}));
  EXPECT_EQ(s.total_ones(), 4);
}

TEST(SampleSetTest, TopKTieBreaksTowardLowerId) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({5.0, 5.0, 1.0});
  EXPECT_EQ(s.ones(0), (std::vector<int>{0}));
}

TEST(SampleSetTest, WindowEvictsOldestAndFixesSums) {
  SampleSet s = SampleSet::ForTopK(3, 1, /*window=*/2);
  s.Add({9, 1, 1});  // top: node 0
  s.Add({1, 9, 1});  // top: node 1
  s.Add({1, 1, 9});  // top: node 2; evicts the first
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.column_sums(), (std::vector<int>{0, 1, 1}));
  EXPECT_EQ(s.total_ones(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{1}));  // oldest kept is the 2nd add
}

TEST(SampleSetTest, SelectionContributor) {
  SampleSet s = SampleSet::ForSelection(4, 5.0);
  s.Add({6, 2, 5.5, 4});
  EXPECT_EQ(s.ones(0), (std::vector<int>{0, 2}));
}

TEST(SampleSetTest, QuantileContributor) {
  SampleSet s = SampleSet::ForQuantile(5, 0.5);
  s.Add({10, 30, 20, 50, 40});
  // Median of {10,20,30,40,50} is 30 -> node 1.
  EXPECT_EQ(s.ones(0), (std::vector<int>{1}));
}

TEST(SampleSetTest, OutOfRangeQuantileClampsToEndpoints) {
  // A negative q used to wrap through size_t and pick the maximum.
  SampleSet lo = SampleSet::ForQuantile(5, -0.5);
  lo.Add({10, 30, 20, 50, 40});
  EXPECT_EQ(lo.ones(0), (std::vector<int>{0}));  // minimum -> node 0
  SampleSet hi = SampleSet::ForQuantile(5, 1.75);
  hi.Add({10, 30, 20, 50, 40});
  EXPECT_EQ(hi.ones(0), (std::vector<int>{3}));  // maximum -> node 3
}

TEST(SampleSetTest, IsSmallerUsesSampleValues) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({5, 3, 8});
  EXPECT_TRUE(s.IsSmaller(0, 1, 0));
  EXPECT_FALSE(s.IsSmaller(0, 2, 0));
}

TEST(SampleSetTest, AddTraceLoadsEveryEpoch) {
  data::Trace t(3);
  ASSERT_TRUE(t.AddEpoch({1, 2, 3}).ok());
  ASSERT_TRUE(t.AddEpoch({3, 2, 1}).ok());
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.AddTrace(t);
  EXPECT_EQ(s.num_samples(), 2);
  EXPECT_EQ(s.ones(0), (std::vector<int>{2}));
  EXPECT_EQ(s.ones(1), (std::vector<int>{0}));
}

TEST(SampleSetTest, RecentKeepsOnlyTheTail) {
  SampleSet s = SampleSet::ForTopK(3, 1);
  s.Add({9, 1, 1});
  s.Add({1, 9, 1});
  s.Add({1, 1, 9});
  SampleSet tail = s.Recent(2);
  EXPECT_EQ(tail.num_samples(), 2);
  EXPECT_EQ(tail.ones(0), (std::vector<int>{1}));
  EXPECT_EQ(tail.ones(1), (std::vector<int>{2}));
  EXPECT_EQ(tail.column_sums(), (std::vector<int>{0, 1, 1}));
  // Asking for more than exists returns everything.
  EXPECT_EQ(s.Recent(10).num_samples(), 3);
}

TEST(SampleSetTest, RemappedDropsRemovedNodesAndRecomputesOnes) {
  SampleSet s = SampleSet::ForTopK(4, 1);
  s.Add({1, 9, 5, 2});  // top: node 1
  // Remove node 1; nodes 0,2,3 -> new ids 0,1,2.
  SampleSet r = s.Remapped({0, -1, 1, 2}, 3);
  ASSERT_EQ(r.num_samples(), 1);
  EXPECT_EQ(r.ones(0), (std::vector<int>{1}));  // old node 2 is now the top
  EXPECT_DOUBLE_EQ(r.value(0, 2), 2.0);
}

TEST(SampleCollectorTest, SweepCostMatchesChargedCost) {
  Rng rng(4);
  net::Topology topo = net::BuildRandomTree(20, 3, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  SampleCollector collector(0.1);
  SampleSet samples = SampleSet::ForTopK(20, 5);

  const double predicted = collector.SweepCost(sim);
  std::vector<double> truth(20, 1.0);
  const double charged = collector.CollectSample(truth, &sim, &samples);
  EXPECT_NEAR(predicted, charged, 1e-9);
  EXPECT_EQ(samples.num_samples(), 1);
  // Every edge carried its subtree: total values = sum of subtree sizes.
  int64_t expect_values = 0;
  for (int u = 1; u < 20; ++u) expect_values += topo.subtree_size(u);
  EXPECT_EQ(sim.stats().values_transmitted, expect_values);
}

TEST(SampleCollectorTest, ExplorationProbabilityRoughlyHolds) {
  SampleCollector collector(0.25);
  Rng rng(11);
  int explored = 0;
  for (int i = 0; i < 20000; ++i) {
    if (collector.ShouldExplore(&rng)) ++explored;
  }
  EXPECT_NEAR(explored / 20000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace sampling
}  // namespace prospector
