#include "src/lp/simplex.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/lp/model.h"
#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

Solution MustSolve(const Model& model, SimplexOptions opts = {}) {
  SimplexSolver solver(opts);
  auto res = solver.Solve(model);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value();
}

TEST(SimplexTest, TrivialUnconstrainedBounds) {
  // min x, 2 <= x <= 5  -> x = 2.
  Model m;
  int x = m.AddVariable(2.0, 5.0, 1.0, "x");
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, MaximizeAtUpperBound) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, 7.0, 3.0, "x");
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 7.0, 1e-9);
  EXPECT_NEAR(s.objective, 21.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Known optimum (Hillier-Lieberman): x=2, y=6, obj=36.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 3.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 5.0, "y");
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}});
  m.AddRow(RowType::kLessEqual, 12.0, {{y, 2.0}});
  m.AddRow(RowType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.values[x], 2.0, 1e-8);
  EXPECT_NEAR(s.values[y], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityRowRequiresPhase1) {
  // min x + y s.t. x + y = 10, x <= 4  ->  x=4, y=6 is NOT optimal;
  // optimum is any point with x+y=10; objective 10 everywhere on the line.
  Model m;
  int x = m.AddVariable(0.0, 4.0, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-8);
  EXPECT_NEAR(s.values[x] + s.values[y], 10.0, 1e-8);
  EXPECT_GT(s.stats.total_iterations(), 0);
  EXPECT_GT(s.stats.artificials, 0);
  EXPECT_EQ(s.stats.rows, 1);
  EXPECT_EQ(s.stats.columns, 2);
}

TEST(SimplexTest, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 10, x - y >= -5, x,y >= 0.
  // Optimum: push y up to use cheaper... 2 < 3 so prefer x: y=0, x=10 ->
  // check x - y = 10 >= -5 ok. obj = 20.
  Model m;
  int x = m.AddVariable(0.0, kInfinity, 2.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 3.0, "y");
  m.AddRow(RowType::kGreaterEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  m.AddRow(RowType::kGreaterEqual, -5.0, {{x, 1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-8);
  EXPECT_NEAR(s.values[x], 10.0, 1e-8);
  EXPECT_NEAR(s.values[y], 0.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  int x = m.AddVariable(0.0, 1.0, 1.0, "x");
  m.AddRow(RowType::kGreaterEqual, 5.0, {{x, 1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleConflictingRows) {
  Model m;
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.AddRow(RowType::kGreaterEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 0.0, "y");
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -3 expressed via a row (x itself free) -> x = -3.
  Model m;
  int x = m.AddVariable(-kInfinity, kInfinity, 1.0, "x");
  m.AddRow(RowType::kGreaterEqual, -3.0, {{x, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -3.0, 1e-8);
}

TEST(SimplexTest, FixedVariableContributes) {
  // x fixed at 2; min y s.t. y >= 5 - x  -> y = 3.
  Model m;
  int x = m.AddVariable(2.0, 2.0, 0.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[y], 3.0, 1e-8);
}

TEST(SimplexTest, NegativeRhsLessEqual) {
  // min x + y s.t. -x - y <= -4 (i.e. x + y >= 4), x,y in [0, 10].
  Model m;
  int x = m.AddVariable(0.0, 10.0, 1.0, "x");
  int y = m.AddVariable(0.0, 10.0, 1.0, "y");
  m.AddRow(RowType::kLessEqual, -4.0, {{x, -1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(SimplexTest, DuplicateTermsAreSummed) {
  // max x s.t. 0.5x + 0.5x <= 3  -> x = 3.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  m.AddRow(RowType::kLessEqual, 3.0, {{x, 0.5}, {x, 0.5}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-8);
}

// Beale's classic cycling example: every basic feasible solution of the
// first two rows is degenerate, and with Dantzig pricing the simplex
// method cycles forever. Optimum is -0.05 (minimizing).
Model BealeCyclingModel() {
  Model m;
  int x1 = m.AddVariable(0.0, kInfinity, -0.75, "x1");
  int x2 = m.AddVariable(0.0, kInfinity, 150.0, "x2");
  int x3 = m.AddVariable(0.0, kInfinity, -0.02, "x3");
  int x4 = m.AddVariable(0.0, kInfinity, 6.0, "x4");
  m.AddRow(RowType::kLessEqual, 0.0,
           {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.AddRow(RowType::kLessEqual, 0.0,
           {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  m.AddRow(RowType::kLessEqual, 1.0, {{x3, 1.0}});
  return m;
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // The Bland fallback must guarantee termination (default kAuto dispatch).
  Solution s = MustSolve(BealeCyclingModel());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SimplexTest, DegenerateCyclingModelTerminatesUnderBothEngines) {
  // Both engines, forced explicitly (the model is small enough that kAuto
  // would send it to the dense tableau), with a stall threshold low enough
  // that the Bland fallback engages within a few degenerate pivots, and a
  // refactorization interval small enough that the revised engine rebuilds
  // its eta file mid-solve. Both must terminate at the same optimum.
  const Model m = BealeCyclingModel();
  SimplexOptions dense_opts;
  dense_opts.algorithm = SimplexAlgorithm::kDense;
  dense_opts.stall_threshold = 2;
  SimplexOptions revised_opts;
  revised_opts.algorithm = SimplexAlgorithm::kRevised;
  revised_opts.stall_threshold = 2;
  revised_opts.refactor_interval = 3;
  Solution dense = MustSolve(m, dense_opts);
  Solution revised = MustSolve(m, revised_opts);
  ASSERT_EQ(dense.status, SolveStatus::kOptimal);
  ASSERT_EQ(revised.status, SolveStatus::kOptimal);
  EXPECT_NEAR(dense.objective, -0.05, 1e-8);
  EXPECT_NEAR(revised.objective, dense.objective, 1e-8);
}

TEST(SimplexTest, RevisedCrossCheckMatchesDenseOnRandomLps) {
  // cross_check makes every revised solve also run the dense oracle and
  // abort on divergence — a successful Solve() IS the agreement check.
  // The objectives are additionally compared here, and in a
  // -DPROSPECTOR_LP_CROSSCHECK=ON build the returned solution must be the
  // dense oracle's, bit for bit.
  Rng rng(0x5ca1e);
  for (int trial = 0; trial < 12; ++trial) {
    Model m;
    m.SetSense(Sense::kMaximize);
    const int nvars = 12;
    std::vector<int> xs;
    for (int v = 0; v < nvars; ++v) {
      xs.push_back(
          m.AddVariable(0.0, rng.Uniform(0.5, 2.0), rng.Uniform(-1.0, 1.0)));
    }
    for (int r = 0; r < 8; ++r) {
      std::vector<Term> terms;
      for (int v = 0; v < nvars; ++v) {
        if (rng.NextDouble() < 0.4) terms.push_back({xs[v], rng.Uniform(-1.0, 2.0)});
      }
      // Nonnegative rhs keeps x = 0 feasible: every trial is kOptimal.
      m.AddRow(RowType::kLessEqual, rng.Uniform(0.5, 3.0), terms);
    }
    SimplexOptions dense_opts;
    dense_opts.algorithm = SimplexAlgorithm::kDense;
    SimplexOptions checked_opts;
    checked_opts.algorithm = SimplexAlgorithm::kRevised;
    checked_opts.cross_check = true;
    Solution dense = MustSolve(m, dense_opts);
    Solution checked = MustSolve(m, checked_opts);
    ASSERT_EQ(checked.status, dense.status) << "trial=" << trial;
    ASSERT_EQ(dense.status, SolveStatus::kOptimal) << "trial=" << trial;
    EXPECT_NEAR(checked.objective, dense.objective,
                1e-7 * (1.0 + std::fabs(dense.objective)))
        << "trial=" << trial;
#ifdef PROSPECTOR_LP_CROSSCHECK
    ASSERT_EQ(checked.values.size(), dense.values.size());
    for (size_t i = 0; i < dense.values.size(); ++i) {
      EXPECT_EQ(checked.values[i], dense.values[i])
          << "trial=" << trial << " var=" << i;
    }
#endif
  }
}

TEST(SimplexTest, ValidateRejectsBadVariableIndex) {
  Model m;
  m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowType::kLessEqual, 1.0, {{7, 1.0}});
  SimplexSolver solver;
  auto res = solver.Solve(m);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, ValidateRejectsInvertedBounds) {
  Model m;
  m.AddVariable(2.0, 1.0, 1.0);
  SimplexSolver solver;
  auto res = solver.Solve(m);
  EXPECT_FALSE(res.ok());
}

TEST(SimplexTest, SolutionIsFeasibleAndResidualSmall) {
  Model m;
  m.SetSense(Sense::kMaximize);
  Rng rng(7);
  std::vector<int> vars;
  for (int i = 0; i < 20; ++i) {
    vars.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(0.0, 1.0)));
  }
  for (int r = 0; r < 15; ++r) {
    std::vector<Term> terms;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.4)) terms.push_back({vars[i], rng.Uniform(0.1, 2.0)});
    }
    if (!terms.empty()) {
      m.AddRow(RowType::kLessEqual, rng.Uniform(1.0, 5.0), terms);
    }
  }
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
  EXPECT_LT(s.primal_residual, 1e-6);
}

// -------- Property sweep: random knapsack-like LPs vs brute force. --------
//
// The LP relaxation of a 0/1 knapsack has a well-known closed form: sort by
// density, take greedily, split the last item fractionally. We compare the
// simplex optimum against that closed form on random instances.
class KnapsackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackPropertyTest, MatchesGreedyFractionalOptimum) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.UniformInt(uint64_t{12}));
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.Uniform(1.0, 10.0);
    weight[i] = rng.Uniform(1.0, 10.0);
  }
  double cap = rng.Uniform(5.0, 30.0);

  Model m;
  m.SetSense(Sense::kMaximize);
  std::vector<Term> row;
  for (int i = 0; i < n; ++i) {
    int v = m.AddBinaryRelaxed(value[i]);
    row.push_back({v, weight[i]});
  }
  m.AddRow(RowType::kLessEqual, cap, row);
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Closed-form fractional knapsack.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return value[a] / weight[a] > value[b] / weight[b];
  });
  double rem = cap, expect = 0.0;
  for (int i : order) {
    if (weight[i] <= rem) {
      expect += value[i];
      rem -= weight[i];
    } else {
      expect += value[i] * rem / weight[i];
      rem = 0.0;
      break;
    }
  }
  EXPECT_NEAR(s.objective, expect, 1e-6);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Range(1, 40));

// -------- Property sweep: random small LPs, verify optimality via vertex
// enumeration on 2-variable instances. --------
class TwoVarVertexTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoVarVertexTest, MatchesVertexEnumeration) {
  Rng rng(1000 + GetParam());
  Model m;
  m.SetSense(Sense::kMaximize);
  double cx = rng.Uniform(-2.0, 2.0), cy = rng.Uniform(-2.0, 2.0);
  int x = m.AddVariable(0.0, 10.0, cx);
  int y = m.AddVariable(0.0, 10.0, cy);
  struct Line { double a, b, c; };  // a x + b y <= c
  std::vector<Line> lines;
  const int nrows = 2 + static_cast<int>(rng.UniformInt(uint64_t{4}));
  for (int r = 0; r < nrows; ++r) {
    Line ln{rng.Uniform(-1.0, 2.0), rng.Uniform(-1.0, 2.0),
            rng.Uniform(1.0, 12.0)};
    lines.push_back(ln);
    m.AddRow(RowType::kLessEqual, ln.c, {{x, ln.a}, {y, ln.b}});
  }
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Enumerate all candidate vertices: intersections of every constraint
  // pair (including the box bounds), keep feasible ones, take best.
  lines.push_back({1, 0, 10});
  lines.push_back({-1, 0, 0});
  lines.push_back({0, 1, 10});
  lines.push_back({0, -1, 0});
  double best = -1e100;
  auto feasible = [&](double px, double py) {
    for (const Line& ln : lines) {
      if (ln.a * px + ln.b * py > ln.c + 1e-7) return false;
    }
    return true;
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-9) continue;
      const double px = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double py = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (feasible(px, py)) best = std::max(best, cx * px + cy * py);
    }
  }
  ASSERT_GT(best, -1e99);  // box bounds guarantee a vertex exists
  EXPECT_NEAR(s.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarVertexTest, ::testing::Range(1, 40));

// -------- Warm starts: re-solving a drifted model from the previous
// optimal basis must reach the cold objective. --------

// A random bounded maximization LP with a guaranteed feasible region.
Model RandomLp(Rng* rng, int nvars, int nrows) {
  Model m;
  m.SetSense(Sense::kMaximize);
  for (int i = 0; i < nvars; ++i) {
    m.AddVariable(0.0, rng->Uniform(1.0, 6.0), rng->Uniform(-1.0, 3.0));
  }
  for (int r = 0; r < nrows; ++r) {
    std::vector<Term> terms;
    for (int i = 0; i < nvars; ++i) {
      if (rng->Uniform(0.0, 1.0) < 0.6) {
        terms.push_back({i, rng->Uniform(0.2, 1.5)});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    m.AddRow(RowType::kLessEqual, rng->Uniform(1.0, 8.0), std::move(terms));
  }
  return m;
}

class WarmStartPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WarmStartPropertyTest, DriftedObjectiveAndRhsReachColdObjective) {
  Rng rng(7000 + GetParam());
  Model m = RandomLp(&rng, 6 + GetParam() % 5, 4 + GetParam() % 4);
  SimplexSolver solver;
  Solution first = MustSolve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  ASSERT_FALSE(first.basis.empty());

  // Drift every objective coefficient and RHS a little — the incremental
  // planners' steady-state patch — and re-solve warm and cold.
  for (int i = 0; i < m.num_variables(); ++i) {
    m.SetObjective(i, m.variable(i).objective + rng.Uniform(-0.3, 0.3));
  }
  for (int r = 0; r < m.num_rows(); ++r) {
    m.SetRhs(r, m.row(r).rhs + rng.Uniform(0.0, 0.5));
  }
  auto warm = solver.SolveWarm(m, first.basis);
  Solution cold = MustSolve(m);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  ASSERT_EQ(warm->status, cold.status);
  if (cold.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm->objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)));
    EXPECT_TRUE(m.IsFeasible(warm->values, 1e-6));
  }
}

TEST_P(WarmStartPropertyTest, TombstonedVariablesReachColdObjective) {
  Rng rng(8000 + GetParam());
  Model m = RandomLp(&rng, 8, 5);
  SimplexSolver solver;
  Solution first = MustSolve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  // Retire two variables the way cached LPs tombstone dead sample blocks.
  m.SetBounds(1, 0.0, 0.0);
  m.SetBounds(4, 0.0, 0.0);
  auto warm = solver.SolveWarm(m, first.basis);
  Solution cold = MustSolve(m);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->status, cold.status);
  if (cold.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm->objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)));
    EXPECT_NEAR(warm->values[1], 0.0, 1e-9);
    EXPECT_NEAR(warm->values[4], 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartPropertyTest,
                         ::testing::Range(1, 30));

TEST(WarmStartTest, CrossCheckReturnsTheColdSolutionBitForBit) {
  Rng rng(555);
  Model m = RandomLp(&rng, 7, 5);
  SimplexSolver solver;
  Solution first = MustSolve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  m.SetRhs(0, m.row(0).rhs * 0.8);

  auto checked = solver.SolveWarm(m, first.basis, /*cross_check=*/true);
  Solution cold = MustSolve(m);
  ASSERT_TRUE(checked.ok());
  EXPECT_TRUE(checked->warm_started);
  // Not just the same objective: the identical vertex, to the last bit.
  EXPECT_EQ(checked->values, cold.values);
  EXPECT_EQ(checked->objective, cold.objective);
}

TEST(WarmStartTest, EmptyBasisFallsBackToColdSolve) {
  Rng rng(556);
  Model m = RandomLp(&rng, 5, 4);
  SimplexSolver solver;
  auto s = solver.SolveWarm(m, Basis{});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, SolveStatus::kOptimal);
  EXPECT_FALSE(s->warm_started);
}

TEST(WarmStartTest, MismatchedBasisDimensionsFallBackToColdSolve) {
  Rng rng(557);
  Model small = RandomLp(&rng, 4, 3);
  Model large = RandomLp(&rng, 9, 6);
  SimplexSolver solver;
  Solution s_small = MustSolve(small);
  ASSERT_FALSE(s_small.basis.empty());

  auto s = solver.SolveWarm(large, s_small.basis);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, SolveStatus::kOptimal);
  EXPECT_FALSE(s->warm_started);  // rejected, solved cold
  Solution cold = MustSolve(large);
  EXPECT_EQ(s->objective, cold.objective);
}

TEST(WarmStartTest, ExtendBasisCarriesAnOldBasisOntoAGrownModel) {
  Rng rng(558);
  Model m = RandomLp(&rng, 6, 4);
  SimplexSolver solver;
  Solution first = MustSolve(m);
  ASSERT_EQ(first.status, SolveStatus::kOptimal);

  // Grow the model the way cached LPs append a sample block: new
  // variables, a new row over them, and new terms joining an old row.
  const int extra1 = m.AddVariable(0.0, 2.0, 1.5);
  const int extra2 = m.AddVariable(0.0, 2.0, 0.5);
  m.AddRow(RowType::kLessEqual, 2.5, {{extra1, 1.0}, {extra2, 1.0}});
  m.AddRowTerm(0, {extra1, 0.7});

  Basis grown = ExtendBasis(first.basis, m);
  ASSERT_FALSE(grown.empty());
  EXPECT_EQ(grown.num_structural, m.num_variables());
  EXPECT_EQ(grown.num_rows, m.num_rows());

  auto warm = solver.SolveWarm(m, grown);
  Solution cold = MustSolve(m);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->status, cold.status);
  if (cold.status == SolveStatus::kOptimal) {
    EXPECT_NEAR(warm->objective, cold.objective,
                1e-6 * (1.0 + std::abs(cold.objective)));
  }
}

TEST(WarmStartTest, ShrunkenModelRejectsTheStaleBasis) {
  Rng rng(559);
  Model large = RandomLp(&rng, 8, 5);
  Solution s = MustSolve(large);
  Model small = RandomLp(&rng, 5, 3);
  // ExtendBasis only grows; a basis from a bigger model is not a prefix.
  EXPECT_TRUE(ExtendBasis(s.basis, small).empty());
}

}  // namespace
}  // namespace lp
}  // namespace prospector
