#include "src/lp/simplex.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/lp/model.h"
#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

Solution MustSolve(const Model& model, SimplexOptions opts = {}) {
  SimplexSolver solver(opts);
  auto res = solver.Solve(model);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.value();
}

TEST(SimplexTest, TrivialUnconstrainedBounds) {
  // min x, 2 <= x <= 5  -> x = 2.
  Model m;
  int x = m.AddVariable(2.0, 5.0, 1.0, "x");
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 2.0, 1e-9);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, MaximizeAtUpperBound) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, 7.0, 3.0, "x");
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 7.0, 1e-9);
  EXPECT_NEAR(s.objective, 21.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Known optimum (Hillier-Lieberman): x=2, y=6, obj=36.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 3.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 5.0, "y");
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}});
  m.AddRow(RowType::kLessEqual, 12.0, {{y, 2.0}});
  m.AddRow(RowType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.values[x], 2.0, 1e-8);
  EXPECT_NEAR(s.values[y], 6.0, 1e-8);
}

TEST(SimplexTest, EqualityRowRequiresPhase1) {
  // min x + y s.t. x + y = 10, x <= 4  ->  x=4, y=6 is NOT optimal;
  // optimum is any point with x+y=10; objective 10 everywhere on the line.
  Model m;
  int x = m.AddVariable(0.0, 4.0, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-8);
  EXPECT_NEAR(s.values[x] + s.values[y], 10.0, 1e-8);
  EXPECT_GT(s.stats.total_iterations(), 0);
  EXPECT_GT(s.stats.artificials, 0);
  EXPECT_EQ(s.stats.rows, 1);
  EXPECT_EQ(s.stats.columns, 2);
}

TEST(SimplexTest, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 10, x - y >= -5, x,y >= 0.
  // Optimum: push y up to use cheaper... 2 < 3 so prefer x: y=0, x=10 ->
  // check x - y = 10 >= -5 ok. obj = 20.
  Model m;
  int x = m.AddVariable(0.0, kInfinity, 2.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 3.0, "y");
  m.AddRow(RowType::kGreaterEqual, 10.0, {{x, 1.0}, {y, 1.0}});
  m.AddRow(RowType::kGreaterEqual, -5.0, {{x, 1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-8);
  EXPECT_NEAR(s.values[x], 10.0, 1e-8);
  EXPECT_NEAR(s.values[y], 0.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  int x = m.AddVariable(0.0, 1.0, 1.0, "x");
  m.AddRow(RowType::kGreaterEqual, 5.0, {{x, 1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleConflictingRows) {
  Model m;
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kLessEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.AddRow(RowType::kGreaterEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 0.0, "y");
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  EXPECT_EQ(s.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, FreeVariable) {
  // min x s.t. x >= -3 expressed via a row (x itself free) -> x = -3.
  Model m;
  int x = m.AddVariable(-kInfinity, kInfinity, 1.0, "x");
  m.AddRow(RowType::kGreaterEqual, -3.0, {{x, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], -3.0, 1e-8);
}

TEST(SimplexTest, FixedVariableContributes) {
  // x fixed at 2; min y s.t. y >= 5 - x  -> y = 3.
  Model m;
  int x = m.AddVariable(2.0, 2.0, 0.0, "x");
  int y = m.AddVariable(0.0, kInfinity, 1.0, "y");
  m.AddRow(RowType::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[y], 3.0, 1e-8);
}

TEST(SimplexTest, NegativeRhsLessEqual) {
  // min x + y s.t. -x - y <= -4 (i.e. x + y >= 4), x,y in [0, 10].
  Model m;
  int x = m.AddVariable(0.0, 10.0, 1.0, "x");
  int y = m.AddVariable(0.0, 10.0, 1.0, "y");
  m.AddRow(RowType::kLessEqual, -4.0, {{x, -1.0}, {y, -1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(SimplexTest, DuplicateTermsAreSummed) {
  // max x s.t. 0.5x + 0.5x <= 3  -> x = 3.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0, "x");
  m.AddRow(RowType::kLessEqual, 3.0, {{x, 0.5}, {x, 0.5}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.values[x], 3.0, 1e-8);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Beale's classic cycling example (with Dantzig pricing simplex can
  // cycle); the Bland fallback must guarantee termination.
  Model m;
  int x1 = m.AddVariable(0.0, kInfinity, -0.75, "x1");
  int x2 = m.AddVariable(0.0, kInfinity, 150.0, "x2");
  int x3 = m.AddVariable(0.0, kInfinity, -0.02, "x3");
  int x4 = m.AddVariable(0.0, kInfinity, 6.0, "x4");
  m.AddRow(RowType::kLessEqual, 0.0,
           {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}});
  m.AddRow(RowType::kLessEqual, 0.0,
           {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}});
  m.AddRow(RowType::kLessEqual, 1.0, {{x3, 1.0}});
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SimplexTest, ValidateRejectsBadVariableIndex) {
  Model m;
  m.AddVariable(0.0, 1.0, 1.0);
  m.AddRow(RowType::kLessEqual, 1.0, {{7, 1.0}});
  SimplexSolver solver;
  auto res = solver.Solve(m);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, ValidateRejectsInvertedBounds) {
  Model m;
  m.AddVariable(2.0, 1.0, 1.0);
  SimplexSolver solver;
  auto res = solver.Solve(m);
  EXPECT_FALSE(res.ok());
}

TEST(SimplexTest, SolutionIsFeasibleAndResidualSmall) {
  Model m;
  m.SetSense(Sense::kMaximize);
  Rng rng(7);
  std::vector<int> vars;
  for (int i = 0; i < 20; ++i) {
    vars.push_back(m.AddVariable(0.0, 1.0, rng.Uniform(0.0, 1.0)));
  }
  for (int r = 0; r < 15; ++r) {
    std::vector<Term> terms;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.4)) terms.push_back({vars[i], rng.Uniform(0.1, 2.0)});
    }
    if (!terms.empty()) {
      m.AddRow(RowType::kLessEqual, rng.Uniform(1.0, 5.0), terms);
    }
  }
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
  EXPECT_LT(s.primal_residual, 1e-6);
}

// -------- Property sweep: random knapsack-like LPs vs brute force. --------
//
// The LP relaxation of a 0/1 knapsack has a well-known closed form: sort by
// density, take greedily, split the last item fractionally. We compare the
// simplex optimum against that closed form on random instances.
class KnapsackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KnapsackPropertyTest, MatchesGreedyFractionalOptimum) {
  Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.UniformInt(uint64_t{12}));
  std::vector<double> value(n), weight(n);
  for (int i = 0; i < n; ++i) {
    value[i] = rng.Uniform(1.0, 10.0);
    weight[i] = rng.Uniform(1.0, 10.0);
  }
  double cap = rng.Uniform(5.0, 30.0);

  Model m;
  m.SetSense(Sense::kMaximize);
  std::vector<Term> row;
  for (int i = 0; i < n; ++i) {
    int v = m.AddBinaryRelaxed(value[i]);
    row.push_back({v, weight[i]});
  }
  m.AddRow(RowType::kLessEqual, cap, row);
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Closed-form fractional knapsack.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return value[a] / weight[a] > value[b] / weight[b];
  });
  double rem = cap, expect = 0.0;
  for (int i : order) {
    if (weight[i] <= rem) {
      expect += value[i];
      rem -= weight[i];
    } else {
      expect += value[i] * rem / weight[i];
      rem = 0.0;
      break;
    }
  }
  EXPECT_NEAR(s.objective, expect, 1e-6);
  EXPECT_TRUE(m.IsFeasible(s.values, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Range(1, 40));

// -------- Property sweep: random small LPs, verify optimality via vertex
// enumeration on 2-variable instances. --------
class TwoVarVertexTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoVarVertexTest, MatchesVertexEnumeration) {
  Rng rng(1000 + GetParam());
  Model m;
  m.SetSense(Sense::kMaximize);
  double cx = rng.Uniform(-2.0, 2.0), cy = rng.Uniform(-2.0, 2.0);
  int x = m.AddVariable(0.0, 10.0, cx);
  int y = m.AddVariable(0.0, 10.0, cy);
  struct Line { double a, b, c; };  // a x + b y <= c
  std::vector<Line> lines;
  const int nrows = 2 + static_cast<int>(rng.UniformInt(uint64_t{4}));
  for (int r = 0; r < nrows; ++r) {
    Line ln{rng.Uniform(-1.0, 2.0), rng.Uniform(-1.0, 2.0),
            rng.Uniform(1.0, 12.0)};
    lines.push_back(ln);
    m.AddRow(RowType::kLessEqual, ln.c, {{x, ln.a}, {y, ln.b}});
  }
  Solution s = MustSolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);

  // Enumerate all candidate vertices: intersections of every constraint
  // pair (including the box bounds), keep feasible ones, take best.
  lines.push_back({1, 0, 10});
  lines.push_back({-1, 0, 0});
  lines.push_back({0, 1, 10});
  lines.push_back({0, -1, 0});
  double best = -1e100;
  auto feasible = [&](double px, double py) {
    for (const Line& ln : lines) {
      if (ln.a * px + ln.b * py > ln.c + 1e-7) return false;
    }
    return true;
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    for (size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i].a * lines[j].b - lines[j].a * lines[i].b;
      if (std::abs(det) < 1e-9) continue;
      const double px = (lines[i].c * lines[j].b - lines[j].c * lines[i].b) / det;
      const double py = (lines[i].a * lines[j].c - lines[j].a * lines[i].c) / det;
      if (feasible(px, py)) best = std::max(best, cx * px + cy * py);
    }
  }
  ASSERT_GT(best, -1e99);  // box bounds guarantee a vertex exists
  EXPECT_NEAR(s.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoVarVertexTest, ::testing::Range(1, 40));

}  // namespace
}  // namespace lp
}  // namespace prospector
