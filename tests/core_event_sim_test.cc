#include "src/core/event_sim.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

const net::EnergyModel kEnergy{};
const RadioTiming kTiming{};

double Tx(int values) {
  return kTiming.TransmissionSeconds(values * kEnergy.bytes_per_value);
}

TEST(EventSimTest, ChainMatchesHandComputation) {
  net::Topology topo = net::BuildChain(4);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 1, 1});
  EventSimResult r = SimulateCollectionPhase(p, topo, kEnergy, kTiming);
  EXPECT_NEAR(r.completion_s, 3 * Tx(1), 1e-12);
  EXPECT_EQ(r.transmissions, 3);
  EXPECT_EQ(r.retransmissions, 0);
  // Middle nodes both send and receive once.
  EXPECT_NEAR(r.node_airtime_s[1], 2 * Tx(1), 1e-12);
  EXPECT_NEAR(r.node_airtime_s[3], Tx(1), 1e-12);
  EXPECT_NEAR(r.node_airtime_s[0], Tx(1), 1e-12);
}

TEST(EventSimTest, StarBlocksSiblings) {
  net::Topology topo = net::BuildStar(4);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 1, 1});
  EventSimResult r = SimulateCollectionPhase(p, topo, kEnergy, kTiming);
  EXPECT_NEAR(r.completion_s, 3 * Tx(1), 1e-12);
  // All three are ready at t=0; the 2nd and 3rd wait 1 resp. 2 slots.
  double blocked = 0.0;
  for (double b : r.node_blocked_s) blocked += b;
  EXPECT_NEAR(blocked, 3 * Tx(1), 1e-12);
}

class EventSimAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(EventSimAgreementTest, MatchesAnalyticLatencyModel) {
  Rng rng(800 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{40}));
  net::Topology topo = net::BuildRandomTree(n, 4, &rng);
  std::vector<int> bw(n, 0);
  for (int e = 1; e < n; ++e) {
    bw[e] = static_cast<int>(rng.UniformInt(uint64_t{4}));  // 0..3
  }
  QueryPlan p = QueryPlan::Bandwidth(3, std::move(bw));
  p.Normalize(topo);

  const double analytic = EstimateCollectionLatency(p, topo, kEnergy, kTiming);
  EventSimResult sim = SimulateCollectionPhase(p, topo, kEnergy, kTiming);
  EXPECT_NEAR(sim.completion_s, analytic, 1e-9) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventSimAgreementTest, ::testing::Range(1, 40));

TEST(EventSimTest, FailuresStretchLatencyByExpectedFactor) {
  net::Topology topo = net::BuildChain(2);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1});
  net::FailureModel f;
  f.edge_failure_prob = {0.0, 0.5};
  Rng rng(9);
  double total = 0.0;
  int retx = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    EventSimResult r = SimulateCollectionPhase(p, topo, kEnergy, kTiming, f,
                                               &rng);
    total += r.completion_s;
    retx += r.retransmissions;
  }
  // E[attempts] = 1/(1-p) = 2 -> mean latency ~ 2 * Tx.
  EXPECT_NEAR(total / trials, 2 * Tx(1), 0.1 * Tx(1));
  EXPECT_GT(retx, 0);
}

TEST(EventSimTest, EmptyPlanCompletesInstantly) {
  net::Topology topo = net::BuildStar(5);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 0, 0, 0, 0});
  EventSimResult r = SimulateCollectionPhase(p, topo, kEnergy, kTiming);
  EXPECT_DOUBLE_EQ(r.completion_s, 0.0);
  EXPECT_EQ(r.transmissions, 0);
}

}  // namespace
}  // namespace core
}  // namespace prospector
