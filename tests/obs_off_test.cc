// The instrumentation-off arm (satellite: PROSPECTOR_OBS=OFF no-op path).
//
// This translation unit alone is compiled with PROSPECTOR_OBS_DISABLED
// (see tests/CMakeLists.txt) while linking the normal, instrumented
// libraries — which is exactly the contract obs.h documents: the macros
// are the compile-time gate, the classes behind them always exist. Every
// macro here must expand to zero instructions, and the always-compiled
// classes must stay directly usable so tooling works in either mode.
//
// The full-build OFF arm (all TUs recompiled with -DPROSPECTOR_OBS=OFF)
// runs as a separate CI configure in the obs-smoke job.

#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <string>

#include "src/obs/openmetrics.h"

namespace prospector {
namespace obs {
namespace {

#ifndef PROSPECTOR_OBS_DISABLED
#error "obs_off_test must be compiled with PROSPECTOR_OBS_DISABLED"
#endif

TEST(ObsOffTest, FlightMacrosCompileToNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  // In this TU these are `do { } while (0)`: nothing may be recorded and
  // the arguments must not even be evaluated.
  int evaluations = 0;
  PROSPECTOR_FLIGHT(kNote, "off.site", (++evaluations, 1), 1.0, 2.0);
  PROSPECTOR_FLIGHT_EPOCH(++evaluations);
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(fr.Snapshot().empty());
  EXPECT_EQ(fr.epoch(), -1);
}

TEST(ObsOffTest, MetricMacrosCompileToNothing) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetAll();
  int evaluations = 0;
  PROSPECTOR_COUNTER_ADD("off.counter", (++evaluations, 1));
  PROSPECTOR_GAUGE_SET("off.gauge", (++evaluations, 2.0));
  PROSPECTOR_HISTOGRAM_RECORD("off.hist", (++evaluations, 3.0));
  PROSPECTOR_SPAN("off.span");
  PROSPECTOR_AUDIT_ENERGY("off.audit", (++evaluations, 1.0), 2.0);
  EXPECT_EQ(evaluations, 0);
  const MetricsSnapshot snap = reg.Snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_TRUE(name.rfind("off.", 0) != 0) << name;
  }
}

TEST(ObsOffTest, ClassesRemainDirectlyUsable) {
  // Tooling bypasses the macros, so the classes must work in OFF builds.
  MetricsRegistry reg;
  reg.counter("off.direct")->Add(5);
  EXPECT_EQ(reg.counter("off.direct")->value(), 5);
  const std::string text = ToOpenMetrics(reg.Snapshot());
  EXPECT_NE(text.find("prospector_off_direct_total 5"), std::string::npos);

  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.SetEpoch(2);
  fr.Record(FlightKind::kNote, "off.manual", 1, 4.0, 5.0);
  EXPECT_EQ(fr.Snapshot().size(), 1u);
  fr.Clear();
}

}  // namespace
}  // namespace obs
}  // namespace prospector
