#include "src/core/latency.h"

#include <gtest/gtest.h>

#include "src/net/describe.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

const net::EnergyModel kEnergy{};
const RadioTiming kTiming{};

double Tx(int values) {
  return kTiming.TransmissionSeconds(values * kEnergy.bytes_per_value);
}

TEST(LatencyTest, ChainIsFullySequential) {
  net::Topology topo = net::BuildChain(4);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 1, 1});
  const double latency =
      EstimateCollectionLatency(p, topo, kEnergy, kTiming);
  EXPECT_NEAR(latency, 3 * Tx(1), 1e-12);
}

TEST(LatencyTest, StarSerializesOnTheRootRadio) {
  net::Topology topo = net::BuildStar(5);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 1, 1, 1});
  const double latency =
      EstimateCollectionLatency(p, topo, kEnergy, kTiming);
  EXPECT_NEAR(latency, 4 * Tx(1), 1e-12);
}

TEST(LatencyTest, ParallelBranchesOverlap) {
  // Two chains of length 3 under the root: deeper transmissions overlap,
  // only the final hop serializes at the root.
  auto topo = net::Topology::FromParents({-1, 0, 1, 2, 0, 4, 5}).value();
  std::vector<int> bw(7, 1);
  bw[0] = 0;
  QueryPlan p = QueryPlan::Bandwidth(1, std::move(bw));
  const double latency =
      EstimateCollectionLatency(p, topo, kEnergy, kTiming);
  // Each branch needs 2*Tx before its root-adjacent node is ready; the two
  // final hops serialize: ready at 2Tx, second finishes at 2Tx + 2Tx.
  EXPECT_NEAR(latency, 4 * Tx(1), 1e-12);
  // Strictly better than a fully sequential schedule of 6 messages.
  EXPECT_LT(latency, 6 * Tx(1));
}

TEST(LatencyTest, ZeroBandwidthEdgesDoNotTransmit) {
  net::Topology topo = net::BuildStar(4);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 0, 0});
  EXPECT_NEAR(EstimateCollectionLatency(p, topo, kEnergy, kTiming),
              Tx(1), 1e-12);
}

TEST(LatencyTest, BiggerMessagesTakeLonger) {
  net::Topology topo = net::BuildChain(2);
  QueryPlan small = QueryPlan::Bandwidth(1, {0, 1});
  QueryPlan big = QueryPlan::Bandwidth(10, {0, 10});
  EXPECT_LT(EstimateCollectionLatency(small, topo, kEnergy, kTiming),
            EstimateCollectionLatency(big, topo, kEnergy, kTiming));
}

TEST(DescribeTest, RendersTreeAndSummary) {
  auto topo = net::Topology::FromParents({-1, 0, 0, 1}).value();
  const std::string art = net::DescribeTopology(topo);
  EXPECT_NE(art.find("0 (root)"), std::string::npos);
  EXPECT_NE(art.find("+- 1 [d=1, sub=2]"), std::string::npos);
  EXPECT_NE(art.find("`- 3 [d=2, sub=1]"), std::string::npos);
  const std::string sum = net::SummarizeTopology(topo);
  EXPECT_EQ(sum, "4 nodes, height 2, 2 leaves, max fanout 2");
}

TEST(DescribeTest, AnnotationHook) {
  auto topo = net::Topology::FromParents({-1, 0}).value();
  const std::string art = net::DescribeTopology(
      topo, [](int node) { return node == 1 ? "b=3" : ""; });
  EXPECT_NE(art.find("b=3"), std::string::npos);
}

}  // namespace
}  // namespace core
}  // namespace prospector
