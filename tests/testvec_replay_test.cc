// Replays the checked-in golden corpus (spec/test-vectors/) against the
// live implementation — this is the ctest entry that makes the corpus a
// CI tripwire — and proves the harness actually *fails* when a vector and
// the implementation disagree (a replay harness that cannot fail certifies
// nothing).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/testvec/json.h"
#include "src/testvec/replay.h"
#include "src/testvec/testvec.h"

#ifndef PROSPECTOR_SPEC_DEFAULT
#define PROSPECTOR_SPEC_DEFAULT "spec/test-vectors"
#endif

namespace prospector {
namespace testvec {
namespace {

std::string SpecDir() { return SpecDirOrDefault(PROSPECTOR_SPEC_DEFAULT); }

/// Loads one vector file and returns the first case whose name matches
/// `pred` (empty name = first case of the file).
Json LoadCase(const std::string& file, const std::string& name = "") {
  auto doc = LoadVectorFile(SpecDir() + "/" + file);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return Json();
  const Json& cases = doc->at("cases");
  for (size_t i = 0; i < cases.size(); ++i) {
    if (name.empty() || cases[i].at("name").str() == name) {
      return cases[i];
    }
  }
  ADD_FAILURE() << file << " has no case named '" << name << "'";
  return Json();
}

TEST(CorpusReplayTest, EntireCorpusReplaysByteExact) {
  ReplayStats stats;
  const Status st = ReplayCorpus(SpecDir(), &stats);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // The corpus is substantial by construction; a shrunk or missing corpus
  // must fail here rather than "pass" vacuously.
  EXPECT_GE(stats.files, 7);
  EXPECT_GE(stats.cases, 85);
}

TEST(CorpusReplayTest, BugVectorsAresPresent) {
  // The two vectors that pin the former encode bugs must stay in the
  // corpus: >255 children and k/bandwidth past the uint8 ceiling, both
  // round-tripping via wire version 2.
  const Json count_bug =
      LoadCase("plan_wire_v2.json", "bug_count_truncation_300_children");
  EXPECT_EQ(count_bug.at("wire_version").AsInt(), 2);
  EXPECT_EQ(count_bug.at("subplan").at("children").size(), 300u);
  const Json clamp_bug =
      LoadCase("plan_wire_v2.json", "bug_silent_clamp_k_1000_bw_400");
  EXPECT_EQ(clamp_bug.at("wire_version").AsInt(), 2);
  EXPECT_EQ(clamp_bug.at("subplan").at("k").AsInt(), 1000);
}

TEST(CorpusReplayTest, MissingCorpusIsAnError) {
  ReplayStats stats;
  const Status st = ReplayCorpus("/nonexistent/spec", &stats);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

// --- The harness must fail on tampered vectors ---------------------------

TEST(TamperTest, PlanWireWrongBytesFailReplay) {
  Json c = LoadCase("plan_wire_v1.json");
  ASSERT_TRUE(c.is_object());
  EXPECT_TRUE(ReplayPlanWireCase(c).ok());
  std::string hex = c.at("wire_hex").str();
  hex[hex.size() - 1] = hex.back() == '0' ? '1' : '0';
  c.Set("wire_hex", hex);
  const Status st = ReplayPlanWireCase(c);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("wire_hex"), std::string::npos);
}

TEST(TamperTest, PlanWireWrongVersionFailsReplay) {
  Json c = LoadCase("plan_wire_v1.json");
  ASSERT_TRUE(c.is_object());
  c.Set("wire_version", 2);
  EXPECT_FALSE(ReplayPlanWireCase(c).ok());
}

TEST(TamperTest, WrongErrorCodeFailsReplay) {
  Json c = LoadCase("plan_wire_errors.json", "empty_input");
  ASSERT_TRUE(c.is_object());
  EXPECT_TRUE(ReplayPlanWireCase(c).ok());
  c.Set("error_code", "NotFound");
  EXPECT_FALSE(ReplayPlanWireCase(c).ok());
}

TEST(TamperTest, CorruptedKktCertificateFailsReplay) {
  Json c = LoadCase("lp_optima.json", "textbook_max_two_vars");
  ASSERT_TRUE(c.is_object());
  EXPECT_TRUE(ReplayLpCase(c).ok());
  // A forged dual must be caught by the independent certificate check.
  Json& solution = *c.Find("solution");
  Json& duals = *solution.Find("row_duals");
  ASSERT_TRUE(duals.is_array());
  ASSERT_GT(duals.size(), 0u);
  duals[0] = Json(duals[0].number() + 10.0);
  const Status st = ReplayLpCase(c);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("certificate"), std::string::npos);
}

TEST(TamperTest, WrongObjectiveFailsReplay) {
  Json c = LoadCase("lp_optima.json", "textbook_max_two_vars");
  ASSERT_TRUE(c.is_object());
  Json& solution = *c.Find("solution");
  solution.Set("objective", solution.at("objective").number() + 1.0);
  EXPECT_FALSE(ReplayLpCase(c).ok());
}

TEST(TamperTest, WrongMergedBandwidthFailsReplay) {
  Json c = LoadCase("superplan_merge.json", "two_queries_chain");
  ASSERT_TRUE(c.is_object());
  EXPECT_TRUE(ReplaySuperplanCase(c).ok());
  Json& bw = *c.Find("merged_bandwidth");
  ASSERT_TRUE(bw.is_array());
  bw[1] = Json(bw[1].AsInt() + 1);
  const Status st = ReplaySuperplanCase(c);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("bandwidth"), std::string::npos);
}

TEST(TamperTest, WrongDemuxAnswerFailsReplay) {
  Json c = LoadCase("superplan_merge.json", "two_queries_chain");
  ASSERT_TRUE(c.is_object());
  Json& answers = *c.Find("per_query_answers");
  ASSERT_TRUE(answers.is_array());
  ASSERT_GT(answers.size(), 0u);
  ASSERT_GT(answers[0].size(), 0u);
  answers[0][0][1] = Json(answers[0][0][1].number() + 0.25);
  const Status st = ReplaySuperplanCase(c);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("demux"), std::string::npos);
}

TEST(TamperTest, ForgedInjectorStateFailsReplay) {
  Json c = LoadCase("fault_schedules.json", "remap_across_two_rebuilds");
  ASSERT_TRUE(c.is_object());
  EXPECT_TRUE(ReplayFaultScheduleCase(c).ok());
  // Forge the golden snapshot after the first rebuild: the live injector
  // cannot reproduce the edited dead-count.
  Json& steps = *c.Find("steps");
  ASSERT_TRUE(steps.is_array());
  ASSERT_GT(steps.size(), 1u);
  Json& state = *steps[1].Find("state");
  state.Set("num_dead", state.at("num_dead").AsInt() + 1);
  const Status st = ReplayFaultScheduleCase(c);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("golden state"), std::string::npos);
}

TEST(TamperTest, DroppedScheduleEventFailsReplay) {
  Json c = LoadCase("fault_schedules.json", "adversarial_arm_and_disarm");
  ASSERT_TRUE(c.is_object());
  // Deleting the disarm event leaves the edge armed where the snapshots
  // say it is clean.
  Json& schedule = *c.Find("schedule");
  ASSERT_TRUE(schedule.is_array());
  Json pruned = Json::Array();
  for (size_t i = 0; i + 1 < schedule.size(); ++i) {
    pruned.Append(schedule[i]);
  }
  c.Set("schedule", std::move(pruned));
  EXPECT_FALSE(ReplayFaultScheduleCase(c).ok());
}

// --- Subplan JSON round trip ---------------------------------------------

TEST(SubplanJsonTest, RoundTripsAllFields) {
  core::Subplan sp;
  sp.proof_carrying = true;
  sp.node_selection = true;
  sp.chosen = true;
  sp.k = 1000;
  sp.outgoing_bandwidth = 7;
  sp.child_bandwidth = {{3, 2}, {400, 1}};
  sp.query_entries = {{0, 5, 2}, {9, 300, 1}};
  auto back = SubplanFromJson(SubplanToJson(sp));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(*back == sp);
}

TEST(SubplanJsonTest, RejectsMalformedSubplans) {
  EXPECT_FALSE(SubplanFromJson(Json()).ok());
  Json j = SubplanToJson(core::Subplan{});
  j.Set("children", 3);  // not an array
  EXPECT_FALSE(SubplanFromJson(j).ok());
}

}  // namespace
}  // namespace testvec
}  // namespace prospector
