#include "src/lp/branch_and_bound.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

TEST(BnbTest, AlreadyIntegralSolvesInOneNode) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, 3.0, 1.0);
  BranchAndBound bnb;
  auto r = bnb.Solve(m, {x});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SolveStatus::kOptimal);
  EXPECT_NEAR(r->objective, 3.0, 1e-9);
  EXPECT_EQ(r->nodes_explored, 1);
}

TEST(BnbTest, ClassicKnapsack) {
  // max 6a + 10b + 12c s.t. a + 2b + 3c <= 4, binary.
  // LP relaxation gives 20 fractionally; the integer optimum is a+c = 18?
  // Check: {a,b}: w=3 v=16; {a,c}: w=4 v=18; {b,c}: w=5 infeasible. -> 18.
  Model m;
  m.SetSense(Sense::kMaximize);
  int a = m.AddBinaryRelaxed(6.0);
  int b = m.AddBinaryRelaxed(10.0);
  int c = m.AddBinaryRelaxed(12.0);
  m.AddRow(RowType::kLessEqual, 4.0, {{a, 1.0}, {b, 2.0}, {c, 3.0}});
  BranchAndBound bnb;
  auto r = bnb.Solve(m, {a, b, c});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, SolveStatus::kOptimal);
  EXPECT_NEAR(r->objective, 18.0, 1e-9);
  EXPECT_NEAR(r->values[a], 1.0, 1e-9);
  EXPECT_NEAR(r->values[b], 0.0, 1e-9);
  EXPECT_NEAR(r->values[c], 1.0, 1e-9);
}

TEST(BnbTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x integer: no integral point.
  Model m;
  int x = m.AddVariable(0.4, 0.6, 1.0);
  BranchAndBound bnb;
  auto r = bnb.Solve(m, {x});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SolveStatus::kInfeasible);
}

TEST(BnbTest, MixedIntegerKeepsContinuousVarsFractional) {
  // max x + y, x integer in [0, 2.5], y continuous in [0, 0.5],
  // x + y <= 2.7 -> x = 2, y = 0.5.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, 2.5, 1.0);
  int y = m.AddVariable(0.0, 0.5, 1.0);
  m.AddRow(RowType::kLessEqual, 2.7, {{x, 1.0}, {y, 1.0}});
  BranchAndBound bnb;
  auto r = bnb.Solve(m, {x});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, SolveStatus::kOptimal);
  EXPECT_NEAR(r->values[x], 2.0, 1e-9);
  EXPECT_NEAR(r->values[y], 0.5, 1e-9);
}

TEST(BnbTest, RejectsBadVariableIndex) {
  Model m;
  m.AddBinaryRelaxed(1.0);
  BranchAndBound bnb;
  EXPECT_FALSE(bnb.Solve(m, {5}).ok());
}

TEST(BnbTest, NodeCapReportsIterationLimit) {
  Rng rng(3);
  Model m;
  m.SetSense(Sense::kMaximize);
  std::vector<int> vars;
  std::vector<Term> row;
  for (int i = 0; i < 25; ++i) {
    vars.push_back(m.AddBinaryRelaxed(rng.Uniform(1.0, 2.0)));
    row.push_back({vars[i], rng.Uniform(1.0, 2.0)});
  }
  m.AddRow(RowType::kLessEqual, 18.0, row);
  BnbOptions opts;
  opts.max_nodes = 3;
  BranchAndBound bnb(opts);
  auto r = bnb.Solve(m, vars);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status, SolveStatus::kIterationLimit);
  EXPECT_LE(r->nodes_explored, 3);
}

// ---- Property sweep: B&B vs exhaustive enumeration on random binary
// knapsacks with a couple of extra rows. ----
class BnbPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbPropertyTest, MatchesBruteForceEnumeration) {
  Rng rng(700 + GetParam());
  const int n = 4 + static_cast<int>(rng.UniformInt(uint64_t{9}));  // 4..12
  std::vector<double> value(n);
  Model m;
  m.SetSense(Sense::kMaximize);
  std::vector<int> vars;
  for (int i = 0; i < n; ++i) {
    value[i] = rng.Uniform(1.0, 10.0);
    vars.push_back(m.AddBinaryRelaxed(value[i]));
  }
  struct RowData {
    std::vector<double> w;
    double cap;
  };
  std::vector<RowData> rows;
  const int nrows = 1 + static_cast<int>(rng.UniformInt(uint64_t{3}));
  for (int r = 0; r < nrows; ++r) {
    RowData rd;
    rd.w.resize(n);
    std::vector<Term> terms;
    for (int i = 0; i < n; ++i) {
      rd.w[i] = rng.Uniform(0.5, 5.0);
      terms.push_back({vars[i], rd.w[i]});
    }
    rd.cap = rng.Uniform(3.0, 15.0);
    rows.push_back(rd);
    m.AddRow(RowType::kLessEqual, rd.cap, terms);
  }

  BranchAndBound bnb;
  auto r = bnb.Solve(m, vars);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->status, SolveStatus::kOptimal);

  double best = 0.0;  // all-zeros is always feasible
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (const RowData& rd : rows) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) lhs += rd.w[i];
      }
      if (lhs > rd.cap + 1e-12) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    double obj = 0.0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) obj += value[i];
    }
    best = std::max(best, obj);
  }
  EXPECT_NEAR(r->objective, best, 1e-7) << "seed " << GetParam();
  EXPECT_NEAR(r->best_bound, best, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbPropertyTest, ::testing::Range(1, 40));

}  // namespace
}  // namespace lp
}  // namespace prospector
