#include "src/core/plan.h"

#include <gtest/gtest.h>

#include "src/core/reading.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

TEST(ReadingTest, RankingOrder) {
  EXPECT_TRUE(ReadingRanksHigher({1, 5.0}, {2, 3.0}));
  EXPECT_FALSE(ReadingRanksHigher({1, 3.0}, {2, 5.0}));
  // Tie: lower node id ranks higher.
  EXPECT_TRUE(ReadingRanksHigher({1, 5.0}, {2, 5.0}));
  EXPECT_FALSE(ReadingRanksHigher({2, 5.0}, {1, 5.0}));
}

TEST(ReadingTest, TrueTopK) {
  std::vector<Reading> top = TrueTopK({1, 9, 3, 7}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].node, 1);
  EXPECT_EQ(top[1].node, 3);
}

TEST(QueryPlanTest, NodeSelectionDerivesBandwidths) {
  // Chain 0<-1<-2<-3; choose nodes 2 and 3.
  net::Topology topo = net::BuildChain(4);
  QueryPlan p = QueryPlan::NodeSelection(2, {0, 0, 1, 1}, topo);
  EXPECT_EQ(p.bandwidth, (std::vector<int>{0, 2, 2, 1}));
  EXPECT_EQ(p.CountVisitedNodes(topo), 3);  // root + 2 chosen
}

TEST(QueryPlanTest, NormalizeClampsAndPropagatesZeros) {
  net::Topology topo = net::BuildChain(4);
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 5, 0, 3});
  p.Normalize(topo);
  EXPECT_EQ(p.bandwidth[1], 3);  // clamped to subtree size
  EXPECT_EQ(p.bandwidth[2], 0);
  EXPECT_EQ(p.bandwidth[3], 0);  // unreachable: parent edge carries nothing
}

TEST(QueryPlanTest, NormalizeKeepsRootChildren) {
  auto topo = net::Topology::FromParents({-1, 0, 1, 0}).value();
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 1, 1, 2});
  p.Normalize(topo);
  EXPECT_EQ(p.bandwidth[1], 1);
  EXPECT_EQ(p.bandwidth[2], 1);
  EXPECT_EQ(p.bandwidth[3], 1);  // clamped to its subtree size of 1
}

TEST(QueryPlanTest, DebugStringListsUsedEdges) {
  net::Topology topo = net::BuildChain(3);
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 2, 1}, /*proof_carrying=*/true);
  const std::string s = p.DebugString(topo);
  EXPECT_NE(s.find("proof-carrying"), std::string::npos);
  EXPECT_NE(s.find("e1->0:2"), std::string::npos);
  EXPECT_NE(s.find("e2->1:1"), std::string::npos);
}

TEST(QueryPlanTest, UsesEdgeReflectsBandwidth) {
  net::Topology topo = net::BuildChain(3);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 0});
  EXPECT_TRUE(p.UsesEdge(1));
  EXPECT_FALSE(p.UsesEdge(2));
}

TEST(PlanCostTest, ExpectedCollectionCostSumsUsedEdges) {
  net::Topology topo = net::BuildChain(3);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 2, 1});
  const net::EnergyModel e;
  EXPECT_NEAR(ExpectedCollectionCost(p, sim), e.MessageCost(2) + e.MessageCost(1),
              1e-12);
}

TEST(PlanCostTest, FailureInflationRaisesExpectedCost) {
  net::Topology topo = net::BuildChain(2);
  net::FailureModel f;
  f.edge_failure_prob = {0.0, 0.5};
  f.reroute_cost_factor = 2.0;
  net::NetworkSimulator plain(&topo, net::EnergyModel{});
  net::NetworkSimulator failing(&topo, net::EnergyModel{}, f);
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1});
  EXPECT_NEAR(ExpectedCollectionCost(p, failing),
              1.5 * ExpectedCollectionCost(p, plain), 1e-12);
}

TEST(PlanCostTest, TriggerCostCountsBroadcastingNodes) {
  // Root with two children; child 1 has child 3. Plan uses edges 1 and 3:
  // broadcasts at root and at node 1.
  auto topo = net::Topology::FromParents({-1, 0, 0, 1}).value();
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 0, 1});
  EXPECT_NEAR(ExpectedTriggerCost(p, sim),
              2 * net::EnergyModel{}.BroadcastCost(), 1e-12);
  const double charged = ChargeTriggerCost(p, &sim);
  EXPECT_NEAR(charged, ExpectedTriggerCost(p, sim), 1e-12);
  EXPECT_EQ(sim.stats().broadcast_messages, 2);
}

TEST(PlanCostTest, InstallChargesUnicastPerUsedEdge) {
  auto topo = net::Topology::FromParents({-1, 0, 0, 1}).value();
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 0, 1});
  ChargeInstallCost(p, &sim);
  EXPECT_EQ(sim.stats().unicast_messages, 2);  // edges 1 and 3
}

TEST(PlanCostTest, InstallCostSameOrderAsCollection) {
  // Section 5 "Other Results": installing a plan costs on the order of one
  // collection phase.
  Rng rng(5);
  net::Topology topo = net::BuildRandomTree(60, 3, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  std::vector<int> bw(60, 1);
  bw[0] = 0;
  QueryPlan p = QueryPlan::Bandwidth(10, std::move(bw));
  p.Normalize(topo);
  const double collect = ExpectedCollectionCost(p, sim);
  const double install = ChargeInstallCost(p, &sim);
  EXPECT_GT(install, 0.3 * collect);
  EXPECT_LT(install, 3.0 * collect);
}

}  // namespace
}  // namespace core
}  // namespace prospector
