// Unit tests for the vendored-in-miniature JSON layer (src/testvec/json.h)
// and the corpus IO helpers. The golden vectors are only as trustworthy as
// this parser, so its round trips and rejections get pinned here.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/testvec/json.h"
#include "src/testvec/testvec.h"

namespace prospector {
namespace testvec {
namespace {

Json MustParse(const std::string& text) {
  auto j = Json::Parse(text);
  EXPECT_TRUE(j.ok()) << text << " -> " << j.status().ToString();
  return j.ok() ? std::move(*j) : Json();
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").boolean());
  EXPECT_FALSE(MustParse("false").boolean());
  EXPECT_EQ(MustParse("42").AsInt(), 42);
  EXPECT_EQ(MustParse("-7").AsInt(), -7);
  EXPECT_DOUBLE_EQ(MustParse("2.5e3").number(), 2500.0);
  EXPECT_EQ(MustParse("\"hi\"").str(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const Json j = MustParse(R"({"a": [1, {"b": "x"}], "c": {}})");
  ASSERT_TRUE(j.is_object());
  const Json& a = j.at("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].AsInt(), 1);
  EXPECT_EQ(a[1].at("b").str(), "x");
  EXPECT_TRUE(j.at("c").is_object());
  EXPECT_TRUE(j.contains("c"));
  EXPECT_FALSE(j.contains("missing"));
  EXPECT_EQ(j.Find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\n\t")").str(), "a\"b\\c/d\n\t");
  // \uXXXX decodes to UTF-8.
  EXPECT_EQ(MustParse(R"("\u0041")").str(), "A");
  EXPECT_EQ(MustParse(R"("\u00e9")").str(), "\xc3\xa9");
  EXPECT_EQ(MustParse(R"("\u2264")").str(), "\xe2\x89\xa4");
}

TEST(JsonTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",           "[1,]",        "{\"a\":}",
      "{\"a\" 1}",  "01",          "1.",          "+1",
      "nul",        "\"unterminated", "\"\\q\"",  "\"\\ud800\"",
      "[1] trailing", "{\"a\":1,}",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Json::Parse(text).ok()) << "accepted: " << text;
  }
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(JsonTest, DumpParseRoundTripPreservesStructure) {
  Json doc = Json::Object();
  doc.Set("name", "case");
  doc.Set("count", 3);
  doc.Set("ratio", 0.1);
  doc.Set("flag", true);
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(Json());
  doc.Set("items", std::move(arr));

  const std::string text = doc.Dump(2);
  const Json back = MustParse(text);
  EXPECT_EQ(back.at("name").str(), "case");
  EXPECT_EQ(back.at("count").AsInt(), 3);
  EXPECT_DOUBLE_EQ(back.at("ratio").number(), 0.1);
  EXPECT_TRUE(back.at("flag").boolean());
  ASSERT_EQ(back.at("items").size(), 3u);
  EXPECT_TRUE(back.at("items")[2].is_null());
  // Round trip is a fixpoint: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(MustParse(text).Dump(2), text);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json doc = Json::Object();
  doc.Set("zulu", 1);
  doc.Set("alpha", 2);
  doc.Set("mike", 3);
  const std::string text = doc.Dump(0);
  EXPECT_LT(text.find("zulu"), text.find("alpha"));
  EXPECT_LT(text.find("alpha"), text.find("mike"));
}

TEST(JsonTest, NumbersRoundTripExactly) {
  // Integers stay integer-spelled; doubles use shortest-exact form.
  for (const char* text : {"0", "-1", "2147483647", "1e300", "0.30000000001",
                           "-2.2250738585072014e-308"}) {
    const Json j = MustParse(text);
    EXPECT_EQ(MustParse(j.Dump(0)).number(), j.number()) << text;
  }
}

TEST(HexTest, RoundTripsAndRejects) {
  const std::vector<uint8_t> bytes = {0x00, 0x01, 0x7f, 0x80, 0xff};
  EXPECT_EQ(BytesToHex(bytes), "00017f80ff");
  auto back = HexToBytes("00017f80ff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, bytes);
  EXPECT_TRUE(HexToBytes("").ok());
  EXPECT_FALSE(HexToBytes("abc").ok());   // odd length
  EXPECT_FALSE(HexToBytes("zz").ok());    // non-hex digits
  EXPECT_FALSE(HexToBytes("0 1").ok());
}

TEST(VectorFileTest, MissingCorpusFailsLoudly) {
  auto files = ListVectorFiles("/nonexistent/spec/dir");
  EXPECT_FALSE(files.ok());
  EXPECT_EQ(files.status().code(), StatusCode::kNotFound);
}

TEST(VectorFileTest, EnvelopeValidation) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/good_vec.json";
  ASSERT_TRUE(WriteFile(good,
                        R"({"module": "m", "cases": [{"name": "a", "kind": "k"}]})")
                  .ok());
  EXPECT_TRUE(LoadVectorFile(good).ok());

  const std::string bad = dir + "/bad_vec.json";
  ASSERT_TRUE(WriteFile(bad, R"({"cases": []})").ok());
  EXPECT_FALSE(LoadVectorFile(bad).ok());  // no module
  ASSERT_TRUE(WriteFile(bad, R"({"module": "m", "cases": [{"name": "a"}]})")
                  .ok());
  EXPECT_FALSE(LoadVectorFile(bad).ok());  // case lacks kind
}

TEST(VectorFileTest, SpecDirEnvOverrides) {
  EXPECT_EQ(SpecDirOrDefault("fallback"), "fallback");
}

}  // namespace
}  // namespace testvec
}  // namespace prospector
