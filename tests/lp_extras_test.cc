#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/lp/lp_writer.h"
#include "src/lp/model.h"
#include "src/lp/simplex.h"
#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

// ---- Duals ----

TEST(DualsTest, KnapsackCapacityShadowPriceIsCriticalDensity) {
  // max 6a + 10b + 12c s.t. a + 2b + 3c <= 4, vars in [0,1].
  // Densities: 6, 5, 4. Optimum: a=1, b=1, remaining 1 -> c=1/3.
  // The capacity row's shadow price equals the fractional item's density.
  Model m;
  m.SetSense(Sense::kMaximize);
  int a = m.AddBinaryRelaxed(6.0);
  int b = m.AddBinaryRelaxed(10.0);
  int c = m.AddBinaryRelaxed(12.0);
  m.AddRow(RowType::kLessEqual, 4.0, {{a, 1.0}, {b, 2.0}, {c, 3.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective, 20.0, 1e-8);
  ASSERT_EQ(sol->row_duals.size(), 1u);
  EXPECT_NEAR(sol->row_duals[0], 4.0, 1e-8);
}

TEST(DualsTest, MinimizationSignConvention) {
  // min 2x s.t. x >= 3 -> optimum 6; relaxing the RHS by 1 lowers the
  // objective by 2, so the dual is +2 under "improvement per unit slack".
  Model m;
  int x = m.AddVariable(0.0, kInfinity, 2.0);
  m.AddRow(RowType::kGreaterEqual, 3.0, {{x, 1.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol->objective, 6.0, 1e-9);
  EXPECT_NEAR(sol->row_duals[0], 2.0, 1e-9);
}

class DualityPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DualityPropertyTest, DualsPredictRhsPerturbation) {
  // Finite-difference check: nudging a binding row's RHS by eps changes
  // the optimal objective by ~dual * eps (away from degenerate bases).
  Rng rng(400 + GetParam());
  Model m;
  m.SetSense(Sense::kMaximize);
  const int n = 6;
  for (int j = 0; j < n; ++j) m.AddBinaryRelaxed(rng.Uniform(0.5, 3.0));
  std::vector<double> rhs;
  for (int r = 0; r < 4; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      terms.push_back({j, rng.Uniform(0.2, 1.5)});
    }
    rhs.push_back(rng.Uniform(1.0, 4.0));
    m.AddRow(RowType::kLessEqual, rhs.back(), terms);
  }
  SimplexSolver solver;
  auto base = solver.Solve(m);
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base->status, SolveStatus::kOptimal);

  const double eps = 1e-5;
  for (int r = 0; r < 4; ++r) {
    Model m2 = m;
    // Rebuild with perturbed RHS (Model has no setter by design).
    Model mp;
    mp.SetSense(Sense::kMaximize);
    for (int j = 0; j < n; ++j) {
      mp.AddBinaryRelaxed(m.variable(j).objective);
    }
    for (int rr = 0; rr < 4; ++rr) {
      mp.AddRow(RowType::kLessEqual, rhs[rr] + (rr == r ? eps : 0.0),
                m.row(rr).terms);
    }
    auto pert = solver.Solve(mp);
    ASSERT_TRUE(pert.ok());
    ASSERT_EQ(pert->status, SolveStatus::kOptimal);
    EXPECT_NEAR(pert->objective - base->objective, base->row_duals[r] * eps,
                1e-7)
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualityPropertyTest, ::testing::Range(1, 15));

TEST(DualsTest, ReducedCostSignsAtOptimum) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int a = m.AddBinaryRelaxed(6.0);
  int b = m.AddBinaryRelaxed(1.0);
  m.AddRow(RowType::kLessEqual, 1.0, {{a, 1.0}, {b, 1.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  // a = 1 (at bound via the row), b = 0; b's reduced cost must be <= 0 in
  // a maximization (no improvement available from raising b).
  EXPECT_NEAR(sol->values[a], 1.0, 1e-9);
  EXPECT_LE(sol->reduced_costs[b], 1e-9);
}

// ---- LP writer ----

TEST(LpWriterTest, GoldenSmallModel) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 3.0, "apples");
  int y = m.AddVariable(0.0, 1.0, 5.0);
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}, {y, -2.0}}, "cap");
  m.AddRow(RowType::kEqual, 1.0, {{y, 1.0}});
  const std::string text = WriteLpString(m);
  EXPECT_EQ(text,
            "Maximize\n"
            " obj: 3 apples + 5 x1\n"
            "Subject To\n"
            " cap: apples - 2 x1 <= 4\n"
            " r1: x1 = 1\n"
            "Bounds\n"
            " 0 <= apples\n"
            " 0 <= x1 <= 1\n"
            "End\n");
}

TEST(LpWriterTest, FreeFixedAndDuplicateTerms) {
  Model m;
  int f = m.AddVariable(-kInfinity, kInfinity, 1.0, "f");
  int p = m.AddVariable(2.0, 2.0, 0.0, "p");
  m.AddRow(RowType::kGreaterEqual, -1.0, {{f, 0.5}, {f, 0.5}, {p, 1.0}});
  const std::string text = WriteLpString(m);
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("f + p >= -1"), std::string::npos);  // terms merged
  EXPECT_NE(text.find(" f free"), std::string::npos);
  EXPECT_NE(text.find(" p = 2"), std::string::npos);
}

TEST(LpWriterTest, FileRoundTripWritesReadableText) {
  Model m;
  m.AddBinaryRelaxed(1.0);
  const std::string path = testing::TempDir() + "/model.lp";
  ASSERT_TRUE(WriteLpFile(m, path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, WriteLpString(m));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lp
}  // namespace prospector
