#include "src/core/query_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/plan_merge.h"
#include "src/data/gaussian_field.h"
#include "src/obs/audit.h"
#include "src/obs/obs.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

struct World {
  net::Topology topo;
  data::GaussianField field;

  explicit World(uint64_t seed, int n = 50) {
    Rng rng(seed);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = n;
    geo.radio_range = 26.0;
    topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
    field = data::GaussianField::Random(n, 40, 60, 1, 9, &rng);
  }
};

std::vector<double> DistinctTruth(int n) {
  std::vector<double> truth(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = static_cast<double>((i * 37) % 101) + 0.01 * i;
  }
  return truth;
}

QueryPlan RandomBandwidthPlan(const net::Topology& topo, int k, int max_bw,
                              Rng* rng) {
  std::vector<int> bw(topo.num_nodes(), 0);
  for (int e = 0; e < topo.num_nodes(); ++e) {
    if (e == topo.root()) continue;
    bw[e] = 1 + static_cast<int>(rng->UniformInt(
                    static_cast<uint64_t>(max_bw)));
  }
  QueryPlan p = QueryPlan::Bandwidth(k, std::move(bw));
  p.Normalize(topo);
  return p;
}

TEST(PlanMergeTest, MergeTakesPointwiseMaxAndUnion) {
  // Root 0; chain 0-1-2 plus leaf 3 under 1.
  auto topo = net::Topology::FromParents({-1, 0, 1, 1}).value();
  QueryPlan a = QueryPlan::Bandwidth(2, {0, 2, 1, 0});
  QueryPlan b = QueryPlan::Bandwidth(4, {0, 1, 0, 1});
  Superplan sp = MergePlans({a, b}, topo, {7, 9});
  EXPECT_EQ(sp.num_queries(), 2);
  EXPECT_EQ(sp.query_ids, (std::vector<int>{7, 9}));
  EXPECT_EQ(sp.merged.kind, PlanKind::kBandwidth);
  EXPECT_EQ(sp.merged.k, 4);
  // Edge bandwidth is the pointwise max...
  EXPECT_EQ(sp.merged.bandwidth[1], 2);
  EXPECT_EQ(sp.merged.bandwidth[2], 1);
  // ...and the visited set is the union: node 3 only query b visits.
  EXPECT_EQ(sp.merged.bandwidth[3], 1);
  EXPECT_EQ(sp.merged.CountVisitedNodes(topo), 4);
}

TEST(PlanMergeTest, SingleQuerySuperplanMatchesCollectionExecutorExactly) {
  Rng rng(41);
  net::Topology topo = net::BuildRandomTree(40, 4, &rng);
  const std::vector<double> truth = DistinctTruth(40);
  QueryPlan plan = RandomBandwidthPlan(topo, 6, 3, &rng);

  net::NetworkSimulator sim_a(&topo, {}, {}, 5);
  ExecutionResult alone = CollectionExecutor::Execute(plan, truth, &sim_a);

  net::NetworkSimulator sim_b(&topo, {}, {}, 5);
  Superplan sp = MergePlans({plan}, topo);
  SuperplanResult merged = SuperplanExecutor::Execute(sp, truth, &sim_b);

  ASSERT_EQ(merged.per_query.size(), 1u);
  EXPECT_EQ(merged.per_query[0].answer, alone.answer);
  EXPECT_EQ(merged.per_query[0].arrived, alone.arrived);
  EXPECT_EQ(merged.per_query[0].edge_expected, alone.edge_expected);
  EXPECT_EQ(merged.per_query[0].edge_delivered, alone.edge_delivered);
  // Energy is the same sum in the same order — exactly equal, and the
  // sole query owns all of it.
  EXPECT_EQ(merged.trigger_energy_mj, alone.trigger_energy_mj);
  EXPECT_EQ(merged.collection_energy_mj, alone.collection_energy_mj);
  EXPECT_EQ(merged.attributed_mj[0], merged.total_energy_mj());
  EXPECT_EQ(sim_b.stats().total_energy_mj, sim_a.stats().total_energy_mj);
}

TEST(PlanMergeTest, MergedDemuxIsBitIdenticalToStandaloneExecution) {
  Rng rng(42);
  net::Topology topo = net::BuildRandomTree(60, 4, &rng);
  const int n = topo.num_nodes();
  const std::vector<double> truth = DistinctTruth(n);

  // Four co-resident queries with different shapes: three bandwidth plans
  // of different k, one node-selection plan (mixed-kind merge).
  std::vector<QueryPlan> plans;
  plans.push_back(RandomBandwidthPlan(topo, 5, 2, &rng));
  plans.push_back(RandomBandwidthPlan(topo, 10, 3, &rng));
  plans.push_back(RandomBandwidthPlan(topo, 1, 1, &rng));
  std::vector<char> chosen(n, 0);
  for (int i = 0; i < n; ++i) chosen[i] = rng.Bernoulli(0.3) ? 1 : 0;
  plans.push_back(QueryPlan::NodeSelection(3, chosen, topo));

  // Standalone baselines, each on its own loss-free simulator.
  std::vector<ExecutionResult> alone;
  double standalone_total_mj = 0.0;
  for (const QueryPlan& p : plans) {
    net::NetworkSimulator sim(&topo, {}, {}, 5);
    alone.push_back(CollectionExecutor::Execute(p, truth, &sim));
    standalone_total_mj += sim.stats().total_energy_mj;
  }

  net::NetworkSimulator sim(&topo, {}, {}, 5);
  Superplan sp = MergePlans(plans, topo);
  SuperplanResult merged = SuperplanExecutor::Execute(sp, truth, &sim);

  // Loss-free, demux must be bit-identical per query.
  ASSERT_EQ(merged.per_query.size(), plans.size());
  for (size_t q = 0; q < plans.size(); ++q) {
    EXPECT_EQ(merged.per_query[q].answer, alone[q].answer) << "query " << q;
    EXPECT_EQ(merged.per_query[q].arrived, alone[q].arrived) << "query " << q;
    EXPECT_EQ(merged.per_query[q].values_lost, 0);
    EXPECT_FALSE(merged.per_query[q].degraded);
  }

  // The shared execution must be cheaper than the standalone sum, and the
  // per-query attribution must reconcile against the audited total.
  EXPECT_GT(merged.shared_messages, 0);
  EXPECT_GT(merged.shared_values, 0);
  EXPECT_LT(merged.total_energy_mj(), standalone_total_mj);
  EXPECT_DOUBLE_EQ(merged.total_energy_mj(), sim.stats().total_energy_mj);
  double attributed = 0.0;
  for (double a : merged.attributed_mj) attributed += a;
  const obs::EnergyAuditResult audit =
      obs::CheckEnergyLedger(attributed, merged.total_energy_mj());
  EXPECT_TRUE(audit.ok) << "attributed " << attributed << " vs total "
                        << merged.total_energy_mj();
}

TEST(QueryEngineTest, RejectsWrongTruthSize) {
  World w(1);
  QueryEngine engine(&w.topo, {}, {}, QueryEngineOptions{});
  engine.AddQuery(QuerySpec{});
  EXPECT_FALSE(engine.Tick({1.0, 2.0}).ok());
}

TEST(QueryEngineTest, ZeroQueriesIdleTick) {
  World w(1);
  QueryEngine engine(&w.topo, {}, {}, QueryEngineOptions{});
  Rng rng(2);
  auto r = engine.Tick(w.field.Sample(&rng));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->kind, QueryEngine::EpochKind::kIdle);
  EXPECT_TRUE(r->per_query.empty());
  EXPECT_EQ(r->energy_mj, 0.0);
}

TEST(QueryEngineTest, FourQueriesShareTheRadioAndLedgersReconcile) {
  World w(3);
  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 4;
  QueryEngine engine(&w.topo, {}, {}, opts, 7);

  QuerySpec a;  // LP+LF, the default
  a.k = 5;
  a.energy_budget_mj = 10.0;
  QuerySpec b;
  b.k = 10;
  b.energy_budget_mj = 14.0;
  QuerySpec c;
  c.k = 3;
  c.energy_budget_mj = 8.0;
  c.planner = PlannerChoice::kLpNoFilter;
  QuerySpec d;
  d.k = 4;
  d.energy_budget_mj = 6.0;
  d.planner = PlannerChoice::kGreedy;  // node-selection joins the merge
  const int qa = engine.AddQuery(a);
  const int qb = engine.AddQuery(b);
  const int qc = engine.AddQuery(c);
  const int qd = engine.AddQuery(d);
  EXPECT_EQ(engine.num_queries(), 4);

  Rng rng(8);
  int query_epochs = 0;
  long long shared_values = 0;
  for (int t = 0; t < 30; ++t) {
    auto r = engine.Tick(w.field.Sample(&rng));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->per_query.size(), 4u);
    if (r->kind == QueryEngine::EpochKind::kQuery) {
      ++query_epochs;
      shared_values += r->shared_values;
      for (const auto& qr : r->per_query) {
        EXPECT_EQ(qr.kind, QueryEngine::QueryEpochKind::kQuery);
        EXPECT_FALSE(qr.answer.empty());
        EXPECT_GT(qr.energy_mj, 0.0);
      }
      // Attributed epoch shares sum to the epoch total.
      double shares = 0.0;
      for (const auto& qr : r->per_query) shares += qr.energy_mj;
      EXPECT_TRUE(obs::CheckEnergyLedger(shares, r->energy_mj).ok);
    }
  }
  ASSERT_GT(query_epochs, 10);
  EXPECT_GT(shared_values, 0) << "co-resident plans never shared an edge";
  EXPECT_EQ(engine.superplan().num_queries(), 4);

  // Per-query cumulative ledgers reconcile against the audited totals.
  for (int id : {qa, qb, qc, qd}) {
    EXPECT_GT(engine.query_energy_mj(id), 0.0);
    EXPECT_GT(engine.sampling_energy_mj(id), 0.0);
  }
  const double per_query_sum =
      engine.query_energy_mj(qa) + engine.query_energy_mj(qb) +
      engine.query_energy_mj(qc) + engine.query_energy_mj(qd);
  EXPECT_TRUE(
      obs::CheckEnergyLedger(per_query_sum, engine.query_energy_mj()).ok)
      << per_query_sum << " vs " << engine.query_energy_mj();
  const double all_ledgers =
      engine.total_energy_mj(qa) + engine.total_energy_mj(qb) +
      engine.total_energy_mj(qc) + engine.total_energy_mj(qd);
  EXPECT_TRUE(obs::CheckEnergyLedger(all_ledgers, engine.total_energy_mj()).ok)
      << all_ledgers << " vs " << engine.total_energy_mj();
}

TEST(QueryEngineTest, AdmissionHydratesWindowAndRetirementSticks) {
  World w(5);
  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 4;
  QueryEngine engine(&w.topo, {}, {}, opts, 9);
  QuerySpec spec;
  spec.k = 5;
  const int first = engine.AddQuery(spec);

  Rng rng(10);
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(engine.Tick(w.field.Sample(&rng)).ok());
  }
  // A latecomer starts with the incumbents' sweep history.
  QuerySpec late;
  late.k = 8;
  const int second = engine.AddQuery(late);
  EXPECT_NE(first, second);
  EXPECT_EQ(engine.samples(second).num_samples(),
            engine.samples(first).num_samples());
  EXPECT_GT(engine.samples(second).num_samples(), 0);

  bool second_answered = false;
  for (int t = 0; t < 15; ++t) {
    auto r = engine.Tick(w.field.Sample(&rng));
    ASSERT_TRUE(r.ok());
    for (const auto& qr : r->per_query) {
      if (qr.query_id == second &&
          qr.kind == QueryEngine::QueryEpochKind::kQuery) {
        second_answered = !qr.answer.empty();
      }
    }
  }
  EXPECT_TRUE(second_answered);

  // Retirement: id disappears, ticks keep serving the survivor, energy
  // totals stay monotone.
  const double total_before = engine.total_energy_mj();
  EXPECT_TRUE(engine.RemoveQuery(first));
  EXPECT_FALSE(engine.RemoveQuery(first));
  EXPECT_EQ(engine.num_queries(), 1);
  EXPECT_EQ(engine.query_ids(), (std::vector<int>{second}));
  for (int t = 0; t < 5; ++t) {
    auto r = engine.Tick(w.field.Sample(&rng));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->per_query.size(), 1u);
    EXPECT_EQ(r->per_query[0].query_id, second);
  }
  EXPECT_GE(engine.total_energy_mj(), total_before);
}

TEST(QueryEngineTest, RetireThenReadmitNeverAliasesState) {
  // Pins the fleet contract: a retired query's id, attributed-energy
  // pools, and health windows can never be revived by a newcomer.
  World w(11);
  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 4;
  QueryEngine engine(&w.topo, {}, {}, opts, 13);
  QuerySpec spec;
  spec.k = 4;
  const int victim = engine.AddQuery(spec);
  const int survivor = engine.AddQuery(spec);

  Rng rng(14);
  for (int t = 0; t < 12; ++t) {
    ASSERT_TRUE(engine.Tick(w.field.Sample(&rng)).ok());
  }
  const double victim_energy = engine.total_energy_mj(victim);
  const QueryHealth victim_health = engine.query_health(victim);
  EXPECT_GT(victim_energy, 0.0);
  EXPECT_GT(victim_health.scored_epochs, 0);
  const double engine_total = engine.total_energy_mj();

  ASSERT_TRUE(engine.RemoveQuery(victim));
  // The retired energy stays in the engine totals...
  EXPECT_EQ(engine.total_energy_mj(), engine_total);
  // ...and the id is burned: neither allocation path hands it out again.
  EXPECT_FALSE(engine.AddQueryWithId(victim, spec).ok());
  const int readmitted = engine.AddQuery(spec);
  EXPECT_NE(readmitted, victim);
  EXPECT_NE(readmitted, survivor);
  EXPECT_GT(readmitted, survivor);

  // The newcomer starts with fresh pools and a fresh health window, not
  // the retiree's.
  EXPECT_EQ(engine.total_energy_mj(readmitted), 0.0);
  const QueryHealth fresh = engine.query_health(readmitted);
  EXPECT_EQ(fresh.scored_epochs, 0);
  EXPECT_EQ(fresh.status, HealthStatus::kUnknown);

  // External ids can skip ahead; internal allocation never collides.
  auto external = engine.AddQueryWithId(readmitted + 5, spec);
  ASSERT_TRUE(external.ok());
  EXPECT_EQ(engine.AddQuery(spec), readmitted + 6);
  // But an ever-used external id stays refused even after retirement.
  ASSERT_TRUE(engine.RemoveQuery(readmitted + 5));
  EXPECT_FALSE(engine.AddQueryWithId(readmitted + 5, spec).ok());

  for (int t = 0; t < 5; ++t) {
    auto r = engine.Tick(w.field.Sample(&rng));
    ASSERT_TRUE(r.ok());
    for (const auto& qr : r->per_query) EXPECT_NE(qr.query_id, victim);
  }
}

TEST(QueryEngineTest, PerQueryAuditsRunAlongsideMergedQueries) {
  World w(6, 30);
  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 5;
  QueryEngine engine(&w.topo, {}, {}, opts, 11);
  QuerySpec audited;
  audited.k = 4;
  audited.energy_budget_mj = 8.0;
  audited.audit_every = 6;
  QuerySpec plain;
  plain.k = 6;
  plain.energy_budget_mj = 10.0;
  const int q_audited = engine.AddQuery(audited);
  engine.AddQuery(plain);

  Rng rng(12);
  int audits = 0;
  int merged_during_audit = 0;
  for (int t = 0; t < 60; ++t) {
    const std::vector<double> truth = w.field.Sample(&rng);
    auto r = engine.Tick(truth);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    bool this_epoch_audited = false;
    for (const auto& qr : r->per_query) {
      if (qr.kind == QueryEngine::QueryEpochKind::kAudit) {
        ASSERT_EQ(qr.query_id, q_audited);
        ++audits;
        this_epoch_audited = true;
        EXPECT_EQ(qr.answer, TrueTopK(truth, audited.k))
            << "audits must be exact";
        EXPECT_GE(qr.proven, 0);
      }
    }
    if (this_epoch_audited) {
      for (const auto& qr : r->per_query) {
        if (qr.kind == QueryEngine::QueryEpochKind::kQuery) {
          ++merged_during_audit;
          EXPECT_FALSE(qr.answer.empty());
        }
      }
    }
  }
  EXPECT_GE(audits, 3);
  EXPECT_GT(merged_during_audit, 0)
      << "the unaudited query must keep answering during audits";
  EXPECT_GT(engine.audit_energy_mj(q_audited), 0.0);
}

// --- Health monitor ------------------------------------------------------

// The acceptance scenario for HealthReport(): kill the subtree holding a
// query's entire answer and the victim must go unhealthy within
// breach_epochs (2) scored epochs, while a co-resident query whose recall
// survives the kill stays healthy.
TEST(QueryEngineHealthTest, SubtreeKillFlagsVictimWithinTwoEpochs) {
  // Star: root 0, leaves 1..6. Node 1 holds the unique top-1 value, so
  // killing it zeroes the k=1 query's recall while the k=5 query keeps
  // 4 of its 5 members (0.8 >= the 0.7 SLO floor).
  auto topo = net::Topology::FromParents({-1, 0, 0, 0, 0, 0, 0}).value();
  const std::vector<double> truth = {1.0, 100.0, 50.0, 40.0, 30.0, 20.0,
                                     10.0};
  constexpr int kKillEpoch = 5;

  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 3;
  opts.faults.KillNode(kKillEpoch, 1);
  QueryEngine engine(&topo, {}, {}, opts, 13);

  QuerySpec victim;
  victim.k = 1;
  victim.energy_budget_mj = 20.0;
  victim.manager.base_explore_probability = 0.0;
  victim.manager.boosted_explore_probability = 0.0;
  QuerySpec survivor = victim;
  survivor.k = 5;
  const int victim_id = engine.AddQuery(victim);
  const int survivor_id = engine.AddQuery(survivor);

  int victim_unhealthy_at = -1;
  for (int t = 0; t < 12; ++t) {
    auto r = engine.Tick(truth);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    for (const auto& qr : r->per_query) {
      if (qr.query_id == victim_id && qr.health == HealthStatus::kUnhealthy &&
          victim_unhealthy_at < 0) {
        victim_unhealthy_at = t;
      }
    }
    if (t < kKillEpoch && t >= opts.bootstrap_sweeps) {
      // Before the kill both queries answer perfectly: nobody is flagged.
      for (const auto& qr : r->per_query) {
        EXPECT_NE(qr.health, HealthStatus::kUnhealthy)
            << "query " << qr.query_id << " flagged before the fault at t="
            << t;
      }
    }
  }

  ASSERT_GE(victim_unhealthy_at, 0) << "victim was never flagged";
  EXPECT_LE(victim_unhealthy_at, kKillEpoch + 1)
      << "unhealthy must trip within breach_epochs=2 of the kill";

  const QueryHealth victim_health = engine.query_health(victim_id);
  EXPECT_EQ(victim_health.status, HealthStatus::kUnhealthy);
  EXPECT_GE(victim_health.consecutive_breaches, 2);
  EXPECT_NE(victim_health.breached.find("recall"), std::string::npos);
  EXPECT_DOUBLE_EQ(victim_health.last_recall, 0.0);

  const QueryHealth survivor_health = engine.query_health(survivor_id);
  EXPECT_EQ(survivor_health.status, HealthStatus::kHealthy)
      << "co-resident query breached despite recall "
      << survivor_health.last_recall;
  EXPECT_GE(survivor_health.last_recall, 0.7);

  // HealthReport lists both, in admission order, with matching verdicts.
  const std::vector<QueryHealth> report = engine.HealthReport();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].query_id, victim_id);
  EXPECT_EQ(report[0].status, HealthStatus::kUnhealthy);
  EXPECT_EQ(report[1].query_id, survivor_id);
  EXPECT_EQ(report[1].status, HealthStatus::kHealthy);

  // The planner's predicted recall and the realized residual both surface.
  EXPECT_GE(report[0].predicted_recall, 0.0);
  EXPECT_GT(report[0].recall_residual, 0.0)
      << "prediction should exceed realized recall after the kill";
}

// A disarmed SLO never trips: thresholds of -1 disable each check.
TEST(QueryEngineHealthTest, DisarmedSloNeverTrips) {
  auto topo = net::Topology::FromParents({-1, 0, 0, 0}).value();
  QueryEngineOptions opts;
  opts.bootstrap_sweeps = 2;
  opts.faults.KillNode(3, 1);
  QueryEngine engine(&topo, {}, {}, opts, 17);
  QuerySpec spec;
  spec.k = 1;
  spec.slo.min_recall = -1.0;  // nothing armed
  spec.manager.base_explore_probability = 0.0;
  spec.manager.boosted_explore_probability = 0.0;
  const int id = engine.AddQuery(spec);
  const std::vector<double> truth = {1.0, 100.0, 50.0, 40.0};
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(engine.Tick(truth).ok());
  }
  EXPECT_NE(engine.query_health(id).status, HealthStatus::kUnhealthy);
  EXPECT_NE(engine.query_health(id).status, HealthStatus::kDegraded);
}

// --- MetricsRegistry::ResetAll leakage (satellite) -----------------------

// Two engine lifetimes with a ResetAll between them must start from the
// same observability state: no counter value, flight event, or trace span
// may leak from the first run into the second run's snapshot.
TEST(QueryEngineTest, ResetAllClearsCrossRunObservabilityState) {
  const auto run_once = [] {
    World w(21, 30);
    QueryEngineOptions opts;
    opts.bootstrap_sweeps = 3;
    QueryEngine engine(&w.topo, {}, {}, opts, 19);
    QuerySpec spec;
    spec.k = 4;
    engine.AddQuery(spec);
    Rng rng(22);
    for (int t = 0; t < 8; ++t) {
      EXPECT_TRUE(engine.Tick(w.field.Sample(&rng)).ok());
    }
  };

  obs::MetricsRegistry::Global().ResetAll();
  run_once();
  const obs::MetricsSnapshot first = obs::MetricsRegistry::Global().Snapshot();
  const size_t first_flight = obs::FlightRecorder::Global().Snapshot().size();

  obs::MetricsRegistry::Global().ResetAll();
#ifndef PROSPECTOR_OBS_DISABLED
  // ResetAll wiped the flight recorder along with the metrics...
  EXPECT_TRUE(obs::FlightRecorder::Global().Snapshot().empty());
  EXPECT_GT(first_flight, 0u);
#endif
#ifndef PROSPECTOR_OBS_DISABLED
  // ...and a zeroed registry renders differently from a used one. (In OFF
  // builds both snapshots are empty, so only the leak equality below holds.)
  EXPECT_NE(obs::MetricsRegistry::Global().Snapshot().ToJson(),
            first.ToJson());
#endif

  run_once();
  const obs::MetricsSnapshot second =
      obs::MetricsRegistry::Global().Snapshot();
  // Identical runs from identical zero states leave identical counters —
  // any leak through ResetAll would break this equality. (Histograms are
  // excluded only because replan latency is wall-clock.)
  EXPECT_EQ(first.counters, second.counters);
  EXPECT_EQ(first.gauges, second.gauges);

  // A local registry's ResetAll must NOT clear the global flight recorder
  // (it only owns its own metrics).
#ifndef PROSPECTOR_OBS_DISABLED
  obs::FlightRecorder::Global().Clear();
  obs::FlightRecorder::Global().Record(obs::FlightKind::kNote, "test.keep",
                                       -1, 1.0, 0.0);
  obs::MetricsRegistry local;
  local.counter("x")->Increment();
  local.ResetAll();
  EXPECT_EQ(local.counter("x")->value(), 0);
  EXPECT_EQ(obs::FlightRecorder::Global().Snapshot().size(), 1u);
  obs::FlightRecorder::Global().Clear();
#endif
  obs::MetricsRegistry::Global().ResetAll();
}

}  // namespace
}  // namespace core
}  // namespace prospector
