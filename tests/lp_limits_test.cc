#include <gtest/gtest.h>

#include "src/lp/model.h"
#include "src/lp/simplex.h"
#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

TEST(SimplexLimitsTest, TableauMemoryGuardRefusesHugeModels) {
  // 3000 rows x ~3000 cols of doubles is ~144 MB for the two live arrays;
  // with a 1 MB cap the solver must refuse instead of allocating.
  Model m;
  const int n = 3000;
  for (int j = 0; j < n; ++j) m.AddBinaryRelaxed(1.0);
  for (int r = 0; r < n; ++r) {
    m.AddRow(RowType::kLessEqual, 1.0, {{r, 1.0}});
  }
  SimplexOptions opts;
  opts.max_tableau_bytes = 1 << 20;
  SimplexSolver solver(opts);
  auto res = solver.Solve(m);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
}

TEST(SimplexLimitsTest, IterationCapReportsLimit) {
  // A non-trivial LP with the iteration budget too small to finish.
  Rng rng(5);
  Model m;
  m.SetSense(Sense::kMaximize);
  const int n = 30;
  for (int j = 0; j < n; ++j) m.AddBinaryRelaxed(rng.Uniform(0.5, 2.0));
  for (int r = 0; r < 20; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Bernoulli(0.5)) terms.push_back({j, rng.Uniform(0.1, 1.0)});
    }
    m.AddRow(RowType::kLessEqual, rng.Uniform(1.0, 3.0), terms);
  }
  SimplexOptions opts;
  opts.max_iterations = 2;
  SimplexSolver solver(opts);
  auto res = solver.Solve(m);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, SolveStatus::kIterationLimit);
}

TEST(SimplexLimitsTest, EmptyModelIsTriviallyOptimal) {
  Model m;
  SimplexSolver solver;
  auto res = solver.Solve(m);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(res->objective, 0.0);
  EXPECT_TRUE(res->values.empty());
}

TEST(SimplexLimitsTest, ObjectiveOnlyNoRows) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int a = m.AddVariable(-1.0, 2.0, 1.0);
  int b = m.AddVariable(-3.0, 4.0, -1.0);
  SimplexSolver solver;
  auto res = solver.Solve(m);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(res->values[a], 2.0);
  EXPECT_DOUBLE_EQ(res->values[b], -3.0);
}

TEST(SimplexLimitsTest, ManyRedundantRowsStaysStable) {
  // The same constraint repeated: heavy degeneracy; the optimum must
  // still come out clean.
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0);
  for (int r = 0; r < 60; ++r) {
    m.AddRow(RowType::kLessEqual, 5.0, {{x, 1.0}});
  }
  SimplexSolver solver;
  auto res = solver.Solve(m);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->status, SolveStatus::kOptimal);
  EXPECT_NEAR(res->values[x], 5.0, 1e-9);
}

TEST(SimplexLimitsTest, TinyCoefficientsSurviveTolerances) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddRow(RowType::kLessEqual, 1e-5, {{x, 1e-4}});
  SimplexSolver solver;
  auto res = solver.Solve(m);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->status, SolveStatus::kOptimal);
  EXPECT_NEAR(res->values[x], 0.1, 1e-6);
}

}  // namespace
}  // namespace lp
}  // namespace prospector
