#include "src/lp/kkt.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace lp {
namespace {

Model RandomModel(Rng* rng, int n, int m, bool maximize) {
  Model model;
  model.SetSense(maximize ? Sense::kMaximize : Sense::kMinimize);
  for (int j = 0; j < n; ++j) {
    model.AddVariable(0.0, rng->Uniform(0.5, 2.0), rng->Uniform(-2.0, 3.0));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) {
      if (rng->Bernoulli(0.5)) terms.push_back({j, rng->Uniform(-1.0, 2.0)});
    }
    if (terms.empty()) continue;
    const double rhs = rng->Uniform(0.5, 4.0);
    model.AddRow(rng->Bernoulli(0.8) ? RowType::kLessEqual
                                     : RowType::kGreaterEqual,
                 rng->Bernoulli(0.9) ? rhs : -0.2, terms);
  }
  return model;
}

TEST(KktTest, CertifiesKnownOptimum) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddVariable(0.0, kInfinity, 3.0);
  int y = m.AddVariable(0.0, kInfinity, 5.0);
  m.AddRow(RowType::kLessEqual, 4.0, {{x, 1.0}});
  m.AddRow(RowType::kLessEqual, 12.0, {{y, 2.0}});
  m.AddRow(RowType::kLessEqual, 18.0, {{x, 3.0}, {y, 2.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->status, SolveStatus::kOptimal);
  EXPECT_TRUE(VerifyKkt(m, *sol).ok()) << VerifyKkt(m, *sol).ToString();
}

TEST(KktTest, RejectsCorruptedPrimal) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddBinaryRelaxed(1.0);
  m.AddRow(RowType::kLessEqual, 0.5, {{x, 1.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  Solution bad = *sol;
  bad.values[0] = 0.9;  // violates the row
  EXPECT_FALSE(VerifyKkt(m, bad).ok());
  Solution suboptimal = *sol;
  suboptimal.values[0] = 0.0;  // feasible but breaks strong duality
  EXPECT_FALSE(VerifyKkt(m, suboptimal).ok());
}

TEST(KktTest, RejectsCorruptedDuals) {
  Model m;
  m.SetSense(Sense::kMaximize);
  int x = m.AddBinaryRelaxed(1.0);
  m.AddRow(RowType::kLessEqual, 0.5, {{x, 1.0}});
  SimplexSolver solver;
  auto sol = solver.Solve(m);
  ASSERT_TRUE(sol.ok());
  Solution bad = *sol;
  bad.row_duals[0] = -3.0;  // wrong sign for a <= row under maximize
  EXPECT_FALSE(VerifyKkt(m, bad).ok());
}

TEST(KktTest, RejectsNonOptimalStatus) {
  Model m;
  m.AddBinaryRelaxed(1.0);
  Solution s;
  s.status = SolveStatus::kInfeasible;
  EXPECT_FALSE(VerifyKkt(m, s).ok());
}

class KktPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KktPropertyTest, EverySimplexOptimumCarriesAValidCertificate) {
  Rng rng(1100 + GetParam());
  const bool maximize = GetParam() % 2 == 0;
  const int n = 3 + static_cast<int>(rng.UniformInt(uint64_t{12}));
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{10}));
  Model model = RandomModel(&rng, n, m, maximize);
  SimplexSolver solver;
  auto sol = solver.Solve(model);
  ASSERT_TRUE(sol.ok());
  if (sol->status != SolveStatus::kOptimal) {
    GTEST_SKIP() << "instance " << ToString(sol->status);
  }
  const Status cert = VerifyKkt(model, *sol);
  EXPECT_TRUE(cert.ok()) << "seed " << GetParam() << ": " << cert.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KktPropertyTest, ::testing::Range(1, 60));

}  // namespace
}  // namespace lp
}  // namespace prospector
