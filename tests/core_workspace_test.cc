// Contract of the incremental planning workspace: threading a
// PlanningWorkspace through any planner changes how much work planning
// costs, never what plan comes out. Every planner is swept across
// sliding sample windows and topology rebuilds in three modes — no
// workspace (the from-scratch path), workspace in trust mode, workspace
// with the warm-start cross-check — and all three must agree bit for bit,
// serially and pooled. Plus the cache-policy units: lease collisions,
// PlanManager's steady-state short-circuit, and counter surfacing.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_eval.h"
#include "src/core/plan_manager.h"
#include "src/core/proof_planner.h"
#include "src/core/workspace.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

struct Instance {
  net::Topology topology;
  sampling::SampleSet samples;
  PlannerContext ctx;
  data::GaussianField field;
  Rng rng;
};

Instance MakeInstance(int n, int k, int num_samples, uint64_t seed,
                      size_t window = 0) {
  Rng rng(seed);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = 25.0;
  Instance inst{net::BuildConnectedGeometricNetwork(geo, &rng).value(),
                sampling::SampleSet::ForTopK(n, k, window), PlannerContext{},
                data::GaussianField::Random(n, 40, 60, 1, 16, &rng),
                Rng(seed ^ 0xabcdef)};
  for (int s = 0; s < num_samples; ++s) {
    inst.samples.Add(inst.field.Sample(&inst.rng));
  }
  inst.ctx.topology = &inst.topology;
  return inst;
}

void ExpectSamePlan(const QueryPlan& a, const QueryPlan& b,
                    const std::string& where) {
  EXPECT_EQ(a.kind, b.kind) << where;
  EXPECT_EQ(a.k, b.k) << where;
  EXPECT_EQ(a.bandwidth, b.bandwidth) << where;
  EXPECT_EQ(a.chosen, b.chosen) << where;
}

std::unique_ptr<Planner> MakePlanner(int which, int threads,
                                     lp::SimplexOptions simplex = {}) {
  LpPlannerOptions lp;
  lp.threads = threads;
  lp.simplex = simplex;
  switch (which) {
    case 0:
      return std::make_unique<GreedyPlanner>(GreedyPlannerOptions{threads});
    case 1:
      return std::make_unique<LpNoFilterPlanner>(lp);
    case 2:
      return std::make_unique<LpFilterPlanner>(lp);
    default:
      return std::make_unique<ProofPlanner>(lp);
  }
}

double LastLpObjective(Planner* planner, int which) {
  switch (which) {
    case 1:
      return static_cast<LpNoFilterPlanner*>(planner)->last_lp_objective();
    case 2:
      return static_cast<LpFilterPlanner*>(planner)->last_lp_objective();
    case 3:
      return static_cast<ProofPlanner*>(planner)->last_lp_objective();
    default:
      return 0.0;
  }
}

// The tentpole acceptance sweep: every planner, across a sliding window
// and a topology rebuild, plans bit-identically with no workspace and
// with a default (cross-checking) workspace. A trust-mode workspace
// (cross_check off) rides along: it must reach the same LP objective,
// but a degenerate LP may round an alternate optimal vertex into a
// different plan, so only the objective is compared there.
void RunIdentitySweep(int threads) {
  for (int which = 0; which < 4; ++which) {
    Instance inst = MakeInstance(36, 6, 10, 90 + which, /*window=*/10);

    WorkspaceOptions trust;
    trust.cross_check = false;
    WorkspaceOptions checked;  // the default: cross-check on
    PlanningWorkspace ws_trust(trust);
    PlanningWorkspace ws_checked(checked);

    auto bare_planner = MakePlanner(which, threads);
    auto trust_planner = MakePlanner(which, threads);
    auto checked_planner = MakePlanner(which, threads);

    PlannerContext trust_ctx = inst.ctx;
    trust_ctx.workspace = &ws_trust;
    PlannerContext checked_ctx = inst.ctx;
    checked_ctx.workspace = &ws_checked;

    // Proof plans need the per-edge floor covered; the others get a mid
    // budget so rounding and repair paths all engage.
    const double budget =
        which == 3 ? ProofPlanner::MinimumCost(inst.ctx) * 1.6 : 9.0;
    PlanRequest request{6, budget};

    auto plan_all = [&](const std::string& where) {
      auto a = bare_planner->Plan(inst.ctx, inst.samples, request);
      auto b = trust_planner->Plan(trust_ctx, inst.samples, request);
      auto c = checked_planner->Plan(checked_ctx, inst.samples, request);
      ASSERT_TRUE(a.ok()) << where << ": " << a.status().ToString();
      ASSERT_TRUE(b.ok()) << where << ": " << b.status().ToString();
      ASSERT_TRUE(c.ok()) << where << ": " << c.status().ToString();
      ExpectSamePlan(*a, *c, where + " (cross-check), planner " +
                                 bare_planner->name());
      if (which == 0) {
        // No LP: greedy through a workspace is deterministic outright.
        ExpectSamePlan(*a, *b, where + " (trust), planner " +
                                   bare_planner->name());
      } else {
        const double cold = LastLpObjective(bare_planner.get(), which);
        const double warm = LastLpObjective(trust_planner.get(), which);
        EXPECT_NEAR(warm, cold, 1e-6 * (1.0 + std::abs(cold)))
            << where << " (trust), planner " << bare_planner->name();
      }
    };

    plan_all("cold");
    // Slide the window: three appends (evicting three rows) per step, so
    // cached LPs tombstone old blocks and append fresh ones.
    for (int step = 0; step < 3; ++step) {
      for (int add = 0; add < 3; ++add) {
        inst.samples.Add(inst.field.Sample(&inst.rng));
      }
      plan_all("slide step " + std::to_string(step));
    }
    // Budget drift patches the RHS without rebuilding.
    request.energy_budget_mj *= 1.25;
    plan_all("budget drift");

    // Topology rebuild: a fresh epoch must invalidate every cache.
    Rng rng2(1234 + which);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = 36;
    geo.radio_range = 28.0;
    net::Topology rebuilt =
        net::BuildConnectedGeometricNetwork(geo, &rng2).value();
    EXPECT_NE(rebuilt.epoch(), inst.topology.epoch());
    inst.topology = std::move(rebuilt);
    request.energy_budget_mj =
        which == 3 ? ProofPlanner::MinimumCost(inst.ctx) * 1.6 : 9.0;
    plan_all("after rebuild");
    plan_all("steady state on rebuilt tree");

    // The workspaces must actually have been exercised, not bypassed.
    const WorkspaceCounters t = ws_trust.counters();
    EXPECT_GT(t.topo_hits + t.topo_misses, 0)
        << bare_planner->name() << " never touched the topology caches";
    if (which != 0) {  // greedy has no LP
      EXPECT_GT(t.lp_misses, 0) << bare_planner->name();
      EXPECT_GT(t.lp_hits, 0)
          << bare_planner->name() << " never reused a cached LP";
      EXPECT_GT(t.lp_patches, 0) << bare_planner->name();
    }
  }
}

TEST(WorkspaceIdentityTest, AllPlannersBitIdenticalSerial) {
  RunIdentitySweep(/*threads=*/1);
}

TEST(WorkspaceIdentityTest, AllPlannersBitIdenticalPooled) {
  RunIdentitySweep(/*threads=*/4);
}

// The acceptance gate for the revised simplex engine: every planner run
// with the dense oracle forced and with the revised engine forced (per
// solve cross-check on, so any status/objective divergence aborts inside
// the solver) must reach the same LP objective. In a
// -DPROSPECTOR_LP_CROSSCHECK=ON build, where every revised solve returns
// the dense oracle's solution, the plans themselves are bit-identical —
// a degenerate LP cannot round an alternate vertex into a different plan.
TEST(WorkspaceIdentityTest, PlansAgreeAcrossSimplexEnginesUnderCrossCheck) {
  for (int which = 0; which < 4; ++which) {
    Instance inst = MakeInstance(40, 6, 12, 400 + which);

    lp::SimplexOptions dense_opts;
    dense_opts.algorithm = lp::SimplexAlgorithm::kDense;
    lp::SimplexOptions revised_opts;
    revised_opts.algorithm = lp::SimplexAlgorithm::kRevised;
    revised_opts.cross_check = true;

    auto dense_planner = MakePlanner(which, /*threads=*/0, dense_opts);
    auto revised_planner = MakePlanner(which, /*threads=*/0, revised_opts);

    const double budget =
        which == 3 ? ProofPlanner::MinimumCost(inst.ctx) * 1.6 : 9.0;
    PlanRequest request{6, budget};

    auto dense_plan = dense_planner->Plan(inst.ctx, inst.samples, request);
    auto revised_plan = revised_planner->Plan(inst.ctx, inst.samples, request);
    ASSERT_TRUE(dense_plan.ok()) << dense_plan.status().ToString();
    ASSERT_TRUE(revised_plan.ok()) << revised_plan.status().ToString();

    const std::string where = "planner " + std::string(dense_planner->name());
    if (which == 0) {
      // No LP in greedy: engine choice cannot matter.
      ExpectSamePlan(*dense_plan, *revised_plan, where);
      continue;
    }
    const double dense_obj = LastLpObjective(dense_planner.get(), which);
    const double revised_obj = LastLpObjective(revised_planner.get(), which);
    EXPECT_NEAR(revised_obj, dense_obj, 1e-6 * (1.0 + std::abs(dense_obj)))
        << where;
#ifdef PROSPECTOR_LP_CROSSCHECK
    ExpectSamePlan(*dense_plan, *revised_plan, where);
#endif
  }
}

TEST(WorkspaceIdentityTest, PlanSweepIdenticalWithWorkspace) {
  Instance inst = MakeInstance(40, 8, 12, 77);
  std::vector<PlanRequest> requests;
  for (double budget : {3.0, 6.0, 9.0, 12.0}) {
    requests.push_back(PlanRequest{8, budget});
  }
  PlannerFactory factory = [] { return std::make_unique<LpFilterPlanner>(); };

  const auto bare = PlanSweep(factory, inst.ctx, inst.samples, requests);
  PlanningWorkspace ws;
  util::ThreadPool pool(4);
  // Two sweeps through one workspace: the second hits the per-request
  // cached LPs (lease key = request index), pooled on top.
  for (int round = 0; round < 2; ++round) {
    const auto cached = PlanSweep(factory, inst.ctx, inst.samples, requests,
                                  &pool, &ws);
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(bare[i].ok() && cached[i].ok());
      ExpectSamePlan(*bare[i], *cached[i],
                     "request " + std::to_string(i) + " round " +
                         std::to_string(round));
    }
  }
  EXPECT_GT(ws.counters().lp_hits, 0);
}

TEST(WorkspaceTest, LeaseCollisionFallsBackToThrowawayEntry) {
  PlanningWorkspace ws;
  auto lease1 = ws.AcquireLp(LpKind::kNoFilter, 0);
  ASSERT_TRUE(lease1);
  lease1.get()->built = true;
  lease1.get()->topo_epoch = 42;

  // Same slot while leased out: a usable throwaway, not the cached entry.
  auto lease2 = ws.AcquireLp(LpKind::kNoFilter, 0);
  ASSERT_TRUE(lease2);
  EXPECT_FALSE(lease2.get()->built);
  lease2.get()->topo_epoch = 7;  // must not leak into the cache
  lease2.Release();
  lease1.Release();

  auto lease3 = ws.AcquireLp(LpKind::kNoFilter, 0);
  ASSERT_TRUE(lease3);
  EXPECT_TRUE(lease3.get()->built);
  EXPECT_EQ(lease3.get()->topo_epoch, 42u);

  // Distinct kinds and keys are distinct slots.
  auto other_kind = ws.AcquireLp(LpKind::kFilter, 0);
  auto other_key = ws.AcquireLp(LpKind::kNoFilter, 1);
  EXPECT_FALSE(other_kind.get()->built);
  EXPECT_FALSE(other_key.get()->built);
}

TEST(WorkspaceTest, ClearDropsCachesAndInFlightLeases) {
  PlanningWorkspace ws;
  {
    auto lease = ws.AcquireLp(LpKind::kProof, 3);
    lease.get()->built = true;
    ws.Clear();  // the lease predates the Clear; its entry must be dropped
  }
  auto again = ws.AcquireLp(LpKind::kProof, 3);
  EXPECT_FALSE(again.get()->built);
}

TEST(WorkspaceTest, CountersAppearInMetricsSnapshot) {
#ifdef PROSPECTOR_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out in OBS=OFF builds";
#endif
  obs::MetricsRegistry::Global().Reset();
  Instance inst = MakeInstance(30, 5, 8, 55);
  PlanningWorkspace ws;
  PlannerContext ctx = inst.ctx;
  ctx.workspace = &ws;
  LpNoFilterPlanner planner;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(planner.Plan(ctx, inst.samples, PlanRequest{5, 8.0}).ok());
  }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  auto counter = [&](const std::string& name) -> int64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return -1;
  };
  EXPECT_GT(counter("workspace.topo.miss"), 0);
  EXPECT_GT(counter("workspace.topo.hit"), 0);
  EXPECT_EQ(counter("workspace.lp.miss"), 1);
  EXPECT_EQ(counter("workspace.lp.hit"), 1);
  EXPECT_GT(counter("workspace.lp.patch"), 0);
}

// A planner that records how often it actually runs — the probe for
// PlanManager's steady-state short-circuit.
class CountingPlanner : public Planner {
 public:
  Result<QueryPlan> Plan(const PlannerContext& ctx,
                         const sampling::SampleSet& samples,
                         const PlanRequest& request) override {
    ++calls;
    return inner.Plan(ctx, samples, request);
  }
  std::string name() const override { return "counting"; }

  GreedyPlanner inner;
  int calls = 0;
};

TEST(PlanManagerWorkspaceTest, SteadyStateReplansAreShortCircuited) {
  Instance inst = MakeInstance(30, 5, 10, 66);
  PlanningWorkspace ws;
  PlannerContext ctx = inst.ctx;
  ctx.workspace = &ws;
  net::NetworkSimulator sim(&inst.topology, ctx.energy);

  CountingPlanner planner;
  PlanManager manager(&planner, PlanRequest{5, 8.0});

  auto first = manager.MaybeReplan(ctx, inst.samples, &sim);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  EXPECT_EQ(planner.calls, 1);

  // Nothing moved: the decision memo answers without planning.
  for (int i = 0; i < 3; ++i) {
    auto again = manager.MaybeReplan(ctx, inst.samples, &sim);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(*again);
  }
  EXPECT_EQ(planner.calls, 1);

  // A new sample bumps the window version; the next call must re-plan.
  inst.samples.Add(inst.field.Sample(&inst.rng));
  ASSERT_TRUE(manager.MaybeReplan(ctx, inst.samples, &sim).ok());
  EXPECT_EQ(planner.calls, 2);

  // Invalidation (a heal) wipes the memo too.
  manager.InvalidatePlan();
  auto reinstalled = manager.MaybeReplan(ctx, inst.samples, &sim);
  ASSERT_TRUE(reinstalled.ok());
  EXPECT_TRUE(*reinstalled);
  EXPECT_EQ(planner.calls, 3);
}

TEST(PlanManagerWorkspaceTest, NoWorkspaceMeansNoShortCircuit) {
  Instance inst = MakeInstance(30, 5, 10, 67);
  net::NetworkSimulator sim(&inst.topology, inst.ctx.energy);
  CountingPlanner planner;
  PlanManager manager(&planner, PlanRequest{5, 8.0});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager.MaybeReplan(inst.ctx, inst.samples, &sim).ok());
  }
  EXPECT_EQ(planner.calls, 3);  // the seed behavior: every call plans
}

TEST(TopKAccuracyTest, EmptyTruthYieldsVacuousRecallNotDivByZero) {
  ExecutionResult result;  // no answers either
  AccuracyMetrics m = TopKAccuracy(result, /*truth=*/{}, /*k=*/5);
  EXPECT_EQ(m.recall, 1.0);
  EXPECT_EQ(m.answered, 0);

  // Answers against an empty truth: still no crash, recall stays vacuous,
  // precision reports the all-miss.
  result.answer.push_back(Reading{3, 1.5});
  m = TopKAccuracy(result, /*truth=*/{}, /*k=*/5);
  EXPECT_EQ(m.recall, 1.0);
  EXPECT_EQ(m.precision, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace prospector
