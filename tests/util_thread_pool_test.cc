#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/util/thread_pool.h"

namespace prospector {
namespace util {
namespace {

TEST(ThreadPoolTest, InlinePoolRunsWholeRangeOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> calls;
  pool.ParallelFor(5, [&](int begin, int end) {
    calls.push_back(begin);
    calls.push_back(end);
  });
  // A single body invocation covering [0, 5): no worker threads involved.
  EXPECT_EQ(calls, (std::vector<int>{0, 5}));
}

TEST(ThreadPoolTest, NonPositiveThreadCountClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int n = 1000;
  std::vector<std::atomic<int>> touched(n);
  pool.ParallelFor(n, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pool.ParallelFor(3, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (int i = 0; i < 3; ++i) EXPECT_EQ(touched[i].load(), 1);
  pool.ParallelFor(0, [&](int, int) { FAIL() << "empty range must not run"; });
}

TEST(ThreadPoolTest, ParallelReduceMatchesSequentialSum) {
  ThreadPool pool(4);
  const int n = 257;  // not a multiple of the thread count
  const int64_t got = pool.ParallelReduce<int64_t>(
      n, 0, [](int i) { return static_cast<int64_t>(i) * i; },
      [](int64_t acc, int64_t v) { return acc + v; });
  int64_t want = 0;
  for (int i = 0; i < n; ++i) want += static_cast<int64_t>(i) * i;
  EXPECT_EQ(got, want);
}

TEST(ThreadPoolTest, FloatingPointReduceIsBitIdenticalAcrossThreadCounts) {
  // Non-associative combiner: naive double summation of values at wildly
  // different magnitudes. Index-ordered combining must make every thread
  // count produce the exact same bits.
  const int n = 10000;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) {
    values[i] = (i % 7 == 0 ? 1e16 : 1.0) / (1.0 + i);
  }
  auto sum_with = [&](int threads) {
    ThreadPool pool(threads);
    return pool.ParallelReduce<double>(
        n, 0.0, [&](int i) { return values[i]; },
        [](double acc, double v) { return acc + v; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(4));
  EXPECT_EQ(serial, sum_with(7));
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      // A nested loop on the same pool must not wait on pool workers.
      pool.ParallelFor(4, [&](int b2, int e2) { total.fetch_add(e2 - b2); });
    }
  });
  EXPECT_EQ(total.load(), 8 * 4);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    const int got = pool.ParallelReduce<int>(
        100, 0, [](int) { return 1; }, [](int acc, int v) { return acc + v; });
    ASSERT_EQ(got, 100);
  }
}

}  // namespace
}  // namespace util
}  // namespace prospector
