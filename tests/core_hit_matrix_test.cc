// Contract of the bit-packed hit matrix: a synced HitMatrix is bit-exact
// with the SampleSet window it mirrors — Contributes, column sums, and
// total ones all agree — and the packed SampleHits overloads return the
// same integers as the dense per-sample recurrence, for both plan kinds.
// The equivalence is exercised across the maintenance paths (fresh build,
// sliding-window tombstone+append syncs, remap/Recent rebuilds, tombstone
// compaction) and at awkward sizes (node and sample counts straddling the
// 64-bit word boundary). Plus the workspace cache policy: clone-on-write
// keeps frozen copies valid for prior holders, and Clear() drops the cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/hit_matrix.h"
#include "src/core/plan_eval.h"
#include "src/core/workspace.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

sampling::SampleSet MakeSamples(int n, int k, int num_samples, uint64_t seed,
                                size_t window = 0) {
  Rng rng(seed);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, k, window);
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  for (int s = 0; s < num_samples; ++s) samples.Add(field.Sample(&rng));
  return samples;
}

void ExpectBitExact(const HitMatrix& hits, const sampling::SampleSet& samples,
                    const std::string& where) {
  ASSERT_TRUE(hits.InSyncWith(samples)) << where;
  ASSERT_EQ(hits.num_nodes(), samples.num_nodes()) << where;
  ASSERT_EQ(hits.num_samples(), samples.num_samples()) << where;
  for (int j = 0; j < samples.num_samples(); ++j) {
    for (int i = 0; i < samples.num_nodes(); ++i) {
      EXPECT_EQ(hits.Contributes(j, i), samples.Contributes(j, i))
          << where << " j=" << j << " i=" << i;
    }
  }
  EXPECT_EQ(hits.column_sums(), samples.column_sums()) << where;
  EXPECT_EQ(hits.total_ones(), samples.total_ones()) << where;
}

TEST(HitMatrixTest, FreshSyncMatchesWindowAtWordBoundarySizes) {
  // Node counts below, at, and just past the 64-bit word boundary; sample
  // counts chosen so the live-slot mask also straddles a word.
  for (int n : {13, 63, 64, 65, 130}) {
    for (int s : {1, 63, 65}) {
      sampling::SampleSet samples = MakeSamples(n, 4, s, 0x5eed + n * 131 + s);
      HitMatrix hits;
      hits.Sync(samples);
      ExpectBitExact(hits, samples,
                     "n=" + std::to_string(n) + " s=" + std::to_string(s));
      // A second sync of an unchanged window is a no-op that stays exact.
      hits.Sync(samples);
      ExpectBitExact(hits, samples, "resync n=" + std::to_string(n));
    }
  }
}

TEST(HitMatrixTest, SlidingWindowSyncsStayExact) {
  const int n = 70;  // rows span two words
  Rng rng(0xbeef);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, 5, 48);
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  HitMatrix hits;
  obs::MetricsRegistry::Global().Reset();
  hits.Sync(samples);  // empty window
  EXPECT_EQ(hits.num_samples(), 0);
  // Grow into the window (pure appends), then slide it repeatedly
  // (tombstone + append per step); re-sync at several cadences so syncs
  // see single-row and multi-row deltas.
  for (int step = 0; step < 200; ++step) {
    samples.Add(field.Sample(&rng));
    if (step % 7 == 0 || step > 150) {
      hits.Sync(samples);
      ExpectBitExact(hits, samples, "step=" + std::to_string(step));
    }
  }
  // The slides above must not have degenerated into rebuilds: tombstone
  // mass stays bounded, so only the compaction threshold may rebuild.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  int64_t incremental = 0;
  int64_t rebuilds = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "hit_matrix.incremental_syncs") incremental = v;
    if (name == "hit_matrix.rebuilds") rebuilds = v;
  }
  EXPECT_GT(incremental, 0);
  EXPECT_LE(rebuilds, 2);  // initial build (+ at most one compaction)
}

TEST(HitMatrixTest, TombstoneCompactionKeepsExactness) {
  // A tiny window slid far past the compaction threshold (dead slots >
  // window + 64) with a sync per step, forcing the compaction rebuild path.
  const int n = 30;
  Rng rng(0xc0de);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, 3, 8);
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  HitMatrix hits;
  for (int step = 0; step < 120; ++step) {
    samples.Add(field.Sample(&rng));
    hits.Sync(samples);
    ExpectBitExact(hits, samples, "step=" + std::to_string(step));
  }
}

TEST(HitMatrixTest, RemapAndRecentRebuildToExactness) {
  const int n = 40;
  sampling::SampleSet samples = MakeSamples(n, 4, 30, 0xfeed);
  HitMatrix hits;
  hits.Sync(samples);

  // Recent() is a new lineage: the same matrix must detect it and rebuild.
  sampling::SampleSet recent = samples.Recent(10);
  hits.Sync(recent);
  ExpectBitExact(hits, recent, "recent");

  // Remap (topology rebuild): drop a node, shuffle ids.
  std::vector<int> new_id(n);
  for (int i = 0; i < n; ++i) new_id[i] = i == 7 ? -1 : (i < 7 ? i : i - 1);
  sampling::SampleSet remapped = samples.Remapped(new_id, n - 1);
  hits.Sync(remapped);
  ExpectBitExact(hits, remapped, "remapped");

  // Syncing back against the original window (an older process-wide stamp)
  // is a version-backwards transition — also a rebuild, also exact.
  hits.Sync(samples);
  ExpectBitExact(hits, samples, "back-to-original");
}

TEST(HitMatrixTest, PackedSampleHitsMatchesDenseForBothPlanKinds) {
  const int n = 90;
  Rng rng(0xabc);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = 25.0;
  net::Topology topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  sampling::SampleSet samples = MakeSamples(n, 6, 70, 0xdef);
  HitMatrix hits;
  hits.Sync(samples);

  Rng plan_rng(0x9);
  // Node-selection plan: a random half of the nodes.
  std::vector<char> chosen(n, 0);
  for (int i = 0; i < n; ++i) {
    chosen[i] = static_cast<char>(plan_rng.UniformInt(0, 1));
  }
  QueryPlan selection =
      QueryPlan::NodeSelection(6, std::move(chosen), topo);
  selection.Normalize(topo);
  // Bandwidth plan: random small per-edge budgets (including zeros, which
  // prune whole subtrees in the packed recurrence).
  std::vector<int> bw(n, 0);
  for (int i = 0; i < n; ++i) bw[i] = static_cast<int>(plan_rng.UniformInt(0, 3));
  QueryPlan bandwidth = QueryPlan::Bandwidth(6, std::move(bw));
  bandwidth.Normalize(topo);

  for (const QueryPlan* plan : {&selection, &bandwidth}) {
    int dense_total = 0;
    for (int j = 0; j < samples.num_samples(); ++j) {
      const int dense = SampleHitsForSample(*plan, topo, samples, j);
      const int packed = SampleHitsForSample(*plan, topo, hits, j);
      EXPECT_EQ(packed, dense) << "j=" << j;
      dense_total += dense;
    }
    EXPECT_EQ(SampleHits(*plan, topo, hits), dense_total);
    EXPECT_EQ(SampleHits(*plan, topo, samples), dense_total);
    util::ThreadPool pool(3);
    EXPECT_EQ(SampleHits(*plan, topo, hits, &pool), dense_total);
  }
}

TEST(HitMatrixTest, WorkspaceCacheClonesOnWriteAndClears) {
  const int n = 50;
  Rng rng(0x77);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, 4, 0);
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));

  obs::MetricsRegistry::Global().Reset();
  PlanningWorkspace ws;
  std::shared_ptr<const HitMatrix> first = ws.Hits(samples);
  ExpectBitExact(*first, samples, "first");
  // Unchanged window: same frozen object back, counted as a hit.
  EXPECT_EQ(ws.Hits(samples).get(), first.get());

  // Slide the window: the holder of `first` must keep reading the frozen
  // copy while the workspace serves a fresh clone.
  const int old_samples = first->num_samples();
  const uint64_t old_version = first->set_version();
  samples.Add(field.Sample(&rng));
  std::shared_ptr<const HitMatrix> second = ws.Hits(samples);
  EXPECT_NE(second.get(), first.get());
  ExpectBitExact(*second, samples, "second");
  EXPECT_EQ(first->num_samples(), old_samples);
  EXPECT_EQ(first->set_version(), old_version);

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name == "workspace.hits.hit") cache_hits = v;
    if (name == "workspace.hits.miss") cache_misses = v;
  }
  EXPECT_EQ(cache_hits, 1);
  EXPECT_EQ(cache_misses, 2);

  // Clear() drops the cache; the next call rebuilds rather than reusing.
  ws.Clear();
  std::shared_ptr<const HitMatrix> third = ws.Hits(samples);
  EXPECT_NE(third.get(), second.get());
  ExpectBitExact(*third, samples, "after-clear");

  // The workspace-free helper builds a throwaway matrix.
  std::shared_ptr<const HitMatrix> standalone = GetHitMatrix(nullptr, samples);
  ExpectBitExact(*standalone, samples, "standalone");
}

}  // namespace
}  // namespace core
}  // namespace prospector
