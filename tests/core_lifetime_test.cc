#include "src/core/lifetime.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/lp_filter_planner.h"
#include "src/core/naive.h"
#include "src/data/gaussian_field.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

TEST(LifetimeTest, PerNodeEnergyMatchesLedgerAttribution) {
  net::Topology topo = net::BuildChain(3);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 2, 1});
  const std::vector<double> load = ExpectedPerNodeEnergy(p, sim);
  const net::EnergyModel e;
  // Node 2 sends 1 value; node 1 sends 2 values and broadcasts the
  // trigger to node 2; the root broadcasts to node 1.
  EXPECT_NEAR(load[2], e.MessageCost(1), 1e-12);
  EXPECT_NEAR(load[1], e.MessageCost(2) + e.BroadcastCost(), 1e-12);
  EXPECT_NEAR(load[0], e.BroadcastCost(), 1e-12);
}

TEST(LifetimeTest, FirstDeathArithmetic) {
  net::Topology topo = net::BuildChain(3);
  BatteryModel batteries = BatteryModel::Uniform(3, 100.0);
  LifetimeEstimate est = EstimateLifetime(topo, batteries, {0.0, 4.0, 2.0});
  EXPECT_NEAR(est.queries_until_first_death, 25.0, 1e-12);
  EXPECT_EQ(est.first_casualty, 1);
  // Node 1 shields node 2's demand: its death partitions the network.
  EXPECT_NEAR(est.queries_until_partition, 25.0, 1e-12);
}

TEST(LifetimeTest, LeafDeathsDoNotPartition) {
  net::Topology topo = net::BuildStar(4);
  BatteryModel batteries = BatteryModel::Uniform(4, 10.0);
  LifetimeEstimate est = EstimateLifetime(topo, batteries, {0, 1.0, 2.0, 0.5});
  EXPECT_NEAR(est.queries_until_first_death, 5.0, 1e-12);
  EXPECT_EQ(est.first_casualty, 2);
  EXPECT_TRUE(std::isinf(est.queries_until_partition));
}

TEST(LifetimeTest, IdleNetworkLivesForever) {
  net::Topology topo = net::BuildChain(3);
  BatteryModel batteries = BatteryModel::Uniform(3, 10.0);
  LifetimeEstimate est = EstimateLifetime(topo, batteries, {0.0, 0.0, 0.0});
  EXPECT_TRUE(std::isinf(est.queries_until_first_death));
  EXPECT_EQ(est.first_casualty, -1);
}

TEST(LifetimeTest, BudgetedPlansOutliveNaiveK) {
  Rng rng(31);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 70;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(70, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(70, 10);
  for (int s = 0; s < 15; ++s) samples.Add(field.Sample(&rng));

  PlannerContext ctx;
  ctx.topology = &topo;
  net::NetworkSimulator sim(&topo, ctx.energy);
  const BatteryModel batteries = BatteryModel::Uniform(70, 50000.0);

  LpFilterPlanner planner;
  auto plan = planner.Plan(ctx, samples, PlanRequest{10, 8.0});
  ASSERT_TRUE(plan.ok());
  const LifetimeEstimate approx =
      EstimatePlanLifetime(*plan, sim, batteries);
  const LifetimeEstimate naive =
      EstimatePlanLifetime(MakeNaiveKPlan(topo, 10), sim, batteries);
  EXPECT_GT(approx.queries_until_first_death,
            naive.queries_until_first_death);
}

}  // namespace
}  // namespace core
}  // namespace prospector
