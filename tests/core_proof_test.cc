#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/exact.h"
#include "src/data/gaussian_field.h"
#include "src/core/executor.h"
#include "src/core/oracle.h"
#include "src/core/proof_executor.h"
#include "src/core/proof_planner.h"
#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

std::vector<double> RandomTruth(int n, Rng* rng) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = rng->Uniform(0.0, 100.0);
  return v;
}

// True top-t of the subtree rooted at u.
std::vector<Reading> SubtreeTop(const net::Topology& topo,
                                const std::vector<double>& truth, int u,
                                int t) {
  std::vector<Reading> rs;
  for (int d : topo.DescendantsOf(u)) rs.push_back({d, truth[d]});
  SortReadings(&rs);
  if (static_cast<int>(rs.size()) > t) rs.resize(t);
  return rs;
}

QueryPlan RandomProofPlan(const net::Topology& topo, int k, Rng* rng) {
  std::vector<int> bw(topo.num_nodes(), 0);
  for (int e = 1; e < topo.num_nodes(); ++e) {
    bw[e] = 1 + static_cast<int>(rng->UniformInt(
                    static_cast<uint64_t>(topo.subtree_size(e))));
  }
  return QueryPlan::Bandwidth(k, std::move(bw), /*proof_carrying=*/true);
}

// ---- Lemma 1: the values proven by a node are exactly the top values of
// its subtree. ----
class ProofLemmaTest : public ::testing::TestWithParam<int> {};

TEST_P(ProofLemmaTest, ProvenPrefixIsSubtreeTop) {
  Rng rng(GetParam());
  const int n = 8 + static_cast<int>(rng.UniformInt(uint64_t{30}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
  net::Topology topo = net::BuildRandomTree(n, 4, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);
  QueryPlan plan = RandomProofPlan(topo, k, &rng);

  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ProofExecutor exec(&plan, &sim);
  exec.ExecutePhase1(truth);

  for (int u = 0; u < n; ++u) {
    const int t = exec.proven_count(u);
    const std::vector<Reading>& mem = exec.retrieved(u);
    ASSERT_LE(t, static_cast<int>(mem.size()));
    const std::vector<Reading> expect = SubtreeTop(topo, truth, u, t);
    for (int r = 0; r < t; ++r) {
      EXPECT_EQ(mem[r].node, expect[r].node)
          << "node " << u << " proven rank " << r << " (seed " << GetParam()
          << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofLemmaTest, ::testing::Range(1, 60));

TEST(ProofExecutorTest, FullBandwidthProvesEverything) {
  // bandwidth = subtree size everywhere: every node forwards its whole
  // subtree, so every value is proven via (c.3) and the root proves all.
  Rng rng(9);
  const int n = 25;
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  std::vector<int> bw(n, 0);
  for (int e = 1; e < n; ++e) bw[e] = topo.subtree_size(e);
  QueryPlan plan = QueryPlan::Bandwidth(5, std::move(bw), true);
  const std::vector<double> truth = RandomTruth(n, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ProofExecutor exec(&plan, &sim);
  ExecutionResult r = exec.ExecutePhase1(truth);
  EXPECT_EQ(exec.proven_count(0), n);
  EXPECT_EQ(r.proven_count, 5);
  EXPECT_EQ(r.answer, TrueTopK(truth, 5));
}

TEST(ProofExecutorTest, PaperFigure2Scenario) {
  // A node with local value 5 and three child subtrees returning
  // (9,8,7,6,4), (8,6), (7,3): charged with returning five values, it can
  // prove the first four but not the fifth (the middle subtree might hide
  // a value between 6 and... — see Figure 2 of the paper).
  // Topology: root 0 owns value 5; children 1, 2, 3 are chains/subtrees.
  // We model child subtrees as stars whose values produce exactly the
  // lists above with full proven counts.
  auto topo = net::Topology::FromParents(
                  {-1, 0, 0, 0, 1, 1, 1, 1, 2, 3})
                  .value();
  // children(1) = {4,5,6,7} -> subtree(1) = {1,4,5,6,7} values 9,8,7,6,4
  // children(2) = {8}      -> subtree(2) = {2,8}       values 8,6
  // children(3) = {9}      -> subtree(3) = {3,9}       values 7,3
  std::vector<double> truth{5, 9, 8, 7, 8.5, 7.5, 6, 4, 6.5, 3};
  // subtree(1) values: node1=9, node4=8.5, node5=7.5, node6=6, node7=4.
  // subtree(2): node2=8, node8=6.5. subtree(3): node3=7, node9=3.
  std::vector<int> bw(10, 0);
  bw[1] = 5;  // child 1 returns its whole subtree (proves all of it)
  bw[4] = bw[5] = bw[6] = bw[7] = 1;
  bw[2] = 2;  // child 2 returns both its values
  bw[8] = 1;
  bw[3] = 2;  // child 3 returns both
  bw[9] = 1;
  QueryPlan plan = QueryPlan::Bandwidth(5, std::move(bw), true);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ProofExecutor exec(&plan, &sim);
  ExecutionResult r = exec.ExecutePhase1(truth);
  // Everything is returned here, so the root proves all; instead check an
  // intermediate configuration: cut child 2's bandwidth to 1 so that its
  // subtree can hide values, then only values above its proven 8 are safe.
  net::NetworkSimulator sim2(&topo, net::EnergyModel{});
  plan.bandwidth[2] = 1;  // child 2 returns only its top value (8), proven
  ProofExecutor exec2(&plan, &sim2);
  ExecutionResult r2 = exec2.ExecutePhase1(truth);
  // Root sees 9, 8.5, 8, 7.5, 7, ... Values > 8 are provable; 8 itself is
  // proven via (c.1); 7.5 is not (child 2 might hide a value in (6.5, 8)).
  EXPECT_GE(r.proven_count, 5);
  EXPECT_EQ(r2.proven_count, 3);
}

TEST(OracleProofTest, ProvesAllKAndVisitsAllNodes) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{30}));
    const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
    net::Topology topo = net::BuildRandomTree(n, 4, &rng);
    const std::vector<double> truth = RandomTruth(n, &rng);
    QueryPlan plan = MakeOracleProofPlan(topo, truth, k);
    EXPECT_EQ(plan.CountVisitedNodes(topo), n);
    net::NetworkSimulator sim(&topo, net::EnergyModel{});
    ProofExecutor exec(&plan, &sim);
    ExecutionResult r = exec.ExecutePhase1(truth);
    EXPECT_EQ(r.proven_count, std::min(k, n));
    EXPECT_EQ(r.answer, TrueTopK(truth, k));
  }
}

// ---- PROSPECTOR Exact: unconditionally exact, whatever the plan. ----
class MopUpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MopUpPropertyTest, MopUpAlwaysRecoversExactTopK) {
  Rng rng(1000 + GetParam());
  const int n = 8 + static_cast<int>(rng.UniformInt(uint64_t{30}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{8}));
  net::Topology topo = net::BuildRandomTree(n, 4, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);
  QueryPlan plan = RandomProofPlan(topo, k, &rng);

  // Exactness must hold in both request modes.
  for (MopUpMode mode : {MopUpMode::kBroadcast, MopUpMode::kPerChild}) {
    net::NetworkSimulator sim(&topo, net::EnergyModel{});
    ProofExecutor exec(&plan, &sim, mode);
    exec.ExecutePhase1(truth);
    ExecutionResult r = exec.ExecuteMopUp();
    EXPECT_EQ(r.answer, TrueTopK(truth, k))
        << "seed " << GetParam() << " mode "
        << (mode == MopUpMode::kBroadcast ? "broadcast" : "per-child");
  }
}

TEST(MopUpTest, PerChildModeSkipsExhaustedSubtrees) {
  // Star: the root's children are leaves that always transmit their whole
  // (single-node) subtree, so a per-child mop-up never sends any request.
  net::Topology topo = net::BuildStar(6);
  std::vector<int> bw(6, 1);
  bw[0] = 0;
  QueryPlan plan = QueryPlan::Bandwidth(3, std::move(bw), true);
  std::vector<double> truth{0, 5, 4, 3, 2, 1};
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ProofExecutor exec(&plan, &sim, MopUpMode::kPerChild);
  exec.ExecutePhase1(truth);
  const int msgs_before = sim.stats().unicast_messages;
  ExecutionResult r = exec.ExecuteMopUp();
  EXPECT_EQ(sim.stats().unicast_messages, msgs_before);
  EXPECT_EQ(r.answer, TrueTopK(truth, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MopUpPropertyTest, ::testing::Range(1, 80));

TEST(MopUpTest, NoPhase2MessagesWhenPhase1ProvesAll) {
  Rng rng(31);
  const int n = 20, k = 4;
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);
  QueryPlan plan = MakeOracleProofPlan(topo, truth, k);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ProofExecutor exec(&plan, &sim);
  ExecutionResult p1 = exec.ExecutePhase1(truth);
  ASSERT_EQ(p1.proven_count, k);
  ExecutionResult p2 = exec.ExecuteMopUp();
  EXPECT_DOUBLE_EQ(p2.collection_energy_mj, 0.0);
  EXPECT_EQ(p2.answer, TrueTopK(truth, k));
}

// ---- ProofPlanner ----

TEST(ProofPlannerTest, RejectsBudgetBelowFloor) {
  Rng rng(3);
  net::Topology topo = net::BuildRandomTree(15, 3, &rng);
  PlannerContext ctx;
  ctx.topology = &topo;
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(15, 3);
  samples.Add(RandomTruth(15, &rng));
  PlanRequest req;
  req.k = 3;
  req.energy_budget_mj = 0.5 * ProofPlanner::MinimumCost(ctx);
  ProofPlanner planner;
  auto plan = planner.Plan(ctx, samples, req);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

class ProofPlannerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ProofPlannerPropertyTest, PlansRespectFloorBudgetAndBounds) {
  Rng rng(2000 + GetParam());
  const int n = 8 + static_cast<int>(rng.UniformInt(uint64_t{16}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{5}));
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  PlannerContext ctx;
  ctx.topology = &topo;
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, k);
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 25, &rng);
  for (int s = 0; s < 6; ++s) samples.Add(field.Sample(&rng));

  PlanRequest req;
  req.k = k;
  req.energy_budget_mj =
      ProofPlanner::MinimumCost(ctx) * rng.Uniform(1.05, 1.8);
  ProofPlanner planner;
  auto plan = planner.Plan(ctx, samples, req);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->proof_carrying);
  for (int e = 1; e < n; ++e) {
    EXPECT_GE(plan->bandwidth[e], 1);
    EXPECT_LE(plan->bandwidth[e], topo.subtree_size(e));
  }
  // Budget holds after rounding repair (value-cost part + floor).
  double cost = 0.0;
  for (int e = 1; e < n; ++e) {
    cost += ctx.EdgeMessageCost(e, plan->bandwidth[e]);
    if (!topo.is_leaf(e)) cost += ctx.energy.per_byte_mj;
  }
  EXPECT_LE(cost, req.energy_budget_mj + 1e-6);

  // The plan executes and mop-up stays exact.
  const std::vector<double> truth = field.Sample(&rng);
  net::NetworkSimulator sim(&topo, ctx.energy);
  ProofExecutor exec(&plan.value(), &sim);
  exec.ExecutePhase1(truth);
  ExecutionResult r = exec.ExecuteMopUp();
  EXPECT_EQ(r.answer, TrueTopK(truth, k));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProofPlannerPropertyTest,
                         ::testing::Range(1, 25));

TEST(ProspectorExactTest, EndToEndExactAndPhaseTradeoff) {
  Rng rng(4242);
  const int n = 25, k = 5;
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  PlannerContext ctx;
  ctx.topology = &topo;
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 9, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, k);
  for (int s = 0; s < 10; ++s) samples.Add(field.Sample(&rng));
  const std::vector<double> truth = field.Sample(&rng);

  const double floor = ProofPlanner::MinimumCost(ctx);
  net::NetworkSimulator lean(&topo, ctx.energy);
  auto lean_run =
      RunProspectorExact(ctx, samples, k, floor * 1.01, truth, &lean);
  ASSERT_TRUE(lean_run.ok()) << lean_run.status().ToString();
  EXPECT_EQ(lean_run->answer, TrueTopK(truth, k));

  net::NetworkSimulator rich(&topo, ctx.energy);
  auto rich_run =
      RunProspectorExact(ctx, samples, k, floor * 1.6, truth, &rich);
  ASSERT_TRUE(rich_run.ok()) << rich_run.status().ToString();
  EXPECT_EQ(rich_run->answer, TrueTopK(truth, k));
  // More phase-1 budget means more proven up front, less phase-2 work.
  EXPECT_GE(rich_run->phase1_proven, lean_run->phase1_proven);
  EXPECT_LE(rich_run->phase2_energy_mj, lean_run->phase2_energy_mj + 1e-9);
}

}  // namespace
}  // namespace core
}  // namespace prospector
