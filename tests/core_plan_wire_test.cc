#include "src/core/plan_wire.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

TEST(PlanWireTest, SubplanForInteriorNode) {
  // Root 0 with child 1; node 1 has children 2 (used) and 3 (unused).
  auto topo = net::Topology::FromParents({-1, 0, 1, 1}).value();
  QueryPlan p = QueryPlan::Bandwidth(4, {0, 3, 2, 0}, /*proof_carrying=*/true);
  Subplan sp = SubplanFor(p, topo, 1);
  EXPECT_TRUE(sp.proof_carrying);
  EXPECT_FALSE(sp.node_selection);
  EXPECT_EQ(sp.k, 4);
  EXPECT_EQ(sp.outgoing_bandwidth, 3);
  ASSERT_EQ(sp.child_bandwidth.size(), 1u);
  EXPECT_EQ(sp.child_bandwidth[0], (std::pair<int, uint8_t>{2, 2}));
}

TEST(PlanWireTest, NodeSelectionFlagsChosen) {
  auto topo = net::Topology::FromParents({-1, 0, 1}).value();
  QueryPlan p = QueryPlan::NodeSelection(2, {0, 0, 1}, topo);
  EXPECT_FALSE(SubplanFor(p, topo, 1).chosen);
  EXPECT_TRUE(SubplanFor(p, topo, 2).chosen);
  EXPECT_TRUE(SubplanFor(p, topo, 2).node_selection);
}

TEST(PlanWireTest, EncodeDecodeRoundTrip) {
  Subplan sp;
  sp.proof_carrying = true;
  sp.chosen = true;
  sp.k = 17;
  sp.outgoing_bandwidth = 9;
  sp.child_bandwidth = {{5, 3}, {200, 1}, {70000, 255}};
  auto bytes = EncodeSubplan(sp);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->proof_carrying, sp.proof_carrying);
  EXPECT_EQ(decoded->node_selection, sp.node_selection);
  EXPECT_EQ(decoded->chosen, sp.chosen);
  EXPECT_EQ(decoded->k, sp.k);
  EXPECT_EQ(decoded->outgoing_bandwidth, sp.outgoing_bandwidth);
  EXPECT_EQ(decoded->child_bandwidth, sp.child_bandwidth);
}

TEST(PlanWireTest, WireSizeIsCompactForSmallIds) {
  // flags + k + bw + count + (1-byte id + bw) per child.
  Subplan sp;
  sp.child_bandwidth = {{3, 1}, {90, 2}};
  EXPECT_EQ(EncodeSubplan(sp).size(), 4u + 2u * 2u);
  // Large ids take 2 varint bytes.
  sp.child_bandwidth = {{300, 1}};
  EXPECT_EQ(EncodeSubplan(sp).size(), 4u + 3u);
}

TEST(PlanWireTest, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(DecodeSubplan({}).ok());
  EXPECT_FALSE(DecodeSubplan({0, 1, 2}).ok());               // too short
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 1}).ok());            // missing child
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 1, 0x85}).ok());      // truncated varint
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 0, 7}).ok());         // trailing bytes
}

TEST(PlanWireTest, PlainSubplansStillEncodeAsVersion0) {
  // Backward compatibility: without per-query entries the encoder emits
  // the legacy untagged layout, byte-for-byte, so pre-versioning nodes
  // (and the pinned install-cost model) are unaffected.
  Subplan sp;
  sp.k = 12;
  sp.outgoing_bandwidth = 5;
  sp.child_bandwidth = {{3, 1}, {90, 2}};
  auto bytes = EncodeSubplan(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 0);
  EXPECT_NE(bytes[0] & kSubplanVersionTag, kSubplanVersionTag);
}

TEST(PlanWireTest, LegacyVersion0BlobDecodes) {
  // A hand-built v0 blob, as an old node would have serialized it:
  // flags(proof_carrying) + k + bw + count + one (id, bw) child.
  const std::vector<uint8_t> legacy = {0x01, 7, 3, 1, 5, 2};
  EXPECT_EQ(SubplanWireVersion(legacy), 0);
  auto decoded = DecodeSubplan(legacy);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->proof_carrying);
  EXPECT_EQ(decoded->k, 7);
  EXPECT_EQ(decoded->outgoing_bandwidth, 3);
  ASSERT_EQ(decoded->child_bandwidth.size(), 1u);
  EXPECT_EQ(decoded->child_bandwidth[0], (std::pair<int, uint8_t>{5, 2}));
  EXPECT_TRUE(decoded->query_entries.empty());
}

TEST(PlanWireTest, VersionedRoundTripWithQueryEntries) {
  Subplan sp;
  sp.proof_carrying = true;
  sp.k = 17;
  sp.outgoing_bandwidth = 9;
  sp.child_bandwidth = {{5, 3}, {200, 1}};
  sp.query_entries = {{0, 5, 2}, {3, 10, 9}, {300, 1, 1}};
  auto bytes = EncodeSubplan(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 1);
  EXPECT_EQ(bytes[0], kSubplanVersionTag | 1);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->proof_carrying, sp.proof_carrying);
  EXPECT_EQ(decoded->k, sp.k);
  EXPECT_EQ(decoded->outgoing_bandwidth, sp.outgoing_bandwidth);
  EXPECT_EQ(decoded->child_bandwidth, sp.child_bandwidth);
  EXPECT_EQ(decoded->query_entries, sp.query_entries);
}

TEST(PlanWireTest, DecodeRejectsBadVersionedInput) {
  Subplan sp;
  sp.k = 4;
  sp.query_entries = {{1, 4, 2}};
  auto bytes = EncodeSubplan(sp);
  ASSERT_EQ(SubplanWireVersion(bytes), 1);
  // A future version we do not speak yet.
  auto future = bytes;
  future[0] = kSubplanVersionTag | 2;
  EXPECT_FALSE(DecodeSubplan(future).ok());
  // Truncations anywhere inside the query-entry section.
  for (size_t cut = 5; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DecodeSubplan(trunc).ok()) << "cut at " << cut;
  }
}

TEST(PlanWireTest, VersionSniffing) {
  EXPECT_EQ(SubplanWireVersion({}), -1);
  EXPECT_EQ(SubplanWireVersion({0x00, 1, 2, 0}), 0);
  EXPECT_EQ(SubplanWireVersion({0x07, 1, 2, 0}), 0);  // all v0 flag bits
  EXPECT_EQ(SubplanWireVersion({0xC1}), 1);
  EXPECT_EQ(SubplanWireVersion({0xC5}), 5);
}

class PlanWirePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanWirePropertyTest, EveryNodeRoundTrips) {
  Rng rng(900 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{60}));
  net::Topology topo = net::BuildRandomTree(n, 5, &rng);
  std::vector<int> bw(n, 0);
  for (int e = 1; e < n; ++e) {
    bw[e] = static_cast<int>(rng.UniformInt(uint64_t{6}));
  }
  QueryPlan p = QueryPlan::Bandwidth(5, std::move(bw), rng.Bernoulli(0.5));
  p.Normalize(topo);
  for (int u = 0; u < n; ++u) {
    const Subplan sp = SubplanFor(p, topo, u);
    auto decoded = DecodeSubplan(EncodeSubplan(sp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->outgoing_bandwidth, sp.outgoing_bandwidth);
    EXPECT_EQ(decoded->child_bandwidth, sp.child_bandwidth);
    EXPECT_EQ(SubplanWireBytes(p, topo, u),
              static_cast<int>(EncodeSubplan(sp).size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanWirePropertyTest, ::testing::Range(1, 20));

}  // namespace
}  // namespace core
}  // namespace prospector
