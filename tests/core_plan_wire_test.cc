#include "src/core/plan_wire.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

std::vector<uint8_t> MustEncode(const Subplan& sp) {
  auto bytes = EncodeSubplan(sp);
  EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
  return bytes.ok() ? *bytes : std::vector<uint8_t>{};
}

TEST(PlanWireTest, SubplanForInteriorNode) {
  // Root 0 with child 1; node 1 has children 2 (used) and 3 (unused).
  auto topo = net::Topology::FromParents({-1, 0, 1, 1}).value();
  QueryPlan p = QueryPlan::Bandwidth(4, {0, 3, 2, 0}, /*proof_carrying=*/true);
  Subplan sp = SubplanFor(p, topo, 1);
  EXPECT_TRUE(sp.proof_carrying);
  EXPECT_FALSE(sp.node_selection);
  EXPECT_EQ(sp.k, 4);
  EXPECT_EQ(sp.outgoing_bandwidth, 3);
  ASSERT_EQ(sp.child_bandwidth.size(), 1u);
  EXPECT_EQ(sp.child_bandwidth[0], (std::pair<int, int>{2, 2}));
}

TEST(PlanWireTest, NodeSelectionFlagsChosen) {
  auto topo = net::Topology::FromParents({-1, 0, 1}).value();
  QueryPlan p = QueryPlan::NodeSelection(2, {0, 0, 1}, topo);
  EXPECT_FALSE(SubplanFor(p, topo, 1).chosen);
  EXPECT_TRUE(SubplanFor(p, topo, 2).chosen);
  EXPECT_TRUE(SubplanFor(p, topo, 2).node_selection);
}

TEST(PlanWireTest, EncodeDecodeRoundTrip) {
  Subplan sp;
  sp.proof_carrying = true;
  sp.chosen = true;
  sp.k = 17;
  sp.outgoing_bandwidth = 9;
  sp.child_bandwidth = {{5, 3}, {200, 1}, {70000, 255}};
  auto bytes = MustEncode(sp);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sp);
}

TEST(PlanWireTest, WireSizeIsCompactForSmallIds) {
  // flags + k + bw + count + (1-byte id + bw) per child.
  Subplan sp;
  sp.child_bandwidth = {{3, 1}, {90, 2}};
  EXPECT_EQ(MustEncode(sp).size(), 4u + 2u * 2u);
  // Large ids take 2 varint bytes.
  sp.child_bandwidth = {{300, 1}};
  EXPECT_EQ(MustEncode(sp).size(), 4u + 3u);
}

TEST(PlanWireTest, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(DecodeSubplan({}).ok());
  EXPECT_FALSE(DecodeSubplan({0, 1, 2}).ok());               // too short
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 1}).ok());            // missing child
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 1, 0x85}).ok());      // truncated varint
  EXPECT_FALSE(DecodeSubplan({0, 1, 2, 0, 7}).ok());         // trailing bytes
  EXPECT_FALSE(DecodeSubplan({0x08, 1, 2, 0}).ok());         // reserved flag
}

TEST(PlanWireTest, DecodeRejectsOverlongVarints) {
  // Child id 5 spelled in two bytes (0x85 0x00) instead of one: decodes to
  // the same value as {5}, so accepting it would break the one-blob-per-
  // subplan bijection the golden vectors rely on.
  const std::vector<uint8_t> overlong = {0, 1, 2, 1, 0x85, 0x00, 3};
  EXPECT_FALSE(DecodeSubplan(overlong).ok());
  const std::vector<uint8_t> canonical = {0, 1, 2, 1, 5, 3};
  ASSERT_TRUE(DecodeSubplan(canonical).ok());
  // A 5-byte varint whose top byte spills past 32 bits.
  const std::vector<uint8_t> spill = {0, 1, 2, 1,
                                      0xFF, 0xFF, 0xFF, 0xFF, 0x10, 3};
  EXPECT_FALSE(DecodeSubplan(spill).ok());
}

TEST(PlanWireTest, PlainSubplansStillEncodeAsVersion0) {
  // Backward compatibility: without per-query entries the encoder emits
  // the legacy untagged layout, byte-for-byte, so pre-versioning nodes
  // (and the pinned install-cost model) are unaffected.
  Subplan sp;
  sp.k = 12;
  sp.outgoing_bandwidth = 5;
  sp.child_bandwidth = {{3, 1}, {90, 2}};
  auto bytes = MustEncode(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 0);
  EXPECT_NE(bytes[0] & kSubplanVersionTag, kSubplanVersionTag);
}

TEST(PlanWireTest, LegacyVersion0BlobDecodes) {
  // A hand-built v0 blob, as an old node would have serialized it:
  // flags(proof_carrying) + k + bw + count + one (id, bw) child.
  const std::vector<uint8_t> legacy = {0x01, 7, 3, 1, 5, 2};
  EXPECT_EQ(SubplanWireVersion(legacy), 0);
  auto decoded = DecodeSubplan(legacy);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->proof_carrying);
  EXPECT_EQ(decoded->k, 7);
  EXPECT_EQ(decoded->outgoing_bandwidth, 3);
  ASSERT_EQ(decoded->child_bandwidth.size(), 1u);
  EXPECT_EQ(decoded->child_bandwidth[0], (std::pair<int, int>{5, 2}));
  EXPECT_TRUE(decoded->query_entries.empty());
}

TEST(PlanWireTest, VersionedRoundTripWithQueryEntries) {
  Subplan sp;
  sp.proof_carrying = true;
  sp.k = 17;
  sp.outgoing_bandwidth = 9;
  sp.child_bandwidth = {{5, 3}, {200, 1}};
  sp.query_entries = {{0, 5, 2}, {3, 10, 9}, {300, 1, 1}};
  auto bytes = MustEncode(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 1);
  EXPECT_EQ(bytes[0], kSubplanVersionTag | 1);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sp);
}

TEST(PlanWireTest, ManyChildrenEncodeAsVersion2AndRoundTrip) {
  // The old encoder Cap255'd the count byte but still emitted all entries,
  // producing a blob its own decoder rejected as trailing bytes. >255
  // children must now take the varint-counted v2 layout and round-trip.
  Subplan sp;
  sp.k = 10;
  sp.outgoing_bandwidth = 10;
  for (int c = 1; c <= 300; ++c) sp.child_bandwidth.emplace_back(c, 1);
  auto bytes = MustEncode(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 2);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sp);
  EXPECT_EQ(decoded->child_bandwidth.size(), 300u);
}

TEST(PlanWireTest, LargeKAndBandwidthArePreservedNotClamped) {
  // The old SubplanFor silently rewrote k > 255 / bandwidth > 255 to 255,
  // shipping a smaller plan than the LP certified.
  auto topo = net::Topology::FromParents({-1, 0, 1}).value();
  QueryPlan p = QueryPlan::Bandwidth(1000, {0, 400, 1});
  Subplan sp = SubplanFor(p, topo, 1);
  EXPECT_EQ(sp.k, 1000);
  EXPECT_EQ(sp.outgoing_bandwidth, 400);
  auto bytes = MustEncode(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 2);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->k, 1000);
  EXPECT_EQ(decoded->outgoing_bandwidth, 400);
}

TEST(PlanWireTest, LargeQueryEntriesTakeVersion2) {
  Subplan sp;
  sp.k = 300;
  sp.query_entries = {{7, 300, 280}};
  auto bytes = MustEncode(sp);
  EXPECT_EQ(SubplanWireVersion(bytes), 2);
  auto decoded = DecodeSubplan(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sp);
}

TEST(PlanWireTest, EncodeRejectsNegativeFields) {
  Subplan sp;
  sp.k = -1;
  EXPECT_FALSE(EncodeSubplan(sp).ok());
  sp.k = 3;
  sp.child_bandwidth = {{-2, 1}};
  EXPECT_FALSE(EncodeSubplan(sp).ok());
  sp.child_bandwidth = {{2, -1}};
  EXPECT_FALSE(EncodeSubplan(sp).ok());
  sp.child_bandwidth.clear();
  sp.query_entries = {{1, -4, 0}};
  EXPECT_FALSE(EncodeSubplan(sp).ok());
}

TEST(PlanWireTest, DecodeRejectsNonMinimalVersions) {
  // v1 tag with a v0-shaped body (zero query entries): the canonical
  // spelling is version 0.
  const std::vector<uint8_t> v1_empty = {0xC1, 0x01, 7, 3, 0, 0};
  EXPECT_FALSE(DecodeSubplan(v1_empty).ok());
  // v2 blob whose every field fits a byte: the canonical spelling is v0.
  const std::vector<uint8_t> v2_small = {0xC2, 0x01, 7, 3, 0, 0};
  EXPECT_FALSE(DecodeSubplan(v2_small).ok());
}

TEST(PlanWireTest, DecodeRejectsBadVersionedInput) {
  Subplan sp;
  sp.k = 4;
  sp.query_entries = {{1, 4, 2}};
  auto bytes = MustEncode(sp);
  ASSERT_EQ(SubplanWireVersion(bytes), 1);
  // A future version we do not speak yet.
  auto future = bytes;
  future[0] = kSubplanVersionTag | 3;
  EXPECT_FALSE(DecodeSubplan(future).ok());
  // Truncations anywhere inside the query-entry section.
  for (size_t cut = 5; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DecodeSubplan(trunc).ok()) << "cut at " << cut;
  }
}

TEST(PlanWireTest, Version2TruncationsAllRejected) {
  Subplan sp;
  sp.k = 1000;
  sp.outgoing_bandwidth = 300;
  sp.child_bandwidth = {{5, 256}, {600, 2}};
  sp.query_entries = {{12, 1000, 700}};
  auto bytes = MustEncode(sp);
  ASSERT_EQ(SubplanWireVersion(bytes), 2);
  ASSERT_EQ(*DecodeSubplan(bytes), sp);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(DecodeSubplan(trunc).ok()) << "cut at " << cut;
  }
}

TEST(PlanWireTest, VersionSniffing) {
  EXPECT_EQ(SubplanWireVersion({}), -1);
  EXPECT_EQ(SubplanWireVersion({0x00, 1, 2, 0}), 0);
  EXPECT_EQ(SubplanWireVersion({0x07, 1, 2, 0}), 0);  // all v0 flag bits
  EXPECT_EQ(SubplanWireVersion({0xC1}), 1);
  EXPECT_EQ(SubplanWireVersion({0xC5}), 5);
}

TEST(PlanWireTest, FidelityHoldsForNormalizedPlans) {
  auto topo = net::Topology::FromParents({-1, 0, 1, 1, 0}).value();
  QueryPlan p = QueryPlan::Bandwidth(3, {0, 2, 1, 1, 1});
  p.Normalize(topo);
  EXPECT_TRUE(VerifyPlanWireFidelity(p, topo).ok());
  // Plans beyond the old uint8 ceiling are now faithful too.
  QueryPlan big = QueryPlan::Bandwidth(500, {0, 300, 1, 1, 400});
  // Skip Normalize's subtree clamp by checking fidelity directly: values
  // survive the wire whatever their magnitude.
  EXPECT_TRUE(VerifyPlanWireFidelity(big, topo).ok());
}

class PlanWirePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlanWirePropertyTest, EveryNodeRoundTrips) {
  Rng rng(900 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{60}));
  net::Topology topo = net::BuildRandomTree(n, 5, &rng);
  std::vector<int> bw(n, 0);
  for (int e = 1; e < n; ++e) {
    bw[e] = static_cast<int>(rng.UniformInt(uint64_t{6}));
  }
  QueryPlan p = QueryPlan::Bandwidth(5, std::move(bw), rng.Bernoulli(0.5));
  p.Normalize(topo);
  for (int u = 0; u < n; ++u) {
    const Subplan sp = SubplanFor(p, topo, u);
    auto decoded = DecodeSubplan(MustEncode(sp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, sp);
    EXPECT_EQ(SubplanWireBytes(p, topo, u),
              static_cast<int>(MustEncode(sp).size()));
  }
  EXPECT_TRUE(VerifyPlanWireFidelity(p, topo).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanWirePropertyTest, ::testing::Range(1, 20));

}  // namespace
}  // namespace core
}  // namespace prospector
