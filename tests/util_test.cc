#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/status.h"

namespace prospector {
namespace {

// ---- Status / Result ----

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  Status s = Status::Internal("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "Internal: disk on fire");
}

Status FailsThrough() {
  PROSPECTOR_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());

  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyPayloads) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// ---- Rng ----

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123), b(123), c(456);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(RngTest, UniformDoublesInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(2);
  std::vector<int> counts(7, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.UniformInt(uint64_t{7})];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 1.0 / 7.0, 0.01);
  }
}

TEST(RngTest, SignedUniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(rng.Gaussian(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(7);
  Rng child = a.Fork();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

// ---- Stats ----

TEST(RunningStatsTest, WelfordMatchesClosedForm) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, SinglePointHasZeroVariance) {
  RunningStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TopKIndicesTest, OrderAndTies) {
  EXPECT_EQ(TopKIndices({1, 9, 3, 9, 5}, 3), (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(TopKIndices({1, 2}, 5), (std::vector<int>{1, 0}));
  EXPECT_TRUE(TopKIndices({1, 2}, 0).empty());
  EXPECT_TRUE(TopKIndices({}, 3).empty());
}

TEST(QuantileTest, Interpolation) {
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4, 5}, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({10, 20}, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile({10, 20}, 1.0), 20.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, OutOfRangeQuantileClampsInsteadOfReadingOutOfBounds) {
  // q < 0 used to cast to a huge size_t index; it must clamp to the
  // minimum, and q > 1 to the maximum.
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, -0.1), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, 1.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({3, 1, 2}, -1e300), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({5, 5}, std::nan("")), 5.0);
}

}  // namespace
}  // namespace prospector
