#include "src/net/topology.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace net {
namespace {

TEST(TopologyTest, FromParentsBasic) {
  // Node 0 is the root with children {1, 2}; node 1 has children {3, 4}.
  auto res = Topology::FromParents({Topology::kNoParent, 0, 0, 1, 1});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Topology& t = res.value();
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_EQ(t.depth(0), 0);
  EXPECT_EQ(t.depth(4), 2);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.subtree_size(0), 5);
  EXPECT_EQ(t.subtree_size(1), 3);
  EXPECT_EQ(t.subtree_size(2), 1);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.children(1), (std::vector<int>{3, 4}));
}

TEST(TopologyTest, AncestorsAndDescendants) {
  auto t = Topology::FromParents({Topology::kNoParent, 0, 0, 1, 1}).value();
  EXPECT_EQ(t.AncestorsOf(4), (std::vector<int>{4, 1, 0}));
  EXPECT_EQ(t.AncestorsOf(0), (std::vector<int>{0}));
  std::vector<int> d1 = t.DescendantsOf(1);
  std::sort(d1.begin(), d1.end());
  EXPECT_EQ(d1, (std::vector<int>{1, 3, 4}));
  EXPECT_TRUE(t.IsAncestorOf(0, 4));
  EXPECT_TRUE(t.IsAncestorOf(1, 1));
  EXPECT_FALSE(t.IsAncestorOf(2, 4));
  EXPECT_FALSE(t.IsAncestorOf(4, 1));
}

TEST(TopologyTest, PathEdges) {
  auto t = Topology::FromParents({Topology::kNoParent, 0, 1, 2}).value();
  EXPECT_EQ(t.PathEdges(3), (std::vector<int>{3, 2, 1}));
  EXPECT_TRUE(t.PathEdges(0).empty());
}

TEST(TopologyTest, PostOrderVisitsChildrenFirst) {
  Rng rng(11);
  Topology t = BuildRandomTree(40, 4, &rng);
  std::vector<int> seen_at(t.num_nodes(), -1);
  const auto& post = t.PostOrder();
  for (int i = 0; i < static_cast<int>(post.size()); ++i) {
    seen_at[post[i]] = i;
  }
  for (int v = 1; v < t.num_nodes(); ++v) {
    EXPECT_LT(seen_at[v], seen_at[t.parent(v)])
        << "child " << v << " must precede parent in post-order";
  }
}

TEST(TopologyTest, PreOrderVisitsParentsFirst) {
  Rng rng(12);
  Topology t = BuildRandomTree(40, 4, &rng);
  std::vector<int> seen_at(t.num_nodes(), -1);
  const auto& pre = t.PreOrder();
  for (int i = 0; i < static_cast<int>(pre.size()); ++i) seen_at[pre[i]] = i;
  for (int v = 1; v < t.num_nodes(); ++v) {
    EXPECT_GT(seen_at[v], seen_at[t.parent(v)]);
  }
}

TEST(TopologyTest, RejectsMalformedInput) {
  EXPECT_FALSE(Topology::FromParents({}).ok());
  EXPECT_FALSE(Topology::FromParents({0}).ok());  // self loop, no root
  EXPECT_FALSE(
      Topology::FromParents({Topology::kNoParent, 5}).ok());  // out of range
  EXPECT_FALSE(
      Topology::FromParents({Topology::kNoParent, 1}).ok());  // self loop
  // 2-cycle between 1 and 2 (both unreachable from root).
  EXPECT_FALSE(Topology::FromParents({Topology::kNoParent, 2, 1}).ok());
  // Two roots.
  EXPECT_FALSE(
      Topology::FromParents({Topology::kNoParent, Topology::kNoParent}).ok());
}

TEST(TopologyTest, SupportsNonZeroRoot) {
  // Chain 0 -> 1 -> 2 where node 2 is the root: the base station need not
  // be node 0 (e.g. after renumbering survivors of a rebuild).
  auto res = Topology::FromParents({1, 2, Topology::kNoParent});
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Topology& t = res.value();
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.depth(2), 0);
  EXPECT_EQ(t.depth(0), 2);
  EXPECT_EQ(t.height(), 2);
  EXPECT_EQ(t.subtree_size(2), 3);
  EXPECT_EQ(t.subtree_size(0), 1);
  // Edge ids on node 0's path exclude the root, which owns no edge.
  EXPECT_EQ(t.PathEdges(0), (std::vector<int>{0, 1}));
  EXPECT_TRUE(t.PathEdges(2).empty());
  EXPECT_EQ(t.AncestorsOf(0), (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(t.IsAncestorOf(2, 0));
  // Traversals start/end at the actual root.
  EXPECT_EQ(t.PreOrder().front(), 2);
  EXPECT_EQ(t.PostOrder().back(), 2);
}

TEST(TopologyTest, ChainAndStar) {
  Topology chain = BuildChain(6);
  EXPECT_EQ(chain.height(), 5);
  EXPECT_EQ(chain.subtree_size(0), 6);
  Topology star = BuildStar(6);
  EXPECT_EQ(star.height(), 1);
  EXPECT_EQ(star.children(0).size(), 5u);
}

TEST(GeometricNetworkTest, DisconnectedPlacementFails) {
  GeometricNetworkOptions opts;
  opts.num_nodes = 50;
  opts.width = 1000.0;
  opts.height = 1000.0;
  opts.radio_range = 5.0;  // far too short to connect 50 nodes in 1 km^2
  Rng rng(3);
  auto res = BuildGeometricNetwork(opts, &rng);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kFailedPrecondition);
}

class GeometricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GeometricPropertyTest, TreeRespectsRadioRangeAndMinimizesHops) {
  GeometricNetworkOptions opts;
  opts.num_nodes = 60;
  opts.width = 100.0;
  opts.height = 100.0;
  opts.radio_range = 30.0;
  Rng rng(GetParam());
  auto res = BuildConnectedGeometricNetwork(opts, &rng);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const Topology& t = res.value();
  ASSERT_EQ(static_cast<int>(t.positions().size()), t.num_nodes());

  // Every tree edge within radio range.
  for (int v = 1; v < t.num_nodes(); ++v) {
    EXPECT_LE(Distance(t.positions()[v], t.positions()[t.parent(v)]),
              opts.radio_range + 1e-9);
  }

  // Minimum hop count: depth must equal BFS distance in the range graph.
  const int n = t.num_nodes();
  std::vector<int> dist(n, -1);
  dist[0] = 0;
  std::vector<int> frontier{0};
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int u : frontier) {
      for (int v = 0; v < n; ++v) {
        if (dist[v] < 0 &&
            Distance(t.positions()[u], t.positions()[v]) <= opts.radio_range) {
          dist[v] = dist[u] + 1;
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(t.depth(v), dist[v]) << "node " << v << " is not min-hop";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometricPropertyTest, ::testing::Range(1, 21));

class RandomTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTreePropertyTest, FanoutBoundHolds) {
  Rng rng(GetParam());
  const int fanout = 1 + GetParam() % 5;
  Topology t = BuildRandomTree(30, fanout, &rng);
  EXPECT_EQ(t.num_nodes(), 30);
  for (int v = 0; v < t.num_nodes(); ++v) {
    EXPECT_LE(static_cast<int>(t.children(v).size()), fanout);
  }
  // Subtree sizes sum: root covers everything.
  EXPECT_EQ(t.subtree_size(0), 30);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreePropertyTest, ::testing::Range(1, 21));

}  // namespace
}  // namespace net
}  // namespace prospector
