#include "src/core/cluster_query.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/core/generalized.h"
#include "src/core/lp_filter_planner.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

net::Topology GeoTopo(uint64_t seed, int n = 50) {
  Rng rng(seed);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = 26.0;
  return net::BuildConnectedGeometricNetwork(geo, &rng).value();
}

TEST(ClusterByGridTest, AssignsEveryNonRootNodeToADenseCluster) {
  net::Topology topo = GeoTopo(1);
  Clustering c = ClusterByGrid(topo, 3, 3);
  EXPECT_EQ(c.cluster_of_node[0], -1);
  std::set<int> seen;
  for (int i = 1; i < topo.num_nodes(); ++i) {
    ASSERT_GE(c.cluster(i), 0);
    ASSERT_LT(c.cluster(i), c.num_clusters);
    seen.insert(c.cluster(i));
  }
  EXPECT_EQ(static_cast<int>(seen.size()), c.num_clusters) << "ids dense";
  EXPECT_LE(c.num_clusters, 9);
  EXPECT_GE(c.num_clusters, 2);
}

TEST(ClusterByGridTest, NonGeometricTopologyHasNoClusters) {
  Rng rng(2);
  net::Topology topo = net::BuildRandomTree(10, 3, &rng);
  Clustering c = ClusterByGrid(topo, 2, 2);
  EXPECT_EQ(c.num_clusters, 0);
}

TEST(ClusterMathTest, AveragesAndTopClusters) {
  Clustering c;
  c.num_clusters = 3;
  c.cluster_of_node = {-1, 0, 0, 1, 2};
  const std::vector<double> values{99, 2, 4, 10, 7};
  const std::vector<double> avg = ClusterAverages(c, values);
  EXPECT_DOUBLE_EQ(avg[0], 3.0);
  EXPECT_DOUBLE_EQ(avg[1], 10.0);
  EXPECT_DOUBLE_EQ(avg[2], 7.0);
  EXPECT_EQ(TopClusters(avg, 2), (std::vector<int>{1, 2}));
}

TEST(ClusterMathTest, EmptyClustersAreSkipped) {
  Clustering c;
  c.num_clusters = 2;
  c.cluster_of_node = {-1, 0};
  const std::vector<double> avg = ClusterAverages(c, {5.0, 3.0});
  EXPECT_TRUE(std::isnan(avg[1]));
  EXPECT_EQ(TopClusters(avg, 5), (std::vector<int>{0}));
}

TEST(ClusterContributorTest, MarksExactlyWinningClusterMembers) {
  Clustering c;
  c.num_clusters = 2;
  c.cluster_of_node = {-1, 0, 0, 1, 1};
  auto fn = ClusterTopKContributor(c, 1);
  // Cluster 1 average (8) beats cluster 0 (3).
  EXPECT_EQ(fn({0, 2, 4, 7, 9}), (std::vector<int>{3, 4}));
}

class ClusterAggregatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterAggregatePropertyTest, MatchesDirectComputation) {
  net::Topology topo = GeoTopo(100 + GetParam());
  Clustering c = ClusterByGrid(topo, 3, 3);
  Rng rng(200 + GetParam());
  std::vector<double> truth(topo.num_nodes());
  for (double& v : truth) v = rng.Uniform(0.0, 50.0);

  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ClusterAggregateResult r = ExecuteClusterAggregate(c, truth, 3, &sim);

  const std::vector<double> expect = ClusterAverages(c, truth);
  for (int cl = 0; cl < c.num_clusters; ++cl) {
    if (std::isnan(expect[cl])) {
      EXPECT_TRUE(std::isnan(r.cluster_avg[cl]));
    } else {
      EXPECT_NEAR(r.cluster_avg[cl], expect[cl], 1e-9);
    }
  }
  EXPECT_EQ(r.top_clusters, TopClusters(expect, 3));
  // TAG property: one message per edge, sizes bounded by #clusters.
  EXPECT_EQ(r.messages, topo.num_nodes() - 1);
  EXPECT_LE(sim.stats().values_transmitted,
            static_cast<int64_t>(c.num_clusters) * (topo.num_nodes() - 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterAggregatePropertyTest,
                         ::testing::Range(1, 20));

TEST(ClusterAggregateTest, CheaperThanShippingAllValuesOnDeepTrees) {
  // On a chain, naive collection ships O(n) values over the last hop while
  // aggregation ships at most #clusters partials per hop.
  net::Topology topo = net::BuildChain(30);
  std::vector<net::Point> pos(30);
  for (int i = 0; i < 30; ++i) pos[i] = {double(i), 0.0};
  topo.set_positions(pos);
  Clustering c = ClusterByGrid(topo, 2, 1);
  std::vector<double> truth(30, 1.0);
  net::NetworkSimulator agg_sim(&topo, net::EnergyModel{});
  ExecuteClusterAggregate(c, truth, 1, &agg_sim);
  net::NetworkSimulator full_sim(&topo, net::EnergyModel{});
  QueryPlan full = QueryPlan::Bandwidth(30, std::vector<int>(30, 30));
  full.Normalize(topo);
  CollectionExecutor::Execute(full, truth, &full_sim,
                              /*include_trigger=*/false);
  EXPECT_LT(agg_sim.stats().total_energy_mj,
            0.5 * full_sim.stats().total_energy_mj);
}

TEST(ClusterPlanningTest, ApproximatePlanRecallsTopClusters) {
  // End-to-end: sample with the cluster contributor, plan with LP+LF,
  // execute, estimate cluster averages from arrived readings.
  net::Topology topo = GeoTopo(7, 60);
  Clustering c = ClusterByGrid(topo, 3, 3);
  Rng rng(8);
  // Give two grid regions persistently higher means.
  std::vector<double> means(60), sds(60, 2.0);
  for (int i = 0; i < 60; ++i) {
    const int cl = c.cluster_of_node[i];
    means[i] = (cl == 0 || cl == 1) ? 60.0 : 40.0;
  }
  data::GaussianField field(means, sds);

  sampling::SampleSet samples(60, ClusterTopKContributor(c, 2));
  for (int s = 0; s < 15; ++s) samples.Add(field.Sample(&rng));

  PlannerContext ctx;
  ctx.topology = &topo;
  LpFilterPlanner planner;
  auto plan = PlanSubsetQuery(&planner, ctx, samples, /*budget=*/25.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  net::NetworkSimulator sim(&topo, ctx.energy);
  double recall = 0.0;
  for (int q = 0; q < 20; ++q) {
    const std::vector<double> truth = field.Sample(&rng);
    auto r = CollectionExecutor::Execute(*plan, truth, &sim);
    const auto est = EstimateTopClusters(c, r.arrived, 2);
    recall += ClusterRecall(est, TopClusters(ClusterAverages(c, truth), 2));
    sim.ResetStats();
  }
  EXPECT_GT(recall / 20.0, 0.8);
}

TEST(ClusterRecallTest, Basics) {
  EXPECT_DOUBLE_EQ(ClusterRecall({1, 2}, {}), 1.0);
  EXPECT_DOUBLE_EQ(ClusterRecall({1, 2}, {2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(ClusterRecall({}, {1}), 0.0);
}

}  // namespace
}  // namespace core
}  // namespace prospector
