#include "src/net/fault_injector.h"

#include <gtest/gtest.h>

namespace prospector {
namespace net {
namespace {

TEST(FaultInjectorTest, AppliesEventsAsTheClockAdvances) {
  // Scripted out of order on purpose; the injector sorts by epoch.
  FaultSchedule schedule;
  schedule.KillNode(5, 2)
      .HealSubtree(7, 3)
      .DegradeEdge(3, 1, 0.7)
      .ReviveNode(8, 2)
      .PartitionSubtree(4, 3)
      .RestoreEdge(6, 1);
  FaultInjector injector(6, schedule);

  injector.AdvanceTo(2);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_FALSE(injector.edge_cut(3));
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.1);

  injector.AdvanceTo(3);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.7);

  injector.AdvanceTo(4);
  EXPECT_TRUE(injector.edge_cut(3));

  injector.AdvanceTo(5);
  EXPECT_FALSE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 1);

  injector.AdvanceTo(6);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.1);

  injector.AdvanceTo(7);
  EXPECT_FALSE(injector.edge_cut(3));

  injector.AdvanceTo(8);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 0);

  // Clocks never run backwards; this is a no-op.
  injector.AdvanceTo(3);
  EXPECT_EQ(injector.epoch(), 8);
  EXPECT_TRUE(injector.node_alive(2));
}

TEST(FaultInjectorTest, SameEpochEventsApplyInScriptOrder) {
  FaultInjector kill_then_revive(
      3, FaultSchedule{}.KillNode(1, 2).ReviveNode(1, 2));
  kill_then_revive.AdvanceTo(1);
  EXPECT_TRUE(kill_then_revive.node_alive(2));

  FaultInjector revive_then_kill(
      3, FaultSchedule{}.ReviveNode(1, 2).KillNode(1, 2));
  revive_then_kill.AdvanceTo(1);
  EXPECT_FALSE(revive_then_kill.node_alive(2));
}

TEST(FaultInjectorTest, RootIsPinnedAlive) {
  FaultInjector injector(4, FaultSchedule{}.KillNode(0, 2), /*root=*/2);
  injector.AdvanceTo(0);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 0);
}

TEST(FaultInjectorTest, OutOfRangeEventsAreIgnored) {
  FaultInjector injector(3, FaultSchedule{}.KillNode(0, 7).KillNode(0, -1));
  injector.AdvanceTo(0);
  EXPECT_EQ(injector.num_dead(), 0);
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(injector.node_alive(v));
}

TEST(FaultInjectorTest, RemapFollowsSurvivorsAndDropsRemovedNodes) {
  FaultSchedule schedule;
  schedule.KillNode(0, 2).DegradeEdge(0, 4, 0.9);
  schedule.KillNode(10, 5).KillNode(12, 2);  // pending after the rebuild
  FaultInjector injector(6, schedule);
  injector.AdvanceTo(0);
  EXPECT_FALSE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 1);

  // Rebuild removed node 2; everyone after it shifts down one id.
  const std::vector<int> new_id = {0, 1, -1, 2, 3, 4};
  injector.Remap(new_id, 5);
  EXPECT_EQ(injector.num_nodes(), 5);
  EXPECT_EQ(injector.num_dead(), 0);  // the dead node is gone entirely
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(injector.node_alive(v));
  // The override followed old node 4 to its new id 3.
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(3, 0.1), 0.9);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(4, 0.1), 0.1);

  // Pending kill of old node 5 now hits new id 4 ...
  injector.AdvanceTo(10);
  EXPECT_FALSE(injector.node_alive(4));
  EXPECT_EQ(injector.num_dead(), 1);
  // ... while the pending kill of removed node 2 was dropped.
  injector.AdvanceTo(12);
  EXPECT_EQ(injector.num_dead(), 1);
}

}  // namespace
}  // namespace net
}  // namespace prospector
