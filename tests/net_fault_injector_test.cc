#include "src/net/fault_injector.h"

#include <gtest/gtest.h>

namespace prospector {
namespace net {
namespace {

TEST(FaultInjectorTest, AppliesEventsAsTheClockAdvances) {
  // Scripted out of order on purpose; the injector sorts by epoch.
  FaultSchedule schedule;
  schedule.KillNode(5, 2)
      .HealSubtree(7, 3)
      .DegradeEdge(3, 1, 0.7)
      .ReviveNode(8, 2)
      .PartitionSubtree(4, 3)
      .RestoreEdge(6, 1);
  FaultInjector injector(6, schedule);

  injector.AdvanceTo(2);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_FALSE(injector.edge_cut(3));
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.1);

  injector.AdvanceTo(3);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.7);

  injector.AdvanceTo(4);
  EXPECT_TRUE(injector.edge_cut(3));

  injector.AdvanceTo(5);
  EXPECT_FALSE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 1);

  injector.AdvanceTo(6);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(1, 0.1), 0.1);

  injector.AdvanceTo(7);
  EXPECT_FALSE(injector.edge_cut(3));

  injector.AdvanceTo(8);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 0);

  // Clocks never run backwards; this is a no-op.
  injector.AdvanceTo(3);
  EXPECT_EQ(injector.epoch(), 8);
  EXPECT_TRUE(injector.node_alive(2));
}

TEST(FaultInjectorTest, SameEpochEventsApplyInScriptOrder) {
  FaultInjector kill_then_revive(
      3, FaultSchedule{}.KillNode(1, 2).ReviveNode(1, 2));
  kill_then_revive.AdvanceTo(1);
  EXPECT_TRUE(kill_then_revive.node_alive(2));

  FaultInjector revive_then_kill(
      3, FaultSchedule{}.ReviveNode(1, 2).KillNode(1, 2));
  revive_then_kill.AdvanceTo(1);
  EXPECT_FALSE(revive_then_kill.node_alive(2));
}

TEST(FaultInjectorTest, RootIsPinnedAlive) {
  FaultInjector injector(4, FaultSchedule{}.KillNode(0, 2), /*root=*/2);
  injector.AdvanceTo(0);
  EXPECT_TRUE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 0);
}

TEST(FaultInjectorTest, OutOfRangeEventsAreIgnored) {
  FaultInjector injector(3, FaultSchedule{}.KillNode(0, 7).KillNode(0, -1));
  injector.AdvanceTo(0);
  EXPECT_EQ(injector.num_dead(), 0);
  for (int v = 0; v < 3; ++v) EXPECT_TRUE(injector.node_alive(v));
}

TEST(FaultInjectorTest, RemapFollowsSurvivorsAndDropsRemovedNodes) {
  FaultSchedule schedule;
  schedule.KillNode(0, 2).DegradeEdge(0, 4, 0.9);
  schedule.KillNode(10, 5).KillNode(12, 2);  // pending after the rebuild
  FaultInjector injector(6, schedule);
  injector.AdvanceTo(0);
  EXPECT_FALSE(injector.node_alive(2));
  EXPECT_EQ(injector.num_dead(), 1);

  // Rebuild removed node 2; everyone after it shifts down one id.
  const std::vector<int> new_id = {0, 1, -1, 2, 3, 4};
  injector.Remap(new_id, 5);
  EXPECT_EQ(injector.num_nodes(), 5);
  EXPECT_EQ(injector.num_dead(), 0);  // the dead node is gone entirely
  for (int v = 0; v < 5; ++v) EXPECT_TRUE(injector.node_alive(v));
  // The override followed old node 4 to its new id 3.
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(3, 0.1), 0.9);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(4, 0.1), 0.1);

  // Pending kill of old node 5 now hits new id 4 ...
  injector.AdvanceTo(10);
  EXPECT_FALSE(injector.node_alive(4));
  EXPECT_EQ(injector.num_dead(), 1);
  // ... while the pending kill of removed node 2 was dropped.
  injector.AdvanceTo(12);
  EXPECT_EQ(injector.num_dead(), 1);
}

TEST(FaultInjectorTest, AdversarialKnobsArmIndependentlyAndDisarmAtZero) {
  FaultSchedule schedule;
  schedule.DuplicateEdge(1, 2, 0.5, 3)
      .CorruptEdge(1, 2, 0.25)
      .DelayEdge(1, 2, 0.75, 0)  // param below 1 clamps to 1
      .DuplicateEdge(2, 2, 0.0)  // probability 0 disarms one knob...
      .CorruptEdge(3, 2, 0.0)
      .DelayEdge(3, 2, 0.0);  // ...and eventually the whole edge
  FaultInjector injector(4, schedule);

  injector.AdvanceTo(1);
  const EdgeAdversary& armed = injector.adversary(2);
  EXPECT_TRUE(armed.has_duplicate);
  EXPECT_DOUBLE_EQ(armed.duplicate_prob, 0.5);
  EXPECT_EQ(armed.duplicate_copies, 3);
  EXPECT_TRUE(armed.has_corrupt);
  EXPECT_DOUBLE_EQ(armed.corrupt_prob, 0.25);
  EXPECT_TRUE(armed.has_delay);
  EXPECT_EQ(armed.delay_epochs, 1);
  EXPECT_TRUE(injector.any_adversary());

  injector.AdvanceTo(2);
  EXPECT_FALSE(injector.adversary(2).has_duplicate);
  EXPECT_TRUE(injector.adversary(2).has_corrupt);
  EXPECT_TRUE(injector.any_adversary());

  injector.AdvanceTo(3);
  EXPECT_FALSE(injector.adversary(2).any());
  EXPECT_FALSE(injector.any_adversary());
}

TEST(FaultInjectorTest, AdvanceToNeverReappliesAnEvent) {
  // A kill/revive/kill sequence would miscount if the cursor replayed.
  FaultSchedule schedule;
  schedule.KillNode(2, 1).ReviveNode(4, 1).KillNode(6, 1);
  FaultInjector injector(3, schedule);
  injector.AdvanceTo(2);
  EXPECT_EQ(injector.num_dead(), 1);
  injector.AdvanceTo(2);  // same clock: nothing replays
  EXPECT_EQ(injector.num_dead(), 1);
  injector.AdvanceTo(1);  // clocks never run backwards
  EXPECT_EQ(injector.epoch(), 2);
  injector.AdvanceTo(4);
  EXPECT_EQ(injector.num_dead(), 0);

  // A rebuild resets the event cursor; already-applied events must be
  // gone for good, not replayed against the new ids.
  injector.Remap({0, 1, 2}, 3);
  injector.AdvanceTo(5);
  EXPECT_EQ(injector.num_dead(), 0);  // the epoch-2 kill does not re-fire
  injector.AdvanceTo(6);
  EXPECT_EQ(injector.num_dead(), 1);  // the pending epoch-6 kill still does
}

TEST(FaultInjectorTest, StateAndPendingEventsSurviveTwoConsecutiveRebuilds) {
  FaultSchedule schedule;
  schedule.KillNode(0, 4)
      .DegradeEdge(0, 3, 0.7)
      .DelayEdge(0, 5, 1.0, 2)
      .KillNode(5, 2)  // its node is removed first: the event must drop
      .CorruptEdge(6, 3, 0.9)
      .DuplicateEdge(8, 1, 1.0, 2);  // must survive both rebuilds
  FaultInjector injector(6, schedule);
  injector.AdvanceTo(0);
  EXPECT_FALSE(injector.node_alive(4));
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(3, 0.1), 0.7);
  EXPECT_TRUE(injector.adversary(5).has_delay);

  // First rebuild removes node 2; survivors compact downwards.
  injector.Remap({0, 1, -1, 2, 3, 4}, 5);
  EXPECT_EQ(injector.num_dead(), 1);
  EXPECT_FALSE(injector.node_alive(3));                  // old node 4
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(2, 0.1), 0.7);  // old node 3
  EXPECT_TRUE(injector.adversary(4).has_delay);          // old node 5
  EXPECT_EQ(injector.adversary(4).delay_epochs, 2);

  // The removed node's pending kill must not fire on its recycled id.
  injector.AdvanceTo(5);
  EXPECT_EQ(injector.num_dead(), 1);
  EXPECT_TRUE(injector.node_alive(2));

  injector.AdvanceTo(6);  // corruption arms on the survivor's new id
  EXPECT_TRUE(injector.adversary(2).has_corrupt);
  EXPECT_DOUBLE_EQ(injector.adversary(2).corrupt_prob, 0.9);

  // Second rebuild removes the delay-armed edge (old node 5, now id 4).
  injector.Remap({0, 1, 2, 3, -1}, 4);
  EXPECT_EQ(injector.num_nodes(), 4);
  EXPECT_EQ(injector.num_dead(), 1);
  EXPECT_FALSE(injector.node_alive(3));
  EXPECT_TRUE(injector.adversary(2).has_corrupt);
  EXPECT_DOUBLE_EQ(injector.EdgeProbability(2, 0.1), 0.7);
  EXPECT_TRUE(injector.any_adversary());

  // The duplication event followed node 1 through both rebuilds.
  injector.AdvanceTo(8);
  EXPECT_TRUE(injector.adversary(1).has_duplicate);
  EXPECT_EQ(injector.adversary(1).duplicate_copies, 2);
}

TEST(FaultInjectorTest, RemapFollowsTheRootAndKeepsItPinned) {
  // The root moves to a new id during a rebuild; a pending kill that now
  // names the relocated root must still be ignored.
  FaultInjector injector(2, FaultSchedule{}.KillNode(3, 0));
  injector.AdvanceTo(0);
  injector.Remap({1, 0}, 2);
  injector.AdvanceTo(3);
  EXPECT_TRUE(injector.node_alive(1));  // the root, under its new id
  EXPECT_EQ(injector.num_dead(), 0);
}

}  // namespace
}  // namespace net
}  // namespace prospector
