#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/data/contention.h"
#include "src/data/gaussian_field.h"
#include "src/data/lab_trace.h"
#include "src/data/trace.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace prospector {
namespace data {
namespace {

TEST(InverseNormalCdfTest, KnownQuantiles) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-8);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959964, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(0.841344746), 1.0, 1e-4);
  EXPECT_NEAR(InverseNormalCdf(1.0 - 1.0 / 6.0), 0.967422, 1e-4);
}

TEST(GaussianFieldTest, SampleMatchesMoments) {
  Rng rng(42);
  GaussianField field({10.0, 50.0}, {1.0, 4.0});
  RunningStats s0, s1;
  for (int i = 0; i < 20000; ++i) {
    auto v = field.Sample(&rng);
    s0.Add(v[0]);
    s1.Add(v[1]);
  }
  EXPECT_NEAR(s0.mean(), 10.0, 0.05);
  EXPECT_NEAR(s0.stddev(), 1.0, 0.05);
  EXPECT_NEAR(s1.mean(), 50.0, 0.15);
  EXPECT_NEAR(s1.stddev(), 4.0, 0.15);
}

TEST(GaussianFieldTest, RandomFieldWithinRanges) {
  Rng rng(7);
  GaussianField f = GaussianField::Random(100, 40.0, 60.0, 1.0, 16.0, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(f.mean(i), 40.0);
    EXPECT_LE(f.mean(i), 60.0);
    EXPECT_GE(f.stddev(i) * f.stddev(i), 1.0 - 1e-9);
    EXPECT_LE(f.stddev(i) * f.stddev(i), 16.0 + 1e-9);
  }
}

TEST(TraceTest, AddEpochValidatesWidth) {
  Trace t(3);
  EXPECT_TRUE(t.AddEpoch({1, 2, 3}).ok());
  EXPECT_FALSE(t.AddEpoch({1, 2}).ok());
  EXPECT_EQ(t.num_epochs(), 1);
}

TEST(TraceTest, ImputeInteriorMissingIsNeighborAverage) {
  Trace t(2);
  ASSERT_TRUE(t.AddEpoch({1.0, 10.0}).ok());
  ASSERT_TRUE(t.AddEpoch({std::nan(""), 20.0}).ok());
  ASSERT_TRUE(t.AddEpoch({3.0, 30.0}).ok());
  EXPECT_EQ(t.CountMissing(), 1);
  t.ImputeMissing();
  EXPECT_EQ(t.CountMissing(), 0);
  EXPECT_DOUBLE_EQ(t.value(1, 0), 2.0);
}

TEST(TraceTest, ImputeEdgesUseNearestPresent) {
  Trace t(1);
  ASSERT_TRUE(t.AddEpoch({std::nan("")}).ok());
  ASSERT_TRUE(t.AddEpoch({std::nan("")}).ok());
  ASSERT_TRUE(t.AddEpoch({5.0}).ok());
  ASSERT_TRUE(t.AddEpoch({std::nan("")}).ok());
  t.ImputeMissing();
  EXPECT_DOUBLE_EQ(t.value(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.value(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.value(3, 0), 5.0);
}

TEST(TraceTest, ImputeRunAveragesAcrossGap) {
  Trace t(1);
  ASSERT_TRUE(t.AddEpoch({2.0}).ok());
  ASSERT_TRUE(t.AddEpoch({std::nan("")}).ok());
  ASSERT_TRUE(t.AddEpoch({std::nan("")}).ok());
  ASSERT_TRUE(t.AddEpoch({6.0}).ok());
  t.ImputeMissing();
  EXPECT_DOUBLE_EQ(t.value(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.value(2, 0), 4.0);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace t(3);
  ASSERT_TRUE(t.AddEpoch({1.5, std::nan(""), -2.25}).ok());
  ASSERT_TRUE(t.AddEpoch({0.0, 7.0, 9.125}).ok());
  const std::string path = testing::TempDir() + "/trace_roundtrip.csv";
  ASSERT_TRUE(t.SaveCsv(path).ok());
  auto loaded = Trace::LoadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), 3);
  EXPECT_EQ(loaded->num_epochs(), 2);
  EXPECT_TRUE(Trace::IsMissing(loaded->value(0, 1)));
  EXPECT_DOUBLE_EQ(loaded->value(0, 2), -2.25);
  EXPECT_DOUBLE_EQ(loaded->value(1, 1), 7.0);
  std::remove(path.c_str());
}

TEST(TraceTest, SliceBounds) {
  Trace t(1);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(t.AddEpoch({double(i)}).ok());
  Trace s = t.Slice(1, 3);
  EXPECT_EQ(s.num_epochs(), 2);
  EXPECT_DOUBLE_EQ(s.value(0, 0), 1.0);
  EXPECT_EQ(t.Slice(4, 99).num_epochs(), 1);
  EXPECT_EQ(t.Slice(3, 2).num_epochs(), 0);
}

TEST(ContentionTest, ZoneStructureAndExceedProbability) {
  ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = 10;
  opts.num_background = 40;
  Rng rng(3);
  auto built = BuildContentionScenario(opts, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ContentionScenario& sc = built.value();
  EXPECT_EQ(sc.topology.num_nodes(), 1 + 60 + 40);
  // Zone assignment layout: root, then zone-major blocks.
  EXPECT_EQ(sc.zone_of_node[0], -1);
  EXPECT_EQ(sc.zone_of_node[1], 0);
  EXPECT_EQ(sc.zone_of_node[60], 5);
  EXPECT_EQ(sc.zone_of_node[61], -1);

  // Empirically, a zone node exceeds the background mean with P ~ 1/6.
  Rng vr(99);
  int exceed = 0;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const double v = vr.Gaussian(sc.field.mean(1), sc.field.stddev(1));
    if (v > opts.background_mean) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / trials, 1.0 / 6.0, 0.01);
}

TEST(ContentionTest, RejectsExceedProbabilityAboveHalf) {
  ContentionZoneOptions opts;
  opts.num_zones = 1;
  opts.exceed_probability = 0.7;
  Rng rng(3);
  EXPECT_FALSE(BuildContentionScenario(opts, &rng).ok());
}

TEST(LabTraceTest, ShapeHotSpotsAndMissing) {
  LabTraceOptions opts;
  opts.num_epochs = 200;
  Rng rng(5);
  auto built = BuildLabScenario(opts, &rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  LabScenario& sc = built.value();
  EXPECT_EQ(sc.topology.num_nodes(), 54);
  EXPECT_GT(sc.topology.height(), 2) << "shortened range should force depth";
  EXPECT_EQ(sc.trace.num_epochs(), 200);
  EXPECT_EQ(static_cast<int>(sc.hot_motes.size()), opts.num_hot_spots);

  // Missing rate near 3%.
  const double missing_rate =
      static_cast<double>(sc.trace.CountMissing()) / (54.0 * 200.0);
  EXPECT_NEAR(missing_rate, opts.missing_probability, 0.01);

  sc.trace.ImputeMissing();
  EXPECT_EQ(sc.trace.CountMissing(), 0);

  // Hot motes should dominate the top readings: average a mote's value
  // across epochs and check that hot motes hold the top ranks.
  std::vector<double> avg(54, 0.0);
  for (int t = 0; t < 200; ++t) {
    for (int i = 0; i < 54; ++i) avg[i] += sc.trace.value(t, i) / 200.0;
  }
  std::vector<int> top = TopKIndices(avg, opts.num_hot_spots);
  int hot_in_top = 0;
  for (int i : top) {
    for (int h : sc.hot_motes) {
      if (h == i) {
        ++hot_in_top;
        break;
      }
    }
  }
  EXPECT_GE(hot_in_top, opts.num_hot_spots - 1)
      << "persistently warm motes must be the predictable top-k";
}

}  // namespace
}  // namespace data
}  // namespace prospector
