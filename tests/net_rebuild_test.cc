#include "src/net/rebuild.h"

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace net {
namespace {

constexpr double kRange = 26.0;

Topology GeoTopo(uint64_t seed, int n = 50) {
  Rng rng(seed);
  GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = kRange;
  return BuildConnectedGeometricNetwork(geo, &rng).value();
}

TEST(RebuildTest, RequiresPositionsAndLivingRoot) {
  Rng rng(1);
  Topology bare = BuildRandomTree(10, 3, &rng);
  EXPECT_EQ(RebuildWithoutNodes(bare, {3}, kRange).status().code(),
            StatusCode::kFailedPrecondition);
  Topology topo = GeoTopo(2);
  EXPECT_EQ(RebuildWithoutNodes(topo, {0}, kRange).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RebuildWithoutNodes(topo, {999}, kRange).status().code(),
            StatusCode::kInvalidArgument);
}

class RebuildPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RebuildPropertyTest, SurvivorsFormMinHopTreeWithinRange) {
  Topology topo = GeoTopo(10 + GetParam());
  Rng rng(20 + GetParam());
  std::vector<int> dead;
  for (int i = 1; i < topo.num_nodes(); ++i) {
    if (rng.Bernoulli(0.15)) dead.push_back(i);
  }
  auto rebuilt = RebuildWithoutNodes(topo, dead, kRange);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  const Topology& nt = rebuilt->topology;

  // Every dead node removed; every survivor either mapped or orphaned.
  int mapped = 0;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    const bool is_dead =
        std::find(dead.begin(), dead.end(), i) != dead.end();
    if (is_dead) {
      EXPECT_EQ(rebuilt->new_id[i], -1);
    } else if (rebuilt->new_id[i] >= 0) {
      ++mapped;
    }
  }
  EXPECT_EQ(mapped, nt.num_nodes());
  EXPECT_EQ(mapped + static_cast<int>(dead.size() + rebuilt->orphaned.size()),
            topo.num_nodes());

  // Tree edges respect the radio range; root keeps id 0.
  EXPECT_EQ(rebuilt->new_id[0], 0);
  for (int v = 1; v < nt.num_nodes(); ++v) {
    EXPECT_LE(Distance(nt.positions()[v], nt.positions()[nt.parent(v)]),
              kRange + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildPropertyTest, ::testing::Range(1, 20));

TEST(RebuildTest, CutVertexOrphansItsSubtree) {
  // A chain with positions: killing the middle node orphans everything
  // beyond it.
  Topology chain = BuildChain(5);
  std::vector<Point> pos(5);
  for (int i = 0; i < 5; ++i) pos[i] = {10.0 * i, 0.0};
  chain.set_positions(pos);
  auto rebuilt = RebuildWithoutNodes(chain, {2}, /*radio_range=*/10.0);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->topology.num_nodes(), 2);  // nodes 0 and 1
  EXPECT_EQ(rebuilt->orphaned, (std::vector<int>{3, 4}));
}

TEST(RebuildTest, NonZeroRootIsPreserved) {
  // Regression: the rebuild BFS used to start from node 0 regardless of
  // where the root actually was. Root here is node 3, mid-array.
  auto topo =
      Topology::FromParents({1, 2, 3, Topology::kNoParent, 3, 4}).value();
  std::vector<Point> pos;
  for (int i = 0; i < 6; ++i) pos.push_back({10.0 * i, 0.0});
  topo.set_positions(pos);
  ASSERT_EQ(topo.root(), 3);

  auto rebuilt = RebuildWithoutNodes(topo, {4}, /*radio_range=*/12.0);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  const Topology& nt = rebuilt->topology;

  // The rebuilt tree is rooted at the old root's new id.
  ASSERT_GE(rebuilt->new_id[3], 0);
  EXPECT_EQ(nt.root(), rebuilt->new_id[3]);
  EXPECT_EQ(nt.parent(nt.root()), Topology::kNoParent);
  EXPECT_EQ(nt.depth(nt.root()), 0);

  // Node 5's only link to the root ran through dead node 4 -> orphaned.
  EXPECT_EQ(rebuilt->new_id[5], -1);
  EXPECT_EQ(rebuilt->orphaned, (std::vector<int>{5}));

  // Survivors form the min-hop chain 0-1-2-3 hanging off the root.
  ASSERT_EQ(nt.num_nodes(), 4);
  EXPECT_EQ(nt.depth(rebuilt->new_id[2]), 1);
  EXPECT_EQ(nt.depth(rebuilt->new_id[1]), 2);
  EXPECT_EQ(nt.depth(rebuilt->new_id[0]), 3);
}

TEST(RebuildTest, EndToEndReplanOnRebuiltNetwork) {
  // The Section 4.4 workflow: nodes die -> rebuild -> remap samples ->
  // re-optimize -> keep querying.
  Topology topo = GeoTopo(5, 60);
  Rng rng(6);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(60, 5);
  std::vector<std::vector<double>> raw;
  for (int s = 0; s < 12; ++s) {
    std::vector<double> v(60);
    for (double& x : v) x = rng.Uniform(0.0, 100.0);
    raw.push_back(v);
    samples.Add(v);
  }

  auto rebuilt = RebuildWithoutNodes(topo, {3, 7, 11, 19}, kRange);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  const Topology& nt = rebuilt->topology;
  sampling::SampleSet remapped =
      samples.Remapped(rebuilt->new_id, nt.num_nodes());
  ASSERT_EQ(remapped.num_samples(), 12);
  // Values landed at their new indices.
  for (int i = 0; i < 60; ++i) {
    if (rebuilt->new_id[i] >= 0) {
      EXPECT_DOUBLE_EQ(remapped.value(0, rebuilt->new_id[i]), raw[0][i]);
    }
  }

  core::PlannerContext ctx;
  ctx.topology = &nt;
  core::LpNoFilterPlanner planner;
  auto plan = planner.Plan(ctx, remapped, core::PlanRequest{5, 10.0});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  NetworkSimulator sim(&nt, ctx.energy);
  std::vector<double> truth(nt.num_nodes());
  Rng qrng(7);
  for (double& v : truth) v = qrng.Uniform(0.0, 100.0);
  auto r = core::CollectionExecutor::Execute(*plan, truth, &sim);
  EXPECT_GE(core::TopKRecall(r, truth, 5), 0.0);  // executes cleanly
}

}  // namespace
}  // namespace net
}  // namespace prospector
