// Observability layer: metric determinism under the planner thread pool,
// trace span nesting, the energy ledger audit (including an injected
// discrepancy), and the telemetry surfaced through planners and sessions.

#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/session.h"
#include "src/obs/openmetrics.h"
#include "src/data/gaussian_field.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// Concurrent increments from the same pool the planners use must not lose
// updates ("Parallel" in the name opts this into the TSan CI job).
TEST(ObsMetricsTest, ParallelCounterIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* unit = reg.counter("test.unit");
  Counter* weighted = reg.counter("test.weighted");
  constexpr int kN = 100000;
  util::ThreadPool pool(4);
  pool.ParallelFor(kN, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      unit->Increment();
      weighted->Add(i + 1);
    }
  });
  EXPECT_EQ(unit->value(), kN);
  EXPECT_EQ(weighted->value(),
            static_cast<int64_t>(kN) * (kN + 1) / 2);
}

TEST(ObsMetricsTest, SnapshotOrderingIsNameSortedNotRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("z.last")->Increment();
  reg.counter("a.first")->Add(2);
  reg.counter("m.mid")->Add(3);
  reg.gauge("z.g")->Set(1.0);
  reg.gauge("a.g")->Set(2.0);
  reg.histogram("z.h")->Record(1.0);
  reg.histogram("a.h")->Record(2.0);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.mid");
  EXPECT_EQ(snap.counters[2].first, "z.last");
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "a.g");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].first, "a.h");

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"a.first\""), std::string::npos);
  EXPECT_LT(json.find("\"a.first\""), json.find("\"z.last\""));
}

TEST(ObsMetricsTest, HistogramTracksCountSumMinMaxAndBuckets) {
  Histogram h;
  h.Record(0.5);  // bucket 0: v <= 1
  h.Record(3.0);  // bucket 2: (2, 4]
  h.Record(3.5);
  Histogram::Data d = h.Snapshot();
  EXPECT_EQ(d.count, 3);
  EXPECT_DOUBLE_EQ(d.sum, 7.0);
  EXPECT_DOUBLE_EQ(d.min, 0.5);
  EXPECT_DOUBLE_EQ(d.max, 3.5);
  ASSERT_EQ(d.buckets.size(), static_cast<size_t>(Histogram::kNumBuckets));
  EXPECT_EQ(d.buckets[0], 1);
  EXPECT_EQ(d.buckets[2], 2);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0);
}

// The tentpole determinism contract: the counter snapshot after a Plan()
// call is bit-identical whether the planner ran serial or on 4 threads.
TEST(ObsMetricsTest, PlannerCountersIdenticalAcrossParallelism) {
  Rng rng(7);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 60;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  auto field = data::GaussianField::Random(60, 40, 60, 1, 9, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(60, 8);
  for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));
  core::PlannerContext ctx;
  ctx.topology = &topo;

  auto run = [&](int threads) {
    MetricsRegistry::Global().Reset();
    core::LpPlannerOptions opts;
    opts.threads = threads;
    core::LpFilterPlanner planner(opts);
    auto plan = planner.Plan(ctx, samples, core::PlanRequest{8, 14.0});
    EXPECT_TRUE(plan.ok());
    return MetricsRegistry::Global().Snapshot();
  };

  MetricsSnapshot serial = run(1);
  MetricsSnapshot parallel = run(4);
  EXPECT_EQ(serial.counters, parallel.counters);
  EXPECT_EQ(serial.ToJson(), parallel.ToJson());
#ifndef PROSPECTOR_OBS_DISABLED
  // With instrumentation on, the LP layer must actually have reported.
  bool saw_lp = false;
  for (const auto& [name, value] : serial.counters) {
    if (name == "lp.solves") saw_lp = value > 0;
  }
  EXPECT_TRUE(saw_lp);
#endif
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, SpanNestingDepthsAndContainment) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  {
    ScopedSpan outer("test.outer");
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
    {
      ScopedSpan inner("test.inner");
      EXPECT_EQ(ScopedSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(ScopedSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(ScopedSpan::CurrentDepth(), 0);
  Tracer::Global().Disable();

  std::vector<TraceEvent> events = Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].depth, 1);
  // The child opens no earlier and closes no later than the parent.
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Clear();
  Tracer::Global().Disable();
  { ScopedSpan span("test.invisible"); }
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

TEST(ObsTraceTest, WriteChromeTraceProducesLoadableJson) {
  Tracer::Global().Clear();
  Tracer::Global().Enable();
  {
    ScopedSpan a("test.write.a");
    ScopedSpan b("test.write.b");
  }
  Tracer::Global().Disable();

  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(Tracer::Global().WriteChromeTrace(path));

  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("test.write.a"), std::string::npos);
  EXPECT_NE(contents.find("\"ph\": \"X\""), std::string::npos);
  // Writing drains: the buffer is empty afterwards.
  EXPECT_TRUE(Tracer::Global().Drain().empty());
}

// ---------------------------------------------------------------------------
// Energy ledger audit
// ---------------------------------------------------------------------------

TEST(ObsAuditTest, LedgerAgreementWithinFloatRoundOff) {
  EXPECT_TRUE(CheckEnergyLedger(5.0, 5.0).ok);
  EXPECT_TRUE(CheckEnergyLedger(1.0, 1.0 + 1e-8).ok);
  EXPECT_TRUE(CheckEnergyLedger(0.0, 0.0).ok);
}

TEST(ObsAuditTest, LedgerDivergenceAndNanFail) {
  EnergyAuditResult r = CheckEnergyLedger(5.0, 5.2);
  EXPECT_FALSE(r.ok);
  EXPECT_NEAR(r.divergence_mj, -0.2, 1e-12);  // signed: claimed - measured
  EXPECT_FALSE(CheckEnergyLedger(std::nan(""), 1.0).ok);
  EXPECT_FALSE(CheckEnergyLedger(1.0, std::nan("")).ok);
}

// Satellite (c): a deliberate discrepancy must be caught, counted, and
// reported — the audit demonstrably fails when the ledgers disagree.
TEST(ObsAuditTest, InjectedDiscrepancyBumpsFailureCounter) {
  MetricsRegistry::Global().Reset();
  SetEnergyAuditFailFast(false);
  EXPECT_FALSE(AuditEnergy("test.injected", 10.0, 12.0));
  EXPECT_TRUE(AuditEnergy("test.agree", 3.0, 3.0));
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_EQ(reg.counter("audit.energy.checks")->value(), 2);
  EXPECT_EQ(reg.counter("audit.energy.failures")->value(), 1);
}

TEST(ObsAuditDeathTest, FailFastAbortsOnDivergence) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetEnergyAuditFailFast(true);
        AuditEnergy("test.failfast", 10.0, 12.0);
      },
      "ENERGY LEDGER AUDIT FAILED");
}

// The executor's claimed total must match the simulator's independent
// ledger on a real collection — the audit passes on existing scenarios.
TEST(ObsAuditTest, ExecutorLedgersAgreeOnCollectionScenario) {
  MetricsRegistry::Global().Reset();
  SetEnergyAuditFailFast(true);  // any divergence kills the test hard
  Rng rng(11);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 50;
  geo.radio_range = 26.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  auto field = data::GaussianField::Random(50, 40, 60, 1, 9, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(50, 5);
  for (int s = 0; s < 15; ++s) samples.Add(field.Sample(&rng));
  core::PlannerContext ctx;
  ctx.topology = &topo;
  core::LpFilterPlanner planner;
  auto plan = planner.Plan(ctx, samples, core::PlanRequest{5, 10.0});
  ASSERT_TRUE(plan.ok());

  net::NetworkSimulator sim(&topo, ctx.energy);
  for (int epoch = 0; epoch < 10; ++epoch) {
    std::vector<double> truth = field.Sample(&rng);
    core::ExecutionResult r =
        core::CollectionExecutor::Execute(*plan, truth, &sim);
    EXPECT_GT(r.total_energy_mj(), 0.0);
    sim.ResetStats();
  }
  SetEnergyAuditFailFast(false);

#ifndef PROSPECTOR_OBS_DISABLED
  MetricsRegistry& reg = MetricsRegistry::Global();
  EXPECT_GE(reg.counter("audit.energy.checks")->value(), 10);
  EXPECT_EQ(reg.counter("audit.energy.failures")->value(), 0);
#endif
}

// ---------------------------------------------------------------------------
// Surfaced telemetry: SolveStats, per-edge ledger, session tick fields
// ---------------------------------------------------------------------------

TEST(ObsStatsTest, SolveStatsSurfaceThroughPlanner) {
  Rng rng(13);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 40;
  geo.radio_range = 26.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  auto field = data::GaussianField::Random(40, 40, 60, 1, 9, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(40, 5);
  for (int s = 0; s < 12; ++s) samples.Add(field.Sample(&rng));
  core::PlannerContext ctx;
  ctx.topology = &topo;

  core::LpFilterPlanner planner;
  EXPECT_EQ(planner.last_stats().lp.rows, 0);  // zero before any Plan()
  auto plan = planner.Plan(ctx, samples, core::PlanRequest{5, 12.0});
  ASSERT_TRUE(plan.ok());
  const core::PlannerStats& stats = planner.last_stats();
  EXPECT_GT(stats.lp.rows, 0);
  EXPECT_GT(stats.lp.columns, 0);
  EXPECT_GT(stats.lp.total_iterations(), 0);
  EXPECT_GE(stats.lp.blands_activations, 0);
  EXPECT_GE(stats.repair_rounds, 0);
  EXPECT_GE(stats.fill_passes, 0);
}

TEST(ObsStatsTest, PerEdgeLedgerSumsMatchAggregate) {
  Rng rng(17);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 30;
  geo.radio_range = 30.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  for (int u = 0; u < topo.num_nodes(); ++u) {
    if (u == topo.root()) continue;
    sim.TryUnicast(u, 1 + (u % 3));
  }
  const net::TransmissionStats& stats = sim.stats();
  int messages = 0, retries = 0, drops = 0;
  double energy = 0.0;
  for (const net::EdgeTraffic& e : stats.per_edge) {
    messages += e.messages;
    retries += e.retries;
    drops += e.drops;
    energy += e.energy_mj;
  }
  EXPECT_EQ(messages, stats.unicast_messages);
  EXPECT_EQ(retries, stats.retries);
  EXPECT_EQ(drops, stats.drops);
  EXPECT_NEAR(energy, stats.total_energy_mj, 1e-9);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(ObsFlightTest, SnapshotMergesByEpochSiteSeq) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  EXPECT_EQ(fr.epoch(), -1);
  fr.Record(FlightKind::kNote, "test.pre", -1, 0.0, 0.0);  // epoch -1
  fr.SetEpoch(3);
  fr.Record(FlightKind::kNote, "test.site.b", 1, 1.5, 2.5);
  fr.Record(FlightKind::kReplan, "test.site.a", 2, 0.25, 0.75);
  fr.SetEpoch(4);
  fr.Record(FlightKind::kHeal, "test.site.a", -1, 9.0, 1.0);

  const std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].epoch, -1);
  EXPECT_STREQ(events[0].site, "test.pre");
  // Within one epoch, site name breaks the tie before sequence.
  EXPECT_STREQ(events[1].site, "test.site.a");
  EXPECT_EQ(events[1].kind, FlightKind::kReplan);
  EXPECT_EQ(events[1].query_id, 2);
  EXPECT_STREQ(events[2].site, "test.site.b");
  EXPECT_DOUBLE_EQ(events[2].a, 1.5);
  EXPECT_EQ(events[3].epoch, 4);
  fr.Clear();
}

TEST(ObsFlightTest, ClearResetsSequenceCountersForReplayDeterminism) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.Record(FlightKind::kNote, "test.seq", -1, 1.0, 0.0);
  fr.Record(FlightKind::kNote, "test.seq", -1, 2.0, 0.0);
  const std::vector<FlightEvent> first = fr.Snapshot();
  fr.Clear();
  EXPECT_EQ(fr.epoch(), -1);  // Clear also resets the ambient epoch
  fr.Record(FlightKind::kNote, "test.seq", -1, 1.0, 0.0);
  fr.Record(FlightKind::kNote, "test.seq", -1, 2.0, 0.0);
  const std::vector<FlightEvent> second = fr.Snapshot();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, second[i].seq);  // bit-identical replays
    EXPECT_DOUBLE_EQ(first[i].a, second[i].a);
  }
  fr.Clear();
}

TEST(ObsFlightTest, RingDropsOldestAndCountsDrops) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.SetCapacity(4);
  for (int i = 0; i < 6; ++i) {
    fr.Record(FlightKind::kNote, "test.ring", -1, static_cast<double>(i), 0.0);
  }
  const std::vector<FlightEvent> events = fr.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().a, 2.0);  // 0 and 1 rolled off
  EXPECT_DOUBLE_EQ(events.back().a, 5.0);
  EXPECT_EQ(fr.dropped(), 2);
  fr.SetCapacity(FlightRecorder::kDefaultCapacity);
  fr.Clear();
}

TEST(ObsFlightTest, DumpJsonCarriesSchemaColumnsAndEvents) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Clear();
  fr.SetEpoch(1);
  fr.Record(FlightKind::kGuardReject, "test.dump", 7, 0.5, 1.0);
  const std::string json = fr.DumpJson();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"test.dump\""), std::string::npos);
  EXPECT_NE(json.find("\"guard_reject\""), std::string::npos);
  fr.Clear();
}

// ---------------------------------------------------------------------------
// OpenMetrics exposition
// ---------------------------------------------------------------------------

TEST(ObsOpenMetricsTest, NameSanitization) {
  EXPECT_EQ(OpenMetricsName("session.replans"), "prospector_session_replans");
  EXPECT_EQ(OpenMetricsName("a-b c/d"), "prospector_a_b_c_d");
}

TEST(ObsOpenMetricsTest, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry reg;
  reg.counter("test.count")->Add(3);
  reg.gauge("test.gauge")->Set(2.5);
  Histogram* h = reg.histogram("test.hist");
  h->Record(0.5);  // bucket 0 (le 1)
  h->Record(3.0);  // bucket 2 (le 4)

  const std::string text = ToOpenMetrics(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE prospector_test_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("prospector_test_count_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prospector_test_gauge gauge"),
            std::string::npos);
  EXPECT_NE(text.find("prospector_test_gauge 2.5"), std::string::npos);
  // Buckets are cumulative and close with +Inf, _count, _sum.
  EXPECT_NE(text.find("prospector_test_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("prospector_test_hist_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("prospector_test_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("prospector_test_hist_count 2"), std::string::npos);
  EXPECT_NE(text.find("prospector_test_hist_sum 3.5"), std::string::npos);
  // A complete exposition terminates with EOF; the body variant does not.
  EXPECT_EQ(text.rfind("# EOF\n"), text.size() - 6);
  const std::string body = ToOpenMetricsBody(reg.Snapshot());
  EXPECT_EQ(body.find("# EOF"), std::string::npos);
  EXPECT_EQ(text, body + "# EOF\n");
}

TEST(ObsOpenMetricsTest, EqualStateRendersByteIdentically) {
  const auto build = [] {
    MetricsRegistry reg;
    reg.counter("test.b")->Add(2);
    reg.counter("test.a")->Increment();
    reg.histogram("test.h")->Record(7.0);
    return ToOpenMetrics(reg.Snapshot());
  };
  EXPECT_EQ(build(), build());
}

// ---------------------------------------------------------------------------
// Histogram sum compensation (satellite: Kahan/Neumaier fix)
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, HistogramSumSurvivesCatastrophicCancellation) {
  // Naive accumulation yields 0.0 here; plain Kahan also fails (the large
  // magnitude arrives second). Neumaier keeps the two small terms.
  Histogram h;
  h.Record(1.0);
  h.Record(1e100);
  h.Record(1.0);
  h.Record(-1e100);
  EXPECT_DOUBLE_EQ(h.Snapshot().sum, 2.0);
}

TEST(ObsMetricsTest, HistogramSumKeepsSmallAddendsOnLargeBase) {
  Histogram h;
  h.Record(1e16);  // ULP is 2: every naive +1.0 below would vanish
  for (int i = 0; i < 1000; ++i) h.Record(1.0);
  const double sum = h.Snapshot().sum;
  EXPECT_DOUBLE_EQ(sum, 1e16 + 1000.0);
  EXPECT_NE(sum, 1e16);
  // Reset clears the compensation term along with the raw sum.
  h.Reset();
  h.Record(2.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().sum, 2.0);
}

TEST(ObsSessionTest, TickSurfacesRecallAndReplanLatency) {
  Rng rng(19);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 50;
  geo.radio_range = 26.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  auto field = data::GaussianField::Random(50, 40, 60, 1, 9, &rng);

  core::SessionOptions opts;
  opts.k = 5;
  opts.energy_budget_mj = 10.0;
  opts.bootstrap_sweeps = 4;
  opts.audit_every = 5;
  core::TopKQuerySession session(&topo, {}, {}, opts, 23);

  int scored_epochs = 0;
  for (int t = 0; t < 30; ++t) {
    auto r = session.Tick(field.Sample(&rng));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    using Kind = core::TopKQuerySession::TickResult::Kind;
    if (r->kind == Kind::kQuery || r->kind == Kind::kAudit) {
      EXPECT_GE(r->recall, 0.0);
      EXPECT_LE(r->recall, 1.0);
      ++scored_epochs;
    } else {
      EXPECT_LT(r->recall, 0.0);  // no answer, no recall
    }
    EXPECT_GE(r->replan_latency_ms, 0.0);
    if (!r->replanned) {
      EXPECT_DOUBLE_EQ(r->replan_latency_ms, 0.0);
    }
  }
  EXPECT_GT(scored_epochs, 15);
}

}  // namespace
}  // namespace obs
}  // namespace prospector
