#include "src/core/transport_guard.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/net/energy_model.h"
#include "src/net/fault_injector.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {
namespace {

net::DeliveryResult CleanDelivery(int copies = 1) {
  net::DeliveryResult d;
  d.delivered = true;
  d.delivered_copies = copies;
  return d;
}

// --- Header stamping ----------------------------------------------------

TEST(TransportGuardTest, StampsMonotonicPerEdgeSequences) {
  TransportGuard guard(true);
  guard.StartEpoch(3);
  const FencedHeader a1 = guard.Stamp(1);
  const FencedHeader a2 = guard.Stamp(1);
  const FencedHeader b1 = guard.Stamp(2);
  EXPECT_EQ(a1.seq, 1u);
  EXPECT_EQ(a2.seq, 2u);
  EXPECT_EQ(b1.seq, 1u);  // per-edge counters are independent
  EXPECT_EQ(a1.send_epoch, 3);
  EXPECT_EQ(a1.plan_epoch, 0);
}

TEST(TransportGuardTest, HeaderBytesChargedOnlyWhenFencing) {
  EXPECT_EQ(TransportGuard(true).header_bytes(), TransportGuard::kHeaderBytes);
  EXPECT_EQ(TransportGuard(false).header_bytes(), 0);
}

// --- Duplicate suppression ----------------------------------------------

TEST(TransportGuardTest, FencedFoldsEachSequenceExactlyOnce) {
  TransportGuard guard(true);
  const FencedHeader h = guard.Stamp(1);
  EXPECT_EQ(guard.AdmitCopies(CleanDelivery(3), h, 1), 1);
  EXPECT_EQ(guard.counters().duplicates_dropped, 2);
  // A replay of an already-folded sequence number is suppressed outright.
  EXPECT_EQ(guard.AdmitCopies(CleanDelivery(1), h, 1), 0);
  EXPECT_EQ(guard.counters().duplicates_dropped, 3);
  EXPECT_EQ(guard.counters().duplicates_folded, 0);
}

TEST(TransportGuardTest, NaiveModeFoldsEveryCopy) {
  TransportGuard guard(false);
  const FencedHeader h = guard.Stamp(1);
  EXPECT_EQ(guard.AdmitCopies(CleanDelivery(3), h, 1), 3);
  EXPECT_EQ(guard.counters().duplicates_folded, 2);
  EXPECT_EQ(guard.counters().duplicates_dropped, 0);
}

// --- Integrity and staleness --------------------------------------------

TEST(TransportGuardTest, CorruptPayloadRejectedInBothModes) {
  for (const bool fencing : {true, false}) {
    TransportGuard guard(fencing);
    net::DeliveryResult d = CleanDelivery(0);
    d.corrupted = true;
    EXPECT_EQ(guard.AdmitCopies(d, guard.Stamp(1), 1), 0) << fencing;
    EXPECT_EQ(guard.counters().corrupt_rejected, 1) << fencing;
  }
}

TEST(TransportGuardTest, StaleEpochAndStalePlanAreRefused) {
  TransportGuard guard(true);
  guard.StartEpoch(5);
  const FencedHeader old_epoch = guard.Stamp(1);
  guard.StartEpoch(6);  // the message is now one epoch old
  EXPECT_EQ(guard.AdmitCopies(CleanDelivery(), old_epoch, 1), 0);
  EXPECT_EQ(guard.counters().stale_fenced, 1);

  const FencedHeader old_plan = guard.Stamp(1);
  guard.BumpPlanEpoch();  // replan: in-flight stamps carry the old plan
  EXPECT_EQ(guard.AdmitCopies(CleanDelivery(), old_plan, 1), 0);
  EXPECT_EQ(guard.counters().stale_fenced, 2);
}

// --- Deferred delivery --------------------------------------------------

TEST(TransportGuardTest, FencingDestroysDeferredMessagesOnArrival) {
  TransportGuard guard(true);
  guard.StartEpoch(1);
  DelayedMessage m;
  m.channel = GuardChannel::kCollect;
  m.child_edge = 2;
  m.arrival_epoch = 3;
  m.header = guard.Stamp(2);
  m.flows = {{Reading{2, 0.5}}};
  guard.Defer(m);
  EXPECT_EQ(guard.counters().deferred, 1);
  EXPECT_EQ(guard.pending(), 1);
  // Not due yet; and neither other channels nor other edges see it.
  EXPECT_TRUE(guard.DrainArrivals(GuardChannel::kCollect, 2).empty());
  guard.StartEpoch(3);
  EXPECT_TRUE(guard.DrainArrivals(GuardChannel::kProof, 2).empty());
  EXPECT_TRUE(guard.DrainArrivals(GuardChannel::kCollect, 1).empty());
  EXPECT_EQ(guard.pending(), 1);
  // Due on the right channel+edge: a delayed message is stale by
  // construction, so the fence destroys it.
  EXPECT_TRUE(guard.DrainArrivals(GuardChannel::kCollect, 2).empty());
  EXPECT_EQ(guard.counters().stale_fenced, 1);
  EXPECT_EQ(guard.pending(), 0);
}

TEST(TransportGuardTest, NaiveModeHandsBackDeferredMessages) {
  TransportGuard guard(false);
  guard.StartEpoch(1);
  DelayedMessage m;
  m.channel = GuardChannel::kCollect;
  m.child_edge = 4;
  m.arrival_epoch = 2;
  m.flows = {{Reading{4, 1.25}}};
  guard.Defer(std::move(m));
  guard.StartEpoch(2);
  std::vector<DelayedMessage> due =
      guard.DrainArrivals(GuardChannel::kCollect, 4);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_EQ(due[0].flows.size(), 1u);
  EXPECT_EQ(due[0].flows[0][0].node, 4);
  EXPECT_EQ(guard.counters().stale_folded, 1);
}

TEST(TransportGuardTest, ClearDropsInFlightStateOnRebuild) {
  TransportGuard guard(true);
  guard.StartEpoch(1);
  (void)guard.Stamp(1);
  DelayedMessage m;
  m.child_edge = 1;
  m.arrival_epoch = 2;
  guard.Defer(m);
  guard.Clear();
  EXPECT_EQ(guard.pending(), 0);
  // Sequence counters restart: the new tree's edge ids mean new edges.
  EXPECT_EQ(guard.Stamp(1).seq, 1u);
}

// --- Executor integration over a scripted adversary ---------------------

/// Chain 0-1-2-3, full-bandwidth top-4 plan: every reading can reach the
/// root, so the clean answer is the whole network best-first.
struct ChainFixture {
  net::Topology topo = net::BuildChain(4);
  std::vector<double> truth = {0.1, 0.9, 0.5, 0.7};
  QueryPlan plan = QueryPlan::Bandwidth(4, {0, 3, 2, 1});

  ExecutionResult Run(net::NetworkSimulator* sim, TransportGuard* guard) {
    return CollectionExecutor::Execute(plan, truth, sim, true, guard);
  }
};

TEST(GuardedExecutorTest, FencedGuardWithoutAdversaryOnlyAddsHeaderBytes) {
  ChainFixture fx;
  net::NetworkSimulator plain_sim(&fx.topo, net::EnergyModel{});
  const ExecutionResult plain = fx.Run(&plain_sim, nullptr);

  net::NetworkSimulator guarded_sim(&fx.topo, net::EnergyModel{});
  TransportGuard guard(true);
  const ExecutionResult guarded = fx.Run(&guarded_sim, &guard);

  EXPECT_TRUE(guarded.answer == plain.answer);
  EXPECT_FALSE(guarded.degraded);
  // Three unicasts (edges 3, 2, 1), each paying one fenced header.
  const net::EnergyModel e;
  EXPECT_NEAR(guarded.collection_energy_mj,
              plain.collection_energy_mj +
                  3 * TransportGuard::kHeaderBytes * e.per_byte_mj,
              1e-12);
  EXPECT_DOUBLE_EQ(guarded.trigger_energy_mj, plain.trigger_energy_mj);
}

TEST(GuardedExecutorTest, ScriptedDuplicationIsTransparentUnderFencing) {
  ChainFixture fx;
  net::NetworkSimulator plain_sim(&fx.topo, net::EnergyModel{});
  TransportGuard plain_guard(true);
  const ExecutionResult plain = fx.Run(&plain_sim, &plain_guard);

  net::FaultSchedule schedule;
  schedule.DuplicateEdge(0, 2, 1.0, 2);
  net::FaultInjector injector(4, schedule);
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&fx.topo, net::EnergyModel{});
  sim.set_fault_injector(&injector);
  TransportGuard guard(true);
  const ExecutionResult dup = fx.Run(&sim, &guard);

  // One message crosses edge 2; its two extra copies fold zero times.
  EXPECT_TRUE(dup.answer == plain.answer);
  EXPECT_FALSE(dup.degraded);
  EXPECT_EQ(guard.counters().duplicates_dropped, 2);
  EXPECT_EQ(sim.stats().duplicates, 2);
  // The sender paid for the retransmissions even though the receiver
  // suppressed them.
  EXPECT_GT(dup.collection_energy_mj, plain.collection_energy_mj);
}

TEST(GuardedExecutorTest, ScriptedCorruptionDegradesLikeALoss) {
  ChainFixture fx;
  net::FaultSchedule schedule;
  schedule.CorruptEdge(0, 2, 1.0);
  net::FaultInjector injector(4, schedule);
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&fx.topo, net::EnergyModel{});
  sim.set_fault_injector(&injector);
  TransportGuard guard(true);
  const ExecutionResult result = fx.Run(&sim, &guard);

  // Node 2's two-value bundle is mangled in flight: the subtree below
  // edge 2 vanishes from the answer and the run says so.
  EXPECT_TRUE(result.degraded);
  EXPECT_GE(result.values_lost, 2);
  EXPECT_EQ(guard.counters().corrupt_rejected, 1);
  EXPECT_EQ(sim.stats().corrupted, 1);
  ASSERT_EQ(result.answer.size(), 2u);
  EXPECT_EQ(result.answer[0].node, 1);
  EXPECT_EQ(result.answer[1].node, 0);
}

TEST(GuardedExecutorTest, DelayedMessageIsFencedOnItsLateArrival) {
  ChainFixture fx;
  net::FaultSchedule schedule;
  schedule.DelayEdge(0, 2, 1.0, 1);
  net::FaultInjector injector(4, schedule);
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&fx.topo, net::EnergyModel{});
  sim.set_fault_injector(&injector);
  TransportGuard guard(true);

  const ExecutionResult first = fx.Run(&sim, &guard);
  EXPECT_TRUE(first.degraded);
  EXPECT_EQ(first.messages_deferred, 1);
  EXPECT_EQ(guard.counters().deferred, 1);
  EXPECT_EQ(guard.pending(), 1);
  ASSERT_EQ(first.answer.size(), 2u);
  EXPECT_EQ(first.answer[0].node, 1);

  // Next epoch the parked message lands — one epoch stale, so the fence
  // refuses it and the answer never contains last epoch's readings.
  sim.set_epoch(1);
  guard.StartEpoch(1);
  const ExecutionResult second = fx.Run(&sim, &guard);
  EXPECT_EQ(guard.counters().stale_fenced, 1);
  ASSERT_EQ(second.answer.size(), 2u);
  EXPECT_EQ(second.answer[0].node, 1);
}

TEST(GuardedExecutorTest, NaiveProtocolFoldsTheStaleArrival) {
  ChainFixture fx;
  net::FaultSchedule schedule;
  schedule.DelayEdge(0, 2, 1.0, 1);
  net::FaultInjector injector(4, schedule);
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&fx.topo, net::EnergyModel{});
  sim.set_fault_injector(&injector);
  TransportGuard guard(false);

  (void)fx.Run(&sim, &guard);
  sim.set_epoch(1);
  guard.StartEpoch(1);
  const ExecutionResult second = fx.Run(&sim, &guard);
  // The broken protocol folds the deferred epoch-0 bundle as if it were
  // fresh — exactly the damage the chaos soak's naive arm must surface.
  EXPECT_EQ(guard.counters().stale_folded, 1);
  EXPECT_GT(second.answer.size(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace prospector
