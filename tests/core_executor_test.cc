#include "src/core/executor.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/core/naive.h"
#include "src/core/oracle.h"
#include "src/core/plan_eval.h"
#include "src/net/simulator.h"
#include "src/sampling/sample_set.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

std::vector<double> RandomTruth(int n, Rng* rng) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = rng->Uniform(0.0, 100.0);
  return v;
}

TEST(CollectionExecutorTest, LocalFilteringKeepsTopB) {
  // Chain 0<-1<-2<-3 with bandwidths 1 everywhere: each hop keeps only the
  // best value seen so far.
  net::Topology topo = net::BuildChain(4);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(1, {0, 1, 1, 1});
  const std::vector<double> truth{5, 1, 9, 3};
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  ASSERT_EQ(r.answer.size(), 1u);
  EXPECT_EQ(r.answer[0].node, 2);  // 9 survives the filtering
  EXPECT_EQ(r.arrived.size(), 2u); // the filtered value + root's own
  EXPECT_EQ(sim.stats().values_transmitted, 3);  // one value per edge
}

TEST(CollectionExecutorTest, ZeroBandwidthSendsNothing) {
  net::Topology topo = net::BuildChain(3);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 0, 2});
  p.Normalize(topo);
  const std::vector<double> truth{1, 2, 3};
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim,
                                                  /*include_trigger=*/false);
  EXPECT_EQ(sim.stats().unicast_messages, 0);
  ASSERT_EQ(r.answer.size(), 1u);  // only the root's own reading
  EXPECT_EQ(r.answer[0].node, 0);
}

TEST(CollectionExecutorTest, InconsistentPlanChargesNothingBelowDeadEdge) {
  // Chain 0<-1<-2 where node 2 is granted bandwidth beneath parent edge 1
  // that carries nothing (an un-normalized, inconsistent plan). The
  // executor must clamp node 2's effective bandwidth to zero rather than
  // charge it acquisition + Unicast energy for a reading node 1 drops.
  net::Topology topo = net::BuildChain(3);
  net::EnergyModel energy;
  energy.acquisition_mj = 0.5;
  net::NetworkSimulator sim(&topo, energy);
  QueryPlan p = QueryPlan::Bandwidth(2, {0, 0, 1});  // deliberately not
                                                     // Normalize()d
  const std::vector<double> truth{1, 2, 3};
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim,
                                                  /*include_trigger=*/false);
  EXPECT_EQ(sim.stats().unicast_messages, 0);
  EXPECT_EQ(sim.stats().acquisitions, 0);
  EXPECT_DOUBLE_EQ(r.collection_energy_mj, 0.0);
  ASSERT_EQ(r.arrived.size(), 1u);  // only the root's own reading
  EXPECT_EQ(r.arrived[0].node, 0);
}

TEST(CollectionExecutorTest, NodeSelectionForwardsWithoutFiltering) {
  // Root with child 1, grandchildren 2,3. Choose 2 and 3 only.
  auto topo = net::Topology::FromParents({-1, 0, 1, 1}).value();
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = QueryPlan::NodeSelection(1, {0, 0, 1, 1}, topo);
  const std::vector<double> truth{0, 100, 5, 7};  // node 1 is high but unchosen
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  // Both chosen values arrive even though node 1's own larger value exists.
  std::set<int> arrived_nodes;
  for (const Reading& x : r.arrived) arrived_nodes.insert(x.node);
  EXPECT_EQ(arrived_nodes, (std::set<int>{0, 2, 3}));
  // Edge 1 carried both values in one message.
  EXPECT_EQ(sim.stats().unicast_messages, 3);
  EXPECT_EQ(sim.stats().values_transmitted, 4);
}

TEST(CollectionExecutorTest, RecallMetric) {
  net::Topology topo = net::BuildStar(5);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  const std::vector<double> truth{0, 10, 20, 30, 40};
  // Choose only node 4 (the max). k=2: true top-2 = {4, 3}.
  QueryPlan p = QueryPlan::NodeSelection(2, {0, 0, 0, 0, 1}, topo);
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  EXPECT_DOUBLE_EQ(TopKRecall(r, truth, 2), 0.5);
}

class NaiveKPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NaiveKPropertyTest, AlwaysExact) {
  Rng rng(GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{40}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{10}));
  net::Topology topo = net::BuildRandomTree(n, 4, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  const std::vector<double> truth = RandomTruth(n, &rng);
  QueryPlan p = MakeNaiveKPlan(topo, k);
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  EXPECT_EQ(r.answer, TrueTopK(truth, k));
  EXPECT_DOUBLE_EQ(TopKRecall(r, truth, k), 1.0);
  // Minimum possible message count: one per edge.
  EXPECT_EQ(sim.stats().unicast_messages, n - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveKPropertyTest, ::testing::Range(1, 30));

class Naive1PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Naive1PropertyTest, ExactButManyMessages) {
  Rng rng(100 + GetParam());
  const int n = 8 + static_cast<int>(rng.UniformInt(uint64_t{25}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  const std::vector<double> truth = RandomTruth(n, &rng);
  Naive1Result r = Naive1Executor::Execute(truth, k, &sim);
  EXPECT_EQ(r.answer, TrueTopK(truth, k));
  // Every transported value costs a request + response message pair, and
  // values can be re-transported once per hop.
  EXPECT_GE(r.messages, 2 * std::min(k, n - 1));
  EXPECT_EQ(r.messages, sim.stats().unicast_messages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Naive1PropertyTest, ::testing::Range(1, 30));

TEST(Naive1Test, MoreExpensivePerValueThanNaiveK) {
  Rng rng(77);
  const int n = 40, k = 10;
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);

  net::NetworkSimulator sim_k(&topo, net::EnergyModel{});
  CollectionExecutor::Execute(MakeNaiveKPlan(topo, k), truth, &sim_k,
                              /*include_trigger=*/false);
  net::NetworkSimulator sim_1(&topo, net::EnergyModel{});
  Naive1Executor::Execute(truth, k, &sim_1);
  // The per-message overhead makes the pipelined algorithm far costlier.
  EXPECT_GT(sim_1.stats().total_energy_mj, sim_k.stats().total_energy_mj);
}

TEST(OracleTest, ExactAtMinimalCost) {
  Rng rng(13);
  const int n = 30, k = 5;
  net::Topology topo = net::BuildRandomTree(n, 3, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  QueryPlan p = MakeOraclePlan(topo, truth, k);
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  EXPECT_DOUBLE_EQ(TopKRecall(r, truth, k), 1.0);
  EXPECT_LE(p.CountVisitedNodes(topo), k + 1);
}

class SampleHitsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SampleHitsPropertyTest, PredictsExecutorDeliveries) {
  // SampleHits (the planners' objective surrogate) must equal the number
  // of top-k values the executor actually delivers on that sample.
  Rng rng(500 + GetParam());
  const int n = 12 + static_cast<int>(rng.UniformInt(uint64_t{25}));
  const int k = 1 + static_cast<int>(rng.UniformInt(uint64_t{6}));
  net::Topology topo = net::BuildRandomTree(n, 4, &rng);
  const std::vector<double> truth = RandomTruth(n, &rng);

  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, k);
  samples.Add(truth);

  std::vector<int> bw(n, 0);
  for (int e = 1; e < n; ++e) {
    bw[e] = static_cast<int>(rng.UniformInt(uint64_t{4}));  // 0..3
  }
  QueryPlan p = QueryPlan::Bandwidth(k, std::move(bw));
  p.Normalize(topo);

  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  ExecutionResult r = CollectionExecutor::Execute(p, truth, &sim);
  std::vector<char> arrived(n, 0);
  for (const Reading& x : r.arrived) arrived[x.node] = 1;
  int delivered = 0;
  for (const Reading& x : TrueTopK(truth, k)) delivered += arrived[x.node];
  EXPECT_EQ(SampleHitsForSample(p, topo, samples, 0), delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleHitsPropertyTest,
                         ::testing::Range(1, 40));

}  // namespace
}  // namespace core
}  // namespace prospector
