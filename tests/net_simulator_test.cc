#include "src/net/simulator.h"

#include <gtest/gtest.h>

#include "src/net/energy_model.h"
#include "src/net/failure.h"
#include "src/net/topology.h"

namespace prospector {
namespace net {
namespace {

TEST(EnergyModelTest, MessageCostIsAffineInValues) {
  EnergyModel e;
  e.per_message_mj = 0.4;
  e.per_byte_mj = 0.0015;
  e.bytes_per_value = 4;
  EXPECT_DOUBLE_EQ(e.MessageCost(0), 0.4);
  EXPECT_DOUBLE_EQ(e.MessageCost(10), 0.4 + 0.0015 * 40);
  EXPECT_DOUBLE_EQ(e.MessageCostWithExtra(2, 3),
                   e.MessageCost(2) + 3 * 0.0015);
  EXPECT_DOUBLE_EQ(e.PerValueCost(), 0.006);
  EXPECT_DOUBLE_EQ(e.BroadcastCost(), 0.4);
}

TEST(EnergyModelTest, PerMessageDominatesSmallMessages) {
  // The property motivating approximation: contacting a node at all is
  // clearly more expensive than adding a value to an existing message
  // (c_m several times c_v), yet value transport stays non-negligible
  // (which is what makes local filtering worthwhile).
  EnergyModel e;
  EXPECT_GT(e.MessageCost(1), 5 * e.PerValueCost());
  EXPECT_GT(100 * e.PerValueCost(), e.per_message_mj);
}

TEST(FailureModelTest, ExpectedCostFactor) {
  FailureModel f;
  f.edge_failure_prob = {0.0, 0.5, 0.1};
  f.reroute_cost_factor = 3.0;
  EXPECT_DOUBLE_EQ(f.ExpectedCostFactor(1), 2.0);   // 0.5*3 + 0.5*1
  EXPECT_DOUBLE_EQ(f.ExpectedCostFactor(2), 1.2);
  EXPECT_DOUBLE_EQ(f.ExpectedCostFactor(0), 1.0);
  EXPECT_DOUBLE_EQ(f.ExpectedCostFactor(99), 1.0);  // out of range -> 0
}

TEST(SimulatorTest, LedgerAccounting) {
  Topology topo = BuildChain(3);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.Unicast(1, 2);
  sim.Unicast(2, 0, 5);
  sim.Broadcast(0);
  const TransmissionStats& st = sim.stats();
  EXPECT_EQ(st.unicast_messages, 2);
  EXPECT_EQ(st.broadcast_messages, 1);
  EXPECT_EQ(st.values_transmitted, 2);
  EnergyModel e;
  EXPECT_NEAR(st.total_energy_mj,
              e.MessageCost(2) + e.MessageCostWithExtra(0, 5) + e.BroadcastCost(),
              1e-12);
  EXPECT_NEAR(st.per_node_energy_mj[1], e.MessageCost(2), 1e-12);

  TransmissionStats taken = sim.TakeStats();
  EXPECT_EQ(taken.unicast_messages, 2);
  EXPECT_EQ(sim.stats().unicast_messages, 0);
  EXPECT_DOUBLE_EQ(sim.stats().total_energy_mj, 0.0);
}

TEST(SimulatorTest, BroadcastPayloadChargesBytes) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  const double plain = sim.BroadcastPayload(0, 0);
  const double loaded = sim.BroadcastPayload(0, 10);
  EnergyModel e;
  EXPECT_DOUBLE_EQ(plain, e.BroadcastCost());
  EXPECT_DOUBLE_EQ(loaded, e.BroadcastCost() + 10 * e.per_byte_mj);
  EXPECT_EQ(sim.stats().broadcast_messages, 2);
}

TEST(SimulatorTest, ExpectedUnicastCostMatchesModelTimesFactor) {
  Topology topo = BuildChain(2);
  FailureModel f;
  f.edge_failure_prob = {0.0, 0.25};
  f.reroute_cost_factor = 3.0;
  NetworkSimulator sim(&topo, EnergyModel{}, f);
  EnergyModel e;
  EXPECT_DOUBLE_EQ(sim.ExpectedUnicastCost(1, 4),
                   e.MessageCost(4) * 1.5);  // 1 + 0.25 * (3 - 1)
}

TEST(SimulatorTest, AcquisitionLedger) {
  Topology topo = BuildChain(2);
  EnergyModel e;
  e.acquisition_mj = 0.7;
  NetworkSimulator sim(&topo, e);
  EXPECT_DOUBLE_EQ(sim.ChargeAcquisition(1), 0.7);
  EXPECT_EQ(sim.stats().acquisitions, 1);
  EXPECT_DOUBLE_EQ(sim.stats().per_node_energy_mj[1], 0.7);
}

TEST(SimulatorTest, StatsAccumulate) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.Unicast(1, 1);
  TransmissionStats a = sim.TakeStats();
  sim.Unicast(1, 2);
  TransmissionStats b = sim.TakeStats();
  a.Accumulate(b);
  EXPECT_EQ(a.unicast_messages, 2);
  EXPECT_EQ(a.values_transmitted, 3);
}

TEST(SimulatorTest, FailureInjectionChargesReroutes) {
  Topology topo = BuildChain(2);
  FailureModel f;
  f.edge_failure_prob = {0.0, 0.5};
  f.reroute_cost_factor = 2.0;
  NetworkSimulator sim(&topo, EnergyModel{}, f, /*seed=*/7);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sim.Unicast(1, 1);
  const double frac =
      static_cast<double>(sim.stats().reroutes) / static_cast<double>(trials);
  EXPECT_NEAR(frac, 0.5, 0.02);
  // Mean observed cost approaches the planner's expectation.
  EXPECT_NEAR(sim.stats().total_energy_mj / trials,
              sim.ExpectedUnicastCost(1, 1), 0.01);
}

TEST(SimulatorTest, NoFailuresByDefault) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  for (int i = 0; i < 100; ++i) sim.Unicast(1, 1);
  EXPECT_EQ(sim.stats().reroutes, 0);
}

TEST(TransmissionStatsTest, AccumulateGrowsPerNodeEnergyToTheLargerLedger) {
  TransmissionStats small;
  small.per_node_energy_mj = {1.0, 2.0};
  TransmissionStats big;
  big.per_node_energy_mj = {0.5, 0.5, 3.0, 4.0};
  TransmissionStats a = small;
  a.Accumulate(big);
  ASSERT_EQ(a.per_node_energy_mj.size(), 4u);
  EXPECT_DOUBLE_EQ(a.per_node_energy_mj[0], 1.5);
  EXPECT_DOUBLE_EQ(a.per_node_energy_mj[1], 2.5);
  EXPECT_DOUBLE_EQ(a.per_node_energy_mj[2], 3.0);
  EXPECT_DOUBLE_EQ(a.per_node_energy_mj[3], 4.0);
}

TEST(TransmissionStatsTest, AccumulateKeepsTailWhenOtherLedgerIsSmaller) {
  TransmissionStats big;
  big.per_node_energy_mj = {0.5, 0.5, 3.0, 4.0};
  TransmissionStats small;
  small.per_node_energy_mj = {1.0, 2.0};
  big.Accumulate(small);
  ASSERT_EQ(big.per_node_energy_mj.size(), 4u);
  EXPECT_DOUBLE_EQ(big.per_node_energy_mj[0], 1.5);
  EXPECT_DOUBLE_EQ(big.per_node_energy_mj[1], 2.5);
  EXPECT_DOUBLE_EQ(big.per_node_energy_mj[2], 3.0);
  EXPECT_DOUBLE_EQ(big.per_node_energy_mj[3], 4.0);
}

TEST(SimulatorTest, ReliableModeReroutesAndCountsThem) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{}, FailureModel::Uniform(1.0, 2.5));
  const double base = sim.energy_model().MessageCost(3);
  const DeliveryResult r = sim.TryUnicast(1, 3);
  EXPECT_TRUE(r.delivered);
  EXPECT_DOUBLE_EQ(r.energy_mj, base * 2.5);
  EXPECT_EQ(sim.stats().reroutes, 1);
  EXPECT_EQ(sim.stats().drops, 0);
  EXPECT_EQ(sim.stats().values_transmitted, 3);
}

TEST(SimulatorTest, LossyTransportRetriesWithBackoffThenDrops) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{}, FailureModel::Uniform(1.0));
  LossyTransport lossy;
  lossy.enabled = true;
  lossy.max_retries = 2;
  lossy.backoff_cost_growth = 1.5;
  sim.set_lossy_transport(lossy);
  const double base = sim.energy_model().MessageCost(4);
  const DeliveryResult r = sim.TryUnicast(1, 4);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.attempts, 3);
  EXPECT_NEAR(r.energy_mj, base * (1.0 + 1.5 + 2.25), 1e-12);
  EXPECT_EQ(sim.stats().retries, 2);
  EXPECT_EQ(sim.stats().drops, 1);
  EXPECT_EQ(sim.stats().values_lost, 4);
  EXPECT_EQ(sim.stats().values_transmitted, 0);
  EXPECT_EQ(sim.stats().unicast_messages, 3);  // every attempt hit the air
}

TEST(SimulatorTest, LossyTransportDeliversFirstTryOnCleanEdge) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});  // failure-free network
  LossyTransport lossy;
  lossy.enabled = true;
  sim.set_lossy_transport(lossy);
  const DeliveryResult r = sim.TryUnicast(1, 2);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(sim.stats().retries, 0);
  EXPECT_EQ(sim.stats().drops, 0);
  EXPECT_EQ(sim.stats().values_transmitted, 2);
}

TEST(SimulatorTest, DeadEndpointDropsEvenInReliableMode) {
  Topology topo = BuildChain(3);
  FaultInjector injector(3, FaultSchedule{}.KillNode(0, 2));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  EXPECT_FALSE(sim.node_alive(2));
  EXPECT_FALSE(sim.edge_usable(2));
  EXPECT_TRUE(sim.edge_usable(1));
  const DeliveryResult r = sim.TryUnicast(2, 5);
  EXPECT_FALSE(r.delivered);
  EXPECT_GT(r.energy_mj, 0.0);  // the sender still paid for the attempt
  EXPECT_EQ(sim.stats().drops, 1);
  EXPECT_EQ(sim.stats().values_lost, 5);
  EXPECT_EQ(sim.stats().values_transmitted, 0);
}

TEST(SimulatorTest, InjectorOverrideTrumpsBaseProbability) {
  Topology topo = BuildChain(2);
  FaultInjector injector(2, FaultSchedule{}.DegradeEdge(0, 1, 1.0));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{},
                       FailureModel::Uniform(0.0, 3.0));
  sim.set_fault_injector(&injector);
  const DeliveryResult r = sim.TryUnicast(1, 1);
  EXPECT_TRUE(r.delivered);  // reliable mode re-routes
  EXPECT_EQ(sim.stats().reroutes, 1);
  EXPECT_DOUBLE_EQ(r.energy_mj, sim.energy_model().MessageCost(1) * 3.0);
}

TEST(SimulatorDeathTest, RejectsPartialFailureVectorAtConstruction) {
  Topology topo = BuildChain(4);
  FailureModel partial;
  partial.edge_failure_prob = {0.1, 0.2};  // covers 2 of 4 nodes
  EXPECT_DEATH(NetworkSimulator(&topo, EnergyModel{}, partial),
               "FailureModel covers");
}

TEST(SimulatorDeathTest, RejectsInvalidLossyTransportAtSetTime) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  LossyTransport negative_retries;
  negative_retries.enabled = true;
  negative_retries.max_retries = -1;
  EXPECT_DEATH(sim.set_lossy_transport(negative_retries), "max_retries");
  LossyTransport shrinking_backoff;
  shrinking_backoff.enabled = true;
  shrinking_backoff.backoff_cost_growth = 0.5;
  EXPECT_DEATH(sim.set_lossy_transport(shrinking_backoff),
               "backoff_cost_growth");
}

TEST(SimulatorDeathTest, RejectsInvalidAdversarialTransportAtSetTime) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  AdversarialTransport out_of_range;
  out_of_range.enabled = true;
  out_of_range.corrupt_prob = 1.5;
  EXPECT_DEATH(sim.set_adversarial_transport(out_of_range), "probability");
  AdversarialTransport zero_copies;
  zero_copies.enabled = true;
  zero_copies.duplicate_copies = 0;
  EXPECT_DEATH(sim.set_adversarial_transport(zero_copies),
               "duplicate_copies");
  AdversarialTransport zero_delay;
  zero_delay.enabled = true;
  zero_delay.delay_epochs = 0;
  EXPECT_DEATH(sim.set_adversarial_transport(zero_delay), "delay_epochs");
  // A disabled config is never validated — defaults stay settable.
  sim.set_adversarial_transport(AdversarialTransport{});
}

TEST(SimulatorTest, ScriptedDuplicationChargesTheSenderPerCopy) {
  Topology topo = BuildChain(2);
  FaultInjector injector(2, FaultSchedule{}.DuplicateEdge(0, 1, 1.0, 2));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  const DeliveryResult r = sim.TryUnicast(1, 3);
  EnergyModel e;
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.arrived_now());
  EXPECT_EQ(r.delivered_copies, 3);
  // A duplicate is a retransmission after a lost ACK: the sender pays
  // the base message cost once per extra copy.
  EXPECT_NEAR(r.energy_mj, e.MessageCost(3) * 3.0, 1e-12);
  EXPECT_EQ(sim.stats().duplicates, 2);
  EXPECT_EQ(sim.stats().unicast_messages, 3);
  EXPECT_EQ(sim.stats().values_transmitted, 3);
  EXPECT_EQ(sim.stats().drops, 0);
}

TEST(SimulatorTest, ScriptedCorruptionAccountsLikeADrop) {
  Topology topo = BuildChain(2);
  FaultInjector injector(2, FaultSchedule{}.CorruptEdge(0, 1, 1.0));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  const DeliveryResult r = sim.TryUnicast(1, 2);
  EXPECT_TRUE(r.delivered);
  EXPECT_TRUE(r.corrupted);
  EXPECT_FALSE(r.arrived_now());
  EXPECT_EQ(r.delivered_copies, 0);
  // The sender still paid for the transmission...
  EXPECT_NEAR(r.energy_mj, EnergyModel{}.MessageCost(2), 1e-12);
  // ...but the readings count as lost: the protocol layer must reject
  // the mangled payload.
  EXPECT_EQ(sim.stats().corrupted, 1);
  EXPECT_EQ(sim.stats().drops, 1);
  EXPECT_EQ(sim.stats().values_lost, 2);
  EXPECT_EQ(sim.stats().values_transmitted, 0);
}

TEST(SimulatorTest, ScriptedDelayDefersDeliveryRelativeToTheEpochClock) {
  Topology topo = BuildChain(2);
  FaultInjector injector(2, FaultSchedule{}.DelayEdge(0, 1, 1.0, 3));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  sim.set_epoch(5);
  const DeliveryResult r = sim.TryUnicast(1, 1);
  EXPECT_TRUE(r.delivered);
  EXPECT_FALSE(r.arrived_now());
  EXPECT_EQ(r.delayed_until_epoch, 8);
  EXPECT_EQ(r.delivered_copies, 0);
  EXPECT_EQ(sim.stats().delayed, 1);
  EXPECT_EQ(sim.stats().values_lost, 1);
  EXPECT_EQ(sim.stats().values_transmitted, 0);
}

TEST(SimulatorTest, CorruptionTakesPrecedenceOverDelayAndDuplication) {
  Topology topo = BuildChain(2);
  FaultInjector injector(2, FaultSchedule{}
                                .CorruptEdge(0, 1, 1.0)
                                .DelayEdge(0, 1, 1.0, 2)
                                .DuplicateEdge(0, 1, 1.0, 4));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  const DeliveryResult r = sim.TryUnicast(1, 1);
  EXPECT_TRUE(r.corrupted);
  EXPECT_EQ(r.delayed_until_epoch, -1);
  EXPECT_EQ(r.delivered_copies, 0);
  EXPECT_EQ(sim.stats().duplicates, 0);
  EXPECT_EQ(sim.stats().delayed, 0);
}

TEST(SimulatorTest, ConfigRateDuplicationAppliesWithoutAScript) {
  Topology topo = BuildChain(2);
  NetworkSimulator sim(&topo, EnergyModel{});
  AdversarialTransport adversarial;
  adversarial.enabled = true;
  adversarial.duplicate_prob = 1.0;
  adversarial.duplicate_copies = 1;
  sim.set_adversarial_transport(adversarial);
  const DeliveryResult r = sim.TryUnicast(1, 1);
  EXPECT_EQ(r.delivered_copies, 2);
  EXPECT_EQ(sim.stats().duplicates, 1);
  EXPECT_EQ(sim.stats().unicast_messages, 2);
}

TEST(SimulatorTest, DeadNodeBroadcastIsSuppressedAndFree) {
  Topology topo = BuildChain(3);
  FaultInjector injector(3, FaultSchedule{}.KillNode(0, 1));
  injector.AdvanceTo(0);
  NetworkSimulator sim(&topo, EnergyModel{});
  sim.set_fault_injector(&injector);
  // A dead node cannot key its radio: no charge, no broadcast, one drop.
  EXPECT_DOUBLE_EQ(sim.BroadcastPayload(1, 4), 0.0);
  EXPECT_EQ(sim.stats().broadcast_messages, 0);
  EXPECT_EQ(sim.stats().drops, 1);
  EXPECT_DOUBLE_EQ(sim.stats().total_energy_mj, 0.0);
  // Its live sibling still broadcasts normally.
  EXPECT_GT(sim.BroadcastPayload(2, 0), 0.0);
  EXPECT_EQ(sim.stats().broadcast_messages, 1);
}

}  // namespace
}  // namespace net
}  // namespace prospector
