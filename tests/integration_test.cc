// End-to-end shape checks: miniature versions of the paper's headline
// results, asserted rather than plotted. These complement the per-module
// tests by exercising full planner -> executor -> metric pipelines.

#include <gtest/gtest.h>

#include "src/core/exact.h"
#include "src/core/executor.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/naive.h"
#include "src/core/oracle.h"
#include "src/data/contention.h"
#include "src/data/gaussian_field.h"
#include "src/data/lab_trace.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

// Average recall of a plan over fresh epochs.
double AverageRecall(const QueryPlan& plan, const net::Topology& topo,
                     const std::function<std::vector<double>(Rng*)>& draw,
                     int k, int epochs, uint64_t seed) {
  Rng rng(seed);
  net::NetworkSimulator sim(&topo, net::EnergyModel{});
  double recall = 0.0;
  for (int q = 0; q < epochs; ++q) {
    const std::vector<double> truth = draw(&rng);
    auto r = CollectionExecutor::Execute(plan, truth, &sim);
    recall += TopKRecall(r, truth, k);
    sim.ResetStats();
  }
  return recall / epochs;
}

TEST(IntegrationTest, Figure3ShapeApproximateBeatsExactOnEnergy) {
  // At ~90% accuracy, approximate plans must cost several times less than
  // NAIVE-k; the oracle bounds everything from below.
  Rng rng(1);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 70;
  geo.radio_range = 24.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(70, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(70, 8);
  for (int s = 0; s < 20; ++s) samples.Add(field.Sample(&rng));
  PlannerContext ctx;
  ctx.topology = &topo;
  net::NetworkSimulator sim(&topo, ctx.energy);
  auto draw = [&field](Rng* r) { return field.Sample(r); };

  LpFilterPlanner planner;
  auto plan = planner.Plan(ctx, samples, PlanRequest{8, 14.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(AverageRecall(*plan, topo, draw, 8, 30, 2), 0.85);

  const double approx_cost = ExpectedCollectionCost(*plan, sim);
  const double naive_cost =
      ExpectedCollectionCost(MakeNaiveKPlan(topo, 8), sim);
  EXPECT_GT(naive_cost, 1.7 * approx_cost);

  const std::vector<double> truth = field.Sample(&rng);
  const double oracle_cost =
      ExpectedCollectionCost(MakeOraclePlan(topo, truth, 8), sim);
  EXPECT_LT(oracle_cost, approx_cost);
}

TEST(IntegrationTest, Figure5ShapeLocalFilteringWinsUnderContention) {
  data::ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = 8;
  opts.num_background = 36;
  Rng rng(3);
  auto scenario = data::BuildContentionScenario(opts, &rng).value();
  const net::Topology& topo = scenario.topology;
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), 8);
  for (int s = 0; s < 20; ++s) samples.Add(scenario.field.Sample(&rng));
  PlannerContext ctx;
  ctx.topology = &topo;
  auto draw = [&scenario](Rng* r) { return scenario.field.Sample(r); };

  LpFilterPlanner with;
  LpNoFilterPlanner without;
  auto with_plan = with.Plan(ctx, samples, PlanRequest{8, 12.0});
  auto without_plan = without.Plan(ctx, samples, PlanRequest{8, 12.0});
  ASSERT_TRUE(with_plan.ok());
  ASSERT_TRUE(without_plan.ok());
  const double with_recall = AverageRecall(*with_plan, topo, draw, 8, 40, 4);
  const double without_recall =
      AverageRecall(*without_plan, topo, draw, 8, 40, 4);
  EXPECT_GT(with_recall, without_recall + 0.03)
      << "LP+LF must clearly beat LP-LF on contention zones";
}

TEST(IntegrationTest, Figure9ShapeLabDataTopologyMattersFilteringDoesNot) {
  data::LabTraceOptions opts;
  opts.num_epochs = 120;
  opts.radio_range = 7.0;
  Rng rng(5);
  auto lab = data::BuildLabScenario(opts, &rng).value();
  lab.trace.ImputeMissing();
  const net::Topology& topo = lab.topology;
  sampling::SampleSet samples =
      sampling::SampleSet::ForTopK(topo.num_nodes(), 5);
  samples.AddTrace(lab.trace.Slice(0, 40));
  PlannerContext ctx;
  ctx.topology = &topo;

  auto eval = [&](Planner* p, double budget) {
    auto plan = p->Plan(ctx, samples, PlanRequest{5, budget});
    EXPECT_TRUE(plan.ok());
    net::NetworkSimulator sim(&topo, ctx.energy);
    double recall = 0.0;
    int n = 0;
    for (int t = 40; t < lab.trace.num_epochs(); ++t) {
      auto r = CollectionExecutor::Execute(plan.value(), lab.trace.epoch(t),
                                           &sim);
      recall += TopKRecall(r, lab.trace.epoch(t), 5);
      ++n;
      sim.ResetStats();
    }
    return recall / n;
  };

  GreedyPlanner greedy;
  LpNoFilterPlanner lp_no_lf;
  LpFilterPlanner lp_lf;
  const double budget = 3.0;
  const double greedy_recall = eval(&greedy, budget);
  const double lp_recall = eval(&lp_no_lf, budget);
  const double lp_lf_recall = eval(&lp_lf, budget);
  // Topology-awareness helps at tight budgets; filtering adds ~nothing on
  // this predictable workload.
  EXPECT_GE(lp_recall, greedy_recall);
  EXPECT_NEAR(lp_lf_recall, lp_recall, 0.25);
}

TEST(IntegrationTest, ExactPipelineUnconditionallyExactUnderBadSamples) {
  // Feed the exact pipeline *misleading* samples (drawn from a different
  // distribution than the queries): accuracy of the knowledge must not
  // affect correctness, only cost (Section 4.3).
  Rng rng(7);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 30;
  geo.radio_range = 30.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField lying =
      data::GaussianField::Random(30, 80, 90, 1, 4, &rng);
  data::GaussianField actual =
      data::GaussianField::Random(30, 40, 60, 1, 16, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(30, 5);
  for (int s = 0; s < 8; ++s) samples.Add(lying.Sample(&rng));

  PlannerContext ctx;
  ctx.topology = &topo;
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> truth = actual.Sample(&rng);
    net::NetworkSimulator sim(&topo, ctx.energy);
    auto exact = RunProspectorExact(ctx, samples, 5,
                                    ProofPlanner::MinimumCost(ctx) * 1.2,
                                    truth, &sim);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(exact->answer, TrueTopK(truth, 5));
  }
}

TEST(IntegrationTest, FailureInjectedExecutionStillDeliversPlannedValues) {
  // Transient failures change cost (re-routing), never the delivered data
  // under the reliable protocol.
  Rng rng(9);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = 40;
  geo.radio_range = 26.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
  data::GaussianField field =
      data::GaussianField::Random(40, 40, 60, 1, 9, &rng);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(40, 5);
  for (int s = 0; s < 10; ++s) samples.Add(field.Sample(&rng));
  PlannerContext ctx;
  ctx.topology = &topo;
  LpFilterPlanner planner;
  auto plan = planner.Plan(ctx, samples, PlanRequest{5, 10.0});
  ASSERT_TRUE(plan.ok());

  net::FailureModel f;
  f.edge_failure_prob.assign(40, 0.3);
  const std::vector<double> truth = field.Sample(&rng);
  net::NetworkSimulator clean(&topo, ctx.energy);
  net::NetworkSimulator failing(&topo, ctx.energy, f, 99);
  auto clean_run = CollectionExecutor::Execute(*plan, truth, &clean);
  auto failing_run = CollectionExecutor::Execute(*plan, truth, &failing);
  EXPECT_EQ(clean_run.answer, failing_run.answer);
  EXPECT_GT(failing.stats().total_energy_mj, clean.stats().total_energy_mj);
  EXPECT_GT(failing.stats().reroutes, 0);
}

}  // namespace
}  // namespace core
}  // namespace prospector
