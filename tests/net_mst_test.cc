#include "src/net/mst.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace net {
namespace {

std::vector<Point> RandomPlacement(int n, double side, Rng* rng) {
  std::vector<Point> pos(n);
  pos[0] = {side / 2, side / 2};
  for (int i = 1; i < n; ++i) {
    pos[i] = {rng->Uniform(0.0, side), rng->Uniform(0.0, side)};
  }
  return pos;
}

std::vector<std::pair<int, int>> TreeEdges(const Topology& t) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 1; v < t.num_nodes(); ++v) {
    edges.emplace_back(std::min(v, t.parent(v)), std::max(v, t.parent(v)));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(MstTest, TinyTriangle) {
  // Nodes at (0,0), (1,0), (5,0): MST must use 0-1 and 1-2.
  std::vector<Point> pos{{0, 0}, {1, 0}, {5, 0}};
  auto r = BuildDistributedMst(pos, 10.0);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(TreeEdges(r->topology),
            (std::vector<std::pair<int, int>>{{0, 1}, {1, 2}}));
  EXPECT_NEAR(r->total_weight, 5.0, 1e-12);
}

TEST(MstTest, DisconnectedGraphFails) {
  std::vector<Point> pos{{0, 0}, {1, 0}, {100, 0}};
  auto r = BuildDistributedMst(pos, 5.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(KruskalReference(pos, 5.0).ok());
}

class MstPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MstPropertyTest, MatchesKruskalAndBoundsRounds) {
  Rng rng(1200 + GetParam());
  const int n = 10 + static_cast<int>(rng.UniformInt(uint64_t{70}));
  std::vector<Point> pos = RandomPlacement(n, 100.0, &rng);
  const double range = 45.0;  // dense enough to stay connected

  auto reference = KruskalReference(pos, range);
  auto distributed = BuildDistributedMst(pos, range);
  if (!reference.ok()) {
    EXPECT_FALSE(distributed.ok());
    return;
  }
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();

  // Exactly the unique MST.
  EXPECT_EQ(TreeEdges(distributed->topology), *reference);
  // Boruvka halves the fragment count each round.
  EXPECT_LE(distributed->rounds,
            static_cast<int>(std::ceil(std::log2(n))) + 1);
  EXPECT_GT(distributed->messages, 0);
  // Positions carried over.
  EXPECT_EQ(distributed->topology.positions().size(), pos.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstPropertyTest, ::testing::Range(1, 30));

TEST(MstTest, MstTradesDepthForWeightAgainstBfs) {
  // The min-hop BFS tree minimizes depth; the MST minimizes total link
  // length. Check both properties on one instance.
  Rng rng(7);
  std::vector<Point> pos = RandomPlacement(60, 100.0, &rng);
  const double range = 40.0;
  auto mst = BuildDistributedMst(pos, range);
  ASSERT_TRUE(mst.ok());

  GeometricNetworkOptions opts;
  opts.num_nodes = 60;
  opts.radio_range = range;
  // Rebuild BFS over the same placement by replaying the BFS used in
  // BuildGeometricNetwork: easiest is to compare against depth from the
  // MST topology itself.
  double bfs_weight = 0.0;
  {
    // Min-hop parents via BFS on the radio graph.
    std::vector<int> depth(60, -1);
    std::vector<int> parent(60, -1);
    depth[0] = 0;
    std::vector<int> frontier{0};
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int u : frontier) {
        for (int v = 1; v < 60; ++v) {
          if (depth[v] < 0 && Distance(pos[u], pos[v]) <= range) {
            depth[v] = depth[u] + 1;
            parent[v] = u;
            next.push_back(v);
          }
        }
      }
      frontier = std::move(next);
    }
    int max_depth = 0;
    for (int v = 1; v < 60; ++v) {
      ASSERT_GE(depth[v], 0);
      bfs_weight += Distance(pos[v], pos[parent[v]]);
      max_depth = std::max(max_depth, depth[v]);
    }
    EXPECT_LE(max_depth, mst->topology.height())
        << "BFS minimizes hops, so the MST can only be as shallow or deeper";
  }
  EXPECT_LE(mst->total_weight, bfs_weight + 1e-9)
      << "the MST minimizes total link length";
}

}  // namespace
}  // namespace net
}  // namespace prospector
