// End-to-end robustness: scripted faults, degraded answers, and the
// session watchdog's rebuild-remap-replan recovery loop. Everything here
// is deterministic given the seeds, and (by PR 1's determinism contract)
// bit-identical for every planner thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/plan_eval.h"
#include "src/core/proof_executor.h"
#include "src/core/session.h"
#include "src/data/gaussian_field.h"

namespace prospector {
namespace core {
namespace {

constexpr double kRange = 25.0;
constexpr int kNodes = 40;
constexpr int kTop = 3;
constexpr int kKillEpoch = 12;
constexpr int kDeadAfter = 3;
constexpr int kEpochs = 24;
constexpr int kBootstrap = 6;

net::Topology BuildNet() {
  Rng rng(41);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = kNodes;
  geo.radio_range = kRange;
  return net::BuildConnectedGeometricNetwork(geo, &rng).value();
}

// An interior node with at least two children — the scripted casualty.
int PickVictim(const net::Topology& topo) {
  for (int u = 0; u < topo.num_nodes(); ++u) {
    if (u == topo.root()) continue;
    if (topo.children(u).size() >= 2) return u;
  }
  return -1;
}

// Recall of `answer` against the top-k over the `eligible` (original-id)
// node set — "eligible = everyone" is plain ground-truth recall;
// "eligible = survivors" is what a healed session can still achieve.
double RecallAgainst(const std::vector<Reading>& answer,
                     const std::vector<double>& truth,
                     const std::vector<int>& eligible, int k) {
  std::vector<Reading> pool;
  for (int id : eligible) pool.push_back({id, truth[id]});
  SortReadings(&pool);
  if (static_cast<int>(pool.size()) > k) pool.resize(k);
  std::vector<char> in_ans(truth.size(), 0);
  for (const Reading& r : answer) in_ans[r.node] = 1;
  int hit = 0;
  for (const Reading& r : pool) hit += in_ans[r.node];
  return static_cast<double>(hit) / static_cast<double>(k);
}

struct EpochLog {
  TopKQuerySession::TickResult::Kind kind;
  std::vector<Reading> answer;
  std::vector<double> truth;
  double energy = 0.0;
  bool degraded = false;
  bool replanned = false;
  bool rebuilt = false;
  std::vector<int> removed;
};

struct ScenarioRun {
  int victim = -1;
  std::vector<int> hot;        // victim's two hot children + two outsiders
  std::vector<EpochLog> log;
  int rebuilds = 0;
  std::vector<int> survivors;  // original ids still in the tree at the end
};

// The canonical scenario: a hot subtree hangs off `victim`; at kKillEpoch
// the victim dies. With `transient_partition` the victim's edge is instead
// cut for two epochs (below the watchdog threshold) and then heals.
ScenarioRun RunScenario(int lp_threads, bool transient_partition,
                        net::LossyTransport lossy = {},
                        net::FailureModel failures = {}) {
  net::Topology topo = BuildNet();
  ScenarioRun run;
  run.victim = PickVictim(topo);
  EXPECT_GE(run.victim, 0);

  // Background field is near-constant and cool; four hot nodes carry the
  // top-k. Two sit under the victim, two are elsewhere, so the true top-3
  // is {95, 92, 88} while the victim's subtree is up and hot nodes fill
  // every top-3 slot afterwards too (no rotating third place).
  Rng frng(43);
  data::GaussianField field =
      data::GaussianField::Random(kNodes, 18, 22, 0.01, 0.02, &frng);
  const std::vector<int> subtree = topo.DescendantsOf(run.victim);
  run.hot = {topo.children(run.victim)[0], topo.children(run.victim)[1]};
  field.set_node(run.hot[0], 95.0, 0.25);
  field.set_node(run.hot[1], 92.0, 0.25);
  double outside_mean = 88.0;
  for (int u = 0; u < kNodes && run.hot.size() < 4; ++u) {
    if (u == topo.root() || u == run.victim) continue;
    if (std::find(subtree.begin(), subtree.end(), u) != subtree.end()) {
      continue;
    }
    field.set_node(u, outside_mean, 0.25);
    outside_mean -= 3.0;
    run.hot.push_back(u);
  }

  SessionOptions opt;
  opt.k = kTop;
  opt.energy_budget_mj = 100.0;  // generous: the plan can cover everything
  opt.sample_window = 16;
  opt.bootstrap_sweeps = kBootstrap;
  opt.planner = SessionOptions::PlannerChoice::kLpFilter;
  opt.lp.threads = lp_threads;
  opt.manager.base_explore_probability = 0.0;
  opt.manager.boosted_explore_probability = 0.0;
  opt.dead_after_epochs = kDeadAfter;
  opt.rebuild_radio_range = kRange;
  opt.lossy = lossy;
  if (transient_partition) {
    opt.dead_after_epochs = kDeadAfter + 1;  // outlast the partition
    opt.faults.PartitionSubtree(kKillEpoch, run.victim)
        .HealSubtree(kKillEpoch + 2, run.victim);
  } else {
    opt.faults.KillNode(kKillEpoch, run.victim);
  }

  TopKQuerySession session(&topo, net::EnergyModel{}, failures, opt,
                           /*seed=*/7);
  Rng truth_rng(99);
  for (int e = 0; e < kEpochs; ++e) {
    EpochLog entry;
    entry.truth = field.Sample(&truth_rng);
    auto tick = session.Tick(entry.truth);
    EXPECT_TRUE(tick.ok()) << tick.status().ToString();
    if (!tick.ok()) break;
    entry.kind = tick->kind;
    entry.answer = tick->answer;
    entry.energy = tick->energy_mj;
    entry.degraded = tick->degraded;
    entry.replanned = tick->replanned;
    entry.rebuilt = tick->rebuilt;
    entry.removed = tick->removed_nodes;
    run.log.push_back(std::move(entry));
  }
  run.rebuilds = session.rebuilds();
  run.survivors = session.original_ids();
  return run;
}

std::vector<int> AllNodes() {
  std::vector<int> all(kNodes);
  for (int i = 0; i < kNodes; ++i) all[i] = i;
  return all;
}

TEST(FaultRecoveryTest, WatchdogRebuildsAfterKilledInteriorNode) {
  const ScenarioRun run = RunScenario(/*lp_threads=*/1,
                                      /*transient_partition=*/false);
  ASSERT_EQ(static_cast<int>(run.log.size()), kEpochs);
  const std::vector<int> all = AllNodes();

  // Healthy steady state: perfect recall on query epochs before the kill.
  for (int e = kBootstrap; e < kKillEpoch; ++e) {
    ASSERT_EQ(run.log[e].kind, TopKQuerySession::TickResult::Kind::kQuery);
    EXPECT_FALSE(run.log[e].degraded) << "epoch " << e;
    EXPECT_DOUBLE_EQ(
        RecallAgainst(run.log[e].answer, run.log[e].truth, all, kTop), 1.0)
        << "epoch " << e;
  }

  // Exactly one rebuild, within dead_after_epochs of the kill.
  ASSERT_EQ(run.rebuilds, 1);
  int rebuild_epoch = -1;
  for (int e = 0; e < kEpochs; ++e) {
    if (run.log[e].rebuilt) {
      EXPECT_EQ(rebuild_epoch, -1) << "second rebuild at epoch " << e;
      rebuild_epoch = e;
    }
  }
  ASSERT_GE(rebuild_epoch, kKillEpoch);
  EXPECT_EQ(rebuild_epoch, kKillEpoch + kDeadAfter - 1);

  // While the subtree was dark the answers are flagged and recall dips:
  // the two hot children (2 of the top 3) are unreachable.
  for (int e = kKillEpoch; e <= rebuild_epoch; ++e) {
    EXPECT_TRUE(run.log[e].degraded) << "epoch " << e;
    EXPECT_LE(RecallAgainst(run.log[e].answer, run.log[e].truth, all, kTop),
              1.0 / kTop + 1e-9)
        << "epoch " << e;
  }

  // The rebuild excluded the victim (plus any orphans) and replanned.
  EXPECT_TRUE(run.log[rebuild_epoch].replanned ||
              run.log[rebuild_epoch].rebuilt);
  ASSERT_FALSE(run.log[rebuild_epoch].removed.empty());
  EXPECT_TRUE(std::find(run.log[rebuild_epoch].removed.begin(),
                        run.log[rebuild_epoch].removed.end(),
                        run.victim) != run.log[rebuild_epoch].removed.end());
  EXPECT_TRUE(std::find(run.survivors.begin(), run.survivors.end(),
                        run.victim) == run.survivors.end());

  // Recovery: against what the surviving network can still deliver,
  // recall returns to perfect and the degraded flag clears.
  for (int e = rebuild_epoch + 1; e < kEpochs; ++e) {
    ASSERT_EQ(run.log[e].kind, TopKQuerySession::TickResult::Kind::kQuery);
    EXPECT_FALSE(run.log[e].degraded) << "epoch " << e;
    EXPECT_DOUBLE_EQ(RecallAgainst(run.log[e].answer, run.log[e].truth,
                                   run.survivors, kTop),
                     1.0)
        << "epoch " << e;
  }
}

TEST(FaultRecoveryTest, TransientPartitionBelowThresholdHealsWithoutRebuild) {
  const ScenarioRun run = RunScenario(/*lp_threads=*/1,
                                      /*transient_partition=*/true);
  ASSERT_EQ(static_cast<int>(run.log.size()), kEpochs);
  const std::vector<int> all = AllNodes();

  // The two partitioned epochs are degraded; no watchdog action.
  EXPECT_EQ(run.rebuilds, 0);
  for (const EpochLog& entry : run.log) EXPECT_FALSE(entry.rebuilt);
  for (int e = kKillEpoch; e < kKillEpoch + 2; ++e) {
    EXPECT_TRUE(run.log[e].degraded) << "epoch " << e;
    EXPECT_LT(RecallAgainst(run.log[e].answer, run.log[e].truth, all, kTop),
              1.0)
        << "epoch " << e;
  }
  // Once the partition heals the same plan works again, unchanged.
  for (int e = kKillEpoch + 2; e < kEpochs; ++e) {
    EXPECT_FALSE(run.log[e].degraded) << "epoch " << e;
    EXPECT_DOUBLE_EQ(
        RecallAgainst(run.log[e].answer, run.log[e].truth, all, kTop), 1.0)
        << "epoch " << e;
  }
}

void ExpectIdenticalRuns(const ScenarioRun& a, const ScenarioRun& b) {
  ASSERT_EQ(a.log.size(), b.log.size());
  EXPECT_EQ(a.rebuilds, b.rebuilds);
  EXPECT_EQ(a.survivors, b.survivors);
  for (size_t e = 0; e < a.log.size(); ++e) {
    EXPECT_EQ(a.log[e].kind, b.log[e].kind) << "epoch " << e;
    EXPECT_EQ(a.log[e].energy, b.log[e].energy) << "epoch " << e;
    EXPECT_EQ(a.log[e].degraded, b.log[e].degraded) << "epoch " << e;
    EXPECT_EQ(a.log[e].rebuilt, b.log[e].rebuilt) << "epoch " << e;
    EXPECT_EQ(a.log[e].removed, b.log[e].removed) << "epoch " << e;
    ASSERT_EQ(a.log[e].answer.size(), b.log[e].answer.size())
        << "epoch " << e;
    for (size_t i = 0; i < a.log[e].answer.size(); ++i) {
      EXPECT_EQ(a.log[e].answer[i].node, b.log[e].answer[i].node)
          << "epoch " << e << " rank " << i;
      EXPECT_EQ(a.log[e].answer[i].value, b.log[e].answer[i].value)
          << "epoch " << e << " rank " << i;
    }
  }
}

TEST(FaultRecoveryTest, ScenarioIsDeterministic) {
  ExpectIdenticalRuns(RunScenario(1, false), RunScenario(1, false));
}

TEST(FaultRecoveryTest, ScenarioIsBitIdenticalAcrossThreadCounts) {
  // PR 1's determinism contract extends through the recovery path: the
  // rebuild-replan on the surviving topology must not depend on the
  // planner's thread count.
  ExpectIdenticalRuns(RunScenario(1, false), RunScenario(4, false));
}

TEST(FaultRecoveryTest, LossySessionDegradesGracefullyAndDeterministically) {
  net::LossyTransport lossy;
  lossy.enabled = true;
  lossy.max_retries = 2;
  lossy.backoff_cost_growth = 1.5;
  const net::FailureModel failures = net::FailureModel::Uniform(0.5);
  const ScenarioRun a = RunScenario(1, /*transient_partition=*/true, lossy,
                                    failures);
  const ScenarioRun b = RunScenario(1, /*transient_partition=*/true, lossy,
                                    failures);
  ExpectIdenticalRuns(a, b);
  // At p=0.5 with two retries, one in eight messages genuinely drops;
  // across hundreds of messages some epoch must have lost values.
  bool any_degraded = false;
  for (const EpochLog& entry : a.log) any_degraded |= entry.degraded;
  EXPECT_TRUE(any_degraded);
  // The session still answers every query epoch with a sane result.
  for (const EpochLog& entry : a.log) {
    if (entry.kind != TopKQuerySession::TickResult::Kind::kQuery) continue;
    EXPECT_LE(static_cast<int>(entry.answer.size()), kTop);
    for (const Reading& r : entry.answer) {
      EXPECT_GE(r.node, 0);
      EXPECT_LT(r.node, kNodes);
    }
  }
}

TEST(CollectionExecutorFaultTest, DeadNodeDarkensItsSubtreeAndFlagsResult) {
  net::Topology chain = net::BuildChain(4);
  net::FaultInjector injector(4, net::FaultSchedule{}.KillNode(0, 2));
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&chain, net::EnergyModel{});
  sim.set_fault_injector(&injector);

  QueryPlan plan = QueryPlan::Bandwidth(2, {0, 4, 4, 4});
  const std::vector<double> truth = {1.0, 2.0, 9.0, 8.0};
  ExecutionResult r = CollectionExecutor::Execute(plan, truth, &sim);

  EXPECT_TRUE(r.degraded);
  EXPECT_GT(r.values_lost, 0);
  EXPECT_TRUE(r.subtree_live[1]);
  EXPECT_FALSE(r.subtree_live[2]);
  EXPECT_FALSE(r.subtree_live[3]);
  // Only reachable nodes appear in the answer.
  for (const Reading& x : r.answer) EXPECT_LT(x.node, 2);

  // The true top-2 (nodes 2 and 3) is exactly what went dark.
  const AccuracyMetrics acc = TopKAccuracy(r, truth, 2);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
  EXPECT_DOUBLE_EQ(acc.precision, 0.0);
  EXPECT_EQ(acc.answered, 2);
}

TEST(ProofExecutorFaultTest, DroppedListsUnderClaimTheProof) {
  net::Topology chain = net::BuildChain(4);
  net::FaultInjector injector(4, net::FaultSchedule{}.KillNode(0, 3));
  injector.AdvanceTo(0);
  net::NetworkSimulator sim(&chain, net::EnergyModel{});
  sim.set_fault_injector(&injector);

  QueryPlan plan =
      QueryPlan::Bandwidth(2, {0, 3, 2, 1}, /*proof_carrying=*/true);
  const std::vector<double> truth = {5.0, 6.0, 7.0, 8.0};
  ProofExecutor ex(&plan, &sim);

  ExecutionResult phase1 = ex.ExecutePhase1(truth);
  EXPECT_TRUE(phase1.degraded);
  // The dead leaf holds the global maximum; with its list missing the
  // evidence-based conditions can prove nothing — they under-claim, never
  // over-claim.
  EXPECT_EQ(phase1.proven_count, 0);
  EXPECT_EQ(phase1.edge_expected[3], 1);
  EXPECT_EQ(phase1.edge_delivered[3], 0);
  EXPECT_FALSE(phase1.subtree_live[3]);

  ExecutionResult phase2 = ex.ExecuteMopUp();
  EXPECT_TRUE(phase2.degraded);
  EXPECT_EQ(phase2.proven_count, 0);  // exactness claim voided by the loss
  // Everything reachable was still collected, best-first.
  ASSERT_EQ(phase2.answer.size(), 2u);
  EXPECT_EQ(phase2.answer[0].node, 2);
  EXPECT_EQ(phase2.answer[1].node, 1);
}

TEST(AccuracyMetricsTest, EmptyAnswerIsVacuouslyPrecise) {
  ExecutionResult r;
  const std::vector<double> truth = {3.0, 1.0, 2.0};
  const AccuracyMetrics acc = TopKAccuracy(r, truth, 2);
  EXPECT_DOUBLE_EQ(acc.recall, 0.0);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_EQ(acc.answered, 0);
}

}  // namespace
}  // namespace core
}  // namespace prospector
