#include <gtest/gtest.h>

#include "src/core/generalized.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/plan_manager.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

struct World {
  net::Topology topo;
  data::GaussianField field;
  PlannerContext ctx;

  explicit World(uint64_t seed, int n = 40) {
    Rng rng(seed);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = n;
    geo.radio_range = 28.0;
    topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
    field = data::GaussianField::Random(n, 40, 60, 1, 9, &rng);
    ctx.topology = &topo;
  }
};

// ---- PlanManager ----

TEST(PlanManagerTest, FirstReplanAlwaysDisseminates) {
  World w(1);
  Rng rng(2);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(40, 5);
  for (int s = 0; s < 10; ++s) samples.Add(w.field.Sample(&rng));
  GreedyPlanner planner;
  PlanManager mgr(&planner, PlanRequest{5, 10.0});
  EXPECT_FALSE(mgr.has_plan());
  net::NetworkSimulator sim(&w.topo, w.ctx.energy);
  auto changed = mgr.MaybeReplan(w.ctx, samples, &sim);
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(*changed);
  EXPECT_TRUE(mgr.has_plan());
  EXPECT_GT(sim.stats().total_energy_mj, 0.0) << "install must be charged";
  EXPECT_EQ(mgr.disseminations(), 1);
}

TEST(PlanManagerTest, StableSamplesDoNotRedisseminate) {
  World w(3);
  Rng rng(4);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(40, 5);
  for (int s = 0; s < 10; ++s) samples.Add(w.field.Sample(&rng));
  GreedyPlanner planner;
  PlanManager mgr(&planner, PlanRequest{5, 10.0});
  net::NetworkSimulator sim(&w.topo, w.ctx.energy);
  ASSERT_TRUE(mgr.MaybeReplan(w.ctx, samples, &sim).ok());
  // Same samples: the recomputed plan cannot beat the installed one.
  auto again = mgr.MaybeReplan(w.ctx, samples, &sim);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  EXPECT_EQ(mgr.disseminations(), 1);
}

TEST(PlanManagerTest, DistributionShiftTriggersRedissemination) {
  World w(5);
  Rng rng(6);
  sampling::SampleSet samples = sampling::SampleSet::ForTopK(40, 5,
                                                             /*window=*/10);
  for (int s = 0; s < 10; ++s) samples.Add(w.field.Sample(&rng));
  GreedyPlanner planner;
  PlanManager mgr(&planner, PlanRequest{5, 10.0});
  net::NetworkSimulator sim(&w.topo, w.ctx.energy);
  ASSERT_TRUE(mgr.MaybeReplan(w.ctx, samples, &sim).ok());

  // The hot region moves: a different set of nodes now dominates.
  data::GaussianField shifted = w.field;
  for (int i = 1; i < 40; ++i) {
    shifted.set_node(i, i % 7 == 0 ? 90.0 : 30.0, 1.0);
  }
  for (int s = 0; s < 10; ++s) samples.Add(shifted.Sample(&rng));
  auto changed = mgr.MaybeReplan(w.ctx, samples, &sim);
  ASSERT_TRUE(changed.ok());
  EXPECT_TRUE(*changed);
  EXPECT_EQ(mgr.disseminations(), 2);
}

TEST(PlanManagerTest, AccuracyObservationControlsExploreRate) {
  GreedyPlanner planner;
  PlanManagerOptions opts;
  opts.min_accuracy = 0.9;
  opts.base_explore_probability = 0.02;
  opts.boosted_explore_probability = 0.25;
  PlanManager mgr(&planner, PlanRequest{5, 10.0}, opts);
  EXPECT_DOUBLE_EQ(mgr.explore_probability(), 0.02);
  mgr.ObserveAccuracy(0.6);
  EXPECT_DOUBLE_EQ(mgr.explore_probability(), 0.25);
  mgr.ObserveAccuracy(0.95);
  EXPECT_DOUBLE_EQ(mgr.explore_probability(), 0.02);
}

// ---- Generalized subset queries ----

TEST(GeneralizedTest, SubsetBandwidthCapTracksLargestAnswer) {
  sampling::SampleSet s = sampling::SampleSet::ForSelection(5, 10.0);
  s.Add({11, 12, 1, 2, 3});     // 2 contributors
  s.Add({11, 12, 13, 14, 3});   // 4 contributors
  EXPECT_EQ(SubsetBandwidthCap(s, 0), 4);
  EXPECT_EQ(SubsetBandwidthCap(s, 2), 6);
}

class SelectionQueryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectionQueryPropertyTest, GenerousBudgetRecallsSelection) {
  World w(100 + GetParam());
  Rng rng(200 + GetParam());
  const double threshold = 62.0;  // selective: only upper-tail readings
  sampling::SampleSet samples =
      sampling::SampleSet::ForSelection(40, threshold);
  for (int s = 0; s < 15; ++s) samples.Add(w.field.Sample(&rng));

  LpFilterPlanner planner;
  auto plan = PlanSubsetQuery(&planner, w.ctx, samples, /*budget=*/40.0,
                              /*headroom=*/3);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Evaluate on fresh epochs.
  net::NetworkSimulator sim(&w.topo, w.ctx.energy);
  RunningStats recall;
  for (int q = 0; q < 30; ++q) {
    const std::vector<double> truth = w.field.Sample(&rng);
    std::vector<int> contributors;
    for (int i = 0; i < 40; ++i) {
      if (truth[i] > threshold) contributors.push_back(i);
    }
    auto r = CollectionExecutor::Execute(*plan, truth, &sim);
    recall.Add(SubsetRecall(r, contributors, 40));
    sim.ResetStats();
  }
  EXPECT_GT(recall.mean(), 0.55) << "generous budget should catch most of "
                                    "the selection answers";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionQueryPropertyTest,
                         ::testing::Range(1, 8));

TEST(GeneralizedTest, QuantileSamplesDriveaPlan) {
  World w(300);
  Rng rng(301);
  sampling::SampleSet samples = sampling::SampleSet::ForQuantile(40, 0.5);
  for (int s = 0; s < 10; ++s) samples.Add(w.field.Sample(&rng));
  EXPECT_EQ(SubsetBandwidthCap(samples, 0), 1);
  LpFilterPlanner planner;
  auto plan = PlanSubsetQuery(&planner, w.ctx, samples, 10.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->CountVisitedNodes(w.topo), 1);
}

TEST(GeneralizedTest, SubsetRecallEdgeCases) {
  ExecutionResult r;
  r.arrived = {{2, 5.0}};
  EXPECT_DOUBLE_EQ(SubsetRecall(r, {}, 5), 1.0);  // empty answer: trivially ok
  EXPECT_DOUBLE_EQ(SubsetRecall(r, {2}, 5), 1.0);
  EXPECT_DOUBLE_EQ(SubsetRecall(r, {1, 2}, 5), 0.5);
}

}  // namespace
}  // namespace core
}  // namespace prospector
