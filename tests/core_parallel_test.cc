// Determinism contract of the parallel planning engine: any thread count
// must produce bit-identical plans, objectives, and evaluations to the
// single-threaded seed path — parallelism buys wall time, never different
// answers. Plus the regression test for the old root-index assumption in
// SampleHits (node 0 silently skipped when the root is not node 0).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_eval.h"
#include "src/core/plan_manager.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace core {
namespace {

struct Instance {
  net::Topology topology;
  sampling::SampleSet samples;
  PlannerContext ctx;
};

Instance MakeInstance(int n, int k, int num_samples, uint64_t seed) {
  Rng rng(seed);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = 25.0;
  Instance inst{net::BuildConnectedGeometricNetwork(geo, &rng).value(),
                sampling::SampleSet::ForTopK(n, k), PlannerContext{}};
  data::GaussianField field =
      data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  for (int s = 0; s < num_samples; ++s) inst.samples.Add(field.Sample(&rng));
  inst.ctx.topology = &inst.topology;
  return inst;
}

void ExpectSamePlan(const QueryPlan& a, const QueryPlan& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.k, b.k);
  EXPECT_EQ(a.bandwidth, b.bandwidth);
  EXPECT_EQ(a.chosen, b.chosen);
}

TEST(ParallelPlanningTest, SampleHitsIdenticalForAnyThreadCount) {
  Instance inst = MakeInstance(60, 8, 20, 41);
  LpFilterPlanner planner;
  auto plan = planner.Plan(inst.ctx, inst.samples, PlanRequest{8, 10.0});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const int serial = SampleHits(*plan, inst.topology, inst.samples);
  for (int threads : {2, 3, 4, 8}) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(SampleHits(*plan, inst.topology, inst.samples, &pool), serial)
        << threads << " threads";
  }
}

TEST(ParallelPlanningTest, GreedyPlansBitIdenticalAcrossThreadCounts) {
  Instance inst = MakeInstance(60, 8, 15, 42);
  for (double budget : {2.0, 6.0, 14.0}) {
    GreedyPlanner serial;
    GreedyPlanner parallel(GreedyPlannerOptions{/*threads=*/4});
    auto a = serial.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    auto b = parallel.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSamePlan(*a, *b);
  }
}

TEST(ParallelPlanningTest, LpNoFilterPlansBitIdenticalAcrossThreadCounts) {
  Instance inst = MakeInstance(50, 8, 12, 43);
  for (double budget : {4.0, 8.0, 16.0}) {
    LpNoFilterPlanner serial;
    LpPlannerOptions opts;
    opts.threads = 4;
    LpNoFilterPlanner parallel(opts);
    auto a = serial.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    auto b = parallel.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSamePlan(*a, *b);
    // Objective values must match to the last bit, not just approximately.
    EXPECT_EQ(serial.last_lp_objective(), parallel.last_lp_objective());
  }
}

TEST(ParallelPlanningTest, LpFilterPlansBitIdenticalAcrossThreadCounts) {
  Instance inst = MakeInstance(50, 8, 12, 44);
  for (double budget : {4.0, 8.0, 16.0}) {
    LpFilterPlanner serial;
    LpPlannerOptions opts;
    opts.threads = 4;
    LpFilterPlanner parallel(opts);
    auto a = serial.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    auto b = parallel.Plan(inst.ctx, inst.samples, PlanRequest{8, budget});
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectSamePlan(*a, *b);
    EXPECT_EQ(serial.last_lp_objective(), parallel.last_lp_objective());
  }
}

TEST(ParallelPlanningTest, PlanSweepMatchesSerialSweepInOrder) {
  Instance inst = MakeInstance(50, 8, 12, 45);
  std::vector<PlanRequest> requests;
  for (double budget : {2.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    requests.push_back(PlanRequest{8, budget});
  }
  // Also sweep k at a fixed budget — a second independent dimension.
  for (int k : {2, 5, 12}) requests.push_back(PlanRequest{k, 10.0});

  PlannerFactory factory = [] { return std::make_unique<LpNoFilterPlanner>(); };
  const auto serial = PlanSweep(factory, inst.ctx, inst.samples, requests);
  util::ThreadPool pool(4);
  const auto parallel =
      PlanSweep(factory, inst.ctx, inst.samples, requests, &pool);

  ASSERT_EQ(serial.size(), requests.size());
  ASSERT_EQ(parallel.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].status().ToString();
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].status().ToString();
    ExpectSamePlan(*serial[i], *parallel[i]);
  }
}

TEST(ParallelPlanningTest, PlanManagerDecisionsUnchangedByPool) {
  Instance inst = MakeInstance(40, 6, 10, 46);
  net::NetworkSimulator sim_a(&inst.topology, inst.ctx.energy);
  net::NetworkSimulator sim_b(&inst.topology, inst.ctx.energy);
  util::ThreadPool pool(4);

  GreedyPlanner planner_a, planner_b;
  PlanManagerOptions with_pool;
  with_pool.pool = &pool;
  PlanManager serial(&planner_a, PlanRequest{6, 8.0});
  PlanManager parallel(&planner_b, PlanRequest{6, 8.0}, with_pool);

  auto a = serial.MaybeReplan(inst.ctx, inst.samples, &sim_a);
  auto b = parallel.MaybeReplan(inst.ctx, inst.samples, &sim_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  ASSERT_TRUE(serial.has_plan() && parallel.has_plan());
  ExpectSamePlan(serial.plan(), parallel.plan());
}

// ---- Regression: the root must be skipped by id, not by assuming id 0 ----

TEST(SampleHitsTest, NodeSelectionCountsNodeZeroWhenRootIsElsewhere) {
  // Chain 0 -> 1 -> 2 rooted at node 2. Node 0 holds the top value and is
  // chosen; the old `for (i = 1; ...)` loop silently skipped it.
  auto topo = net::Topology::FromParents({1, 2, net::Topology::kNoParent});
  ASSERT_TRUE(topo.ok());

  sampling::SampleSet samples = sampling::SampleSet::ForTopK(3, 1);
  samples.Add({10.0, 1.0, 0.0});  // top-1 is node 0

  QueryPlan plan;
  plan.kind = PlanKind::kNodeSelection;
  plan.k = 1;
  plan.chosen = {1, 0, 0};
  plan.bandwidth = {1, 1, 0};  // node 0's value crosses edges 0 and 1

  EXPECT_EQ(SampleHits(plan, *topo, samples), 1);
}

TEST(SampleHitsTest, BandwidthPlanDeliversHitsWhenRootIsElsewhere) {
  auto topo = net::Topology::FromParents({1, 2, net::Topology::kNoParent});
  ASSERT_TRUE(topo.ok());

  sampling::SampleSet samples = sampling::SampleSet::ForTopK(3, 2);
  samples.Add({10.0, 1.0, 7.0});  // top-2: nodes 0 and 2 (the root)

  QueryPlan plan;
  plan.kind = PlanKind::kBandwidth;
  plan.k = 2;
  plan.bandwidth = {1, 1, 0};
  // Node 0's contribution flows across both edges; the root's own value is
  // free: 2 hits total.
  EXPECT_EQ(SampleHits(plan, *topo, samples), 2);
}

}  // namespace
}  // namespace core
}  // namespace prospector
