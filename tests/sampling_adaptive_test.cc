#include "src/sampling/adaptive_scheduler.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace prospector {
namespace sampling {
namespace {

TEST(AdaptiveSchedulerTest, ProbabilitiesStartUniformAndNormalized) {
  AdaptiveScheduler s({0.1, 0.2, 0.3});
  const auto p = s.Probabilities();
  ASSERT_EQ(p.size(), 3u);
  double sum = 0.0;
  for (double v : p) {
    EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AdaptiveSchedulerTest, RejectsBadReports) {
  AdaptiveScheduler s({0.1});
  EXPECT_FALSE(s.ReportLoss(5, 0.1).ok());
  EXPECT_FALSE(s.ReportLoss(0, 2.0).ok());
  EXPECT_FALSE(s.ReportLoss(0, -0.1).ok());
  EXPECT_TRUE(s.ReportLoss(0, 1.0).ok());
}

TEST(AdaptiveSchedulerTest, ConvergesToTheBestArm) {
  // Arm 1 consistently suffers less loss; its probability must dominate.
  AdaptiveScheduler s({0.05, 0.15, 0.4});
  for (int t = 0; t < 60; ++t) {
    ASSERT_TRUE(s.ReportLoss(0, 0.8).ok());
    ASSERT_TRUE(s.ReportLoss(1, 0.1).ok());
    ASSERT_TRUE(s.ReportLoss(2, 0.6).ok());
  }
  const auto p = s.Probabilities();
  EXPECT_GT(p[1], 0.95);
  // And draws follow the probabilities.
  Rng rng(3);
  int picked1 = 0;
  for (int i = 0; i < 1000; ++i) picked1 += s.ChooseArm(&rng) == 1;
  EXPECT_GT(picked1, 900);
}

TEST(AdaptiveSchedulerTest, RecoversAfterDrift) {
  // First arm 0 is best; after the drift arm 2 becomes best. The weight
  // floor must let the scheduler switch.
  AdaptiveScheduler s({0.02, 0.1, 0.3});
  for (int t = 0; t < 80; ++t) {
    ASSERT_TRUE(s.ReportLoss(0, 0.05).ok());
    ASSERT_TRUE(s.ReportLoss(1, 0.5).ok());
    ASSERT_TRUE(s.ReportLoss(2, 0.9).ok());
  }
  EXPECT_GT(s.Probabilities()[0], 0.9);
  for (int t = 0; t < 80; ++t) {
    ASSERT_TRUE(s.ReportLoss(0, 0.9).ok());
    ASSERT_TRUE(s.ReportLoss(1, 0.5).ok());
    ASSERT_TRUE(s.ReportLoss(2, 0.05).ok());
  }
  EXPECT_GT(s.Probabilities()[2], 0.9);
}

TEST(AdaptiveSchedulerTest, EndToEndTracksDriftSpeed) {
  // Simulated environment: in the "calm" regime low sampling rates incur
  // little loss; in the "turbulent" regime the loss of a rate r is high
  // unless r is large. The scheduler should sit on a low rate while calm
  // and move to a high rate when turbulence starts.
  AdaptiveScheduler s = AdaptiveScheduler::Default();
  Rng rng(11);
  auto loss_for = [](double rate, bool turbulent) {
    // Energy penalty grows with the rate; staleness penalty grows when
    // turbulent and under-sampled.
    const double energy = 0.3 * rate / 0.35;
    const double staleness = turbulent ? std::max(0.0, 0.9 - 2.5 * rate) : 0.0;
    return std::min(1.0, energy + staleness);
  };
  for (int t = 0; t < 150; ++t) {
    const int arm = s.ChooseArm(&rng);
    ASSERT_TRUE(s.ReportLoss(arm, loss_for(s.rate(arm), false)).ok());
  }
  int calm_arm = 0;
  {
    const auto p = s.Probabilities();
    for (int a = 1; a < s.num_arms(); ++a) {
      if (p[a] > p[calm_arm]) calm_arm = a;
    }
  }
  EXPECT_LE(s.rate(calm_arm), 0.05);
  for (int t = 0; t < 400; ++t) {
    const int arm = s.ChooseArm(&rng);
    ASSERT_TRUE(s.ReportLoss(arm, loss_for(s.rate(arm), true)).ok());
  }
  int stormy_arm = 0;
  {
    const auto p = s.Probabilities();
    for (int a = 1; a < s.num_arms(); ++a) {
      if (p[a] > p[stormy_arm]) stormy_arm = a;
    }
  }
  EXPECT_GE(s.rate(stormy_arm), 0.15);
}

}  // namespace
}  // namespace sampling
}  // namespace prospector
