// FleetService: request/response lifecycle, typed quota rejections,
// deterministic epoch scheduling (parallel == serial, bit-identical), and
// tagged health rollups. The Parallel*/Fleet* cases run under TSan in the
// sanitize CI arm.
#include "src/service/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/core/health.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace service {
namespace {

/// Shared deterministic world: `deployments` small connected networks and
/// a Gaussian field per deployment. Both fleets of a comparison test use
/// the same topologies, so any divergence is the scheduler's.
struct FleetWorld {
  std::vector<net::Topology> topologies;
  std::vector<data::GaussianField> fields;

  FleetWorld(uint64_t seed, int deployments, int nodes) {
    Rng rng(seed);
    topologies.reserve(static_cast<size_t>(deployments));
    fields.reserve(static_cast<size_t>(deployments));
    for (int d = 0; d < deployments; ++d) {
      net::GeometricNetworkOptions geo;
      geo.num_nodes = nodes;
      geo.radio_range = 40.0;
      topologies.push_back(
          net::BuildConnectedGeometricNetwork(geo, &rng).value());
      fields.push_back(
          data::GaussianField::Random(nodes, 40, 60, 1, 9, &rng));
    }
  }

  std::unique_ptr<FleetService> MakeFleet(FleetOptions options) {
    auto fleet = std::make_unique<FleetService>(options);
    for (size_t d = 0; d < topologies.size(); ++d) {
      core::QueryEngineOptions engine_options;
      engine_options.bootstrap_sweeps = 4;
      const data::GaussianField& field = fields[d];
      fleet->AddDeployment(
          &topologies[d], {}, {}, engine_options,
          [&field](Rng* rng) { return field.Sample(rng); },
          /*seed=*/100 + static_cast<uint64_t>(d));
    }
    return fleet;
  }
};

AdmitQueryRequest MakeAdmit(int deployment, int tenant, int k = 3,
                            double budget_mj = 8.0) {
  AdmitQueryRequest req;
  req.deployment_id = deployment;
  req.tenant_id = tenant;
  req.spec.k = k;
  req.spec.energy_budget_mj = budget_mj;
  req.spec.planner = core::PlannerChoice::kGreedy;
  return req;
}

TEST(FleetServiceTest, AdmitActivatesAtEpochBoundary) {
  FleetWorld world(1, /*deployments=*/1, /*nodes=*/20);
  auto fleet = world.MakeFleet({});
  const AdmitQueryResponse admit = fleet->Admit(MakeAdmit(0, 0));
  ASSERT_TRUE(admit.admitted) << admit.message;
  EXPECT_EQ(admit.reject, AdmitReject::kNone);
  EXPECT_GE(admit.query_id, 0);

  // Pending until the boundary: the engine does not see the query yet.
  FleetStatus before = fleet->Snapshot();
  EXPECT_EQ(before.pending_requests, 1);
  EXPECT_EQ(before.standing_queries, 0);
  PollAnswersResponse poll = fleet->Poll({admit.query_id, 0});
  EXPECT_TRUE(poll.known_query);
  EXPECT_TRUE(poll.active);

  auto report = fleet->RunEpoch();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->applied_admits, 1);
  FleetStatus after = fleet->Snapshot();
  EXPECT_EQ(after.pending_requests, 0);
  EXPECT_EQ(after.standing_queries, 1);
  EXPECT_EQ(fleet->deployment(0).num_queries(), 1);
}

TEST(FleetServiceTest, TypedRejectionsAndMetrics) {
  obs::MetricsRegistry::Global().ResetAll();
  FleetWorld world(2, 1, 20);
  FleetOptions options;
  options.max_pending_requests = 2;
  auto fleet = world.MakeFleet(options);

  EXPECT_EQ(fleet->Admit(MakeAdmit(9, 0)).reject,
            AdmitReject::kUnknownDeployment);
  EXPECT_EQ(fleet->Admit(MakeAdmit(0, 0, /*k=*/0)).reject,
            AdmitReject::kInvalidSpec);
  EXPECT_EQ(fleet->Admit(MakeAdmit(0, 0, 3, /*budget_mj=*/-1.0)).reject,
            AdmitReject::kInvalidSpec);

  TenantQuota quota;
  quota.max_standing_queries = 1;
  fleet->SetTenantQuota(7, quota);
  ASSERT_TRUE(fleet->Admit(MakeAdmit(0, 7)).admitted);
  const AdmitQueryResponse over_count = fleet->Admit(MakeAdmit(0, 7));
  EXPECT_EQ(over_count.reject, AdmitReject::kTenantQueryQuota);
  EXPECT_FALSE(over_count.message.empty());

  TenantQuota energy;
  energy.max_energy_mj_per_epoch = 10.0;
  fleet->SetTenantQuota(8, energy);
  ASSERT_TRUE(fleet->Admit(MakeAdmit(0, 8, 3, 8.0)).admitted);
  const AdmitQueryResponse over_energy = fleet->Admit(MakeAdmit(0, 8, 3, 8.0));
  EXPECT_EQ(over_energy.reject, AdmitReject::kTenantEnergyQuota);

  // Two standing admits fill the queue; backpressure turns the third away.
  EXPECT_EQ(fleet->Admit(MakeAdmit(0, 9)).reject, AdmitReject::kQueueFull);

  const FleetStatus status = fleet->Snapshot();
  EXPECT_EQ(status.rejects, 6);
  auto kind = [&](AdmitReject r) {
    return status.rejects_by_kind[static_cast<size_t>(r)];
  };
  EXPECT_EQ(kind(AdmitReject::kUnknownDeployment), 1);
  EXPECT_EQ(kind(AdmitReject::kInvalidSpec), 2);
  EXPECT_EQ(kind(AdmitReject::kTenantQueryQuota), 1);
  EXPECT_EQ(kind(AdmitReject::kTenantEnergyQuota), 1);
  EXPECT_EQ(kind(AdmitReject::kQueueFull), 1);

  // Every rejection kind is metered through obs.
  auto& metrics = obs::MetricsRegistry::Global();
  EXPECT_EQ(metrics.counter("service.rejects.unknown_deployment")->value(), 1);
  EXPECT_EQ(metrics.counter("service.rejects.invalid_spec")->value(), 2);
  EXPECT_EQ(metrics.counter("service.rejects.tenant_query_quota")->value(), 1);
  EXPECT_EQ(metrics.counter("service.rejects.tenant_energy_quota")->value(),
            1);
  EXPECT_EQ(metrics.counter("service.rejects.queue_full")->value(), 1);

  // The queue drains at the boundary; admission resumes.
  ASSERT_TRUE(fleet->RunEpoch().ok());
  EXPECT_TRUE(fleet->Admit(MakeAdmit(0, 9)).admitted);
}

TEST(FleetServiceTest, RetireOwnershipLifecycleAndQuotaRelease) {
  FleetWorld world(3, 1, 20);
  auto fleet = world.MakeFleet({});
  TenantQuota quota;
  quota.max_standing_queries = 1;
  fleet->SetTenantQuota(1, quota);

  const AdmitQueryResponse admit = fleet->Admit(MakeAdmit(0, 1));
  ASSERT_TRUE(admit.admitted);
  ASSERT_TRUE(fleet->RunEpoch().ok());

  // Tenants cannot retire each other's queries.
  EXPECT_FALSE(fleet->Retire({admit.query_id, 2}).retired);
  RetireQueryResponse retire = fleet->Retire({admit.query_id, 1});
  EXPECT_TRUE(retire.retired);
  // Idempotence: a second retire of the same query is refused.
  EXPECT_FALSE(fleet->Retire({admit.query_id, 1}).retired);

  // Still active until the boundary; quota stays reserved.
  EXPECT_TRUE(fleet->Poll({admit.query_id, 0}).active);
  EXPECT_EQ(fleet->Admit(MakeAdmit(0, 1)).reject,
            AdmitReject::kTenantQueryQuota);

  auto report = fleet->RunEpoch();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied_retires, 1);
  EXPECT_FALSE(fleet->Poll({admit.query_id, 0}).active);
  EXPECT_EQ(fleet->deployment(0).num_queries(), 0);

  // Quota released; the replacement gets a fresh id — never the old one.
  const AdmitQueryResponse readmit = fleet->Admit(MakeAdmit(0, 1));
  ASSERT_TRUE(readmit.admitted);
  EXPECT_NE(readmit.query_id, admit.query_id);
}

TEST(FleetServiceTest, RetireBeforeActivationAppliesInOrder) {
  FleetWorld world(4, 1, 20);
  auto fleet = world.MakeFleet({});
  const AdmitQueryResponse admit = fleet->Admit(MakeAdmit(0, 0));
  ASSERT_TRUE(admit.admitted);
  // Retire while the admit is still queued: both apply, in order, at the
  // same boundary.
  EXPECT_TRUE(fleet->Retire({admit.query_id, 0}).retired);
  auto report = fleet->RunEpoch();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied_admits, 1);
  EXPECT_EQ(report->applied_retires, 1);
  EXPECT_EQ(fleet->deployment(0).num_queries(), 0);
  const PollAnswersResponse poll = fleet->Poll({admit.query_id, 0});
  EXPECT_TRUE(poll.known_query);
  EXPECT_FALSE(poll.active);
}

TEST(FleetServiceTest, ParallelSchedulerBitIdenticalToSerial) {
  constexpr int kDeployments = 6;
  constexpr int kEpochs = 18;
  FleetWorld world(5, kDeployments, 20);

  FleetOptions serial_options;
  serial_options.scheduler_threads = 1;
  serial_options.answer_ring_capacity = kEpochs;
  FleetOptions parallel_options = serial_options;
  parallel_options.scheduler_threads = 4;

  auto serial = world.MakeFleet(serial_options);
  auto parallel = world.MakeFleet(parallel_options);
  std::vector<int> ids;
  for (int d = 0; d < kDeployments; ++d) {
    for (int q = 0; q < 2; ++q) {
      const auto a = serial->Admit(MakeAdmit(d, q, 3 + q));
      const auto b = parallel->Admit(MakeAdmit(d, q, 3 + q));
      ASSERT_TRUE(a.admitted && b.admitted);
      ASSERT_EQ(a.query_id, b.query_id);
      ids.push_back(a.query_id);
    }
  }
  for (int e = 0; e < kEpochs; ++e) {
    auto ra = serial->RunEpoch();
    auto rb = parallel->RunEpoch();
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra->energy_mj, rb->energy_mj) << "epoch " << e;
  }

  // Scheduler output — every buffered answer — must match bit for bit.
  for (const int id : ids) {
    PollAnswersResponse a = serial->Poll({id, 0});
    PollAnswersResponse b = parallel->Poll({id, 0});
    ASSERT_EQ(a.answers.size(), b.answers.size()) << "query " << id;
    EXPECT_GT(a.answers.size(), 0u) << "query " << id;
    for (size_t i = 0; i < a.answers.size(); ++i) {
      const AnswerRecord& x = a.answers[i];
      const AnswerRecord& y = b.answers[i];
      EXPECT_EQ(x.epoch, y.epoch);
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.recall, y.recall);
      EXPECT_EQ(x.energy_mj, y.energy_mj);
      EXPECT_EQ(x.health, y.health);
      ASSERT_EQ(x.answer.size(), y.answer.size());
      for (size_t j = 0; j < x.answer.size(); ++j) {
        EXPECT_EQ(x.answer[j].node, y.answer[j].node);
        EXPECT_EQ(x.answer[j].value, y.answer[j].value);
      }
    }
  }
  const FleetStatus sa = serial->Snapshot();
  const FleetStatus sb = parallel->Snapshot();
  EXPECT_EQ(sa.total_energy_mj, sb.total_energy_mj);
  for (int d = 0; d < kDeployments; ++d) {
    EXPECT_EQ(sa.per_deployment[static_cast<size_t>(d)].total_energy_mj,
              sb.per_deployment[static_cast<size_t>(d)].total_energy_mj);
  }
}

TEST(FleetServiceTest, FleetParallelAdmissionIsThreadSafe) {
  constexpr int kAdmits = 64;
  FleetWorld world(6, 4, 20);
  auto fleet = world.MakeFleet({});
  util::ThreadPool pool(4);
  std::vector<int> got(kAdmits, -1);
  pool.ParallelFor(kAdmits, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const AdmitQueryResponse resp =
          fleet->Admit(MakeAdmit(i % 4, i % 3, 2 + i % 4));
      got[i] = resp.admitted ? resp.query_id : -1;
    }
  });
  std::vector<int> ids;
  for (int id : got) {
    ASSERT_GE(id, 0);
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());  // all distinct
  ASSERT_TRUE(fleet->RunEpoch().ok());
  EXPECT_EQ(fleet->Snapshot().standing_queries, kAdmits);
}

TEST(FleetServiceTest, AnswerRingOverflowReportsDrops) {
  FleetWorld world(7, 1, 20);
  FleetOptions options;
  options.answer_ring_capacity = 2;
  auto fleet = world.MakeFleet(options);
  const AdmitQueryResponse admit = fleet->Admit(MakeAdmit(0, 0));
  ASSERT_TRUE(admit.admitted);
  ASSERT_TRUE(fleet->RunEpochs(30).ok());
  PollAnswersResponse poll = fleet->Poll({admit.query_id, 0});
  EXPECT_LE(poll.answers.size(), 2u);
  EXPECT_GT(poll.dropped, 0);
  // Drop accounting is consumed by the poll.
  EXPECT_EQ(fleet->Poll({admit.query_id, 0}).dropped, 0);
}

TEST(FleetServiceTest, HealthReportIsTaggedAndRollsUp) {
  FleetWorld world(8, 2, 20);
  auto fleet = world.MakeFleet({});
  ASSERT_TRUE(fleet->Admit(MakeAdmit(0, 0)).admitted);
  ASSERT_TRUE(fleet->Admit(MakeAdmit(0, 1)).admitted);
  ASSERT_TRUE(fleet->Admit(MakeAdmit(1, 1)).admitted);
  ASSERT_TRUE(fleet->RunEpochs(12).ok());

  const std::vector<core::QueryHealth> report = fleet->HealthReport();
  ASSERT_EQ(report.size(), 3u);
  for (const core::QueryHealth& h : report) {
    EXPECT_GE(h.deployment_id, 0);
    EXPECT_GE(h.tenant_id, 0);
  }
  const auto tenants = core::RollupByTenant(report);
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].id, 0);
  EXPECT_EQ(tenants[0].queries, 1);
  EXPECT_EQ(tenants[1].id, 1);
  EXPECT_EQ(tenants[1].queries, 2);
  const auto deployments = core::RollupByDeployment(report);
  ASSERT_EQ(deployments.size(), 2u);
  EXPECT_EQ(deployments[0].queries, 2);
  EXPECT_EQ(deployments[1].queries, 1);

  const std::string json = core::FleetHealthJson(report);
  EXPECT_NE(json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(json.find("\"deployments\""), std::string::npos);
  EXPECT_NE(FleetStatusJson(fleet->Snapshot()).find("\"per_tenant\""),
            std::string::npos);
}

}  // namespace
}  // namespace service
}  // namespace prospector
