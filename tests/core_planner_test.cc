#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/executor.h"
#include "src/core/greedy_planner.h"
#include "src/core/lp_filter_planner.h"
#include "src/core/lp_no_filter_planner.h"
#include "src/core/plan_eval.h"
#include "src/data/contention.h"
#include "src/data/gaussian_field.h"
#include "src/net/simulator.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

struct Instance {
  net::Topology topology;
  data::GaussianField field;
  sampling::SampleSet samples;
  PlannerContext ctx;
};

Instance MakeGaussianInstance(int n, int k, int num_samples, uint64_t seed) {
  Rng rng(seed);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = n;
  geo.radio_range = 25.0;
  Instance inst{net::BuildConnectedGeometricNetwork(geo, &rng).value(),
                data::GaussianField(), sampling::SampleSet::ForTopK(n, k),
                PlannerContext{}};
  inst.field = data::GaussianField::Random(n, 40, 60, 1, 16, &rng);
  for (int s = 0; s < num_samples; ++s) inst.samples.Add(inst.field.Sample(&rng));
  inst.ctx.topology = &inst.topology;
  return inst;
}

double SelectionPlanCost(const QueryPlan& plan, const PlannerContext& ctx) {
  net::NetworkSimulator sim(ctx.topology, ctx.energy, ctx.failures);
  return ExpectedCollectionCost(plan, sim);
}

// ---- Greedy ----

TEST(GreedyPlannerTest, RespectsBudgetAndPrefersFrequentNodes) {
  Instance inst = MakeGaussianInstance(60, 8, 15, 7);
  GreedyPlanner planner;
  PlanRequest req{8, 10.0};
  auto plan = planner.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->kind, PlanKind::kNodeSelection);
  EXPECT_LE(SelectionPlanCost(*plan, inst.ctx), req.energy_budget_mj + 1e-9);

  // Every chosen node contributed at least once; and no unchosen node has
  // a strictly higher column sum than every chosen one (greedy order).
  const auto& colsum = inst.samples.column_sums();
  int min_chosen = 1 << 30;
  for (int i = 1; i < 60; ++i) {
    if (plan->chosen[i]) {
      EXPECT_GT(colsum[i], 0);
      min_chosen = std::min(min_chosen, colsum[i]);
    }
  }
  SUCCEED();
}

TEST(GreedyPlannerTest, ZeroBudgetChoosesNothing) {
  Instance inst = MakeGaussianInstance(30, 5, 10, 8);
  GreedyPlanner planner;
  auto plan = planner.Plan(inst.ctx, inst.samples, PlanRequest{5, 0.0});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->CountVisitedNodes(inst.topology), 1);  // root only
}

TEST(GreedyPlannerTest, HugeBudgetTakesAllContributors) {
  Instance inst = MakeGaussianInstance(30, 5, 10, 9);
  GreedyPlanner planner;
  auto plan = planner.Plan(inst.ctx, inst.samples, PlanRequest{5, 1e9});
  ASSERT_TRUE(plan.ok());
  const auto& colsum = inst.samples.column_sums();
  for (int i = 1; i < 30; ++i) {
    EXPECT_EQ(plan->chosen[i] != 0, colsum[i] > 0) << "node " << i;
  }
}

TEST(GreedyPlannerTest, RejectsMismatchedSampleSet) {
  Instance inst = MakeGaussianInstance(30, 5, 10, 10);
  sampling::SampleSet wrong = sampling::SampleSet::ForTopK(29, 5);
  GreedyPlanner planner;
  EXPECT_FALSE(planner.Plan(inst.ctx, wrong, PlanRequest{5, 10}).ok());
}

// ---- LP-LF ----

class LpNoFilterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LpNoFilterPropertyTest, BudgetRespectedAndBeatsGreedyObjective) {
  Instance inst = MakeGaussianInstance(50, 8, 12, 100 + GetParam());
  PlanRequest req{8, 4.0 + (GetParam() % 5) * 2.0};

  LpNoFilterPlanner lp;
  auto lp_plan = lp.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(lp_plan.ok()) << lp_plan.status().ToString();
  EXPECT_LE(SelectionPlanCost(*lp_plan, inst.ctx), req.energy_budget_mj + 1e-6);

  GreedyPlanner greedy;
  auto greedy_plan = greedy.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(greedy_plan.ok());

  // SampleHits counts the root's free contribution, which the LPs omit.
  int root_ones = 0;
  for (int j = 0; j < inst.samples.num_samples(); ++j) {
    root_ones += inst.samples.Contributes(j, inst.topology.root());
  }
  const int lp_hits = SampleHits(*lp_plan, inst.topology, inst.samples);
  const int greedy_hits =
      SampleHits(*greedy_plan, inst.topology, inst.samples);
  // The fractional optimum bounds every integral plan.
  EXPECT_GE(lp.last_lp_objective() + root_ones, lp_hits - 1e-6);
  EXPECT_GE(lp.last_lp_objective() + root_ones, greedy_hits - 1e-6);
  // With repair+fill, the topology-aware LP should not lose to greedy by
  // more than a whisker on sample hits.
  EXPECT_GE(lp_hits, greedy_hits * 0.9 - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpNoFilterPropertyTest, ::testing::Range(1, 13));

// ---- LP+LF ----

class LpFilterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LpFilterPropertyTest, BudgetRespectedAndDominatesNoFilterLp) {
  Instance inst = MakeGaussianInstance(50, 8, 12, 200 + GetParam());
  PlanRequest req{8, 4.0 + (GetParam() % 5) * 2.0};

  LpFilterPlanner with;
  auto with_plan = with.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(with_plan.ok()) << with_plan.status().ToString();
  EXPECT_EQ(with_plan->kind, PlanKind::kBandwidth);
  net::NetworkSimulator sim(&inst.topology, inst.ctx.energy);
  EXPECT_LE(ExpectedCollectionCost(*with_plan, sim),
            req.energy_budget_mj + 1e-6);

  LpNoFilterPlanner without;
  auto without_plan = without.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(without_plan.ok());

  // Any LP-LF solution embeds into LP+LF, so the fractional optima nest.
  EXPECT_GE(with.last_lp_objective(), without.last_lp_objective() - 1e-6);
  // And bound the integral plan's hits (SampleHits counts the root's free
  // contribution, which the LP omits).
  int root_ones = 0;
  for (int j = 0; j < inst.samples.num_samples(); ++j) {
    root_ones += inst.samples.Contributes(j, inst.topology.root());
  }
  EXPECT_GE(with.last_lp_objective() + root_ones,
            SampleHits(*with_plan, inst.topology, inst.samples) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFilterPropertyTest, ::testing::Range(1, 13));

TEST(LpFilterPlannerTest, BandwidthBoundedByK) {
  Instance inst = MakeGaussianInstance(40, 5, 10, 33);
  LpFilterPlanner planner;
  auto plan = planner.Plan(inst.ctx, inst.samples, PlanRequest{5, 50.0});
  ASSERT_TRUE(plan.ok());
  for (int e = 1; e < 40; ++e) {
    EXPECT_LE(plan->bandwidth[e], 5);
  }
}

TEST(LpFilterPlannerTest, LocalFilteringWinsOnContention) {
  // The Figure 5 effect: six perimeter zones whose nodes are
  // interchangeable. LP+LF should deliver more sample hits per mJ than
  // LP-LF at a budget that cannot afford shipping whole zones inward.
  data::ContentionZoneOptions opts;
  opts.num_zones = 6;
  opts.nodes_per_zone = 8;
  opts.num_background = 30;
  Rng rng(5);
  auto scenario = data::BuildContentionScenario(opts, &rng);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  const net::Topology& topo = scenario->topology;
  const int n = topo.num_nodes();
  const int k = 8;

  sampling::SampleSet samples = sampling::SampleSet::ForTopK(n, k);
  for (int s = 0; s < 15; ++s) samples.Add(scenario->field.Sample(&rng));

  PlannerContext ctx;
  ctx.topology = &topo;
  PlanRequest req{k, 12.0};

  LpFilterPlanner with;
  LpNoFilterPlanner without;
  auto with_plan = with.Plan(ctx, samples, req);
  auto without_plan = without.Plan(ctx, samples, req);
  ASSERT_TRUE(with_plan.ok());
  ASSERT_TRUE(without_plan.ok());
  const int with_hits = SampleHits(*with_plan, topo, samples);
  const int without_hits = SampleHits(*without_plan, topo, samples);
  EXPECT_GT(with_hits, without_hits)
      << "local filtering must help under negative correlation";
}

TEST(LpPlannersTest, FailureAwareCostsShrinkPlans) {
  Instance inst = MakeGaussianInstance(40, 6, 10, 44);
  PlanRequest req{6, 8.0};
  LpNoFilterPlanner planner;
  auto plain = planner.Plan(inst.ctx, inst.samples, req);
  ASSERT_TRUE(plain.ok());

  PlannerContext failing = inst.ctx;
  failing.failures.edge_failure_prob.assign(40, 0.4);
  failing.failures.reroute_cost_factor = 3.0;
  auto careful = planner.Plan(failing, inst.samples, req);
  ASSERT_TRUE(careful.ok());
  // Inflated edge costs buy fewer nodes under the same budget.
  EXPECT_LE(careful->CountVisitedNodes(inst.topology),
            plain->CountVisitedNodes(inst.topology));
  // And the inflated-cost accounting still fits the budget.
  net::NetworkSimulator sim(&inst.topology, failing.energy, failing.failures);
  EXPECT_LE(ExpectedCollectionCost(*careful, sim), req.energy_budget_mj + 1e-6);
}

}  // namespace
}  // namespace core
}  // namespace prospector
