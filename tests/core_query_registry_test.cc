// Sharded QueryRegistry: O(1) admit/retire under concurrent callers,
// ascending-id iteration, and the never-reuse id guarantee the fleet
// service builds on. The Parallel* cases are exercised under TSan by the
// sanitize CI arm (test-name regex includes "Shard").
#include "src/core/query_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/util/thread_pool.h"

namespace prospector {
namespace core {
namespace {

QuerySpec CheapSpec(int k = 3) {
  QuerySpec spec;
  spec.k = k;
  spec.energy_budget_mj = 5.0;
  spec.planner = PlannerChoice::kGreedy;
  return spec;
}

TEST(QueryRegistryShardTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(QueryRegistry(1).shard_count(), 1);
  EXPECT_EQ(QueryRegistry(2).shard_count(), 2);
  EXPECT_EQ(QueryRegistry(3).shard_count(), 4);
  EXPECT_EQ(QueryRegistry(16).shard_count(), 16);
  EXPECT_EQ(QueryRegistry(17).shard_count(), 32);
  EXPECT_EQ(QueryRegistry(0).shard_count(), 1);
}

TEST(QueryRegistryShardTest, AddFindRemoveBasics) {
  QueryRegistry registry;
  const int a = registry.Add(CheapSpec(2), /*num_nodes=*/10,
                             /*sample_window=*/8);
  const int b = registry.Add(CheapSpec(4), 10, 8);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(registry.size(), 2);
  ASSERT_NE(registry.Find(a), nullptr);
  EXPECT_EQ(registry.Find(a)->spec.k, 2);
  EXPECT_EQ(registry.Find(99), nullptr);

  EXPECT_TRUE(registry.Remove(a));
  EXPECT_FALSE(registry.Remove(a));  // already gone
  EXPECT_EQ(registry.size(), 1);
  EXPECT_EQ(registry.Find(a), nullptr);
  EXPECT_EQ(registry.ids(), std::vector<int>{b});
}

TEST(QueryRegistryShardTest, RetiredIdsAreBurnedForever) {
  QueryRegistry registry;
  const int id = registry.Add(CheapSpec(), 10, 8);
  EXPECT_TRUE(registry.Remove(id));
  // Neither path may revive a retired id.
  EXPECT_FALSE(registry.AddWithId(id, CheapSpec(), 10, 8).ok());
  const int next = registry.Add(CheapSpec(), 10, 8);
  EXPECT_NE(next, id);
}

TEST(QueryRegistryShardTest, ExternalIdsMayArriveOutOfOrder) {
  QueryRegistry registry;
  ASSERT_TRUE(registry.AddWithId(10, CheapSpec(), 10, 8).ok());
  ASSERT_TRUE(registry.AddWithId(3, CheapSpec(), 10, 8).ok());
  EXPECT_FALSE(registry.AddWithId(10, CheapSpec(), 10, 8).ok());
  // Internal allocation never collides with what external callers used.
  const int fresh = registry.Add(CheapSpec(), 10, 8);
  EXPECT_EQ(fresh, 11);
  EXPECT_EQ(registry.ids(), (std::vector<int>{3, 10, 11}));
}

TEST(QueryRegistryShardTest, OrderedIsAscendingById) {
  QueryRegistry registry(4);
  ASSERT_TRUE(registry.AddWithId(7, CheapSpec(7), 10, 8).ok());
  ASSERT_TRUE(registry.AddWithId(1, CheapSpec(1), 10, 8).ok());
  ASSERT_TRUE(registry.AddWithId(4, CheapSpec(4), 10, 8).ok());
  const std::vector<QueryState*>& ordered = registry.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0]->id, 1);
  EXPECT_EQ(ordered[1]->id, 4);
  EXPECT_EQ(ordered[2]->id, 7);
  // The snapshot tracks mutation.
  registry.Remove(4);
  ASSERT_EQ(registry.ordered().size(), 2u);
  EXPECT_EQ(registry.ordered()[1]->id, 7);
}

TEST(QueryRegistryShardTest, ParallelAdmitIsDeterministicAndLeakFree) {
  constexpr int kQueries = 256;
  util::ThreadPool pool(4);
  QueryRegistry registry;
  std::vector<int> ok(kQueries, 0);
  pool.ParallelFor(kQueries, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      ok[i] = registry.AddWithId(i, CheapSpec(1 + i % 5), 10, 8).ok() ? 1 : 0;
    }
  });
  EXPECT_EQ(std::count(ok.begin(), ok.end(), 1), kQueries);
  EXPECT_EQ(registry.size(), kQueries);
  const std::vector<int> ids = registry.ids();
  ASSERT_EQ(ids.size(), static_cast<size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    EXPECT_EQ(ids[static_cast<size_t>(i)], i);  // ascending, gap-free
    ASSERT_NE(registry.Find(i), nullptr);
    EXPECT_EQ(registry.Find(i)->spec.k, 1 + i % 5);
  }
  EXPECT_EQ(registry.next_id(), kQueries);
}

TEST(QueryRegistryShardTest, ParallelRetireThenReadmitNeverAliases) {
  constexpr int kQueries = 128;
  util::ThreadPool pool(4);
  QueryRegistry registry;
  pool.ParallelFor(kQueries, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      ASSERT_TRUE(registry.AddWithId(i, CheapSpec(), 10, 8).ok());
    }
  });
  // Concurrently retire the even ids...
  pool.ParallelFor(kQueries / 2, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      EXPECT_TRUE(registry.Remove(2 * i));
    }
  });
  EXPECT_EQ(registry.size(), kQueries / 2);
  // ...then try to re-admit them concurrently: every attempt must bounce.
  std::vector<int> revived(kQueries / 2, 0);
  pool.ParallelFor(kQueries / 2, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      revived[i] = registry.AddWithId(2 * i, CheapSpec(), 10, 8).ok() ? 1 : 0;
    }
  });
  EXPECT_EQ(std::count(revived.begin(), revived.end(), 1), 0);
  const std::vector<int> ids = registry.ids();
  ASSERT_EQ(ids.size(), static_cast<size_t>(kQueries / 2));
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<int>(2 * i + 1));  // odd survivors only
  }
}

TEST(QueryRegistryShardTest, ParallelMixedChurnConvergesToSameState) {
  // Two registries fed the same operations with different thread counts
  // must converge to identical membership.
  constexpr int kOps = 200;
  auto run = [&](int threads) {
    util::ThreadPool pool(threads);
    QueryRegistry registry(8);
    pool.ParallelFor(kOps, [&](int begin, int end) {
      for (int i = begin; i < end; ++i) {
        ASSERT_TRUE(registry.AddWithId(i, CheapSpec(), 10, 8).ok());
        if (i % 3 == 0) EXPECT_TRUE(registry.Remove(i));
      }
    });
    return registry.ids();
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace core
}  // namespace prospector
