#include "src/core/session.h"

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/data/gaussian_field.h"
#include "src/util/rng.h"

namespace prospector {
namespace core {
namespace {

struct World {
  net::Topology topo;
  data::GaussianField field;

  explicit World(uint64_t seed, int n = 50) {
    Rng rng(seed);
    net::GeometricNetworkOptions geo;
    geo.num_nodes = n;
    geo.radio_range = 26.0;
    topo = net::BuildConnectedGeometricNetwork(geo, &rng).value();
    field = data::GaussianField::Random(n, 40, 60, 1, 9, &rng);
  }
};

TEST(SessionTest, RejectsWrongTruthSize) {
  World w(1);
  TopKQuerySession session(&w.topo, {}, {}, SessionOptions{});
  EXPECT_FALSE(session.Tick({1.0, 2.0}).ok());
}

TEST(SessionTest, BootstrapsThenQueries) {
  World w(2);
  SessionOptions opts;
  opts.k = 5;
  opts.energy_budget_mj = 10.0;
  opts.bootstrap_sweeps = 4;
  TopKQuerySession session(&w.topo, {}, {}, opts, 7);
  Rng rng(3);

  int bootstraps = 0, queries = 0;
  for (int t = 0; t < 30; ++t) {
    auto r = session.Tick(w.field.Sample(&rng));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->kind == TopKQuerySession::TickResult::Kind::kBootstrap) {
      ++bootstraps;
      EXPECT_TRUE(r->answer.empty());
    }
    if (r->kind == TopKQuerySession::TickResult::Kind::kQuery) {
      ++queries;
      EXPECT_FALSE(r->answer.empty());
      EXPECT_LE(static_cast<int>(r->answer.size()), opts.k);
    }
  }
  EXPECT_EQ(bootstraps, 4);
  EXPECT_GT(queries, 15);
  EXPECT_TRUE(session.has_plan());
  EXPECT_GT(session.sampling_energy_mj(), 0.0);
  EXPECT_GT(session.query_energy_mj(), 0.0);
  EXPECT_GT(session.install_energy_mj(), 0.0);
  EXPECT_NEAR(session.total_energy_mj(),
              session.sampling_energy_mj() + session.query_energy_mj() +
                  session.install_energy_mj() + session.audit_energy_mj(),
              1e-9);
}

TEST(SessionTest, QueriesAreReasonablyAccurate) {
  World w(5);
  SessionOptions opts;
  opts.k = 5;
  opts.energy_budget_mj = 15.0;
  TopKQuerySession session(&w.topo, {}, {}, opts, 9);
  Rng rng(10);
  double recall = 0.0;
  int queries = 0;
  for (int t = 0; t < 60; ++t) {
    const std::vector<double> truth = w.field.Sample(&rng);
    auto r = session.Tick(truth);
    ASSERT_TRUE(r.ok());
    if (r->kind != TopKQuerySession::TickResult::Kind::kQuery) continue;
    ++queries;
    std::vector<char> in_answer(w.topo.num_nodes(), 0);
    for (const Reading& x : r->answer) in_answer[x.node] = 1;
    int hit = 0;
    for (const Reading& x : TrueTopK(truth, opts.k)) hit += in_answer[x.node];
    recall += static_cast<double>(hit) / opts.k;
  }
  ASSERT_GT(queries, 0);
  EXPECT_GT(recall / queries, 0.7);
}

TEST(SessionTest, AuditEpochsAreExactAndDriveExploreRate) {
  World w(6, 30);
  SessionOptions opts;
  opts.k = 4;
  opts.energy_budget_mj = 8.0;
  opts.audit_every = 10;
  opts.bootstrap_sweeps = 5;
  TopKQuerySession session(&w.topo, {}, {}, opts, 11);
  Rng rng(12);
  int audits = 0;
  for (int t = 0; t < 60; ++t) {
    const std::vector<double> truth = w.field.Sample(&rng);
    auto r = session.Tick(truth);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (r->kind == TopKQuerySession::TickResult::Kind::kAudit) {
      ++audits;
      EXPECT_EQ(r->answer, TrueTopK(truth, opts.k)) << "audits must be exact";
      EXPECT_GE(r->proven, 0);
    }
  }
  EXPECT_GE(audits, 3);
  EXPECT_GT(session.audit_energy_mj(), 0.0);
}

TEST(SessionTest, GreedyPlannerChoiceWorks) {
  World w(7, 30);
  SessionOptions opts;
  opts.k = 3;
  opts.energy_budget_mj = 6.0;
  opts.planner = SessionOptions::PlannerChoice::kGreedy;
  TopKQuerySession session(&w.topo, {}, {}, opts, 13);
  Rng rng(14);
  for (int t = 0; t < 20; ++t) {
    ASSERT_TRUE(session.Tick(w.field.Sample(&rng)).ok());
  }
  EXPECT_TRUE(session.has_plan());
  EXPECT_EQ(session.plan().kind, PlanKind::kNodeSelection);
}

}  // namespace
}  // namespace core
}  // namespace prospector
