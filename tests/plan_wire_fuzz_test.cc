// Deterministic fuzzing of core::DecodeSubplan, seeded from the golden
// corpus. The full run (exhaustive sweep + >=100k random mutations) is the
// CI gate ISSUE 6 asks for: zero crashes, zero sanitizer reports, zero
// canonical-bijection violations. A failure writes the offending input to
// plan_wire_fuzz_failure.hex (uploaded as a CI artifact) so it can be
// checked into spec/test-vectors/ as a permanent regression vector.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/plan_wire.h"
#include "src/testvec/fuzz.h"
#include "src/testvec/testvec.h"

#ifndef PROSPECTOR_SPEC_DEFAULT
#define PROSPECTOR_SPEC_DEFAULT "spec/test-vectors"
#endif

namespace prospector {
namespace testvec {
namespace {

std::vector<std::vector<uint8_t>> MustLoadCorpus() {
  auto corpus = LoadWireCorpus(SpecDirOrDefault(PROSPECTOR_SPEC_DEFAULT));
  EXPECT_TRUE(corpus.ok()) << corpus.status().ToString();
  return corpus.ok() ? std::move(*corpus) : std::vector<std::vector<uint8_t>>{};
}

TEST(DecodeOracleTest, CanonicalInputPasses) {
  core::Subplan sp;
  sp.k = 4;
  sp.outgoing_bandwidth = 2;
  sp.child_bandwidth = {{1, 2}};
  auto bytes = core::EncodeSubplan(sp);
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(CheckDecodeOneInput(*bytes).ok());
  EXPECT_TRUE(CheckEncodeRoundTrip(*bytes).ok());
}

TEST(DecodeOracleTest, RejectedInputIsNotAFailure) {
  EXPECT_TRUE(CheckDecodeOneInput({}).ok());
  EXPECT_TRUE(CheckDecodeOneInput({0xC7, 0x00, 0x01}).ok());
}

TEST(DecodeOracleTest, WouldCatchNonCanonicalAcceptance) {
  // If the decoder ever accepted this overlong-varint spelling, the
  // re-encode would differ and the oracle must flag it. Today the decoder
  // rejects it, which the oracle treats as success — this test pins that
  // the blob stays rejected (the oracle's job stays trivial).
  const std::vector<uint8_t> overlong = {0x00, 0x01, 0x02, 0x01, 0x85,
                                         0x00, 0x03};
  EXPECT_FALSE(core::DecodeSubplan(overlong).ok());
  EXPECT_TRUE(CheckDecodeOneInput(overlong).ok());
}

TEST(FuzzCorpusTest, LoadsWireBlobsFromEveryVectorKind) {
  const auto corpus = MustLoadCorpus();
  // Roundtrip vectors + error vectors + superplan node subplans all feed
  // the fuzzer; the corpus is large by construction.
  EXPECT_GE(corpus.size(), 50u);
}

TEST(FuzzTest, HundredThousandIterationsCleanRun) {
  const auto corpus = MustLoadCorpus();
  ASSERT_FALSE(corpus.empty());

  FuzzOptions options;
  options.seed = 0x5eed;
  options.iterations = 100000;
  const FuzzReport report = FuzzDecodeSubplan(corpus, options);

  if (!report.ok) {
    // Persist the failing input for CI artifact upload and local triage.
    const std::string hex = BytesToHex(report.failing_input);
    if (const Status st = WriteFile("plan_wire_fuzz_failure.hex", hex + "\n");
        !st.ok()) {
      std::fprintf(stderr, "could not save failing input: %s\n",
                   st.ToString().c_str());
    }
    FAIL() << "fuzzer found a violation after " << report.iterations
           << " iterations: " << report.message << "\ninput: " << hex
           << "\n(saved to plan_wire_fuzz_failure.hex; reproduce with seed 0x"
           << std::hex << options.seed << ")";
  }
  // The budget really ran: deterministic sweep plus the full random phase.
  EXPECT_GE(report.iterations, options.iterations);
  // Both outcomes occurred — a fuzzer that only ever rejects (or only
  // ever accepts) is exploring nothing.
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
}

TEST(FuzzTest, DistinctSeedsBothRunClean) {
  // A second, shorter run under a different seed guards against the main
  // seed having drifted into a lucky corner.
  const auto corpus = MustLoadCorpus();
  FuzzOptions options;
  options.seed = 0xfeedface;
  options.iterations = 10000;
  const FuzzReport report = FuzzDecodeSubplan(corpus, options);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(FuzzTest, DeterministicAcrossRuns) {
  const auto corpus = MustLoadCorpus();
  FuzzOptions options;
  options.iterations = 2000;
  const FuzzReport a = FuzzDecodeSubplan(corpus, options);
  const FuzzReport b = FuzzDecodeSubplan(corpus, options);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.ok, b.ok);
}

}  // namespace
}  // namespace testvec
}  // namespace prospector
