// libFuzzer entry point for core::DecodeSubplan (optional; the in-tree
// deterministic fuzzer in tests/plan_wire_fuzz_test.cc is the CI gate).
//
// Build with Clang:
//   cmake -B build-fuzz -S . -DPROSPECTOR_FUZZERS=ON \
//     -DCMAKE_CXX_COMPILER=clang++
//   cmake --build build-fuzz --target decode_subplan_fuzzer
//   ./build-fuzz/fuzz/decode_subplan_fuzzer spec/test-vectors/  # seeds
//
// The oracle is the same one the deterministic fuzzer uses: decoding must
// never crash, and any accepted input must re-encode byte-identically
// (the canonical-form bijection). Coverage-guided exploration rides on
// top of the checked-in corpus as the seed set.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/testvec/fuzz.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::vector<uint8_t> input(data, data + size);
  const prospector::Status st =
      prospector::testvec::CheckDecodeOneInput(input);
  if (!st.ok()) {
    std::fprintf(stderr, "oracle violation: %s\n", st.ToString().c_str());
    std::abort();  // let libFuzzer minimize and persist the input
  }
  return 0;
}
