#include "src/testvec/fuzz.h"

#include <algorithm>
#include <string>

#include "src/core/plan_wire.h"
#include "src/testvec/testvec.h"
#include "src/util/rng.h"

namespace prospector {
namespace testvec {
namespace {

using core::DecodeSubplan;
using core::EncodeSubplan;
using core::Subplan;
using core::SubplanQueryEntry;

/// A random subplan, occasionally pushed past the uint8 ceiling so every
/// wire version gets exercised.
Subplan RandomSubplan(Rng* rng) {
  auto field = [rng]() -> int {
    switch (rng->UniformInt(uint64_t{4})) {
      case 0: return static_cast<int>(rng->UniformInt(uint64_t{8}));
      case 1: return static_cast<int>(rng->UniformInt(uint64_t{256}));
      case 2: return 200 + static_cast<int>(rng->UniformInt(uint64_t{200}));
      default:
        return static_cast<int>(rng->UniformInt(uint64_t{1} << 20));
    }
  };
  Subplan sp;
  sp.proof_carrying = rng->Bernoulli(0.5);
  sp.node_selection = rng->Bernoulli(0.3);
  sp.chosen = sp.node_selection && rng->Bernoulli(0.5);
  sp.k = field();
  sp.outgoing_bandwidth = field();
  const int m = static_cast<int>(rng->UniformInt(uint64_t{9}));
  for (int i = 0; i < m; ++i) sp.child_bandwidth.emplace_back(field(), field());
  if (rng->Bernoulli(0.5)) {
    const int nq = 1 + static_cast<int>(rng->UniformInt(uint64_t{5}));
    for (int i = 0; i < nq; ++i) {
      sp.query_entries.push_back(SubplanQueryEntry{field(), field(), field()});
    }
  }
  return sp;
}

struct Runner {
  FuzzReport report;

  /// Runs the oracle once; returns false when the fuzz run must stop.
  bool Check(const std::vector<uint8_t>& input) {
    ++report.iterations;
    const Status st = CheckDecodeOneInput(input);
    if (!st.ok()) {
      report.ok = false;
      report.failing_input = input;
      report.message = st.ToString();
      return false;
    }
    if (DecodeSubplan(input).ok()) {
      ++report.accepted;
    } else {
      ++report.rejected;
    }
    return true;
  }
};

}  // namespace

Status CheckDecodeOneInput(const std::vector<uint8_t>& bytes) {
  auto decoded = DecodeSubplan(bytes);
  if (!decoded.ok()) return Status::OK();  // rejection is fine
  // Field ranges: the format only carries non-negative values.
  auto check_range = [](const char* what, int v) -> Status {
    if (v < 0 || v > core::kSubplanMaxFieldValue) {
      return Status::Internal(std::string("decoded ") + what +
                              " out of range: " + std::to_string(v));
    }
    return Status::OK();
  };
  PROSPECTOR_RETURN_IF_ERROR(check_range("k", decoded->k));
  PROSPECTOR_RETURN_IF_ERROR(
      check_range("outgoing bandwidth", decoded->outgoing_bandwidth));
  for (const auto& [child, bw] : decoded->child_bandwidth) {
    PROSPECTOR_RETURN_IF_ERROR(check_range("child id", child));
    PROSPECTOR_RETURN_IF_ERROR(check_range("child bandwidth", bw));
  }
  for (const SubplanQueryEntry& e : decoded->query_entries) {
    PROSPECTOR_RETURN_IF_ERROR(check_range("query id", e.query_id));
    PROSPECTOR_RETURN_IF_ERROR(check_range("query k", e.k));
    PROSPECTOR_RETURN_IF_ERROR(check_range("query bandwidth", e.bandwidth));
  }
  // Canonical-form bijection: an accepted blob re-encodes byte-exactly.
  auto reencoded = EncodeSubplan(*decoded);
  if (!reencoded.ok()) {
    return Status::Internal("accepted input does not re-encode: " +
                            reencoded.status().ToString());
  }
  if (*reencoded != bytes) {
    return Status::Internal(
        "accepted input is non-canonical: re-encoded " +
        BytesToHex(*reencoded) + " != input " + BytesToHex(bytes));
  }
  return Status::OK();
}

Status CheckEncodeRoundTrip(const std::vector<uint8_t>& encoded) {
  auto decoded = DecodeSubplan(encoded);
  if (!decoded.ok()) {
    return Status::Internal("encoder output rejected by decoder: " +
                            decoded.status().ToString());
  }
  auto reencoded = EncodeSubplan(*decoded);
  if (!reencoded.ok() || *reencoded != encoded) {
    return Status::Internal("encoder output does not round-trip");
  }
  return Status::OK();
}

FuzzReport FuzzDecodeSubplan(const std::vector<std::vector<uint8_t>>& corpus,
                             const FuzzOptions& options) {
  Runner runner;
  Rng rng(options.seed);

  // --- Deterministic exhaustive sweep over the corpus -------------------
  for (const std::vector<uint8_t>& entry : corpus) {
    // Truncation at every byte offset (the empty prefix included).
    for (size_t cut = 0; cut <= entry.size(); ++cut) {
      if (!runner.Check({entry.begin(), entry.begin() + cut})) {
        return runner.report;
      }
    }
    // Every single-bit flip.
    for (size_t i = 0; i < entry.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<uint8_t> mutated = entry;
        mutated[i] ^= static_cast<uint8_t>(1u << bit);
        if (!runner.Check(mutated)) return runner.report;
      }
    }
    // Version skew: force every tag value (0xC0..0xC7) and a plain flag
    // byte onto the front of the body.
    for (int v = 0; v < 8; ++v) {
      std::vector<uint8_t> tagged = entry;
      const uint8_t tag = static_cast<uint8_t>(0xC0 | v);
      if (!tagged.empty() && (tagged[0] & 0xC0) == 0xC0) {
        tagged[0] = tag;  // retag a versioned blob
      } else {
        tagged.insert(tagged.begin(), tag);  // promote a v0 blob
      }
      if (!runner.Check(tagged)) return runner.report;
    }
    // Hostile counts: saturate every byte in turn (covers the count
    // positions without needing to parse where they are).
    for (size_t i = 0; i < entry.size(); ++i) {
      std::vector<uint8_t> hostile = entry;
      hostile[i] = 0xFF;
      if (!runner.Check(hostile)) return runner.report;
    }
    // Trailing bytes after a complete body.
    for (const uint8_t tail : {0x00, 0x01, 0x80, 0xFF}) {
      std::vector<uint8_t> extended = entry;
      extended.push_back(tail);
      if (!runner.Check(extended)) return runner.report;
    }
  }

  // --- Seeded random mutations until the budget is spent ----------------
  for (uint64_t i = 0; i < options.iterations; ++i) {
    std::vector<uint8_t> input;
    const uint64_t strategy = rng.UniformInt(uint64_t{6});
    if (strategy == 0 || corpus.empty()) {
      // Fresh random bytes, short lengths favored.
      const size_t len = static_cast<size_t>(rng.UniformInt(
          rng.Bernoulli(0.8) ? uint64_t{24}
                             : static_cast<uint64_t>(options.max_input_bytes)));
      input.resize(len);
      for (uint8_t& b : input) {
        b = static_cast<uint8_t>(rng.UniformInt(uint64_t{256}));
      }
    } else if (strategy == 1) {
      // Valid subplan round trip (also refreshes coverage of v0/v1/v2).
      auto encoded = EncodeSubplan(RandomSubplan(&rng));
      if (!encoded.ok()) continue;
      const Status st = CheckEncodeRoundTrip(*encoded);
      ++runner.report.iterations;
      ++runner.report.accepted;
      if (!st.ok()) {
        runner.report.ok = false;
        runner.report.failing_input = *encoded;
        runner.report.message = st.ToString();
        return runner.report;
      }
      continue;
    } else {
      input = corpus[rng.UniformInt(static_cast<uint64_t>(corpus.size()))];
      const int edits = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));
      for (int e = 0; e < edits; ++e) {
        const uint64_t op = rng.UniformInt(uint64_t{4});
        if (input.empty() || op == 0) {
          // Insert a random byte (overlong-varint shapes included).
          const size_t at = static_cast<size_t>(
              rng.UniformInt(static_cast<uint64_t>(input.size() + 1)));
          input.insert(input.begin() + at, static_cast<uint8_t>(rng.UniformInt(
                                               uint64_t{256})));
        } else if (op == 1) {
          input.erase(input.begin() +
                      rng.UniformInt(static_cast<uint64_t>(input.size())));
        } else if (op == 2) {
          input[rng.UniformInt(static_cast<uint64_t>(input.size()))] =
              static_cast<uint8_t>(rng.UniformInt(uint64_t{256}));
        } else {
          // Splice the tail of another corpus entry on.
          const std::vector<uint8_t>& other =
              corpus[rng.UniformInt(static_cast<uint64_t>(corpus.size()))];
          const size_t keep = static_cast<size_t>(
              rng.UniformInt(static_cast<uint64_t>(input.size() + 1)));
          const size_t from = other.empty()
                                  ? 0
                                  : static_cast<size_t>(rng.UniformInt(
                                        static_cast<uint64_t>(other.size())));
          input.resize(keep);
          input.insert(input.end(), other.begin() + from, other.end());
        }
      }
    }
    if (!runner.Check(input)) return runner.report;
  }
  return runner.report;
}

Result<std::vector<std::vector<uint8_t>>> LoadWireCorpus(
    const std::string& spec_dir) {
  auto files = ListVectorFiles(spec_dir);
  if (!files.ok()) return files.status();
  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& path : *files) {
    auto doc = LoadVectorFile(path);
    if (!doc.ok()) return doc.status();
    const std::string& module = doc->at("module").str();
    if (module != "plan_wire" && module != "superplan") continue;
    const Json& cases = doc->at("cases");
    for (size_t i = 0; i < cases.size(); ++i) {
      const Json& c = cases[i];
      auto add_hex = [&corpus](const Json& hex) -> Status {
        if (!hex.is_string()) return Status::OK();
        auto bytes = HexToBytes(hex.str());
        if (!bytes.ok()) return bytes.status();
        corpus.push_back(std::move(*bytes));
        return Status::OK();
      };
      PROSPECTOR_RETURN_IF_ERROR(add_hex(c.at("wire_hex")));
      const Json& subplans = c.at("subplans");
      for (size_t s = 0; subplans.is_array() && s < subplans.size(); ++s) {
        PROSPECTOR_RETURN_IF_ERROR(add_hex(subplans[s].at("wire_hex")));
      }
    }
  }
  if (corpus.empty()) {
    return Status::NotFound("no wire blobs found in " + spec_dir);
  }
  // Dedup (several error vectors share prefixes) to keep the
  // deterministic sweep tight.
  std::sort(corpus.begin(), corpus.end());
  corpus.erase(std::unique(corpus.begin(), corpus.end()), corpus.end());
  return corpus;
}

}  // namespace testvec
}  // namespace prospector
