#ifndef PROSPECTOR_TESTVEC_JSON_H_
#define PROSPECTOR_TESTVEC_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace prospector {
namespace testvec {

/// Minimal JSON document model for the golden test-vector corpus
/// (spec/test-vectors/*.json). Self-contained on purpose — the container
/// bakes no JSON library, and the corpus only needs a faithful, fully
/// deterministic subset:
///   - object keys keep insertion order (so the generator's output is
///     byte-stable across runs and diffs stay readable);
///   - numbers round-trip exactly: integers in the double-exact range
///     print without an exponent or fraction, other doubles print via the
///     shortest form that parses back to the same bits;
///   - `inf` / `-inf` are handled by the LP vector schema as strings, not
///     here (JSON itself has no infinity literal).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}      // NOLINT
  Json(int i) : type_(Type::kNumber), number_(i) {}         // NOLINT
  Json(int64_t i)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}    // NOLINT

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  int AsInt() const { return static_cast<int>(number_); }
  const std::string& str() const { return str_; }

  // --- arrays ---
  size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }
  const Json& operator[](size_t i) const { return items_[i]; }
  Json& operator[](size_t i) { return items_[i]; }
  Json& Append(Json v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  // --- objects (insertion-ordered) ---
  /// Returns the member or nullptr.
  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : members_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  Json* Find(const std::string& key) {
    return const_cast<Json*>(static_cast<const Json*>(this)->Find(key));
  }
  bool contains(const std::string& key) const { return Find(key) != nullptr; }
  /// Returns the member or a shared null value when absent.
  const Json& at(const std::string& key) const {
    static const Json kNull;
    const Json* found = Find(key);
    return found != nullptr ? *found : kNull;
  }
  /// Inserts or replaces; keeps first-insertion order.
  Json& Set(const std::string& key, Json v) {
    for (auto& [k, existing] : members_) {
      if (k == key) {
        existing = std::move(v);
        return existing;
      }
    }
    members_.emplace_back(key, std::move(v));
    return members_.back().second;
  }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Parses a complete JSON document (rejects trailing garbage).
  static Result<Json> Parse(const std::string& text);

  /// Serializes. indent < 0 emits the compact one-line form; indent >= 0
  /// pretty-prints with that many spaces per level (2 is the corpus
  /// convention), ending without a trailing newline.
  std::string Dump(int indent = 2) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace testvec
}  // namespace prospector

#endif  // PROSPECTOR_TESTVEC_JSON_H_
