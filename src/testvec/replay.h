#ifndef PROSPECTOR_TESTVEC_REPLAY_H_
#define PROSPECTOR_TESTVEC_REPLAY_H_

#include <string>

#include "src/core/plan_wire.h"
#include "src/testvec/json.h"
#include "src/testvec/testvec.h"
#include "src/util/status.h"

namespace prospector {
namespace testvec {

/// Replays the golden test-vector corpus against the live implementation.
/// Each vector file declares a "module" — plan_wire, lp, or superplan —
/// and a list of cases; a replay failure names the file, case, and first
/// violated expectation. The harness is the CI tripwire that makes the
/// wire protocol and solver outputs regression-proof: any change to the
/// encoders, the simplex, or the merge logic that shifts observable bytes
/// or optima trips a vector before it ships.
///
/// Case schemas (see DESIGN.md "Wire format & golden vectors"):
///   plan_wire/roundtrip:    subplan + wire_hex + wire_version; encode
///                           must produce exactly wire_hex and decode
///                           must invert it.
///   plan_wire/decode_error: wire_hex + error_code (+ error_substr);
///                           decode must fail with that StatusCode.
///   plan_wire/encode_error: subplan + error_code; encode must refuse.
///   lp/solve:               model + solution; the stored certificate
///                           must pass VerifyKkt against the model, and a
///                           fresh simplex solve must reproduce status +
///                           objective (within objective_tol) with its
///                           own valid certificate.
///   superplan/merge:        parents + plans (+ query_ids, truth);
///                           MergePlans must reproduce merged_k and
///                           merged_bandwidth, every listed node subplan
///                           must encode to its wire_hex and decode back,
///                           and (when truth is present) the loss-free
///                           demuxed per-query answers must equal the
///                           vector's — which the generator certified
///                           bit-identical to standalone execution.
///   fault_schedule/timeline:     num_nodes + schedule + steps; each step
///                           advances the injector's clock (or remaps it
///                           across a rebuild) and compares the
///                           materialized fault state against a golden
///                           snapshot.
///   fault_schedule/chaos_replay: config (+ schedule, violations); the
///                           chaos harness re-runs the config and fails
///                           if any soak invariant violation reproduces —
///                           the persisted form of a failing schedule.

/// Serializes a subplan for the corpus / parses one back.
Json SubplanToJson(const core::Subplan& subplan);
Result<core::Subplan> SubplanFromJson(const Json& j);

/// Replays one case of the given module. OK when every expectation holds.
Status ReplayPlanWireCase(const Json& c);
Status ReplayLpCase(const Json& c);
Status ReplaySuperplanCase(const Json& c);
Status ReplayFaultScheduleCase(const Json& c);

/// Totals from a corpus replay.
struct ReplayStats {
  int files = 0;
  int cases = 0;
};

/// Replays every case of one vector file (dispatching on its module) or
/// of every *.json file in a directory. Returns the first failure,
/// prefixed with "<file>: case '<name>':". Stats (optional) accumulate.
Status ReplayVectorFile(const std::string& path, ReplayStats* stats);
Status ReplayCorpus(const std::string& dir, ReplayStats* stats);

}  // namespace testvec
}  // namespace prospector

#endif  // PROSPECTOR_TESTVEC_REPLAY_H_
