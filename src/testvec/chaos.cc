#include "src/testvec/chaos.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/testvec/testvec.h"
#include "src/util/rng.h"

namespace prospector {
namespace testvec {
namespace {

/// Engine bootstrap length used by every chaos run. Scripted events all
/// land at or after this epoch, so adversarial effects strike the guarded
/// query/audit executors, not just the window-priming sweeps.
constexpr int kChaosBootstrapSweeps = 6;

const char* KindName(net::FaultEvent::Kind kind) {
  switch (kind) {
    case net::FaultEvent::Kind::kKillNode:
      return "kill_node";
    case net::FaultEvent::Kind::kReviveNode:
      return "revive_node";
    case net::FaultEvent::Kind::kDegradeEdge:
      return "degrade_edge";
    case net::FaultEvent::Kind::kRestoreEdge:
      return "restore_edge";
    case net::FaultEvent::Kind::kPartitionSubtree:
      return "partition_subtree";
    case net::FaultEvent::Kind::kHealSubtree:
      return "heal_subtree";
    case net::FaultEvent::Kind::kDuplicateEdge:
      return "duplicate_edge";
    case net::FaultEvent::Kind::kCorruptEdge:
      return "corrupt_edge";
    case net::FaultEvent::Kind::kDelayEdge:
      return "delay_edge";
  }
  return "unknown";
}

Result<net::FaultEvent::Kind> KindFromName(const std::string& name) {
  using Kind = net::FaultEvent::Kind;
  if (name == "kill_node") return Kind::kKillNode;
  if (name == "revive_node") return Kind::kReviveNode;
  if (name == "degrade_edge") return Kind::kDegradeEdge;
  if (name == "restore_edge") return Kind::kRestoreEdge;
  if (name == "partition_subtree") return Kind::kPartitionSubtree;
  if (name == "heal_subtree") return Kind::kHealSubtree;
  if (name == "duplicate_edge") return Kind::kDuplicateEdge;
  if (name == "corrupt_edge") return Kind::kCorruptEdge;
  if (name == "delay_edge") return Kind::kDelayEdge;
  return Status::InvalidArgument("unknown fault kind '" + name + "'");
}

}  // namespace

Json FaultEventToJson(const net::FaultEvent& e) {
  Json j = Json::Object();
  j.Set("epoch", e.epoch);
  j.Set("kind", KindName(e.kind));
  j.Set("node", e.node);
  j.Set("probability", e.probability);
  j.Set("param", e.param);
  return j;
}

Result<net::FaultEvent> FaultEventFromJson(const Json& j) {
  if (!j.is_object() || !j.at("kind").is_string()) {
    return Status::InvalidArgument("fault event must be an object with kind");
  }
  auto kind = KindFromName(j.at("kind").str());
  if (!kind.ok()) return kind.status();
  net::FaultEvent e;
  e.epoch = j.at("epoch").AsInt();
  e.kind = *kind;
  e.node = j.at("node").AsInt();
  e.probability = j.at("probability").number();
  e.param = j.contains("param") ? j.at("param").AsInt() : 1;
  return e;
}

Json FaultScheduleToJson(const net::FaultSchedule& s) {
  Json arr = Json::Array();
  for (const net::FaultEvent& e : s.events) arr.Append(FaultEventToJson(e));
  return arr;
}

Result<net::FaultSchedule> FaultScheduleFromJson(const Json& j) {
  if (!j.is_array()) {
    return Status::InvalidArgument("fault schedule must be an array");
  }
  net::FaultSchedule s;
  for (size_t i = 0; i < j.size(); ++i) {
    auto e = FaultEventFromJson(j[i]);
    if (!e.ok()) return e.status();
    s.events.push_back(*e);
  }
  return s;
}

Json InjectorStateToJson(const net::FaultInjector& injector) {
  Json dead = Json::Array();
  Json cut = Json::Array();
  Json overrides = Json::Array();
  Json adversaries = Json::Array();
  // -1 is an impossible base probability, so it doubles as the "no
  // override installed" sentinel.
  constexpr double kNoBase = -1.0;
  for (int u = 0; u < injector.num_nodes(); ++u) {
    if (!injector.node_alive(u)) dead.Append(u);
    if (injector.edge_cut(u)) cut.Append(u);
    const double p = injector.EdgeProbability(u, kNoBase);
    if (p != kNoBase) {
      Json pair = Json::Array();
      pair.Append(u);
      pair.Append(p);
      overrides.Append(std::move(pair));
    }
    const net::EdgeAdversary& a = injector.adversary(u);
    if (a.any()) {
      Json adv = Json::Object();
      adv.Set("node", u);
      if (a.has_duplicate) {
        adv.Set("duplicate_prob", a.duplicate_prob);
        adv.Set("duplicate_copies", a.duplicate_copies);
      }
      if (a.has_corrupt) adv.Set("corrupt_prob", a.corrupt_prob);
      if (a.has_delay) {
        adv.Set("delay_prob", a.delay_prob);
        adv.Set("delay_epochs", a.delay_epochs);
      }
      adversaries.Append(std::move(adv));
    }
  }
  Json j = Json::Object();
  j.Set("dead", std::move(dead));
  j.Set("cut", std::move(cut));
  j.Set("overrides", std::move(overrides));
  j.Set("adversaries", std::move(adversaries));
  j.Set("num_dead", injector.num_dead());
  j.Set("any_adversary", injector.any_adversary());
  return j;
}

Json ChaosConfigToJson(const ChaosConfig& c) {
  Json j = Json::Object();
  j.Set("seed", static_cast<int64_t>(c.seed));
  j.Set("num_nodes", c.num_nodes);
  j.Set("epochs", c.epochs);
  j.Set("num_queries", c.num_queries);
  j.Set("naive", c.naive);
  j.Set("strip_duplicates", c.strip_duplicates);
  return j;
}

Result<ChaosConfig> ChaosConfigFromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("chaos config must be an object");
  }
  ChaosConfig c;
  c.seed = static_cast<uint64_t>(j.at("seed").number());
  c.num_nodes = j.at("num_nodes").AsInt();
  c.epochs = j.at("epochs").AsInt();
  c.num_queries = j.at("num_queries").AsInt();
  c.naive = j.at("naive").boolean();
  c.strip_duplicates = j.at("strip_duplicates").boolean();
  if (c.num_nodes < 2 || c.epochs < 1 || c.num_queries < 1) {
    return Status::InvalidArgument("chaos config sizes must be positive");
  }
  return c;
}

net::FaultSchedule GenerateChaosSchedule(const ChaosConfig& config,
                                         int num_nodes) {
  // The generator's draws depend only on seed and sizes — never on the
  // naive / strip_duplicates arms — so every arm of one seed injects the
  // same event list (strip_duplicates zeroes probabilities afterwards).
  Rng rng(config.seed ^ 0xc4a05c4ed01eULL);
  net::FaultSchedule s;
  const int first = kChaosBootstrapSweeps;
  const int last = std::max(first + 1, config.epochs - 2);
  const auto pick_epoch = [&]() {
    return first + static_cast<int>(rng.UniformInt(
                       static_cast<uint64_t>(std::max(1, last - first))));
  };
  const auto pick_node = [&]() {
    return 1 + static_cast<int>(rng.UniformInt(
                   static_cast<uint64_t>(std::max(1, num_nodes - 1))));
  };
  const auto later = [&](int e, int spread) {
    return std::min(last, e + 1 + static_cast<int>(rng.UniformInt(
                              static_cast<uint64_t>(spread))));
  };

  // Every schedule carries at least one of each adversarial kind, so the
  // engine always guards and the naive arm always has something to fold.
  {
    const int e = pick_epoch();
    const int v = pick_node();
    s.DuplicateEdge(e, v, rng.Uniform(0.5, 1.0),
                    1 + static_cast<int>(rng.UniformInt(2)));
    if (rng.Bernoulli(0.5)) s.DuplicateEdge(later(e, 6), v, 0.0);
  }
  {
    const int e = pick_epoch();
    const int v = pick_node();
    s.CorruptEdge(e, v, rng.Uniform(0.2, 0.6));
    if (rng.Bernoulli(0.5)) s.CorruptEdge(later(e, 6), v, 0.0);
  }
  {
    const int e = pick_epoch();
    const int v = pick_node();
    s.DelayEdge(e, v, rng.Uniform(0.2, 0.6),
                1 + static_cast<int>(rng.UniformInt(2)));
    if (rng.Bernoulli(0.5)) s.DelayEdge(later(e, 6), v, 0.0);
  }

  // A random mix of every fault tier on top.
  const int extra =
      4 + static_cast<int>(rng.UniformInt(
              static_cast<uint64_t>(1 + config.epochs / 6)));
  for (int i = 0; i < extra; ++i) {
    const int e = pick_epoch();
    const int v = pick_node();
    switch (rng.UniformInt(7)) {
      case 0:
        s.KillNode(e, v);
        if (rng.Bernoulli(0.5)) s.ReviveNode(later(e, 4), v);
        break;
      case 1:
        s.DegradeEdge(e, v, rng.Uniform(0.3, 0.9));
        if (rng.Bernoulli(0.6)) s.RestoreEdge(later(e, 5), v);
        break;
      case 2:
        s.PartitionSubtree(e, v);
        s.HealSubtree(later(e, 3), v);
        break;
      case 3:
        s.DuplicateEdge(e, v, rng.Uniform(0.4, 1.0),
                        1 + static_cast<int>(rng.UniformInt(2)));
        if (rng.Bernoulli(0.5)) s.DuplicateEdge(later(e, 5), v, 0.0);
        break;
      case 4:
        s.CorruptEdge(e, v, rng.Uniform(0.1, 0.5));
        if (rng.Bernoulli(0.5)) s.CorruptEdge(later(e, 5), v, 0.0);
        break;
      case 5:
        s.DelayEdge(e, v, rng.Uniform(0.1, 0.5),
                    1 + static_cast<int>(rng.UniformInt(2)));
        if (rng.Bernoulli(0.5)) s.DelayEdge(later(e, 5), v, 0.0);
        break;
      case 6:
        // A kill with no revive: watchdog-rebuild fodder.
        s.KillNode(e, v);
        break;
    }
  }

  if (config.strip_duplicates) {
    for (net::FaultEvent& e : s.events) {
      if (e.kind == net::FaultEvent::Kind::kDuplicateEdge) {
        e.probability = 0.0;
      }
    }
  }
  return s;
}

ChaosReport RunChaos(const ChaosConfig& config) {
  ChaosReport report;
  report.config = config;
  report.schedule = GenerateChaosSchedule(config, config.num_nodes);

  // A chaos run owns the flight recorder for its duration: clearing
  // here resets per-thread sequence counters so a replay of the same
  // config in the same process yields a byte-identical timeline.
  obs::FlightRecorder::Global().Clear();

  // Topology: geometric placement at roughly the density of the fault
  // recovery experiments, so watchdog rebuilds have reconnection slack.
  Rng topo_rng(config.seed ^ 0x70b0a5eedULL);
  net::GeometricNetworkOptions geo;
  geo.num_nodes = config.num_nodes;
  const double side =
      std::sqrt(static_cast<double>(config.num_nodes) / 0.004);
  geo.width = side;
  geo.height = side;
  geo.radio_range = 25.0;
  auto topo = net::BuildConnectedGeometricNetwork(geo, &topo_rng);
  if (!topo.ok()) {
    report.violations.push_back("topology: " + topo.status().ToString());
    return report;
  }

  // Transport knobs: one stream, drawn in a fixed order so every arm of
  // one seed sees the same tier-1/2 world. The adversary is always
  // enabled — the simulator then consumes its three draws per delivered
  // message on every edge, which is what makes the strip_duplicates arm
  // bit-identical in everything but duplication.
  Rng knob_rng(config.seed ^ 0x6b0b5ULL);
  core::QueryEngineOptions opts;
  opts.sample_window = 16;
  opts.bootstrap_sweeps = kChaosBootstrapSweeps;
  opts.faults = report.schedule;
  opts.dead_after_epochs = 4;
  opts.rebuild_radio_range = geo.radio_range;
  const net::FailureModel failures =
      net::FailureModel::Uniform(knob_rng.Uniform(0.0, 0.12));
  if (knob_rng.Bernoulli(0.5)) {
    opts.lossy.enabled = true;
    opts.lossy.max_retries = 1 + static_cast<int>(knob_rng.UniformInt(3));
    opts.lossy.backoff_cost_growth = knob_rng.Uniform(1.0, 1.8);
  }
  opts.adversarial.enabled = true;
  opts.adversarial.duplicate_prob = knob_rng.Uniform(0.0, 0.10);
  opts.adversarial.duplicate_copies =
      1 + static_cast<int>(knob_rng.UniformInt(2));
  opts.adversarial.corrupt_prob = knob_rng.Uniform(0.0, 0.08);
  opts.adversarial.delay_prob = knob_rng.Uniform(0.0, 0.10);
  opts.adversarial.delay_epochs =
      1 + static_cast<int>(knob_rng.UniformInt(2));
  if (config.strip_duplicates) opts.adversarial.duplicate_prob = 0.0;
  opts.fencing = config.naive ? core::TransportFencing::kNaive
                              : core::TransportFencing::kFenced;

  core::QueryEngine engine(&*topo, net::EnergyModel{}, failures, opts,
                           config.seed);

  // Query mix: planners rotate, the first query audits periodically
  // (driving the proof executor through the chaos), exploration is
  // scripted off so adversarial epochs hit the guarded executors.
  const auto add_query = [&engine](int idx) {
    core::QuerySpec spec;
    spec.k = 3 + 2 * (idx % 3);
    spec.planner = idx % 3 == 0   ? core::PlannerChoice::kLpFilter
                   : idx % 3 == 1 ? core::PlannerChoice::kGreedy
                                  : core::PlannerChoice::kLpNoFilter;
    spec.audit_every = idx == 0 ? 9 : 0;
    spec.manager.base_explore_probability = 0.0;
    spec.manager.boosted_explore_probability = 0.0;
    engine.AddQuery(spec);
  };
  const int initial_queries = std::max(1, config.num_queries);
  for (int q = 0; q < initial_queries; ++q) add_query(q);
  const int late_epoch = config.num_queries >= 2 ? config.epochs / 2 : -1;

  obs::Counter* audit_failures =
      obs::MetricsRegistry::Global().counter("audit.energy.failures");
  const int64_t audit_failures_before = audit_failures->value();

  Rng truth_rng(config.seed ^ 0x7271ULL);
  std::vector<double> truth(config.num_nodes);
  for (double& v : truth) v = truth_rng.Uniform(0.0, 100.0);

  int prev_values_lost_hi = 0;  // radio values_lost watermark for I2
  int64_t prev_corrupt_rejected = 0;
  for (int e = 0; e < config.epochs; ++e) {
    if (e == late_epoch) add_query(initial_queries);
    for (double& v : truth) {
      v = std::clamp(v + truth_rng.Uniform(-3.0, 3.0), 0.0, 100.0);
    }
    auto tick = engine.Tick(truth);
    if (!tick.ok()) {
      report.violations.push_back("tick " + std::to_string(e) +
                                  " failed: " + tick.status().ToString());
      break;
    }
    ++report.ticks;
    std::vector<std::vector<core::Reading>> row;
    row.reserve(tick->per_query.size());
    for (const auto& qr : tick->per_query) {
      row.push_back(qr.answer);
      if (qr.recall >= 0.0) {
        report.recall_sum += qr.recall;
        ++report.recall_count;
      }
      if (qr.replanned) ++report.replans;
    }
    report.answers.push_back(std::move(row));

    // I2 — flag honesty: an epoch that lost in-flight readings (drops,
    // corruption, or deferral; value-free control messages exempt) must
    // say so. Radio totals are cumulative, so deltas index the epoch.
    const net::TransmissionStats& radio = engine.radio_totals();
    const int lost_now =
        static_cast<int>(radio.values_lost) - prev_values_lost_hi;
    prev_values_lost_hi = static_cast<int>(radio.values_lost);
    if (lost_now > 0 && !tick->degraded) {
      report.violations.push_back(
          "I2: epoch " + std::to_string(e) + " lost " +
          std::to_string(lost_now) +
          " in-flight readings but did not report degraded");
    }
    const core::TransportGuard* guard = engine.transport_guard();
    if (guard != nullptr) {
      const int64_t rejected_now =
          guard->counters().corrupt_rejected - prev_corrupt_rejected;
      prev_corrupt_rejected = guard->counters().corrupt_rejected;
      if (rejected_now > 0 && !tick->degraded) {
        report.violations.push_back(
            "I2: epoch " + std::to_string(e) +
            " rejected a corrupt protocol message but did not report "
            "degraded");
      }
    }
  }

  report.rebuilds = engine.rebuilds();
  report.radio = engine.radio_totals();
  report.engine_energy_mj = engine.total_energy_mj();
  if (engine.transport_guard() != nullptr) {
    report.guard = engine.transport_guard()->counters();
  }

  // I1 — fencing is structural: a fenced protocol never folds stale or
  // duplicate traffic into an answer, whatever the schedule does.
  if (!config.naive) {
    if (report.guard.stale_folded != 0) {
      report.violations.push_back(
          "I1: fenced run folded " +
          std::to_string(report.guard.stale_folded) + " stale messages");
    }
    if (report.guard.duplicates_folded != 0) {
      report.violations.push_back(
          "I1: fenced run folded " +
          std::to_string(report.guard.duplicates_folded) +
          " duplicate copies");
    }
  }

  // I3 — the guard can only reject what the radio actually did. Sweeps
  // and plan installs bypass the guard, so these are inequalities.
  if (report.guard.corrupt_rejected > report.radio.corrupted) {
    report.violations.push_back(
        "I3: guard rejected more corrupt messages (" +
        std::to_string(report.guard.corrupt_rejected) +
        ") than the radio corrupted (" +
        std::to_string(report.radio.corrupted) + ")");
  }
  if (report.guard.deferred > report.radio.delayed) {
    report.violations.push_back(
        "I3: guard deferred more messages (" +
        std::to_string(report.guard.deferred) + ") than the radio delayed (" +
        std::to_string(report.radio.delayed) + ")");
  }
  if (report.guard.duplicates_dropped + report.guard.duplicates_folded >
      report.radio.duplicates) {
    report.violations.push_back(
        "I3: guard saw more duplicate copies (" +
        std::to_string(report.guard.duplicates_dropped +
                       report.guard.duplicates_folded) +
        ") than the radio duplicated (" +
        std::to_string(report.radio.duplicates) + ")");
  }

  // I4 — the energy audit reconciles: phase-claimed totals equal the
  // cumulative radio ledger, and no obs audit tripped mid-run.
  const double scale = std::max(1.0, report.radio.total_energy_mj);
  if (std::abs(report.engine_energy_mj - report.radio.total_energy_mj) >
      1e-6 * scale) {
    report.violations.push_back(
        "I4: engine ledger " + std::to_string(report.engine_energy_mj) +
        " mJ != radio ledger " +
        std::to_string(report.radio.total_energy_mj) + " mJ");
  }
  double attributed = 0.0;
  for (const int id : engine.query_ids()) {
    attributed += engine.total_energy_mj(id);
  }
  if (std::abs(attributed - report.engine_energy_mj) > 1e-6 * scale) {
    report.violations.push_back(
        "I4: per-query attribution " + std::to_string(attributed) +
        " mJ != engine ledger " + std::to_string(report.engine_energy_mj) +
        " mJ");
  }
  const int64_t audit_tripped =
      audit_failures->value() - audit_failures_before;
  if (audit_tripped > 0) {
    report.violations.push_back("I4: " + std::to_string(audit_tripped) +
                                " obs energy-audit checks failed");
  }

  report.health = engine.HealthReport();
  report.flight = obs::FlightRecorder::Global().Snapshot();
  return report;
}

Json FlightEventsToJson(const std::vector<obs::FlightEvent>& events) {
  Json cols = Json::Array();
  for (const char* c : {"epoch", "site", "kind", "seq", "query", "a", "b"}) {
    cols.Append(c);
  }
  Json rows = Json::Array();
  for (const obs::FlightEvent& ev : events) {
    Json row = Json::Array();
    row.Append(ev.epoch);
    row.Append(ev.site);
    row.Append(obs::FlightKindName(ev.kind));
    row.Append(static_cast<int64_t>(ev.seq));
    row.Append(ev.query_id);
    row.Append(ev.a);
    row.Append(ev.b);
    rows.Append(std::move(row));
  }
  Json j = Json::Object();
  j.Set("columns", std::move(cols));
  j.Set("events", std::move(rows));
  return j;
}

Json ChaosArtifact(const ChaosReport& report) {
  Json c = Json::Object();
  std::string name = "chaos-seed-" + std::to_string(report.config.seed);
  if (report.config.naive) name += "-naive";
  if (report.config.strip_duplicates) name += "-nodup";
  c.Set("name", name);
  c.Set("kind", "chaos_replay");
  c.Set("config", ChaosConfigToJson(report.config));
  c.Set("schedule", FaultScheduleToJson(report.schedule));
  Json violations = Json::Array();
  for (const std::string& v : report.violations) violations.Append(v);
  c.Set("violations", std::move(violations));
#ifndef PROSPECTOR_OBS_DISABLED
  // The merged flight timeline rides along so a violation artifact tells
  // the whole story; replay compares it byte-for-byte (the key is absent
  // from artifacts written by obs-disabled builds, and replay skips the
  // check when either side lacks it).
  c.Set("flight_recorder", FlightEventsToJson(report.flight));
#endif

  Json doc = Json::Object();
  doc.Set("module", "fault_schedule");
  Json cases = Json::Array();
  cases.Append(std::move(c));
  doc.Set("cases", std::move(cases));
  return doc;
}

Status WriteChaosArtifact(const std::string& path, const ChaosReport& report) {
  return WriteFile(path, ChaosArtifact(report).Dump(2) + "\n");
}

}  // namespace testvec
}  // namespace prospector
