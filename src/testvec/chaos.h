#ifndef PROSPECTOR_TESTVEC_CHAOS_H_
#define PROSPECTOR_TESTVEC_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/query_engine.h"
#include "src/net/fault_injector.h"
#include "src/net/simulator.h"
#include "src/obs/flight_recorder.h"
#include "src/testvec/json.h"
#include "src/util/status.h"

namespace prospector {
namespace testvec {

/// Chaos-soak harness (see DESIGN.md, "Failure semantics"): runs a
/// QueryEngine under a seeded random fault schedule that mixes all nine
/// scripted fault kinds (kills/revives, degrades/restores, partitions/
/// heals, duplication/corruption/delay) on top of rate-based lossy and
/// adversarial transport, across replans, watchdog rebuilds, and
/// multi-query epochs — and checks machine-verifiable invariants:
///
///   I1 fencing is structural: a fenced run never folds a stale or
///      duplicate message into an answer (guard counters stay zero);
///   I2 flag honesty: any epoch whose radio ledger recorded corruption
///      or deferral reports `degraded`;
///   I3 guard/radio reconciliation: protocol-layer rejection counters
///      never exceed the radio-level event counts (sweeps and plan
///      installs legitimately bypass the guard);
///   I4 the energy audit reconciles: phase-claimed totals equal the
///      cumulative radio ledger bit-for-bit (tolerance covers float
///      summation order only), and no obs energy-audit check failed;
///   I5 (corpus aggregate, asserted by the soak test) fenced recall is
///      no worse than the naive protocol's on the same schedules;
///   I6 tamper detection (asserted by the soak test): a deliberately
///      naive run over an adversarial schedule must show non-zero
///      stale/duplicate folds — if breaking the fence is invisible, the
///      soak proves nothing;
///   I7 duplication is answer-invariant under fencing: re-running with
///      every duplication knob zeroed (same seed, same draws — the
///      simulator consumes its three adversary draws regardless) yields
///      bit-identical per-tick answers.
///
/// A violating run serializes to a replayable vector file (module
/// "fault_schedule", case kind "chaos_replay") so CI failures reproduce
/// from the artifact alone.

/// Scripted fault timeline <-> corpus JSON (also used by the golden
/// fault-schedule vectors).
Json FaultEventToJson(const net::FaultEvent& e);
Result<net::FaultEvent> FaultEventFromJson(const Json& j);
Json FaultScheduleToJson(const net::FaultSchedule& s);
Result<net::FaultSchedule> FaultScheduleFromJson(const Json& j);

/// Canonical JSON of a FaultInjector's materialized state (dead set, cut
/// set, probability overrides, armed adversarial knobs, counts). The
/// golden timeline vectors store this per step; replay compares the
/// live injector's state against it textually.
Json InjectorStateToJson(const net::FaultInjector& injector);

/// One chaos run, fully determined by these knobs: the topology, the
/// fault schedule, the transport rates, the truth series, and the query
/// mix are all pure functions of `seed` and the sizes.
struct ChaosConfig {
  uint64_t seed = 1;
  int num_nodes = 20;
  int epochs = 48;
  /// Queries admitted up front; when >= 2, one more query joins at
  /// epochs/2 to exercise mid-flight admission.
  int num_queries = 2;
  /// Run the deliberately-broken naive protocol instead of fencing (the
  /// tamper-detection arm; never use for real results).
  bool naive = false;
  /// Zero every duplication knob (config rate and scripted events) while
  /// keeping all other draws identical — the I7 comparison arm.
  bool strip_duplicates = false;
};

Json ChaosConfigToJson(const ChaosConfig& c);
Result<ChaosConfig> ChaosConfigFromJson(const Json& j);

/// The seeded schedule a chaos run injects (pure function of the config
/// and the topology size; `strip_duplicates` only zeroes duplication
/// probabilities after generation, so the event list lines up 1:1).
net::FaultSchedule GenerateChaosSchedule(const ChaosConfig& config,
                                         int num_nodes);

/// Everything a soak needs to judge one run.
struct ChaosReport {
  ChaosConfig config;
  net::FaultSchedule schedule;
  int ticks = 0;
  int rebuilds = 0;
  int replans = 0;
  double recall_sum = 0.0;
  int recall_count = 0;
  /// Final protocol-guard counters (all zero when the engine never
  /// guarded — cannot happen for generated schedules, which always carry
  /// adversarial events).
  core::TransportGuard::Counters guard;
  /// Cumulative radio ledger across every phase and rebuild.
  net::TransmissionStats radio;
  double engine_energy_mj = 0.0;
  /// Per tick, per registered query (admission order): the answer that
  /// epoch (empty on sweep epochs). The I7 arm compares these across
  /// duplication-on/off runs.
  std::vector<std::vector<std::vector<core::Reading>>> answers;
  /// Final per-query health verdicts (admission order), captured before
  /// the engine is torn down so `prospector_obsdump` can render them.
  std::vector<core::QueryHealth> health;
  /// Merged flight-recorder timeline for the whole run. Deterministic:
  /// the recorder is cleared at run start, every event is recorded from
  /// serial code with no wall-clock values, so replaying the same config
  /// reproduces this byte-for-byte (empty when obs is compiled out).
  std::vector<obs::FlightEvent> flight;
  /// Human-readable invariant violations; empty means the run is clean.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  double mean_recall() const {
    return recall_count > 0 ? recall_sum / recall_count : -1.0;
  }
};

/// Runs one seeded chaos schedule end to end and checks invariants
/// I1-I4 (I5-I7 are cross-run properties the soak test asserts).
ChaosReport RunChaos(const ChaosConfig& config);

/// Columnar JSON for a merged flight timeline: {"columns": [...],
/// "events": [[epoch, site, kind, seq, query, a, b], ...]}. Byte-stable
/// across replays of the same config (see ChaosReport::flight).
Json FlightEventsToJson(const std::vector<obs::FlightEvent>& events);

/// Serializes a run as a replayable vector file: module "fault_schedule",
/// one case of kind "chaos_replay" carrying the config, the materialized
/// schedule (for review), and the violations observed. ReplayVectorFile
/// re-runs the config and fails if any violation reproduces — so a CI
/// artifact is a one-command repro.
Json ChaosArtifact(const ChaosReport& report);
Status WriteChaosArtifact(const std::string& path, const ChaosReport& report);

}  // namespace testvec
}  // namespace prospector

#endif  // PROSPECTOR_TESTVEC_CHAOS_H_
