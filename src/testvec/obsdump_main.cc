// Renders observability state — flight-recorder timelines, per-query
// health, OpenMetrics expositions — for humans and CI.
//
//   prospector_obsdump --demo [seed] [outdir]
//       Runs one seeded chaos soak with full instrumentation and writes
//       <outdir>/obsdump_metrics.om   OpenMetrics exposition (+ health)
//       <outdir>/obsdump_health.json  per-query health report
//       <outdir>/obsdump_flight.json  merged flight-recorder timeline
//       (outdir defaults to ".").
//
//   prospector_obsdump --fleet-demo [seed] [outdir]
//       Runs a small multi-tenant fleet (several deployments behind one
//       service::FleetService, with a deliberately tight quota so a typed
//       rejection shows up) and writes
//       <outdir>/obsdump_fleet_metrics.om  exposition incl. per-tenant and
//                                          per-deployment health rollups
//       <outdir>/obsdump_fleet_health.json FleetHealthJson (queries +
//                                          tenant/deployment rollups)
//       <outdir>/obsdump_fleet_status.json FleetStatusJson snapshot
//
//   prospector_obsdump <artifact.json>
//       Pretty-prints the config, violations, and embedded flight
//       timeline of a chaos violation artifact (or any vector file with
//       chaos_replay cases) without re-running anything.
//
// Exits non-zero on I/O or parse errors; rendering a violation artifact
// is itself not a failure (use testvec_replay for the repro run).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/core/health.h"
#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/obs/metrics.h"
#include "src/obs/openmetrics.h"
#include "src/service/fleet.h"
#include "src/testvec/chaos.h"
#include "src/testvec/testvec.h"
#include "src/util/status.h"

#include <vector>

namespace {

using prospector::Status;
using prospector::testvec::ChaosConfig;
using prospector::testvec::ChaosReport;
using prospector::testvec::Json;

int Fail(const Status& st) {
  std::fprintf(stderr, "prospector_obsdump: %s\n", st.ToString().c_str());
  return 1;
}

int RunDemo(uint64_t seed, const std::string& outdir) {
  // Start from a clean slate so the exposition describes this run only.
  prospector::obs::MetricsRegistry::Global().ResetAll();

  ChaosConfig config;
  config.seed = seed;
  const ChaosReport report = prospector::testvec::RunChaos(config);

  const std::string exposition =
      prospector::obs::ToOpenMetricsBody(
          prospector::obs::MetricsRegistry::Global().Snapshot()) +
      prospector::core::HealthOpenMetricsBody(report.health) + "# EOF\n";
  const std::string health =
      prospector::core::HealthReportJson(report.health) + "\n";
  const std::string flight =
      prospector::testvec::FlightEventsToJson(report.flight).Dump(2) + "\n";

  const std::string prefix = outdir.empty() ? "." : outdir;
  std::error_code ec;
  std::filesystem::create_directories(prefix, ec);
  if (ec) {
    return Fail(Status::Internal("cannot create output directory " + prefix +
                                 ": " + ec.message()));
  }
  struct {
    const char* name;
    const std::string* body;
  } files[] = {
      {"obsdump_metrics.om", &exposition},
      {"obsdump_health.json", &health},
      {"obsdump_flight.json", &flight},
  };
  for (const auto& f : files) {
    const std::string path = prefix + "/" + f.name;
    if (const Status st = prospector::testvec::WriteFile(path, *f.body);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), f.body->size());
  }
  std::printf(
      "demo: seed=%llu ticks=%d replans=%d rebuilds=%d mean_recall=%.3f "
      "flight_events=%zu violations=%zu\n",
      static_cast<unsigned long long>(config.seed), report.ticks,
      report.replans, report.rebuilds, report.mean_recall(),
      report.flight.size(), report.violations.size());
  for (const prospector::core::QueryHealth& h : report.health) {
    std::printf("  query %d: %s (scored=%d mean_recall=%.3f%s%s)\n",
                h.query_id, prospector::core::HealthStatusName(h.status),
                h.scored_epochs, h.mean_recall,
                h.breached.empty() ? "" : " breached=",
                h.breached.c_str());
  }
  return report.ok() ? 0 : 2;
}

int RunFleetDemo(uint64_t seed, const std::string& outdir) {
  namespace svc = prospector::service;
  prospector::obs::MetricsRegistry::Global().ResetAll();

  constexpr int kDeployments = 4;
  constexpr int kNodes = 24;
  svc::FleetOptions fleet_options;
  fleet_options.scheduler_threads = 2;
  svc::FleetService fleet(fleet_options);
  // Tenant 2 runs under a deliberately tight quota so the demo exposition
  // always carries a typed rejection.
  svc::TenantQuota tight;
  tight.max_standing_queries = 2;
  fleet.SetTenantQuota(2, tight);

  prospector::Rng rng(seed);
  std::vector<prospector::net::Topology> topologies;
  std::vector<prospector::data::GaussianField> fields;
  topologies.reserve(kDeployments);
  fields.reserve(kDeployments);
  for (int d = 0; d < kDeployments; ++d) {
    prospector::net::GeometricNetworkOptions geo;
    geo.num_nodes = kNodes;
    geo.radio_range = 40.0;
    auto topo = prospector::net::BuildConnectedGeometricNetwork(geo, &rng);
    if (!topo.ok()) return Fail(topo.status());
    topologies.push_back(std::move(topo.value()));
    fields.push_back(prospector::data::GaussianField::Random(
        kNodes, 40.0, 60.0, 1.0, 9.0, &rng));
  }
  for (int d = 0; d < kDeployments; ++d) {
    prospector::core::QueryEngineOptions engine_options;
    engine_options.bootstrap_sweeps = 4;
    const prospector::data::GaussianField& field = fields[d];
    fleet.AddDeployment(
        &topologies[d], {}, {}, engine_options,
        [&field](prospector::Rng* r) { return field.Sample(r); },
        seed + static_cast<uint64_t>(d));
  }

  // Three tenants spread queries across the fleet; tenant 2's third
  // admission bounces off its quota.
  for (int i = 0; i < 9; ++i) {
    svc::AdmitQueryRequest req;
    req.deployment_id = i % kDeployments;
    req.tenant_id = i % 3;
    req.spec.k = 3 + (i % 3);
    req.spec.energy_budget_mj = 8.0;
    req.spec.planner = prospector::core::PlannerChoice::kGreedy;
    const svc::AdmitQueryResponse resp = fleet.Admit(req);
    if (!resp.admitted) {
      std::printf("admit rejected (%s): %s\n",
                  svc::AdmitRejectName(resp.reject), resp.message.c_str());
    }
  }
  if (auto run = fleet.RunEpochs(40); !run.ok()) return Fail(run.status());

  const std::vector<prospector::core::QueryHealth> health =
      fleet.HealthReport();
  const std::string exposition =
      prospector::obs::ToOpenMetricsBody(
          prospector::obs::MetricsRegistry::Global().Snapshot()) +
      prospector::core::HealthOpenMetricsBody(health) +
      prospector::core::HealthRollupOpenMetricsBody(
          "tenant", prospector::core::RollupByTenant(health)) +
      prospector::core::HealthRollupOpenMetricsBody(
          "deployment", prospector::core::RollupByDeployment(health)) +
      "# EOF\n";
  const std::string health_json =
      prospector::core::FleetHealthJson(health) + "\n";
  const std::string status_json =
      svc::FleetStatusJson(fleet.Snapshot()) + "\n";

  const std::string prefix = outdir.empty() ? "." : outdir;
  std::error_code ec;
  std::filesystem::create_directories(prefix, ec);
  if (ec) {
    return Fail(Status::Internal("cannot create output directory " + prefix +
                                 ": " + ec.message()));
  }
  struct {
    const char* name;
    const std::string* body;
  } files[] = {
      {"obsdump_fleet_metrics.om", &exposition},
      {"obsdump_fleet_health.json", &health_json},
      {"obsdump_fleet_status.json", &status_json},
  };
  for (const auto& f : files) {
    const std::string path = prefix + "/" + f.name;
    if (const Status st = prospector::testvec::WriteFile(path, *f.body);
        !st.ok()) {
      return Fail(st);
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), f.body->size());
  }
  const svc::FleetStatus status = fleet.Snapshot();
  std::printf(
      "fleet demo: seed=%llu deployments=%d epochs=%lld standing=%d "
      "admits=%lld rejects=%lld energy=%.1f mJ\n",
      static_cast<unsigned long long>(seed), status.deployments, status.epoch,
      status.standing_queries, status.admits, status.rejects,
      status.total_energy_mj);
  return 0;
}

void PrintFlightTable(const Json& flight) {
  const Json& events = flight.at("events");
  if (!events.is_array()) return;
  std::printf("  flight timeline (%zu events):\n", events.size());
  std::printf("  %6s  %-28s %-12s %5s %12s %12s\n", "epoch", "site", "kind",
              "query", "a", "b");
  for (size_t i = 0; i < events.size(); ++i) {
    const Json& row = events[i];
    if (!row.is_array() || row.size() != 7) continue;
    std::printf("  %6d  %-28s %-12s %5d %12.6g %12.6g\n", row[0].AsInt(),
                row[1].str().c_str(), row[2].str().c_str(), row[4].AsInt(),
                row[5].number(), row[6].number());
  }
}

int RenderArtifact(const std::string& path) {
  auto doc = prospector::testvec::LoadVectorFile(path);
  if (!doc.ok()) return Fail(doc.status());
  const Json& cases = doc->at("cases");
  if (!cases.is_array()) {
    return Fail(Status::InvalidArgument(path + ": no cases array"));
  }
  int rendered = 0;
  for (size_t i = 0; i < cases.size(); ++i) {
    const Json& c = cases[i];
    const Json* kind = c.Find("kind");
    if (kind == nullptr || !kind->is_string() ||
        kind->str() != "chaos_replay") {
      continue;
    }
    ++rendered;
    std::printf("case '%s':\n", c.at("name").str().c_str());
    std::printf("  config: %s\n", c.at("config").Dump(-1).c_str());
    const Json& violations = c.at("violations");
    if (violations.is_array() && violations.size() > 0) {
      std::printf("  violations (%zu):\n", violations.size());
      for (size_t v = 0; v < violations.size(); ++v) {
        std::printf("    %s\n", violations[v].str().c_str());
      }
    } else {
      std::printf("  violations: none\n");
    }
    const Json* flight = c.Find("flight_recorder");
    if (flight != nullptr && flight->is_object()) {
      PrintFlightTable(*flight);
    } else {
      std::printf(
          "  flight timeline: absent (pre-recorder artifact or "
          "obs-disabled build)\n");
    }
  }
  if (rendered == 0) {
    return Fail(Status::InvalidArgument(path + ": no chaos_replay cases"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    const uint64_t seed =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 1ULL;
    const std::string outdir = argc >= 4 ? argv[3] : ".";
    return RunDemo(seed, outdir);
  }
  if (argc >= 2 && std::strcmp(argv[1], "--fleet-demo") == 0) {
    const uint64_t seed =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 1ULL;
    const std::string outdir = argc >= 4 ? argv[3] : ".";
    return RunFleetDemo(seed, outdir);
  }
  if (argc == 2) return RenderArtifact(argv[1]);
  std::fprintf(stderr,
               "usage: prospector_obsdump --demo [seed] [outdir]\n"
               "       prospector_obsdump --fleet-demo [seed] [outdir]\n"
               "       prospector_obsdump <artifact.json>\n");
  return 64;
}
