// Replays golden vector files against the live implementation.
//
//   testvec_replay [file-or-dir ...]     (default: spec/test-vectors)
//
// Exits non-zero on the first violated expectation, naming the file,
// case, and expectation. Point it at a chaos-soak violation artifact
// (chaos_violation_seedN.json) for a one-command repro of a CI failure.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/testvec/replay.h"
#include "src/util/status.h"

int main(int argc, char** argv) {
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) targets.emplace_back(argv[i]);
  if (targets.empty()) targets.emplace_back("spec/test-vectors");

  prospector::testvec::ReplayStats stats;
  for (const std::string& target : targets) {
    std::error_code ec;
    const bool is_dir = std::filesystem::is_directory(target, ec);
    const prospector::Status st =
        is_dir ? prospector::testvec::ReplayCorpus(target, &stats)
               : prospector::testvec::ReplayVectorFile(target, &stats);
    if (!st.ok()) {
      std::fprintf(stderr, "testvec_replay: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("ok: %d files, %d cases\n", stats.files, stats.cases);
  return 0;
}
