#include "src/testvec/testvec.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace prospector {
namespace testvec {

std::string BytesToHex(const std::vector<uint8_t>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Result<std::vector<uint8_t>> HexToBytes(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<uint8_t> out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex digit in wire string");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal("read error on " + path);
  return buf.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::Internal("write error on " + path);
  return Status::OK();
}

Result<std::vector<std::string>> ListVectorFiles(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("test-vector directory missing: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Status::Internal("cannot list " + dir + ": " + ec.message());
  if (paths.empty()) {
    return Status::NotFound("no *.json vectors in " + dir);
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

Result<Json> LoadVectorFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  auto doc = Json::Parse(*text);
  if (!doc.ok()) {
    return Status::InvalidArgument(path + ": " + doc.status().message());
  }
  if (!doc->is_object() || !doc->at("module").is_string() ||
      !doc->at("cases").is_array()) {
    return Status::InvalidArgument(
        path + ": vector file needs {module: string, cases: []}");
  }
  const Json& cases = doc->at("cases");
  for (size_t i = 0; i < cases.size(); ++i) {
    if (!cases[i].is_object() || !cases[i].at("name").is_string() ||
        !cases[i].at("kind").is_string()) {
      return Status::InvalidArgument(
          path + ": case " + std::to_string(i) +
          " needs string \"name\" and \"kind\" fields");
    }
  }
  return doc;
}

std::string SpecDirOrDefault(const std::string& compiled_default) {
  const char* env = std::getenv("PROSPECTOR_SPEC_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return compiled_default;
}

}  // namespace testvec
}  // namespace prospector
