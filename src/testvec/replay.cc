#include "src/testvec/replay.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/plan_merge.h"
#include "src/lp/kkt.h"
#include "src/lp/simplex.h"
#include "src/lp/vector_emit.h"
#include "src/net/fault_injector.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/testvec/chaos.h"

namespace prospector {
namespace testvec {
namespace {

Status CaseError(const std::string& what) {
  return Status::FailedPrecondition(what);
}

/// Did `st` fail with the status code the vector names? Codes are matched
/// by their ToString() prefix ("InvalidArgument: ..."), so vectors stay
/// readable and no separate code registry is needed.
Status ExpectError(const Status& st, const Json& c) {
  if (st.ok()) return CaseError("expected an error, got OK");
  const Json& code = c.at("error_code");
  if (code.is_string()) {
    const std::string prefix = code.str() + ":";
    if (st.ToString().rfind(prefix, 0) != 0) {
      return CaseError("expected error code " + code.str() + ", got " +
                       st.ToString());
    }
  }
  const Json& substr = c.at("error_substr");
  if (substr.is_string() &&
      st.message().find(substr.str()) == std::string::npos) {
    return CaseError("error message '" + st.message() +
                     "' lacks expected substring '" + substr.str() + "'");
  }
  return Status::OK();
}

Result<std::vector<int>> IntArray(const Json& j, const char* what) {
  if (!j.is_array()) {
    return Status::InvalidArgument(std::string(what) + " is not an array");
  }
  std::vector<int> out;
  out.reserve(j.size());
  for (size_t i = 0; i < j.size(); ++i) {
    if (!j[i].is_number()) {
      return Status::InvalidArgument(std::string(what) +
                                     " holds a non-number");
    }
    out.push_back(j[i].AsInt());
  }
  return out;
}

Result<core::QueryPlan> PlanFromJson(const Json& j,
                                     const net::Topology& topology) {
  if (!j.is_object() || !j.at("k").is_number()) {
    return Status::InvalidArgument("bad plan object");
  }
  const Json* kind = j.Find("kind");
  if (kind != nullptr && kind->is_string() &&
      kind->str() == "node_selection") {
    auto chosen = IntArray(j.at("chosen"), "plan chosen");
    if (!chosen.ok()) return chosen.status();
    std::vector<char> mask(chosen->begin(), chosen->end());
    return core::QueryPlan::NodeSelection(j.at("k").AsInt(), std::move(mask),
                                          topology);
  }
  auto bw = IntArray(j.at("bandwidth"), "plan bandwidth");
  if (!bw.ok()) return bw.status();
  const Json* pc = j.Find("proof_carrying");
  return core::QueryPlan::Bandwidth(
      j.at("k").AsInt(), std::move(*bw),
      pc != nullptr && pc->is_bool() && pc->boolean());
}

std::string AnswerString(const std::vector<core::Reading>& answer) {
  std::string out = "[";
  for (const core::Reading& r : answer) {
    out += "(" + std::to_string(r.node) + "," + std::to_string(r.value) + ")";
  }
  return out + "]";
}

}  // namespace

Json SubplanToJson(const core::Subplan& sp) {
  Json j = Json::Object();
  j.Set("proof_carrying", sp.proof_carrying);
  j.Set("node_selection", sp.node_selection);
  j.Set("chosen", sp.chosen);
  j.Set("k", sp.k);
  j.Set("outgoing_bandwidth", sp.outgoing_bandwidth);
  Json children = Json::Array();
  for (const auto& [child, bw] : sp.child_bandwidth) {
    Json pair = Json::Array();
    pair.Append(child);
    pair.Append(bw);
    children.Append(std::move(pair));
  }
  j.Set("children", std::move(children));
  Json entries = Json::Array();
  for (const core::SubplanQueryEntry& e : sp.query_entries) {
    Json triple = Json::Array();
    triple.Append(e.query_id);
    triple.Append(e.k);
    triple.Append(e.bandwidth);
    entries.Append(std::move(triple));
  }
  j.Set("query_entries", std::move(entries));
  return j;
}

Result<core::Subplan> SubplanFromJson(const Json& j) {
  if (!j.is_object() || !j.at("k").is_number() ||
      !j.at("outgoing_bandwidth").is_number()) {
    return Status::InvalidArgument("bad subplan object");
  }
  core::Subplan sp;
  sp.proof_carrying = j.at("proof_carrying").boolean();
  sp.node_selection = j.at("node_selection").boolean();
  sp.chosen = j.at("chosen").boolean();
  sp.k = j.at("k").AsInt();
  sp.outgoing_bandwidth = j.at("outgoing_bandwidth").AsInt();
  const Json& children = j.at("children");
  if (!children.is_array()) {
    return Status::InvalidArgument("subplan children is not an array");
  }
  for (size_t i = 0; i < children.size(); ++i) {
    const Json& pair = children[i];
    if (!pair.is_array() || pair.size() != 2) {
      return Status::InvalidArgument("bad subplan child entry");
    }
    sp.child_bandwidth.emplace_back(pair[0].AsInt(), pair[1].AsInt());
  }
  const Json& entries = j.at("query_entries");
  if (!entries.is_array()) {
    return Status::InvalidArgument("subplan query_entries is not an array");
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    const Json& triple = entries[i];
    if (!triple.is_array() || triple.size() != 3) {
      return Status::InvalidArgument("bad subplan query entry");
    }
    core::SubplanQueryEntry e;
    e.query_id = triple[0].AsInt();
    e.k = triple[1].AsInt();
    e.bandwidth = triple[2].AsInt();
    sp.query_entries.push_back(e);
  }
  return sp;
}

Status ReplayPlanWireCase(const Json& c) {
  const std::string& kind = c.at("kind").str();
  if (kind == "roundtrip") {
    auto sp = SubplanFromJson(c.at("subplan"));
    if (!sp.ok()) return sp.status();
    auto bytes = core::EncodeSubplan(*sp);
    if (!bytes.ok()) {
      return CaseError("encode failed: " + bytes.status().ToString());
    }
    const std::string hex = BytesToHex(*bytes);
    if (!c.at("wire_hex").is_string() || hex != c.at("wire_hex").str()) {
      return CaseError("encoded bytes " + hex + " != vector wire_hex " +
                       c.at("wire_hex").str());
    }
    const int version = core::SubplanWireVersion(*bytes);
    if (c.at("wire_version").is_number() &&
        version != c.at("wire_version").AsInt()) {
      return CaseError("wire version " + std::to_string(version) +
                       " != vector wire_version " +
                       std::to_string(c.at("wire_version").AsInt()));
    }
    auto decoded = core::DecodeSubplan(*bytes);
    if (!decoded.ok()) {
      return CaseError("decode of own encoding failed: " +
                       decoded.status().ToString());
    }
    if (!(*decoded == *sp)) {
      return CaseError("decode(encode(subplan)) differs from subplan");
    }
    return Status::OK();
  }
  if (kind == "decode_error") {
    auto bytes = HexToBytes(c.at("wire_hex").str());
    if (!bytes.ok()) return bytes.status();
    return ExpectError(core::DecodeSubplan(*bytes).status(), c);
  }
  if (kind == "encode_error") {
    auto sp = SubplanFromJson(c.at("subplan"));
    if (!sp.ok()) return sp.status();
    return ExpectError(core::EncodeSubplan(*sp).status(), c);
  }
  return CaseError("unknown plan_wire case kind '" + kind + "'");
}

Status ReplayLpCase(const Json& c) {
  if (c.at("kind").str() != "solve") {
    return CaseError("unknown lp case kind '" + c.at("kind").str() + "'");
  }
  auto model = lp::ModelFromJson(c.at("model"));
  if (!model.ok()) return model.status();
  auto stored = lp::SolutionFromJson(c.at("solution"));
  if (!stored.ok()) return stored.status();
  const double kkt_tol =
      c.at("kkt_tol").is_number() ? c.at("kkt_tol").number() : 1e-6;
  const double objective_tol = c.at("objective_tol").is_number()
                                   ? c.at("objective_tol").number()
                                   : 1e-7;
  // The stored certificate must hold on its own — the vector is the truth
  // and VerifyKkt checks it without trusting any solver.
  if (stored->status == lp::SolveStatus::kOptimal) {
    if (const Status cert = lp::VerifyKkt(*model, *stored, kkt_tol);
        !cert.ok()) {
      return CaseError("stored KKT certificate is invalid: " +
                       cert.ToString());
    }
  }
  // Every vector is replayed through BOTH engines — the dense tableau
  // oracle and the sparse revised simplex — and each must reproduce the
  // stored status and objective and certify its own optimum. Optima may be
  // non-unique, so primal points are not compared across engines; KKT is
  // the engine-independent proof of optimality.
  for (const lp::SimplexAlgorithm algo :
       {lp::SimplexAlgorithm::kDense, lp::SimplexAlgorithm::kRevised}) {
    lp::SimplexOptions opts;
    opts.algorithm = algo;
    const char* engine =
        algo == lp::SimplexAlgorithm::kDense ? "dense" : "revised";
    auto solved = lp::SimplexSolver(opts).Solve(*model);
    if (!solved.ok()) {
      return CaseError(std::string(engine) + " simplex rejected the model: " +
                       solved.status().ToString());
    }
    if (solved->status != stored->status) {
      return CaseError(std::string(engine) + " solver status " +
                       lp::ToString(solved->status) + " != vector status " +
                       lp::ToString(stored->status));
    }
    if (stored->status != lp::SolveStatus::kOptimal) continue;
    if (std::abs(solved->objective - stored->objective) > objective_tol) {
      return CaseError(std::string(engine) + " solver objective " +
                       std::to_string(solved->objective) +
                       " != vector objective " +
                       std::to_string(stored->objective));
    }
    if (const Status cert = lp::VerifyKkt(*model, *solved, kkt_tol);
        !cert.ok()) {
      return CaseError(std::string(engine) + " fresh solve fails KKT: " +
                       cert.ToString());
    }
  }
  return Status::OK();
}

Status ReplaySuperplanCase(const Json& c) {
  if (c.at("kind").str() != "merge") {
    return CaseError("unknown superplan case kind '" + c.at("kind").str() +
                     "'");
  }
  auto parents = IntArray(c.at("parents"), "parents");
  if (!parents.ok()) return parents.status();
  auto topo = net::Topology::FromParents(*parents);
  if (!topo.ok()) return topo.status();
  const Json& jplans = c.at("plans");
  if (!jplans.is_array() || jplans.size() == 0) {
    return CaseError("merge case needs a non-empty plans array");
  }
  std::vector<core::QueryPlan> plans;
  for (size_t i = 0; i < jplans.size(); ++i) {
    auto plan = PlanFromJson(jplans[i], *topo);
    if (!plan.ok()) return plan.status();
    plans.push_back(std::move(*plan));
  }
  std::vector<int> query_ids;
  if (c.contains("query_ids")) {
    auto ids = IntArray(c.at("query_ids"), "query_ids");
    if (!ids.ok()) return ids.status();
    query_ids = std::move(*ids);
  }
  const core::Superplan sp = core::MergePlans(plans, *topo, query_ids);
  if (c.at("merged_k").is_number() &&
      sp.merged.k != c.at("merged_k").AsInt()) {
    return CaseError("merged k " + std::to_string(sp.merged.k) +
                     " != vector merged_k");
  }
  auto merged_bw = IntArray(c.at("merged_bandwidth"), "merged_bandwidth");
  if (!merged_bw.ok()) return merged_bw.status();
  if (sp.merged.bandwidth != *merged_bw) {
    return CaseError("merged bandwidth differs from vector");
  }
  // Wire round trip of each pinned node subplan.
  const Json& subplans = c.at("subplans");
  for (size_t i = 0; subplans.is_array() && i < subplans.size(); ++i) {
    const Json& entry = subplans[i];
    const int node = entry.at("node").AsInt();
    const core::Subplan node_sp = core::MergedSubplanFor(sp, *topo, node);
    auto bytes = core::EncodeSubplan(node_sp);
    if (!bytes.ok()) {
      return CaseError("node " + std::to_string(node) +
                       " subplan does not encode: " +
                       bytes.status().ToString());
    }
    const std::string hex = BytesToHex(*bytes);
    if (hex != entry.at("wire_hex").str()) {
      return CaseError("node " + std::to_string(node) + " wire bytes " + hex +
                       " != vector " + entry.at("wire_hex").str());
    }
    if (entry.at("wire_version").is_number() &&
        core::SubplanWireVersion(*bytes) != entry.at("wire_version").AsInt()) {
      return CaseError("node " + std::to_string(node) +
                       " has unexpected wire version");
    }
    auto decoded = core::DecodeSubplan(*bytes);
    if (!decoded.ok() || !(*decoded == node_sp)) {
      return CaseError("node " + std::to_string(node) +
                       " subplan does not round-trip");
    }
  }
  // Demux round trip: the merged execution's per-query answers must equal
  // both the vector and a standalone execution of each constituent plan.
  const Json& jtruth = c.at("truth");
  if (jtruth.is_array()) {
    std::vector<double> truth;
    for (size_t i = 0; i < jtruth.size(); ++i) {
      truth.push_back(jtruth[i].number());
    }
    net::NetworkSimulator sim(&*topo, net::EnergyModel{});
    const core::SuperplanResult result =
        core::SuperplanExecutor::Execute(sp, truth, &sim);
    if (result.degraded) {
      return CaseError("loss-free merged execution reported degradation");
    }
    const Json& expected = c.at("per_query_answers");
    if (!expected.is_array() || expected.size() != result.per_query.size()) {
      return CaseError("per_query_answers shape mismatch");
    }
    for (size_t q = 0; q < expected.size(); ++q) {
      std::vector<core::Reading> want;
      for (size_t i = 0; i < expected[q].size(); ++i) {
        const Json& pair = expected[q][i];
        if (!pair.is_array() || pair.size() != 2) {
          return CaseError("bad per_query_answers entry");
        }
        want.push_back(core::Reading{pair[0].AsInt(), pair[1].number()});
      }
      if (result.per_query[q].answer != want) {
        return CaseError("query " + std::to_string(q) + " demuxed answer " +
                         AnswerString(result.per_query[q].answer) +
                         " != vector " + AnswerString(want));
      }
      net::NetworkSimulator standalone_sim(&*topo, net::EnergyModel{});
      const core::ExecutionResult standalone = core::CollectionExecutor::Execute(
          sp.plans[q], truth, &standalone_sim);
      if (standalone.answer != result.per_query[q].answer) {
        return CaseError("query " + std::to_string(q) +
                         " demuxed answer differs from standalone execution");
      }
    }
    // Attribution must reconcile with the audited total.
    double attributed = 0.0;
    for (const double mj : result.attributed_mj) attributed += mj;
    if (std::abs(attributed - result.total_energy_mj()) > 1e-6) {
      return CaseError("energy attribution does not sum to the total");
    }
  }
  return Status::OK();
}

Status ReplayFaultScheduleCase(const Json& c) {
  const std::string& kind = c.at("kind").str();
  if (kind == "chaos_replay") {
    // A persisted chaos artifact: re-run the config and fail if any
    // invariant violation reproduces — one-command repro of a CI soak
    // failure.
    auto config = ChaosConfigFromJson(c.at("config"));
    if (!config.ok()) return config.status();
    const ChaosReport report = RunChaos(*config);
    if (c.contains("schedule")) {
      // Integrity: the schedule the config regenerates must match the
      // recorded one, or the artifact no longer reproduces what it saw.
      if (FaultScheduleToJson(report.schedule).Dump(-1) !=
          c.at("schedule").Dump(-1)) {
        return CaseError(
            "regenerated schedule differs from the recorded one "
            "(schedule generator drifted)");
      }
    }
#ifndef PROSPECTOR_OBS_DISABLED
    if (c.contains("flight_recorder")) {
      // The flight timeline is deterministic (serial recording, no
      // wall-clock values), so a replay must reproduce it byte-for-byte.
      // Skipped when the artifact predates the recorder or was written
      // by an obs-disabled build.
      const std::string got = FlightEventsToJson(report.flight).Dump(-1);
      const std::string want = c.at("flight_recorder").Dump(-1);
      if (got != want) {
        return CaseError(
            "replayed flight-recorder timeline differs from the recorded "
            "one (recorder instrumentation drifted)");
      }
    }
#endif
    if (!report.ok()) {
      std::string all = "chaos run violated invariants:";
      for (const std::string& v : report.violations) all += "\n    " + v;
      return CaseError(all);
    }
    return Status::OK();
  }
  if (kind != "timeline") {
    return CaseError("unknown fault_schedule case kind '" + kind + "'");
  }

  // A scripted timeline: drive a FaultInjector through advance/remap
  // steps and compare the materialized state against the stored golden
  // snapshots.
  auto schedule = FaultScheduleFromJson(c.at("schedule"));
  if (!schedule.ok()) return schedule.status();
  if (!c.at("num_nodes").is_number()) {
    return CaseError("timeline case lacks num_nodes");
  }
  net::FaultInjector injector(c.at("num_nodes").AsInt(), *schedule);
  const Json& steps = c.at("steps");
  if (!steps.is_array() || steps.size() == 0) {
    return CaseError("timeline case lacks steps");
  }
  for (size_t i = 0; i < steps.size(); ++i) {
    const Json& step = steps[i];
    const std::string tag = "step " + std::to_string(i);
    if (step.contains("remap")) {
      auto new_id = IntArray(step.at("remap"), "remap");
      if (!new_id.ok()) return new_id.status();
      injector.Remap(*new_id, step.at("num_nodes").AsInt());
    } else if (step.contains("advance_to")) {
      injector.AdvanceTo(step.at("advance_to").AsInt());
    } else {
      return CaseError(tag + ": step has neither advance_to nor remap");
    }
    const std::string got = InjectorStateToJson(injector).Dump(-1);
    const std::string want = step.at("state").Dump(-1);
    if (got != want) {
      return CaseError(tag + ": injector state " + got +
                       " != golden state " + want);
    }
  }
  return Status::OK();
}

Status ReplayVectorFile(const std::string& path, ReplayStats* stats) {
  auto doc = LoadVectorFile(path);
  if (!doc.ok()) return doc.status();
  const std::string& module = doc->at("module").str();
  const Json& cases = doc->at("cases");
  for (size_t i = 0; i < cases.size(); ++i) {
    const Json& c = cases[i];
    Status st;
    if (module == "plan_wire") {
      st = ReplayPlanWireCase(c);
    } else if (module == "lp") {
      st = ReplayLpCase(c);
    } else if (module == "superplan") {
      st = ReplaySuperplanCase(c);
    } else if (module == "fault_schedule") {
      st = ReplayFaultScheduleCase(c);
    } else {
      st = CaseError("unknown module '" + module + "'");
    }
    if (!st.ok()) {
      return Status(st.code(), path + ": case '" + c.at("name").str() +
                                   "': " + st.message());
    }
    if (stats != nullptr) ++stats->cases;
  }
  if (stats != nullptr) ++stats->files;
  return Status::OK();
}

Status ReplayCorpus(const std::string& dir, ReplayStats* stats) {
  auto files = ListVectorFiles(dir);
  if (!files.ok()) return files.status();
  for (const std::string& path : *files) {
    PROSPECTOR_RETURN_IF_ERROR(ReplayVectorFile(path, stats));
  }
  return Status::OK();
}

}  // namespace testvec
}  // namespace prospector
