// Generates the golden test-vector corpus under spec/test-vectors/.
//
//   testvec_gen [output-dir]      (default: spec/test-vectors)
//
// The checked-in vectors are the single source of truth for the wire
// format, LP optima, and superplan merge/demux: this tool exists to
// (re)generate them when the format is *deliberately* revised, never as
// part of a build. Every generated case is replayed through the live
// harness before anything is written, so an inconsistent corpus cannot be
// produced; the diff against the previous corpus is the reviewable
// artifact of a format change.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/executor.h"
#include "src/core/plan_merge.h"
#include "src/core/plan_wire.h"
#include "src/lp/kkt.h"
#include "src/lp/simplex.h"
#include "src/lp/vector_emit.h"
#include "src/net/fault_injector.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"
#include "src/testvec/chaos.h"
#include "src/testvec/replay.h"
#include "src/testvec/testvec.h"

namespace prospector {
namespace testvec {
namespace {

using core::Subplan;
using core::SubplanQueryEntry;

void Die(const std::string& msg) {
  std::fprintf(stderr, "testvec_gen: %s\n", msg.c_str());
  std::exit(1);
}

// --------------------------------------------------------------------------
// plan_wire vectors

/// Builds a roundtrip case from a subplan, encoding with the live encoder
/// (the point of a golden vector: freeze today's bytes against tomorrow's
/// edits).
Json RoundtripCase(const std::string& name, const Subplan& sp) {
  auto bytes = core::EncodeSubplan(sp);
  if (!bytes.ok()) Die(name + ": " + bytes.status().ToString());
  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "roundtrip");
  c.Set("subplan", SubplanToJson(sp));
  c.Set("wire_hex", BytesToHex(*bytes));
  c.Set("wire_version", core::SubplanWireVersion(*bytes));
  return c;
}

Json DecodeErrorCase(const std::string& name, const std::vector<uint8_t>& bytes,
                     const std::string& substr) {
  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "decode_error");
  c.Set("wire_hex", BytesToHex(bytes));
  c.Set("error_code", "InvalidArgument");
  if (!substr.empty()) c.Set("error_substr", substr);
  return c;
}

Json EncodeErrorCase(const std::string& name, const Subplan& sp) {
  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "encode_error");
  c.Set("subplan", SubplanToJson(sp));
  c.Set("error_code", "InvalidArgument");
  return c;
}

Json PlanWireV0File() {
  Json doc = Json::Object();
  doc.Set("module", "plan_wire");
  doc.Set("description",
          "Version-0 (legacy untagged) subplan encodings: byte-exact "
          "round trips incl. varint child-id boundaries.");
  Json cases = Json::Array();

  cases.Append(RoundtripCase("empty_default", Subplan{}));

  {
    Subplan sp;
    sp.proof_carrying = true;
    sp.k = 7;
    sp.outgoing_bandwidth = 3;
    sp.child_bandwidth = {{5, 2}};
    cases.Append(RoundtripCase("legacy_proof_carrying_one_child", sp));
  }
  {
    Subplan sp;
    sp.node_selection = true;
    sp.chosen = true;
    sp.k = 2;
    sp.outgoing_bandwidth = 1;
    cases.Append(RoundtripCase("node_selection_chosen_leaf", sp));
  }
  {
    Subplan sp;
    sp.k = 4;
    sp.outgoing_bandwidth = 3;
    sp.child_bandwidth = {{2, 2}, {3, 1}};
    cases.Append(RoundtripCase("interior_node_two_children", sp));
  }
  {
    Subplan sp;
    sp.k = 5;
    sp.child_bandwidth = {{127, 1}, {128, 2}, {300, 3}};
    cases.Append(RoundtripCase("varint_width_boundary_child_ids", sp));
  }
  {
    Subplan sp;
    sp.k = 1;
    sp.child_bandwidth = {{core::kSubplanMaxFieldValue, 9}};
    cases.Append(RoundtripCase("five_byte_varint_child_id_int32_max", sp));
  }
  {
    Subplan sp;
    sp.proof_carrying = true;
    sp.node_selection = true;
    sp.chosen = true;
    sp.k = 255;
    sp.outgoing_bandwidth = 255;
    sp.child_bandwidth = {{1, 255}};
    cases.Append(RoundtripCase("all_fields_at_uint8_ceiling", sp));
  }
  {
    // Exactly 255 children: the largest fan-out the byte-counted layout
    // can spell; one more child must flip the encoding to version 2.
    Subplan sp;
    sp.k = 10;
    sp.outgoing_bandwidth = 10;
    for (int c = 1; c <= 255; ++c) sp.child_bandwidth.emplace_back(c, 1);
    cases.Append(RoundtripCase("boundary_255_children_still_v0", sp));
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

Json PlanWireV1File() {
  Json doc = Json::Object();
  doc.Set("module", "plan_wire");
  doc.Set("description",
          "Version-1 (0xC1-tagged) superplan subplans with per-query demux "
          "entries.");
  Json cases = Json::Array();

  {
    Subplan sp;
    sp.k = 4;
    sp.outgoing_bandwidth = 2;
    sp.query_entries = {{0, 4, 2}};
    cases.Append(RoundtripCase("single_query_entry", sp));
  }
  {
    Subplan sp;
    sp.proof_carrying = true;
    sp.k = 17;
    sp.outgoing_bandwidth = 9;
    sp.child_bandwidth = {{5, 3}, {200, 1}};
    sp.query_entries = {{0, 5, 2}, {3, 10, 9}, {300, 1, 1}};
    cases.Append(RoundtripCase("three_queries_sparse_ids", sp));
  }
  {
    Subplan sp;
    sp.k = 255;
    sp.outgoing_bandwidth = 255;
    sp.query_entries = {{core::kSubplanMaxFieldValue, 255, 255}};
    cases.Append(RoundtripCase("entry_values_at_uint8_ceiling", sp));
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

Json PlanWireV2File() {
  Json doc = Json::Object();
  doc.Set("module", "plan_wire");
  doc.Set("description",
          "Version-2 (0xC2-tagged) varint-widened subplans. The first two "
          "cases pin the former encode bugs: >255 children used to emit a "
          "self-rejecting blob (count byte clamped, entries not), and "
          "k/bandwidth > 255 were silently rewritten to 255 on the wire.");
  Json cases = Json::Array();

  {
    Subplan sp;
    sp.k = 10;
    sp.outgoing_bandwidth = 10;
    for (int c = 1; c <= 300; ++c) sp.child_bandwidth.emplace_back(c, 1);
    cases.Append(RoundtripCase("bug_count_truncation_300_children", sp));
  }
  {
    Subplan sp;
    sp.k = 1000;
    sp.outgoing_bandwidth = 400;
    sp.child_bandwidth = {{1, 400}};
    cases.Append(RoundtripCase("bug_silent_clamp_k_1000_bw_400", sp));
  }
  {
    Subplan sp;
    sp.k = 256;
    cases.Append(RoundtripCase("k_just_past_uint8", sp));
  }
  {
    Subplan sp;
    sp.k = 3;
    sp.query_entries = {{7, 300, 280}};
    cases.Append(RoundtripCase("query_entry_overflow_widens_all", sp));
  }
  {
    Subplan sp;
    sp.proof_carrying = true;
    sp.k = core::kSubplanMaxFieldValue;
    sp.outgoing_bandwidth = core::kSubplanMaxFieldValue;
    sp.child_bandwidth = {{core::kSubplanMaxFieldValue,
                           core::kSubplanMaxFieldValue}};
    sp.query_entries = {{core::kSubplanMaxFieldValue,
                         core::kSubplanMaxFieldValue,
                         core::kSubplanMaxFieldValue}};
    cases.Append(RoundtripCase("all_fields_int32_max", sp));
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

Json PlanWireErrorFile() {
  Json doc = Json::Object();
  doc.Set("module", "plan_wire");
  doc.Set("description",
          "Hostile and malformed inputs DecodeSubplan must reject, plus "
          "subplans EncodeSubplan must refuse. Includes systematic "
          "truncation sweeps of reference v1/v2 blobs.");
  Json cases = Json::Array();

  cases.Append(DecodeErrorCase("empty_input", {}, "too short"));
  cases.Append(DecodeErrorCase("three_byte_header", {0, 1, 2}, "too short"));
  cases.Append(
      DecodeErrorCase("missing_child_entry", {0, 1, 2, 1}, "child id"));
  cases.Append(DecodeErrorCase("truncated_child_varint",
                               {0, 1, 2, 1, 0x85}, "child id"));
  cases.Append(DecodeErrorCase("overlong_varint_child_id",
                               {0, 1, 2, 1, 0x85, 0x00, 3}, "child id"));
  cases.Append(DecodeErrorCase(
      "five_byte_varint_past_32_bits",
      {0, 1, 2, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x10, 3}, "child id"));
  cases.Append(DecodeErrorCase("varint_past_int32_max",
                               {0, 1, 2, 1, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 3},
                               "out of range"));
  cases.Append(
      DecodeErrorCase("trailing_bytes", {0, 1, 2, 0, 7}, "trailing"));
  cases.Append(
      DecodeErrorCase("reserved_flag_bits", {0x08, 1, 2, 0}, "flag"));
  cases.Append(DecodeErrorCase("hostile_count_no_entries",
                               {0, 1, 2, 0xFF}, "child id"));
  cases.Append(DecodeErrorCase("version_tag_alone", {0xC1}, "too short"));
  cases.Append(DecodeErrorCase("v1_with_v0_length_body",
                               {0xC1, 0x01, 7, 3, 0}, "query count"));
  cases.Append(DecodeErrorCase("v1_zero_query_entries_non_canonical",
                               {0xC1, 0x01, 7, 3, 0, 0}, "non-canonical"));
  cases.Append(DecodeErrorCase("v2_fits_byte_layout_non_canonical",
                               {0xC2, 0x01, 7, 3, 0, 0}, "non-canonical"));
  cases.Append(DecodeErrorCase("unknown_future_version",
                               {0xC3, 0x01, 7, 3, 0, 0}, "unsupported"));
  cases.Append(DecodeErrorCase("max_version_tag",
                               {0xFF, 0x01, 7, 3, 0, 0}, "unsupported"));

  // Truncation sweep over a reference v1 blob (every cut must fail).
  {
    Subplan sp;
    sp.k = 4;
    sp.outgoing_bandwidth = 2;
    sp.child_bandwidth = {{1, 2}};
    sp.query_entries = {{1, 4, 2}, {300, 3, 1}};
    auto bytes = core::EncodeSubplan(sp);
    if (!bytes.ok()) Die("reference v1 blob does not encode");
    if (core::SubplanWireVersion(*bytes) != 1) Die("reference blob not v1");
    for (size_t cut = 0; cut < bytes->size(); ++cut) {
      cases.Append(DecodeErrorCase(
          "trunc_v1_at_" + std::to_string(cut),
          {bytes->begin(), bytes->begin() + cut}, ""));
    }
  }
  // Truncation sweep over a reference v2 blob.
  {
    Subplan sp;
    sp.k = 1000;
    sp.outgoing_bandwidth = 300;
    sp.child_bandwidth = {{5, 256}, {600, 2}};
    sp.query_entries = {{12, 1000, 700}};
    auto bytes = core::EncodeSubplan(sp);
    if (!bytes.ok()) Die("reference v2 blob does not encode");
    if (core::SubplanWireVersion(*bytes) != 2) Die("reference blob not v2");
    for (size_t cut = 0; cut < bytes->size(); ++cut) {
      cases.Append(DecodeErrorCase(
          "trunc_v2_at_" + std::to_string(cut),
          {bytes->begin(), bytes->begin() + cut}, ""));
    }
  }

  // Encode refusals: negative fields must never be truncated onto the wire.
  {
    Subplan sp;
    sp.k = -1;
    cases.Append(EncodeErrorCase("encode_negative_k", sp));
  }
  {
    Subplan sp;
    sp.k = 3;
    sp.child_bandwidth = {{-2, 1}};
    cases.Append(EncodeErrorCase("encode_negative_child_id", sp));
  }
  {
    Subplan sp;
    sp.k = 3;
    sp.child_bandwidth = {{2, -1}};
    cases.Append(EncodeErrorCase("encode_negative_child_bandwidth", sp));
  }
  {
    Subplan sp;
    sp.k = 3;
    sp.query_entries = {{1, -4, 0}};
    cases.Append(EncodeErrorCase("encode_negative_query_k", sp));
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

// --------------------------------------------------------------------------
// LP vectors

Json LpCase(const std::string& name, const lp::Model& model,
            const std::string& note = "") {
  auto solved = lp::SimplexSolver().Solve(model);
  if (!solved.ok()) Die(name + ": " + solved.status().ToString());
  if (solved->status == lp::SolveStatus::kOptimal) {
    if (const Status cert = lp::VerifyKkt(model, *solved); !cert.ok()) {
      Die(name + ": generated optimum fails KKT: " + cert.ToString());
    }
  }
  // Both engines must already agree at generation time; the replay
  // harness re-checks this on every run, but a vector that only one
  // engine reproduces should never be written in the first place.
  for (const lp::SimplexAlgorithm algo :
       {lp::SimplexAlgorithm::kDense, lp::SimplexAlgorithm::kRevised}) {
    lp::SimplexOptions opts;
    opts.algorithm = algo;
    auto check = lp::SimplexSolver(opts).Solve(model);
    if (!check.ok()) Die(name + ": " + check.status().ToString());
    if (check->status != solved->status) {
      Die(name + ": engine status disagreement");
    }
    if (solved->status == lp::SolveStatus::kOptimal &&
        std::abs(check->objective - solved->objective) >
            1e-7 * (1.0 + std::abs(solved->objective))) {
      Die(name + ": engine objective disagreement");
    }
  }
  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "solve");
  if (!note.empty()) c.Set("note", note);
  c.Set("model", lp::ModelToJson(model));
  c.Set("solution", lp::SolutionToJson(*solved));
  return c;
}

Json LpFile() {
  Json doc = Json::Object();
  doc.Set("module", "lp");
  doc.Set("description",
          "Simplex optima with KKT certificates (duals + reduced costs). "
          "The stored certificate must verify against the model on its "
          "own, and a fresh solve by each engine (dense tableau and "
          "sparse revised simplex) must reproduce status and objective "
          "and certify its own optimum.");
  Json cases = Json::Array();

  {
    lp::Model m;
    m.SetSense(lp::Sense::kMaximize);
    const int x = m.AddVariable(0, lp::kInfinity, 3, "x");
    const int y = m.AddVariable(0, lp::kInfinity, 5, "y");
    m.AddRow(lp::RowType::kLessEqual, 4, {{x, 1}}, "cap_x");
    m.AddRow(lp::RowType::kLessEqual, 12, {{y, 2}}, "cap_y");
    m.AddRow(lp::RowType::kLessEqual, 18, {{x, 3}, {y, 2}}, "shared");
    cases.Append(LpCase("textbook_max_two_vars", m,
                        "optimum 36 at (2, 6)"));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMinimize);
    const int x = m.AddVariable(0, 8, 2, "x");
    const int y = m.AddVariable(0, lp::kInfinity, 3, "y");
    m.AddRow(lp::RowType::kGreaterEqual, 10, {{x, 1}, {y, 1}}, "demand");
    cases.Append(LpCase("min_cost_cover_ge_row", m,
                        "cheap variable saturates its bound first"));
  }
  {
    // The planner shape: per-edge value variables with subtree-size upper
    // bounds maximizing expected hits under one shared bandwidth budget.
    lp::Model m;
    m.SetSense(lp::Sense::kMaximize);
    const double gain[] = {5, 4, 3, 2};
    std::vector<lp::Term> budget;
    for (int e = 0; e < 4; ++e) {
      const int v = m.AddVariable(0, 2, gain[e], "edge" + std::to_string(e));
      budget.push_back({v, 1});
    }
    m.AddRow(lp::RowType::kLessEqual, 5, budget, "bandwidth_budget");
    cases.Append(LpCase("bandwidth_budget_bounded_vars", m,
                        "LP+NF shape: bounded edge values, one budget"));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMinimize);
    const int x = m.AddVariable(0, 3, 1, "x");
    const int y = m.AddVariable(0, lp::kInfinity, 2, "y");
    m.AddRow(lp::RowType::kEqual, 5, {{x, 1}, {y, 1}}, "exact");
    cases.Append(LpCase("equality_row", m));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMinimize);
    const int x = m.AddVariable(-lp::kInfinity, lp::kInfinity, 1, "x");
    m.AddRow(lp::RowType::kGreaterEqual, -5, {{x, 1}}, "floor");
    cases.Append(LpCase("free_variable_negative_optimum", m));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMaximize);
    const int x = m.AddVariable(0, 1, 1, "x");
    const int y = m.AddVariable(0, 1, 1, "y");
    m.AddRow(lp::RowType::kLessEqual, 1, {{x, 1}, {y, 1}}, "tie");
    cases.Append(LpCase("degenerate_multiple_optima", m,
                        "objective pinned; primal point may vary"));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMinimize);
    const int x = m.AddVariable(0, lp::kInfinity, 1, "x");
    m.AddRow(lp::RowType::kLessEqual, -1, {{x, 1}}, "impossible");
    cases.Append(LpCase("infeasible_negative_cap", m));
  }
  {
    lp::Model m;
    m.SetSense(lp::Sense::kMaximize);
    m.AddVariable(0, lp::kInfinity, 1, "x");
    cases.Append(LpCase("unbounded_ray", m));
  }
  {
    // Beale's cycling example: every vertex of the first two rows is
    // degenerate and Dantzig pricing alone cycles. Both engines must
    // escape via their Bland fallback and land on -0.05.
    lp::Model m;
    const int x1 = m.AddVariable(0, lp::kInfinity, -0.75, "x1");
    const int x2 = m.AddVariable(0, lp::kInfinity, 150, "x2");
    const int x3 = m.AddVariable(0, lp::kInfinity, -0.02, "x3");
    const int x4 = m.AddVariable(0, lp::kInfinity, 6, "x4");
    m.AddRow(lp::RowType::kLessEqual, 0,
             {{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, "degen_a");
    m.AddRow(lp::RowType::kLessEqual, 0,
             {{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, "degen_b");
    m.AddRow(lp::RowType::kLessEqual, 1, {{x3, 1}}, "cap");
    cases.Append(LpCase("degenerate_cycling_beale", m,
                        "anti-cycling required; optimum -0.05"));
  }
  {
    // Sparse planner-shaped LP sized past the kAuto density/size cutoffs,
    // so the default solve (and the stored certificate) comes from the
    // revised engine: 48 bounded variables, 62 three-term coupling rows,
    // one dense budget row. Coefficients are small deterministic integers.
    lp::Model m;
    m.SetSense(lp::Sense::kMaximize);
    std::vector<int> xs;
    std::vector<lp::Term> budget;
    for (int j = 0; j < 48; ++j) {
      const double gain = 1 + (j * 7) % 13;
      const double ub = 1 + j % 3;
      xs.push_back(m.AddVariable(0, ub, gain, "x" + std::to_string(j)));
      budget.push_back({xs.back(), 1.0});
    }
    for (int r = 0; r < 62; ++r) {
      std::vector<lp::Term> terms;
      for (int t = 0; t < 3; ++t) {
        terms.push_back({xs[(r * 3 + t * 5) % 48], 1.0 + (r + t) % 4});
      }
      m.AddRow(lp::RowType::kLessEqual, 4 + r % 5, terms,
               "couple" + std::to_string(r));
    }
    m.AddRow(lp::RowType::kLessEqual, 30, budget, "budget");
    cases.Append(LpCase("sparse_revised_dispatch", m,
                        "kAuto routes this shape to the revised engine"));
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

// --------------------------------------------------------------------------
// Superplan merge/demux vectors

/// Generator-side twin of the replay harness's plan parser (kept trivial
/// on purpose: build the JSON first, derive the QueryPlan from it, so the
/// vector and the generated expectations can never disagree).
core::QueryPlan PlanFromJsonForGen(const Json& pj, const net::Topology& topo);

Json MergeCase(const std::string& name, const std::vector<int>& parents,
               std::vector<Json> plan_jsons, const std::vector<int>& query_ids,
               const std::vector<double>& truth,
               const std::vector<int>& pin_nodes) {
  auto topo = net::Topology::FromParents(parents);
  if (!topo.ok()) Die(name + ": " + topo.status().ToString());

  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "merge");
  Json jparents = Json::Array();
  for (const int p : parents) jparents.Append(p);
  c.Set("parents", std::move(jparents));
  Json jplans = Json::Array();
  std::vector<core::QueryPlan> plans;
  for (Json& pj : plan_jsons) {
    auto plan = PlanFromJsonForGen(pj, *topo);
    plans.push_back(plan);
    jplans.Append(std::move(pj));
  }
  c.Set("plans", std::move(jplans));
  if (!query_ids.empty()) {
    Json jids = Json::Array();
    for (const int id : query_ids) jids.Append(id);
    c.Set("query_ids", std::move(jids));
  }

  const core::Superplan sp = core::MergePlans(plans, *topo, query_ids);
  c.Set("merged_k", sp.merged.k);
  Json jbw = Json::Array();
  for (const int b : sp.merged.bandwidth) jbw.Append(b);
  c.Set("merged_bandwidth", std::move(jbw));

  Json jsubplans = Json::Array();
  for (const int node : pin_nodes) {
    const Subplan node_sp = core::MergedSubplanFor(sp, *topo, node);
    auto bytes = core::EncodeSubplan(node_sp);
    if (!bytes.ok()) Die(name + ": node subplan does not encode");
    Json entry = Json::Object();
    entry.Set("node", node);
    entry.Set("wire_hex", BytesToHex(*bytes));
    entry.Set("wire_version", core::SubplanWireVersion(*bytes));
    jsubplans.Append(std::move(entry));
  }
  c.Set("subplans", std::move(jsubplans));

  Json jtruth = Json::Array();
  for (const double t : truth) jtruth.Append(t);
  c.Set("truth", std::move(jtruth));

  net::NetworkSimulator sim(&*topo, net::EnergyModel{});
  const core::SuperplanResult result =
      core::SuperplanExecutor::Execute(sp, truth, &sim);
  Json janswers = Json::Array();
  for (size_t q = 0; q < result.per_query.size(); ++q) {
    // Generator-side certification: the demuxed answer must already be
    // bit-identical to standalone execution, or the vector is wrong.
    net::NetworkSimulator solo(&*topo, net::EnergyModel{});
    const core::ExecutionResult standalone =
        core::CollectionExecutor::Execute(sp.plans[q], truth, &solo);
    if (standalone.answer != result.per_query[q].answer) {
      Die(name + ": demux is not bit-identical to standalone execution");
    }
    Json janswer = Json::Array();
    for (const core::Reading& r : result.per_query[q].answer) {
      Json pair = Json::Array();
      pair.Append(r.node);
      pair.Append(r.value);
      janswer.Append(std::move(pair));
    }
    janswers.Append(std::move(janswer));
  }
  c.Set("per_query_answers", std::move(janswers));
  return c;
}

Json BandwidthPlanJson(int k, const std::vector<int>& bw,
                       bool proof_carrying = false) {
  Json j = Json::Object();
  j.Set("k", k);
  Json jbw = Json::Array();
  for (const int b : bw) jbw.Append(b);
  j.Set("bandwidth", std::move(jbw));
  if (proof_carrying) j.Set("proof_carrying", true);
  return j;
}

Json NodeSelectionPlanJson(int k, const std::vector<int>& chosen) {
  Json j = Json::Object();
  j.Set("kind", "node_selection");
  j.Set("k", k);
  Json jc = Json::Array();
  for (const int c : chosen) jc.Append(c);
  j.Set("chosen", std::move(jc));
  return j;
}

Json SuperplanFile() {
  Json doc = Json::Object();
  doc.Set("module", "superplan");
  doc.Set("description",
          "Superplan merge/demux round trips: pointwise-max merged "
          "bandwidths, per-node v1 wire subplans, and loss-free demuxed "
          "answers certified bit-identical to standalone execution.");
  Json cases = Json::Array();

  cases.Append(MergeCase(
      "two_queries_chain",
      /*parents=*/{-1, 0, 1, 2},
      {BandwidthPlanJson(2, {0, 2, 1, 1}), BandwidthPlanJson(1, {0, 1, 1, 0})},
      /*query_ids=*/{}, /*truth=*/{0.5, 3.0, 1.0, 2.0},
      /*pin_nodes=*/{0, 1, 2}));

  cases.Append(MergeCase(
      "three_queries_tree_sparse_ids",
      /*parents=*/{-1, 0, 0, 1, 1, 2},
      {BandwidthPlanJson(3, {0, 3, 1, 1, 1, 1}, /*proof_carrying=*/false),
       BandwidthPlanJson(1, {0, 1, 0, 1, 0, 0}),
       BandwidthPlanJson(2, {0, 0, 2, 0, 0, 1})},
      /*query_ids=*/{4, 7, 9},
      /*truth=*/{0.1, 5.0, 4.0, 9.0, 2.0, 7.0},
      /*pin_nodes=*/{0, 1, 2, 3}));

  cases.Append(MergeCase(
      "bandwidth_plus_node_selection",
      /*parents=*/{-1, 0, 1, 1, 0},
      {BandwidthPlanJson(2, {0, 2, 1, 1, 1}),
       NodeSelectionPlanJson(2, {0, 0, 1, 0, 1})},
      /*query_ids=*/{}, /*truth=*/{1.0, 4.0, 6.0, 2.0, 5.0},
      /*pin_nodes=*/{0, 1}));

  doc.Set("cases", std::move(cases));
  return doc;
}

// --------------------------------------------------------------------------
// fault_schedule vectors

/// One step of a scripted injector timeline: either an AdvanceTo or a
/// Remap (when `remap` is non-empty).
struct TimelineStep {
  int advance_to = -1;
  std::vector<int> remap;
  int remap_num_nodes = 0;
};

/// Builds a timeline case by driving a live FaultInjector through the
/// steps and recording its materialized state after each one — the
/// snapshots freeze today's fault semantics the same way wire_hex freezes
/// today's encoder bytes.
Json TimelineCase(const std::string& name, int num_nodes,
                  const net::FaultSchedule& schedule,
                  const std::vector<TimelineStep>& steps) {
  Json c = Json::Object();
  c.Set("name", name);
  c.Set("kind", "timeline");
  c.Set("num_nodes", num_nodes);
  c.Set("schedule", FaultScheduleToJson(schedule));
  net::FaultInjector injector(num_nodes, schedule);
  Json jsteps = Json::Array();
  for (const TimelineStep& step : steps) {
    Json js = Json::Object();
    if (!step.remap.empty()) {
      Json jr = Json::Array();
      for (const int id : step.remap) jr.Append(id);
      js.Set("remap", std::move(jr));
      js.Set("num_nodes", step.remap_num_nodes);
      injector.Remap(step.remap, step.remap_num_nodes);
    } else {
      js.Set("advance_to", step.advance_to);
      injector.AdvanceTo(step.advance_to);
    }
    js.Set("state", InjectorStateToJson(injector));
    jsteps.Append(std::move(js));
  }
  c.Set("steps", std::move(jsteps));
  return c;
}

Json FaultScheduleFile() {
  Json doc = Json::Object();
  doc.Set("module", "fault_schedule");
  doc.Set("description",
          "Scripted fault timelines with golden injector-state snapshots "
          "after every advance/remap step, plus a chaos-replay config: "
          "replay drives a live FaultInjector (and the chaos harness) and "
          "compares materialized state textually.");
  Json cases = Json::Array();

  {
    // Lifecycle basics, root pinned: the epoch-4 kill names the root and
    // must leave it alive.
    net::FaultSchedule s;
    s.KillNode(1, 2).KillNode(2, 4).ReviveNode(3, 2).KillNode(4, 0);
    cases.Append(TimelineCase("kill_revive_root_pinned", 5, s,
                              {{1, {}, 0}, {2, {}, 0}, {3, {}, 0}, {4, {}, 0}}));
  }
  {
    // Link-quality overrides and partitions arm and clear independently.
    net::FaultSchedule s;
    s.DegradeEdge(1, 3, 0.65)
        .PartitionSubtree(2, 1)
        .RestoreEdge(3, 3)
        .HealSubtree(4, 1);
    cases.Append(TimelineCase("degrade_partition_then_heal", 5, s,
                              {{1, {}, 0}, {2, {}, 0}, {3, {}, 0}, {4, {}, 0}}));
  }
  {
    // Adversarial knobs arm per edge and disarm at probability zero; a
    // sub-1 param clamps (delay of at least one epoch).
    net::FaultSchedule s;
    s.DuplicateEdge(1, 2, 0.5, 3)
        .CorruptEdge(1, 2, 0.25)
        .DelayEdge(1, 3, 0.75, 0)
        .DuplicateEdge(2, 2, 0.0)
        .CorruptEdge(3, 2, 0.0)
        .DelayEdge(3, 3, 0.0);
    cases.Append(TimelineCase("adversarial_arm_and_disarm", 4, s,
                              {{1, {}, 0}, {2, {}, 0}, {3, {}, 0}}));
  }
  {
    // Two consecutive rebuilds: live state and pending events follow the
    // survivors; events naming removed nodes drop for good.
    net::FaultSchedule s;
    s.KillNode(0, 4)
        .DegradeEdge(0, 3, 0.7)
        .DelayEdge(0, 5, 1.0, 2)
        .KillNode(5, 2)
        .CorruptEdge(6, 3, 0.9)
        .DuplicateEdge(8, 1, 1.0, 2);
    cases.Append(TimelineCase("remap_across_two_rebuilds", 6, s,
                              {{0, {}, 0},
                               {-1, {0, 1, -1, 2, 3, 4}, 5},
                               {5, {}, 0},
                               {6, {}, 0},
                               {-1, {0, 1, 2, 3, -1}, 4},
                               {8, {}, 0}}));
  }
  {
    // The clock is idempotent: re-advancing to the current epoch (or an
    // earlier one) replays nothing — both snapshots must be identical.
    net::FaultSchedule s;
    s.KillNode(2, 1).ReviveNode(4, 1);
    cases.Append(TimelineCase("advance_to_is_idempotent", 3, s,
                              {{2, {}, 0}, {2, {}, 0}, {1, {}, 0}, {4, {}, 0}}));
  }
  {
    // One small end-to-end chaos run, frozen: replay re-runs the config
    // and fails if any soak invariant violation appears.
    ChaosConfig config;
    config.seed = 7;
    config.num_nodes = 16;
    config.epochs = 24;
    config.num_queries = 2;
    const ChaosReport report = RunChaos(config);
    if (!report.ok()) {
      Die("chaos corpus config violated invariants: " +
          report.violations.front());
    }
    cases.Append(ChaosArtifact(report).at("cases")[0]);
  }

  doc.Set("cases", std::move(cases));
  return doc;
}

core::QueryPlan PlanFromJsonForGen(const Json& pj, const net::Topology& topo) {
  const Json* kind = pj.Find("kind");
  if (kind != nullptr && kind->is_string() &&
      kind->str() == "node_selection") {
    const Json& jc = pj.at("chosen");
    std::vector<char> mask;
    for (size_t i = 0; i < jc.size(); ++i) {
      mask.push_back(static_cast<char>(jc[i].AsInt()));
    }
    return core::QueryPlan::NodeSelection(pj.at("k").AsInt(), std::move(mask),
                                          topo);
  }
  const Json& jbw = pj.at("bandwidth");
  std::vector<int> bw;
  for (size_t i = 0; i < jbw.size(); ++i) bw.push_back(jbw[i].AsInt());
  const Json* pc = pj.Find("proof_carrying");
  return core::QueryPlan::Bandwidth(pj.at("k").AsInt(), std::move(bw),
                                    pc != nullptr && pc->is_bool() &&
                                        pc->boolean());
}

// --------------------------------------------------------------------------

void WriteVectorFile(const std::string& dir, const std::string& name,
                     const Json& doc) {
  // Self-check before anything touches disk: the generator replays every
  // case it produced through the live harness.
  ReplayStats stats;
  const std::string tmp = doc.Dump(2) + "\n";
  auto parsed = Json::Parse(tmp);
  if (!parsed.ok()) Die(name + ": generated JSON does not re-parse");
  const std::string path = dir + "/" + name;
  if (const Status st = WriteFile(path, tmp); !st.ok()) Die(st.ToString());
  if (const Status st = ReplayVectorFile(path, &stats); !st.ok()) {
    Die("self-replay failed: " + st.ToString());
  }
  std::printf("wrote %-28s %3d cases\n", name.c_str(), stats.cases);
}

int Main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "spec/test-vectors";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) Die("cannot create " + dir + ": " + ec.message());

  WriteVectorFile(dir, "plan_wire_v0.json", PlanWireV0File());
  WriteVectorFile(dir, "plan_wire_v1.json", PlanWireV1File());
  WriteVectorFile(dir, "plan_wire_v2.json", PlanWireV2File());
  WriteVectorFile(dir, "plan_wire_errors.json", PlanWireErrorFile());
  WriteVectorFile(dir, "lp_optima.json", LpFile());
  WriteVectorFile(dir, "superplan_merge.json", SuperplanFile());
  WriteVectorFile(dir, "fault_schedules.json", FaultScheduleFile());

  ReplayStats total;
  if (const Status st = ReplayCorpus(dir, &total); !st.ok()) {
    Die("final corpus replay failed: " + st.ToString());
  }
  std::printf("corpus ok: %d files, %d cases\n", total.files, total.cases);
  return 0;
}

}  // namespace
}  // namespace testvec
}  // namespace prospector

int main(int argc, char** argv) {
  return prospector::testvec::Main(argc, argv);
}
