#include "src/testvec/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prospector {
namespace testvec {
namespace {

/// Recursive-descent parser over a raw character range. Depth-limited so a
/// hostile vector file cannot blow the stack.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  Result<Json> ParseDocument() {
    Json v;
    PROSPECTOR_RETURN_IF_ERROR(ParseValue(&v, 0));
    SkipWhitespace();
    if (p_ != end_) return Err("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg + " at offset " +
                                   std::to_string(offset_));
  }

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Err(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  bool ConsumeLiteral(const char* lit) {
    const char* q = p_;
    size_t n = 0;
    while (lit[n] != '\0') {
      if (q == end_ || *q != lit[n]) return false;
      ++q;
      ++n;
    }
    p_ = q;
    offset_ += n;
    return true;
  }

  Status ParseValue(Json* out, int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (p_ == end_) return Err("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        std::string s;
        PROSPECTOR_RETURN_IF_ERROR(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeLiteral("true")) {
          *out = Json(true);
          return Status::OK();
        }
        return Err("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          *out = Json(false);
          return Status::OK();
        }
        return Err("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          *out = Json();
          return Status::OK();
        }
        return Err("bad literal");
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(Json* out, int depth) {
    PROSPECTOR_RETURN_IF_ERROR(Expect('{'));
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      PROSPECTOR_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      PROSPECTOR_RETURN_IF_ERROR(Expect(':'));
      Json value;
      PROSPECTOR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray(Json* out, int depth) {
    PROSPECTOR_RETURN_IF_ERROR(Expect('['));
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      Json value;
      PROSPECTOR_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Status ParseString(std::string* out) {
    PROSPECTOR_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (p_ != end_) {
      const unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        Advance();
        return Status::OK();
      }
      if (c == '\\') {
        Advance();
        if (p_ == end_) break;
        const char esc = *p_;
        Advance();
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              if (p_ == end_) return Err("truncated \\u escape");
              const char h = *p_;
              Advance();
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= h - '0';
              else if (h >= 'a' && h <= 'f') cp |= h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') cp |= h - 'A' + 10;
              else return Err("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by the corpus; reject rather than mis-encode).
            if (cp >= 0xD800 && cp <= 0xDFFF) {
              return Err("surrogate \\u escapes unsupported");
            }
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return Err("unknown escape");
        }
        continue;
      }
      if (c < 0x20) return Err("unescaped control character in string");
      out->push_back(static_cast<char>(c));
      Advance();
    }
    return Err("unterminated string");
  }

  Status ParseNumber(Json* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
    // Strict JSON: no leading zeros ("01") — the corpus generator never
    // emits them, so accepting them would break dump/parse fixpointing.
    if (p_ + 1 < end_ && p_[0] == '0' && p_[1] >= '0' && p_[1] <= '9') {
      return Err("leading zero in number");
    }
    bool digits = false;
    auto eat_digits = [&] {
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
        Advance();
        digits = true;
      }
    };
    eat_digits();
    if (p_ != end_ && *p_ == '.') {
      Advance();
      digits = false;  // strict JSON: the fraction needs its own digits
      eat_digits();
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
      eat_digits();
    }
    if (!digits) return Err("bad number");
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(start, p_, value);
    if (ec != std::errc() || ptr != p_) return Err("unparseable number");
    *out = Json(value);
    return Status::OK();
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(raw);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  // Integers in the double-exact range print without a fraction — the
  // common case for the corpus (ids, counts, byte values).
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  // Shortest round-trip form for everything else.
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general);
  if (ec == std::errc()) {
    out->append(buf, ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    *out += buf;
  }
}

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<size_t>(indent) * depth, ' ')
             : std::string();
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: AppendNumber(out, number_); break;
    case Type::kString: AppendEscaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          *out += pad;
        }
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        *out += close_pad;
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (pretty) {
          out->push_back('\n');
          *out += pad;
        }
        AppendEscaped(out, members_[i].first);
        *out += pretty ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (pretty) {
        out->push_back('\n');
        *out += close_pad;
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

}  // namespace testvec
}  // namespace prospector
