#ifndef PROSPECTOR_TESTVEC_TESTVEC_H_
#define PROSPECTOR_TESTVEC_TESTVEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/testvec/json.h"
#include "src/util/status.h"

namespace prospector {
namespace testvec {

/// Helpers shared by the golden-vector corpus (spec/test-vectors/): hex
/// spelling for wire blobs, vector-file IO, and corpus discovery. The
/// corpus follows the EK-KOR2 pattern: checked-in JSON vectors are the
/// single source of truth — when an implementation and a vector disagree,
/// the vector wins until the format is deliberately revised (regenerate
/// with testvec_gen and review the diff).

/// Lower-case hex, two digits per byte, no separators ("0107ff").
std::string BytesToHex(const std::vector<uint8_t>& bytes);

/// Inverse of BytesToHex; rejects odd lengths and non-hex digits.
Result<std::vector<uint8_t>> HexToBytes(const std::string& hex);

/// Whole-file IO (binary-faithful).
Result<std::string> ReadFile(const std::string& path);
Status WriteFile(const std::string& path, const std::string& content);

/// Sorted absolute paths of every *.json under `dir` (non-recursive).
/// NotFound when the directory does not exist or holds no vectors — a
/// missing corpus must fail loudly, not replay zero cases "successfully".
Result<std::vector<std::string>> ListVectorFiles(const std::string& dir);

/// Loads and parses one vector file; checks the envelope: an object with
/// a string "module" and an array "cases" of objects that each carry a
/// string "name" and "kind".
Result<Json> LoadVectorFile(const std::string& path);

/// The directory the replay harness should use: the PROSPECTOR_SPEC_DIR
/// environment variable when set, otherwise `compiled_default` (tests
/// pass their build-time spec path).
std::string SpecDirOrDefault(const std::string& compiled_default);

}  // namespace testvec
}  // namespace prospector

#endif  // PROSPECTOR_TESTVEC_TESTVEC_H_
