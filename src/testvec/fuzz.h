#ifndef PROSPECTOR_TESTVEC_FUZZ_H_
#define PROSPECTOR_TESTVEC_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace prospector {
namespace testvec {

/// Deterministic corpus-driven fuzzer for core::DecodeSubplan. Every
/// stochastic choice draws from an explicitly-seeded Rng, so a CI failure
/// reproduces locally from (seed, iteration) alone — and the failing
/// input itself is returned for checking into spec/test-vectors/ as a
/// permanent regression vector.
///
/// The oracle (`CheckDecodeOneInput`) enforces the decoder's contract on
/// arbitrary bytes:
///   - decode never crashes, hangs, or trips a sanitizer;
///   - an accepted input re-encodes byte-identically (the canonical-form
///     bijection golden vectors rely on);
///   - every decoded field is within the wire format's declared range.
/// Rejected inputs are fine — that is the decoder doing its job.
Status CheckDecodeOneInput(const std::vector<uint8_t>& bytes);

/// Round-trip oracle for the other direction: a subplan that encodes must
/// decode back to itself. Used with generated-valid-subplan strategies.
Status CheckEncodeRoundTrip(const std::vector<uint8_t>& encoded);

struct FuzzOptions {
  uint64_t seed = 0x5eed;
  /// Randomized-mutation budget, on top of the deterministic sweep.
  uint64_t iterations = 100000;
  /// Longest random input the generator produces.
  size_t max_input_bytes = 512;
};

struct FuzzReport {
  /// Oracle invocations actually performed (deterministic sweep included).
  uint64_t iterations = 0;
  uint64_t accepted = 0;  ///< inputs the decoder accepted
  uint64_t rejected = 0;  ///< inputs the decoder rejected (expected)
  bool ok = true;
  /// First failing input and what went wrong (empty when ok).
  std::vector<uint8_t> failing_input;
  std::string message;
};

/// Runs the fuzzer: first a deterministic exhaustive sweep over every
/// corpus entry (truncation at every byte offset, every single-bit flip,
/// version-byte skew across all 8 tag values, hostile count bytes,
/// appended trailing bytes), then `options.iterations` seeded random
/// mutations (random buffers, splices of corpus entries, insertions/
/// deletions, and valid-subplan round trips). Stops at the first failure.
FuzzReport FuzzDecodeSubplan(const std::vector<std::vector<uint8_t>>& corpus,
                             const FuzzOptions& options);

/// Extracts every wire blob from the plan_wire/superplan vector files in
/// `spec_dir` (roundtrip wire_hex, decode_error wire_hex, and merge-case
/// node subplans) to seed the fuzzer with real protocol shapes.
Result<std::vector<std::vector<uint8_t>>> LoadWireCorpus(
    const std::string& spec_dir);

}  // namespace testvec
}  // namespace prospector

#endif  // PROSPECTOR_TESTVEC_FUZZ_H_
