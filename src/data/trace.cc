#include "src/data/trace.h"

#include <fstream>
#include <sstream>

namespace prospector {
namespace data {

Status Trace::AddEpoch(std::vector<double> values) {
  if (static_cast<int>(values.size()) != num_nodes_) {
    return Status::InvalidArgument(
        "epoch has " + std::to_string(values.size()) + " values, expected " +
        std::to_string(num_nodes_));
  }
  epochs_.push_back(std::move(values));
  return Status::OK();
}

int Trace::CountMissing() const {
  int count = 0;
  for (const auto& e : epochs_) {
    for (double v : e) {
      if (IsMissing(v)) ++count;
    }
  }
  return count;
}

void Trace::ImputeMissing() {
  const int T = num_epochs();
  for (int i = 0; i < num_nodes_; ++i) {
    // Impute from originally-present readings only, so a run of missing
    // epochs gets the average across the whole gap rather than a chain of
    // already-imputed values.
    std::vector<char> was_missing(T);
    for (int t = 0; t < T; ++t) was_missing[t] = IsMissing(epochs_[t][i]);
    for (int t = 0; t < T; ++t) {
      if (!was_missing[t]) continue;
      // Nearest present reading before and after t.
      int prev = t - 1;
      while (prev >= 0 && was_missing[prev]) --prev;
      int next = t + 1;
      while (next < T && was_missing[next]) ++next;
      const bool has_prev = prev >= 0;
      const bool has_next = next < T;
      if (has_prev && has_next) {
        epochs_[t][i] = 0.5 * (epochs_[prev][i] + epochs_[next][i]);
      } else if (has_prev) {
        epochs_[t][i] = epochs_[prev][i];
      } else if (has_next) {
        epochs_[t][i] = epochs_[next][i];
      } else {
        epochs_[t][i] = 0.0;
      }
    }
  }
}

Trace Trace::Slice(int begin, int end) const {
  Trace out(num_nodes_);
  for (int t = std::max(begin, 0); t < std::min(end, num_epochs()); ++t) {
    out.epochs_.push_back(epochs_[t]);
  }
  return out;
}

Status Trace::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.precision(10);
  for (const auto& e : epochs_) {
    for (int i = 0; i < num_nodes_; ++i) {
      if (i > 0) out << ',';
      if (IsMissing(e[i])) {
        out << "nan";
      } else {
        out << e[i];
      }
    }
    out << '\n';
  }
  return out.good() ? Status::OK() : Status::Internal("write failed: " + path);
}

Result<Trace> Trace::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  Trace t;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      if (cell == "nan") {
        row.push_back(std::nan(""));
      } else {
        try {
          row.push_back(std::stod(cell));
        } catch (...) {
          return Status::InvalidArgument("bad cell '" + cell + "' in " + path);
        }
      }
    }
    if (t.num_nodes_ == 0) t.num_nodes_ = static_cast<int>(row.size());
    if (static_cast<int>(row.size()) != t.num_nodes_) {
      return Status::InvalidArgument("ragged rows in " + path);
    }
    t.epochs_.push_back(std::move(row));
  }
  return t;
}

}  // namespace data
}  // namespace prospector
