#include "src/data/gaussian_field.h"

#include <cmath>

namespace prospector {
namespace data {

double InverseNormalCdf(double p) {
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  if (p <= 0.0) return -1e308;
  if (p >= 1.0) return 1e308;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

GaussianField GaussianField::Random(int num_nodes, double mean_lo,
                                    double mean_hi, double var_lo,
                                    double var_hi, Rng* rng) {
  std::vector<double> means(num_nodes), stddevs(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    means[i] = rng->Uniform(mean_lo, mean_hi);
    stddevs[i] = std::sqrt(rng->Uniform(var_lo, var_hi));
  }
  return GaussianField(std::move(means), std::move(stddevs));
}

GaussianField GaussianField::RandomWithVariance(int num_nodes, double mean_lo,
                                                double mean_hi, double variance,
                                                Rng* rng) {
  std::vector<double> means(num_nodes), stddevs(num_nodes);
  const double sd = std::sqrt(variance);
  for (int i = 0; i < num_nodes; ++i) {
    means[i] = rng->Uniform(mean_lo, mean_hi);
    stddevs[i] = sd;
  }
  return GaussianField(std::move(means), std::move(stddevs));
}

std::vector<double> GaussianField::Sample(Rng* rng) const {
  std::vector<double> v(means_.size());
  for (size_t i = 0; i < means_.size(); ++i) {
    v[i] = rng->Gaussian(means_[i], stddevs_[i]);
  }
  return v;
}

std::vector<std::vector<double>> GaussianField::SampleMany(int count,
                                                           Rng* rng) const {
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (int s = 0; s < count; ++s) out.push_back(Sample(rng));
  return out;
}

}  // namespace data
}  // namespace prospector
