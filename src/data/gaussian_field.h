#ifndef PROSPECTOR_DATA_GAUSSIAN_FIELD_H_
#define PROSPECTOR_DATA_GAUSSIAN_FIELD_H_

#include <vector>

#include "src/util/rng.h"

namespace prospector {
namespace data {

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Used to pick zone variances such that
/// P(X > threshold) equals a prescribed probability.
double InverseNormalCdf(double p);

/// A product of independent per-node Gaussians — the synthetic-data model
/// of Section 5 ("sensor values are drawn from independent normal
/// distributions whose means and variances are chosen randomly from small
/// ranges").
class GaussianField {
 public:
  GaussianField() = default;
  GaussianField(std::vector<double> means, std::vector<double> stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}

  /// Random means in [mean_lo, mean_hi], random variances in
  /// [var_lo, var_hi] (Fig 3 setup).
  static GaussianField Random(int num_nodes, double mean_lo, double mean_hi,
                              double var_lo, double var_hi, Rng* rng);

  /// Random means, one shared variance (the Fig 4 sweep).
  static GaussianField RandomWithVariance(int num_nodes, double mean_lo,
                                          double mean_hi, double variance,
                                          Rng* rng);

  int num_nodes() const { return static_cast<int>(means_.size()); }
  double mean(int i) const { return means_[i]; }
  double stddev(int i) const { return stddevs_[i]; }
  void set_node(int i, double mean, double stddev) {
    means_[i] = mean;
    stddevs_[i] = stddev;
  }

  /// One network-wide reading vector.
  std::vector<double> Sample(Rng* rng) const;

  /// `count` independent reading vectors.
  std::vector<std::vector<double>> SampleMany(int count, Rng* rng) const;

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace data
}  // namespace prospector

#endif  // PROSPECTOR_DATA_GAUSSIAN_FIELD_H_
