#ifndef PROSPECTOR_DATA_LAB_TRACE_H_
#define PROSPECTOR_DATA_LAB_TRACE_H_

#include <vector>

#include "src/data/trace.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace prospector {
namespace data {

/// Synthetic stand-in for the Intel Berkeley Research Lab temperature
/// dataset used in Figure 9 (the real trace is not available offline; see
/// DESIGN.md for the substitution rationale).
///
/// 54 motes on a lab-sized floor plan measure temperature composed of:
/// a building baseline, a diurnal sinusoid, a *static per-location offset*
/// (a few persistently warm spots near equipment/windows — this is what
/// makes the real data's top-k locations predictable, the property Figure 9
/// exercises), spatially correlated slow noise (latent AR(1) "blobs"
/// blended by distance), and white measurement noise. A small fraction of
/// readings is dropped (NaN), mirroring the real dataset's missing epochs.
struct LabTraceOptions {
  int num_motes = 54;
  int num_epochs = 300;
  double width = 40.0;                   ///< meters
  double height = 30.0;                  ///< meters
  double radio_range = 6.0;              ///< the paper shortens range to force hierarchy
  double base_temp_c = 19.0;
  double diurnal_amplitude_c = 1.5;
  int diurnal_period_epochs = 144;
  int num_hot_spots = 6;
  double hot_offset_lo_c = 2.0;
  double hot_offset_hi_c = 4.0;
  int num_latent_blobs = 4;              ///< spatial correlation structure
  double blob_length_scale = 10.0;       ///< meters
  double blob_stddev_c = 0.4;
  double blob_ar_coefficient = 0.9;
  double measurement_noise_c = 0.15;
  double missing_probability = 0.03;
};

/// A built lab scenario: the (hierarchical) spanning tree, the raw trace
/// with missing values, and which motes carry a hot-spot offset.
struct LabScenario {
  net::Topology topology;
  Trace trace;
  std::vector<int> hot_motes;
};

/// Builds the scenario; retries mote placements until the shortened radio
/// range still yields a connected network.
Result<LabScenario> BuildLabScenario(const LabTraceOptions& options, Rng* rng,
                                     int max_tries = 200);

}  // namespace data
}  // namespace prospector

#endif  // PROSPECTOR_DATA_LAB_TRACE_H_
