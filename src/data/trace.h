#ifndef PROSPECTOR_DATA_TRACE_H_
#define PROSPECTOR_DATA_TRACE_H_

#include <cmath>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace prospector {
namespace data {

/// A time-series of network-wide readings: `epoch(t)[i]` is the value of
/// node i at epoch t. Missing readings (dropped radio packets in real
/// deployments) are NaN until imputed.
class Trace {
 public:
  Trace() = default;
  explicit Trace(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const { return num_nodes_; }
  int num_epochs() const { return static_cast<int>(epochs_.size()); }

  /// Appends one epoch; must have exactly num_nodes values.
  Status AddEpoch(std::vector<double> values);

  const std::vector<double>& epoch(int t) const { return epochs_[t]; }
  double value(int t, int node) const { return epochs_[t][node]; }
  void set_value(int t, int node, double v) { epochs_[t][node] = v; }

  static bool IsMissing(double v) { return std::isnan(v); }
  int CountMissing() const;

  /// Fills each missing value with the average of the node's readings at
  /// the prior and subsequent epochs — exactly the imputation the paper
  /// applies to the Intel Lab data. Runs of missing values use the nearest
  /// present neighbors; a node missing in every epoch is set to 0.
  void ImputeMissing();

  /// Returns the sub-trace of epochs [begin, end).
  Trace Slice(int begin, int end) const;

  /// CSV round-trip: one row per epoch, "nan" for missing values.
  Status SaveCsv(const std::string& path) const;
  static Result<Trace> LoadCsv(const std::string& path);

 private:
  int num_nodes_ = 0;
  std::vector<std::vector<double>> epochs_;
};

}  // namespace data
}  // namespace prospector

#endif  // PROSPECTOR_DATA_TRACE_H_
