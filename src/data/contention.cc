#include "src/data/contention.h"

#include <cmath>
#include <deque>

namespace prospector {
namespace data {
namespace {

constexpr double kPi = 3.14159265358979323846;

// BFS min-hop tree over the radio graph of `pos`; empty result on
// disconnection. (Same construction as net::BuildGeometricNetwork, but we
// control placement here, so the BFS is repeated locally.)
std::vector<int> MinHopParents(const std::vector<net::Point>& pos,
                               double range) {
  const int n = static_cast<int>(pos.size());
  std::vector<int> parents(n, net::Topology::kNoParent);
  std::vector<bool> seen(n, false);
  seen[0] = true;
  std::deque<int> queue{0};
  int reached = 1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v = 1; v < n; ++v) {
      if (seen[v]) continue;
      if (net::Distance(pos[u], pos[v]) <= range) {
        seen[v] = true;
        parents[v] = u;
        queue.push_back(v);
        ++reached;
      }
    }
  }
  if (reached != n) return {};
  return parents;
}

}  // namespace

Result<ContentionScenario> BuildContentionScenario(
    const ContentionZoneOptions& options, Rng* rng, int max_tries) {
  if (options.num_zones <= 0 || options.nodes_per_zone <= 0) {
    return Status::InvalidArgument("need at least one zone with nodes");
  }
  const int n =
      1 + options.num_zones * options.nodes_per_zone + options.num_background;
  const double half = options.field_size / 2.0;
  const double ring_radius = half - options.zone_radius;
  const double p = options.exceed_probability > 0
                       ? options.exceed_probability
                       : 1.0 / options.num_zones;
  // sigma such that P(N(mean-offset, sigma^2) > mean) = p.
  const double quantile = InverseNormalCdf(1.0 - p);
  if (quantile <= 0) {
    return Status::InvalidArgument(
        "exceed_probability must be < 0.5 so zone means stay below the "
        "background mean");
  }
  const double zone_sigma = options.zone_mean_offset / quantile;
  const double zone_mean = options.background_mean - options.zone_mean_offset;

  for (int attempt = 0; attempt < max_tries; ++attempt) {
    std::vector<net::Point> pos(n);
    std::vector<int> zone_of(n, -1);
    pos[0] = {half, half};  // root at the center (Figure 6)
    int id = 1;
    for (int z = 0; z < options.num_zones; ++z) {
      const double angle = 2.0 * kPi * z / options.num_zones;
      const net::Point center{half + ring_radius * std::cos(angle),
                              half + ring_radius * std::sin(angle)};
      for (int j = 0; j < options.nodes_per_zone; ++j, ++id) {
        const double r = options.zone_radius * std::sqrt(rng->NextDouble());
        const double a = rng->Uniform(0.0, 2.0 * kPi);
        pos[id] = {center.x + r * std::cos(a), center.y + r * std::sin(a)};
        zone_of[id] = z;
      }
    }
    for (; id < n; ++id) {
      pos[id] = {rng->Uniform(0.0, options.field_size),
                 rng->Uniform(0.0, options.field_size)};
    }

    std::vector<int> parents = MinHopParents(pos, options.radio_range);
    if (parents.empty()) continue;  // disconnected; retry placement
    auto topo = net::Topology::FromParents(std::move(parents));
    if (!topo.ok()) return topo.status();
    topo.value().set_positions(std::move(pos));

    std::vector<double> means(n), stddevs(n);
    for (int i = 0; i < n; ++i) {
      if (zone_of[i] >= 0) {
        means[i] = zone_mean;
        stddevs[i] = zone_sigma;
      } else {
        means[i] = options.background_mean;
        stddevs[i] = options.background_stddev;
      }
    }
    return ContentionScenario{std::move(topo.value()),
                              GaussianField(std::move(means), std::move(stddevs)),
                              std::move(zone_of)};
  }
  return Status::FailedPrecondition(
      "no connected contention placement found; increase radio_range");
}

}  // namespace data
}  // namespace prospector
