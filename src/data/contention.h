#ifndef PROSPECTOR_DATA_CONTENTION_H_
#define PROSPECTOR_DATA_CONTENTION_H_

#include <vector>

#include "src/data/gaussian_field.h"
#include "src/net/topology.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace prospector {
namespace data {

/// The "contention zone" workload of Section 5 (Figures 5–7), modeling the
/// negative correlation of the ornithology example: Z zones spaced evenly
/// around the perimeter of the field with the query root at the center.
/// Each zone contains `nodes_per_zone` sensors. Background nodes have a
/// fixed mean and low variance; zone nodes have a lower mean but a variance
/// chosen such that each exceeds the background mean with probability
/// `exceed_probability` (default 1/Z), so the expected number of zone nodes
/// above the background is exactly k = nodes_per_zone.
struct ContentionZoneOptions {
  int num_zones = 6;
  int nodes_per_zone = 10;       ///< the paper sets this to k
  int num_background = 40;       ///< relay/background nodes
  double field_size = 100.0;     ///< square field edge, meters
  double radio_range = 20.0;
  double zone_radius = 6.0;      ///< zone nodes cluster within this disc
  double background_mean = 50.0;
  double background_stddev = 1.0;
  double zone_mean_offset = 10.0;  ///< zone mean = background_mean - offset
  /// P(zone node > background_mean); <= 0 means "use 1/num_zones".
  double exceed_probability = -1.0;
};

/// A built scenario: the tree, the value distribution, and which zone each
/// node belongs to (-1 for background nodes and the root).
struct ContentionScenario {
  net::Topology topology;
  GaussianField field;
  std::vector<int> zone_of_node;
};

/// Builds the scenario, retrying placements until the radio graph is
/// connected. Node ids: 0 = root, then zone nodes (zone-major), then
/// background nodes.
Result<ContentionScenario> BuildContentionScenario(
    const ContentionZoneOptions& options, Rng* rng, int max_tries = 100);

}  // namespace data
}  // namespace prospector

#endif  // PROSPECTOR_DATA_CONTENTION_H_
