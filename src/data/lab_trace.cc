#include "src/data/lab_trace.h"

#include <cmath>

namespace prospector {
namespace data {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Result<LabScenario> BuildLabScenario(const LabTraceOptions& options, Rng* rng,
                                     int max_tries) {
  net::GeometricNetworkOptions geo;
  geo.num_nodes = options.num_motes;
  geo.width = options.width;
  geo.height = options.height;
  geo.radio_range = options.radio_range;
  geo.root_at_center = false;  // base station in a corner, like the lab's

  auto topo = net::BuildConnectedGeometricNetwork(geo, rng, max_tries);
  if (!topo.ok()) return topo.status();
  const std::vector<net::Point>& pos = topo.value().positions();
  const int n = options.num_motes;

  // Persistently warm locations: distinct motes with a static offset.
  std::vector<double> hot_offset(n, 0.0);
  std::vector<int> hot;
  {
    std::vector<int> ids;
    for (int i = 1; i < n; ++i) ids.push_back(i);
    rng->Shuffle(&ids);
    const int h = std::min<int>(options.num_hot_spots, n - 1);
    for (int j = 0; j < h; ++j) {
      hot.push_back(ids[j]);
      hot_offset[ids[j]] =
          rng->Uniform(options.hot_offset_lo_c, options.hot_offset_hi_c);
    }
  }

  // Latent spatial blobs: AR(1) processes blended by Gaussian kernels.
  const int B = options.num_latent_blobs;
  std::vector<net::Point> blob_center(B);
  for (int b = 0; b < B; ++b) {
    blob_center[b] = {rng->Uniform(0.0, options.width),
                      rng->Uniform(0.0, options.height)};
  }
  std::vector<std::vector<double>> blob_weight(n, std::vector<double>(B));
  for (int i = 0; i < n; ++i) {
    for (int b = 0; b < B; ++b) {
      const double d = net::Distance(pos[i], blob_center[b]);
      blob_weight[i][b] = std::exp(
          -d * d / (2.0 * options.blob_length_scale * options.blob_length_scale));
    }
  }

  std::vector<double> blob_state(B, 0.0);
  const double rho = options.blob_ar_coefficient;
  const double innovation = options.blob_stddev_c * std::sqrt(1.0 - rho * rho);

  Trace trace(n);
  for (int t = 0; t < options.num_epochs; ++t) {
    for (int b = 0; b < B; ++b) {
      blob_state[b] = rho * blob_state[b] + rng->Gaussian(0.0, innovation);
    }
    const double diurnal =
        options.diurnal_amplitude_c *
        std::sin(2.0 * kPi * t / options.diurnal_period_epochs);
    std::vector<double> epoch(n);
    for (int i = 0; i < n; ++i) {
      double v = options.base_temp_c + diurnal + hot_offset[i];
      for (int b = 0; b < B; ++b) v += blob_weight[i][b] * blob_state[b];
      v += rng->Gaussian(0.0, options.measurement_noise_c);
      if (rng->Bernoulli(options.missing_probability)) v = std::nan("");
      epoch[i] = v;
    }
    Status st = trace.AddEpoch(std::move(epoch));
    if (!st.ok()) return st;
  }

  return LabScenario{std::move(topo.value()), std::move(trace), std::move(hot)};
}

}  // namespace data
}  // namespace prospector
