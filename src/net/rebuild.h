#ifndef PROSPECTOR_NET_REBUILD_H_
#define PROSPECTOR_NET_REBUILD_H_

#include <vector>

#include "src/net/topology.h"
#include "src/util/status.h"

namespace prospector {
namespace net {

/// Outcome of excluding permanently failed nodes (Section 4.4: "If a node
/// is non-functioning for an extended period of time, the tree adjusts to
/// exclude the node. The plan is then re-optimized based on the new
/// topology.").
struct RebuiltTopology {
  Topology topology;
  /// old node id -> new node id; dead or newly-unreachable nodes map to -1.
  std::vector<int> new_id;
  /// Nodes that survived but lost radio connectivity to the root when the
  /// dead nodes disappeared (they are excluded too).
  std::vector<int> orphaned;
};

/// Rebuilds the minimum-hop spanning tree over the surviving nodes' radio
/// graph. Requires a geometric topology (positions) so connectivity can be
/// re-derived; the root — `topology.root()`, wherever it sits — must not
/// be among the dead. The rebuilt tree's root is `new_id[topology.root()]`.
Result<RebuiltTopology> RebuildWithoutNodes(const Topology& topology,
                                            const std::vector<int>& dead_nodes,
                                            double radio_range);

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_REBUILD_H_
