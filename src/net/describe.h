#ifndef PROSPECTOR_NET_DESCRIBE_H_
#define PROSPECTOR_NET_DESCRIBE_H_

#include <functional>
#include <string>

#include "src/net/topology.h"

namespace prospector {
namespace net {

/// ASCII rendering of the spanning tree, one node per line:
///
///   0 (root)
///   +- 3 [d=1, sub=4]
///   |  +- 5 [d=2, sub=1]
///   ...
///
/// Handy in examples and for debugging planner output; annotate holds an
/// optional per-node suffix (e.g. a plan's bandwidths).
std::string DescribeTopology(
    const Topology& topology,
    const std::function<std::string(int)>& annotate = nullptr);

/// One-line structural summary: node count, height, leaf count, max fanout.
std::string SummarizeTopology(const Topology& topology);

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_DESCRIBE_H_
