#include "src/net/rebuild.h"

#include <algorithm>
#include <deque>

namespace prospector {
namespace net {

Result<RebuiltTopology> RebuildWithoutNodes(const Topology& topology,
                                            const std::vector<int>& dead_nodes,
                                            double radio_range) {
  const int n = topology.num_nodes();
  if (topology.positions().empty()) {
    return Status::FailedPrecondition(
        "rebuild needs a geometric topology (node positions)");
  }
  std::vector<char> dead(n, 0);
  for (int d : dead_nodes) {
    if (d < 0 || d >= n) {
      return Status::InvalidArgument("dead node id out of range: " +
                                     std::to_string(d));
    }
    if (d == topology.root()) {
      return Status::InvalidArgument("the root (base station) cannot die");
    }
    dead[d] = 1;
  }
  const std::vector<Point>& pos = topology.positions();

  // BFS over surviving nodes' radio graph, from the actual root (which is
  // not necessarily node 0 — Topology supports arbitrary root ids).
  const int root = topology.root();
  std::vector<int> old_parent(n, Topology::kNoParent);
  std::vector<int> depth(n, -1);
  depth[root] = 0;
  std::deque<int> queue{root};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v = 0; v < n; ++v) {
      if (dead[v] || depth[v] >= 0) continue;
      if (Distance(pos[u], pos[v]) <= radio_range) {
        depth[v] = depth[u] + 1;
        old_parent[v] = u;
        queue.push_back(v);
      }
    }
  }

  RebuiltTopology out;
  out.new_id.assign(n, -1);
  int next = 0;
  for (int i = 0; i < n; ++i) {
    if (depth[i] >= 0) {
      out.new_id[i] = next++;
    } else if (!dead[i]) {
      out.orphaned.push_back(i);
    }
  }

  std::vector<int> parents(next, Topology::kNoParent);
  std::vector<Point> new_pos(next);
  for (int i = 0; i < n; ++i) {
    if (out.new_id[i] < 0) continue;
    new_pos[out.new_id[i]] = pos[i];
    if (i != root) parents[out.new_id[i]] = out.new_id[old_parent[i]];
  }
  auto topo = Topology::FromParents(std::move(parents));
  if (!topo.ok()) return topo.status();
  topo.value().set_positions(std::move(new_pos));
  out.topology = std::move(topo.value());
  return out;
}

}  // namespace net
}  // namespace prospector
