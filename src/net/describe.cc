#include "src/net/describe.h"

#include <algorithm>
#include <sstream>

namespace prospector {
namespace net {
namespace {

void RenderSubtree(const Topology& topo, int node, const std::string& prefix,
                   bool last,
                   const std::function<std::string(int)>& annotate,
                   std::ostringstream* os) {
  *os << prefix;
  if (node != topo.root()) *os << (last ? "`- " : "+- ");
  *os << node;
  if (node == topo.root()) {
    *os << " (root)";
  } else {
    *os << " [d=" << topo.depth(node) << ", sub=" << topo.subtree_size(node)
        << "]";
  }
  if (annotate) {
    const std::string extra = annotate(node);
    if (!extra.empty()) *os << "  " << extra;
  }
  *os << "\n";
  const std::string child_prefix =
      node == topo.root() ? prefix : prefix + (last ? "   " : "|  ");
  const auto& kids = topo.children(node);
  for (size_t i = 0; i < kids.size(); ++i) {
    RenderSubtree(topo, kids[i], child_prefix, i + 1 == kids.size(), annotate,
                  os);
  }
}

}  // namespace

std::string DescribeTopology(
    const Topology& topology,
    const std::function<std::string(int)>& annotate) {
  std::ostringstream os;
  RenderSubtree(topology, topology.root(), "", true, annotate, &os);
  return os.str();
}

std::string SummarizeTopology(const Topology& topology) {
  int leaves = 0, max_fanout = 0;
  for (int u = 0; u < topology.num_nodes(); ++u) {
    if (topology.is_leaf(u)) ++leaves;
    max_fanout =
        std::max(max_fanout, static_cast<int>(topology.children(u).size()));
  }
  std::ostringstream os;
  os << topology.num_nodes() << " nodes, height " << topology.height() << ", "
     << leaves << " leaves, max fanout " << max_fanout;
  return os.str();
}

}  // namespace net
}  // namespace prospector
