#ifndef PROSPECTOR_NET_SIMULATOR_H_
#define PROSPECTOR_NET_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/net/energy_model.h"
#include "src/net/failure.h"
#include "src/net/topology.h"
#include "src/util/rng.h"

namespace prospector {
namespace net {

/// Aggregate accounting of one or more simulated phases.
struct TransmissionStats {
  double total_energy_mj = 0.0;
  int unicast_messages = 0;
  int broadcast_messages = 0;
  int64_t values_transmitted = 0;
  int reroutes = 0;
  int acquisitions = 0;
  /// Energy attributed per node (sender side of each message).
  std::vector<double> per_node_energy_mj;

  void Accumulate(const TransmissionStats& other) {
    total_energy_mj += other.total_energy_mj;
    unicast_messages += other.unicast_messages;
    broadcast_messages += other.broadcast_messages;
    values_transmitted += other.values_transmitted;
    reroutes += other.reroutes;
    acquisitions += other.acquisitions;
    if (per_node_energy_mj.size() < other.per_node_energy_mj.size()) {
      per_node_energy_mj.resize(other.per_node_energy_mj.size(), 0.0);
    }
    for (size_t i = 0; i < other.per_node_energy_mj.size(); ++i) {
      per_node_energy_mj[i] += other.per_node_energy_mj[i];
    }
  }
};

/// Message-level simulator of the network's MAC layer, per Section 5:
/// only communication costs are modeled. Executors call Unicast/Broadcast
/// as their protocol sends messages; the simulator draws transient edge
/// failures, charges re-routing, and keeps the energy ledger.
class NetworkSimulator {
 public:
  NetworkSimulator(const Topology* topology, EnergyModel energy,
                   FailureModel failures = {}, uint64_t seed = 1)
      : topology_(topology),
        energy_(energy),
        failures_(failures),
        rng_(seed) {
    stats_.per_node_energy_mj.assign(topology->num_nodes(), 0.0);
  }

  const Topology& topology() const { return *topology_; }
  const EnergyModel& energy_model() const { return energy_; }
  const FailureModel& failure_model() const { return failures_; }

  /// Unicast along the tree edge owned by `child_edge`, in either
  /// direction (child->parent collection or parent->child request): the
  /// energy cost is symmetric. `num_values` readings plus `extra_bytes`
  /// protocol payload. Returns the charged energy.
  double Unicast(int child_edge, int num_values, int extra_bytes = 0) {
    double cost = energy_.MessageCostWithExtra(num_values, extra_bytes);
    if (failures_.enabled() &&
        rng_.Bernoulli(failures_.ProbabilityFor(child_edge))) {
      cost *= failures_.reroute_cost_factor;
      ++stats_.reroutes;
    }
    stats_.total_energy_mj += cost;
    ++stats_.unicast_messages;
    stats_.values_transmitted += num_values;
    stats_.per_node_energy_mj[child_edge] += cost;
    return cost;
  }

  /// Empty-body broadcast by `node` (query trigger, Section 2). One
  /// per-message cost regardless of the number of listening children.
  double Broadcast(int node) { return BroadcastPayload(node, 0); }

  /// Broadcast carrying `extra_bytes` of payload (e.g. a mop-up request's
  /// count and range bounds).
  double BroadcastPayload(int node, int extra_bytes) {
    const double cost = energy_.BroadcastCost() +
                        energy_.per_byte_mj * static_cast<double>(extra_bytes);
    stats_.total_energy_mj += cost;
    ++stats_.broadcast_messages;
    stats_.per_node_energy_mj[node] += cost;
    return cost;
  }

  /// Charges one sensor measurement at `node` (Section 4.4); free when
  /// the energy model sets no acquisition cost.
  double ChargeAcquisition(int node) {
    const double cost = energy_.acquisition_mj;
    if (cost > 0.0) {
      stats_.total_energy_mj += cost;
      ++stats_.acquisitions;
      stats_.per_node_energy_mj[node] += cost;
    }
    return cost;
  }

  /// Expected cost of sending `num_values` readings along `child_edge`,
  /// failure inflation included — the figure planners use (Section 4.4:
  /// "increase the cost of each edge by the product of its failure
  /// probability and the extra cost incurred by re-routing").
  double ExpectedUnicastCost(int child_edge, int num_values) const {
    return energy_.MessageCost(num_values) *
           failures_.ExpectedCostFactor(child_edge);
  }

  const TransmissionStats& stats() const { return stats_; }

  /// Clears the ledger (e.g. between the distribution accounting and the
  /// collection phase, or between query epochs).
  void ResetStats() {
    stats_ = TransmissionStats{};
    stats_.per_node_energy_mj.assign(topology_->num_nodes(), 0.0);
  }

  /// Takes the current ledger and resets it — convenient for per-phase
  /// breakdowns.
  TransmissionStats TakeStats() {
    TransmissionStats out = stats_;
    ResetStats();
    return out;
  }

 private:
  const Topology* topology_;
  EnergyModel energy_;
  FailureModel failures_;
  Rng rng_;
  TransmissionStats stats_;
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_SIMULATOR_H_
