#ifndef PROSPECTOR_NET_SIMULATOR_H_
#define PROSPECTOR_NET_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/net/energy_model.h"
#include "src/net/failure.h"
#include "src/net/fault_injector.h"
#include "src/net/topology.h"
#include "src/obs/obs.h"
#include "src/util/rng.h"

namespace prospector {
namespace net {

/// Per-edge traffic ledger entry; the edge is named by its child endpoint
/// (every tree edge has exactly one). Unicast traffic only — broadcasts
/// have no single edge and are accounted node-side.
struct EdgeTraffic {
  int messages = 0;  ///< transmission attempts (lossy mode counts retries)
  int retries = 0;   ///< lossy mode: re-transmissions after the first try
  int drops = 0;     ///< messages abandoned (retry budget / dead endpoint)
  double energy_mj = 0.0;
};

/// Aggregate accounting of one or more simulated phases.
struct TransmissionStats {
  double total_energy_mj = 0.0;
  int unicast_messages = 0;
  int broadcast_messages = 0;
  int64_t values_transmitted = 0;  ///< readings on *delivered* messages
  int reroutes = 0;                ///< reliable mode: re-routed messages
  int retries = 0;                 ///< lossy mode: re-transmissions
  int drops = 0;                   ///< messages abandoned after the retry budget
  int64_t values_lost = 0;         ///< readings on dropped messages
  int acquisitions = 0;
  /// --- adversarial transport (tier 3) ---
  int duplicates = 0;  ///< extra delivered copies (retransmit after lost ACK)
  int corrupted = 0;   ///< delivered but mangled; also counted in `drops`
  int delayed = 0;     ///< deferred deliveries; values counted in values_lost
  /// Energy attributed per node (sender side of each message).
  std::vector<double> per_node_energy_mj;
  /// Message/retry/drop ledger per tree edge (indexed by child endpoint).
  std::vector<EdgeTraffic> per_edge;

  void Accumulate(const TransmissionStats& other) {
    total_energy_mj += other.total_energy_mj;
    unicast_messages += other.unicast_messages;
    broadcast_messages += other.broadcast_messages;
    values_transmitted += other.values_transmitted;
    reroutes += other.reroutes;
    retries += other.retries;
    drops += other.drops;
    values_lost += other.values_lost;
    acquisitions += other.acquisitions;
    duplicates += other.duplicates;
    corrupted += other.corrupted;
    delayed += other.delayed;
    if (per_node_energy_mj.size() < other.per_node_energy_mj.size()) {
      per_node_energy_mj.resize(other.per_node_energy_mj.size(), 0.0);
    }
    for (size_t i = 0; i < other.per_node_energy_mj.size(); ++i) {
      per_node_energy_mj[i] += other.per_node_energy_mj[i];
    }
    if (per_edge.size() < other.per_edge.size()) {
      per_edge.resize(other.per_edge.size());
    }
    for (size_t i = 0; i < other.per_edge.size(); ++i) {
      per_edge[i].messages += other.per_edge[i].messages;
      per_edge[i].retries += other.per_edge[i].retries;
      per_edge[i].drops += other.per_edge[i].drops;
      per_edge[i].energy_mj += other.per_edge[i].energy_mj;
    }
  }
};

/// Transport tier 2 (see DESIGN.md, "Failure semantics"): instead of the
/// paper's always-successful re-routing, a failed transmission is retried
/// up to `max_retries` times — each attempt paying more energy as the
/// backoff lengthens preambles — and then genuinely dropped.
struct LossyTransport {
  bool enabled = false;
  /// Re-transmissions after the first attempt before the message drops.
  int max_retries = 3;
  /// Attempt a (0-based) costs `base * pow(backoff_cost_growth, a)`.
  double backoff_cost_growth = 1.5;

  /// A lossy config must be meaningful, not silently repaired: a negative
  /// retry budget and a shrinking backoff are configuration errors, and
  /// clamping them in TryUnicast would hide the mistake inside a
  /// benchmark average. NetworkSimulator rejects them at set time with
  /// the same fail-loud path as FailureModel::Validate.
  Status Validate() const {
    if (!enabled) return Status::OK();
    if (max_retries < 0) {
      return Status::InvalidArgument(
          "LossyTransport.max_retries is negative: " +
          std::to_string(max_retries));
    }
    if (backoff_cost_growth < 1.0) {
      return Status::InvalidArgument(
          "LossyTransport.backoff_cost_growth < 1.0: " +
          std::to_string(backoff_cost_growth));
    }
    return Status::OK();
  }
};

/// Transport tier 3 (see DESIGN.md, "Failure semantics"): an adversarial
/// radio that not only loses messages but also *duplicates* them (a
/// retransmission after a lost ACK delivers extra copies), *corrupts*
/// payloads in flight, and *delays* deliveries into a later epoch. Rates
/// apply per delivered message on every edge; scripted FaultEvents
/// (kDuplicateEdge / kCorruptEdge / kDelayEdge) override them per edge.
/// Effects are drawn from a dedicated RNG stream, so enabling the
/// adversary never perturbs the loss/re-route draws of the base
/// simulation — and disabling it is bit-identical to the tier-2 world.
struct AdversarialTransport {
  bool enabled = false;
  /// Per delivered message: probability the receiver sees extra copies.
  double duplicate_prob = 0.0;
  /// Extra copies delivered when duplication fires (sender pays each).
  int duplicate_copies = 1;
  /// Per delivered message: probability the payload arrives mangled (the
  /// protocol layer must reject it like a drop).
  double corrupt_prob = 0.0;
  /// Per delivered message: probability delivery is deferred.
  double delay_prob = 0.0;
  /// Epochs a delayed message is deferred by.
  int delay_epochs = 1;

  /// Same fail-loud contract as FailureModel::Validate /
  /// LossyTransport::Validate: rates must be probabilities and the
  /// integer knobs at least 1.
  Status Validate() const {
    if (!enabled) return Status::OK();
    for (double p : {duplicate_prob, corrupt_prob, delay_prob}) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "AdversarialTransport probability out of [0, 1]: " +
            std::to_string(p));
      }
    }
    if (duplicate_copies < 1) {
      return Status::InvalidArgument(
          "AdversarialTransport.duplicate_copies < 1: " +
          std::to_string(duplicate_copies));
    }
    if (delay_epochs < 1) {
      return Status::InvalidArgument(
          "AdversarialTransport.delay_epochs < 1: " +
          std::to_string(delay_epochs));
    }
    return Status::OK();
  }
};

/// Outcome of one transmission attempt sequence.
struct DeliveryResult {
  bool delivered = true;
  double energy_mj = 0.0;
  int attempts = 1;
  /// How many copies the receiver sees (adversarial duplication): 1 for a
  /// normal delivery, 0 when dropped, corrupted, or delayed.
  int delivered_copies = 1;
  /// Delivered but mangled in flight: an intact protocol layer must
  /// reject the payload exactly like a drop.
  bool corrupted = false;
  /// >= 0: the message was transmitted (and charged) now but arrives at
  /// this simulator epoch — stale by construction, which is what the
  /// protocol layer's plan-epoch fencing exists to refuse.
  int delayed_until_epoch = -1;

  /// Did an intact payload arrive in this epoch? The condition every
  /// executor gates insertion on (false for drops, corruption, and
  /// deferred deliveries alike).
  bool arrived_now() const {
    return delivered && !corrupted && delayed_until_epoch < 0;
  }
};

/// Message-level simulator of the network's MAC layer, per Section 5:
/// only communication costs are modeled. Executors call Unicast/Broadcast
/// as their protocol sends messages; the simulator draws transient edge
/// failures, charges re-routing (or, in lossy mode, bounded retries and
/// real drops), consults the fault injector for dead nodes and cut edges,
/// applies the adversarial tier (duplication / corruption / delay), and
/// keeps the energy ledger.
class NetworkSimulator {
 public:
  NetworkSimulator(const Topology* topology, EnergyModel energy,
                   FailureModel failures = {}, uint64_t seed = 1)
      : topology_(topology),
        energy_(energy),
        failures_(failures),
        rng_(seed),
        adv_rng_(seed ^ 0xadec0de5a7e5eedULL) {
    const Status valid = failures_.Validate(topology->num_nodes());
    if (!valid.ok()) {
      // A misconfigured failure model used to degrade into a silently
      // failure-free tail; fail loudly at construction instead.
      std::fprintf(stderr, "NetworkSimulator: %s\n", valid.ToString().c_str());
      std::abort();
    }
    stats_.per_node_energy_mj.assign(topology->num_nodes(), 0.0);
    stats_.per_edge.assign(topology->num_nodes(), EdgeTraffic{});
  }

  const Topology& topology() const { return *topology_; }
  const EnergyModel& energy_model() const { return energy_; }
  const FailureModel& failure_model() const { return failures_; }

  /// Attaches a scripted fault timeline (not owned; may be nullptr). The
  /// owner advances the injector's clock; the simulator only consults it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  const FaultInjector* fault_injector() const { return injector_; }

  /// Installs the tier-2 lossy transport. Invalid configs abort, same
  /// fail-loud path as the FailureModel check in the constructor.
  void set_lossy_transport(LossyTransport lossy) {
    const Status valid = lossy.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "NetworkSimulator: %s\n", valid.ToString().c_str());
      std::abort();
    }
    lossy_ = lossy;
  }
  const LossyTransport& lossy_transport() const { return lossy_; }

  /// Installs the tier-3 adversarial transport. Invalid configs abort,
  /// same fail-loud path as the FailureModel check in the constructor.
  void set_adversarial_transport(AdversarialTransport adversarial) {
    const Status valid = adversarial.Validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "NetworkSimulator: %s\n", valid.ToString().c_str());
      std::abort();
    }
    adversarial_ = adversarial;
  }
  const AdversarialTransport& adversarial_transport() const {
    return adversarial_;
  }

  /// The simulator's epoch clock — what `delayed_until_epoch` is relative
  /// to. The owner advances it alongside the fault injector's clock.
  void set_epoch(int epoch) { epoch_ = epoch; }
  int epoch() const { return epoch_; }

  /// Bytes of fenced protocol header (plan-epoch stamp + sequence number)
  /// the owner's transport guard adds to every unicast. Folded into
  /// ExpectedUnicastCost so planners and sweep costing see the honest
  /// per-message price; 0 when fencing is off (the seed cost model).
  void set_fence_header_bytes(int bytes) { fence_header_bytes_ = bytes; }
  int fence_header_bytes() const { return fence_header_bytes_; }

  bool node_alive(int node) const {
    return injector_ == nullptr || injector_->node_alive(node);
  }
  /// Can a message cross the edge above `child_edge` at all? False when
  /// either endpoint is dead or the edge is partitioned away.
  bool edge_usable(int child_edge) const {
    if (injector_ == nullptr) return true;
    return injector_->node_alive(child_edge) &&
           injector_->node_alive(topology_->parent(child_edge)) &&
           !injector_->edge_cut(child_edge);
  }

  /// Unicast along the tree edge owned by `child_edge`, in either
  /// direction (child->parent collection or parent->child request): the
  /// energy cost is symmetric. `num_values` readings plus `extra_bytes`
  /// protocol payload.
  ///
  /// Reliable mode (lossy disabled): a drawn transient failure re-routes
  /// at `reroute_cost_factor` and the message always arrives — unless the
  /// edge is unusable (dead endpoint / partition), where no protocol can
  /// help: the sender pays one transmission and the message drops.
  ///
  /// Lossy mode: every attempt independently fails with the edge's
  /// failure probability (injector overrides included); after
  /// `max_retries` re-transmissions — each charged with backoff growth —
  /// the message is genuinely dropped.
  ///
  /// Adversarial mode (rates or scripted edge events): a delivered
  /// message may additionally arrive corrupted, arrive in a later epoch,
  /// or arrive in multiple copies (the sender charged per copy, as for
  /// retries). Effects are mutually exclusive with precedence
  /// corrupt > delay > duplicate, and their draws come from a dedicated
  /// RNG stream so the base loss draws are unperturbed.
  DeliveryResult TryUnicast(int child_edge, int num_values,
                            int extra_bytes = 0) {
    const double base = energy_.MessageCostWithExtra(num_values, extra_bytes);
    const bool usable = edge_usable(child_edge);
    DeliveryResult out;

    if (!lossy_.enabled) {
      out.energy_mj = base;
      if (usable && failures_.enabled() &&
          rng_.Bernoulli(EffectiveProbability(child_edge))) {
        out.energy_mj *= failures_.reroute_cost_factor;
        ++stats_.reroutes;
      }
      out.delivered = usable;
    } else {
      const int max_attempts = 1 + lossy_.max_retries;
      const double p = EffectiveProbability(child_edge);
      out.delivered = false;
      out.attempts = 0;
      double attempt_cost = base;
      for (int a = 0; a < max_attempts; ++a) {
        ++out.attempts;
        out.energy_mj += attempt_cost;
        attempt_cost *= lossy_.backoff_cost_growth;
        if (usable && !(p > 0.0 && rng_.Bernoulli(p))) {
          out.delivered = true;
          break;
        }
      }
      stats_.retries += out.attempts - 1;
    }

    int extra_copies = 0;
    if (out.delivered) {
      ApplyAdversary(child_edge, base, &out, &extra_copies);
    } else {
      out.delivered_copies = 0;
    }

    stats_.total_energy_mj += out.energy_mj;
    const int transmissions =
        (lossy_.enabled ? out.attempts : 1) + extra_copies;
    stats_.unicast_messages += transmissions;
    stats_.per_node_energy_mj[child_edge] += out.energy_mj;
    EdgeTraffic& edge = stats_.per_edge[child_edge];
    edge.messages += transmissions;
    edge.retries += out.attempts - 1;
    edge.energy_mj += out.energy_mj;
    if (!out.delivered) {
      ++stats_.drops;
      ++edge.drops;
      stats_.values_lost += num_values;
    } else if (out.corrupted) {
      // Accounted as a drop (the protocol layer must reject the payload),
      // tallied separately so the corruption rate stays observable.
      ++stats_.corrupted;
      ++stats_.drops;
      ++edge.drops;
      stats_.values_lost += num_values;
      PROSPECTOR_FLIGHT(kFaultInject, "sim.adversary.corrupt", -1,
                        child_edge, num_values);
    } else if (out.delayed_until_epoch >= 0) {
      // In flight across epochs: lost from this epoch's viewpoint. A
      // fencing protocol refuses the stale arrival; only a broken one
      // folds it in.
      ++stats_.delayed;
      stats_.values_lost += num_values;
      PROSPECTOR_FLIGHT(kFaultInject, "sim.adversary.delay", -1, child_edge,
                        out.delayed_until_epoch);
    } else {
      stats_.values_transmitted += num_values;
      stats_.duplicates += extra_copies;
      if (extra_copies > 0) {
        PROSPECTOR_FLIGHT(kFaultInject, "sim.adversary.duplicate", -1,
                          child_edge, extra_copies);
      }
    }
    return out;
  }

  /// Legacy reliable-delivery entry point: charges like TryUnicast and
  /// returns the energy. Callers that must react to loss (every executor
  /// in lossy/fault-injected runs) use TryUnicast instead.
  double Unicast(int child_edge, int num_values, int extra_bytes = 0) {
    return TryUnicast(child_edge, num_values, extra_bytes).energy_mj;
  }

  /// Empty-body broadcast by `node` (query trigger, Section 2). One
  /// per-message cost regardless of the number of listening children.
  double Broadcast(int node) { return BroadcastPayload(node, 0); }

  /// Broadcast carrying `extra_bytes` of payload (e.g. a mop-up request's
  /// count and range bounds). A dead node cannot key its radio: the
  /// broadcast is suppressed, charged nothing, and accounted as a drop —
  /// it used to charge energy (and, in executors, trigger children) from
  /// beyond the grave.
  double BroadcastPayload(int node, int extra_bytes) {
    if (!node_alive(node)) {
      ++stats_.drops;
      return 0.0;
    }
    const double cost = energy_.BroadcastCost() +
                        energy_.per_byte_mj * static_cast<double>(extra_bytes);
    stats_.total_energy_mj += cost;
    ++stats_.broadcast_messages;
    stats_.per_node_energy_mj[node] += cost;
    return cost;
  }

  /// Charges one sensor measurement at `node` (Section 4.4); free when
  /// the energy model sets no acquisition cost.
  double ChargeAcquisition(int node) {
    const double cost = energy_.acquisition_mj;
    if (cost > 0.0) {
      stats_.total_energy_mj += cost;
      ++stats_.acquisitions;
      stats_.per_node_energy_mj[node] += cost;
    }
    return cost;
  }

  /// Expected cost of sending `num_values` readings along `child_edge`,
  /// failure inflation included — the figure planners use (Section 4.4:
  /// "increase the cost of each edge by the product of its failure
  /// probability and the extra cost incurred by re-routing"). Fenced
  /// header bytes, when enabled, ride every message and are costed here
  /// so plans are priced honestly.
  double ExpectedUnicastCost(int child_edge, int num_values) const {
    return energy_.MessageCostWithExtra(num_values, fence_header_bytes_) *
           failures_.ExpectedCostFactor(child_edge);
  }

  const TransmissionStats& stats() const { return stats_; }

  /// Clears the ledger (e.g. between the distribution accounting and the
  /// collection phase, or between query epochs).
  void ResetStats() {
    stats_ = TransmissionStats{};
    stats_.per_node_energy_mj.assign(topology_->num_nodes(), 0.0);
    stats_.per_edge.assign(topology_->num_nodes(), EdgeTraffic{});
  }

  /// Takes the current ledger and resets it — convenient for per-phase
  /// breakdowns.
  TransmissionStats TakeStats() {
    TransmissionStats out = stats_;
    ResetStats();
    return out;
  }

 private:
  double EffectiveProbability(int child_edge) const {
    const double base = failures_.ProbabilityFor(child_edge);
    return injector_ == nullptr ? base
                                : injector_->EdgeProbability(child_edge, base);
  }

  /// Draws the adversarial outcome for one delivered message. Exactly
  /// three Bernoulli draws are consumed whenever the adversary is active
  /// for the edge — regardless of which effects fire — so toggling one
  /// knob's probability never desynchronizes the stream (what lets the
  /// chaos harness assert duplication-on/off answer bit-identity).
  void ApplyAdversary(int child_edge, double base_cost, DeliveryResult* out,
                      int* extra_copies) {
    static const EdgeAdversary kNone;
    const EdgeAdversary& over =
        injector_ != nullptr ? injector_->adversary(child_edge) : kNone;
    if (!adversarial_.enabled && !over.any()) return;

    const double corrupt_p = over.has_corrupt
                                 ? over.corrupt_prob
                                 : (adversarial_.enabled
                                        ? adversarial_.corrupt_prob
                                        : 0.0);
    const double delay_p =
        over.has_delay ? over.delay_prob
                       : (adversarial_.enabled ? adversarial_.delay_prob
                                               : 0.0);
    const double dup_p = over.has_duplicate
                             ? over.duplicate_prob
                             : (adversarial_.enabled
                                    ? adversarial_.duplicate_prob
                                    : 0.0);
    const bool corrupt = adv_rng_.Bernoulli(corrupt_p);
    const bool delay = adv_rng_.Bernoulli(delay_p);
    const bool duplicate = adv_rng_.Bernoulli(dup_p);
    if (corrupt) {
      out->corrupted = true;
      out->delivered_copies = 0;
      return;
    }
    if (delay) {
      const int d = over.has_delay ? over.delay_epochs
                                   : std::max(1, adversarial_.delay_epochs);
      out->delayed_until_epoch = epoch_ + d;
      out->delivered_copies = 0;
      return;
    }
    if (duplicate) {
      const int copies = over.has_duplicate
                             ? over.duplicate_copies
                             : std::max(1, adversarial_.duplicate_copies);
      *extra_copies = copies;
      out->delivered_copies = 1 + copies;
      // A duplicate is a re-transmission after a lost ACK: the sender
      // pays the base message cost once per extra copy, as for retries.
      out->energy_mj += base_cost * static_cast<double>(copies);
    }
  }

  const Topology* topology_;
  EnergyModel energy_;
  FailureModel failures_;
  Rng rng_;
  Rng adv_rng_;  ///< dedicated stream: the adversary never skews loss draws
  FaultInjector* injector_ = nullptr;  // not owned
  LossyTransport lossy_;
  AdversarialTransport adversarial_;
  TransmissionStats stats_;
  int epoch_ = 0;
  int fence_header_bytes_ = 0;
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_SIMULATOR_H_
