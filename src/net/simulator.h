#ifndef PROSPECTOR_NET_SIMULATOR_H_
#define PROSPECTOR_NET_SIMULATOR_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/net/energy_model.h"
#include "src/net/failure.h"
#include "src/net/fault_injector.h"
#include "src/net/topology.h"
#include "src/util/rng.h"

namespace prospector {
namespace net {

/// Per-edge traffic ledger entry; the edge is named by its child endpoint
/// (every tree edge has exactly one). Unicast traffic only — broadcasts
/// have no single edge and are accounted node-side.
struct EdgeTraffic {
  int messages = 0;  ///< transmission attempts (lossy mode counts retries)
  int retries = 0;   ///< lossy mode: re-transmissions after the first try
  int drops = 0;     ///< messages abandoned (retry budget / dead endpoint)
  double energy_mj = 0.0;
};

/// Aggregate accounting of one or more simulated phases.
struct TransmissionStats {
  double total_energy_mj = 0.0;
  int unicast_messages = 0;
  int broadcast_messages = 0;
  int64_t values_transmitted = 0;  ///< readings on *delivered* messages
  int reroutes = 0;                ///< reliable mode: re-routed messages
  int retries = 0;                 ///< lossy mode: re-transmissions
  int drops = 0;                   ///< messages abandoned after the retry budget
  int64_t values_lost = 0;         ///< readings on dropped messages
  int acquisitions = 0;
  /// Energy attributed per node (sender side of each message).
  std::vector<double> per_node_energy_mj;
  /// Message/retry/drop ledger per tree edge (indexed by child endpoint).
  std::vector<EdgeTraffic> per_edge;

  void Accumulate(const TransmissionStats& other) {
    total_energy_mj += other.total_energy_mj;
    unicast_messages += other.unicast_messages;
    broadcast_messages += other.broadcast_messages;
    values_transmitted += other.values_transmitted;
    reroutes += other.reroutes;
    retries += other.retries;
    drops += other.drops;
    values_lost += other.values_lost;
    acquisitions += other.acquisitions;
    if (per_node_energy_mj.size() < other.per_node_energy_mj.size()) {
      per_node_energy_mj.resize(other.per_node_energy_mj.size(), 0.0);
    }
    for (size_t i = 0; i < other.per_node_energy_mj.size(); ++i) {
      per_node_energy_mj[i] += other.per_node_energy_mj[i];
    }
    if (per_edge.size() < other.per_edge.size()) {
      per_edge.resize(other.per_edge.size());
    }
    for (size_t i = 0; i < other.per_edge.size(); ++i) {
      per_edge[i].messages += other.per_edge[i].messages;
      per_edge[i].retries += other.per_edge[i].retries;
      per_edge[i].drops += other.per_edge[i].drops;
      per_edge[i].energy_mj += other.per_edge[i].energy_mj;
    }
  }
};

/// Transport tier 2 (see DESIGN.md, "Failure semantics"): instead of the
/// paper's always-successful re-routing, a failed transmission is retried
/// up to `max_retries` times — each attempt paying more energy as the
/// backoff lengthens preambles — and then genuinely dropped.
struct LossyTransport {
  bool enabled = false;
  /// Re-transmissions after the first attempt before the message drops.
  int max_retries = 3;
  /// Attempt a (0-based) costs `base * pow(backoff_cost_growth, a)`.
  double backoff_cost_growth = 1.5;
};

/// Outcome of one transmission attempt sequence.
struct DeliveryResult {
  bool delivered = true;
  double energy_mj = 0.0;
  int attempts = 1;
};

/// Message-level simulator of the network's MAC layer, per Section 5:
/// only communication costs are modeled. Executors call Unicast/Broadcast
/// as their protocol sends messages; the simulator draws transient edge
/// failures, charges re-routing (or, in lossy mode, bounded retries and
/// real drops), consults the fault injector for dead nodes and cut edges,
/// and keeps the energy ledger.
class NetworkSimulator {
 public:
  NetworkSimulator(const Topology* topology, EnergyModel energy,
                   FailureModel failures = {}, uint64_t seed = 1)
      : topology_(topology),
        energy_(energy),
        failures_(failures),
        rng_(seed) {
    const Status valid = failures_.Validate(topology->num_nodes());
    if (!valid.ok()) {
      // A misconfigured failure model used to degrade into a silently
      // failure-free tail; fail loudly at construction instead.
      std::fprintf(stderr, "NetworkSimulator: %s\n", valid.ToString().c_str());
      std::abort();
    }
    stats_.per_node_energy_mj.assign(topology->num_nodes(), 0.0);
    stats_.per_edge.assign(topology->num_nodes(), EdgeTraffic{});
  }

  const Topology& topology() const { return *topology_; }
  const EnergyModel& energy_model() const { return energy_; }
  const FailureModel& failure_model() const { return failures_; }

  /// Attaches a scripted fault timeline (not owned; may be nullptr). The
  /// owner advances the injector's clock; the simulator only consults it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  const FaultInjector* fault_injector() const { return injector_; }

  void set_lossy_transport(LossyTransport lossy) { lossy_ = lossy; }
  const LossyTransport& lossy_transport() const { return lossy_; }

  bool node_alive(int node) const {
    return injector_ == nullptr || injector_->node_alive(node);
  }
  /// Can a message cross the edge above `child_edge` at all? False when
  /// either endpoint is dead or the edge is partitioned away.
  bool edge_usable(int child_edge) const {
    if (injector_ == nullptr) return true;
    return injector_->node_alive(child_edge) &&
           injector_->node_alive(topology_->parent(child_edge)) &&
           !injector_->edge_cut(child_edge);
  }

  /// Unicast along the tree edge owned by `child_edge`, in either
  /// direction (child->parent collection or parent->child request): the
  /// energy cost is symmetric. `num_values` readings plus `extra_bytes`
  /// protocol payload.
  ///
  /// Reliable mode (lossy disabled): a drawn transient failure re-routes
  /// at `reroute_cost_factor` and the message always arrives — unless the
  /// edge is unusable (dead endpoint / partition), where no protocol can
  /// help: the sender pays one transmission and the message drops.
  ///
  /// Lossy mode: every attempt independently fails with the edge's
  /// failure probability (injector overrides included); after
  /// `max_retries` re-transmissions — each charged with backoff growth —
  /// the message is genuinely dropped.
  DeliveryResult TryUnicast(int child_edge, int num_values,
                            int extra_bytes = 0) {
    const double base = energy_.MessageCostWithExtra(num_values, extra_bytes);
    const bool usable = edge_usable(child_edge);
    DeliveryResult out;

    if (!lossy_.enabled) {
      out.energy_mj = base;
      if (usable && failures_.enabled() &&
          rng_.Bernoulli(EffectiveProbability(child_edge))) {
        out.energy_mj *= failures_.reroute_cost_factor;
        ++stats_.reroutes;
      }
      out.delivered = usable;
    } else {
      const int max_attempts = 1 + (lossy_.max_retries > 0
                                        ? lossy_.max_retries
                                        : 0);
      const double p = EffectiveProbability(child_edge);
      out.delivered = false;
      out.attempts = 0;
      double attempt_cost = base;
      for (int a = 0; a < max_attempts; ++a) {
        ++out.attempts;
        out.energy_mj += attempt_cost;
        attempt_cost *= lossy_.backoff_cost_growth;
        if (usable && !(p > 0.0 && rng_.Bernoulli(p))) {
          out.delivered = true;
          break;
        }
      }
      stats_.retries += out.attempts - 1;
    }

    stats_.total_energy_mj += out.energy_mj;
    stats_.unicast_messages += lossy_.enabled ? out.attempts : 1;
    stats_.per_node_energy_mj[child_edge] += out.energy_mj;
    EdgeTraffic& edge = stats_.per_edge[child_edge];
    edge.messages += lossy_.enabled ? out.attempts : 1;
    edge.retries += out.attempts - 1;
    edge.energy_mj += out.energy_mj;
    if (out.delivered) {
      stats_.values_transmitted += num_values;
    } else {
      ++stats_.drops;
      ++edge.drops;
      stats_.values_lost += num_values;
    }
    return out;
  }

  /// Legacy reliable-delivery entry point: charges like TryUnicast and
  /// returns the energy. Callers that must react to loss (every executor
  /// in lossy/fault-injected runs) use TryUnicast instead.
  double Unicast(int child_edge, int num_values, int extra_bytes = 0) {
    return TryUnicast(child_edge, num_values, extra_bytes).energy_mj;
  }

  /// Empty-body broadcast by `node` (query trigger, Section 2). One
  /// per-message cost regardless of the number of listening children.
  double Broadcast(int node) { return BroadcastPayload(node, 0); }

  /// Broadcast carrying `extra_bytes` of payload (e.g. a mop-up request's
  /// count and range bounds).
  double BroadcastPayload(int node, int extra_bytes) {
    const double cost = energy_.BroadcastCost() +
                        energy_.per_byte_mj * static_cast<double>(extra_bytes);
    stats_.total_energy_mj += cost;
    ++stats_.broadcast_messages;
    stats_.per_node_energy_mj[node] += cost;
    return cost;
  }

  /// Charges one sensor measurement at `node` (Section 4.4); free when
  /// the energy model sets no acquisition cost.
  double ChargeAcquisition(int node) {
    const double cost = energy_.acquisition_mj;
    if (cost > 0.0) {
      stats_.total_energy_mj += cost;
      ++stats_.acquisitions;
      stats_.per_node_energy_mj[node] += cost;
    }
    return cost;
  }

  /// Expected cost of sending `num_values` readings along `child_edge`,
  /// failure inflation included — the figure planners use (Section 4.4:
  /// "increase the cost of each edge by the product of its failure
  /// probability and the extra cost incurred by re-routing").
  double ExpectedUnicastCost(int child_edge, int num_values) const {
    return energy_.MessageCost(num_values) *
           failures_.ExpectedCostFactor(child_edge);
  }

  const TransmissionStats& stats() const { return stats_; }

  /// Clears the ledger (e.g. between the distribution accounting and the
  /// collection phase, or between query epochs).
  void ResetStats() {
    stats_ = TransmissionStats{};
    stats_.per_node_energy_mj.assign(topology_->num_nodes(), 0.0);
    stats_.per_edge.assign(topology_->num_nodes(), EdgeTraffic{});
  }

  /// Takes the current ledger and resets it — convenient for per-phase
  /// breakdowns.
  TransmissionStats TakeStats() {
    TransmissionStats out = stats_;
    ResetStats();
    return out;
  }

 private:
  double EffectiveProbability(int child_edge) const {
    const double base = failures_.ProbabilityFor(child_edge);
    return injector_ == nullptr ? base
                                : injector_->EdgeProbability(child_edge, base);
  }

  const Topology* topology_;
  EnergyModel energy_;
  FailureModel failures_;
  Rng rng_;
  FaultInjector* injector_ = nullptr;  // not owned
  LossyTransport lossy_;
  TransmissionStats stats_;
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_SIMULATOR_H_
