#ifndef PROSPECTOR_NET_TOPOLOGY_H_
#define PROSPECTOR_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace prospector {
namespace net {

/// 2-D coordinates of a mote (meters).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double Distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// A sensor network organized as a spanning tree rooted at the query
/// station / base station, following Section 2 of the paper.
///
/// Node ids are dense ints [0, n). Every non-root node i owns exactly one
/// tree edge: the communication link to parent(i). Throughout the library
/// an "edge id" therefore IS the child node id.
///
/// The root is the unique node with parent kNoParent. The builders in this
/// file all place it at node 0, but nothing may assume that: code must
/// compare against root() by id, never against 0.
///
/// The structure is immutable once built; topology changes (Section 4.4)
/// are modeled by building a new Topology excluding failed nodes.
class Topology {
 public:
  /// Builds from a parent vector. Exactly one entry must be kNoParent
  /// (that node is the root — not necessarily node 0). Fails if the
  /// vector does not describe a tree on all nodes.
  static Result<Topology> FromParents(std::vector<int> parents);

  static constexpr int kNoParent = -1;

  int num_nodes() const { return static_cast<int>(parents_.size()); }
  int root() const { return root_; }

  /// Construction stamp, unique per FromParents call (copies share it —
  /// they describe the same tree). A rebuild after node failures
  /// (Section 4.4) therefore carries a new epoch, which is what
  /// invalidates every epoch-keyed planning cache: path caches, ancestor
  /// lists, and LP skeletons key on this value. The default-constructed
  /// placeholder has epoch 0, which no built topology ever uses.
  uint64_t epoch() const { return epoch_; }

  int parent(int node) const { return parents_[node]; }
  const std::vector<int>& children(int node) const { return children_[node]; }
  /// Hop distance from the root (root: 0).
  int depth(int node) const { return depth_[node]; }
  /// Number of nodes in the subtree rooted at `node`, including itself.
  int subtree_size(int node) const { return subtree_size_[node]; }
  int height() const { return height_; }
  bool is_leaf(int node) const { return children_[node].empty(); }

  /// anc(i) of the paper: i itself plus all its proper ancestors (root last).
  std::vector<int> AncestorsOf(int node) const;
  /// desc(i) of the paper: i itself plus all its descendants (preorder).
  std::vector<int> DescendantsOf(int node) const;
  /// True iff `maybe_anc` is `node` itself or a proper ancestor of it.
  bool IsAncestorOf(int maybe_anc, int node) const;
  /// Edge ids (child node ids) on the path from `node` to the root:
  /// {node, parent(node), ...}, excluding the root itself.
  std::vector<int> PathEdges(int node) const;

  /// All nodes in post-order (children before parents) — the order in which
  /// a collection phase propagates values upward.
  const std::vector<int>& PostOrder() const { return post_order_; }
  /// All nodes in pre-order (parents before children) — dissemination order.
  const std::vector<int>& PreOrder() const { return pre_order_; }

  /// Physical placement, if the topology was built geometrically
  /// (empty otherwise).
  const std::vector<Point>& positions() const { return positions_; }
  void set_positions(std::vector<Point> p) { positions_ = std::move(p); }

  /// An empty placeholder (0 nodes); assign a FromParents/builder result
  /// before use.
  Topology() = default;

 private:
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<int> depth_;
  std::vector<int> subtree_size_;
  std::vector<int> post_order_;
  std::vector<int> pre_order_;
  std::vector<Point> positions_;
  int root_ = 0;
  int height_ = 0;
  uint64_t epoch_ = 0;
};

/// Parameters for random geometric network construction (Section 5: nodes
/// placed randomly in a rectangle; minimum-hop spanning tree subject to
/// radio range).
struct GeometricNetworkOptions {
  int num_nodes = 100;          ///< including the root
  double width = 100.0;         ///< meters
  double height = 100.0;        ///< meters
  double radio_range = 20.0;    ///< meters
  /// Where the root sits: center of the rectangle (true) or the lower-left
  /// corner (false).
  bool root_at_center = true;
};

/// Places nodes uniformly at random and builds a minimum-hop (BFS) spanning
/// tree. Among equal-depth parent candidates the lowest id wins, so the
/// result is a deterministic function of the node placement.
/// Fails with FailedPrecondition if the placement is not connected.
Result<Topology> BuildGeometricNetwork(const GeometricNetworkOptions& options,
                                       Rng* rng);

/// Like BuildGeometricNetwork, but retries with fresh placements (same rng
/// stream) until a connected instance is found; gives up after `max_tries`.
Result<Topology> BuildConnectedGeometricNetwork(
    const GeometricNetworkOptions& options, Rng* rng, int max_tries = 100);

/// A uniformly random tree with bounded fan-out; used by unit/property
/// tests where physical placement does not matter.
Topology BuildRandomTree(int num_nodes, int max_fanout, Rng* rng);

/// A rooted path 0 -> 1 -> ... -> n-1 (chain) — worst-case depth.
Topology BuildChain(int num_nodes);

/// A root with num_nodes-1 direct children (star) — minimum depth.
Topology BuildStar(int num_nodes);

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_TOPOLOGY_H_
