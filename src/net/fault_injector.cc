#include "src/net/fault_injector.h"

#include <algorithm>

#include "src/obs/obs.h"

namespace prospector {
namespace net {
namespace {

// Keeps the armed-edge count in step when one knob of `adv` flips.
void CountArmed(const EdgeAdversary& before, const EdgeAdversary& after,
                int* num_adversarial) {
  if (!before.any() && after.any()) ++*num_adversarial;
  if (before.any() && !after.any()) --*num_adversarial;
}

}  // namespace

FaultInjector::FaultInjector(int num_nodes, FaultSchedule schedule, int root)
    : num_nodes_(num_nodes),
      root_(root),
      events_(std::move(schedule.events)),
      dead_(num_nodes, 0),
      cut_(num_nodes, 0),
      has_override_(num_nodes, 0),
      prob_override_(num_nodes, 0.0),
      adversary_(num_nodes) {
  // Stable sort keeps script order among same-epoch events, so a script
  // is replayed exactly as written.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.epoch < b.epoch;
                   });
}

void FaultInjector::Apply(const FaultEvent& event) {
  const int v = event.node;
  if (v < 0 || v >= num_nodes_) return;  // stale id (e.g. after a rebuild)
  PROSPECTOR_FLIGHT(kFaultInject, "fault.inject", -1, v,
                    static_cast<int>(event.kind));
  switch (event.kind) {
    case FaultEvent::Kind::kKillNode:
      if (v == root_) break;  // the base station cannot die
      if (!dead_[v]) ++num_dead_;
      dead_[v] = 1;
      break;
    case FaultEvent::Kind::kReviveNode:
      if (dead_[v]) --num_dead_;
      dead_[v] = 0;
      break;
    case FaultEvent::Kind::kDegradeEdge:
      has_override_[v] = 1;
      prob_override_[v] = event.probability;
      break;
    case FaultEvent::Kind::kRestoreEdge:
      has_override_[v] = 0;
      prob_override_[v] = 0.0;
      break;
    case FaultEvent::Kind::kPartitionSubtree:
      if (v == root_) break;  // the root owns no edge
      cut_[v] = 1;
      break;
    case FaultEvent::Kind::kHealSubtree:
      cut_[v] = 0;
      break;
    case FaultEvent::Kind::kDuplicateEdge: {
      EdgeAdversary after = adversary_[v];
      after.has_duplicate = event.probability > 0.0;
      after.duplicate_prob = after.has_duplicate ? event.probability : 0.0;
      after.duplicate_copies =
          after.has_duplicate ? std::max(1, event.param) : 1;
      CountArmed(adversary_[v], after, &num_adversarial_);
      adversary_[v] = after;
      break;
    }
    case FaultEvent::Kind::kCorruptEdge: {
      EdgeAdversary after = adversary_[v];
      after.has_corrupt = event.probability > 0.0;
      after.corrupt_prob = after.has_corrupt ? event.probability : 0.0;
      CountArmed(adversary_[v], after, &num_adversarial_);
      adversary_[v] = after;
      break;
    }
    case FaultEvent::Kind::kDelayEdge: {
      EdgeAdversary after = adversary_[v];
      after.has_delay = event.probability > 0.0;
      after.delay_prob = after.has_delay ? event.probability : 0.0;
      after.delay_epochs = after.has_delay ? std::max(1, event.param) : 1;
      CountArmed(adversary_[v], after, &num_adversarial_);
      adversary_[v] = after;
      break;
    }
  }
}

void FaultInjector::AdvanceTo(int epoch) {
  if (epoch <= epoch_) return;
  epoch_ = epoch;
  while (next_event_ < events_.size() && events_[next_event_].epoch <= epoch) {
    Apply(events_[next_event_]);
    ++next_event_;
  }
}

void FaultInjector::Remap(const std::vector<int>& new_id, int new_num_nodes) {
  std::vector<char> dead(new_num_nodes, 0), cut(new_num_nodes, 0),
      has(new_num_nodes, 0);
  std::vector<double> prob(new_num_nodes, 0.0);
  std::vector<EdgeAdversary> adversary(new_num_nodes);
  num_dead_ = 0;
  num_adversarial_ = 0;
  for (int i = 0; i < num_nodes_; ++i) {
    const int j = i < static_cast<int>(new_id.size()) ? new_id[i] : -1;
    if (j < 0) continue;
    dead[j] = dead_[i];
    cut[j] = cut_[i];
    has[j] = has_override_[i];
    prob[j] = prob_override_[i];
    adversary[j] = adversary_[i];
    if (dead[j]) ++num_dead_;
    if (adversary[j].any()) ++num_adversarial_;
  }
  dead_ = std::move(dead);
  cut_ = std::move(cut);
  has_override_ = std::move(has);
  prob_override_ = std::move(prob);
  adversary_ = std::move(adversary);

  // Pending events follow the survivors; events naming removed nodes drop.
  std::vector<FaultEvent> pending;
  for (size_t e = next_event_; e < events_.size(); ++e) {
    FaultEvent ev = events_[e];
    const int j =
        ev.node >= 0 && ev.node < static_cast<int>(new_id.size())
            ? new_id[ev.node]
            : -1;
    if (j < 0) continue;
    ev.node = j;
    pending.push_back(ev);
  }
  events_ = std::move(pending);
  next_event_ = 0;
  num_nodes_ = new_num_nodes;
  root_ = root_ < static_cast<int>(new_id.size()) && new_id[root_] >= 0
              ? new_id[root_]
              : 0;
}

}  // namespace net
}  // namespace prospector
