#ifndef PROSPECTOR_NET_FAULT_INJECTOR_H_
#define PROSPECTOR_NET_FAULT_INJECTOR_H_

#include <cstddef>
#include <vector>

namespace prospector {
namespace net {

/// One scripted fault, applied when the injector's clock reaches `epoch`.
///
/// Node ids refer to the topology the injector was built for; after a tree
/// rebuild the schedule follows the surviving nodes through
/// FaultInjector::Remap (events naming removed nodes are dropped).
struct FaultEvent {
  enum class Kind {
    /// Node `node` dies: it stops acquiring, sending and receiving.
    kKillNode,
    /// Node `node` comes back to life.
    kReviveNode,
    /// Override the failure probability of the edge above `node` with
    /// `probability` (models interference / a degrading link).
    kDegradeEdge,
    /// Remove the override; the edge reverts to the base FailureModel.
    kRestoreEdge,
    /// Cut the edge above `node` outright: the whole subtree loses its
    /// path to the root while the partition lasts.
    kPartitionSubtree,
    /// Undo a kPartitionSubtree on the same node.
    kHealSubtree,
    /// Adversarial tier 3 (see DESIGN.md, "Failure semantics"): arm the
    /// edge above `node` so each delivered message is duplicated with
    /// `probability` (a retransmit after a lost ACK — the receiver sees
    /// `param` extra copies, the sender pays per copy). probability == 0
    /// disarms, reverting the edge to the simulator-wide
    /// AdversarialTransport rate.
    kDuplicateEdge,
    /// Arm payload corruption on the edge above `node`: each delivered
    /// message is corrupted with `probability` (the receiver's integrity
    /// check must reject it like a drop). probability == 0 disarms.
    kCorruptEdge,
    /// Arm delayed delivery on the edge above `node`: each delivered
    /// message is deferred with `probability` by `param` epochs (stale
    /// arrival — what plan-epoch fencing exists to refuse).
    /// probability == 0 disarms.
    kDelayEdge,
  };

  int epoch = 0;
  Kind kind = Kind::kKillNode;
  /// The affected node; for edge events this is the child id that owns
  /// the edge (edge id == child node id throughout the library).
  int node = -1;
  double probability = 0.0;  ///< kDegradeEdge / adversarial arm events
  /// kDuplicateEdge: extra copies per duplicated message (>= 1);
  /// kDelayEdge: epochs of deferral (>= 1). Ignored elsewhere.
  int param = 1;
};

/// A deterministic scripted fault timeline. The schedule is plain data:
/// the same script replayed against the same seeds yields bit-identical
/// runs, which is what makes fault-recovery tests reproducible.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& KillNode(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kKillNode, node, 0.0, 1});
    return *this;
  }
  FaultSchedule& ReviveNode(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kReviveNode, node, 0.0, 1});
    return *this;
  }
  FaultSchedule& DegradeEdge(int epoch, int child_edge, double probability) {
    events.push_back(
        {epoch, FaultEvent::Kind::kDegradeEdge, child_edge, probability, 1});
    return *this;
  }
  FaultSchedule& RestoreEdge(int epoch, int child_edge) {
    events.push_back(
        {epoch, FaultEvent::Kind::kRestoreEdge, child_edge, 0.0, 1});
    return *this;
  }
  FaultSchedule& PartitionSubtree(int epoch, int node) {
    events.push_back(
        {epoch, FaultEvent::Kind::kPartitionSubtree, node, 0.0, 1});
    return *this;
  }
  FaultSchedule& HealSubtree(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kHealSubtree, node, 0.0, 1});
    return *this;
  }
  FaultSchedule& DuplicateEdge(int epoch, int child_edge, double probability,
                               int copies = 1) {
    events.push_back({epoch, FaultEvent::Kind::kDuplicateEdge, child_edge,
                      probability, copies});
    return *this;
  }
  FaultSchedule& CorruptEdge(int epoch, int child_edge, double probability) {
    events.push_back(
        {epoch, FaultEvent::Kind::kCorruptEdge, child_edge, probability, 1});
    return *this;
  }
  FaultSchedule& DelayEdge(int epoch, int child_edge, double probability,
                           int delay_epochs = 1) {
    events.push_back({epoch, FaultEvent::Kind::kDelayEdge, child_edge,
                      probability, delay_epochs});
    return *this;
  }

  bool empty() const { return events.empty(); }
  /// True when any scripted event is one of the tier-3 adversarial kinds
  /// (the owner then needs a TransportGuard even if the simulator-wide
  /// AdversarialTransport rates are all zero).
  bool has_adversarial() const {
    for (const FaultEvent& e : events) {
      if (e.kind == FaultEvent::Kind::kDuplicateEdge ||
          e.kind == FaultEvent::Kind::kCorruptEdge ||
          e.kind == FaultEvent::Kind::kDelayEdge) {
        return true;
      }
    }
    return false;
  }
};

/// Scripted per-edge adversarial overrides currently armed on one edge.
/// A knob with `has_* == false` falls back to the simulator-wide
/// AdversarialTransport rate for that behavior.
struct EdgeAdversary {
  bool has_duplicate = false;
  double duplicate_prob = 0.0;
  int duplicate_copies = 1;
  bool has_corrupt = false;
  double corrupt_prob = 0.0;
  bool has_delay = false;
  double delay_prob = 0.0;
  int delay_epochs = 1;

  bool any() const { return has_duplicate || has_corrupt || has_delay; }
};

/// Materialized fault state the NetworkSimulator consults per message.
///
/// The owner advances the clock once per query epoch (AdvanceTo); events
/// with `event.epoch <= clock` are folded into the current state in script
/// order. Killing the root is rejected (the base station is mains-powered
/// by assumption); such events are ignored with the root pinned alive.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(int num_nodes, FaultSchedule schedule, int root = 0);

  /// Applies every event scheduled at or before `epoch`. Clocks never run
  /// backwards; earlier values are a no-op.
  void AdvanceTo(int epoch);

  int epoch() const { return epoch_; }
  int num_nodes() const { return num_nodes_; }

  bool node_alive(int node) const { return dead_.empty() || !dead_[node]; }
  /// True when the edge above `child_edge` is partitioned away.
  bool edge_cut(int child_edge) const {
    return !cut_.empty() && cut_[child_edge];
  }
  /// The edge's effective failure probability: the degradation override
  /// when one is active, otherwise `base`.
  double EdgeProbability(int child_edge, double base) const {
    if (!has_override_.empty() && has_override_[child_edge]) {
      return prob_override_[child_edge];
    }
    return base;
  }
  /// The scripted adversarial overrides armed on the edge (all-off when
  /// no kDuplicate/kCorrupt/kDelay event touched it).
  const EdgeAdversary& adversary(int child_edge) const {
    static const EdgeAdversary kNone;
    if (adversary_.empty() || child_edge < 0 ||
        child_edge >= static_cast<int>(adversary_.size())) {
      return kNone;
    }
    return adversary_[child_edge];
  }
  /// True when any edge currently has an armed adversarial override.
  bool any_adversary() const { return num_adversarial_ > 0; }

  int num_dead() const { return num_dead_; }

  /// Re-indexes live state and *pending* events after a topology rebuild:
  /// `new_id[i]` is node i's id in the rebuilt network, -1 for removed
  /// nodes (their pending events are dropped).
  void Remap(const std::vector<int>& new_id, int new_num_nodes);

 private:
  void Apply(const FaultEvent& event);

  int num_nodes_ = 0;
  int root_ = 0;
  int epoch_ = -1;
  size_t next_event_ = 0;
  std::vector<FaultEvent> events_;  // stable-sorted by epoch
  std::vector<char> dead_;
  std::vector<char> cut_;
  std::vector<char> has_override_;
  std::vector<double> prob_override_;
  std::vector<EdgeAdversary> adversary_;
  int num_dead_ = 0;
  int num_adversarial_ = 0;
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_FAULT_INJECTOR_H_
