#ifndef PROSPECTOR_NET_FAULT_INJECTOR_H_
#define PROSPECTOR_NET_FAULT_INJECTOR_H_

#include <cstddef>
#include <vector>

namespace prospector {
namespace net {

/// One scripted fault, applied when the injector's clock reaches `epoch`.
///
/// Node ids refer to the topology the injector was built for; after a tree
/// rebuild the schedule follows the surviving nodes through
/// FaultInjector::Remap (events naming removed nodes are dropped).
struct FaultEvent {
  enum class Kind {
    /// Node `node` dies: it stops acquiring, sending and receiving.
    kKillNode,
    /// Node `node` comes back to life.
    kReviveNode,
    /// Override the failure probability of the edge above `node` with
    /// `probability` (models interference / a degrading link).
    kDegradeEdge,
    /// Remove the override; the edge reverts to the base FailureModel.
    kRestoreEdge,
    /// Cut the edge above `node` outright: the whole subtree loses its
    /// path to the root while the partition lasts.
    kPartitionSubtree,
    /// Undo a kPartitionSubtree on the same node.
    kHealSubtree,
  };

  int epoch = 0;
  Kind kind = Kind::kKillNode;
  /// The affected node; for edge events this is the child id that owns
  /// the edge (edge id == child node id throughout the library).
  int node = -1;
  double probability = 0.0;  ///< kDegradeEdge only
};

/// A deterministic scripted fault timeline. The schedule is plain data:
/// the same script replayed against the same seeds yields bit-identical
/// runs, which is what makes fault-recovery tests reproducible.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& KillNode(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kKillNode, node, 0.0});
    return *this;
  }
  FaultSchedule& ReviveNode(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kReviveNode, node, 0.0});
    return *this;
  }
  FaultSchedule& DegradeEdge(int epoch, int child_edge, double probability) {
    events.push_back(
        {epoch, FaultEvent::Kind::kDegradeEdge, child_edge, probability});
    return *this;
  }
  FaultSchedule& RestoreEdge(int epoch, int child_edge) {
    events.push_back({epoch, FaultEvent::Kind::kRestoreEdge, child_edge, 0.0});
    return *this;
  }
  FaultSchedule& PartitionSubtree(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kPartitionSubtree, node, 0.0});
    return *this;
  }
  FaultSchedule& HealSubtree(int epoch, int node) {
    events.push_back({epoch, FaultEvent::Kind::kHealSubtree, node, 0.0});
    return *this;
  }

  bool empty() const { return events.empty(); }
};

/// Materialized fault state the NetworkSimulator consults per message.
///
/// The owner advances the clock once per query epoch (AdvanceTo); events
/// with `event.epoch <= clock` are folded into the current state in script
/// order. Killing the root is rejected (the base station is mains-powered
/// by assumption); such events are ignored with the root pinned alive.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(int num_nodes, FaultSchedule schedule, int root = 0);

  /// Applies every event scheduled at or before `epoch`. Clocks never run
  /// backwards; earlier values are a no-op.
  void AdvanceTo(int epoch);

  int epoch() const { return epoch_; }
  int num_nodes() const { return num_nodes_; }

  bool node_alive(int node) const { return dead_.empty() || !dead_[node]; }
  /// True when the edge above `child_edge` is partitioned away.
  bool edge_cut(int child_edge) const {
    return !cut_.empty() && cut_[child_edge];
  }
  /// The edge's effective failure probability: the degradation override
  /// when one is active, otherwise `base`.
  double EdgeProbability(int child_edge, double base) const {
    if (!has_override_.empty() && has_override_[child_edge]) {
      return prob_override_[child_edge];
    }
    return base;
  }

  int num_dead() const { return num_dead_; }

  /// Re-indexes live state and *pending* events after a topology rebuild:
  /// `new_id[i]` is node i's id in the rebuilt network, -1 for removed
  /// nodes (their pending events are dropped).
  void Remap(const std::vector<int>& new_id, int new_num_nodes);

 private:
  void Apply(const FaultEvent& event);

  int num_nodes_ = 0;
  int root_ = 0;
  int epoch_ = -1;
  size_t next_event_ = 0;
  std::vector<FaultEvent> events_;  // stable-sorted by epoch
  std::vector<char> dead_;
  std::vector<char> cut_;
  std::vector<char> has_override_;
  std::vector<double> prob_override_;
  int num_dead_ = 0;
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_FAULT_INJECTOR_H_
