#include "src/net/topology.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <numeric>

namespace prospector {
namespace net {
namespace {

// Epoch source for Topology::epoch(): one stamp per successful
// FromParents, process-wide, starting at 1 (0 marks the placeholder).
uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Result<Topology> Topology::FromParents(std::vector<int> parents) {
  const int n = static_cast<int>(parents.size());
  if (n == 0) return Status::InvalidArgument("empty parent vector");
  int root = kNoParent;
  for (int i = 0; i < n; ++i) {
    if (parents[i] == kNoParent) {
      if (root != kNoParent) {
        return Status::InvalidArgument("multiple roots: nodes " +
                                       std::to_string(root) + " and " +
                                       std::to_string(i) + " have parent -1");
      }
      root = i;
    } else if (parents[i] < 0 || parents[i] >= n || parents[i] == i) {
      return Status::InvalidArgument("node " + std::to_string(i) +
                                     " has invalid parent " +
                                     std::to_string(parents[i]));
    }
  }
  if (root == kNoParent) {
    return Status::InvalidArgument("no root: some node must have parent -1");
  }

  Topology t;
  t.epoch_ = NextEpoch();
  t.root_ = root;
  t.parents_ = std::move(parents);
  t.children_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    if (i != root) t.children_[t.parents_[i]].push_back(i);
  }

  // BFS from the root assigns depths and detects unreachable nodes
  // (which imply a cycle or a forest).
  t.depth_.assign(n, -1);
  t.pre_order_.clear();
  t.pre_order_.reserve(n);
  std::deque<int> queue{root};
  t.depth_[root] = 0;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    t.pre_order_.push_back(u);
    for (int c : t.children_[u]) {
      t.depth_[c] = t.depth_[u] + 1;
      queue.push_back(c);
    }
  }
  if (static_cast<int>(t.pre_order_.size()) != n) {
    return Status::InvalidArgument("parent vector does not describe a tree");
  }
  t.height_ = *std::max_element(t.depth_.begin(), t.depth_.end());

  // Post-order: reverse BFS order visits every child before its parent.
  t.post_order_.assign(t.pre_order_.rbegin(), t.pre_order_.rend());

  t.subtree_size_.assign(n, 1);
  for (int u : t.post_order_) {
    if (u != root) t.subtree_size_[t.parents_[u]] += t.subtree_size_[u];
  }
  return t;
}

std::vector<int> Topology::AncestorsOf(int node) const {
  std::vector<int> anc;
  for (int u = node; u != kNoParent; u = parents_[u]) anc.push_back(u);
  return anc;
}

std::vector<int> Topology::DescendantsOf(int node) const {
  std::vector<int> desc;
  desc.reserve(subtree_size_[node]);
  desc.push_back(node);
  for (size_t i = 0; i < desc.size(); ++i) {
    for (int c : children_[desc[i]]) desc.push_back(c);
  }
  return desc;
}

bool Topology::IsAncestorOf(int maybe_anc, int node) const {
  for (int u = node; u != kNoParent; u = parents_[u]) {
    if (u == maybe_anc) return true;
    if (depth_[u] <= depth_[maybe_anc]) return false;  // early out
  }
  return false;
}

std::vector<int> Topology::PathEdges(int node) const {
  std::vector<int> edges;
  for (int u = node; u != root_; u = parents_[u]) edges.push_back(u);
  return edges;
}

Result<Topology> BuildGeometricNetwork(const GeometricNetworkOptions& options,
                                       Rng* rng) {
  const int n = options.num_nodes;
  if (n <= 0) return Status::InvalidArgument("num_nodes must be positive");

  std::vector<Point> pos(n);
  pos[0] = options.root_at_center
               ? Point{options.width / 2.0, options.height / 2.0}
               : Point{0.0, 0.0};
  for (int i = 1; i < n; ++i) {
    pos[i] = {rng->Uniform(0.0, options.width),
              rng->Uniform(0.0, options.height)};
  }

  // BFS over the radio-range graph; the lowest-id frontier node at the
  // shallowest depth becomes the parent, yielding a minimum-hop tree.
  std::vector<int> parents(n, Topology::kNoParent);
  std::vector<int> depth(n, -1);
  depth[0] = 0;
  std::deque<int> queue{0};
  int reached = 1;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v = 1; v < n; ++v) {
      if (depth[v] >= 0 || v == u) continue;
      if (Distance(pos[u], pos[v]) <= options.radio_range) {
        depth[v] = depth[u] + 1;
        parents[v] = u;
        queue.push_back(v);
        ++reached;
      }
    }
  }
  if (reached != n) {
    return Status::FailedPrecondition(
        "geometric placement is disconnected (" + std::to_string(reached) +
        "/" + std::to_string(n) + " nodes reachable)");
  }
  auto topo = Topology::FromParents(std::move(parents));
  if (topo.ok()) topo.value().set_positions(std::move(pos));
  return topo;
}

Result<Topology> BuildConnectedGeometricNetwork(
    const GeometricNetworkOptions& options, Rng* rng, int max_tries) {
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto topo = BuildGeometricNetwork(options, rng);
    if (topo.ok()) return topo;
  }
  return Status::FailedPrecondition(
      "no connected placement found in " + std::to_string(max_tries) +
      " tries; increase radio_range or density");
}

Topology BuildRandomTree(int num_nodes, int max_fanout, Rng* rng) {
  std::vector<int> parents(num_nodes, Topology::kNoParent);
  std::vector<int> fanout(num_nodes, 0);
  for (int i = 1; i < num_nodes; ++i) {
    // Choose an earlier node with spare fan-out capacity.
    int p;
    do {
      p = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(i)));
    } while (max_fanout > 0 && fanout[p] >= max_fanout);
    parents[i] = p;
    ++fanout[p];
  }
  auto topo = Topology::FromParents(std::move(parents));
  return std::move(topo.value());  // by construction always a tree
}

Topology BuildChain(int num_nodes) {
  std::vector<int> parents(num_nodes, Topology::kNoParent);
  for (int i = 1; i < num_nodes; ++i) parents[i] = i - 1;
  return std::move(Topology::FromParents(std::move(parents)).value());
}

Topology BuildStar(int num_nodes) {
  std::vector<int> parents(num_nodes, Topology::kNoParent);
  for (int i = 1; i < num_nodes; ++i) parents[i] = 0;
  return std::move(Topology::FromParents(std::move(parents)).value());
}

}  // namespace net
}  // namespace prospector
