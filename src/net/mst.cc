#include "src/net/mst.h"

#include <algorithm>
#include <deque>
#include <tuple>

namespace prospector {
namespace net {
namespace {

struct Edge {
  int a, b;        // a < b
  double weight;   // distance

  // Unique total order: (distance, a, b).
  std::tuple<double, int, int> Key() const { return {weight, a, b}; }
};

std::vector<Edge> RadioEdges(const std::vector<Point>& pos, double range) {
  std::vector<Edge> edges;
  const int n = static_cast<int>(pos.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const double d = Distance(pos[a], pos[b]);
      if (d <= range) edges.push_back({a, b, d});
    }
  }
  return edges;
}

// Union-find with path halving.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent[b] = a;
    return true;
  }
};

}  // namespace

Result<std::vector<std::pair<int, int>>> KruskalReference(
    const std::vector<Point>& positions, double radio_range) {
  const int n = static_cast<int>(positions.size());
  std::vector<Edge> edges = RadioEdges(positions, radio_range);
  std::sort(edges.begin(), edges.end(),
            [](const Edge& x, const Edge& y) { return x.Key() < y.Key(); });
  UnionFind uf(n);
  std::vector<std::pair<int, int>> mst;
  for (const Edge& e : edges) {
    if (uf.Union(e.a, e.b)) mst.emplace_back(e.a, e.b);
  }
  if (static_cast<int>(mst.size()) != n - 1) {
    return Status::FailedPrecondition("radio graph is disconnected");
  }
  std::sort(mst.begin(), mst.end());
  return mst;
}

Result<DistributedMstResult> BuildDistributedMst(
    const std::vector<Point>& positions, double radio_range) {
  const int n = static_cast<int>(positions.size());
  if (n == 0) return Status::InvalidArgument("no nodes");
  std::vector<Edge> edges = RadioEdges(positions, radio_range);

  // Incident edge lists for the per-node probing cost.
  std::vector<std::vector<int>> incident(n);
  for (size_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].a].push_back(static_cast<int>(i));
    incident[edges[i].b].push_back(static_cast<int>(i));
  }

  DistributedMstResult result;
  UnionFind uf(n);
  std::vector<std::pair<int, int>> chosen;
  int fragments = n;
  while (fragments > 1) {
    ++result.rounds;
    // Each fragment's minimum-weight outgoing edge (MWOE), found by every
    // node test-probing its incident edges and convergecasting the local
    // minimum to its fragment core.
    std::vector<int> mwoe(n, -1);  // fragment root -> edge index
    for (int v = 0; v < n; ++v) {
      const int frag = uf.Find(v);
      for (int ei : incident[v]) {
        const Edge& e = edges[ei];
        ++result.messages;  // test message across the edge
        if (uf.Find(e.a) == uf.Find(e.b)) continue;  // internal: rejected
        if (mwoe[frag] < 0 || e.Key() < edges[mwoe[frag]].Key()) {
          mwoe[frag] = ei;
        }
      }
    }
    // Convergecast the winners + broadcast the merge decision: two
    // messages per node of each fragment.
    result.messages += 2 * n;

    // Merge along every fragment's MWOE (all recorded before any union, as
    // in Boruvka; the unique edge order makes every MWOE safe and the
    // union-find drops the duplicate when two fragments pick each other).
    bool merged_any = false;
    for (int f = 0; f < n; ++f) {
      if (mwoe[f] < 0) continue;
      const Edge& e = edges[mwoe[f]];
      if (uf.Union(e.a, e.b)) {
        chosen.emplace_back(std::min(e.a, e.b), std::max(e.a, e.b));
        --fragments;
        merged_any = true;
      }
    }
    if (!merged_any) {
      return Status::FailedPrecondition("radio graph is disconnected");
    }
  }

  // Root the MST at node 0 by BFS over the chosen edges.
  std::vector<std::vector<int>> adj(n);
  for (const auto& [a, b] : chosen) {
    adj[a].push_back(b);
    adj[b].push_back(a);
    result.total_weight += Distance(positions[a], positions[b]);
  }
  std::vector<int> parents(n, Topology::kNoParent);
  std::vector<char> seen(n, 0);
  seen[0] = 1;
  std::deque<int> queue{0};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj[u]) {
      if (seen[v]) continue;
      seen[v] = 1;
      parents[v] = u;
      queue.push_back(v);
    }
  }
  auto topo = Topology::FromParents(std::move(parents));
  if (!topo.ok()) return topo.status();
  topo.value().set_positions(positions);
  result.topology = std::move(topo.value());
  return result;
}

}  // namespace net
}  // namespace prospector
