#ifndef PROSPECTOR_NET_FAILURE_H_
#define PROSPECTOR_NET_FAILURE_H_

#include <vector>

namespace prospector {
namespace net {

/// Transient-failure model of Section 4.4.
///
/// Each tree edge fails independently per message with some probability.
/// The reliable communication protocol then re-routes the message around
/// the failed link, costing `reroute_cost_factor` times the normal message
/// energy. Planners fold this in by inflating each edge's expected cost
/// (ExpectedCostFactor); the simulator draws actual failures per message.
struct FailureModel {
  /// Per-edge failure probability, indexed by child node id. Empty means
  /// a failure-free network. Missing entries default to 0.
  std::vector<double> edge_failure_prob;
  /// Cost multiplier of a re-routed message relative to a direct one.
  double reroute_cost_factor = 2.0;

  bool enabled() const { return !edge_failure_prob.empty(); }

  double ProbabilityFor(int child_edge) const {
    if (child_edge < 0 ||
        child_edge >= static_cast<int>(edge_failure_prob.size())) {
      return 0.0;
    }
    return edge_failure_prob[child_edge];
  }

  /// Expected multiplicative cost inflation of the edge:
  /// (1 - p) * 1 + p * reroute_cost_factor.
  double ExpectedCostFactor(int child_edge) const {
    const double p = ProbabilityFor(child_edge);
    return 1.0 + p * (reroute_cost_factor - 1.0);
  }
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_FAILURE_H_
