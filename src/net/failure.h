#ifndef PROSPECTOR_NET_FAILURE_H_
#define PROSPECTOR_NET_FAILURE_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace prospector {
namespace net {

/// Transient-failure model of Section 4.4.
///
/// Each tree edge fails independently per message with some probability.
/// The reliable communication protocol then re-routes the message around
/// the failed link, costing `reroute_cost_factor` times the normal message
/// energy. Planners fold this in by inflating each edge's expected cost
/// (ExpectedCostFactor); the simulator draws actual failures per message.
///
/// `edge_failure_prob` is indexed by child node id, with two valid shapes:
///  * one entry per node — per-edge probabilities, or
///  * exactly one entry — a scalar broadcast to every edge (Uniform()).
/// Anything in between is a configuration error: it used to produce a
/// silent failure-free tail, which is exactly the kind of bug a robustness
/// study must not mask. NetworkSimulator rejects such models at
/// construction (Validate()).
struct FailureModel {
  /// Per-edge failure probability (or a single broadcast scalar). Empty
  /// means a failure-free network.
  std::vector<double> edge_failure_prob;
  /// Cost multiplier of a re-routed message relative to a direct one.
  double reroute_cost_factor = 2.0;

  /// Every edge fails with probability `p` (documented scalar broadcast).
  static FailureModel Uniform(double p, double reroute_cost_factor = 2.0) {
    FailureModel f;
    f.edge_failure_prob.assign(1, p);
    f.reroute_cost_factor = reroute_cost_factor;
    return f;
  }

  bool enabled() const { return !edge_failure_prob.empty(); }

  double ProbabilityFor(int child_edge) const {
    if (edge_failure_prob.empty() || child_edge < 0) return 0.0;
    if (edge_failure_prob.size() == 1) return edge_failure_prob[0];
    if (child_edge >= static_cast<int>(edge_failure_prob.size())) return 0.0;
    return edge_failure_prob[child_edge];
  }

  /// Expected multiplicative cost inflation of the edge:
  /// (1 - p) * 1 + p * reroute_cost_factor.
  double ExpectedCostFactor(int child_edge) const {
    const double p = ProbabilityFor(child_edge);
    return 1.0 + p * (reroute_cost_factor - 1.0);
  }

  /// Checks the model against a deployment of `num_nodes` nodes: when
  /// enabled, the probability vector must either broadcast a scalar
  /// (size 1) or cover every node, and every entry must be in [0, 1].
  Status Validate(int num_nodes) const {
    if (!enabled()) return Status::OK();
    const int size = static_cast<int>(edge_failure_prob.size());
    if (size != 1 && size < num_nodes) {
      return Status::InvalidArgument(
          "FailureModel covers " + std::to_string(size) + " of " +
          std::to_string(num_nodes) +
          " nodes; use one entry per node or a single broadcast scalar");
    }
    for (double p : edge_failure_prob) {
      if (p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "edge failure probability out of [0, 1]: " + std::to_string(p));
      }
    }
    return Status::OK();
  }
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_FAILURE_H_
