#ifndef PROSPECTOR_NET_MST_H_
#define PROSPECTOR_NET_MST_H_

#include <vector>

#include "src/net/topology.h"
#include "src/util/status.h"

namespace prospector {
namespace net {

/// Distributed minimum-spanning-tree construction over the radio graph —
/// the technique the paper cites for building and maintaining the routing
/// tree (Gallager, Humblet, Spira [5]). We implement the synchronous
/// fragment-merging skeleton of GHS (equivalently, distributed Borůvka):
/// every fragment finds its minimum-weight outgoing edge each round and
/// fragments merge along them, finishing in O(log n) rounds. Edge weights
/// are link distances with a lexicographic (distance, min id, max id)
/// tie-break, so the MST is unique and the result is checkable against a
/// centralized Kruskal run (see the tests).
///
/// Message accounting follows the protocol's shape: each round every node
/// probes its incident candidate edges (one test/reject exchange each),
/// fragments convergecast their local minima and broadcast the chosen
/// merge edge (two messages per fragment node).
struct DistributedMstResult {
  /// The MST rooted at node 0.
  Topology topology;
  /// Total protocol messages exchanged during construction.
  int64_t messages = 0;
  /// Synchronous merge rounds until a single fragment remained.
  int rounds = 0;
  /// Sum of tree edge lengths (meters) — the MST objective.
  double total_weight = 0.0;
};

/// Runs the construction over nodes at `positions` with the given radio
/// range. Fails with FailedPrecondition if the radio graph is
/// disconnected.
Result<DistributedMstResult> BuildDistributedMst(
    const std::vector<Point>& positions, double radio_range);

/// Centralized reference: Kruskal over the same radio graph and tie-break
/// order; returns the MST edge list as (min id, max id) pairs sorted
/// lexicographically. Used to validate the distributed construction.
Result<std::vector<std::pair<int, int>>> KruskalReference(
    const std::vector<Point>& positions, double radio_range);

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_MST_H_
