#ifndef PROSPECTOR_NET_ENERGY_MODEL_H_
#define PROSPECTOR_NET_ENERGY_MODEL_H_

namespace prospector {
namespace net {

/// Communication energy model of Section 2.
///
/// The total energy (sender + receiver) of a unicast message carrying `s`
/// bytes of content is
///
///     cost(s) = c_m + c_b * s,
///
/// where c_m is a fixed per-message cost (reliable-protocol handshake +
/// header) and c_b a per-byte cost derived from the radio's send/receive
/// power and byte rate:  c_b = (P_send + P_recv) / byte_rate.
///
/// Defaults approximate a Crossbow MICA2 mote (CC1000 radio): sending at
/// ~12 mJ/s and receiving at ~6.9 mJ/s over ~12800 bytes/s gives
/// c_b = (12 + 6.9) / 12800 ~= 0.0015 mJ/byte — the one constant that
/// survives legibly in the available copy of the paper. The remaining
/// constants are chosen to preserve the paper's qualitative regime and are
/// configurable:
///  * c_m = 0.2 mJ — "high compared with c_b" (equivalent to >100 bytes),
///    which is what motivates approximate plans visiting node subsets;
///  * 20 bytes per transported value (2-byte ADC reading + node id +
///    routing/provenance headers), i.e. ~0.03 mJ per value-hop, making
///    value transport a meaningful fraction of message cost — required
///    for the paper's local-filtering results (Figures 5-7) to be
///    reproducible at all.
/// Every experiment records the constants used.
struct EnergyModel {
  double per_message_mj = 0.2;    ///< c_m
  double per_byte_mj = 0.0015;    ///< c_b
  int bytes_per_value = 20;       ///< reading + id + routing headers
  /// Energy of taking one sensor measurement (Section 4.4, "Modeling
  /// Other Costs"). 0 by default — the paper's experiments model radio
  /// only; planners and executors account for it when nonzero ("in order
  /// for the root to acquire a node, the node must acquire a
  /// measurement").
  double acquisition_mj = 0.0;

  /// Energy of one unicast carrying `num_values` readings. A message with
  /// zero values (a request / trigger) still pays the per-message cost.
  double MessageCost(int num_values) const {
    return per_message_mj +
           per_byte_mj * bytes_per_value * static_cast<double>(num_values);
  }

  /// Energy of one unicast carrying `num_values` readings plus
  /// `extra_bytes` of protocol payload (e.g. mop-up range bounds).
  double MessageCostWithExtra(int num_values, int extra_bytes) const {
    return MessageCost(num_values) +
           per_byte_mj * static_cast<double>(extra_bytes);
  }

  /// Energy of a broadcast trigger with an empty body ("re-execute",
  /// Section 2): the sender pays one per-message cost; receivers are
  /// accounted on their own broadcasts as the wave propagates.
  double BroadcastCost() const { return per_message_mj; }

  /// Marginal cost of one additional value on one edge (used by planners).
  double PerValueCost() const {
    return per_byte_mj * static_cast<double>(bytes_per_value);
  }
};

}  // namespace net
}  // namespace prospector

#endif  // PROSPECTOR_NET_ENERGY_MODEL_H_
