#ifndef PROSPECTOR_OBS_TRACE_H_
#define PROSPECTOR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace prospector {
namespace obs {

/// Microseconds on a monotonic (steady) clock since process start-ish.
int64_t MonotonicNowUs();

/// One completed span ("X" event in the Chrome trace format).
struct TraceEvent {
  const char* name = "";      ///< must be a string literal / static storage
  const char* category = "";  ///< ditto
  int tid = 0;                ///< small stable per-thread id
  int depth = 0;              ///< nesting depth at open time (0 = top level)
  int64_t ts_us = 0;          ///< open timestamp
  int64_t dur_us = 0;
};

/// Process-wide span collector. Disabled by default: when disabled, a
/// ScopedSpan costs one relaxed atomic load and nothing is recorded.
/// Completed spans land in per-thread buffers (no cross-thread contention
/// on the hot path); Drain() merges them, sorted by open time.
class Tracer {
 public:
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a completed span to the calling thread's buffer.
  void Record(const TraceEvent& event);

  /// Merges and clears every thread's buffer. Events are ordered by
  /// (ts_us, tid, depth) so equal-state traces serialize identically.
  std::vector<TraceEvent> Drain();

  /// Drains and writes the spans as a chrome://tracing / Perfetto JSON
  /// object ({"traceEvents": [...]}). Returns false (with a note on
  /// stderr) when the file cannot be written.
  bool WriteChromeTrace(const std::string& path);

  /// Discards all buffered events.
  void Clear() { Drain(); }

  /// Public only so the implementation's thread_local cache can name it.
  struct ThreadBuffer {
    std::mutex mu;  // taken by the owning thread and by Drain()
    std::vector<TraceEvent> events;
    int tid = 0;
  };

 private:
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::mutex mu_;  // guards buffers_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  int next_tid_ = 0;
};

/// RAII span: opens on construction, records on destruction when the
/// global tracer was enabled at open time. Nesting depth is tracked
/// per thread, so sibling and child spans reconstruct correctly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "prospector");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Nesting depth of the innermost open span on this thread (0 = none);
  /// exposed for tests.
  static int CurrentDepth();

 private:
  const char* name_;
  const char* category_;
  int64_t start_us_ = 0;
  int depth_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace prospector

#endif  // PROSPECTOR_OBS_TRACE_H_
