#include "src/obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace prospector {
namespace obs {
namespace {

thread_local FlightRecorder::ThreadBuffer* tl_flight_buffer = nullptr;

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* FlightKindName(FlightKind kind) {
  switch (kind) {
    case FlightKind::kPlanInstall:
      return "plan_install";
    case FlightKind::kReplan:
      return "replan";
    case FlightKind::kHeal:
      return "heal";
    case FlightKind::kGuardReject:
      return "guard_reject";
    case FlightKind::kFold:
      return "fold";
    case FlightKind::kAudit:
      return "audit";
    case FlightKind::kFaultInject:
      return "fault_inject";
    case FlightKind::kNote:
      return "note";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::ThreadBuffer* FlightRecorder::BufferForThisThread() {
  if (tl_flight_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    // Buffers are never deallocated (Clear() empties them in place), so
    // the cached pointer stays valid for the thread's lifetime.
    tl_flight_buffer = buffers_.back().get();
  }
  return tl_flight_buffer;
}

void FlightRecorder::Record(FlightKind kind, const char* site, int query_id,
                            double a, double b) {
  ThreadBuffer* buf = BufferForThisThread();
  const size_t cap = capacity();
  std::lock_guard<std::mutex> lock(buf->mu);
  FlightEvent ev;
  ev.kind = kind;
  ev.epoch = epoch();
  ev.site = site;
  ev.query_id = query_id;
  ev.a = a;
  ev.b = b;
  ev.seq = buf->next_seq++;
  buf->events.push_back(ev);
  while (buf->events.size() > cap) {
    buf->events.pop_front();
    ++buf->dropped;
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              if (x.epoch != y.epoch) return x.epoch < y.epoch;
              const int c = std::strcmp(x.site, y.site);
              if (c != 0) return c < 0;
              return x.seq < y.seq;
            });
  return out;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
    buf->next_seq = 0;
    buf->dropped = 0;
  }
  epoch_.store(-1, std::memory_order_relaxed);
}

int64_t FlightRecorder::dropped() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

void FlightRecorder::SetCapacity(size_t per_thread_events) {
  if (per_thread_events == 0) per_thread_events = 1;
  capacity_.store(per_thread_events, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    while (buf->events.size() > per_thread_events) {
      buf->events.pop_front();
      ++buf->dropped;
    }
  }
}

std::string FlightRecorder::DumpJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  std::string out = "{\"schema_version\": 1";
  out += ", \"dropped\": " + std::to_string(dropped());
  out +=
      ", \"columns\": [\"epoch\", \"site\", \"kind\", \"seq\", \"query\", "
      "\"a\", \"b\"]";
  out += ", \"events\": [";
  bool first = true;
  for (const FlightEvent& ev : events) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(ev.epoch);
    out += ", \"";
    out += ev.site;
    out += "\", \"";
    out += FlightKindName(ev.kind);
    out += "\", " + std::to_string(ev.seq);
    out += ", " + std::to_string(ev.query_id);
    out += ", " + FormatDouble(ev.a);
    out += ", " + FormatDouble(ev.b);
    out += "]";
  }
  out += "]}";
  return out;
}

bool FlightRecorder::DumpToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "flight recorder: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string json = DumpJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "flight recorder: short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace obs
}  // namespace prospector
