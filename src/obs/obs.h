#ifndef PROSPECTOR_OBS_OBS_H_
#define PROSPECTOR_OBS_OBS_H_

/// Umbrella header for the observability layer plus the instrumentation
/// macros every other layer uses at its call sites.
///
/// The macros are the compile-time gate: configuring with
/// `-DPROSPECTOR_OBS=OFF` defines PROSPECTOR_OBS_DISABLED and every macro
/// expands to nothing — zero instructions on the hot paths, which is what
/// lets the instrumentation stay wired in permanently. The classes behind
/// them (MetricsRegistry, Tracer, the audit helpers) are always compiled,
/// so tooling and tests can use them directly in either mode.

#include "src/obs/audit.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#ifdef PROSPECTOR_OBS_DISABLED

#define PROSPECTOR_SPAN(name) \
  do {                        \
  } while (0)
#define PROSPECTOR_COUNTER_ADD(name, delta) \
  do {                                      \
  } while (0)
#define PROSPECTOR_GAUGE_SET(name, value) \
  do {                                    \
  } while (0)
#define PROSPECTOR_HISTOGRAM_RECORD(name, value) \
  do {                                           \
  } while (0)
#define PROSPECTOR_AUDIT_ENERGY(label, claimed_mj, measured_mj) \
  do {                                                          \
  } while (0)
#define PROSPECTOR_FLIGHT(kind, site, query_id, a, b) \
  do {                                                \
  } while (0)
#define PROSPECTOR_FLIGHT_EPOCH(epoch) \
  do {                                 \
  } while (0)

#else  // observability compiled in (the default)

#define PROSPECTOR_OBS_CONCAT_INNER_(a, b) a##b
#define PROSPECTOR_OBS_CONCAT_(a, b) PROSPECTOR_OBS_CONCAT_INNER_(a, b)

/// Scoped trace span covering the rest of the enclosing block. `name`
/// must be a string literal (stored by pointer, not copied).
#define PROSPECTOR_SPAN(name)                                 \
  ::prospector::obs::ScopedSpan PROSPECTOR_OBS_CONCAT_(       \
      prospector_obs_span_, __LINE__)(name)

// Each call site interns its metric once (registry pointers are stable
// for the process lifetime; Reset() zeroes values, not registrations) and
// caches the pointer in a function-local static, so the steady-state cost
// is one relaxed atomic op, not a locked map lookup.
#define PROSPECTOR_COUNTER_ADD(name, delta)                              \
  do {                                                                   \
    static ::prospector::obs::Counter* const prospector_obs_counter_ =   \
        ::prospector::obs::MetricsRegistry::Global().counter(name);      \
    prospector_obs_counter_->Add(delta);                                 \
  } while (0)
#define PROSPECTOR_GAUGE_SET(name, value)                                \
  do {                                                                   \
    static ::prospector::obs::Gauge* const prospector_obs_gauge_ =       \
        ::prospector::obs::MetricsRegistry::Global().gauge(name);        \
    prospector_obs_gauge_->Set(value);                                   \
  } while (0)
#define PROSPECTOR_HISTOGRAM_RECORD(name, value)                          \
  do {                                                                    \
    static ::prospector::obs::Histogram* const prospector_obs_histogram_ \
        = ::prospector::obs::MetricsRegistry::Global().histogram(name);  \
    prospector_obs_histogram_->Record(value);                            \
  } while (0)

/// Cross-checks an executor-side energy total against the simulator's
/// independent ledger; counts, logs, and (under fail-fast) aborts on
/// divergence.
#define PROSPECTOR_AUDIT_ENERGY(label, claimed_mj, measured_mj) \
  ::prospector::obs::AuditEnergy(label, claimed_mj, measured_mj)

/// Appends one structured event to the flight recorder's black box.
/// `kind` is a FlightKind member name (e.g. kReplan); `site` must be a
/// string literal. Determinism contract: only call from serial code.
#define PROSPECTOR_FLIGHT(kind, site, query_id, a, b)      \
  ::prospector::obs::FlightRecorder::Global().Record(      \
      ::prospector::obs::FlightKind::kind, site, query_id, \
      static_cast<double>(a), static_cast<double>(b))

/// Stamps the ambient epoch onto subsequent flight events. The engine
/// calls this once at the top of every Tick.
#define PROSPECTOR_FLIGHT_EPOCH(epoch) \
  ::prospector::obs::FlightRecorder::Global().SetEpoch(epoch)

#endif  // PROSPECTOR_OBS_DISABLED

#endif  // PROSPECTOR_OBS_OBS_H_
