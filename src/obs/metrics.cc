#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace.h"

namespace prospector {
namespace obs {
namespace {

int BucketFor(double v) {
  if (!(v > 1.0)) return 0;  // <= 1, zero, negative, NaN
  const int b = static_cast<int>(std::ceil(std::log2(v)));
  return std::min(b, Histogram::kNumBuckets - 1);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  out->append(name);  // metric names are plain dotted identifiers
  out->append("\": ");
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Histogram::Record(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.buckets.empty()) data_.buckets.assign(kNumBuckets, 0);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  // Neumaier-compensated summation: the branch keeps the low-order bits
  // of whichever operand is smaller, so long soaks (millions of records)
  // report the same sum regardless of how the run was chunked.
  const double t = data_.sum + v;
  if (std::abs(data_.sum) >= std::abs(v)) {
    sum_compensation_ += (data_.sum - t) + v;
  } else {
    sum_compensation_ += (v - t) + data_.sum;
  }
  data_.sum = t;
  ++data_.buckets[BucketFor(v)];
}

Histogram::Data Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Data out = data_;
  out.sum = data_.sum + sum_compensation_;
  if (out.buckets.empty()) out.buckets.assign(kNumBuckets, 0);
  return out;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = Data{};
  sum_compensation_ = 0.0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(value);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    out += FormatDouble(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + FormatDouble(h.sum);
    out += ", \"min\": " + FormatDouble(h.count > 0 ? h.min : 0.0);
    out += ", \"max\": " + FormatDouble(h.count > 0 ? h.max : 0.0);
    out += "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->Snapshot());
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::ResetAll() {
  Reset();
  // Only the global registry owns the global flight recorder / tracer;
  // resetting a test-local registry must not wipe another component's
  // black box.
  if (this == &Global()) {
    FlightRecorder::Global().Clear();
    Tracer::Global().Clear();
  }
}

}  // namespace obs
}  // namespace prospector
