#ifndef PROSPECTOR_OBS_METRICS_H_
#define PROSPECTOR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace prospector {
namespace obs {

/// Monotonically increasing integer metric. Increments are lock-free and
/// may come from any thread; because integer addition is associative, the
/// total is identical for every interleaving — the property that keeps
/// registry snapshots bit-identical across planner thread counts.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins double metric. Determinism contract (DESIGN.md,
/// "Observability"): set gauges only from serial code, never from inside a
/// ParallelFor body, so the surviving value does not depend on scheduling.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(ToBits(v), std::memory_order_relaxed);
  }
  double value() const { return FromBits(bits_.load(std::memory_order_relaxed)); }
  void Reset() { Set(0.0); }

 private:
  static uint64_t ToBits(double v) {
    uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<uint64_t> bits_{0};
};

/// Distribution metric with base-2 exponential buckets. Bucket counts are
/// interleaving-independent; `sum` is a compensated (Kahan/Neumaier) float
/// accumulation, so chaos-length soaks do not drift, but (same contract as
/// Gauge) record histograms only from serial code when bit-identical
/// snapshots matter.
class Histogram {
 public:
  /// Bucket b holds values in (2^(b-1), 2^b]; bucket 0 holds v <= 1
  /// (including zero and negatives, which are clamped).
  static constexpr int kNumBuckets = 64;

  struct Data {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;
    std::vector<int64_t> buckets;  ///< size kNumBuckets
  };

  void Record(double v);
  Data Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  Data data_;
  // Neumaier compensation term for `sum`: Snapshot() reports
  // data_.sum + sum_compensation_, which keeps million-sample soaks exact
  // where a naive running sum drifts by ~1e3 ulps.
  double sum_compensation_ = 0.0;
};

/// One deterministic view of the registry: every metric, sorted by name
/// (the registry stores them in an ordered map, so two snapshots of equal
/// metric state serialize identically regardless of registration order or
/// thread count).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Data>> histograms;

  /// Compact single-object JSON, e.g. for appending to bench artifacts.
  std::string ToJson() const;
};

/// Thread-safe named-metric registry. Lookup interns the metric on first
/// use and returns a stable pointer; call sites may cache it. Metric names
/// are dotted paths, lowest-frequency word first: `layer.subsystem.what`
/// (e.g. "planner.lp.phase2_pivots", "session.watchdog.rebuilds").
class MetricsRegistry {
 public:
  /// The process-wide registry used by the PROSPECTOR_* macros.
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric but keeps registrations (pointers stay valid).
  void Reset();
  /// Reset() plus, on the global registry, clearing the flight recorder
  /// and the tracer: one call returning the whole observability layer to
  /// its initial state, so metrics from a retired engine cannot bleed
  /// into the next one's snapshots.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace prospector

#endif  // PROSPECTOR_OBS_METRICS_H_
