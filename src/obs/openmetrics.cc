#include "src/obs/openmetrics.h"

#include <cmath>
#include <cstdio>

namespace prospector {
namespace obs {
namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool NameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

void AppendFamily(std::string* out, const std::string& name,
                  const char* type) {
  out->append("# TYPE ");
  out->append(name);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string OpenMetricsName(const std::string& dotted) {
  std::string out = "prospector_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) out.push_back(NameChar(c) ? c : '_');
  return out;
}

std::string ToOpenMetricsBody(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [dotted, value] : snapshot.counters) {
    const std::string name = OpenMetricsName(dotted);
    AppendFamily(&out, name, "counter");
    out += name + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [dotted, value] : snapshot.gauges) {
    const std::string name = OpenMetricsName(dotted);
    AppendFamily(&out, name, "gauge");
    out += name + " " + FormatDouble(value) + "\n";
  }
  for (const auto& [dotted, h] : snapshot.histograms) {
    const std::string name = OpenMetricsName(dotted);
    AppendFamily(&out, name, "histogram");
    int highest = -1;
    for (int b = 0; b < static_cast<int>(h.buckets.size()); ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    int64_t cumulative = 0;
    for (int b = 0; b <= highest; ++b) {
      cumulative += h.buckets[b];
      // Bucket b holds values in (2^(b-1), 2^b]; the le boundary is 2^b.
      out += name + "_bucket{le=\"" + FormatDouble(std::ldexp(1.0, b)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
    out += name + "_sum " + FormatDouble(h.sum) + "\n";
  }
  return out;
}

std::string ToOpenMetrics(const MetricsSnapshot& snapshot) {
  return ToOpenMetricsBody(snapshot) + "# EOF\n";
}

}  // namespace obs
}  // namespace prospector
