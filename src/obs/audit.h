#ifndef PROSPECTOR_OBS_AUDIT_H_
#define PROSPECTOR_OBS_AUDIT_H_

#include <string>

namespace prospector {
namespace obs {

/// Outcome of one energy ledger cross-check.
struct EnergyAuditResult {
  double claimed_mj = 0.0;   ///< what the executor/session accumulated
  double measured_mj = 0.0;  ///< the simulator's independent ledger delta
  double divergence_mj = 0.0;
  bool ok = true;
};

/// Pure comparison: claimed and measured sum the exact same per-message
/// charges (in possibly different orders), so they must agree to float
/// round-off. `ok` iff |claimed - measured| <= abs_tol + rel_tol*|measured|.
EnergyAuditResult CheckEnergyLedger(double claimed_mj, double measured_mj,
                                    double abs_tol = 1e-6,
                                    double rel_tol = 1e-9);

/// When set, a failed AuditEnergy() aborts the process instead of just
/// counting and logging — the mode CI scenarios run under, so a cost-model
/// regression cannot hide inside an averaged benchmark table.
void SetEnergyAuditFailFast(bool fail_fast);
bool EnergyAuditFailFast();

/// Full audit: checks, bumps the `audit.energy.checks` /
/// `audit.energy.failures` counters, logs a diagnostic on divergence
/// (and aborts under fail-fast). `label` names the call site, e.g.
/// "executor.collect". Returns whether the ledgers agreed.
bool AuditEnergy(const char* label, double claimed_mj, double measured_mj);

}  // namespace obs
}  // namespace prospector

#endif  // PROSPECTOR_OBS_AUDIT_H_
