#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace prospector {
namespace obs {
namespace {

thread_local Tracer::ThreadBuffer* tl_buffer = nullptr;
thread_local int tl_depth = 0;

}  // namespace

int64_t MonotonicNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  if (tl_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->tid = next_tid_++;
    // Buffers are never deallocated (only their events move out), so the
    // cached pointer stays valid for the thread's lifetime.
    tl_buffer = buffers_.back().get();
  }
  return tl_buffer;
}

void Tracer::Record(const TraceEvent& event) {
  ThreadBuffer* buf = BufferForThisThread();
  TraceEvent e = event;
  e.tid = buf->tid;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(e);
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
    buf->events.clear();
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.depth < b.depth;
  });
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  const std::vector<TraceEvent> events = Drain();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\"traceEvents\": [\n");
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                 "\"pid\": 1, \"tid\": %d, \"ts\": %lld, \"dur\": %lld}%s\n",
                 e.name, e.category, e.tid,
                 static_cast<long long>(e.ts_us),
                 static_cast<long long>(e.dur_us),
                 i + 1 < events.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  return true;
}

ScopedSpan::ScopedSpan(const char* name, const char* category)
    : name_(name), category_(category) {
  // Enablement is latched at open so a span straddling Enable()/Disable()
  // cannot record a half-defined duration.
  if (!Tracer::Global().enabled()) return;
  active_ = true;
  depth_ = tl_depth++;
  start_us_ = MonotonicNowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --tl_depth;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.depth = depth_;
  e.ts_us = start_us_;
  e.dur_us = MonotonicNowUs() - start_us_;
  Tracer::Global().Record(e);
}

int ScopedSpan::CurrentDepth() { return tl_depth; }

}  // namespace obs
}  // namespace prospector
