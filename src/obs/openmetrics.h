#ifndef PROSPECTOR_OBS_OPENMETRICS_H_
#define PROSPECTOR_OBS_OPENMETRICS_H_

#include <string>

#include "src/obs/metrics.h"

namespace prospector {
namespace obs {

/// Rewrites a dotted metric name ("session.replans") into an OpenMetrics
/// metric name with the exporter prefix ("prospector_session_replans").
/// Any character outside [a-zA-Z0-9_] becomes '_'.
std::string OpenMetricsName(const std::string& dotted);

/// Renders a snapshot as OpenMetrics text WITHOUT the trailing "# EOF"
/// terminator, so callers can append more metric families (e.g. the
/// per-query health series) before closing the exposition. Counters
/// render as `<name>_total`, gauges as gauges, histograms as cumulative
/// `<name>_bucket{le="..."}` series (base-2 boundaries, up to the highest
/// non-empty bucket, then `+Inf`) plus `_count` and `_sum`. Families are
/// emitted in name order — the snapshot is already sorted — so equal
/// metric state renders byte-identically.
std::string ToOpenMetricsBody(const MetricsSnapshot& snapshot);

/// ToOpenMetricsBody() plus the "# EOF\n" terminator: a complete,
/// parseable OpenMetrics exposition.
std::string ToOpenMetrics(const MetricsSnapshot& snapshot);

}  // namespace obs
}  // namespace prospector

#endif  // PROSPECTOR_OBS_OPENMETRICS_H_
