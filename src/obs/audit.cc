#include "src/obs/audit.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace prospector {
namespace obs {
namespace {

std::atomic<bool> fail_fast{false};

}  // namespace

EnergyAuditResult CheckEnergyLedger(double claimed_mj, double measured_mj,
                                    double abs_tol, double rel_tol) {
  EnergyAuditResult out;
  out.claimed_mj = claimed_mj;
  out.measured_mj = measured_mj;
  out.divergence_mj = claimed_mj - measured_mj;
  const double budget = abs_tol + rel_tol * std::abs(measured_mj);
  // The negated comparison keeps NaN divergences (corrupted ledgers) failing.
  out.ok = !(std::abs(out.divergence_mj) > budget) &&
           !std::isnan(out.divergence_mj);
  return out;
}

void SetEnergyAuditFailFast(bool value) {
  fail_fast.store(value, std::memory_order_relaxed);
}

bool EnergyAuditFailFast() { return fail_fast.load(std::memory_order_relaxed); }

bool AuditEnergy(const char* label, double claimed_mj, double measured_mj) {
  MetricsRegistry::Global().counter("audit.energy.checks")->Increment();
  const EnergyAuditResult r = CheckEnergyLedger(claimed_mj, measured_mj);
  if (r.ok) {
    FlightRecorder::Global().Record(FlightKind::kAudit, "audit.energy.ok",
                                    /*query_id=*/-1, claimed_mj, measured_mj);
    return true;
  }
  MetricsRegistry::Global().counter("audit.energy.failures")->Increment();
  FlightRecorder::Global().Record(FlightKind::kAudit, "audit.energy.failed",
                                  /*query_id=*/-1, claimed_mj, measured_mj);
  std::fprintf(stderr,
               "ENERGY LEDGER AUDIT FAILED [%s]: claimed %.9f mJ vs "
               "simulator ledger %.9f mJ (divergence %.3e mJ)\n",
               label, r.claimed_mj, r.measured_mj, r.divergence_mj);
  if (EnergyAuditFailFast()) {
    // Ship the black box before dying: the epochs leading up to a ledger
    // divergence are exactly what a postmortem needs.
    const char* path = "prospector_flight_audit_failure.json";
    FlightRecorder::Global().DumpToFile(path);
    std::fprintf(stderr, "flight recorder dumped to %s\n", path);
    std::abort();
  }
  return false;
}

}  // namespace obs
}  // namespace prospector
