#ifndef PROSPECTOR_OBS_FLIGHT_RECORDER_H_
#define PROSPECTOR_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace prospector {
namespace obs {

/// What a flight event witnessed. Keep this list in sync with
/// FlightKindName(); new kinds go at the end (the numeric value is part of
/// dumped artifacts only via its name, never its integer).
enum class FlightKind : uint8_t {
  kPlanInstall = 0,  ///< a plan was disseminated and charged
  kReplan,           ///< PlanManager swapped the installed plan
  kHeal,             ///< watchdog rebuilt the topology around dead subtrees
  kGuardReject,      ///< TransportGuard refused an arrival (stale/corrupt)
  kFold,             ///< TransportGuard folded/deferred/dropped a duplicate
  kAudit,            ///< energy-ledger cross-check ran
  kFaultInject,      ///< injector applied a scripted fault / adversary fired
  kNote,             ///< engine lifecycle breadcrumbs (admit, retire, health)
};

const char* FlightKindName(FlightKind kind);

/// One structured black-box event. No wall-clock anywhere: ordering is
/// (epoch, site, seq), all deterministic, so a replayed run dumps a
/// byte-identical stream.
struct FlightEvent {
  FlightKind kind = FlightKind::kNote;
  int epoch = -1;          ///< ambient engine epoch (-1 = before first tick)
  const char* site = "";   ///< call-site id; must be a string literal
  int query_id = -1;       ///< -1 when the event is not query-scoped
  double a = 0.0;          ///< site-specific payload (documented per site)
  double b = 0.0;
  int64_t seq = 0;         ///< per-thread-buffer monotonic sequence
};

/// Fixed-capacity per-thread ring buffers of FlightEvents — the engine's
/// black box. Recording is wait-free with respect to other threads (each
/// thread appends to its own buffer under an uncontended mutex, same
/// pattern as Tracer); when a buffer is full the oldest event is dropped,
/// so the recorder always holds the most recent window.
///
/// Determinism contract (DESIGN.md, "Flight recorder & health model"):
/// record only from serial engine code — never inside a ParallelFor body —
/// and Snapshot() is merged by (epoch, site, seq), never by wall-clock, so
/// dumps are bit-identical across thread counts and across replays.
class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;  ///< events per thread

  /// The process-wide recorder used by the PROSPECTOR_FLIGHT_* macros.
  static FlightRecorder& Global();

  /// Sets the ambient epoch stamped onto subsequent events. The engine
  /// calls this once at the top of each Tick (serial).
  void SetEpoch(int epoch) { epoch_.store(epoch, std::memory_order_relaxed); }
  int epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Appends one event to the calling thread's ring. `site` must be a
  /// string literal (stored by pointer, not copied).
  void Record(FlightKind kind, const char* site, int query_id, double a,
              double b);

  /// Merged view of every thread's ring, ordered by (epoch, site, seq).
  std::vector<FlightEvent> Snapshot() const;

  /// Drops all buffered events AND resets every per-thread sequence
  /// counter and the ambient epoch to their initial state — required so a
  /// replay inside the same process reproduces the original stream
  /// byte-for-byte.
  void Clear();

  /// Total events overwritten by ring wrap since the last Clear().
  int64_t dropped() const;

  size_t capacity() const { return capacity_.load(std::memory_order_relaxed); }
  /// Applies to events recorded after the call; existing rings are trimmed.
  void SetCapacity(size_t per_thread_events);

  /// Deterministic JSON dump of Snapshot(): {"schema_version", "dropped",
  /// "columns", "events": [[epoch, site, kind, seq, query, a, b], ...]}.
  std::string DumpJson() const;
  /// DumpJson() to a file (trailing newline added). False + stderr note on
  /// IO failure.
  bool DumpToFile(const std::string& path) const;

  /// Public only so the implementation's thread_local cache can name it.
  struct ThreadBuffer {
    std::mutex mu;  // taken by the owning thread and by Snapshot()/Clear()
    std::deque<FlightEvent> events;
    int64_t next_seq = 0;
    int64_t dropped = 0;
  };

 private:
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  // guards buffers_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::atomic<int> epoch_{-1};
  std::atomic<size_t> capacity_{kDefaultCapacity};
};

}  // namespace obs
}  // namespace prospector

#endif  // PROSPECTOR_OBS_FLIGHT_RECORDER_H_
