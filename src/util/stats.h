#ifndef PROSPECTOR_UTIL_STATS_H_
#define PROSPECTOR_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace prospector {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two points.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the indices of the k largest elements of `values`, in descending
/// value order. Ties are broken by lower index first (deterministic).
/// If k >= values.size(), all indices are returned.
inline std::vector<int> TopKIndices(const std::vector<double>& values, int k) {
  std::vector<int> idx(values.size());
  for (size_t i = 0; i < values.size(); ++i) idx[i] = static_cast<int>(i);
  const size_t kk = std::min<size_t>(static_cast<size_t>(std::max(k, 0)),
                                     values.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(kk),
                    idx.end(), [&](int a, int b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  idx.resize(kk);
  return idx;
}

/// Exact quantile of a copy of `values` (linear interpolation). `q` is
/// clamped to [0, 1]; NaN is treated as 0. Without the clamp, a negative
/// `q` would cast to a huge size_t index and read out of bounds.
inline double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  if (!(q > 0.0)) q = 0.0;  // also maps NaN to the minimum
  if (q > 1.0) q = 1.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace prospector

#endif  // PROSPECTOR_UTIL_STATS_H_
