#include "src/util/thread_pool.h"

#include <algorithm>

namespace prospector {
namespace util {
namespace {

thread_local bool t_in_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(num_threads, 1)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  // The calling thread always executes one range itself, so a pool of T
  // threads needs T-1 workers.
  for (int t = 1; t < num_threads_; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = queue_.front();
      queue_.pop_front();
    }
    (*task.body)(task.begin, task.end);
    {
      // Notify while still holding the lock: the caller owns the counter,
      // mutex, and cv on its stack and destroys them the moment it sees
      // outstanding == 0, so an unlocked notify could touch a dead cv.
      std::lock_guard<std::mutex> lock(*task.done_mutex);
      --*task.outstanding;
      task.done_cv->notify_one();
    }
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int, int)>& body) {
  if (n <= 0) return;
  if (!ShouldParallelize(n)) {
    body(0, n);
    return;
  }

  // Contiguous static split; the partition depends only on n and the pool
  // size, never on runtime timing.
  const int parts = std::min(num_threads_, n);
  const int base = n / parts;
  const int extra = n % parts;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  int outstanding = parts - 1;  // the caller runs part 0

  int begin = base + (0 < extra ? 1 : 0);  // end of part 0
  const int first_end = begin;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int p = 1; p < parts; ++p) {
      const int len = base + (p < extra ? 1 : 0);
      queue_.push_back(
          Task{&body, begin, begin + len, &done_mutex, &done_cv, &outstanding});
      begin += len;
    }
  }
  work_cv_.notify_all();

  body(0, first_end);

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&outstanding] { return outstanding == 0; });
}

}  // namespace util
}  // namespace prospector
