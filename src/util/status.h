#ifndef PROSPECTOR_UTIL_STATUS_H_
#define PROSPECTOR_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace prospector {

/// Error taxonomy used across the library. Modeled after the RocksDB/Arrow
/// convention: functions that can fail return a Status (or Result<T>), and
/// callers must check before using the payload.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

/// Lightweight status object: a code plus a human-readable message.
/// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>" — for logs and test failure output.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status. The value accessors abort
/// on misuse in debug builds; callers are expected to check ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}         // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(value_);
  }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

/// Propagate a non-OK status to the caller.
#define PROSPECTOR_RETURN_IF_ERROR(expr)        \
  do {                                          \
    ::prospector::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (false)

}  // namespace prospector

#endif  // PROSPECTOR_UTIL_STATUS_H_
