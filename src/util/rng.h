#ifndef PROSPECTOR_UTIL_RNG_H_
#define PROSPECTOR_UTIL_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace prospector {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library (node placement, value
/// generation, failure injection) draws from an explicitly-seeded Rng so
/// that experiments and tests are reproducible bit-for-bit across runs and
/// platforms. We deliberately avoid std::default_random_engine and the
/// std distributions, whose outputs are implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the ranges we use (n << 2^64), but we debias anyway.
    uint64_t threshold = (-n) % n;
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (cached second deviate).
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 0.0);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i)));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// component its own stream while keeping a single top-level seed.
  Rng Fork() { return Rng(NextUint64()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace prospector

#endif  // PROSPECTOR_UTIL_RNG_H_
