#ifndef PROSPECTOR_UTIL_THREAD_POOL_H_
#define PROSPECTOR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prospector {
namespace util {

/// A fixed-size worker pool for data-parallel loops over index ranges.
///
/// Design goals, in order:
///   1. *Determinism.* ParallelReduce combines per-index results in index
///      order, so the outcome is bit-identical to the sequential loop for
///      any thread count — including non-associative combiners such as
///      floating-point addition. Parallelism changes wall time, never
///      results.
///   2. *Graceful degradation.* A pool built with `num_threads <= 1` spawns
///      no workers and runs every loop inline, exactly preserving the
///      single-threaded code path. Calls made from inside a worker (nested
///      parallelism) also run inline, so composing parallel stages cannot
///      deadlock the pool.
///   3. *Reuse.* Workers are spawned once and parked on a condition
///      variable between loops; dispatch costs one lock + notify, so the
///      pool is cheap enough to use for per-plan scoring loops.
class ThreadPool {
 public:
  /// `num_threads <= 1` creates an inline (no worker) pool; `num_threads
  /// == 0` is clamped to 1 rather than auto-detecting, so callers must opt
  /// in to parallelism explicitly.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// A sensible thread count for throughput-oriented callers (benches):
  /// the hardware concurrency, at least 1.
  static int HardwareThreads();

  /// True when the calling thread is one of this process's pool workers
  /// (any pool); used to run nested parallel loops inline.
  static bool InWorkerThread();

  /// Invokes `body(begin, end)` over disjoint sub-ranges covering [0, n)
  /// and blocks until all sub-ranges finished. Ranges are contiguous and
  /// ascending; the caller's thread executes the first range itself. The
  /// body must only write to per-index slots (no unsynchronized shared
  /// state).
  void ParallelFor(int n, const std::function<void(int, int)>& body);

  /// Deterministic map/reduce: conceptually
  ///   acc = init; for (i = 0; i < n; ++i) acc = combine(acc, map(i));
  /// `map(i)` runs in parallel; `combine` runs sequentially on the calling
  /// thread in ascending index order, making the result bit-identical to
  /// the sequential loop regardless of thread count.
  template <typename T, typename MapFn, typename CombineFn>
  T ParallelReduce(int n, T init, const MapFn& map, const CombineFn& combine) {
    if (n <= 0) return init;
    if (!ShouldParallelize(n)) {
      T acc = std::move(init);
      for (int i = 0; i < n; ++i) acc = combine(std::move(acc), map(i));
      return acc;
    }
    std::vector<T> partial(static_cast<size_t>(n));
    ParallelFor(n, [&](int begin, int end) {
      for (int i = begin; i < end; ++i) partial[static_cast<size_t>(i)] = map(i);
    });
    T acc = std::move(init);
    for (int i = 0; i < n; ++i) {
      acc = combine(std::move(acc), std::move(partial[static_cast<size_t>(i)]));
    }
    return acc;
  }

 private:
  struct Task {
    std::function<void(int, int)> const* body = nullptr;
    int begin = 0;
    int end = 0;
    std::mutex* done_mutex = nullptr;
    std::condition_variable* done_cv = nullptr;
    int* outstanding = nullptr;
  };

  bool ShouldParallelize(int n) const {
    return num_threads_ > 1 && n > 1 && !InWorkerThread();
  }

  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;
};

}  // namespace util
}  // namespace prospector

#endif  // PROSPECTOR_UTIL_THREAD_POOL_H_
