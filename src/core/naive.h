#ifndef PROSPECTOR_CORE_NAIVE_H_
#define PROSPECTOR_CORE_NAIVE_H_

#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/reading.h"
#include "src/net/simulator.h"

namespace prospector {
namespace core {

/// NAIVE-k (Section 2): one bottom-up pass where every node forwards the
/// top min(k, subtree size) values of its subtree. Minimum message count,
/// large messages, always exact. Execute with CollectionExecutor.
QueryPlan MakeNaiveKPlan(const net::Topology& topology, int k);

/// Result of the pipelined NAIVE-1 execution.
struct Naive1Result {
  std::vector<Reading> answer;  ///< exact top-k, best-first
  double energy_mj = 0.0;
  int messages = 0;
};

/// NAIVE-1 (Section 2): pipelined exact top-k. Each node keeps a heap of
/// its own value plus the most recent value from each child, and serves
/// its parent one value per request. Every request and every one-value
/// response is a separate message, so the per-message overhead dominates.
///
/// Message accounting: a request is an empty-body unicast down the edge; a
/// response is a unicast carrying one value, or an empty "exhausted" reply
/// after which the parent stops asking that child.
class Naive1Executor {
 public:
  static Naive1Result Execute(const std::vector<double>& truth, int k,
                              net::NetworkSimulator* sim);
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_NAIVE_H_
