#include "src/core/session.h"

namespace prospector {
namespace core {
namespace {

std::unique_ptr<Planner> MakePlanner(const SessionOptions& options) {
  switch (options.planner) {
    case SessionOptions::PlannerChoice::kGreedy:
      return std::make_unique<GreedyPlanner>();
    case SessionOptions::PlannerChoice::kLpNoFilter:
      return std::make_unique<LpNoFilterPlanner>(options.lp);
    case SessionOptions::PlannerChoice::kLpFilter:
      return std::make_unique<LpFilterPlanner>(options.lp);
  }
  return std::make_unique<LpFilterPlanner>(options.lp);
}

}  // namespace

TopKQuerySession::TopKQuerySession(const net::Topology* topology,
                                   net::EnergyModel energy,
                                   net::FailureModel failures,
                                   SessionOptions options, uint64_t seed)
    : topology_(topology),
      options_(options),
      ctx_{topology, energy, failures},
      sim_(topology, energy, failures, seed),
      samples_(sampling::SampleSet::ForTopK(topology->num_nodes(), options.k,
                                            options.sample_window)),
      planner_(MakePlanner(options)),
      manager_(planner_.get(),
               PlanRequest{options.k, options.energy_budget_mj},
               options.manager),
      rng_(seed ^ 0x5e551011) {}

Result<bool> TopKQuerySession::Replan() {
  auto changed = manager_.MaybeReplan(ctx_, samples_, &sim_);
  if (changed.ok() && *changed) {
    install_energy_ += sim_.TakeStats().total_energy_mj;
  } else {
    sim_.ResetStats();
  }
  return changed;
}

Result<TopKQuerySession::TickResult> TopKQuerySession::Tick(
    const std::vector<double>& truth) {
  if (static_cast<int>(truth.size()) != topology_->num_nodes()) {
    return Status::InvalidArgument("truth vector does not match network size");
  }
  TickResult result;
  const int this_epoch = epoch_++;

  // Bootstrap and exploration epochs: full sweep, then reconsider the plan.
  const bool bootstrap = this_epoch < options_.bootstrap_sweeps;
  const bool explore =
      bootstrap || rng_.Bernoulli(manager_.explore_probability());
  if (explore) {
    result.kind = bootstrap ? TickResult::Kind::kBootstrap
                            : TickResult::Kind::kExplore;
    const double spent = collector_.CollectSample(truth, &sim_, &samples_);
    sampling_energy_ += spent;
    sim_.ResetStats();
    // Reconsider the plan once the window is primed.
    if (this_epoch + 1 >= options_.bootstrap_sweeps) {
      auto changed = Replan();
      if (!changed.ok()) return changed.status();
      result.replanned = *changed;
    }
    result.energy_mj = spent;
    return result;
  }

  if (!manager_.has_plan()) {
    auto changed = Replan();
    if (!changed.ok()) return changed.status();
    result.replanned = *changed;
  }

  // Audit epoch: a proof-backed exact query measuring true accuracy.
  if (options_.audit_every > 0 &&
      ++queries_since_audit_ >= options_.audit_every) {
    queries_since_audit_ = 0;
    result.kind = TickResult::Kind::kAudit;
    auto exact = RunProspectorExact(
        ctx_, samples_, options_.k,
        ProofPlanner::MinimumCost(ctx_) * options_.audit_budget_factor, truth,
        &sim_, options_.lp);
    sim_.ResetStats();
    if (!exact.ok()) return exact.status();
    audit_energy_ += exact->total_energy_mj();
    result.answer = exact->answer;
    result.proven = exact->phase1_proven;
    result.energy_mj = exact->total_energy_mj();
    manager_.ObserveAccuracy(static_cast<double>(exact->phase1_proven) /
                             options_.k);
    return result;
  }

  // Ordinary query epoch.
  result.kind = TickResult::Kind::kQuery;
  ExecutionResult r = CollectionExecutor::Execute(manager_.plan(), truth, &sim_);
  sim_.ResetStats();
  query_energy_ += r.total_energy_mj();
  result.answer = std::move(r.answer);
  result.energy_mj = r.total_energy_mj();
  return result;
}

}  // namespace core
}  // namespace prospector
