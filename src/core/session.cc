#include "src/core/session.h"

#include <algorithm>

#include "src/core/executor.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace prospector {
namespace core {
namespace {

std::unique_ptr<Planner> MakePlanner(const SessionOptions& options) {
  switch (options.planner) {
    case SessionOptions::PlannerChoice::kGreedy:
      return std::make_unique<GreedyPlanner>();
    case SessionOptions::PlannerChoice::kLpNoFilter:
      return std::make_unique<LpNoFilterPlanner>(options.lp);
    case SessionOptions::PlannerChoice::kLpFilter:
      return std::make_unique<LpFilterPlanner>(options.lp);
  }
  return std::make_unique<LpFilterPlanner>(options.lp);
}

}  // namespace

TopKQuerySession::TopKQuerySession(const net::Topology* topology,
                                   net::EnergyModel energy,
                                   net::FailureModel failures,
                                   SessionOptions options, uint64_t seed)
    : topology_(topology),
      options_(options),
      workspace_(options.workspace),
      ctx_{topology, energy, failures},
      sim_(topology, energy, failures, seed),
      samples_(sampling::SampleSet::ForTopK(topology->num_nodes(), options.k,
                                            options.sample_window)),
      planner_(MakePlanner(options)),
      manager_(planner_.get(),
               PlanRequest{options.k, options.energy_budget_mj},
               options.manager),
      rng_(seed ^ 0x5e551011),
      seed_(seed),
      original_num_nodes_(topology->num_nodes()) {
  if (options_.use_workspace) ctx_.workspace = &workspace_;
  if (!options_.faults.empty()) {
    injecting_ = true;
    injector_ = net::FaultInjector(topology->num_nodes(), options_.faults,
                                   topology->root());
    sim_.set_fault_injector(&injector_);
  }
  sim_.set_lossy_transport(options_.lossy);
  orig_of_.resize(topology->num_nodes());
  for (int i = 0; i < topology->num_nodes(); ++i) orig_of_[i] = i;
  silent_.assign(topology->num_nodes(), 0);
}

Result<bool> TopKQuerySession::Replan() {
  PROSPECTOR_SPAN("session.replan");
  const int64_t start_us = obs::MonotonicNowUs();
  auto changed = manager_.MaybeReplan(ctx_, samples_, &sim_);
  last_replan_latency_ms_ =
      static_cast<double>(obs::MonotonicNowUs() - start_us) / 1000.0;
  if (changed.ok() && *changed) {
    install_energy_ += sim_.TakeStats().total_energy_mj;
    PROSPECTOR_COUNTER_ADD("session.replans", 1);
    PROSPECTOR_HISTOGRAM_RECORD("session.replan_latency_us",
                                last_replan_latency_ms_ * 1000.0);
  } else {
    sim_.ResetStats();
  }
  return changed;
}

void TopKQuerySession::ObserveEdges(const std::vector<char>& expected,
                                    const std::vector<char>& delivered) {
  if (options_.dead_after_epochs <= 0) return;
  if (expected.size() != silent_.size() ||
      delivered.size() != silent_.size()) {
    return;
  }
  for (size_t u = 0; u < expected.size(); ++u) {
    if (!expected[u]) continue;  // no evidence either way this epoch
    silent_[u] = delivered[u] ? 0 : silent_[u] + 1;
  }
}

void TopKQuerySession::FinishTick(
    [[maybe_unused]] const TickResult* result) const {
  PROSPECTOR_COUNTER_ADD("session.values_lost",
                         static_cast<int64_t>(result->values_lost));
  if (result->degraded) {
    PROSPECTOR_COUNTER_ADD("session.degraded_epochs", 1);
  }
  PROSPECTOR_GAUGE_SET("session.degraded", result->degraded ? 1.0 : 0.0);
  if (result->recall >= 0.0) {
    PROSPECTOR_HISTOGRAM_RECORD("session.recall", result->recall);
  }
  switch (result->kind) {
    case TickResult::Kind::kBootstrap:
      PROSPECTOR_COUNTER_ADD("session.bootstrap_epochs", 1);
      break;
    case TickResult::Kind::kExplore:
      PROSPECTOR_COUNTER_ADD("session.explore_epochs", 1);
      break;
    case TickResult::Kind::kAudit:
      PROSPECTOR_COUNTER_ADD("session.audit_epochs", 1);
      break;
    case TickResult::Kind::kQuery:
      PROSPECTOR_COUNTER_ADD("session.query_epochs", 1);
      break;
  }
}

void TopKQuerySession::TranslateAnswer(std::vector<Reading>* answer) const {
  if (owned_topology_ == nullptr) return;  // ids are still original
  for (Reading& r : *answer) r.node = orig_of_[r.node];
}

Result<bool> TopKQuerySession::MaybeHeal(TickResult* result) {
  if (options_.dead_after_epochs <= 0) return false;
  const int n = topology_->num_nodes();
  std::vector<char> suspect(n, 0);
  bool any = false;
  for (int u = 0; u < n; ++u) {
    if (u == topology_->root()) continue;
    if (silent_[u] >= options_.dead_after_epochs) {
      suspect[u] = 1;
      any = true;
    }
  }
  if (!any) return false;

  // Only topmost suspects are declared dead: everything beneath a dead
  // node is equally silent, but the break sits at the topmost dark edge —
  // killing the descendants too would throw away live hardware.
  std::vector<int> dead;
  for (int u = 0; u < n; ++u) {
    if (!suspect[u]) continue;
    bool shadowed = false;
    for (int a = topology_->parent(u); a != net::Topology::kNoParent;
         a = topology_->parent(a)) {
      if (suspect[a]) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) dead.push_back(u);
  }
  PROSPECTOR_SPAN("session.heal");
  PROSPECTOR_COUNTER_ADD("session.watchdog.declared_dead",
                         static_cast<int64_t>(dead.size()));

  auto rebuilt = net::RebuildWithoutNodes(*topology_, dead,
                                          options_.rebuild_radio_range);
  if (!rebuilt.ok()) return rebuilt.status();
  const std::vector<int>& new_id = rebuilt->new_id;
  const int new_n = rebuilt->topology.num_nodes();

  for (int i = 0; i < n; ++i) {
    if (new_id[i] < 0) result->removed_nodes.push_back(orig_of_[i]);
  }
  std::sort(result->removed_nodes.begin(), result->removed_nodes.end());

  // Re-index everything that outlives the old tree: the id translation,
  // the silence counters (old evidence described old edges — start
  // fresh), the sample window, the failure model, and pending fault
  // events.
  std::vector<int> new_orig(new_n, -1);
  for (int i = 0; i < n; ++i) {
    if (new_id[i] >= 0) new_orig[new_id[i]] = orig_of_[i];
  }
  orig_of_ = std::move(new_orig);
  silent_.assign(new_n, 0);
  samples_ = samples_.Remapped(new_id, new_n);
  net::FailureModel failures = ctx_.failures;
  if (failures.edge_failure_prob.size() > 1) {
    std::vector<double> remapped(new_n, 0.0);
    const int covered =
        std::min<int>(n, static_cast<int>(failures.edge_failure_prob.size()));
    for (int i = 0; i < covered; ++i) {
      if (new_id[i] >= 0) remapped[new_id[i]] = failures.edge_failure_prob[i];
    }
    failures.edge_failure_prob = std::move(remapped);
  }
  if (injecting_) injector_.Remap(new_id, new_n);

  owned_topology_ = std::make_unique<net::Topology>(std::move(rebuilt->topology));
  topology_ = owned_topology_.get();
  ctx_ = PlannerContext{topology_, ctx_.energy, failures};
  if (options_.use_workspace) {
    // The rebuilt tree is a new epoch and the remapped window a new
    // lineage — every cache would miss; Clear releases the memory now.
    workspace_.Clear();
    ctx_.workspace = &workspace_;
  }
  ++rebuilds_;
  sim_ = net::NetworkSimulator(
      topology_, ctx_.energy, failures,
      seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(rebuilds_)));
  if (injecting_) sim_.set_fault_injector(&injector_);
  sim_.set_lossy_transport(options_.lossy);

  // The installed plan indexes nodes that no longer exist; replace it
  // unconditionally on the surviving topology.
  manager_.InvalidatePlan();
  auto changed = Replan();
  if (!changed.ok()) return changed.status();
  result->replanned = *changed;
  result->rebuilt = true;
  PROSPECTOR_COUNTER_ADD("session.watchdog.rebuilds", 1);
  PROSPECTOR_COUNTER_ADD("session.watchdog.removed_nodes",
                         static_cast<int64_t>(result->removed_nodes.size()));
  return true;
}

Result<TopKQuerySession::TickResult> TopKQuerySession::Tick(
    const std::vector<double>& truth) {
  if (static_cast<int>(truth.size()) != original_num_nodes_) {
    return Status::InvalidArgument("truth vector does not match network size");
  }
  TickResult result;
  PROSPECTOR_SPAN("session.tick");
  PROSPECTOR_COUNTER_ADD("session.epochs", 1);
  const int this_epoch = epoch_++;
  if (injecting_) injector_.AdvanceTo(this_epoch);

  // Project the caller's original-indexed readings onto the current tree.
  std::vector<double> projected;
  const std::vector<double>* cur_truth = &truth;
  if (owned_topology_ != nullptr) {
    projected.resize(topology_->num_nodes());
    for (int i = 0; i < topology_->num_nodes(); ++i) {
      projected[i] = truth[orig_of_[i]];
    }
    cur_truth = &projected;
  }

  // Bootstrap and exploration epochs: full sweep, then reconsider the plan.
  const bool bootstrap = this_epoch < options_.bootstrap_sweeps;
  const bool explore =
      bootstrap || rng_.Bernoulli(manager_.explore_probability());
  if (explore) {
    result.kind = bootstrap ? TickResult::Kind::kBootstrap
                            : TickResult::Kind::kExplore;
    const std::vector<double>* fallback =
        samples_.num_samples() > 0
            ? &samples_.sample_values(samples_.num_samples() - 1)
            : nullptr;
    const sampling::SweepReport sweep =
        collector_.CollectSampleReport(*cur_truth, &sim_, &samples_, fallback);
    sampling_energy_ += sweep.energy_mj;
    PROSPECTOR_AUDIT_ENERGY("session.explore", sweep.energy_mj,
                            sim_.stats().total_energy_mj);
    sim_.ResetStats();
    result.degraded = sweep.degraded;
    result.values_lost = sweep.values_lost;
    result.energy_mj = sweep.energy_mj;
    ObserveEdges(sweep.edge_expected, sweep.edge_delivered);
    auto healed = MaybeHeal(&result);
    if (!healed.ok()) return healed.status();
    // Reconsider the plan once the window is primed (the heal path has
    // already replanned on the new tree).
    if (!result.rebuilt && this_epoch + 1 >= options_.bootstrap_sweeps) {
      auto changed = Replan();
      if (!changed.ok()) return changed.status();
      result.replanned = *changed;
    }
    if (result.replanned) result.replan_latency_ms = last_replan_latency_ms_;
    FinishTick(&result);
    return result;
  }

  if (!manager_.has_plan()) {
    auto changed = Replan();
    if (!changed.ok()) return changed.status();
    result.replanned = *changed;
    if (result.replanned) result.replan_latency_ms = last_replan_latency_ms_;
  }

  // Audit epoch: a proof-backed exact query measuring true accuracy.
  if (options_.audit_every > 0 &&
      ++queries_since_audit_ >= options_.audit_every) {
    queries_since_audit_ = 0;
    result.kind = TickResult::Kind::kAudit;
    auto exact = RunProspectorExact(
        ctx_, samples_, options_.k,
        ProofPlanner::MinimumCost(ctx_) * options_.audit_budget_factor,
        *cur_truth, &sim_, options_.lp);
    [[maybe_unused]] const double audit_ledger_mj =
        sim_.stats().total_energy_mj;
    sim_.ResetStats();
    if (!exact.ok()) return exact.status();
    PROSPECTOR_AUDIT_ENERGY("session.audit", exact->total_energy_mj(),
                            audit_ledger_mj);
    audit_energy_ += exact->total_energy_mj();
    result.answer = exact->answer;
    TranslateAnswer(&result.answer);
    result.proven = exact->phase1_proven;
    result.recall = TopKRecall(result.answer, truth, options_.k);
    result.energy_mj = exact->total_energy_mj();
    result.degraded = exact->degraded;
    result.values_lost = exact->values_lost;
    manager_.ObserveAccuracy(static_cast<double>(exact->phase1_proven) /
                             options_.k);
    ObserveEdges(exact->edge_expected, exact->edge_delivered);
    auto healed = MaybeHeal(&result);
    if (!healed.ok()) return healed.status();
    if (result.replanned) result.replan_latency_ms = last_replan_latency_ms_;
    FinishTick(&result);
    return result;
  }

  // Ordinary query epoch.
  result.kind = TickResult::Kind::kQuery;
  ExecutionResult r =
      CollectionExecutor::Execute(manager_.plan(), *cur_truth, &sim_);
  PROSPECTOR_AUDIT_ENERGY("session.query", r.total_energy_mj(),
                          sim_.stats().total_energy_mj);
  sim_.ResetStats();
  query_energy_ += r.total_energy_mj();
  result.answer = std::move(r.answer);
  TranslateAnswer(&result.answer);
  result.recall = TopKRecall(result.answer, truth, options_.k);
  result.energy_mj = r.total_energy_mj();
  result.degraded = r.degraded;
  result.values_lost = r.values_lost;
  ObserveEdges(r.edge_expected, r.edge_delivered);
  auto healed = MaybeHeal(&result);
  if (!healed.ok()) return healed.status();
  if (result.replanned) result.replan_latency_ms = last_replan_latency_ms_;
  FinishTick(&result);
  return result;
}

}  // namespace core
}  // namespace prospector
