#include "src/core/session.h"

#include <utility>

namespace prospector {
namespace core {
namespace {

QueryEngineOptions EngineOptionsFrom(const SessionOptions& options) {
  QueryEngineOptions eo;
  eo.sample_window = options.sample_window;
  eo.bootstrap_sweeps = options.bootstrap_sweeps;
  eo.use_workspace = options.use_workspace;
  eo.workspace = options.workspace;
  eo.faults = options.faults;
  eo.lossy = options.lossy;
  eo.dead_after_epochs = options.dead_after_epochs;
  eo.rebuild_radio_range = options.rebuild_radio_range;
  return eo;
}

QuerySpec SpecFrom(const SessionOptions& options) {
  QuerySpec spec;
  spec.k = options.k;
  spec.energy_budget_mj = options.energy_budget_mj;
  spec.planner = options.planner;
  spec.lp = options.lp;
  spec.manager = options.manager;
  spec.audit_every = options.audit_every;
  spec.audit_budget_factor = options.audit_budget_factor;
  return spec;
}

TopKQuerySession::TickResult::Kind KindFrom(
    QueryEngine::QueryEpochKind kind) {
  switch (kind) {
    case QueryEngine::QueryEpochKind::kBootstrap:
      return TopKQuerySession::TickResult::Kind::kBootstrap;
    case QueryEngine::QueryEpochKind::kExplore:
      return TopKQuerySession::TickResult::Kind::kExplore;
    case QueryEngine::QueryEpochKind::kAudit:
      return TopKQuerySession::TickResult::Kind::kAudit;
    case QueryEngine::QueryEpochKind::kQuery:
      return TopKQuerySession::TickResult::Kind::kQuery;
  }
  return TopKQuerySession::TickResult::Kind::kQuery;
}

}  // namespace

TopKQuerySession::TopKQuerySession(const net::Topology* topology,
                                   net::EnergyModel energy,
                                   net::FailureModel failures,
                                   SessionOptions options, uint64_t seed)
    : engine_(topology, energy, failures, EngineOptionsFrom(options), seed),
      qid_(engine_.AddQuery(SpecFrom(options))) {}

Result<TopKQuerySession::TickResult> TopKQuerySession::Tick(
    const std::vector<double>& truth) {
  auto epoch = engine_.Tick(truth);
  if (!epoch.ok()) return epoch.status();
  TickResult out;
  // The session registered exactly one query, so the epoch result carries
  // exactly one per-query entry — this session's.
  QueryEngine::QueryTickResult& qr = epoch->per_query.front();
  out.kind = KindFrom(qr.kind);
  out.answer = std::move(qr.answer);
  out.energy_mj = qr.energy_mj;
  out.replanned = qr.replanned;
  out.proven = qr.proven;
  out.recall = qr.recall;
  out.replan_latency_ms = qr.replan_latency_ms;
  out.degraded = qr.degraded;
  out.values_lost = qr.values_lost;
  out.removed_nodes = std::move(epoch->removed_nodes);
  out.rebuilt = epoch->rebuilt;
  return out;
}

}  // namespace core
}  // namespace prospector
