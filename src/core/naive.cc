#include "src/core/naive.h"

#include <algorithm>
#include <optional>

namespace prospector {
namespace core {

QueryPlan MakeNaiveKPlan(const net::Topology& topology, int k) {
  std::vector<int> bw(topology.num_nodes(), 0);
  for (int u = 1; u < topology.num_nodes(); ++u) {
    bw[u] = std::min(k, topology.subtree_size(u));
  }
  QueryPlan plan = QueryPlan::Bandwidth(k, std::move(bw));
  plan.Normalize(topology);
  return plan;
}

namespace {

// Per-node streaming state for the NAIVE-1 pipeline.
struct NodeState {
  bool initialized = false;
  std::vector<Reading> heap;           // kept sorted best-first (small)
  std::vector<char> child_exhausted;   // parallel to topology children
};

class Naive1Engine {
 public:
  Naive1Engine(const std::vector<double>& truth, net::NetworkSimulator* sim)
      : truth_(truth), sim_(sim), topo_(sim->topology()) {
    state_.resize(topo_.num_nodes());
  }

  // Next-largest value of the subtree rooted at u, in descending order;
  // nullopt once exhausted. Charges all request/response messages below u
  // (the messages on u's own edge are charged by the caller).
  std::optional<Reading> Pop(int u) {
    NodeState& st = state_[u];
    if (!st.initialized) {
      st.initialized = true;
      st.child_exhausted.assign(topo_.children(u).size(), 0);
      if (u != topo_.root()) energy_ += sim_->ChargeAcquisition(u);
      st.heap.push_back({u, truth_[u]});
      for (size_t ci = 0; ci < topo_.children(u).size(); ++ci) {
        Refill(u, ci);
      }
      std::sort(st.heap.begin(), st.heap.end(), ReadingRanksHigher);
    }
    if (st.heap.empty()) return std::nullopt;
    Reading top = st.heap.front();
    st.heap.erase(st.heap.begin());
    // Refill from the child that supplied the popped value before the next
    // request (the paper's "ensure the heap has a value from each child").
    for (size_t ci = 0; ci < topo_.children(u).size(); ++ci) {
      const int c = topo_.children(u)[ci];
      if (!st.child_exhausted[ci] && topo_.IsAncestorOf(c, top.node)) {
        Refill(u, ci);
        std::sort(st.heap.begin(), st.heap.end(), ReadingRanksHigher);
        break;
      }
    }
    return top;
  }

  double energy() const { return energy_; }
  int messages() const { return messages_; }

 private:
  // Requests one value from child index ci of node u and pushes it into
  // u's heap; marks the child exhausted on an empty response.
  void Refill(int u, size_t ci) {
    NodeState& st = state_[u];
    const int c = topo_.children(u)[ci];
    // Request: empty-body unicast down the edge.
    energy_ += sim_->Unicast(c, 0);
    ++messages_;
    std::optional<Reading> r = Pop(c);
    // Response: one value, or an empty exhausted-reply.
    energy_ += sim_->Unicast(c, r.has_value() ? 1 : 0);
    ++messages_;
    if (r.has_value()) {
      st.heap.push_back(*r);
    } else {
      st.child_exhausted[ci] = 1;
    }
  }

  const std::vector<double>& truth_;
  net::NetworkSimulator* sim_;
  const net::Topology& topo_;
  std::vector<NodeState> state_;
  double energy_ = 0.0;
  int messages_ = 0;
};

}  // namespace

Naive1Result Naive1Executor::Execute(const std::vector<double>& truth, int k,
                                     net::NetworkSimulator* sim) {
  Naive1Engine engine(truth, sim);
  Naive1Result result;
  const int root = sim->topology().root();
  for (int i = 0; i < k; ++i) {
    std::optional<Reading> r = engine.Pop(root);
    if (!r.has_value()) break;
    result.answer.push_back(*r);
  }
  result.energy_mj = engine.energy();
  result.messages = engine.messages();
  return result;
}

}  // namespace core
}  // namespace prospector
