#ifndef PROSPECTOR_CORE_PLAN_MERGE_H_
#define PROSPECTOR_CORE_PLAN_MERGE_H_

#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/plan_wire.h"
#include "src/net/simulator.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {

/// A set of per-query plans scheduled to execute together in one epoch,
/// plus their merged counterpart (see DESIGN.md, "Multi-query engine").
///
/// The merged plan is the union the radio actually serves: edge bandwidth
/// is the pointwise maximum of the constituents' per-edge value counts and
/// the visited-node set is the union of theirs, so one trigger wave and
/// one upward message per participating edge cover every query at once.
struct Superplan {
  /// Stable engine query ids, parallel to `plans` (0..Q-1 by default).
  std::vector<int> query_ids;
  /// The constituent plans, Normalize()d.
  std::vector<QueryPlan> plans;
  /// Pointwise-max merge of `plans` (kind kBandwidth, k = max k).
  QueryPlan merged;

  int num_queries() const { return static_cast<int>(plans.size()); }
};

/// Builds a superplan. Constituents are Normalize()d first; `query_ids`
/// defaults to 0..Q-1 when empty (sizes must match otherwise).
Superplan MergePlans(std::vector<QueryPlan> plans,
                     const net::Topology& topology,
                     std::vector<int> query_ids = {});

/// Outcome of executing a superplan: per-query demultiplexed results plus
/// the shared-level accounting no single query owns.
struct SuperplanResult {
  /// Parallel to Superplan::plans. Each entry is what that query's plan
  /// would have reported standalone: answer, arrived, loss accounting and
  /// link evidence follow the query's own logical flow, so a loss-free
  /// merged run is bit-identical to executing the plan alone. The energy
  /// fields inside these entries stay zero — shared radio cost cannot be
  /// observed per query; use `attributed_mj` instead.
  std::vector<ExecutionResult> per_query;
  /// Energy attribution per query (trigger + acquisition + message
  /// shares); sums to total_energy_mj() up to rounding, so per-query
  /// ledgers reconcile against the simulator's audited total.
  std::vector<double> attributed_mj;

  double trigger_energy_mj = 0.0;
  double collection_energy_mj = 0.0;

  /// Radio-level (union) degradation accounting — what the shared
  /// watchdog observes. A value lost here is a unique reading lost,
  /// however many queries wanted it.
  int values_lost = 0;
  int messages_dropped = 0;
  /// Adversarially deferred union messages (charged, in flight, not
  /// arriving this epoch).
  int messages_deferred = 0;
  bool degraded = false;
  std::vector<char> edge_expected;
  std::vector<char> edge_delivered;
  std::vector<char> subtree_live;

  /// Sharing wins: unicasts that served more than one query, and value
  /// slots saved because a reading wanted by several queries crossed an
  /// edge once instead of once per query.
  int shared_messages = 0;
  long long shared_values = 0;

  double total_energy_mj() const {
    return trigger_energy_mj + collection_energy_mj;
  }
};

/// Executes a superplan against one epoch of readings.
///
/// Each query's plan runs as a *logical flow*: its inbox/outbox at every
/// node is simulated exactly as CollectionExecutor would (local filtering
/// is free CPU), but each tree edge transmits the by-node-id union of all
/// outboxes in ONE message. Demultiplexing at the root is therefore
/// bit-identical to standalone execution by construction — sharing only
/// changes what the radio pays, never what any query receives (loss-free;
/// under loss, one shared message dropping affects every query aboard).
///
/// Energy attribution per message: the per-message overhead is split
/// equally among the queries that put values aboard, and the value-
/// proportional remainder is split by counting each union value once,
/// divided among the queries that requested it. Acquisition is charged
/// once per node and split among the queries acquiring there; trigger
/// broadcasts are split among the queries with a used child edge below
/// the broadcasting node. The attributions sum to the audited total.
class SuperplanExecutor {
 public:
  /// `guard` (optional) applies the fenced transport protocol to every
  /// union message — see CollectionExecutor::Execute. Deferred union
  /// messages park with one flow per sender query (keyed by stable query
  /// id), so a naive fold after the sharer set changed still lands on
  /// the right surviving queries.
  static SuperplanResult Execute(const Superplan& superplan,
                                 const std::vector<double>& truth,
                                 net::NetworkSimulator* sim,
                                 bool include_trigger = true,
                                 TransportGuard* guard = nullptr);
};

/// Wire subplan for `node` under a merged superplan: the merged plan's
/// subplan plus one SubplanQueryEntry per constituent query whose plan
/// visits the node (all queries at the root). Encodes as wire version 1
/// whenever any entry is present.
Subplan MergedSubplanFor(const Superplan& superplan,
                         const net::Topology& topology, int node);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_MERGE_H_
