#ifndef PROSPECTOR_CORE_TRANSPORT_GUARD_H_
#define PROSPECTOR_CORE_TRANSPORT_GUARD_H_

#include <cstdint>
#include <vector>

#include "src/core/reading.h"
#include "src/net/simulator.h"

namespace prospector {
namespace core {

/// The fenced per-message protocol header (see DESIGN.md, "Failure
/// semantics"): a plan-epoch stamp, the sending epoch, and a per-edge
/// sequence number. Together they let a receiver refuse stale messages
/// (sent under an older epoch or an older installed plan) and fold each
/// sequence number at most once (duplicate suppression). Encoded size is
/// TransportGuard::kHeaderBytes, charged on every guarded unicast as
/// `extra_bytes` so plans are priced honestly.
struct FencedHeader {
  int plan_epoch = 0;
  int send_epoch = 0;
  uint32_t seq = 0;
};

/// Which protocol flow a guarded message belongs to. Delayed messages are
/// re-delivered only to the flow that sent them — a stale sweep bundle
/// must not surface inside a proof phase.
enum class GuardChannel {
  kCollect = 0,    ///< CollectionExecutor upward lists
  kProof = 1,      ///< ProofExecutor phase-1 lists and mop-up replies
  kSuperplan = 2,  ///< SuperplanExecutor union messages
};

/// A message the adversary deferred into a later epoch: the sender was
/// charged at send time, the payload sits "in the air" until
/// `arrival_epoch`. Fencing destroys it on arrival (stale by
/// construction); the naive protocol folds it into the receiver's inbox
/// as if it were fresh.
struct DelayedMessage {
  GuardChannel channel = GuardChannel::kCollect;
  int child_edge = -1;
  int arrival_epoch = 0;
  FencedHeader header;
  /// The readings aboard, one list per logical flow. Single-flow
  /// executors use flows.size() == 1; the superplan stores one list per
  /// sender query, parallel to `flow_ids` (stable engine query ids).
  std::vector<int> flow_ids;
  std::vector<std::vector<Reading>> flows;
  /// Flow-specific extra (proof phase 1: the sender's proven count).
  int aux = 0;
};

/// How the protocol layer treats the adversarial tier.
enum class TransportFencing {
  /// Fenced when any adversarial knob is active, plain seed protocol
  /// otherwise (the default).
  kAuto,
  /// Always stamp, dedup, and refuse stale — even with no adversary.
  kFenced,
  /// Adversary-aware mailbox but NO fencing: duplicates fold multiple
  /// times and delayed messages fold on arrival. This is the
  /// deliberately-broken protocol the chaos soak's tamper-detection
  /// check must catch — never use it for real results.
  kNaive,
};

/// The protocol layer's defense against the tier-3 adversarial transport
/// (duplication, corruption, delayed delivery — see DESIGN.md, "Failure
/// semantics"). One guard serves every executor of a deployment:
///
///  - senders Stamp() a FencedHeader per message and pay kHeaderBytes;
///  - receivers AdmitCopies() every delivery: corrupt payloads are
///    rejected like drops (integrity check, both modes), duplicates fold
///    exactly once under fencing (per-edge sequence watermark), and
///  - delayed messages are parked via Defer() and surfaced by
///    DrainArrivals() at their arrival epoch — where fencing refuses
///    them (a delayed message is always at least one epoch stale), while
///    the naive mode hands them back for folding.
///
/// Counters mirror the obs metrics (`transport.duplicates_dropped`,
/// `transport.stale_fenced`, `transport.corrupt_rejected`) so invariant
/// checks need no registry access. With no adversary active a fenced
/// guard only adds header bytes; with `guard == nullptr` every executor
/// behaves bit-identically to the seed.
class TransportGuard {
 public:
  /// Encoded header size: epoch stamp + sequence number, varint-packed
  /// like the plan wire (4 bytes epoch/plan generation, 4 bytes seq).
  static constexpr int kHeaderBytes = 8;

  struct Counters {
    int64_t duplicates_dropped = 0;  ///< extra copies suppressed (fenced)
    int64_t stale_fenced = 0;        ///< late arrivals refused (fenced)
    int64_t corrupt_rejected = 0;    ///< mangled payloads rejected
    int64_t deferred = 0;            ///< messages parked for late arrival
    /// Naive-mode damage (always 0 under fencing — the chaos soak's
    /// structural invariant, and what its tamper-detection run proves
    /// non-zero when fencing is broken):
    int64_t stale_folded = 0;      ///< late arrivals folded into answers
    int64_t duplicates_folded = 0; ///< extra copies folded into answers
  };

  explicit TransportGuard(bool fencing = true) : fencing_(fencing) {}

  bool fencing() const { return fencing_; }
  /// Extra bytes every guarded unicast pays. The naive protocol sends no
  /// header (nothing checks it), which keeps "header bytes charged only
  /// when fencing is enabled" true by construction.
  int header_bytes() const { return fencing_ ? kHeaderBytes : 0; }

  /// Advances the receive clock; call once per engine epoch.
  void StartEpoch(int epoch) { epoch_ = epoch; }
  /// A new plan generation was installed (replan or rebuild); messages
  /// stamped under the previous generation become stale.
  void BumpPlanEpoch() { ++plan_epoch_; }
  int epoch() const { return epoch_; }
  int plan_epoch() const { return plan_epoch_; }

  /// Topology rebuild: in-flight messages and sequence state die with the
  /// old tree (their edge ids no longer mean anything).
  void Clear() {
    mailbox_.clear();
    seq_.clear();
    watermark_.clear();
  }

  /// Stamps the header for a message leaving `child_edge` now.
  FencedHeader Stamp(int child_edge) {
    Reserve(child_edge);
    return FencedHeader{plan_epoch_, epoch_, ++seq_[child_edge]};
  }

  /// Classifies one delivery: how many copies the receiver folds into its
  /// inbox THIS epoch. 0 for drops, corrupt payloads (rejected in both
  /// modes — the CRC is not what fencing toggles), deferred messages
  /// (park them with Defer), and fenced stale/duplicate arrivals. The
  /// naive mode returns `delivered_copies`, folding every duplicate.
  int AdmitCopies(const net::DeliveryResult& d, const FencedHeader& h,
                  int child_edge);

  /// Parks a deferred message until its arrival epoch. Call exactly when
  /// `d.delivered && !d.corrupted && d.delayed_until_epoch >= 0`.
  void Defer(DelayedMessage msg);

  /// Surfaces every parked `channel` message for `child_edge` whose
  /// arrival epoch has come. Fencing destroys them (counted stale_fenced)
  /// and returns nothing; the naive mode returns them for folding
  /// (counted stale_folded).
  std::vector<DelayedMessage> DrainArrivals(GuardChannel channel,
                                            int child_edge);

  /// Messages still in the air (deferred, arrival epoch not yet drained).
  int pending() const { return static_cast<int>(mailbox_.size()); }

  const Counters& counters() const { return counters_; }

 private:
  void Reserve(int child_edge) {
    if (child_edge >= static_cast<int>(seq_.size())) {
      seq_.resize(child_edge + 1, 0);
      watermark_.resize(child_edge + 1, 0);
    }
  }

  bool fencing_;
  int epoch_ = 0;
  int plan_epoch_ = 0;
  std::vector<uint32_t> seq_;        // per-edge send counter
  std::vector<uint32_t> watermark_;  // per-edge highest folded seq
  std::vector<DelayedMessage> mailbox_;
  Counters counters_;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_TRANSPORT_GUARD_H_
