#ifndef PROSPECTOR_CORE_EXECUTOR_H_
#define PROSPECTOR_CORE_EXECUTOR_H_

#include <vector>

#include "src/core/plan.h"
#include "src/core/reading.h"
#include "src/core/transport_guard.h"
#include "src/net/simulator.h"

namespace prospector {
namespace core {

/// Outcome of executing a plan against one epoch of true readings.
///
/// Under fault injection or lossy transport the result is *partial* and
/// says so: `degraded` flags any loss, `values_lost`/`messages_dropped`
/// quantify it, and the per-node liveness vectors say which subtrees went
/// dark — the observations the Session watchdog feeds on. A loss-free run
/// leaves `degraded` false and every delivered flag equal to its expected
/// flag.
struct ExecutionResult {
  /// What the query returns: the best min(k, arrived) readings at the
  /// root, best-first.
  std::vector<Reading> answer;
  /// Everything that reached the root (including its own reading).
  std::vector<Reading> arrived;
  /// Proof-carrying plans: the first `proven_count` entries of `answer`
  /// are proven to be the true top values of the whole network.
  int proven_count = 0;
  double trigger_energy_mj = 0.0;
  double collection_energy_mj = 0.0;

  /// --- degradation accounting (zero/empty when nothing was lost) ---
  /// Readings that were acquired (or received) but never reached the next
  /// hop because their message dropped or their holder died.
  int values_lost = 0;
  int messages_dropped = 0;
  /// Adversarially deferred messages (tier 3): charged and in flight, but
  /// not arriving this epoch — their readings count in `values_lost`.
  int messages_deferred = 0;
  bool degraded = false;
  /// Per node u != root: the plan called for traffic originating at u
  /// (or u actually transmitted).
  std::vector<char> edge_expected;
  /// Per node u != root: u's message arrived at its parent this epoch.
  std::vector<char> edge_delivered;
  /// Per node: every expected edge on u's path to the root delivered —
  /// i.e. u's subtree had a working channel to the base station.
  std::vector<char> subtree_live;

  double total_energy_mj() const {
    return trigger_energy_mj + collection_energy_mj;
  }
};

/// Shared degradation-accounting helpers (CollectionExecutor,
/// ProofExecutor, and SuperplanExecutor all build the same link-evidence
/// block; keep the semantics in one place).

/// Sizes and zeroes `edge_expected`/`edge_delivered` for a fresh phase.
void InitLinkEvidence(int num_nodes, ExecutionResult* result);

/// Per node: every expected edge on u's path to the root delivered — i.e.
/// u's subtree had a working channel to the base station this epoch.
std::vector<char> ComputeSubtreeLiveness(const net::Topology& topology,
                                         const std::vector<char>& edge_expected,
                                         const std::vector<char>& edge_delivered);

/// Convenience: fills `result->subtree_live` from the result's own edge
/// evidence.
void FinalizeSubtreeLiveness(const net::Topology& topology,
                             ExecutionResult* result);

/// Executes non-proof plans (bandwidth plans with local filtering, and
/// node-selection plans) over the simulator, charging every message.
class CollectionExecutor {
 public:
  /// Runs one trigger wave plus one collection phase. `truth` holds the
  /// current reading of every node. The plan is defensively Normalize()d
  /// first (a no-op for planner output), so an inconsistent hand-built
  /// plan cannot charge children for readings an ancestor edge drops.
  /// Dead nodes (per the simulator's fault injector) acquire nothing and
  /// send nothing; messages across dead or partitioned edges drop after
  /// the transport's retry budget.
  ///
  /// Under an adversarial transport, pass the deployment's TransportGuard:
  /// messages are stamped (header bytes charged), duplicates fold once,
  /// corrupt payloads are rejected like drops, and deferred messages park
  /// in the guard's mailbox — where fencing refuses them on arrival. With
  /// `guard == nullptr` (the default) behavior is bit-identical to the
  /// pre-adversarial executor, with corrupt/deferred deliveries treated
  /// as drops defensively.
  static ExecutionResult Execute(const QueryPlan& plan,
                                 const std::vector<double>& truth,
                                 net::NetworkSimulator* sim,
                                 bool include_trigger = true,
                                 TransportGuard* guard = nullptr);
};

/// Fraction of the true top-k returned by the plan — the accuracy metric
/// of Section 5 ("percentage of actual top-k values returned").
double TopKRecall(const ExecutionResult& result,
                  const std::vector<double>& truth, int k);

/// Same metric over a bare answer list (e.g. a session tick's translated
/// answer); `answer` node ids must index into `truth`.
double TopKRecall(const std::vector<Reading>& answer,
                  const std::vector<double>& truth, int k);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_EXECUTOR_H_
