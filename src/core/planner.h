#ifndef PROSPECTOR_CORE_PLANNER_H_
#define PROSPECTOR_CORE_PLANNER_H_

#include <memory>
#include <string>

#include "src/core/plan.h"
#include "src/lp/simplex.h"
#include "src/net/energy_model.h"
#include "src/net/failure.h"
#include "src/net/topology.h"
#include "src/sampling/sample_set.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace core {

class PlanningWorkspace;

/// Everything a planner may consult about the deployment. Edge costs are
/// failure-inflated expectations (Section 4.4).
struct PlannerContext {
  const net::Topology* topology = nullptr;
  net::EnergyModel energy;
  net::FailureModel failures;

  /// Shared incremental planning state (see core/workspace.h), or nullptr
  /// for the from-scratch seed behavior. Plans are bit-identical either
  /// way; the workspace only changes how much work producing them takes.
  PlanningWorkspace* workspace = nullptr;
  /// Which cached-LP slot this planner may lease. Concurrent planners
  /// (a PlanSweep) must use distinct keys — the sweep assigns the request
  /// index — so that cache histories stay deterministic.
  int workspace_lease = 0;

  /// Expected cost of a message with `num_values` readings on `child_edge`.
  double EdgeMessageCost(int child_edge, int num_values) const {
    return energy.MessageCost(num_values) *
           failures.ExpectedCostFactor(child_edge);
  }
  /// Expected fixed (per-message) component on this edge.
  double EdgeFixedCost(int child_edge) const {
    return energy.per_message_mj * failures.ExpectedCostFactor(child_edge);
  }
  /// Expected marginal cost of one extra value on this edge.
  double EdgePerValueCost(int child_edge) const {
    return energy.PerValueCost() * failures.ExpectedCostFactor(child_edge);
  }
  /// Cost of the measurement a visited node must take (Section 4.4).
  double NodeAcquisitionCost() const { return energy.acquisition_mj; }
};

/// What the user asked for.
struct PlanRequest {
  int k = 10;
  /// Energy allowance for one collection phase, in mJ. The planner returns
  /// the highest-expected-accuracy plan whose expected collection cost
  /// stays within this budget.
  double energy_budget_mj = 0.0;
};

/// Lazily materializes a planner's worker pool from its `threads` option.
/// Returns nullptr when `threads <= 1`, which callers treat as "use the
/// serial code path" — the seed (single-threaded) behavior. Results are
/// bit-identical either way; only wall time changes.
inline util::ThreadPool* EnsureThreadPool(
    std::unique_ptr<util::ThreadPool>* slot, int threads) {
  if (threads <= 1) return nullptr;
  if (*slot == nullptr || (*slot)->num_threads() != threads) {
    *slot = std::make_unique<util::ThreadPool>(threads);
  }
  return slot->get();
}

/// Work accounting of one Plan() call — the numbers the optimizer papers
/// report (LP size, pivot counts, rounding-repair effort) and that used to
/// be computed and silently dropped. Deterministic for a given input:
/// identical across planner thread counts.
struct PlannerStats {
  /// The (last) LP relaxation solve behind the plan; zeroes for planners
  /// that never touch the simplex (greedy, naive).
  lp::SolveStats lp;
  /// Budget-repair rounds: bandwidth units trimmed after rounding.
  int repair_rounds = 0;
  /// Fill passes: whole orders re-scanned while leftover budget granted
  /// extra bandwidth units.
  int fill_passes = 0;
};

/// Common interface of the PROSPECTOR planning algorithms: given past
/// samples and an energy budget, produce an executable plan.
class Planner {
 public:
  virtual ~Planner() = default;
  virtual Result<QueryPlan> Plan(const PlannerContext& ctx,
                                 const sampling::SampleSet& samples,
                                 const PlanRequest& request) = 0;
  virtual std::string name() const = 0;

  /// Telemetry of the most recent Plan() call (zero-initialized before one
  /// has been made). Valid until the next Plan() on this planner.
  const PlannerStats& last_stats() const { return last_stats_; }

 protected:
  PlannerStats last_stats_;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLANNER_H_
