#include "src/core/lp_filter_planner.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/plan_eval.h"
#include "src/core/workspace.h"
#include "src/lp/model.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

// Appends one sample's y-variable block (and any newly relevant edges' z/b
// variables) to an already-built LP+LF model. New z/b join the existing
// budget row via AddRowTerm. Returns the number of patch operations.
int AppendFilterBlock(LpEntry* entry, const PlannerContext& ctx,
                      const net::Topology& topo,
                      const sampling::SampleSet& samples, int j,
                      const std::vector<std::vector<int>>& paths, int k) {
  lp::Model& model = entry->model;
  const int root = topo.root();
  int ops = 0;
  LpSampleBlock block;
  block.stamp = samples.sample_stamp(j);
  std::unordered_map<int, std::vector<lp::Term>> bandwidth_terms;
  for (int i : samples.ones(j)) {
    if (i == root) continue;  // the root's value is free
    for (int e : paths[i]) {
      if (entry->z[e] < 0) {
        // The sliding window surfaced a contributor beneath an edge the
        // built model never needed: grow the model by that edge.
        entry->z[e] = model.AddBinaryRelaxed(0.0);
        const double ub = std::min(k, topo.subtree_size(e));
        entry->b[e] = model.AddVariable(0.0, ub, 0.0);
        model.AddRow(lp::RowType::kLessEqual, 0.0,
                     {{entry->b[e], 1.0}, {entry->z[e], -ub}});
        model.AddRowTerm(entry->budget_row,
                         {entry->z[e],
                          ctx.EdgeFixedCost(e) + ctx.NodeAcquisitionCost()});
        model.AddRowTerm(entry->budget_row,
                         {entry->b[e], ctx.EdgePerValueCost(e)});
        ++ops;
      }
    }
    const int yv = model.AddBinaryRelaxed(1.0);
    block.vars.push_back(yv);
    block.node_vars.push_back({i, yv});
    for (int e : paths[i]) {
      // Line (7): returning i's value uses every edge above i.
      model.AddRow(lp::RowType::kLessEqual, 0.0,
                   {{yv, 1.0}, {entry->z[e], -1.0}});
      bandwidth_terms[e].push_back({yv, 1.0});
    }
  }
  // Line (8): per-sample bandwidth constraint on every edge beneath which
  // this sample has contributing nodes.
  for (auto& [e, terms] : bandwidth_terms) {
    std::vector<lp::Term> row = std::move(terms);
    row.push_back({entry->b[e], -1.0});
    model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
  }
  entry->live_block_vars += static_cast<int>(block.vars.size());
  entry->blocks.push_back(std::move(block));
  return ops + 1;
}

}  // namespace

Result<QueryPlan> LpFilterPlanner::Plan(const PlannerContext& ctx,
                                        const sampling::SampleSet& samples,
                                        const PlanRequest& request) {
  PROSPECTOR_SPAN("planner.lp_filter.plan");
  last_stats_ = PlannerStats{};
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  const int root = topo.root();
  if (samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  const int S = samples.num_samples();
  util::ThreadPool* pool = EnsureThreadPool(&pool_, options_.threads);

  const auto paths_ptr = GetPathCache(ctx.workspace, topo, pool);
  const std::vector<std::vector<int>>& paths = *paths_ptr;

  // The LP lives in a leased workspace entry (or a throwaway local one —
  // the seed path). Its per-sample blocks are keyed by sample stamps:
  // samples that left the window are tombstoned (objective weight zeroed),
  // new samples are appended, and only when tombstones outgrow the live
  // mass is the model rebuilt from scratch.
  PlanningWorkspace::LpLease lease;
  LpEntry local_entry;
  LpEntry* entry = &local_entry;
  if (ctx.workspace != nullptr) {
    lease = ctx.workspace->AcquireLp(LpKind::kFilter, ctx.workspace_lease);
    entry = lease.get();
  }
  const uint64_t fingerprint = PlanningWorkspace::CostFingerprint(ctx);

  bool rebuild =
      entry->Stale(topo.epoch(), samples.id(), fingerprint, request.k);
  int patch_ops = 0;
  if (!rebuild) {
    std::vector<uint64_t> window_stamps(S);
    for (int j = 0; j < S; ++j) window_stamps[j] = samples.sample_stamp(j);
    const double ratio = ctx.workspace != nullptr
                             ? ctx.workspace->options().max_dead_ratio
                             : 1.0;
    rebuild = entry->TombstoneOutsideWindow(window_stamps, ratio, &patch_ops);
  }

  if (rebuild) {
    if (ctx.workspace != nullptr) ctx.workspace->NoteLpMiss();
    entry->Reset();
    lp::Model& model = entry->model;

    // Only edges that lie beneath some contributing node can ever deliver
    // a hit; restrict the program to those. Samples are scanned
    // independently and their edge masks OR-ed together in sample order.
    std::vector<char> relevant(n, 0);
    if (pool != nullptr) {
      relevant = pool->ParallelReduce<std::vector<char>>(
          S, std::vector<char>(n, 0),
          [&](int j) {
            std::vector<char> mask(n, 0);
            for (int i : samples.ones(j)) {
              for (int e : paths[i]) mask[e] = 1;
            }
            return mask;
          },
          [](std::vector<char> acc, std::vector<char> mask) {
            for (size_t e = 0; e < acc.size(); ++e) acc[e] |= mask[e];
            return acc;
          });
    } else {
      for (int j = 0; j < S; ++j) {
        for (int i : samples.ones(j)) {
          for (int e : paths[i]) relevant[e] = 1;
        }
      }
    }

    model.SetSense(lp::Sense::kMaximize);
    entry->z.assign(n, -1);
    entry->b.assign(n, -1);
    for (int e = 0; e < n; ++e) {
      if (e == root || !relevant[e]) continue;
      entry->z[e] = model.AddBinaryRelaxed(0.0);
      const double ub = std::min(request.k, topo.subtree_size(e));
      entry->b[e] = model.AddVariable(0.0, ub, 0.0);
      // Bandwidth requires the edge to be used (pays per-message cost).
      model.AddRow(lp::RowType::kLessEqual, 0.0,
                   {{entry->b[e], 1.0}, {entry->z[e], -ub}});
    }

    // y variables and their rows, one block per sample.
    for (int j = 0; j < S; ++j) {
      LpSampleBlock block;
      block.stamp = samples.sample_stamp(j);
      std::unordered_map<int, std::vector<lp::Term>> bandwidth_terms;
      for (int i : samples.ones(j)) {
        if (i == root) continue;  // the root's value is free
        const int yv = model.AddBinaryRelaxed(1.0);
        block.vars.push_back(yv);
        block.node_vars.push_back({i, yv});
        for (int e : paths[i]) {
          // Line (7): returning i's value uses every edge above i.
          model.AddRow(lp::RowType::kLessEqual, 0.0,
                       {{yv, 1.0}, {entry->z[e], -1.0}});
          bandwidth_terms[e].push_back({yv, 1.0});
        }
      }
      // Line (8): per-sample bandwidth constraint on every edge beneath
      // which this sample has contributing nodes.
      for (auto& [e, terms] : bandwidth_terms) {
        std::vector<lp::Term> row = std::move(terms);
        row.push_back({entry->b[e], -1.0});
        model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
      }
      entry->live_block_vars += static_cast<int>(block.vars.size());
      entry->blocks.push_back(std::move(block));
    }

    // Line (6): the energy budget.
    std::vector<lp::Term> cost_row;
    for (int e = 0; e < n; ++e) {
      if (e == root || entry->z[e] < 0) continue;
      cost_row.push_back(
          {entry->z[e], ctx.EdgeFixedCost(e) + ctx.NodeAcquisitionCost()});
      cost_row.push_back({entry->b[e], ctx.EdgePerValueCost(e)});
    }
    entry->budget_row = model.AddRow(lp::RowType::kLessEqual,
                                     request.energy_budget_mj, cost_row);
    entry->built = true;
    entry->topo_epoch = topo.epoch();
    entry->set_id = samples.id();
    entry->cost_fingerprint = fingerprint;
    entry->k = request.k;
  } else {
    ctx.workspace->NoteLpHit();
    std::unordered_set<uint64_t> known;
    for (const LpSampleBlock& block : entry->blocks) known.insert(block.stamp);
    for (int j = 0; j < S; ++j) {
      if (known.count(samples.sample_stamp(j))) continue;
      patch_ops +=
          AppendFilterBlock(entry, ctx, topo, samples, j, paths, request.k);
    }
    entry->model.SetRhs(entry->budget_row, request.energy_budget_mj);
    ++patch_ops;
    ctx.workspace->NoteLpPatch(patch_ops);
  }

  Result<lp::Solution> solved =
      ctx.workspace != nullptr
          ? ctx.workspace->SolveLp(entry, options_.simplex)
          : lp::SimplexSolver(options_.simplex).Solve(entry->model);
  if (!solved.ok()) return solved.status();
  last_stats_.lp = solved->stats;
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("LP+LF solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Integral bandwidths: round the y's, then give each edge the largest
  // per-sample count of rounded entries beneath it. Dead blocks are pinned
  // to zero and can never clear the rounding threshold, but skipping them
  // keeps the scan proportional to the live window.
  std::vector<int> bw(n, 0);
  for (const LpSampleBlock& block : entry->blocks) {
    if (!block.live) continue;
    std::unordered_map<int, int> count;
    for (const auto& [i, yv] : block.node_vars) {
      if (solved->values[yv] > options_.rounding_threshold) {
        for (int e : paths[i]) ++count[e];
      }
    }
    for (const auto& [e, c] : count) bw[e] = std::max(bw[e], c);
  }

  QueryPlan plan = QueryPlan::Bandwidth(request.k, std::move(bw));
  plan.Normalize(topo);

  // Repair and fill score every trial plan against the window; the packed
  // hit matrix (cached across queries when a workspace is attached) makes
  // each evaluation proportional to the contributing nodes instead of the
  // network, with identical hit counts.
  const auto hits_ptr = (options_.repair_budget || options_.fill_budget)
                            ? GetHitMatrix(ctx.workspace, samples)
                            : nullptr;

  // Budget repair: drop the bandwidth unit whose loss costs the fewest
  // sample hits per mJ reclaimed, until the plan fits. Candidate trials
  // are independent, so each round scores them on the pool and then picks
  // the winner in ascending edge order — the same argmin the serial loop
  // computes.
  if (options_.repair_budget) {
    net::NetworkSimulator cost_sim(&topo, ctx.energy, ctx.failures);
    int hits = SampleHits(plan, topo, *hits_ptr, pool);
    while (ExpectedCollectionCost(plan, cost_sim) > request.energy_budget_mj) {
      std::vector<int> candidates;
      for (int e = 0; e < n; ++e) {
        if (e != root && plan.bandwidth[e] > 0) candidates.push_back(e);
      }
      if (candidates.empty()) break;  // nothing left to trim

      struct TrialScore {
        double score = 0.0;
        int hits = 0;
      };
      const double plan_cost = ExpectedCollectionCost(plan, cost_sim);
      std::vector<TrialScore> scores(candidates.size());
      auto score_range = [&](int begin, int end) {
        for (int c = begin; c < end; ++c) {
          QueryPlan trial = plan;
          --trial.bandwidth[candidates[c]];
          trial.Normalize(topo);
          const int trial_hits = SampleHits(trial, topo, *hits_ptr);
          const double saved =
              plan_cost - ExpectedCollectionCost(trial, cost_sim);
          scores[c].score =
              static_cast<double>(hits - trial_hits) / std::max(saved, 1e-12);
          scores[c].hits = trial_hits;
        }
      };
      if (pool != nullptr) {
        pool->ParallelFor(static_cast<int>(candidates.size()), score_range);
      } else {
        score_range(0, static_cast<int>(candidates.size()));
      }

      int best = -1;
      for (size_t c = 0; c < candidates.size(); ++c) {
        if (best < 0 || scores[c].score < scores[best].score) {
          best = static_cast<int>(c);
        }
      }
      --plan.bandwidth[candidates[best]];
      plan.Normalize(topo);
      hits = scores[best].hits;
      ++last_stats_.repair_rounds;
    }
    PROSPECTOR_COUNTER_ADD("planner.repair_rounds", last_stats_.repair_rounds);
  }

  // Fill: conservative rounding can zero out scattered fractional mass and
  // strand budget. Greedily grant one bandwidth unit along the path of the
  // most frequently contributing nodes while the budget allows and hits
  // improve.
  if (options_.fill_budget) {
    net::NetworkSimulator cost_sim(&topo, ctx.energy, ctx.failures);
    const std::vector<int>& cs = hits_ptr->column_sums();
    std::vector<int> order;
    for (int i = 0; i < n; ++i) {
      if (i != root && cs[i] > 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int bnode) {
      if (cs[a] != cs[bnode]) return cs[a] > cs[bnode];
      return a < bnode;
    });
    int hits = SampleHits(plan, topo, *hits_ptr, pool);
    bool progress = true;
    while (progress) {
      progress = false;
      ++last_stats_.fill_passes;
      for (int i : order) {
        QueryPlan trial = plan;
        for (int e : paths[i]) {
          trial.bandwidth[e] =
              std::min(trial.bandwidth[e] + 1,
                       std::min(request.k, topo.subtree_size(e)));
        }
        if (ExpectedCollectionCost(trial, cost_sim) >
            request.energy_budget_mj) {
          continue;
        }
        const int trial_hits = SampleHits(trial, topo, *hits_ptr, pool);
        if (trial_hits > hits) {
          plan = std::move(trial);
          hits = trial_hits;
          progress = true;
        }
      }
    }
    PROSPECTOR_COUNTER_ADD("planner.fill_passes", last_stats_.fill_passes);
  }
  return plan;
}

}  // namespace core
}  // namespace prospector
