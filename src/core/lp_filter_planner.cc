#include "src/core/lp_filter_planner.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/core/plan_eval.h"
#include "src/lp/model.h"

namespace prospector {
namespace core {

Result<QueryPlan> LpFilterPlanner::Plan(const PlannerContext& ctx,
                                        const sampling::SampleSet& samples,
                                        const PlanRequest& request) {
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  if (samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  const int S = samples.num_samples();

  // Only edges that lie beneath some contributing node can ever deliver a
  // hit; restrict the program to those.
  std::vector<char> relevant(n, 0);
  for (int j = 0; j < S; ++j) {
    for (int i : samples.ones(j)) {
      for (int e : topo.PathEdges(i)) relevant[e] = 1;
    }
  }

  lp::Model model;
  model.SetSense(lp::Sense::kMaximize);
  std::vector<int> z(n, -1), b(n, -1);
  for (int e = 1; e < n; ++e) {
    if (!relevant[e]) continue;
    z[e] = model.AddBinaryRelaxed(0.0);
    const double ub = std::min(request.k, topo.subtree_size(e));
    b[e] = model.AddVariable(0.0, ub, 0.0);
    // Bandwidth requires the edge to be used (pays its per-message cost).
    model.AddRow(lp::RowType::kLessEqual, 0.0, {{b[e], 1.0}, {z[e], -ub}});
  }

  // y variables and their rows.
  std::vector<std::unordered_map<int, int>> y(S);  // j -> (node -> var)
  for (int j = 0; j < S; ++j) {
    std::unordered_map<int, std::vector<lp::Term>> bandwidth_terms;
    for (int i : samples.ones(j)) {
      if (i == topo.root()) continue;  // the root's value is free
      const int yv = model.AddBinaryRelaxed(1.0);
      y[j][i] = yv;
      for (int e : topo.PathEdges(i)) {
        // Line (7): returning i's value uses every edge above i.
        model.AddRow(lp::RowType::kLessEqual, 0.0, {{yv, 1.0}, {z[e], -1.0}});
        bandwidth_terms[e].push_back({yv, 1.0});
      }
    }
    // Line (8): per-sample bandwidth constraint on every edge beneath
    // which this sample has contributing nodes.
    for (auto& [e, terms] : bandwidth_terms) {
      std::vector<lp::Term> row = std::move(terms);
      row.push_back({b[e], -1.0});
      model.AddRow(lp::RowType::kLessEqual, 0.0, std::move(row));
    }
  }

  // Line (6): the energy budget.
  std::vector<lp::Term> cost_row;
  for (int e = 1; e < n; ++e) {
    if (z[e] < 0) continue;
    cost_row.push_back({z[e], ctx.EdgeFixedCost(e) + ctx.NodeAcquisitionCost()});
    cost_row.push_back({b[e], ctx.EdgePerValueCost(e)});
  }
  model.AddRow(lp::RowType::kLessEqual, request.energy_budget_mj, cost_row);

  lp::SimplexSolver solver(options_.simplex);
  auto solved = solver.Solve(model);
  if (!solved.ok()) return solved.status();
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("LP+LF solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Integral bandwidths: round the y's, then give each edge the largest
  // per-sample count of rounded entries beneath it.
  std::vector<int> bw(n, 0);
  for (int j = 0; j < S; ++j) {
    std::unordered_map<int, int> count;
    for (const auto& [i, yv] : y[j]) {
      if (solved->values[yv] > options_.rounding_threshold) {
        for (int e : topo.PathEdges(i)) ++count[e];
      }
    }
    for (const auto& [e, c] : count) bw[e] = std::max(bw[e], c);
  }

  QueryPlan plan = QueryPlan::Bandwidth(request.k, std::move(bw));
  plan.Normalize(topo);

  // Budget repair: drop the bandwidth unit whose loss costs the fewest
  // sample hits per mJ reclaimed, until the plan fits.
  if (options_.repair_budget) {
    net::NetworkSimulator cost_sim(&topo, ctx.energy, ctx.failures);
    int hits = SampleHits(plan, topo, samples);
    while (ExpectedCollectionCost(plan, cost_sim) > request.energy_budget_mj) {
      int best_e = -1;
      double best_score = 0.0;
      int best_hits = 0;
      for (int e = 1; e < n; ++e) {
        if (plan.bandwidth[e] <= 0) continue;
        QueryPlan trial = plan;
        --trial.bandwidth[e];
        trial.Normalize(topo);
        const int trial_hits = SampleHits(trial, topo, samples);
        const double saved = ExpectedCollectionCost(plan, cost_sim) -
                             ExpectedCollectionCost(trial, cost_sim);
        const double score =
            static_cast<double>(hits - trial_hits) / std::max(saved, 1e-12);
        if (best_e < 0 || score < best_score) {
          best_e = e;
          best_score = score;
          best_hits = trial_hits;
        }
      }
      if (best_e < 0) break;  // nothing left to trim
      --plan.bandwidth[best_e];
      plan.Normalize(topo);
      hits = best_hits;
    }
  }

  // Fill: conservative rounding can zero out scattered fractional mass and
  // strand budget. Greedily grant one bandwidth unit along the path of the
  // most frequently contributing nodes while the budget allows and hits
  // improve.
  if (options_.fill_budget) {
    net::NetworkSimulator cost_sim(&topo, ctx.energy, ctx.failures);
    std::vector<int> order;
    for (int i = 1; i < n; ++i) {
      if (samples.column_sums()[i] > 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int bnode) {
      const auto& cs = samples.column_sums();
      if (cs[a] != cs[bnode]) return cs[a] > cs[bnode];
      return a < bnode;
    });
    int hits = SampleHits(plan, topo, samples);
    bool progress = true;
    while (progress) {
      progress = false;
      for (int i : order) {
        QueryPlan trial = plan;
        for (int e : topo.PathEdges(i)) {
          trial.bandwidth[e] =
              std::min(trial.bandwidth[e] + 1,
                       std::min(request.k, topo.subtree_size(e)));
        }
        if (ExpectedCollectionCost(trial, cost_sim) >
            request.energy_budget_mj) {
          continue;
        }
        const int trial_hits = SampleHits(trial, topo, samples);
        if (trial_hits > hits) {
          plan = std::move(trial);
          hits = trial_hits;
          progress = true;
        }
      }
    }
  }
  return plan;
}

}  // namespace core
}  // namespace prospector
