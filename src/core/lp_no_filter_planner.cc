#include "src/core/lp_no_filter_planner.h"

#include <algorithm>
#include <vector>

#include "src/core/plan_eval.h"
#include "src/core/workspace.h"
#include "src/lp/model.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

// Expected cost of shipping the chosen nodes' values to the root: per-value
// cost on every path edge plus per-message cost on every used edge.
// `paths` is the topology's path cache (see ComputePathCache).
double SelectionCost(const PlannerContext& ctx, const net::Topology& topo,
                     const std::vector<std::vector<int>>& paths,
                     const std::vector<char>& chosen) {
  std::vector<char> used(topo.num_nodes(), 0);
  double cost = 0.0;
  for (int i = 0; i < topo.num_nodes(); ++i) {
    if (i == topo.root() || !chosen[i]) continue;
    cost += ctx.NodeAcquisitionCost();
    for (int e : paths[i]) {
      cost += ctx.EdgePerValueCost(e);
      if (!used[e]) {
        used[e] = 1;
        cost += ctx.EdgeFixedCost(e);
      }
    }
  }
  return cost;
}

}  // namespace

Result<QueryPlan> LpNoFilterPlanner::Plan(const PlannerContext& ctx,
                                          const sampling::SampleSet& samples,
                                          const PlanRequest& request) {
  PROSPECTOR_SPAN("planner.lp_no_filter.plan");
  last_stats_ = PlannerStats{};
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  const int root = topo.root();
  if (samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  // Objective weights and repair/fill ordering come off the packed hit
  // matrix (cached across queries when a workspace is attached) — the same
  // integers SampleSet::column_sums() maintains, so plans are identical.
  const auto hits_ptr = GetHitMatrix(ctx.workspace, samples);
  const std::vector<int>& colsum = hits_ptr->column_sums();
  util::ThreadPool* pool = EnsureThreadPool(&pool_, options_.threads);

  // Constraint-matrix ingredients: every node's root path, cached across
  // queries when a workspace is attached. Per-node path computations are
  // independent, so they are produced on the pool; each node's cost sum is
  // accumulated by one thread in path order, keeping the bits identical to
  // the serial loop.
  const auto paths_ptr = GetPathCache(ctx.workspace, topo, pool);
  const std::vector<std::vector<int>>& paths = *paths_ptr;

  // The LP lives in a leased workspace entry (or a throwaway local one —
  // the seed path). Its constraint matrix depends only on the topology and
  // the cost model, so on a hit nothing but the objective (fresh column
  // sums) and the budget RHS needs patching.
  PlanningWorkspace::LpLease lease;
  LpEntry local_entry;
  LpEntry* entry = &local_entry;
  if (ctx.workspace != nullptr) {
    lease = ctx.workspace->AcquireLp(LpKind::kNoFilter, ctx.workspace_lease);
    entry = lease.get();
  }
  const uint64_t fingerprint = PlanningWorkspace::CostFingerprint(ctx);
  if (entry->Stale(topo.epoch(), /*sid=*/0, fingerprint, /*request_k=*/0)) {
    if (ctx.workspace != nullptr) ctx.workspace->NoteLpMiss();
    entry->Reset();

    std::vector<double> path_value_cost(n, 0.0);
    auto accumulate_costs = [&](int begin, int end) {
      for (int i = begin; i < end; ++i) {
        for (int e : paths[i]) path_value_cost[i] += ctx.EdgePerValueCost(e);
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(n, accumulate_costs);
    } else {
      accumulate_costs(0, n);
    }

    lp::Model& model = entry->model;
    model.SetSense(lp::Sense::kMaximize);
    // x_i: acquire node i and ship to root. z_e: edge e carries a message.
    entry->x.assign(n, -1);
    entry->z.assign(n, -1);
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      entry->x[i] = model.AddBinaryRelaxed(static_cast<double>(colsum[i]));
      entry->z[i] = model.AddBinaryRelaxed(0.0);
    }

    std::vector<lp::Term> cost_row;
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      for (int e : paths[i]) {
        // Line (2): choosing x_i forces every edge above i into use.
        model.AddRow(lp::RowType::kLessEqual, 0.0,
                     {{entry->x[i], 1.0}, {entry->z[e], -1.0}});
      }
      cost_row.push_back(
          {entry->x[i], path_value_cost[i] + ctx.NodeAcquisitionCost()});
      cost_row.push_back({entry->z[i], ctx.EdgeFixedCost(i)});
    }
    // Line (3): the energy budget.
    entry->budget_row = model.AddRow(lp::RowType::kLessEqual,
                                     request.energy_budget_mj, cost_row);
    entry->built = true;
    entry->topo_epoch = topo.epoch();
    entry->cost_fingerprint = fingerprint;
  } else {
    ctx.workspace->NoteLpHit();
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;
      entry->model.SetObjective(entry->x[i], static_cast<double>(colsum[i]));
    }
    entry->model.SetRhs(entry->budget_row, request.energy_budget_mj);
    ctx.workspace->NoteLpPatch(n);
  }

  Result<lp::Solution> solved =
      ctx.workspace != nullptr
          ? ctx.workspace->SolveLp(entry, options_.simplex)
          : lp::SimplexSolver(options_.simplex).Solve(entry->model);
  if (!solved.ok()) return solved.status();
  last_stats_.lp = solved->stats;
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("LP-LF solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Round x at the threshold (Section 4.1).
  std::vector<char> chosen(n, 0);
  for (int i = 0; i < n; ++i) {
    if (i == root) continue;
    chosen[i] = solved->values[entry->x[i]] > options_.rounding_threshold ? 1 : 0;
  }

  // Repair: rounding can cost up to 2C; drop the cheapest-to-lose choices
  // (lowest column sum) until the plan fits the budget again.
  if (options_.repair_budget) {
    while (SelectionCost(ctx, topo, paths, chosen) > request.energy_budget_mj) {
      int worst = -1;
      for (int i = 0; i < n; ++i) {
        if (i == root) continue;
        if (chosen[i] && (worst < 0 || colsum[i] < colsum[worst])) worst = i;
      }
      if (worst < 0) break;
      chosen[worst] = 0;
      ++last_stats_.repair_rounds;
    }
    PROSPECTOR_COUNTER_ADD("planner.repair_rounds", last_stats_.repair_rounds);
  }

  // Fill: spend leftover budget on the best unchosen nodes that still fit.
  if (options_.fill_budget) {
    std::vector<int> order;
    for (int i = 0; i < n; ++i) {
      if (i != root && !chosen[i] && colsum[i] > 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (colsum[a] != colsum[b]) return colsum[a] > colsum[b];
      return a < b;
    });
    double cost = SelectionCost(ctx, topo, paths, chosen);
    std::vector<char> used(n, 0);
    for (int i = 0; i < n; ++i) {
      if (i == root || !chosen[i]) continue;
      for (int e : paths[i]) used[e] = 1;
    }
    for (int i : order) {
      double added = ctx.NodeAcquisitionCost();
      for (int e : paths[i]) {
        added += ctx.EdgePerValueCost(e);
        if (!used[e]) added += ctx.EdgeFixedCost(e);
      }
      if (cost + added > request.energy_budget_mj) continue;
      cost += added;
      chosen[i] = 1;
      for (int e : paths[i]) used[e] = 1;
    }
    last_stats_.fill_passes = 1;  // single greedy pass by construction
    PROSPECTOR_COUNTER_ADD("planner.fill_passes", 1);
  }

  QueryPlan plan = QueryPlan::NodeSelection(request.k, std::move(chosen), topo);
  plan.Normalize(topo);
  return plan;
}

}  // namespace core
}  // namespace prospector
