#include "src/core/lp_no_filter_planner.h"

#include <algorithm>
#include <vector>

#include "src/lp/model.h"

namespace prospector {
namespace core {
namespace {

// Expected cost of shipping the chosen nodes' values to the root: per-value
// cost on every path edge plus per-message cost on every used edge.
double SelectionCost(const PlannerContext& ctx, const net::Topology& topo,
                     const std::vector<char>& chosen) {
  std::vector<char> used(topo.num_nodes(), 0);
  double cost = 0.0;
  for (int i = 1; i < topo.num_nodes(); ++i) {
    if (!chosen[i]) continue;
    cost += ctx.NodeAcquisitionCost();
    for (int e : topo.PathEdges(i)) {
      cost += ctx.EdgePerValueCost(e);
      if (!used[e]) {
        used[e] = 1;
        cost += ctx.EdgeFixedCost(e);
      }
    }
  }
  return cost;
}

}  // namespace

Result<QueryPlan> LpNoFilterPlanner::Plan(const PlannerContext& ctx,
                                          const sampling::SampleSet& samples,
                                          const PlanRequest& request) {
  const net::Topology& topo = *ctx.topology;
  const int n = topo.num_nodes();
  if (samples.num_nodes() != n) {
    return Status::InvalidArgument("sample set does not match topology size");
  }
  const std::vector<int>& colsum = samples.column_sums();

  lp::Model model;
  model.SetSense(lp::Sense::kMaximize);
  // x_i: acquire node i and ship to root. z_e: edge e carries a message.
  std::vector<int> x(n, -1), z(n, -1);
  for (int i = 1; i < n; ++i) {
    x[i] = model.AddBinaryRelaxed(static_cast<double>(colsum[i]));
    z[i] = model.AddBinaryRelaxed(0.0);
  }

  std::vector<lp::Term> cost_row;
  for (int i = 1; i < n; ++i) {
    double path_value_cost = 0.0;
    for (int e : topo.PathEdges(i)) {
      // Line (2): choosing x_i forces every edge above i into use.
      model.AddRow(lp::RowType::kLessEqual, 0.0, {{x[i], 1.0}, {z[e], -1.0}});
      path_value_cost += ctx.EdgePerValueCost(e);
    }
    cost_row.push_back({x[i], path_value_cost + ctx.NodeAcquisitionCost()});
    cost_row.push_back({z[i], ctx.EdgeFixedCost(i)});
  }
  // Line (3): the energy budget.
  model.AddRow(lp::RowType::kLessEqual, request.energy_budget_mj, cost_row);

  lp::SimplexSolver solver(options_.simplex);
  auto solved = solver.Solve(model);
  if (!solved.ok()) return solved.status();
  if (solved->status != lp::SolveStatus::kOptimal) {
    return Status::Internal(std::string("LP-LF solve failed: ") +
                            lp::ToString(solved->status));
  }
  last_lp_objective_ = solved->objective;

  // Round x at the threshold (Section 4.1).
  std::vector<char> chosen(n, 0);
  for (int i = 1; i < n; ++i) {
    chosen[i] = solved->values[x[i]] > options_.rounding_threshold ? 1 : 0;
  }

  // Repair: rounding can cost up to 2C; drop the cheapest-to-lose choices
  // (lowest column sum) until the plan fits the budget again.
  if (options_.repair_budget) {
    while (SelectionCost(ctx, topo, chosen) > request.energy_budget_mj) {
      int worst = -1;
      for (int i = 1; i < n; ++i) {
        if (chosen[i] && (worst < 0 || colsum[i] < colsum[worst])) worst = i;
      }
      if (worst < 0) break;
      chosen[worst] = 0;
    }
  }

  // Fill: spend leftover budget on the best unchosen nodes that still fit.
  if (options_.fill_budget) {
    std::vector<int> order;
    for (int i = 1; i < n; ++i) {
      if (!chosen[i] && colsum[i] > 0) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (colsum[a] != colsum[b]) return colsum[a] > colsum[b];
      return a < b;
    });
    double cost = SelectionCost(ctx, topo, chosen);
    std::vector<char> used(n, 0);
    for (int i = 1; i < n; ++i) {
      if (!chosen[i]) continue;
      for (int e : topo.PathEdges(i)) used[e] = 1;
    }
    for (int i : order) {
      double added = ctx.NodeAcquisitionCost();
      for (int e : topo.PathEdges(i)) {
        added += ctx.EdgePerValueCost(e);
        if (!used[e]) added += ctx.EdgeFixedCost(e);
      }
      if (cost + added > request.energy_budget_mj) continue;
      cost += added;
      chosen[i] = 1;
      for (int e : topo.PathEdges(i)) used[e] = 1;
    }
  }

  QueryPlan plan = QueryPlan::NodeSelection(request.k, std::move(chosen), topo);
  plan.Normalize(topo);
  return plan;
}

}  // namespace core
}  // namespace prospector
