#ifndef PROSPECTOR_CORE_PROOF_EXECUTOR_H_
#define PROSPECTOR_CORE_PROOF_EXECUTOR_H_

#include <vector>

#include "src/core/executor.h"
#include "src/core/plan.h"
#include "src/core/reading.h"
#include "src/net/simulator.h"

namespace prospector {
namespace core {

/// Sentinel bounds for mop-up ranges (rank strictly between lo and hi).
Reading MinusInfinityReading();
Reading PlusInfinityReading();

/// Executes proof-carrying plans (Section 4.3) and, when needed, the
/// mop-up phase that upgrades an approximate proof-carrying answer into an
/// exact one (PROSPECTOR Exact).
///
/// Phase 1 runs the four-step node procedure: receive child lists with
/// their proven counts, sort with the own reading, prove the longest
/// possible prefix via conditions (c.1)-(c.3), and forward the top
/// bandwidth[u] values plus the proven count. Every node retains
/// retrieved(u) (its own reading plus everything received) and its proven
/// prefix for the mop-up phase.
///
/// The mop-up request (t, lo, hi) asks a subtree for its top t readings
/// ranking strictly between lo and hi. A node serves proven in-range
/// values from memory, narrows the request to
///   t'  = t - |proven(u) ∩ (lo, hi)|
///   lo' = the t'-th best *unproven* retrieved reading in range (if any)
///   hi' = min(hi, worst proven reading)
/// and broadcasts (t', lo', hi') to its children only when t' > 0 and the
/// narrowed range is nonempty. Correctness argument: values above hi' are
/// already proven-and-retrieved, and fewer than t' unproven in-range
/// subtree values can outrank the t'-th unproven retrieved one.
/// How mop-up requests reach the children.
enum class MopUpMode {
  /// One broadcast per asking node; every child answers (Section 4.3's
  /// presented version).
  kBroadcast,
  /// Per-child unicast requests with individually tightened bounds; a
  /// child whose subtree provably has nothing to add in the narrowed
  /// range is skipped entirely (the refinement the paper sketches as
  /// "sending to children requests with different bounds").
  kPerChild,
};

class ProofExecutor {
 public:
  /// `plan` must be proof-carrying with bandwidth >= 1 on every edge.
  /// `guard` (optional) applies the fenced transport protocol to every
  /// phase-1 list and mop-up message — see CollectionExecutor::Execute.
  ProofExecutor(const QueryPlan* plan, net::NetworkSimulator* sim,
                MopUpMode mode = MopUpMode::kBroadcast,
                TransportGuard* guard = nullptr)
      : plan_(plan), sim_(sim), mode_(mode), guard_(guard) {}

  /// Phase 1. `result.proven_count` is the root's proven prefix length.
  /// Under fault injection / lossy transport, dropped child lists simply
  /// never arrive: the proving conditions (c.1)-(c.3) are evidence-based,
  /// so missing evidence shrinks the proven prefix — it never inflates it.
  /// The result carries the usual degradation annotations.
  ExecutionResult ExecutePhase1(const std::vector<double>& truth,
                                bool include_trigger = true);

  /// Phase 2; requires ExecutePhase1 first. Returns the top-k answer
  /// (k from the plan) and the phase's energy. Loss-free, the answer is
  /// exact (proven_count == answer size); when any request or reply
  /// dropped, the result is flagged degraded and proven_count falls back
  /// to the phase-1 certificate.
  ExecutionResult ExecuteMopUp();

  /// Any message lost so far (either phase).
  bool degraded() const { return degraded_; }

  /// Mop-up volume: readings carried by mop-up replies (delivered or not)
  /// and requests issued, across the last ExecuteMopUp(). The per-phase
  /// cost split the paper's Section 4.3 analysis reasons about.
  int mopup_values_moved() const { return mopup_values_moved_; }
  int mopup_requests() const { return mopup_requests_; }

  /// Test/inspection access to node memory after phase 1 or mop-up.
  const std::vector<Reading>& retrieved(int node) const {
    return retrieved_[node];
  }
  int proven_count(int node) const { return proven_count_[node]; }

 private:
  struct MopUpReply {
    std::vector<Reading> readings;
  };

  MopUpReply MopUpAtNode(int u, int t, const Reading& lo, const Reading& hi);
  /// Sends a mop-up reply up edge `c` through the guarded transport;
  /// appends the delivered copies to `fetched` and keeps the loss
  /// accounting. Returns false when nothing arrived this epoch.
  bool SendMopUpReply(int c, const std::vector<Reading>& readings,
                      std::vector<Reading>* fetched);

  const QueryPlan* plan_;
  net::NetworkSimulator* sim_;
  MopUpMode mode_;
  TransportGuard* guard_ = nullptr;
  std::vector<std::vector<Reading>> retrieved_;  // sorted best-first
  std::vector<int> proven_count_;
  // Phase-1 bookkeeping the per-child mop-up uses: how many values each
  // node transmitted, how many of them were proven, and the worst proven
  // reading (only meaningful when sent_proven_ > 0).
  std::vector<int> sent_count_;
  std::vector<int> sent_proven_;
  std::vector<Reading> worst_proven_sent_;
  bool phase1_done_ = false;
  // Loss accounting across both phases; the mop-up counters are filled in
  // by the MopUpAtNode recursion and copied into its ExecutionResult.
  bool degraded_ = false;
  int mopup_drops_ = 0;
  int mopup_values_lost_ = 0;
  int mopup_values_moved_ = 0;
  int mopup_requests_ = 0;
};

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PROOF_EXECUTOR_H_
