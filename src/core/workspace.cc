#include "src/core/workspace.h"

#include <algorithm>
#include <unordered_set>

#include "src/core/plan_eval.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {
namespace {

// FNV-1a over raw bytes; good enough to distinguish drifted cost models
// (the goal is invalidation, not cryptography).
uint64_t HashBytes(uint64_t h, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double v) {
  return HashBytes(h, &v, sizeof(v));
}

}  // namespace

bool LpEntry::TombstoneOutsideWindow(
    const std::vector<uint64_t>& window_stamps, double max_dead_ratio,
    int* patch_ops) {
  std::unordered_set<uint64_t> window(window_stamps.begin(),
                                      window_stamps.end());
  std::unordered_set<uint64_t> known;
  known.reserve(blocks.size());
  for (const LpSampleBlock& block : blocks) known.insert(block.stamp);
  for (LpSampleBlock& block : blocks) {
    if (!block.live || window.count(block.stamp)) continue;
    for (int v : block.vars) model.SetObjective(v, 0.0);
    block.live = false;
    live_block_vars -= static_cast<int>(block.vars.size());
    dead_block_vars += static_cast<int>(block.vars.size());
    ++*patch_ops;
  }
  int pending = 0;
  for (uint64_t s : window_stamps) {
    if (!known.count(s)) ++pending;
  }
  const double mean_block_vars =
      blocks.empty() ? 0.0
                     : static_cast<double>(live_block_vars + dead_block_vars) /
                           static_cast<double>(blocks.size());
  const double prospective_live = live_block_vars + pending * mean_block_vars;
  return dead_block_vars > max_dead_ratio * std::max(1.0, prospective_live);
}

PlanningWorkspace::LpLease& PlanningWorkspace::LpLease::operator=(
    LpLease&& other) noexcept {
  if (this != &other) {
    Release();
    workspace_ = other.workspace_;
    kind_ = other.kind_;
    key_ = other.key_;
    entry_ = std::move(other.entry_);
    cached_ = other.cached_;
    other.workspace_ = nullptr;
    other.cached_ = false;
  }
  return *this;
}

void PlanningWorkspace::LpLease::Release() {
  if (workspace_ != nullptr && entry_ != nullptr && cached_) {
    workspace_->ReleaseLp(kind_, key_, std::move(entry_));
  }
  entry_.reset();
  workspace_ = nullptr;
  cached_ = false;
}

std::shared_ptr<const PlanningWorkspace::IntLists> PlanningWorkspace::TopoCache(
    const net::Topology& topology, TopoCacheSlot* slot, util::ThreadPool* pool,
    int which) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot->data != nullptr && slot->epoch == topology.epoch()) {
    ++counters_.topo_hits;
    PROSPECTOR_COUNTER_ADD("workspace.topo.hit", 1);
    return slot->data;
  }
  ++counters_.topo_misses;
  PROSPECTOR_COUNTER_ADD("workspace.topo.miss", 1);
  auto fresh = std::make_shared<IntLists>();
  const int n = topology.num_nodes();
  switch (which) {
    case 0:
      *fresh = ComputePathCache(topology, pool);
      break;
    case 1:
      fresh->resize(n);
      for (int i = 0; i < n; ++i) (*fresh)[i] = topology.AncestorsOf(i);
      break;
    default:
      fresh->resize(n);
      for (int i = 0; i < n; ++i) (*fresh)[i] = topology.DescendantsOf(i);
      break;
  }
  slot->epoch = topology.epoch();
  slot->data = std::move(fresh);
  return slot->data;
}

std::shared_ptr<const PlanningWorkspace::IntLists> PlanningWorkspace::Paths(
    const net::Topology& topology, util::ThreadPool* pool) {
  return TopoCache(topology, &paths_, pool, 0);
}

std::shared_ptr<const PlanningWorkspace::IntLists> PlanningWorkspace::Ancestors(
    const net::Topology& topology) {
  return TopoCache(topology, &ancestors_, nullptr, 1);
}

std::shared_ptr<const PlanningWorkspace::IntLists>
PlanningWorkspace::Descendants(const net::Topology& topology) {
  return TopoCache(topology, &descendants_, nullptr, 2);
}

PlanningWorkspace::LpLease PlanningWorkspace::AcquireLp(LpKind kind,
                                                        int lease_key) {
  LpLease lease;
  lease.workspace_ = this;
  lease.kind_ = kind;
  lease.key_ = lease_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::pair<int, int> key{static_cast<int>(kind), lease_key};
    auto it = lp_entries_.find(key);
    if (it == lp_entries_.end()) {
      // Brand-new key: reserve the slot (empty = leased out) and hand out
      // a fresh entry that will be cached on release.
      lp_entries_[key] = nullptr;
      lease.cached_ = true;
    } else if (it->second != nullptr) {
      lease.entry_ = std::move(it->second);  // slot empties = leased out
      lease.cached_ = true;
      return lease;
    } else {
      // Key currently leased out — a caller bug; hand out a throwaway
      // entry so the collision degrades to correct cold planning.
      lease.cached_ = false;
    }
  }
  lease.entry_ = std::make_unique<LpEntry>();
  return lease;
}

void PlanningWorkspace::ReleaseLp(LpKind kind, int key,
                                  std::unique_ptr<LpEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lp_entries_.find({static_cast<int>(kind), key});
  if (it != lp_entries_.end() && it->second == nullptr) {
    it->second = std::move(entry);
  }
}

std::shared_ptr<const HitMatrix> PlanningWorkspace::Hits(
    const sampling::SampleSet& samples) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hits_cache_ != nullptr && hits_cache_->InSyncWith(samples)) {
    PROSPECTOR_COUNTER_ADD("workspace.hits.hit", 1);
    return hits_cache_;
  }
  PROSPECTOR_COUNTER_ADD("workspace.hits.miss", 1);
  // Clone-on-write: earlier shared_ptr holders keep reading their frozen
  // copy; the clone applies the delta (same lineage) or rebuilds.
  auto fresh = hits_cache_ != nullptr ? std::make_shared<HitMatrix>(*hits_cache_)
                                      : std::make_shared<HitMatrix>();
  fresh->Sync(samples);
  hits_cache_ = std::move(fresh);
  return hits_cache_;
}

Result<lp::Solution> PlanningWorkspace::SolveLp(
    LpEntry* entry, const lp::SimplexOptions& simplex) {
  lp::SimplexSolver solver(simplex);
  if (!options_.warm_start) {
    entry->hot.Clear();
    return solver.Solve(entry->model);
  }
  // SolveHot re-optimizes from the entry's retained tableau when one
  // exists (a hot start — no refactorization) and repopulates it from a
  // cold solve otherwise, so the entry is always primed for the next call.
  const bool hot = !entry->hot.empty();
  Result<lp::Solution> solved =
      solver.SolveHot(entry->model, &entry->hot, options_.cross_check);
  if (hot) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.warm_attempts;
    if (solved.ok() && solved->warm_started) ++counters_.warm_successes;
  }
  return solved;
}

void PlanningWorkspace::NoteLpHit() {
  PROSPECTOR_COUNTER_ADD("workspace.lp.hit", 1);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.lp_hits;
}

void PlanningWorkspace::NoteLpMiss() {
  PROSPECTOR_COUNTER_ADD("workspace.lp.miss", 1);
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.lp_misses;
}

void PlanningWorkspace::NoteLpPatch(int ops) {
  PROSPECTOR_COUNTER_ADD("workspace.lp.patch", ops);
  std::lock_guard<std::mutex> lock(mu_);
  counters_.lp_patches += ops;
}

void PlanningWorkspace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  paths_ = TopoCacheSlot{};
  ancestors_ = TopoCacheSlot{};
  descendants_ = TopoCacheSlot{};
  // Leased-out slots (nullptr values) are dropped too: their leases were
  // flagged cached_, but ReleaseLp finds no slot and discards the entry —
  // exactly right, it predates the Clear.
  lp_entries_.clear();
  hits_cache_.reset();
}

WorkspaceCounters PlanningWorkspace::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

uint64_t PlanningWorkspace::CostFingerprint(const PlannerContext& ctx) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  h = HashDouble(h, ctx.energy.per_message_mj);
  h = HashDouble(h, ctx.energy.per_byte_mj);
  h = HashDouble(h, static_cast<double>(ctx.energy.bytes_per_value));
  h = HashDouble(h, ctx.energy.acquisition_mj);
  h = HashDouble(h, ctx.failures.reroute_cost_factor);
  if (ctx.topology != nullptr) {
    const int n = ctx.topology->num_nodes();
    for (int e = 0; e < n; ++e) {
      h = HashDouble(h, ctx.failures.ExpectedCostFactor(e));
    }
  }
  return h;
}

std::shared_ptr<const PlanningWorkspace::IntLists> GetPathCache(
    PlanningWorkspace* workspace, const net::Topology& topology,
    util::ThreadPool* pool) {
  if (workspace != nullptr) return workspace->Paths(topology, pool);
  auto fresh = std::make_shared<PlanningWorkspace::IntLists>(
      ComputePathCache(topology, pool));
  return fresh;
}

std::shared_ptr<const HitMatrix> GetHitMatrix(
    PlanningWorkspace* workspace, const sampling::SampleSet& samples) {
  if (workspace != nullptr) return workspace->Hits(samples);
  auto fresh = std::make_shared<HitMatrix>();
  fresh->Sync(samples);
  return fresh;
}

std::shared_ptr<const PlanningWorkspace::IntLists> GetAncestors(
    PlanningWorkspace* workspace, const net::Topology& topology) {
  if (workspace != nullptr) return workspace->Ancestors(topology);
  auto fresh = std::make_shared<PlanningWorkspace::IntLists>();
  fresh->resize(topology.num_nodes());
  for (int i = 0; i < topology.num_nodes(); ++i) {
    (*fresh)[i] = topology.AncestorsOf(i);
  }
  return fresh;
}

std::shared_ptr<const PlanningWorkspace::IntLists> GetDescendants(
    PlanningWorkspace* workspace, const net::Topology& topology) {
  if (workspace != nullptr) return workspace->Descendants(topology);
  auto fresh = std::make_shared<PlanningWorkspace::IntLists>();
  fresh->resize(topology.num_nodes());
  for (int i = 0; i < topology.num_nodes(); ++i) {
    (*fresh)[i] = topology.DescendantsOf(i);
  }
  return fresh;
}

}  // namespace core
}  // namespace prospector
