#include "src/core/executor.h"

#include <algorithm>

#include "src/obs/obs.h"

namespace prospector {
namespace core {

void InitLinkEvidence(int num_nodes, ExecutionResult* result) {
  result->edge_expected.assign(num_nodes, 0);
  result->edge_delivered.assign(num_nodes, 0);
}

std::vector<char> ComputeSubtreeLiveness(
    const net::Topology& topology, const std::vector<char>& edge_expected,
    const std::vector<char>& edge_delivered) {
  std::vector<char> live(topology.num_nodes(), 1);
  for (int u : topology.PreOrder()) {
    if (u == topology.root()) continue;
    const bool broken = edge_expected[u] && !edge_delivered[u];
    live[u] = !broken && live[topology.parent(u)] ? 1 : 0;
  }
  return live;
}

void FinalizeSubtreeLiveness(const net::Topology& topology,
                             ExecutionResult* result) {
  result->subtree_live = ComputeSubtreeLiveness(
      topology, result->edge_expected, result->edge_delivered);
}

ExecutionResult CollectionExecutor::Execute(const QueryPlan& plan,
                                            const std::vector<double>& truth,
                                            net::NetworkSimulator* sim,
                                            bool include_trigger,
                                            TransportGuard* guard) {
  PROSPECTOR_SPAN("exec.collect");
  const net::Topology& topo = sim->topology();
  const int n = topo.num_nodes();
  // The audit oracle: everything this executor charges also lands on the
  // simulator's independent ledger, so the two deltas must agree exactly.
  [[maybe_unused]] const double ledger_before_mj =
      sim->stats().total_energy_mj;

  // Clamp effective bandwidth by the path to the root before spending any
  // energy: in an inconsistent plan (child bandwidth > 0 beneath an edge
  // that carries nothing) the children would otherwise pay acquisition and
  // Unicast energy for readings their ancestor must drop. Normalize() is
  // idempotent, so plans from the planners pass through unchanged.
  QueryPlan normalized = plan;
  normalized.Normalize(topo);
  const QueryPlan& p = normalized;

  ExecutionResult result;
  InitLinkEvidence(n, &result);
  if (include_trigger) {
    result.trigger_energy_mj = ChargeTriggerCost(p, sim);
  }

  std::vector<char> attempted(n, 0);
  std::vector<std::vector<Reading>> inbox(topo.num_nodes());
  double collection = 0.0;
  for (int u : topo.PostOrder()) {
    if (u == topo.root()) continue;
    if (guard != nullptr) {
      // Deferred messages from edge u landing this epoch. Fencing refuses
      // them inside DrainArrivals (always stale); only the naive protocol
      // gets payloads back and folds them — the silent-wrongness the
      // chaos soak's tamper-detection run demonstrates.
      for (DelayedMessage& m :
           guard->DrainArrivals(GuardChannel::kCollect, u)) {
        std::vector<Reading>& up = inbox[topo.parent(u)];
        for (const std::vector<Reading>& flow : m.flows) {
          up.insert(up.end(), flow.begin(), flow.end());
        }
      }
    }
    // "Expected" is what the watchdog may hold the node to: traffic the
    // plan says must *originate* at u. A pure relay (node-selection mode,
    // not chosen) whose chosen descendants went dark legitimately sends
    // nothing, so only its actual attempts count as evidence.
    const bool originates =
        p.kind == PlanKind::kBandwidth ? p.bandwidth[u] > 0 : p.chosen[u];
    std::vector<Reading>& mine = inbox[u];
    std::vector<Reading> outgoing;
    if (!sim->node_alive(u)) {
      // A dead node acquires nothing and forwards nothing; whatever its
      // children delivered to it is lost with it.
      result.edge_expected[u] = originates || !mine.empty();
      result.values_lost += static_cast<int>(mine.size());
      if (!mine.empty()) result.degraded = true;
      continue;
    }
    if (p.kind == PlanKind::kBandwidth) {
      if (p.bandwidth[u] <= 0) continue;
      // Local filtering: own reading plus children's lists, keep top-b.
      collection += sim->ChargeAcquisition(u);
      mine.push_back({u, truth[u]});
      SortReadings(&mine);
      if (static_cast<int>(mine.size()) > p.bandwidth[u]) {
        mine.resize(p.bandwidth[u]);
      }
      outgoing = std::move(mine);
    } else {
      // Node selection: forward everything; no filtering.
      if (p.chosen[u]) {
        collection += sim->ChargeAcquisition(u);
        mine.push_back({u, truth[u]});
      }
      if (mine.empty()) {
        result.edge_expected[u] = originates;
        continue;
      }
      outgoing = std::move(mine);
    }
    attempted[u] = 1;
    result.edge_expected[u] = 1;
    const FencedHeader header =
        guard != nullptr ? guard->Stamp(u) : FencedHeader{};
    const net::DeliveryResult sent =
        sim->TryUnicast(u, static_cast<int>(outgoing.size()),
                        guard != nullptr ? guard->header_bytes() : 0);
    collection += sent.energy_mj;
    int copies = sent.arrived_now() ? 1 : 0;
    if (guard != nullptr) {
      if (sent.delivered && !sent.corrupted && sent.delayed_until_epoch >= 0) {
        DelayedMessage parked;
        parked.channel = GuardChannel::kCollect;
        parked.child_edge = u;
        parked.arrival_epoch = sent.delayed_until_epoch;
        parked.header = header;
        parked.flows.push_back(outgoing);
        guard->Defer(std::move(parked));
        copies = 0;
      } else {
        copies = guard->AdmitCopies(sent, header, u);
      }
    }
    if (copies > 0) {
      result.edge_delivered[u] = 1;
      std::vector<Reading>& up = inbox[topo.parent(u)];
      for (int rep = 0; rep < copies; ++rep) {
        up.insert(up.end(), outgoing.begin(), outgoing.end());
      }
    } else {
      if (sent.delivered && !sent.corrupted &&
          sent.delayed_until_epoch >= 0) {
        ++result.messages_deferred;
      } else {
        ++result.messages_dropped;
      }
      result.values_lost += static_cast<int>(outgoing.size());
      result.degraded = true;
    }
  }
  result.collection_energy_mj = collection;
  FinalizeSubtreeLiveness(topo, &result);

  result.arrived = std::move(inbox[topo.root()]);
  result.arrived.push_back({topo.root(), truth[topo.root()]});
  SortReadings(&result.arrived);
  result.answer = result.arrived;
  if (static_cast<int>(result.answer.size()) > p.k) {
    result.answer.resize(p.k);
  }

  PROSPECTOR_AUDIT_ENERGY("executor.collect", result.total_energy_mj(),
                          sim->stats().total_energy_mj - ledger_before_mj);
  PROSPECTOR_COUNTER_ADD("exec.collect.runs", 1);
  PROSPECTOR_COUNTER_ADD("exec.collect.values_lost", result.values_lost);
  PROSPECTOR_COUNTER_ADD("exec.collect.messages_dropped",
                         result.messages_dropped);
  if (result.degraded) {
    PROSPECTOR_FLIGHT(kNote, "exec.collect.degraded", -1, result.values_lost,
                      result.messages_dropped);
  }
  return result;
}

double TopKRecall(const ExecutionResult& result,
                  const std::vector<double>& truth, int k) {
  return TopKRecall(result.answer, truth, k);
}

double TopKRecall(const std::vector<Reading>& answer,
                  const std::vector<double>& truth, int k) {
  if (k <= 0) return 1.0;
  const std::vector<Reading> expected = TrueTopK(truth, k);
  std::vector<char> in_answer(truth.size(), 0);
  for (const Reading& r : answer) in_answer[r.node] = 1;
  int hit = 0;
  for (const Reading& r : expected) hit += in_answer[r.node];
  return static_cast<double>(hit) /
         static_cast<double>(std::min<size_t>(k, truth.size()));
}

}  // namespace core
}  // namespace prospector
