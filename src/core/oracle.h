#ifndef PROSPECTOR_CORE_ORACLE_H_
#define PROSPECTOR_CORE_ORACLE_H_

#include <vector>

#include "src/core/plan.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {

/// ORACLE (Section 5): a non-plausible baseline that knows the exact
/// locations of the current top-k values and fetches exactly those — the
/// cheapest conceivable approximate plan with 100% accuracy.
QueryPlan MakeOraclePlan(const net::Topology& topology,
                         const std::vector<double>& truth, int k);

/// ORACLE PROOF (Section 5): knows the top-k locations but must still
/// visit every node to furnish a proof. Each edge carries its subtree's
/// top-k values plus one extra witness value (capped by subtree size) so
/// every sibling constraint of Section 4.3 can be satisfied — the natural
/// lower bound for exact proof-carrying plans.
QueryPlan MakeOracleProofPlan(const net::Topology& topology,
                              const std::vector<double>& truth, int k);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_ORACLE_H_
