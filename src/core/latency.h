#ifndef PROSPECTOR_CORE_LATENCY_H_
#define PROSPECTOR_CORE_LATENCY_H_

#include "src/core/plan.h"
#include "src/net/energy_model.h"
#include "src/net/topology.h"

namespace prospector {
namespace core {

/// Radio timing for the generic MAC layer the simulator assumes
/// (Section 5). Defaults approximate a MICA2 CC1000 radio.
struct RadioTiming {
  double bytes_per_second = 12800.0;
  /// Preamble + header + handshake bytes preceding the content.
  int header_bytes = 24;
  /// MAC backoff / RX-TX turnaround per message.
  double per_message_overhead_s = 0.015;

  double TransmissionSeconds(int payload_bytes) const {
    return per_message_overhead_s +
           static_cast<double>(header_bytes + payload_bytes) /
               bytes_per_second;
  }
};

/// Estimated wall-clock duration of one collection phase (an *extension*
/// beyond the paper, which reports only energy):
///  * a node transmits only after every child's message has arrived;
///  * siblings share their parent's radio, so their transmissions
///    serialize (earliest-ready child first);
///  * transmissions under different parents overlap (spatial reuse).
/// Returns seconds until the root holds the complete result.
double EstimateCollectionLatency(const QueryPlan& plan,
                                 const net::Topology& topology,
                                 const net::EnergyModel& energy,
                                 const RadioTiming& timing);

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_LATENCY_H_
