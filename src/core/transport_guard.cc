#include "src/core/transport_guard.h"

#include <utility>

#include "src/obs/obs.h"

namespace prospector {
namespace core {

int TransportGuard::AdmitCopies(const net::DeliveryResult& d,
                                const FencedHeader& h, int child_edge) {
  if (!d.delivered) return 0;
  if (d.corrupted) {
    // Integrity check, independent of fencing: a mangled payload is
    // rejected like a drop in both modes.
    ++counters_.corrupt_rejected;
    PROSPECTOR_COUNTER_ADD("transport.corrupt_rejected", 1);
    PROSPECTOR_FLIGHT(kGuardReject, "guard.reject.corrupt", -1, child_edge,
                      d.delivered_copies);
    return 0;
  }
  if (d.delayed_until_epoch >= 0) return 0;  // park it via Defer()
  if (!fencing_) {
    if (d.delivered_copies > 1) {
      counters_.duplicates_folded += d.delivered_copies - 1;
      PROSPECTOR_COUNTER_ADD("transport.duplicates_folded",
                             d.delivered_copies - 1);
      PROSPECTOR_FLIGHT(kFold, "guard.fold.duplicates", -1, child_edge,
                        d.delivered_copies - 1);
    }
    return d.delivered_copies;
  }
  if (h.send_epoch != epoch_ || h.plan_epoch != plan_epoch_) {
    // Cannot happen on the direct delivery path (stale messages travel
    // through the mailbox), but the receiver checks anyway: the fence is
    // the header, not the caller's discipline.
    counters_.stale_fenced += d.delivered_copies;
    PROSPECTOR_COUNTER_ADD("transport.stale_fenced", d.delivered_copies);
    PROSPECTOR_FLIGHT(kGuardReject, "guard.reject.stale", -1, child_edge,
                      d.delivered_copies);
    return 0;
  }
  Reserve(child_edge);
  if (h.seq <= watermark_[child_edge]) {
    // Every copy replays an already-folded sequence number.
    counters_.duplicates_dropped += d.delivered_copies;
    PROSPECTOR_COUNTER_ADD("transport.duplicates_dropped",
                           d.delivered_copies);
    PROSPECTOR_FLIGHT(kFold, "guard.fold.duplicate_dropped", -1, child_edge,
                      d.delivered_copies);
    return 0;
  }
  watermark_[child_edge] = h.seq;
  if (d.delivered_copies > 1) {
    counters_.duplicates_dropped += d.delivered_copies - 1;
    PROSPECTOR_COUNTER_ADD("transport.duplicates_dropped",
                           d.delivered_copies - 1);
    PROSPECTOR_FLIGHT(kFold, "guard.fold.duplicate_dropped", -1, child_edge,
                      d.delivered_copies - 1);
  }
  return 1;
}

void TransportGuard::Defer(DelayedMessage msg) {
  ++counters_.deferred;
  PROSPECTOR_COUNTER_ADD("transport.deferred", 1);
  PROSPECTOR_FLIGHT(kFold, "guard.defer", -1, msg.child_edge,
                    msg.arrival_epoch);
  mailbox_.push_back(std::move(msg));
}

std::vector<DelayedMessage> TransportGuard::DrainArrivals(GuardChannel channel,
                                                          int child_edge) {
  std::vector<DelayedMessage> out;
  for (size_t i = 0; i < mailbox_.size();) {
    DelayedMessage& m = mailbox_[i];
    if (m.channel != channel || m.child_edge != child_edge ||
        m.arrival_epoch > epoch_) {
      ++i;
      continue;
    }
    if (fencing_) {
      // A deferred message is at least one epoch old when it lands: its
      // send-epoch stamp can never match the receiver's clock, so the
      // fence refuses it unconditionally.
      ++counters_.stale_fenced;
      PROSPECTOR_COUNTER_ADD("transport.stale_fenced", 1);
      PROSPECTOR_FLIGHT(kGuardReject, "guard.reject.stale_arrival", -1,
                        child_edge, m.arrival_epoch);
    } else {
      ++counters_.stale_folded;
      PROSPECTOR_COUNTER_ADD("transport.stale_folded", 1);
      PROSPECTOR_FLIGHT(kFold, "guard.fold.stale", -1, child_edge,
                        m.arrival_epoch);
      out.push_back(std::move(m));
    }
    mailbox_.erase(mailbox_.begin() + static_cast<long>(i));
  }
  return out;
}

}  // namespace core
}  // namespace prospector
