#include "src/core/plan_eval.h"

#include <algorithm>

namespace prospector {
namespace core {

int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const sampling::SampleSet& samples, int j) {
  const int n = topology.num_nodes();
  int hits = samples.Contributes(j, topology.root()) ? 1 : 0;
  if (plan.kind == PlanKind::kNodeSelection) {
    for (int i = 1; i < n; ++i) {
      if (plan.chosen[i] && samples.Contributes(j, i)) ++hits;
    }
    return hits;
  }
  std::vector<int> f(n, 0);
  for (int u : topology.PostOrder()) {
    if (u == topology.root()) continue;
    int avail = samples.Contributes(j, u) ? 1 : 0;
    for (int c : topology.children(u)) avail += f[c];
    f[u] = std::min(plan.bandwidth[u], avail);
  }
  for (int c : topology.children(topology.root())) hits += f[c];
  return hits;
}

int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const sampling::SampleSet& samples) {
  int total = 0;
  for (int j = 0; j < samples.num_samples(); ++j) {
    total += SampleHitsForSample(plan, topology, samples, j);
  }
  return total;
}

}  // namespace core
}  // namespace prospector
