#include "src/core/plan_eval.h"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace prospector {
namespace core {
namespace {

// Mask whose popcount against a packed row scores a node-selection plan:
// the chosen non-root nodes, plus the root (its contribution always counts
// and needs no plan entry).
std::vector<uint64_t> SelectionMask(const QueryPlan& plan, int num_nodes,
                                    int root, int words) {
  std::vector<uint64_t> mask(words, 0);
  for (int i = 0; i < num_nodes; ++i) {
    if (i == root || plan.chosen[i]) {
      mask[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
  return mask;
}

// The bandwidth recurrence f(u) = min(bandwidth[u], own + sum_children f)
// evaluated over one packed row, visiting only the set bits and their
// ancestors: every other node has zero available values and f = 0. Level
// buckets (parent depth is child depth - 1, exactly) give the
// children-before-parents order; the result is the same integer the full
// post-order walk computes.
int BandwidthRowHits(const QueryPlan& plan, const net::Topology& topology,
                     const uint64_t* row, int words) {
  const int root = topology.root();
  int hits = 0;
  std::vector<int> contribs;
  for (int w = 0; w < words; ++w) {
    uint64_t bits = row[w];
    while (bits != 0) {
      const int u = (w << 6) + std::countr_zero(bits);
      bits &= bits - 1;
      if (u == root) {
        ++hits;
      } else {
        contribs.push_back(u);
      }
    }
  }
  if (contribs.empty()) return hits;
  int max_depth = 0;
  for (int u : contribs) max_depth = std::max(max_depth, topology.depth(u));
  std::vector<std::vector<int>> levels(max_depth + 1);
  std::vector<int> avail(topology.num_nodes(), 0);
  for (int u : contribs) {
    if (avail[u] == 0) levels[topology.depth(u)].push_back(u);
    ++avail[u];
  }
  for (int d = max_depth; d >= 1; --d) {
    for (size_t idx = 0; idx < levels[d].size(); ++idx) {
      const int u = levels[d][idx];
      const int f = std::min(plan.bandwidth[u], avail[u]);
      if (f <= 0) continue;  // nothing survives u; don't enqueue its parent
      const int p = topology.parent(u);
      if (p == root) {
        hits += f;
      } else {
        // avail[p] == 0 doubles as "not yet enqueued": every enqueue is
        // paired with a strictly positive accumulation.
        if (avail[p] == 0) levels[d - 1].push_back(p);
        avail[p] += f;
      }
    }
  }
  return hits;
}

int PackedHitsForRow(const QueryPlan& plan, const net::Topology& topology,
                     const uint64_t* row, const uint64_t* selection_mask,
                     int words) {
  if (plan.kind == PlanKind::kNodeSelection) {
    int hits = 0;
    for (int w = 0; w < words; ++w) {
      hits += std::popcount(row[w] & selection_mask[w]);
    }
    return hits;
  }
  return BandwidthRowHits(plan, topology, row, words);
}

}  // namespace

int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const sampling::SampleSet& samples, int j) {
  const int n = topology.num_nodes();
  const int root = topology.root();
  int hits = samples.Contributes(j, root) ? 1 : 0;
  if (plan.kind == PlanKind::kNodeSelection) {
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;  // already counted; root needs no plan entry
      if (plan.chosen[i] && samples.Contributes(j, i)) ++hits;
    }
    return hits;
  }
  std::vector<int> f(n, 0);
  for (int u : topology.PostOrder()) {
    if (u == root) continue;
    int avail = samples.Contributes(j, u) ? 1 : 0;
    for (int c : topology.children(u)) avail += f[c];
    f[u] = std::min(plan.bandwidth[u], avail);
  }
  for (int c : topology.children(root)) hits += f[c];
  return hits;
}

int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const HitMatrix& hits, int j) {
  const int words = hits.words_per_row();
  if (plan.kind == PlanKind::kNodeSelection) {
    const std::vector<uint64_t> mask = SelectionMask(
        plan, topology.num_nodes(), topology.root(), words);
    return PackedHitsForRow(plan, topology, hits.row(j), mask.data(), words);
  }
  return BandwidthRowHits(plan, topology, hits.row(j), words);
}

int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const HitMatrix& hits, util::ThreadPool* pool) {
  const int S = hits.num_samples();
  const int words = hits.words_per_row();
  std::vector<uint64_t> mask;
  if (plan.kind == PlanKind::kNodeSelection) {
    mask = SelectionMask(plan, topology.num_nodes(), topology.root(), words);
  }
  auto row_hits = [&](int j) {
    return PackedHitsForRow(plan, topology, hits.row(j), mask.data(), words);
  };
  if (pool != nullptr) {
    return pool->ParallelReduce<int>(S, 0, row_hits,
                                     [](int acc, int v) { return acc + v; });
  }
  int total = 0;
  for (int j = 0; j < S; ++j) total += row_hits(j);
  return total;
}

int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const sampling::SampleSet& samples, util::ThreadPool* pool) {
  HitMatrix hits;
  hits.Sync(samples);
  return SampleHits(plan, topology, hits, pool);
}

AccuracyMetrics TopKAccuracy(const ExecutionResult& result,
                             const std::vector<double>& truth, int k) {
  AccuracyMetrics out;
  out.answered = static_cast<int>(result.answer.size());
  if (k <= 0) {
    out.recall = 1.0;
    return out;
  }
  std::vector<char> in_truth(truth.size(), 0);
  for (const Reading& r : TrueTopK(truth, k)) in_truth[r.node] = 1;
  int hit = 0;
  for (const Reading& r : result.answer) {
    if (r.node >= 0 && r.node < static_cast<int>(truth.size()) &&
        in_truth[r.node]) {
      ++hit;
    }
  }
  // An empty truth vector means there is nothing to recall; the query is
  // vacuously answered in full (mirrors the k <= 0 convention above)
  // rather than dividing by zero.
  const size_t denom = std::min<size_t>(k, truth.size());
  out.recall = denom == 0 ? 1.0 : static_cast<double>(hit) / denom;
  if (out.answered > 0) {
    out.precision = static_cast<double>(hit) / static_cast<double>(out.answered);
  }
  return out;
}

std::vector<std::vector<int>> ComputePathCache(const net::Topology& topology,
                                               util::ThreadPool* pool) {
  const int n = topology.num_nodes();
  std::vector<std::vector<int>> paths(n);
  auto fill = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) paths[i] = topology.PathEdges(i);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, fill);
  } else {
    fill(0, n);
  }
  return paths;
}

}  // namespace core
}  // namespace prospector
