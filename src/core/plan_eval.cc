#include "src/core/plan_eval.h"

#include <algorithm>

namespace prospector {
namespace core {

int SampleHitsForSample(const QueryPlan& plan, const net::Topology& topology,
                        const sampling::SampleSet& samples, int j) {
  const int n = topology.num_nodes();
  const int root = topology.root();
  int hits = samples.Contributes(j, root) ? 1 : 0;
  if (plan.kind == PlanKind::kNodeSelection) {
    for (int i = 0; i < n; ++i) {
      if (i == root) continue;  // already counted; root needs no plan entry
      if (plan.chosen[i] && samples.Contributes(j, i)) ++hits;
    }
    return hits;
  }
  std::vector<int> f(n, 0);
  for (int u : topology.PostOrder()) {
    if (u == root) continue;
    int avail = samples.Contributes(j, u) ? 1 : 0;
    for (int c : topology.children(u)) avail += f[c];
    f[u] = std::min(plan.bandwidth[u], avail);
  }
  for (int c : topology.children(root)) hits += f[c];
  return hits;
}

int SampleHits(const QueryPlan& plan, const net::Topology& topology,
               const sampling::SampleSet& samples, util::ThreadPool* pool) {
  const int S = samples.num_samples();
  if (pool != nullptr) {
    return pool->ParallelReduce<int>(
        S, 0,
        [&](int j) { return SampleHitsForSample(plan, topology, samples, j); },
        [](int acc, int v) { return acc + v; });
  }
  int total = 0;
  for (int j = 0; j < S; ++j) {
    total += SampleHitsForSample(plan, topology, samples, j);
  }
  return total;
}

AccuracyMetrics TopKAccuracy(const ExecutionResult& result,
                             const std::vector<double>& truth, int k) {
  AccuracyMetrics out;
  out.answered = static_cast<int>(result.answer.size());
  if (k <= 0) {
    out.recall = 1.0;
    return out;
  }
  std::vector<char> in_truth(truth.size(), 0);
  for (const Reading& r : TrueTopK(truth, k)) in_truth[r.node] = 1;
  int hit = 0;
  for (const Reading& r : result.answer) {
    if (r.node >= 0 && r.node < static_cast<int>(truth.size()) &&
        in_truth[r.node]) {
      ++hit;
    }
  }
  // An empty truth vector means there is nothing to recall; the query is
  // vacuously answered in full (mirrors the k <= 0 convention above)
  // rather than dividing by zero.
  const size_t denom = std::min<size_t>(k, truth.size());
  out.recall = denom == 0 ? 1.0 : static_cast<double>(hit) / denom;
  if (out.answered > 0) {
    out.precision = static_cast<double>(hit) / static_cast<double>(out.answered);
  }
  return out;
}

std::vector<std::vector<int>> ComputePathCache(const net::Topology& topology,
                                               util::ThreadPool* pool) {
  const int n = topology.num_nodes();
  std::vector<std::vector<int>> paths(n);
  auto fill = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) paths[i] = topology.PathEdges(i);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, fill);
  } else {
    fill(0, n);
  }
  return paths;
}

}  // namespace core
}  // namespace prospector
