#include "src/core/plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/core/plan_wire.h"
#include "src/obs/obs.h"

namespace prospector {
namespace core {

QueryPlan QueryPlan::Bandwidth(int k, std::vector<int> bandwidths,
                               bool proof_carrying) {
  QueryPlan p;
  p.kind = PlanKind::kBandwidth;
  p.k = k;
  p.proof_carrying = proof_carrying;
  p.bandwidth = std::move(bandwidths);
  if (!p.bandwidth.empty()) p.bandwidth[0] = 0;
  return p;
}

QueryPlan QueryPlan::NodeSelection(int k, std::vector<char> chosen_mask,
                                   const net::Topology& topology) {
  QueryPlan p;
  p.kind = PlanKind::kNodeSelection;
  p.k = k;
  p.chosen = std::move(chosen_mask);
  p.bandwidth.assign(topology.num_nodes(), 0);
  // Each chosen node's value crosses every edge on its path to the root.
  for (int i = 0; i < topology.num_nodes(); ++i) {
    if (i == topology.root() || !p.chosen[i]) continue;
    for (int e : topology.PathEdges(i)) ++p.bandwidth[e];
  }
  return p;
}

QueryPlan& QueryPlan::Normalize(const net::Topology& topology) {
  bandwidth[topology.root()] = 0;
  for (int u : topology.PreOrder()) {
    if (u == topology.root()) continue;
    bandwidth[u] = std::min(bandwidth[u], topology.subtree_size(u));
    const int parent = topology.parent(u);
    // Values from u's subtree must cross the parent's edge too (unless the
    // parent is the root, where they have already arrived).
    if (parent != topology.root() && bandwidth[parent] == 0) bandwidth[u] = 0;
    if (kind == PlanKind::kNodeSelection && bandwidth[u] == 0 && chosen[u]) {
      chosen[u] = 0;
    }
  }
  return *this;
}

int QueryPlan::CountVisitedNodes(const net::Topology& topology) const {
  int count = 1;  // the root
  for (int u = 0; u < topology.num_nodes(); ++u) {
    if (u == topology.root()) continue;
    if (kind == PlanKind::kNodeSelection) {
      count += chosen[u] ? 1 : 0;
    } else {
      count += bandwidth[u] > 0 ? 1 : 0;
    }
  }
  return count;
}

std::string QueryPlan::DebugString(const net::Topology& topology) const {
  std::ostringstream os;
  os << (kind == PlanKind::kBandwidth ? "bandwidth" : "node-selection")
     << " plan, k=" << k << (proof_carrying ? ", proof-carrying" : "") << ":";
  for (int u = 0; u < topology.num_nodes(); ++u) {
    if (u == topology.root()) continue;
    if (bandwidth[u] > 0) {
      os << " e" << u << "->" << topology.parent(u) << ":" << bandwidth[u];
    }
  }
  return os.str();
}

double ExpectedCollectionCost(const QueryPlan& plan,
                              const net::NetworkSimulator& sim) {
  const double acquisition = sim.energy_model().acquisition_mj;
  const int root = sim.topology().root();
  double cost = 0.0;
  for (int e = 0; e < static_cast<int>(plan.bandwidth.size()); ++e) {
    if (e == root) continue;  // the root owns no edge
    if (plan.bandwidth[e] > 0) {
      cost += sim.ExpectedUnicastCost(e, plan.bandwidth[e]);
      // A participating node must take its measurement (Section 4.4); the
      // mains-powered base station's sensing is not budgeted.
      if (plan.kind == PlanKind::kBandwidth || plan.chosen[e]) {
        cost += acquisition;
      }
    }
  }
  return cost;
}

double ExpectedTriggerCost(const QueryPlan& plan,
                           const net::NetworkSimulator& sim) {
  const net::Topology& topo = sim.topology();
  double cost = 0.0;
  for (int u = 0; u < topo.num_nodes(); ++u) {
    for (int c : topo.children(u)) {
      if (plan.UsesEdge(c)) {
        cost += sim.energy_model().BroadcastCost();
        break;
      }
    }
  }
  return cost;
}

double ChargeInstallCost(const QueryPlan& plan, net::NetworkSimulator* sim) {
  const net::Topology& topo = sim->topology();
  // Installing is the moment plan bytes leave the optimizer for the
  // sensors: verify the bytes decode back to exactly the plan the LP
  // certified. A divergence here means the executor would run a different
  // plan than the one whose recall/energy trade-off was proven (the bug
  // class the old Cap255 clamps hid), so fail fast like the energy audit.
  if (const Status fidelity = VerifyPlanWireFidelity(plan, topo);
      !fidelity.ok()) {
    std::fprintf(stderr, "ChargeInstallCost: wire fidelity violation: %s\n",
                 fidelity.ToString().c_str());
    std::abort();
  }
  double spent = 0.0;
  // Each participating node receives its serialized subplan (its own edge
  // bandwidth plus the expected count per child) from its parent; the
  // charged bytes are the exact wire encoding (see plan_wire.h).
  for (int u : topo.PreOrder()) {
    if (u == topo.root() || !plan.UsesEdge(u)) continue;
    spent += sim->Unicast(u, /*num_values=*/0,
                          /*extra_bytes=*/SubplanWireBytes(plan, topo, u));
  }
  PROSPECTOR_FLIGHT(kPlanInstall, "plan.install", -1, spent, plan.k);
  return spent;
}

double ChargeTriggerCost(const QueryPlan& plan, net::NetworkSimulator* sim) {
  const net::Topology& topo = sim->topology();
  double spent = 0.0;
  for (int u : topo.PreOrder()) {
    if (!sim->node_alive(u)) continue;  // a dead node triggers nobody
    for (int c : topo.children(u)) {
      if (plan.UsesEdge(c)) {
        spent += sim->Broadcast(u);
        break;
      }
    }
  }
  return spent;
}

}  // namespace core
}  // namespace prospector
