#ifndef PROSPECTOR_CORE_PLAN_MANAGER_H_
#define PROSPECTOR_CORE_PLAN_MANAGER_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/plan.h"
#include "src/core/plan_eval.h"
#include "src/core/planner.h"
#include "src/core/workspace.h"
#include "src/net/simulator.h"
#include "src/obs/obs.h"
#include "src/util/thread_pool.h"

namespace prospector {
namespace core {

/// Long-running query maintenance (Section 4.4).
///
/// *Plan re-calculation*: disseminating a new plan is expensive, so the
/// base station recomputes the optimal plan as samples drift but only
/// disseminates it when it beats the installed plan's expected sample hits
/// by a configurable margin.
///
/// *Re-sampling*: the confidence in the current model is measured by
/// periodically running a proof-carrying plan (whose proven count reveals
/// true accuracy); when observed accuracy drops below a floor, the
/// exploration (full-sweep sampling) rate is boosted until accuracy
/// recovers.
struct PlanManagerOptions {
  /// Fractional expected-hits improvement required to re-disseminate.
  double improvement_threshold = 0.10;
  /// Observed-accuracy floor below which re-sampling accelerates.
  double min_accuracy = 0.90;
  double base_explore_probability = 0.02;
  double boosted_explore_probability = 0.20;
  /// Optional worker pool for the expected-hits evaluations that gate
  /// re-dissemination (not owned). nullptr = the serial seed path;
  /// decisions are identical either way.
  util::ThreadPool* pool = nullptr;
};

class PlanManager {
 public:
  PlanManager(Planner* planner, PlanRequest request,
              PlanManagerOptions options = {})
      : planner_(planner), request_(request), options_(options) {}

  /// True once a plan is installed in the network.
  bool has_plan() const { return plan_.has_value(); }
  const QueryPlan& plan() const { return *plan_; }

  /// Recomputes the optimal plan against the current samples; installs it
  /// (charging dissemination to `sim`) if there is no plan yet or if it
  /// improves expected sample hits by more than the threshold. Returns
  /// whether a dissemination happened.
  Result<bool> MaybeReplan(const PlannerContext& ctx,
                           const sampling::SampleSet& samples,
                           net::NetworkSimulator* sim) {
    // Steady-state short-circuit (workspace mode only): planners are
    // deterministic, so unchanged inputs — same topology epoch, same
    // sample window, same cost model — reproduce the previous candidate
    // and therefore the previous decision. A repeat of either outcome is
    // "no dissemination": an installed winner never beats itself by the
    // improvement threshold.
    if (ctx.workspace != nullptr && plan_.has_value() &&
        last_decision_.Matches(*ctx.topology, samples) &&
        last_decision_fingerprint_ ==
            PlanningWorkspace::CostFingerprint(ctx)) {
      PROSPECTOR_COUNTER_ADD("planner.replan_short_circuits", 1);
      return false;
    }
    auto candidate = planner_->Plan(ctx, samples, request_);
    if (!candidate.ok()) return candidate.status();
    // Candidate and installed plans are scored through the packed hit
    // matrix (the workspace's cached copy when one is attached) — the same
    // integers the raw window yields, so decisions are unchanged.
    const auto hits_matrix = GetHitMatrix(ctx.workspace, samples);
    const int new_hits =
        SampleHits(*candidate, *ctx.topology, *hits_matrix, options_.pool);
    if (plan_.has_value()) {
      // The installed plan is fixed, so its score only moves when the
      // window or topology does — memoized on exactly those versions.
      if (!installed_hits_.Matches(*ctx.topology, samples)) {
        installed_hits_.Store(
            SampleHits(*plan_, *ctx.topology, *hits_matrix, options_.pool),
            *ctx.topology, samples);
        UpdatePredictedRecall(samples);
      }
      const int cur_hits = installed_hits_.hits;
      if (new_hits <=
          cur_hits * (1.0 + options_.improvement_threshold)) {
        RememberDecisionInputs(ctx, samples);
        return false;
      }
    }
    plan_ = std::move(candidate.value());
    installed_hits_.Store(new_hits, *ctx.topology, samples);
    UpdatePredictedRecall(samples);
    ChargeInstallCost(*plan_, sim);
    planned_cost_mj_ =
        ExpectedTriggerCost(*plan_, *sim) + ExpectedCollectionCost(*plan_, *sim);
    ++disseminations_;
    RememberDecisionInputs(ctx, samples);
    return true;
  }

  /// Drops the installed plan without touching the network — used when the
  /// topology it indexes no longer exists (self-healing rebuild). The next
  /// MaybeReplan then installs unconditionally.
  void InvalidatePlan() {
    plan_.reset();
    installed_hits_.Invalidate();
    last_decision_.Invalidate();
    predicted_recall_ = -1.0;
    planned_cost_mj_ = 0.0;
  }

  /// Feeds an accuracy observation (e.g. proven fraction from a periodic
  /// PROSPECTOR Proof run) into the re-sampling policy.
  void ObserveAccuracy(double accuracy) {
    last_accuracy_ = accuracy;
    boosted_ = accuracy < options_.min_accuracy;
  }

  /// Current exploration (full network sweep) probability.
  double explore_probability() const {
    return boosted_ ? options_.boosted_explore_probability
                    : options_.base_explore_probability;
  }

  int disseminations() const { return disseminations_; }
  double last_accuracy() const { return last_accuracy_; }

  /// The installed plan's sample-estimated recall — expected hits over
  /// k*|window| — i.e. the planner's own prediction of what the health
  /// monitor later measures as realized recall. -1 before the first
  /// install (and after InvalidatePlan).
  double predicted_recall() const { return predicted_recall_; }

  /// Expected per-epoch energy (trigger + collection) of the installed
  /// plan, captured at install time — what the fleet service meters tenant
  /// energy quotas against. 0 before the first install.
  double planned_cost_mj() const { return planned_cost_mj_; }

  /// What the query asked for (the service's quota ledger reads the
  /// admitted budget back from here).
  const PlanRequest& request() const { return request_; }

 private:
  void UpdatePredictedRecall(const sampling::SampleSet& samples) {
    const double denom = static_cast<double>(request_.k) *
                         static_cast<double>(samples.num_samples());
    predicted_recall_ =
        denom > 0.0
            ? std::min(1.0, static_cast<double>(installed_hits_.hits) / denom)
            : -1.0;
  }

  void RememberDecisionInputs(const PlannerContext& ctx,
                              const sampling::SampleSet& samples) {
    if (ctx.workspace == nullptr) return;
    last_decision_.Store(0, *ctx.topology, samples);
    last_decision_fingerprint_ = PlanningWorkspace::CostFingerprint(ctx);
  }

  Planner* planner_;
  PlanRequest request_;
  PlanManagerOptions options_;
  std::optional<QueryPlan> plan_;
  /// Memo of SampleHits(installed plan) against the current window.
  SampleHitsCache installed_hits_;
  /// (epoch, window, cost) triple of the last completed replan decision;
  /// gates the workspace-mode short-circuit. `hits` is unused.
  SampleHitsCache last_decision_;
  uint64_t last_decision_fingerprint_ = 0;
  int disseminations_ = 0;
  double last_accuracy_ = 1.0;
  bool boosted_ = false;
  double predicted_recall_ = -1.0;
  double planned_cost_mj_ = 0.0;
};

/// Creates a fresh planner per sweep point; planners keep per-Plan() state
/// (LP objectives, lazily built pools), so instances must not be shared
/// across concurrent requests.
using PlannerFactory = std::function<std::unique_ptr<Planner>()>;

/// Solves many independent planning requests — a budget or k sweep, the
/// workload of the figure benches and of continuous re-planning at the
/// base station. Each request plans with its own planner instance from
/// `factory`; with a pool the requests run concurrently, and the result
/// vector is indexed by request either way, so output is identical for
/// any thread count.
///
/// When a workspace is available (the `workspace` argument, or one already
/// on `ctx`), each request leases the workspace slot keyed by its request
/// index — a deterministic assignment, so every sweep sees the same cache
/// history regardless of thread scheduling, and concurrent requests never
/// contend for one LP entry.
inline std::vector<Result<QueryPlan>> PlanSweep(
    const PlannerFactory& factory, const PlannerContext& ctx,
    const sampling::SampleSet& samples,
    const std::vector<PlanRequest>& requests,
    util::ThreadPool* pool = nullptr,
    PlanningWorkspace* workspace = nullptr) {
  std::vector<Result<QueryPlan>> results(
      requests.size(), Result<QueryPlan>(Status::Internal("not planned")));
  auto solve_range = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      PlannerContext local = ctx;
      if (workspace != nullptr) local.workspace = workspace;
      if (local.workspace != nullptr) local.workspace_lease = i;
      results[i] = factory()->Plan(local, samples, requests[i]);
    }
  };
  const int n = static_cast<int>(requests.size());
  if (pool != nullptr) {
    pool->ParallelFor(n, solve_range);
  } else {
    solve_range(0, n);
  }
  return results;
}

}  // namespace core
}  // namespace prospector

#endif  // PROSPECTOR_CORE_PLAN_MANAGER_H_
